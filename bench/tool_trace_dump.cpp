// tool_trace_dump — export the flight recorder as Chrome trace-event JSON.
//
// Drives a short instrumented run (closed-loop tuner windows, a
// training-thread burst, engine train steps with an injected fault so the
// rollback/health causal chain appears), then exports every flight-recorder
// ring through the C API. The JSON loads directly in chrome://tracing or
// https://ui.perfetto.dev: trainer batches render as duration spans, every
// other seam as instant events, one track per recording thread.
//
// Usage: tool_trace_dump [eval-seconds] [--out trace.json] [--text]
//   --out   output path (default kml_trace.json)
//   --text  additionally dump the human-readable form next to it (.txt)
#include "bench_common.h"

#include "capi/kml_api.h"
#include "observe/export.h"
#include "observe/flight_recorder.h"
#include "portability/fault.h"
#include "runtime/engine.h"
#include "runtime/training_thread.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace kml;

nn::Network make_readahead_shaped_net() {
  math::Rng rng(7);
  nn::Network net = nn::build_mlp_classifier(
      readahead::kNumSelectedFeatures, 16, workloads::kNumTrainingClasses,
      rng);
  std::vector<double> means(readahead::kNumSelectedFeatures, 10.0);
  std::vector<double> stds(readahead::kNumSelectedFeatures, 2.0);
  net.normalizer().import_moments(means, stds);
  return net;
}

void count_records(void* user, const data::TraceRecord*, std::size_t n) {
  *static_cast<std::uint64_t*>(user) += n;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t eval_seconds = 2;
  const char* out_path = "kml_trace.json";
  bool text = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else {
      const std::uint64_t s = std::strtoull(argv[i], nullptr, 10);
      if (s > 0) eval_seconds = s;
    }
  }

  if (kml_metrics_enabled() == 0) {
    std::printf("kml::observe is compiled out (KML_OBSERVE=OFF) or "
                "disabled; nothing to trace\n");
    return 0;
  }

  // Closed loop: tuner decisions + buffer publishes + inference seams.
  readahead::ExperimentConfig config;
  config.cache_pages = 8'192;
  config.num_keys = 200'000;

  runtime::Engine engine(make_readahead_shaped_net());
  runtime::HealthMonitor monitor;
  engine.attach_health(&monitor);
  const readahead::ReadaheadTuner::PredictFn predictor =
      [&engine](const readahead::FeatureVector& features) {
        return engine.infer_class(features.data(),
                                  readahead::kNumSelectedFeatures);
      };
  readahead::TunerConfig tuner_config;
  tuner_config.health = &monitor;
  std::printf("running closed loop (%llu virtual seconds, readrandom)...\n",
              static_cast<unsigned long long>(eval_seconds));
  readahead::evaluate_closed_loop(config,
                                  workloads::WorkloadType::kReadRandom,
                                  predictor, tuner_config, eval_seconds);

  // Training-thread burst: begin/end span pairs on the trainer track.
  {
    std::uint64_t seen = 0;
    runtime::TrainingThread trainer(1 << 12, 128, count_records, &seen);
    for (std::uint64_t i = 0; i < 20'000; ++i) {
      trainer.submit(data::TraceRecord{1, i, i, 0});
    }
  }

  // Engine train steps with one injected fault: the full causal chain
  // (fault -> invalid step -> FAILED -> rollback -> DEGRADED) lands in the
  // trace, and the monitor freezes the rings at the DEGRADED transition so
  // the export below sees exactly that window.
  {
    engine.set_mode(runtime::Mode::kTraining);
    nn::CrossEntropyLoss loss;
    nn::SGD opt(0.01, 0.0);
    opt.attach(engine.network().params());
    matrix::MatD x(1, readahead::kNumSelectedFeatures);
    matrix::MatD y(1, workloads::kNumTrainingClasses);
    for (int j = 0; j < readahead::kNumSelectedFeatures; ++j) {
      x.at(0, j) = 0.5 * j;
    }
    y.at(0, 1) = 1.0;
    for (int i = 0; i < 8; ++i) engine.train_batch(x, y, loss, opt);
    kml_fault_arm_nth(FaultSite::kTrainStep, 1, 1);
    engine.train_batch(x, y, loss, opt);  // the injected invalid step
    kml_fault_disarm(FaultSite::kTrainStep);
    engine.rollback();
  }

  std::printf("flight recorder: %llu events recorded, frozen=%d\n",
              kml_trace_event_count(), kml_trace_frozen());

  const observe::FlightSnapshot snap = observe::flight_snapshot();
  const std::string trace = observe::format_chrome_trace(snap);
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(trace.data(), 1, trace.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes, %zu thread track(s)) — load in "
              "chrome://tracing or ui.perfetto.dev\n",
              out_path, trace.size(), snap.threads.size());

  if (text) {
    std::string txt_path = std::string(out_path) + ".txt";
    const std::string txt = observe::format_flight_text(snap);
    std::FILE* tf = std::fopen(txt_path.c_str(), "w");
    if (tf != nullptr) {
      std::fwrite(txt.data(), 1, txt.size(), tf);
      std::fclose(tf);
      std::printf("wrote %s\n", txt_path.c_str());
    }
  }
  return 0;
}
