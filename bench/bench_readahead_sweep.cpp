// bench_readahead_sweep — reproduces §4 "Studying the problem".
//
// The paper tested RocksDB with four workloads, 20 readahead sizes
// (8..1024 KB) and two devices (NVMe, SATA SSD), and "built a mapping from
// the workload type to the readahead value that provided the best
// throughput", observing that no single readahead value wins everywhere and
// the curves are non-linear. This binary prints ops/sec for every
// (device, workload, readahead) cell plus the per-workload optimum — the
// actuation table the KML tuner uses.
//
// Usage: bench_readahead_sweep [seconds-per-cell] [--quick]
//   --quick sweeps 8 readahead values instead of the paper's 20.
#include "readahead/pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

using kml::readahead::ExperimentConfig;
using kml::workloads::WorkloadType;

void run_device_sweep(const char* device_name,
                      const ExperimentConfig& config,
                      const std::vector<std::uint32_t>& ra_values,
                      std::uint64_t seconds) {
  const std::vector<WorkloadType> types = {
      WorkloadType::kReadSeq, WorkloadType::kReadRandom,
      WorkloadType::kReadReverse, WorkloadType::kReadRandomWriteRandom};

  std::printf("\n=== %s: throughput (ops/sec) vs readahead (KB) ===\n",
              device_name);
  std::printf("%-22s", "workload \\ ra_kb");
  for (std::uint32_t ra : ra_values) std::printf("%9u", ra);
  std::printf("\n");

  const auto sweep =
      kml::readahead::readahead_sweep(config, types, ra_values, seconds);

  for (WorkloadType type : types) {
    std::printf("%-22s", kml::workloads::workload_name(type));
    for (std::uint32_t ra : ra_values) {
      for (const auto& p : sweep) {
        if (p.workload == type && p.ra_kb == ra) {
          std::printf("%9.0f", p.ops_per_sec);
        }
      }
    }
    std::printf("\n");
  }

  const auto table = kml::readahead::best_ra_table(sweep);
  std::printf("\nbest readahead per workload (%s):\n", device_name);
  for (int w = 0; w < kml::workloads::kNumTrainingClasses; ++w) {
    std::printf("  %-22s -> %u KB\n",
                kml::workloads::workload_name(static_cast<WorkloadType>(w)),
                table[static_cast<std::size_t>(w)]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seconds = 6;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      seconds = std::strtoull(argv[i], nullptr, 10);
      if (seconds == 0) seconds = 6;
    }
  }

  std::vector<std::uint32_t> ra_values = kml::readahead::paper_ra_values();
  if (quick) ra_values = {8, 16, 32, 64, 128, 256, 512, 1024};

  std::printf("KML readahead study: %zu readahead sizes x 4 workloads x 2 "
              "devices, %llu virtual seconds per cell\n",
              ra_values.size(), static_cast<unsigned long long>(seconds));

  ExperimentConfig nvme;
  nvme.device = kml::sim::nvme_config();
  run_device_sweep("NVMe", nvme, ra_values, seconds);

  ExperimentConfig sata;
  sata.device = kml::sim::sata_ssd_config();
  run_device_sweep("SSD", sata, ra_values, seconds);

  return 0;
}
