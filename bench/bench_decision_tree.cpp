// bench_decision_tree — reproduces the §4 decision-tree comparison.
//
// "We have also implemented a decision tree for the readahead use-case to
// show how different ML approaches perform on the same problem. The
// readahead decision-tree model improved performance for SSD 55% and NVMe
// 26% on average" — i.e., positive but inferior to the neural network
// (+82.5% / +37.3%). This binary trains the CART model on the same traces,
// runs the same closed loop over all six workloads and both devices, and
// prints the tree-vs-network comparison.
//
// Usage: bench_decision_tree [eval-seconds]
#include "bench_common.h"

#include <cstdlib>

int main(int argc, char** argv) {
  using namespace kml;

  std::uint64_t eval_seconds = 12;
  if (argc > 1) {
    const std::uint64_t s = std::strtoull(argv[1], nullptr, 10);
    if (s > 0) eval_seconds = s;
  }

  const data::Dataset dataset =
      bench::collect_or_load_dataset(bench::kDefaultDatasetPath);

  // The tree gets shallower capacity than the network on purpose — the
  // paper's point is comparing model families, and CART with modest depth
  // is what would be deployed kernel-side (branch-only inference).
  dtree::TreeConfig tree_config;
  tree_config.max_depth = 4;
  tree_config.min_samples_split = 16;
  const readahead::ReadaheadTree tree =
      readahead::train_readahead_dtree(dataset, tree_config);
  std::printf("decision tree: %d nodes, depth %d, training accuracy %.1f%%\n",
              tree.tree.node_count(), tree.tree.depth(),
              tree.accuracy(dataset) * 100.0);

  nn::Network net = bench::train_or_load_model(bench::kDefaultModelPath);

  const readahead::ReadaheadTuner::PredictFn tree_predictor =
      [&tree](const readahead::FeatureVector& features) {
        return tree.predict(features.data(),
                            readahead::kNumSelectedFeatures);
      };
  const auto nn_predictor = bench::nn_predictor(net);

  struct Row {
    const char* device;
    double tree_avg;
    double nn_avg;
  };
  Row rows[2] = {{"NVMe", 0, 0}, {"SSD", 0, 0}};
  const sim::DeviceConfig devices[2] = {sim::nvme_config(),
                                        sim::sata_ssd_config()};

  for (int d = 0; d < 2; ++d) {
    readahead::ExperimentConfig config;
    config.device = devices[d];
    readahead::TunerConfig tuner_config;
    tuner_config.class_ra_kb = bench::actuation_table(config);

    std::printf("\n%s:\n", rows[d].device);
    for (int w = 0; w < workloads::kNumWorkloads; ++w) {
      const auto type = static_cast<workloads::WorkloadType>(w);
      const auto tree_outcome = readahead::evaluate_closed_loop(
          config, type, tree_predictor, tuner_config, eval_seconds);
      const auto nn_outcome = readahead::evaluate_closed_loop(
          config, type, nn_predictor, tuner_config, eval_seconds);
      rows[d].tree_avg += tree_outcome.speedup;
      rows[d].nn_avg += nn_outcome.speedup;
      std::printf("  %-22s tree %.2fx   nn %.2fx\n",
                  workloads::workload_name(type), tree_outcome.speedup,
                  nn_outcome.speedup);
    }
    rows[d].tree_avg /= workloads::kNumWorkloads;
    rows[d].nn_avg /= workloads::kNumWorkloads;
  }

  std::printf("\n=== decision tree vs neural network (avg gain) ===\n");
  std::printf("%-6s %18s %18s %22s\n", "device", "tree (ours)", "nn (ours)",
              "paper (tree / nn)");
  std::printf("%-6s %+17.1f%% %+17.1f%%          +26%% / +37.3%%\n", "NVMe",
              (rows[0].tree_avg - 1.0) * 100.0,
              (rows[0].nn_avg - 1.0) * 100.0);
  std::printf("%-6s %+17.1f%% %+17.1f%%          +55%% / +82.5%%\n", "SSD",
              (rows[1].tree_avg - 1.0) * 100.0,
              (rows[1].nn_avg - 1.0) * 100.0);
  return 0;
}
