// bench_kv — durability and concurrency numbers for the crash-consistent
// MiniKV (DESIGN.md §12).
//
// Two measurements, both real wall-clock (the durability plane and the
// epoch-protected read path never touch the virtual-time simulator):
//
//   1. Recovery time: populate a durable store across several flushes and
//      a checkpoint, kill it with a WAL tail outstanding, and time
//      MiniKV::recover() — manifest load, run-file rebuild, WAL replay,
//      and the post-replay flush + rotation.
//   2. Concurrent-read throughput: get_concurrent() ops/sec against the
//      recovered store at 1, 2, and 4 reader threads (kml_thread_create,
//      same seam the kernel backend maps to kthread_run).
//
// Usage: bench_kv [--json] [--dir path]
//
// --json writes BENCH_kv.json (flat numeric fields, same convention as the
// other bench binaries). --dir overrides the scratch directory (default
// bench_kv.dbdir under the working directory; recreated on every run).
#include "bench_common.h"

#include "kv/minikv.h"
#include "math/rng.h"
#include "portability/epoch.h"
#include "portability/kml_lib.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

namespace {

using namespace kml;

struct ReadWorker {
  kv::MiniKV* db = nullptr;
  std::uint64_t ops = 0;
  std::uint64_t key_space = 0;
  std::uint64_t seed = 0;
  std::uint64_t hits = 0;
};

void read_worker_main(void* arg) {
  auto* w = static_cast<ReadWorker*>(arg);
  math::Rng rng(w->seed);
  for (std::uint64_t i = 0; i < w->ops; ++i) {
    if (w->db->get_concurrent(rng.next_below(w->key_space))) ++w->hits;
  }
}

// Run `threads` concurrent readers, `ops_per_thread` lookups each; returns
// aggregate ops/sec.
double run_readers(kv::MiniKV& db, unsigned threads,
                   std::uint64_t ops_per_thread) {
  std::vector<ReadWorker> workers(threads);
  std::vector<KmlThread*> handles(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers[t].db = &db;
    workers[t].ops = ops_per_thread;
    workers[t].key_space = db.num_keys();  // base keys: always hits
    workers[t].seed = 0x6b76u + t;
  }
  const std::uint64_t start = kml_now_ns();
  for (unsigned t = 0; t < threads; ++t) {
    handles[t] = kml_thread_create(read_worker_main, &workers[t], "kvread");
  }
  for (unsigned t = 0; t < threads; ++t) {
    if (handles[t] != nullptr) kml_thread_join(handles[t]);
  }
  const std::uint64_t elapsed = kml_now_ns() - start;
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);
  return elapsed == 0 ? 0.0 : total_ops * 1e9 / static_cast<double>(elapsed);
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::consume_flag(&argc, argv, "--json");
  std::string dir = "bench_kv.dbdir";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    }
  }
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  kv::KVConfig config;
  config.num_keys = 200'000;
  config.memtable_limit_bytes = 1u << 20;  // 8192 entries per flush
  config.durable_dir = dir;

  // --- populate, checkpoint, kill -------------------------------------------
  std::uint64_t durable_at_crash = 0;
  std::uint64_t last_at_crash = 0;
  {
    sim::StorageStack stack(sim::StackConfig{});
    kv::MiniKV db(stack, config);
    math::Rng rng(42);
    const std::uint64_t key_space = 4 * config.num_keys;
    for (int i = 0; i < 60'000; ++i) db.put(rng.next_below(key_space));
    if (!db.checkpoint()) {
      std::fprintf(stderr, "bench_kv: checkpoint failed\n");
      return 1;
    }
    // A post-checkpoint burst leaves a real WAL tail for recovery to replay.
    for (int i = 0; i < 20'000; ++i) db.put(rng.next_below(key_space));
    db.crash();
    durable_at_crash = db.durable_seq();
    last_at_crash = db.last_seq();
    std::printf("populated: %llu puts (%llu flushes, %llu compactions), "
                "crashed with durable_seq=%llu last_seq=%llu\n",
                static_cast<unsigned long long>(db.stats().puts),
                static_cast<unsigned long long>(db.stats().flushes),
                static_cast<unsigned long long>(db.stats().compactions),
                static_cast<unsigned long long>(durable_at_crash),
                static_cast<unsigned long long>(last_at_crash));
  }

  // --- timed recovery --------------------------------------------------------
  sim::StorageStack stack(sim::StackConfig{});
  const std::uint64_t t0 = kml_now_ns();
  auto db = kv::MiniKV::recover(stack, config);
  const std::uint64_t recovery_ns = kml_now_ns() - t0;
  if (db == nullptr) {
    std::fprintf(stderr, "bench_kv: recovery failed\n");
    return 1;
  }
  std::printf("recovered in %.2f ms: %llu WAL records replayed, "
              "%zu runs, durable_seq=%llu\n",
              static_cast<double>(recovery_ns) / 1e6,
              static_cast<unsigned long long>(
                  db->stats().wal_records_replayed),
              db->run_count(),
              static_cast<unsigned long long>(db->durable_seq()));

  // --- concurrent-read throughput against the recovered store ---------------
  constexpr std::uint64_t kOpsPerThread = 2'000'000;
  const unsigned thread_counts[] = {1, 2, 4};
  double ops_per_sec[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    ops_per_sec[i] = run_readers(*db, thread_counts[i], kOpsPerThread);
    std::printf("concurrent reads, %u thread%s: %8.2f Mops/s\n",
                thread_counts[i], thread_counts[i] == 1 ? " " : "s",
                ops_per_sec[i] / 1e6);
  }
  const double scaling =
      ops_per_sec[0] == 0.0 ? 0.0 : ops_per_sec[2] / ops_per_sec[0];
  std::printf("4-thread scaling over 1 thread: %.2fx (on %u online CPUs; "
              "flat aggregate is expected when threads > CPUs)\n",
              scaling, kml_num_cpus());
  std::printf("epoch domain: %llu retired, %llu freed, %llu stalls\n",
              static_cast<unsigned long long>(kml_epoch_retired_total()),
              static_cast<unsigned long long>(kml_epoch_freed_total()),
              static_cast<unsigned long long>(kml_epoch_stalls()));

  if (json) {
    bench::JsonReport report;
    report.add("recovery_ns", static_cast<double>(recovery_ns));
    report.add("recovery_ms", static_cast<double>(recovery_ns) / 1e6);
    report.add("wal_records_replayed",
               static_cast<double>(db->stats().wal_records_replayed));
    report.add("runs_after_recovery", static_cast<double>(db->run_count()));
    report.add("durable_seq", static_cast<double>(db->durable_seq()));
    report.add("concurrent_read_ops_per_sec_1t", ops_per_sec[0]);
    report.add("concurrent_read_ops_per_sec_2t", ops_per_sec[1]);
    report.add("concurrent_read_ops_per_sec_4t", ops_per_sec[2]);
    report.add("scaling_4t_over_1t", scaling);
    report.add("cpus", static_cast<double>(kml_num_cpus()));
    const std::string path = bench::json_artifact_path("BENCH_kv.json");
    if (report.write_file(path.c_str())) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
