// bench_writeback — the second case study: KML on the page cache (§6).
//
// Methodology mirrors §4's readahead study, applied to the dirty-page
// writeback threshold: (1) sweep the threshold per workload to show the
// optimum is workload-dependent (batching vs reclaim-writeback stalls),
// then (2) close the loop with the label-free Q-learning tuner actuating
// the threshold online and compare against a fixed default.
//
// Usage: bench_writeback [sweep-seconds] [rl-seconds]
#include "writeback/workload.h"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace kml;

  std::uint64_t sweep_seconds = 6;
  std::uint64_t rl_seconds = 120;
  if (argc > 1) {
    const std::uint64_t s = std::strtoull(argv[1], nullptr, 10);
    if (s > 0) sweep_seconds = s;
  }
  if (argc > 2) {
    const std::uint64_t s = std::strtoull(argv[2], nullptr, 10);
    if (s > 0) rl_seconds = s;
  }

  sim::StackConfig stack_config;
  stack_config.device = sim::sata_ssd_config();  // waste hurts most here

  const std::vector<writeback::WbKind> kinds = {
      writeback::WbKind::kSeqWriter, writeback::WbKind::kRandWriter,
      writeback::WbKind::kMixed};
  const std::vector<std::uint64_t> thresholds = {256, 2048, 8192,
                                                 16384, 28000, 40000, 60000};

  std::printf("writeback-threshold study on %s (%llu s per cell)\n",
              stack_config.device.name,
              static_cast<unsigned long long>(sweep_seconds));
  std::printf("\n=== ops/sec vs dirty-page threshold ===\n%-12s",
              "kind \\ thr");
  for (std::uint64_t t : thresholds) {
    std::printf("%10llu", static_cast<unsigned long long>(t));
  }
  std::printf("\n");

  const auto sweep = writeback::writeback_sweep(stack_config, kinds,
                                                thresholds, sweep_seconds);
  for (writeback::WbKind kind : kinds) {
    std::printf("%-12s", writeback::wb_kind_name(kind));
    for (std::uint64_t t : thresholds) {
      for (const auto& p : sweep) {
        if (p.kind == kind && p.threshold_pages == t) {
          std::printf("%10.0f", p.ops_per_sec);
        }
      }
    }
    std::printf("\n");
  }
  std::printf("\n(dirty evictions paid at the largest threshold: ");
  for (writeback::WbKind kind : kinds) {
    for (const auto& p : sweep) {
      if (p.kind == kind && p.threshold_pages == thresholds.back()) {
        std::printf("%s=%llu ", writeback::wb_kind_name(kind),
                    static_cast<unsigned long long>(p.dirty_evictions));
      }
    }
  }
  std::printf(")\n");

  // Closed loop: Q-learning actuating the threshold, vs the fixed default.
  std::printf("\n=== online Q-learning vs fixed threshold (%llu s runs, "
              "first third excluded as warmup) ===\n",
              static_cast<unsigned long long>(rl_seconds));
  readahead::RlConfig rl;
  rl.actions_kb = {256, 2048, 8192, 16384, 28000, 40000};  // thresholds
  // Thresholds past cache capacity are catastrophic for the sequential
  // writer; explore locally so a converged agent cannot blunder into them
  // from across the action set.
  rl.local_exploration = true;
  for (writeback::WbKind kind : kinds) {
    writeback::WbConfig config;
    config.kind = kind;
    rl.seed = 23 + static_cast<std::uint64_t>(kind);
    const writeback::WbEvalOutcome outcome = writeback::evaluate_wb_rl(
        stack_config, config, /*default_threshold_pages=*/4096, rl,
        rl_seconds, /*warmup_seconds=*/rl_seconds / 3);
    std::printf("%-12s fixed(4096) %10.0f ops/s   rl %10.0f ops/s   "
                "%.2fx\n",
                writeback::wb_kind_name(kind), outcome.fixed_ops_per_sec,
                outcome.rl_ops_per_sec, outcome.speedup);
  }
  std::printf(
      "\nthe same KML machinery closes a second loop on a different knob "
      "(paper §6). The sweep is the headline: the optimum is workload-"
      "dependent and the cliff past cache capacity is catastrophic; the "
      "label-free agent holds >= the sane default on every workload and "
      "never falls off the cliff (local exploration).\n");
  return 0;
}
