// tool_metrics_dump — live view of the kml::observe metrics registry.
//
// Drives a bench_table2-style closed-loop run (page cache + tuner + engine
// inference) plus a short training-thread burst, then dumps the registry
// through the C API export — the same snapshot a kernel module's debugfs
// file would render. Every number printed was recorded on the instrumented
// hot seams while the run was live; nothing is recomputed afterwards.
//
// Usage: tool_metrics_dump [eval-seconds] [--json|--prom]
//
// --prom renders the registry in Prometheus text exposition format via
// kml_metrics_prom — the exact bytes a /metrics scrape endpoint would
// serve. The run also drives the time-series retention ring (one sample
// per virtual second of the closed loop), so the sampler's cost shows up
// in the dump like every other instrumented seam.
#include "bench_common.h"

#include "capi/kml_api.h"
#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "runtime/engine.h"
#include "runtime/training_thread.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace {

using namespace kml;

nn::Network make_readahead_shaped_net() {
  math::Rng rng(7);
  nn::Network net = nn::build_mlp_classifier(
      readahead::kNumSelectedFeatures, 16, workloads::kNumTrainingClasses,
      rng);
  std::vector<double> means(readahead::kNumSelectedFeatures, 10.0);
  std::vector<double> stds(readahead::kNumSelectedFeatures, 2.0);
  net.normalizer().import_moments(means, stds);
  return net;
}

void count_records(void* user, const data::TraceRecord*, std::size_t n) {
  *static_cast<std::uint64_t*>(user) += n;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t eval_seconds = 4;
  bool json = false;
  bool prom = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else {
      const std::uint64_t s = std::strtoull(argv[i], nullptr, 10);
      if (s > 0) eval_seconds = s;
    }
  }

  if (kml_metrics_enabled() == 0) {
    std::printf("kml::observe is compiled out (KML_OBSERVE=OFF) or "
                "disabled; nothing to dump\n");
    return 0;
  }

  // Closed loop: tuner windows, engine inference latency, page-cache
  // hit/miss, circular-buffer traffic. Scaled down from bench_table2 so the
  // tool answers in seconds.
  readahead::ExperimentConfig config;
  config.cache_pages = 8'192;
  config.num_keys = 200'000;

  runtime::Engine engine(make_readahead_shaped_net());
  runtime::HealthMonitor monitor;
  engine.attach_health(&monitor);
  const readahead::ReadaheadTuner::PredictFn predictor =
      [&engine](const readahead::FeatureVector& features) {
        return engine.infer_class(features.data(),
                                  readahead::kNumSelectedFeatures);
      };

  readahead::TunerConfig tuner_config;
  tuner_config.health = &monitor;
  if (!json && !prom) {
    std::printf("running closed loop (%llu virtual seconds, readrandom)...\n",
                static_cast<unsigned long long>(eval_seconds));
  }
  kml_timeseries_sample(kml_now_ns());  // baseline tick before the run
  const readahead::EvalOutcome outcome = readahead::evaluate_closed_loop(
      config, workloads::WorkloadType::kReadRandom, predictor, tuner_config,
      eval_seconds);
  kml_timeseries_sample(kml_now_ns());  // the run's deltas become window 1

  // Training-thread burst: trainer batches/records, batch-latency spans,
  // heartbeat + registry-sourced drop-rate polling.
  {
    std::uint64_t seen = 0;
    runtime::TrainingThread trainer(1 << 12, 128, count_records, &seen);
    trainer.attach_health(&monitor);
    for (std::uint64_t i = 0; i < 20'000; ++i) {
      trainer.submit(data::TraceRecord{1, i, i, 0});
    }
  }

  if (prom) {
    // Two-call snprintf convention: probe the size, then render exactly.
    char probe[1];
    const size_t need = kml_metrics_prom(probe, sizeof(probe));
    std::vector<char> out(need + 1);
    kml_metrics_prom(out.data(), out.size());
    std::fputs(out.data(), stdout);
    std::printf("# timeseries samples: %llu\n",
                static_cast<unsigned long long>(kml_timeseries_samples()));
    return 0;
  }

  char buf[1 << 16];
  const size_t need = kml_metrics_export(buf, sizeof(buf), json ? 1 : 0);
  std::printf("%s\n", buf);
  if (need >= sizeof(buf)) {
    std::fprintf(stderr, "warning: export truncated (%zu bytes needed)\n",
                 need);
  }

  if (!json) {
    std::printf("closed-loop sanity: vanilla %.0f ops/s, kml %.0f ops/s, "
                "%llu tuner windows, %llu records dropped\n",
                outcome.vanilla_ops_per_sec, outcome.kml_ops_per_sec,
                static_cast<unsigned long long>(outcome.timeline.size()),
                static_cast<unsigned long long>(outcome.dropped_records));
    // SPSC-contract violations: pushes that reached a ShardedBuffer with an
    // unfolded shard id and were folded modulo the shard count. Any non-zero
    // value is a producer racing another producer on one ring — a latent
    // data-corruption bug, not a tuning knob (see data/sharded_buffer.h).
    const long long folded =
        kml_metrics_counter(observe::kMetricBufferFoldedPushes);
    std::printf("buffer folded pushes: %lld%s\n", folded < 0 ? 0 : folded,
                folded > 0 ? "  <-- SPSC contract broken, fix the producer"
                           : "");
    // Registrations silently refused because a pool filled up. Non-zero
    // means some metric above is missing data — raise kMaxCounters & co.
    // (Read through registry_overflow_count(): the export surfaces the same
    // number as the synthetic "observe.registry.overflow" counter row.)
    std::printf("registry overflow: %llu dropped registration(s)%s\n",
                static_cast<unsigned long long>(
                    observe::registry_overflow_count()),
                observe::registry_overflow_count() > 0
                    ? "  <-- pools too small, metrics were lost"
                    : "");
  }
  return 0;
}
