// bench_table2 — reproduces Table 2 of the paper.
//
// "KML readahead neural network model improved RocksDB I/O performance
// under six workloads across two device types: average performance gain for
// SSD was 82.5% and for NVMe was 37.3%."
//
// Protocol, as in §4: train the classifier on four workloads on NVMe only;
// evaluate on all six workloads (including never-seen updaterandom and
// mixgraph) on both NVMe and SATA SSD; report the KML/vanilla throughput
// ratio per cell. Expected shape (EXPERIMENTS.md): readseq ~1.0x (device-
// bound), readrandom the largest win, SSD wins exceed NVMe wins.
//
// Usage: bench_table2 [eval-seconds] [--seconds N] [--model path] [--json]
//
// --seconds N sets the virtual-time evaluation window per cell (equivalent
// to the positional eval-seconds, kept for compatibility). Short windows
// are dominated by tuner warm-up: 1-second runs reporting ~1.00x across the
// board are expected, not a regression — see EXPERIMENTS.md.
//
// --json additionally writes every per-cell speedup and the device averages
// to BENCH_table2.json (same convention as bench_overheads).
#include "bench_common.h"
#include "portability/thread.h"

#include <cstdlib>
#include <cstring>

int main(int argc, char** argv) {
  using namespace kml;

  const bool json = bench::consume_flag(&argc, argv, "--json");
  std::uint64_t eval_seconds = 15;
  const char* model_path = bench::kDefaultModelPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      const std::uint64_t s = std::strtoull(argv[++i], nullptr, 10);
      if (s > 0) eval_seconds = s;
    } else {
      const std::uint64_t s = std::strtoull(argv[i], nullptr, 10);
      if (s > 0) eval_seconds = s;
    }
  }
  if (eval_seconds < 5) {
    std::printf("note: %llu s windows are tuner warm-up dominated; ~1.00x "
                "cells are expected at this length (use --seconds 15 for "
                "the Table 2 protocol)\n",
                static_cast<unsigned long long>(eval_seconds));
  }

  nn::Network net = bench::train_or_load_model(model_path);
  const auto predictor = bench::nn_predictor(net);

  // Paper's reported ratios for side-by-side comparison.
  const double paper_nvme[6] = {0.96, 1.65, 1.04, 1.55, 1.53, 1.51};
  const double paper_ssd[6] = {1.02, 2.30, 1.12, 2.20, 2.22, 2.09};

  struct DeviceRun {
    const char* name;
    sim::DeviceConfig device;
    double speedups[6];
  };
  DeviceRun runs[2] = {{"NVMe", sim::nvme_config(), {}},
                       {"SSD", sim::sata_ssd_config(), {}}};

  for (DeviceRun& run : runs) {
    readahead::ExperimentConfig config;
    config.device = run.device;
    std::printf("\nbuilding %s actuation table from the readahead study...\n",
                run.name);
    readahead::TunerConfig tuner_config;
    tuner_config.class_ra_kb = bench::actuation_table(config);
    std::printf("  table:");
    for (int w = 0; w < workloads::kNumTrainingClasses; ++w) {
      std::printf(" %s=%uKB",
                  workloads::workload_name(
                      static_cast<workloads::WorkloadType>(w)),
                  tuner_config.class_ra_kb[static_cast<std::size_t>(w)]);
    }
    std::printf("\n");

    for (int w = 0; w < workloads::kNumWorkloads; ++w) {
      const auto type = static_cast<workloads::WorkloadType>(w);
      const readahead::EvalOutcome outcome = readahead::evaluate_closed_loop(
          config, type, predictor, tuner_config, eval_seconds);
      run.speedups[w] = outcome.speedup;
      std::printf("  %-22s %-5s vanilla %10.0f ops/s   kml %10.0f ops/s   "
                  "speedup %.2fx\n",
                  workloads::workload_name(type), run.name,
                  outcome.vanilla_ops_per_sec, outcome.kml_ops_per_sec,
                  outcome.speedup);
    }
  }

  std::printf("\n=== Table 2: KML speedup over vanilla readahead ===\n");
  std::printf("%-24s %14s %14s %14s %14s\n", "Benchmarks", "NVMe (ours)",
              "NVMe (paper)", "SSD (ours)", "SSD (paper)");
  double avg[2] = {0.0, 0.0};
  for (int w = 0; w < workloads::kNumWorkloads; ++w) {
    std::printf("%-24s %13.2fx %13.2fx %13.2fx %13.2fx\n",
                workloads::workload_name(
                    static_cast<workloads::WorkloadType>(w)),
                runs[0].speedups[w], paper_nvme[w], runs[1].speedups[w],
                paper_ssd[w]);
    avg[0] += runs[0].speedups[w];
    avg[1] += runs[1].speedups[w];
  }
  avg[0] /= workloads::kNumWorkloads;
  avg[1] /= workloads::kNumWorkloads;
  std::printf("%-24s %13.2fx %13.2fx %13.2fx %13.2fx\n", "average", avg[0],
              1.373, avg[1], 1.825);
  std::printf("\naverage gain: NVMe %+.1f%% (paper +37.3%%), SSD %+.1f%% "
              "(paper +82.5%%)\n",
              (avg[0] - 1.0) * 100.0, (avg[1] - 1.0) * 100.0);

  if (json) {
    bench::JsonReport report;
    report.add("eval_seconds", static_cast<double>(eval_seconds));
    char key[80];
    for (int d = 0; d < 2; ++d) {
      for (int w = 0; w < workloads::kNumWorkloads; ++w) {
        std::snprintf(key, sizeof(key), "%s_%s_speedup",
                      d == 0 ? "nvme" : "ssd",
                      workloads::workload_name(
                          static_cast<workloads::WorkloadType>(w)));
        report.add(key, runs[d].speedups[w]);
      }
    }
    report.add("nvme_avg_speedup", avg[0]);
    report.add("ssd_avg_speedup", avg[1]);
    report.add("cpus", static_cast<double>(kml_num_cpus()));
    const std::string path = bench::json_artifact_path("BENCH_table2.json");
    if (report.write_file(path.c_str())) {
      std::printf("\nwrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
