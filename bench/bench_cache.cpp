// bench_cache — the eviction case-study evaluation (DESIGN.md §13).
//
// Runs the phase-shifting workload (eviction/workload.h) under each static
// reclaim policy (LRU, CLOCK, scan-resistant GCLOCK), then under the
// ML-tuned CacheTuner (phase classifier -> policy actuation through the
// engine's batched-inference path) and the Q-learning variant. The point of
// the study: no static policy wins every phase, so the tuned run should
// beat the best static policy on overall hit-rate.
//
// Also reports the eviction-decision cost per policy: real wall-clock ns
// per eviction on a 100%-miss cyclic scan (the reclaim path's worst case).
//
// Usage: bench_cache [--json] [--quick]
//
// --json writes BENCH_cache.json (flat numeric fields, same convention as
// the other bench binaries). --quick shortens the schedule for smoke runs.
// The trained classifier is cached as cache_model.kml (and its training
// windows as cache_traces.csv), following the same deploy-once flow the
// readahead benches use.
#include "bench_common.h"

#include "data/dataset.h"
#include "eviction/model.h"
#include "eviction/tuner.h"
#include "eviction/workload.h"
#include "portability/kml_lib.h"
#include "portability/thread.h"
#include "runtime/engine.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace kml;

constexpr const char* kCacheModelPath = "cache_model.kml";
constexpr const char* kCacheDatasetPath = "cache_traces.csv";

struct BenchConfig {
  sim::StackConfig stack;
  eviction::PhaseWorkloadConfig workload;
  std::uint64_t seconds_per_phase = 6;
  int repeats = 2;
  std::uint64_t train_seconds_per_run = 8;
};

BenchConfig make_config(bool quick) {
  BenchConfig config;
  // Geometry chosen so the phases disagree about the right policy: the
  // shifting window fits with room for one abandoned window's worth of
  // stale pages (what a weighted clock hoards), while the scan-mix hot
  // set fits only if the scan's one-touch pages are evicted early.
  config.stack.cache_pages = 16384;  // 64 MiB
  config.workload.file_pages = 1u << 18;
  config.workload.window_pages = 12'000;
  config.workload.hot_pages = 15'500;
  config.workload.cpu_ns_per_op = 4'000;
  if (quick) {
    config.seconds_per_phase = 3;
    config.repeats = 1;
    config.train_seconds_per_run = 4;
  }
  return config;
}

// Per-run outcome: overall hit rate plus hit/miss totals split by phase.
struct EvalOutcome {
  double hit_rate = 0.0;
  std::array<std::uint64_t, eviction::kNumCachePhases> hits{};
  std::array<std::uint64_t, eviction::kNumCachePhases> misses{};

  double phase_hit_rate(int phase) const {
    const std::uint64_t total = hits[phase] + misses[phase];
    return total == 0 ? 0.0
                      : static_cast<double>(hits[phase]) /
                            static_cast<double>(total);
  }
};

EvalOutcome summarize(const std::vector<eviction::PhaseResult>& results) {
  EvalOutcome out;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const eviction::PhaseResult& r : results) {
    const int p = static_cast<int>(r.phase);
    out.hits[p] += r.hits;
    out.misses[p] += r.misses;
    hits += r.hits;
    misses += r.misses;
  }
  if (hits + misses > 0) {
    out.hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  return out;
}

sim::StackConfig stack_for(const BenchConfig& config,
                           const eviction::PolicyChoice& policy) {
  sim::StackConfig stack = config.stack;
  stack.eviction_policy = policy.type;
  stack.eviction_params = policy.params;
  return stack;
}

EvalOutcome run_static(const BenchConfig& config,
                       const eviction::PolicyChoice& policy) {
  sim::StorageStack stack(stack_for(config, policy));
  eviction::PhaseDriver driver(stack, config.workload);
  return summarize(driver.run_schedule(eviction::default_phase_schedule(
      config.seconds_per_phase, config.repeats)));
}

struct MlOutcome {
  EvalOutcome eval;
  std::uint64_t windows = 0;
  std::uint64_t policy_switches = 0;
  std::uint64_t degraded_windows = 0;
};

MlOutcome run_ml(const BenchConfig& config, runtime::Engine& engine) {
  // The tuned run starts from vanilla LRU; everything else is the model.
  sim::StorageStack stack(stack_for(config, eviction::PolicyChoice{}));
  eviction::CacheTunerConfig tuner_config;
  tuner_config.batch_predict =
      eviction::make_cache_engine_batch_predictor(engine);
  eviction::CacheTuner tuner(
      stack, eviction::make_cache_engine_predictor(engine), tuner_config);
  eviction::PhaseDriver driver(stack, config.workload);
  auto tick = [&tuner](std::uint64_t now_ns) { tuner.on_tick(now_ns); };
  MlOutcome out;
  out.eval = summarize(driver.run_schedule(
      eviction::default_phase_schedule(config.seconds_per_phase,
                                       config.repeats),
      tick));
  out.windows = tuner.windows();
  out.policy_switches = stack.cache().stats().policy_switches;
  out.degraded_windows = tuner.degraded_windows();
  return out;
}

EvalOutcome run_rl(const BenchConfig& config) {
  sim::StorageStack stack(stack_for(config, eviction::PolicyChoice{}));
  readahead::QLearningTuner rl(
      stack, eviction::cache_rl_config(),
      eviction::make_policy_actuator(stack,
                                     eviction::default_policy_table()));
  eviction::PhaseDriver driver(stack, config.workload);
  // Reward stream: cumulative cache hits — the agent maximizes hit gain
  // per window, with no labels and no offline model.
  auto tick = [&rl, &stack](std::uint64_t now_ns) {
    rl.on_tick(now_ns, stack.cache().stats().hits);
  };
  return summarize(driver.run_schedule(
      eviction::default_phase_schedule(config.seconds_per_phase,
                                       config.repeats),
      tick));
}

// Real wall-clock cost of the reclaim decision: a cyclic scan over
// 2x capacity with readahead disabled misses on every access once the
// cache is warm, so each read is exactly one pick_victim + one insert.
double eviction_decision_ns(const eviction::PolicyChoice& policy) {
  sim::StackConfig stack_config;
  stack_config.cache_pages = 4096;
  stack_config.device.default_ra_kb = 0;  // one insert per read
  stack_config.eviction_policy = policy.type;
  stack_config.eviction_params = policy.params;
  sim::StorageStack stack(stack_config);
  sim::FileHandle& file = stack.files().create(1u << 16);

  const std::uint64_t span = 2 * stack_config.cache_pages;
  for (std::uint64_t i = 0; i < span; ++i) {  // warm fill
    stack.cache().read(file, i % span, 1);
  }
  const std::uint64_t evicted_before = stack.cache().stats().evicted;
  const std::uint64_t kOps = 400'000;
  const std::uint64_t start = kml_now_ns();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    stack.cache().read(file, i % span, 1);
  }
  const std::uint64_t elapsed = kml_now_ns() - start;
  const std::uint64_t evictions =
      stack.cache().stats().evicted - evicted_before;
  return evictions == 0 ? 0.0
                        : static_cast<double>(elapsed) /
                              static_cast<double>(evictions);
}

nn::Network train_or_load_cache_model(const BenchConfig& config,
                                      double* accuracy_out) {
  nn::Network net;
  if (nn::load_model(net, kCacheModelPath)) {
    std::printf("loaded cache model from %s\n", kCacheModelPath);
    *accuracy_out = -1.0;  // not re-evaluated on a cached model
    return net;
  }
  data::Dataset dataset(eviction::kNumCacheFeatures);
  if (data::load_dataset_csv(dataset, kCacheDatasetPath)) {
    std::printf("loaded %d training windows from %s\n", dataset.size(),
                kCacheDatasetPath);
  } else {
    std::printf("collecting cache traces (%d phases x %d policies x %llu s "
                "each)...\n",
                eviction::kNumCachePhases, eviction::kNumCachePhases,
                static_cast<unsigned long long>(config.train_seconds_per_run));
    eviction::CacheTraceGenConfig trace_config;
    trace_config.stack = config.stack;
    trace_config.workload = config.workload;
    trace_config.seconds_per_run = config.train_seconds_per_run;
    dataset = eviction::collect_cache_training_data(trace_config);
    if (data::save_dataset_csv(dataset, kCacheDatasetPath)) {
      std::printf("cached %d windows to %s\n", dataset.size(),
                  kCacheDatasetPath);
    }
  }
  net = eviction::train_cache_nn(dataset, eviction::CacheModelConfig{});
  *accuracy_out = eviction::evaluate_cache_nn(net, dataset);
  std::printf("training-set accuracy: %.1f%% on %d windows\n",
              *accuracy_out * 100.0, dataset.size());
  if (nn::save_model(net, kCacheModelPath)) {
    std::printf("saved model to %s\n", kCacheModelPath);
  }
  return net;
}

void print_row(const char* name, const EvalOutcome& o) {
  std::printf("  %-8s %8.4f   %8.4f %8.4f %8.4f\n", name, o.hit_rate,
              o.phase_hit_rate(0), o.phase_hit_rate(1), o.phase_hit_rate(2));
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::consume_flag(&argc, argv, "--json");
  const bool quick = bench::consume_flag(&argc, argv, "--quick");
  const BenchConfig config = make_config(quick);

  const eviction::PolicyChoice lru{};  // plain LRU
  eviction::PolicyChoice clock_policy;
  clock_policy.type = sim::EvictionPolicyType::kClock;
  eviction::PolicyChoice gclock;  // scan-resistant, as in the tuner table
  gclock.type = sim::EvictionPolicyType::kGclock;
  gclock.params.gclock_insert_weight = 0;
  gclock.params.gclock_hit_weight = 2;
  gclock.params.gclock_max_weight = 8;

  std::printf("phase schedule: %d x (shifting, scanmix) + zipfhot, %llu s "
              "per phase, %llu-page cache\n\n",
              config.repeats,
              static_cast<unsigned long long>(config.seconds_per_phase),
              static_cast<unsigned long long>(config.stack.cache_pages));

  const EvalOutcome lru_out = run_static(config, lru);
  const EvalOutcome clock_out = run_static(config, clock_policy);
  const EvalOutcome gclock_out = run_static(config, gclock);

  double accuracy = 0.0;
  nn::Network net = train_or_load_cache_model(config, &accuracy);
  runtime::Engine engine(std::move(net));
  const MlOutcome ml = run_ml(config, engine);
  const EvalOutcome rl_out = run_rl(config);

  const double best_static =
      std::max(lru_out.hit_rate,
               std::max(clock_out.hit_rate, gclock_out.hit_rate));

  std::printf("\n  policy    overall    shifting  scanmix  zipfhot\n");
  print_row("lru", lru_out);
  print_row("clock", clock_out);
  print_row("gclock", gclock_out);
  print_row("ml", ml.eval);
  print_row("rl", rl_out);
  std::printf("\nml tuner: %llu windows, %llu policy switches, %llu degraded"
              "\nml vs best static: %.4f vs %.4f (%s)\n",
              static_cast<unsigned long long>(ml.windows),
              static_cast<unsigned long long>(ml.policy_switches),
              static_cast<unsigned long long>(ml.degraded_windows),
              ml.eval.hit_rate, best_static,
              ml.eval.hit_rate > best_static ? "ML WINS" : "ml loses");

  const double ns_lru = eviction_decision_ns(lru);
  const double ns_clock = eviction_decision_ns(clock_policy);
  const double ns_gclock = eviction_decision_ns(gclock);
  std::printf("\neviction decision (wall ns/eviction, 100%%-miss scan): "
              "lru %.0f  clock %.0f  gclock %.0f\n",
              ns_lru, ns_clock, ns_gclock);

  if (json) {
    bench::JsonReport report;
    report.add("hit_rate_lru", lru_out.hit_rate);
    report.add("hit_rate_clock", clock_out.hit_rate);
    report.add("hit_rate_gclock", gclock_out.hit_rate);
    report.add("hit_rate_ml", ml.eval.hit_rate);
    report.add("hit_rate_rl", rl_out.hit_rate);
    report.add("hit_rate_best_static", best_static);
    report.add("ml_beats_best_static",
               ml.eval.hit_rate > best_static ? 1.0 : 0.0);
    for (int p = 0; p < eviction::kNumCachePhases; ++p) {
      const std::string suffix =
          eviction::cache_phase_name(static_cast<eviction::CachePhase>(p));
      report.add(("hit_rate_lru_" + suffix).c_str(),
                 lru_out.phase_hit_rate(p));
      report.add(("hit_rate_clock_" + suffix).c_str(),
                 clock_out.phase_hit_rate(p));
      report.add(("hit_rate_gclock_" + suffix).c_str(),
                 gclock_out.phase_hit_rate(p));
      report.add(("hit_rate_ml_" + suffix).c_str(),
                 ml.eval.phase_hit_rate(p));
      report.add(("hit_rate_rl_" + suffix).c_str(),
                 rl_out.phase_hit_rate(p));
    }
    report.add("ml_windows", static_cast<double>(ml.windows));
    report.add("ml_policy_switches", static_cast<double>(ml.policy_switches));
    report.add("ml_degraded_windows",
               static_cast<double>(ml.degraded_windows));
    report.add("model_train_accuracy", accuracy);
    report.add("eviction_ns_lru", ns_lru);
    report.add("eviction_ns_clock", ns_clock);
    report.add("eviction_ns_gclock", ns_gclock);
    report.add("cpus", static_cast<double>(kml_num_cpus()));
    const std::string path = bench::json_artifact_path("BENCH_cache.json");
    if (report.write_file(path.c_str())) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
