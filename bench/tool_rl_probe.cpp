// tool_rl_probe — diagnostic: Q-learning timeline and learned Q-table on a
// single workload run.
#include "readahead/pipeline.h"

#include <cstdio>

int main() {
  using namespace kml;
  readahead::ExperimentConfig config;
  config.num_keys = 100000;
  config.cache_pages = 2048;
  config.device = sim::sata_ssd_config();

  readahead::RlConfig rl;
  rl.seed = 5;
  const readahead::RlEvalOutcome outcome = readahead::evaluate_rl_closed_loop(
      config, workloads::WorkloadType::kReadRandom, rl, 40, 20);

  std::printf("vanilla %.0f, rl(post-warmup) %.0f, rl(all) %.0f, speedup %.2f\n",
              outcome.vanilla_ops_per_sec, outcome.rl_ops_per_sec,
              outcome.rl_ops_per_sec_all, outcome.speedup);
  std::printf("\n%4s %5s %6s %8s %8s %7s\n", "win", "state", "action",
              "ra_kb", "reward", "eps");
  for (const auto& p : outcome.timeline) {
    std::printf("%4llu %5d %6d %8u %8.0f %7.3f\n",
                static_cast<unsigned long long>(p.window), p.state, p.action,
                p.ra_kb, p.reward, p.epsilon);
  }
  return 0;
}
