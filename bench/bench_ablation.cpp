// bench_ablation — ablations over the design choices DESIGN.md §5 calls out.
//
// Axes:
//   1. feature set        — paper's 5 selected vs all 8 candidates vs a
//                           minimal 3 (count, mean|Δoffset|, readahead)
//   2. log compression    — log(1+x) feature pipeline vs raw linear features,
//                           measured where it matters: NVMe-trained model
//                           evaluated on SATA windows (device transfer)
//   3. rate augmentation  — jittered event-rate copies vs none (transfer)
//   4. optimizer          — momentum 0.99 (paper) vs 0.0; learning rates
//   5. model capacity     — hidden width vs accuracy vs memory footprint
//   6. inference period   — the paper's 1 s actuation cadence vs 0.5/2/4 s
//
// Usage: bench_ablation [--fast]
#include "bench_common.h"
#include "nn/quantized.h"

#include <cstring>

namespace {

using namespace kml;

// Project a candidate-feature dataset onto a subset of columns.
data::Dataset project(const data::Dataset& all,
                      const std::vector<int>& columns) {
  data::Dataset out(static_cast<int>(columns.size()));
  std::vector<double> row(columns.size());
  for (int i = 0; i < all.size(); ++i) {
    for (std::size_t j = 0; j < columns.size(); ++j) {
      row[j] = all.features(i)[columns[j]];
    }
    out.add(row.data(), all.label(i));
  }
  return out;
}

data::Dataset collect(bool log_features, bool all_features,
                      sim::DeviceConfig device, std::uint64_t seconds) {
  readahead::TraceGenConfig config;
  config.base.device = device;
  config.log_features = log_features;
  config.all_candidate_features = all_features;
  config.seconds_per_run = seconds;
  config.ra_values_kb = {8, 64, 128, 512};
  return readahead::collect_training_data(config);
}

double transfer_accuracy(const data::Dataset& train_nvme,
                         const data::Dataset& eval_ssd,
                         const readahead::ModelConfig& config) {
  nn::Network net = readahead::train_readahead_nn(train_nvme, config);
  return readahead::evaluate_nn(net, eval_ssd);
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }
  const std::uint64_t secs = fast ? 6 : 10;
  const int kfold = fast ? 5 : 10;

  std::printf("== collecting ablation datasets ==\n");
  const data::Dataset all_log =
      collect(/*log=*/true, /*all=*/true, sim::nvme_config(), secs);
  const data::Dataset all_linear =
      collect(/*log=*/false, /*all=*/true, sim::nvme_config(), secs);
  const data::Dataset ssd_log =
      collect(/*log=*/true, /*all=*/true, sim::sata_ssd_config(), secs);
  const data::Dataset ssd_linear =
      collect(/*log=*/false, /*all=*/true, sim::sata_ssd_config(), secs);
  std::printf("NVMe: %d windows; SSD: %d windows\n", all_log.size(),
              ssd_log.size());

  const std::vector<int> kPaperFive{0, 1, 2, 3, 4};
  const std::vector<int> kSelected{0, 1, 3, 6, 4};  // shipped set
  const std::vector<int> kMinimal{0, 3, 4};
  const std::vector<int> kAll{0, 1, 2, 3, 4, 5, 6, 7};
  readahead::ModelConfig base_config;

  std::printf("\n== 1. feature sets (k-fold accuracy, k=%d) ==\n", kfold);
  struct FeatureSet {
    const char* name;
    const std::vector<int>* columns;
  } sets[] = {{"paper's 5 (incl. CMSD)", &kPaperFive},
              {"ours 5 (CMSD->inodes)", &kSelected},
              {"all 8 candidates", &kAll},
              {"minimal 3 (count,diff,ra)", &kMinimal}};
  for (const FeatureSet& set : sets) {
    const data::Dataset d = project(all_log, *set.columns);
    std::printf("  %-28s %.1f%%\n", set.name,
                readahead::kfold_nn_accuracy(d, kfold, base_config) * 100.0);
  }

  std::printf("\n== 2. log compression (NVMe-trained, SSD windows) ==\n");
  {
    const double with_log = transfer_accuracy(
        project(all_log, kSelected), project(ssd_log, kSelected),
        base_config);
    const double without_log = transfer_accuracy(
        project(all_linear, kSelected), project(ssd_linear, kSelected),
        base_config);
    std::printf("  log(1+x) features            %.1f%% transfer accuracy\n",
                with_log * 100.0);
    std::printf("  raw linear features          %.1f%% transfer accuracy\n",
                without_log * 100.0);
  }

  std::printf("\n== 3. rate augmentation (NVMe-trained, SSD windows) ==\n");
  {
    readahead::ModelConfig no_augment = base_config;
    no_augment.augment_copies = 0;
    const double with_aug = transfer_accuracy(
        project(all_log, kSelected), project(ssd_log, kSelected),
        base_config);
    const double without_aug = transfer_accuracy(
        project(all_log, kSelected), project(ssd_log, kSelected),
        no_augment);
    std::printf("  with rate jitter (paper run) %.1f%%\n", with_aug * 100.0);
    std::printf("  without augmentation         %.1f%%\n",
                without_aug * 100.0);
  }

  const data::Dataset selected = project(all_log, kSelected);

  std::printf("\n== 4. optimizer (k-fold accuracy) ==\n");
  for (const double momentum : {0.99, 0.9, 0.0}) {
    readahead::ModelConfig config = base_config;
    config.momentum = momentum;
    std::printf("  momentum %.2f, lr 0.01       %.1f%%\n", momentum,
                readahead::kfold_nn_accuracy(selected, kfold, config) * 100);
  }
  for (const double lr : {0.1, 0.001}) {
    readahead::ModelConfig config = base_config;
    config.learning_rate = lr;
    std::printf("  momentum 0.99, lr %-9.3f  %.1f%%\n", lr,
                readahead::kfold_nn_accuracy(selected, kfold, config) * 100);
  }

  std::printf("\n== 5. model capacity ==\n");
  for (const int hidden : {4, 16, 64}) {
    readahead::ModelConfig config = base_config;
    config.hidden = hidden;
    const double acc =
        readahead::kfold_nn_accuracy(selected, kfold, config);
    nn::Network net = readahead::train_readahead_nn(selected, config);
    std::printf("  hidden=%-3d  accuracy %.1f%%  weights %zu bytes\n", hidden,
                acc * 100.0, net.param_bytes());
  }

  std::printf("\n== 6. fixed-point (Q16.16) inference vs double ==\n");
  {
    math::Rng rng(77);
    const data::Fold fold = data::train_test_split(selected, 0.3, rng);
    nn::Network net = readahead::train_readahead_nn(fold.train, base_config);
    nn::QuantizedNetwork q;
    if (nn::QuantizedNetwork::quantize(net, q)) {
      int agree = 0;
      int q_correct = 0;
      for (int i = 0; i < fold.test.size(); ++i) {
        std::vector<double> z(fold.test.features(i),
                              fold.test.features(i) +
                                  fold.test.num_features());
        net.normalizer().transform_row(z.data(), fold.test.num_features());
        matrix::MatD x(1, fold.test.num_features());
        for (int j = 0; j < fold.test.num_features(); ++j) {
          x.at(0, j) = z[static_cast<std::size_t>(j)];
        }
        const int d_pred = net.predict_classes(x).at(0, 0);
        const int q_pred = q.infer_class(fold.test.features(i),
                                         fold.test.num_features());
        if (d_pred == q_pred) ++agree;
        if (q_pred == fold.test.label(i)) ++q_correct;
      }
      std::printf("  double accuracy %.1f%%  fixed accuracy %.1f%%  "
                  "agreement %.1f%%  weights %zu B vs %zu B (no FPU)\n",
                  readahead::evaluate_nn(net, fold.test) * 100.0,
                  100.0 * q_correct / fold.test.size(),
                  100.0 * agree / fold.test.size(), q.param_bytes(),
                  net.param_bytes());
    }
  }

  std::printf("\n== 7. inference period (readrandom on SSD, closed loop) ==\n");
  {
    nn::Network net = readahead::train_readahead_nn(selected, base_config);
    const auto predictor = bench::nn_predictor(net);
    readahead::ExperimentConfig config;
    config.device = sim::sata_ssd_config();
    readahead::TunerConfig tuner_config;
    tuner_config.class_ra_kb = {1024, 8, 512, 8};
    for (const double period_s : {0.5, 1.0, 2.0, 4.0}) {
      tuner_config.period_ns =
          static_cast<std::uint64_t>(period_s * sim::kNsPerSec);
      const auto outcome = readahead::evaluate_closed_loop(
          config, workloads::WorkloadType::kReadRandom, predictor,
          tuner_config, fast ? 8 : 12);
      std::printf("  period %.1f s  speedup %.2fx\n", period_s,
                  outcome.speedup);
    }
  }
  return 0;
}
