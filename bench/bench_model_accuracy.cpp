// bench_model_accuracy — reproduces the §4 model evaluation.
//
// The paper trains the readahead neural network on data collected from four
// workloads (readseq, readrandom, readreverse, readrandomwriterandom) on
// NVMe, and reports 95.5% average accuracy under k-fold cross-validation
// with k = 10. This binary regenerates the training set from the simulated
// stack, runs 10-fold cross-validation for the neural network, trains the
// decision-tree alternative, and prints a confusion matrix for a held-out
// split.
//
// Usage: bench_model_accuracy [seconds-per-trace-run]
#include "readahead/model.h"
#include "readahead/pipeline.h"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace kml;

  readahead::TraceGenConfig trace_config;
  trace_config.seconds_per_run = 12;
  if (argc > 1) {
    const std::uint64_t s = std::strtoull(argv[1], nullptr, 10);
    if (s > 0) trace_config.seconds_per_run = s;
  }

  std::printf("collecting training data: 4 workloads x %zu readahead values "
              "x %llu s on NVMe...\n",
              trace_config.ra_values_kb.size(),
              static_cast<unsigned long long>(trace_config.seconds_per_run));
  const data::Dataset dataset =
      readahead::collect_training_data(trace_config);
  std::printf("dataset: %d samples, %d features, %d classes\n",
              dataset.size(), dataset.num_features(), dataset.num_classes());

  int per_class[workloads::kNumTrainingClasses] = {};
  for (int i = 0; i < dataset.size(); ++i) ++per_class[dataset.label(i)];
  for (int w = 0; w < workloads::kNumTrainingClasses; ++w) {
    std::printf("  class %d (%s): %d samples\n", w,
                workloads::workload_name(
                    static_cast<workloads::WorkloadType>(w)),
                per_class[w]);
  }

  // k-fold cross-validation, k = 10 as in the paper.
  readahead::ModelConfig model_config;
  const double kfold = readahead::kfold_nn_accuracy(dataset, 10, model_config);
  std::printf("\nneural network 10-fold cross-validation accuracy: %.1f%% "
              "(paper: 95.5%%)\n",
              kfold * 100.0);

  // Confusion matrix on a held-out 25% split.
  math::Rng rng(99);
  const data::Fold fold = data::train_test_split(dataset, 0.25, rng);
  nn::Network net = readahead::train_readahead_nn(fold.train, model_config);
  const double holdout = readahead::evaluate_nn(net, fold.test);
  std::printf("hold-out accuracy: %.1f%%\n", holdout * 100.0);

  int confusion[workloads::kNumTrainingClasses]
               [workloads::kNumTrainingClasses] = {};
  {
    const matrix::MatD x = net.normalizer().transform(fold.test.to_matrix());
    const matrix::MatI pred = net.predict_classes(x);
    for (int i = 0; i < fold.test.size(); ++i) {
      ++confusion[fold.test.label(i)][pred.at(i, 0)];
    }
  }
  std::printf("\nconfusion matrix (rows = truth, cols = prediction):\n%24s",
              "");
  for (int c = 0; c < workloads::kNumTrainingClasses; ++c) {
    std::printf("%8d", c);
  }
  std::printf("\n");
  for (int r = 0; r < workloads::kNumTrainingClasses; ++r) {
    std::printf("%-24s",
                workloads::workload_name(
                    static_cast<workloads::WorkloadType>(r)));
    for (int c = 0; c < workloads::kNumTrainingClasses; ++c) {
      std::printf("%8d", confusion[r][c]);
    }
    std::printf("\n");
  }

  // Decision-tree alternative (§4 reports it as inferior to the NN).
  const readahead::ReadaheadTree dtree =
      readahead::train_readahead_dtree(fold.train);
  std::printf("\ndecision tree hold-out accuracy: %.1f%% (%d nodes, depth "
              "%d)\n",
              dtree.accuracy(fold.test) * 100.0, dtree.tree.node_count(),
              dtree.tree.depth());

  // Model footprint (paper: 3,916 bytes of dynamic memory at init).
  std::printf("\nneural network parameter footprint: %zu bytes "
              "(paper: 3,916 B total init footprint)\n",
              net.param_bytes());
  return 0;
}
