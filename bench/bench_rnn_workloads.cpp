// bench_rnn_workloads — the paper's future-work direction (§6), realized.
//
// "We also plan to support arbitrary computation DAGs (e.g., Recurrent
// Neural Networks (RNNs)) and Long Short-Term Memory (LSTM)." This
// experiment asks what that buys the readahead problem: instead of one
// feature vector per second, the classifier sees a *sequence* of five
// 200 ms sub-window feature vectors and can exploit temporal structure
// (ramp-up, burstiness, phase changes) that the MLP's single snapshot
// averages away.
//
// Compared head-to-head on identical data: Elman RNN, LSTM, and the paper's
// MLP fed the flattened sequence (same information, no recurrence).
//
// Usage: bench_rnn_workloads [seconds-per-trace-run]
#include "nn/recurrent.h"
#include "readahead/model.h"
#include "readahead/pipeline.h"

#include <cstdio>
#include <cstdlib>

namespace {

using namespace kml;

struct SequenceSplit {
  readahead::SequenceDataset train;
  readahead::SequenceDataset test;
};

SequenceSplit split(const readahead::SequenceDataset& all, double test_frac,
                    math::Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(all.size()));
  for (int i = 0; i < all.size(); ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = all.size() - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }
  SequenceSplit out;
  const int n_test = static_cast<int>(test_frac * all.size());
  for (int i = 0; i < all.size(); ++i) {
    const int src = order[static_cast<std::size_t>(i)];
    auto& dst = i < n_test ? out.test : out.train;
    dst.sequences.push_back(all.sequences[static_cast<std::size_t>(src)]);
    dst.labels.push_back(all.labels[static_cast<std::size_t>(src)]);
  }
  return out;
}

// Normalize sequences in place with moments fitted on the training rows.
data::ZScoreNormalizer fit_normalizer(readahead::SequenceDataset& train) {
  data::ZScoreNormalizer norm(readahead::kNumSelectedFeatures);
  for (const matrix::MatD& seq : train.sequences) {
    for (int t = 0; t < seq.rows(); ++t) {
      norm.observe(seq.row(t), seq.cols());
    }
  }
  return norm;
}

void apply_normalizer(const data::ZScoreNormalizer& norm,
                      readahead::SequenceDataset& dataset) {
  for (matrix::MatD& seq : dataset.sequences) {
    for (int t = 0; t < seq.rows(); ++t) {
      norm.transform_row(seq.row(t), seq.cols());
    }
  }
}

double train_and_eval_recurrent(nn::SequenceClassifier::CellKind kind,
                                const SequenceSplit& data, int epochs) {
  math::Rng rng(kind == nn::SequenceClassifier::CellKind::kRnn ? 101 : 103);
  nn::SequenceClassifier clf(kind, readahead::kNumSelectedFeatures, 16,
                             workloads::kNumTrainingClasses, rng);
  nn::SGD opt(0.02, 0.9);
  opt.attach(clf.params());
  std::vector<int> order(static_cast<std::size_t>(data.train.size()));
  for (int i = 0; i < data.train.size(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int i = data.train.size() - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
    }
    for (int i : order) {
      clf.train_step(data.train.sequences[static_cast<std::size_t>(i)],
                     data.train.labels[static_cast<std::size_t>(i)], opt);
    }
  }
  int correct = 0;
  for (int i = 0; i < data.test.size(); ++i) {
    if (clf.predict(data.test.sequences[static_cast<std::size_t>(i)]) ==
        data.test.labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return data.test.size() > 0
             ? static_cast<double>(correct) / data.test.size()
             : 0.0;
}

double train_and_eval_mlp(const SequenceSplit& data, int epochs) {
  // Flatten each (T x F) sequence into one T*F vector: identical
  // information, no recurrence.
  const int t_steps = data.train.sequences.front().rows();
  const int flat = t_steps * readahead::kNumSelectedFeatures;
  data::Dataset train_flat(flat);
  data::Dataset test_flat(flat);
  auto flatten = [&](const readahead::SequenceDataset& src,
                     data::Dataset& dst) {
    std::vector<double> row(static_cast<std::size_t>(flat));
    for (int i = 0; i < src.size(); ++i) {
      const matrix::MatD& seq = src.sequences[static_cast<std::size_t>(i)];
      for (int t = 0; t < seq.rows(); ++t) {
        for (int j = 0; j < seq.cols(); ++j) {
          row[static_cast<std::size_t>(t * seq.cols() + j)] = seq.at(t, j);
        }
      }
      dst.add(row.data(), src.labels[static_cast<std::size_t>(i)]);
    }
  };
  flatten(data.train, train_flat);
  flatten(data.test, test_flat);

  readahead::ModelConfig config;
  config.epochs = epochs * 4;  // batched epochs are cheaper than BPTT ones
  config.augment_copies = 0;   // inputs are pre-normalized sequences
  math::Rng rng(107);
  nn::Network net = nn::build_mlp_classifier(
      flat, 16, workloads::kNumTrainingClasses, rng);
  nn::CrossEntropyLoss loss;
  nn::SGD opt(config.learning_rate, config.momentum);
  opt.attach(net.params());
  net.train(train_flat.to_matrix(),
            train_flat.to_one_hot(workloads::kNumTrainingClasses), loss, opt,
            config.epochs, config.batch_size, rng);
  return net.accuracy(test_flat.to_matrix(), test_flat.to_labels());
}

}  // namespace

int main(int argc, char** argv) {
  readahead::SequenceGenConfig config;
  if (argc > 1) {
    const std::uint64_t s = std::strtoull(argv[1], nullptr, 10);
    if (s > 0) config.seconds_per_run = s;
  }

  std::printf("collecting %d-step sequences of %llu ms sub-windows "
              "(4 workloads x %zu RA values x %llu s on NVMe)...\n",
              config.steps_per_sequence,
              static_cast<unsigned long long>(config.sub_window_ms),
              config.ra_values_kb.size(),
              static_cast<unsigned long long>(config.seconds_per_run));
  readahead::SequenceDataset all = readahead::collect_sequence_data(config);
  std::printf("%d sequences collected\n", all.size());

  math::Rng rng(301);
  SequenceSplit data = split(all, 0.25, rng);
  const data::ZScoreNormalizer norm = fit_normalizer(data.train);
  apply_normalizer(norm, data.train);
  apply_normalizer(norm, data.test);
  std::printf("train %d / test %d sequences\n\n", data.train.size(),
              data.test.size());

  const double rnn_acc = train_and_eval_recurrent(
      nn::SequenceClassifier::CellKind::kRnn, data, 30);
  std::printf("Elman RNN  (16 hidden):            %.1f%%\n", rnn_acc * 100);
  const double lstm_acc = train_and_eval_recurrent(
      nn::SequenceClassifier::CellKind::kLstm, data, 30);
  std::printf("LSTM       (16 hidden):            %.1f%%\n", lstm_acc * 100);
  const double mlp_acc = train_and_eval_mlp(data, 30);
  std::printf("MLP        (flattened sequence):   %.1f%%\n", mlp_acc * 100);

  std::printf("\nall three consume identical data; recurrent models are the "
              "paper's §6 roadmap, the MLP its shipped design.\n");
  return 0;
}
