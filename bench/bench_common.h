// bench_common.h — shared plumbing for the experiment binaries.
//
// Model reuse follows the paper's deployment flow (§3.3): the first bench
// that needs the readahead model collects traces, trains in "user space",
// and saves a KML model file; later benches load that file instead of
// retraining, exactly like the kernel module would.
#pragma once

#include "readahead/model.h"
#include "readahead/pipeline.h"
#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>

namespace kml::bench {

// --- machine-readable results (--json) ---------------------------------------

// Consume `flag` from argv if present (so later argv consumers — e.g.
// benchmark::Initialize — never see it). Returns whether it was present.
inline bool consume_flag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (!found && std::strcmp(argv[i], flag) == 0) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return found;
}

// Minimal flat JSON document, insertion order preserved. Values are
// numbers, `null` (a measurement legitimately skipped on this host), or
// short machine-readable strings (skip reasons, tier names — no escaping,
// so keep them to [A-Za-z0-9_ <.-]). Enough for the BENCH_*.json artifacts
// a driver script diffs across commits; not a general serializer.
class JsonReport {
 public:
  void add(const char* key, double value) {
    fields_.push_back({key, Kind::kNumber, value, {}});
  }
  // A skipped cell: the key stays in the schema so the diff tooling sees
  // "measured nothing here on purpose" instead of a vanished field.
  void add_null(const char* key) {
    fields_.push_back({key, Kind::kNull, 0.0, {}});
  }
  void add_string(const char* key, const char* value) {
    fields_.push_back({key, Kind::kString, 0.0, value});
  }

  bool write_file(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    // Provenance stamp, first in every artifact so the perf trajectory is
    // attributable across PRs: which commit built the binary (KML_GIT_SHA
    // is baked at CMake configure time — for artifacts regenerated before
    // committing, that is the parent of the commit that ships them), which
    // build type produced the numbers, and when the run happened (UTC
    // wall clock; the only place the bench suite touches calendar time).
    std::vector<Field> all;
    all.reserve(fields_.size() + 3);
#ifndef KML_GIT_SHA
#define KML_GIT_SHA "unknown"
#endif
#ifndef KML_BUILD_TYPE
#define KML_BUILD_TYPE "unknown"
#endif
    all.push_back({"git_sha", Kind::kString, 0.0, KML_GIT_SHA});
    all.push_back({"build_type", Kind::kString, 0.0, KML_BUILD_TYPE});
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
      std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    }
    all.push_back({"timestamp_utc", Kind::kString, 0.0, stamp});
    all.insert(all.end(), fields_.begin(), fields_.end());
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Field& field = all[i];
      std::fprintf(f, "  \"%s\": ", field.key.c_str());
      switch (field.kind) {
        case Kind::kNumber:
          std::fprintf(f, "%.6f", field.number);
          break;
        case Kind::kNull:
          std::fprintf(f, "null");
          break;
        case Kind::kString:
          std::fprintf(f, "\"%s\"", field.text.c_str());
          break;
      }
      std::fprintf(f, "%s\n", i + 1 < all.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

 private:
  enum class Kind { kNumber, kNull, kString };
  struct Field {
    std::string key;
    Kind kind;
    double number;
    std::string text;
  };
  std::vector<Field> fields_;
};

// Resolve where a BENCH_<name>.json artifact belongs: the REPO ROOT. The
// benches run from build/ (or a ctest subdirectory), and writing into the
// cwd scattered the artifacts across build trees — the perf-trajectory
// tooling diffs committed BENCH_*.json at the root, so results written
// anywhere else were silently invisible to it.
//
// The root is found by walking up from the working directory to the first
// git repository boundary (a `.git` entry — directory, or file for
// worktrees) that also carries this repo's marker pair ROADMAP.md +
// PAPER.md. Probing for a lone ROADMAP.md was too generic: a bench run
// from a directory nested under an unrelated project with its own
// ROADMAP.md would have dropped the artifact into that foreign tree. The
// walk never crosses a repo boundary — if the first `.git` level is not
// this repo, or no boundary appears within 10 levels, it falls back to
// the bare filename (cwd).
inline std::string json_artifact_path(const char* filename) {
  const auto exists = [](const std::string& path) {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  };
  std::string prefix;
  for (int depth = 0; depth < 10; ++depth) {
    const std::string base = depth == 0 ? "." : prefix;
    if (exists(base + "/.git")) {
      if (exists(base + "/ROADMAP.md") && exists(base + "/PAPER.md")) {
        return prefix + filename;
      }
      break;  // inside some other repo: never write into a foreign root
    }
    prefix += "../";
  }
  return filename;
}

inline constexpr const char* kDefaultModelPath = "readahead_model.kml";
inline constexpr const char* kDefaultDatasetPath = "readahead_traces.csv";

// Load previously collected training windows, or run the trace-collection
// pipeline and cache the result as CSV (the offline development loop of
// §3.3).
inline data::Dataset collect_or_load_dataset(
    const char* path, std::uint64_t trace_seconds = 12) {
  data::Dataset dataset;
  if (data::load_dataset_csv(dataset, path)) {
    std::printf("loaded %d training windows from %s\n", dataset.size(), path);
    return dataset;
  }
  std::printf("collecting traces (4 workloads x 6 RA values x %llu s on "
              "NVMe)...\n",
              static_cast<unsigned long long>(trace_seconds));
  readahead::TraceGenConfig trace_config;
  trace_config.seconds_per_run = trace_seconds;
  dataset = readahead::collect_training_data(trace_config);
  if (data::save_dataset_csv(dataset, path)) {
    std::printf("cached %d windows to %s\n", dataset.size(), path);
  }
  return dataset;
}

// Load the trained readahead network from `path`, or regenerate training
// data, train, evaluate, and save it there. Returns the ready network.
inline nn::Network train_or_load_model(const char* path,
                                       std::uint64_t trace_seconds = 12) {
  nn::Network net;
  if (nn::load_model(net, path)) {
    std::printf("loaded readahead model from %s\n", path);
    return net;
  }
  const data::Dataset dataset =
      collect_or_load_dataset(kDefaultDatasetPath, trace_seconds);

  readahead::ModelConfig model_config;
  net = readahead::train_readahead_nn(dataset, model_config);
  std::printf("training-set accuracy: %.1f%% on %d windows\n",
              readahead::evaluate_nn(net, dataset) * 100.0, dataset.size());
  if (nn::save_model(net, path)) {
    std::printf("saved model to %s (KML model file format)\n", path);
  }
  return net;
}

// Wrap a network as the tuner's predictor callback.
inline readahead::ReadaheadTuner::PredictFn nn_predictor(nn::Network& net) {
  return [&net](const readahead::FeatureVector& features) {
    std::vector<double> z(features.begin(), features.end());
    net.normalizer().transform_row(z.data(), static_cast<int>(z.size()));
    matrix::MatD x(1, static_cast<int>(z.size()));
    for (std::size_t j = 0; j < z.size(); ++j) {
      x.at(0, static_cast<int>(j)) = z[j];
    }
    return net.predict_classes(x).at(0, 0);
  };
}

// Build the per-device actuation table from a quick sweep (the §4 study,
// condensed: the table is what the paper derives from its full study).
inline std::array<std::uint32_t, workloads::kNumTrainingClasses>
actuation_table(const readahead::ExperimentConfig& config,
                std::uint64_t seconds_per_cell = 4) {
  const std::vector<workloads::WorkloadType> types = {
      workloads::WorkloadType::kReadSeq,
      workloads::WorkloadType::kReadRandom,
      workloads::WorkloadType::kReadReverse,
      workloads::WorkloadType::kReadRandomWriteRandom};
  const std::vector<std::uint32_t> ra_values = {8,  16,  32,  64,
                                                128, 256, 512, 1024};
  const auto sweep = readahead::readahead_sweep(config, types, ra_values,
                                                seconds_per_cell);
  return readahead::best_ra_table(sweep);
}

}  // namespace kml::bench
