// bench_health_guard — graceful degradation under an injected model failure.
//
// A closed-loop run where the trainer "diverges" at a chosen virtual second
// (non-finite loss fed to the HealthMonitor) and is rolled back to the
// last-known-good checkpoint some seconds later. The per-second timeline
// shows the three regimes: model actuation, the vanilla fallback while
// quarantined, and resumed actuation after recovery. The safety claim being
// measured: while degraded, throughput tracks the vanilla baseline instead
// of whatever a broken model would have actuated.
//
// Usage: bench_health_guard [seconds] [fail_at] [recover_at]
//            [--device nvme|ssd] [--workload <name>] [--model path] [--json]
//
// --json additionally writes the headline numbers to
// BENCH_health_guard.json (same convention as bench_overheads).
#include "bench_common.h"
#include "portability/thread.h"

#include "runtime/health.h"

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

int main(int argc, char** argv) {
  using namespace kml;

  const bool json = bench::consume_flag(&argc, argv, "--json");
  std::uint64_t seconds = 30;
  std::uint64_t fail_at = 10;
  std::uint64_t recover_at = 20;
  const char* model_path = bench::kDefaultModelPath;
  sim::DeviceConfig device = sim::nvme_config();
  workloads::WorkloadType workload = workloads::WorkloadType::kReadRandom;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      device = std::strcmp(argv[++i], "ssd") == 0 ? sim::sata_ssd_config()
                                                  : sim::nvme_config();
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      for (int w = 0; w < workloads::kNumWorkloads; ++w) {
        const auto t = static_cast<workloads::WorkloadType>(w);
        if (name == workloads::workload_name(t)) workload = t;
      }
    } else if (positional == 0) {
      seconds = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (positional == 1) {
      fail_at = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else {
      recover_at = std::strtoull(argv[i], nullptr, 10);
    }
  }
  if (seconds == 0) seconds = 30;
  if (fail_at >= seconds) fail_at = seconds / 3;
  if (recover_at <= fail_at || recover_at >= seconds) {
    recover_at = fail_at + (seconds - fail_at) / 2;
  }

  nn::Network net = bench::train_or_load_model(model_path);
  const auto predictor = bench::nn_predictor(net);

  readahead::ExperimentConfig config;
  config.device = device;

  runtime::HealthMonitor monitor;
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = bench::actuation_table(config);
  tuner_config.health = &monitor;

  bool failed = false;
  bool recovered = false;
  const auto inject = [&](std::uint64_t now_ns) {
    if (!failed && now_ns >= fail_at * sim::kNsPerSec) {
      failed = true;  // the trainer step went non-finite
      monitor.observe_train_step(
          std::numeric_limits<double>::quiet_NaN(), false);
    }
    if (!recovered && now_ns >= recover_at * sim::kNsPerSec) {
      recovered = true;  // engine rolled back; clean steps follow
      monitor.notify_rollback();
      for (std::uint32_t i = 0;
           i <= monitor.config().clean_steps_to_recover; ++i) {
        monitor.observe_train_step(1.0, true);
      }
    }
  };

  std::printf("\nHealth guard: %s on %s, %llu s, fail@%llus, rollback@%llus\n",
              workloads::workload_name(workload), device.name,
              static_cast<unsigned long long>(seconds),
              static_cast<unsigned long long>(fail_at),
              static_cast<unsigned long long>(recover_at));

  const readahead::EvalOutcome outcome = readahead::evaluate_closed_loop(
      config, workload, predictor, tuner_config, seconds, inject);

  std::printf("\n%6s %16s %16s %12s %10s\n", "sec", "vanilla ops/s",
              "kml ops/s", "ra (KB)", "state");
  for (std::uint64_t s = 0; s < seconds; ++s) {
    const double vanilla = s < outcome.vanilla_per_second.size()
                               ? outcome.vanilla_per_second[s]
                               : 0.0;
    const double kml = s < outcome.kml_per_second.size()
                           ? outcome.kml_per_second[s]
                           : 0.0;
    double ra = 0.0;
    const char* state = "?";
    if (s < outcome.timeline.size()) {
      ra = outcome.timeline[s].ra_kb;
      state = outcome.timeline[s].degraded ? "DEGRADED" : "model";
    }
    std::printf("%6llu %16.0f %16.0f %12.0f %10s\n",
                static_cast<unsigned long long>(s), vanilla, kml, ra, state);
  }

  std::printf("\noverall: vanilla %.0f ops/s, kml-with-fault %.0f ops/s "
              "(%.2fx), %llu/%llu windows degraded\n",
              outcome.vanilla_ops_per_sec, outcome.kml_ops_per_sec,
              outcome.speedup,
              static_cast<unsigned long long>(outcome.degraded_windows),
              static_cast<unsigned long long>(outcome.timeline.size()));
  std::printf("monitor: %llu failure(s), %llu degradation(s), %llu "
              "recovery(ies), final state %s\n",
              static_cast<unsigned long long>(monitor.stats().failures),
              static_cast<unsigned long long>(monitor.stats().degradations),
              static_cast<unsigned long long>(monitor.stats().recoveries),
              runtime::health_state_name(monitor.state()));

  if (json) {
    bench::JsonReport report;
    report.add("seconds", static_cast<double>(seconds));
    report.add("fail_at", static_cast<double>(fail_at));
    report.add("recover_at", static_cast<double>(recover_at));
    report.add("vanilla_ops_per_sec", outcome.vanilla_ops_per_sec);
    report.add("kml_ops_per_sec", outcome.kml_ops_per_sec);
    report.add("speedup", outcome.speedup);
    report.add("degraded_windows",
               static_cast<double>(outcome.degraded_windows));
    report.add("windows", static_cast<double>(outcome.timeline.size()));
    report.add("failures", static_cast<double>(monitor.stats().failures));
    report.add("degradations",
               static_cast<double>(monitor.stats().degradations));
    report.add("recoveries", static_cast<double>(monitor.stats().recoveries));
    report.add("final_state", static_cast<double>(monitor.state()));
    report.add("cpus", static_cast<double>(kml_num_cpus()));
    const std::string path = bench::json_artifact_path("BENCH_health_guard.json");
    if (report.write_file(path.c_str())) {
      std::printf("\nwrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
