// bench_figure2_timeline — reproduces Figure 2 of the paper.
//
// "Timeline of performance comparison between running RocksDB's mixgraph
// workload on vanilla and with KML optimizations enabled": per-second
// ops/sec for both runs plus the readahead size the tuner chose (the Y2
// axis), averaged over repeated runs. The paper notes early fluctuations
// (cold cache, atypical start-of-run access patterns) before the model
// settles.
//
// Usage: bench_figure2_timeline [seconds] [repeats]
//            [--device nvme|ssd] [--workload <name>] [--model path]
// Defaults follow the paper: mixgraph on NVMe. Other combinations serve as
// diagnostics (the per-second predicted class exposes misclassification).
#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace kml;

  std::uint64_t seconds = 40;
  int repeats = 5;
  const char* model_path = bench::kDefaultModelPath;
  sim::DeviceConfig device = sim::nvme_config();
  workloads::WorkloadType workload = workloads::WorkloadType::kMixGraph;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      device = std::strcmp(argv[++i], "ssd") == 0 ? sim::sata_ssd_config()
                                                  : sim::nvme_config();
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      for (int w = 0; w < workloads::kNumWorkloads; ++w) {
        const auto t = static_cast<workloads::WorkloadType>(w);
        if (name == workloads::workload_name(t)) workload = t;
      }
    } else if (positional == 0) {
      seconds = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else {
      repeats = std::atoi(argv[i]);
    }
  }
  if (seconds == 0) seconds = 40;
  if (repeats <= 0) repeats = 1;

  nn::Network net = bench::train_or_load_model(model_path);
  const auto predictor = bench::nn_predictor(net);

  readahead::ExperimentConfig base_config;
  base_config.device = device;
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = bench::actuation_table(base_config);

  std::printf("\nFigure 2: %s on %s, %d run(s) of %llu virtual seconds\n",
              workloads::workload_name(workload), device.name, repeats,
              static_cast<unsigned long long>(seconds));

  std::vector<double> vanilla_sum(seconds, 0.0);
  std::vector<double> kml_sum(seconds, 0.0);
  std::vector<double> ra_sum(seconds, 0.0);
  std::vector<std::vector<int>> class_votes(
      seconds, std::vector<int>(workloads::kNumTrainingClasses + 1, 0));
  double vanilla_total = 0.0;
  double kml_total = 0.0;

  for (int rep = 0; rep < repeats; ++rep) {
    readahead::ExperimentConfig config = base_config;
    config.seed = base_config.seed + static_cast<std::uint64_t>(rep) * 1009;
    const readahead::EvalOutcome outcome = readahead::evaluate_closed_loop(
        config, workload, predictor, tuner_config, seconds);
    vanilla_total += outcome.vanilla_ops_per_sec;
    kml_total += outcome.kml_ops_per_sec;
    for (std::uint64_t s = 0; s < seconds; ++s) {
      if (s < outcome.vanilla_per_second.size()) {
        vanilla_sum[s] += outcome.vanilla_per_second[s];
      }
      if (s < outcome.kml_per_second.size()) {
        kml_sum[s] += outcome.kml_per_second[s];
      }
      if (s < outcome.timeline.size()) {
        ra_sum[s] += outcome.timeline[s].ra_kb;
        const int cls = outcome.timeline[s].predicted_class;
        ++class_votes[s][static_cast<std::size_t>(
            cls < 0 ? workloads::kNumTrainingClasses : cls)];
      }
    }
  }

  std::printf("\n%6s %16s %16s %12s %10s\n", "sec", "vanilla ops/s",
              "kml ops/s", "ra (KB)", "class");
  for (std::uint64_t s = 0; s < seconds; ++s) {
    int best_class = workloads::kNumTrainingClasses;  // "-" idle marker
    for (int c = 0; c <= workloads::kNumTrainingClasses; ++c) {
      if (class_votes[s][static_cast<std::size_t>(c)] >
          class_votes[s][static_cast<std::size_t>(best_class)]) {
        best_class = c;
      }
    }
    std::printf("%6llu %16.0f %16.0f %12.0f %10s\n",
                static_cast<unsigned long long>(s), vanilla_sum[s] / repeats,
                kml_sum[s] / repeats, ra_sum[s] / repeats,
                best_class == workloads::kNumTrainingClasses
                    ? "-"
                    : workloads::workload_name(
                          static_cast<workloads::WorkloadType>(best_class)));
  }

  std::printf("\noverall: vanilla %.0f ops/s, kml %.0f ops/s, improvement "
              "%.2fx (paper, mixgraph: ~2.09x overall)\n",
              vanilla_total / repeats, kml_total / repeats,
              vanilla_total > 0 ? kml_total / vanilla_total : 0.0);
  return 0;
}
