// bench_per_file — per-file vs global readahead actuation under mixed
// tenants.
//
// Figure 1's actuation path updates "ra_pages for open files" — per-file
// state. This experiment shows why that granularity exists: tenant A scans
// sequentially while tenant B does uniform-random point reads on the same
// stack. A global knob must pick one victim; classifying each file's own
// tracepoint stream and tuning its struct file independently serves both.
//
// Usage: bench_per_file [seconds] [--device nvme|ssd]
#include "bench_common.h"

#include <cstdlib>
#include <cstring>

int main(int argc, char** argv) {
  using namespace kml;

  std::uint64_t seconds = 20;
  sim::DeviceConfig device = sim::nvme_config();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      device = std::strcmp(argv[++i], "ssd") == 0 ? sim::sata_ssd_config()
                                                  : sim::nvme_config();
    } else {
      const std::uint64_t s = std::strtoull(argv[i], nullptr, 10);
      if (s > 0) seconds = s;
    }
  }

  // Deploy through the runtime engine: per-sample inference for the global
  // tuner, one batched forward pass per window for the per-file tuner (and
  // warmed-up buffers, so the closed loop never hits the allocator).
  runtime::Engine engine(bench::train_or_load_model(bench::kDefaultModelPath));
  engine.warm_up(64);
  const auto predictor = readahead::make_engine_predictor(engine);

  readahead::ExperimentConfig config;
  config.device = device;
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = bench::actuation_table(config);
  tuner_config.batch_predict = readahead::make_engine_batch_predictor(engine);

  std::printf("\nmixed tenants on %s: sequential scanner + random reader, "
              "%llu virtual seconds\n\n",
              device.name, static_cast<unsigned long long>(seconds));
  std::printf("%-22s %20s %20s\n", "tuning mode", "scan entries/s",
              "random gets/s");

  struct ModeRow {
    const char* name;
    readahead::TuningMode mode;
  };
  const ModeRow modes[3] = {
      {"vanilla (128 KB)", readahead::TuningMode::kVanilla},
      {"KML global knob", readahead::TuningMode::kGlobal},
      {"KML per-file", readahead::TuningMode::kPerFile}};

  readahead::MixedTenantResult results[3];
  for (int m = 0; m < 3; ++m) {
    results[m] = readahead::evaluate_mixed_tenants(
        config, predictor, tuner_config, modes[m].mode, seconds);
    std::printf("%-22s %20.0f %20.0f\n", modes[m].name,
                results[m].scan_entries_per_sec,
                results[m].get_ops_per_sec);
  }

  std::printf("\nper-file vs global: scan %.2fx, gets %.2fx — the global "
              "knob must sacrifice one tenant; per-file actuation serves "
              "both (the reason Figure 1 updates struct-file ra_pages).\n",
              results[2].scan_entries_per_sec /
                  (results[1].scan_entries_per_sec + 1e-9),
              results[2].get_ops_per_sec /
                  (results[1].get_ops_per_sec + 1e-9));
  return 0;
}
