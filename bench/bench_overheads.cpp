// bench_overheads — reproduces the §4 overhead measurements.
//
// The paper reports, for the readahead model:
//   * data collection + normalization:   49 ns per transaction
//   * one inference:                      21 us
//   * one training iteration:             51 us
//   * model memory: 3,916 B at init, +676 B transiently while inferencing
//
// google-benchmark measures the first three on this host (absolute numbers
// are host-dependent; the shape requirement is collection << 1 us and
// inference/training in the microsecond range). The memory numbers are
// measured exactly, via the kml_malloc accounting that every matrix
// allocation flows through.
// With --json, the structured measurements (google-benchmark skipped) are
// additionally written to BENCH_overheads.json for machine consumption:
// ns/inference, allocations/inference, matmul GFLOP-equivalents, and the
// batched-inference speedup of the thread pool vs threads=1.
#include "bench_common.h"
#include "data/circular_buffer.h"
#include "math/approx.h"
#include "matrix/linalg.h"
#include "nn/quantized.h"
#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "observe/timeseries.h"
#include "portability/kml_lib.h"
#include "portability/simd.h"
#include "portability/threadpool.h"
#include "readahead/features.h"
#include "readahead/model.h"
#include "runtime/engine.h"
#include "workloads/drivers.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

using namespace kml;

nn::Network make_readahead_shaped_net() {
  math::Rng rng(7);
  nn::Network net = nn::build_mlp_classifier(
      readahead::kNumSelectedFeatures, 16, workloads::kNumTrainingClasses,
      rng);
  std::vector<double> means(readahead::kNumSelectedFeatures, 10.0);
  std::vector<double> stds(readahead::kNumSelectedFeatures, 2.0);
  net.normalizer().import_moments(means, stds);
  return net;
}

// --- data collection: the inline hook work (push into the lock-free ring) --

void BM_DataCollectionPush(benchmark::State& state) {
  data::CircularBuffer<data::TraceRecord> buffer(1 << 16);
  data::TraceRecord rec{1, 12345, 0, 0};
  data::TraceRecord sink;
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.pgoff = i++;
    benchmark::DoNotOptimize(buffer.push(rec));
    if ((i & 1023) == 0) {
      while (buffer.pop(sink)) benchmark::DoNotOptimize(sink);
    }
  }
  state.SetLabel("paper: 49 ns per event (collection+normalization)");
}
BENCHMARK(BM_DataCollectionPush);

// --- normalization: per-record share of windowed feature extraction --------

void BM_FeatureExtractionPerRecord(benchmark::State& state) {
  const int window_size = static_cast<int>(state.range(0));
  std::vector<data::TraceRecord> window;
  math::Rng rng(3);
  for (int i = 0; i < window_size; ++i) {
    window.push_back(
        data::TraceRecord{1, rng.next_below(1 << 20), 0, 0});
  }
  readahead::FeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract_selected(window, 128));
  }
  state.SetItemsProcessed(state.iterations() * window_size);
  state.SetLabel("items/s = records/s; paper: 49 ns per record");
}
BENCHMARK(BM_FeatureExtractionPerRecord)->Arg(1024)->Arg(65536);

// --- inference --------------------------------------------------------------

void BM_ReadaheadInference(benchmark::State& state) {
  runtime::Engine engine(make_readahead_shaped_net());
  const double features[readahead::kNumSelectedFeatures] = {11.0, 12.4, 11.9,
                                                            8.0, 4.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.infer_class(features, readahead::kNumSelectedFeatures));
  }
  state.SetLabel("paper: 21 us per inference");
}
BENCHMARK(BM_ReadaheadInference);

// Batched inference: a window of samples in one forward pass, the shape of
// call the per-file tuner makes once per second.
void BM_ReadaheadInferenceBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  runtime::Engine engine(make_readahead_shaped_net());
  engine.warm_up(batch);
  std::vector<double> features;
  math::Rng rng(11);
  for (int i = 0; i < batch * readahead::kNumSelectedFeatures; ++i) {
    features.push_back(10.0 + rng.next_double());
  }
  std::vector<int> classes(static_cast<std::size_t>(batch), -1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.infer_batch(features.data(), readahead::kNumSelectedFeatures,
                           batch, classes.data()));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel("items/s = samples/s");
}
BENCHMARK(BM_ReadaheadInferenceBatch)->Arg(16)->Arg(64);

// --- one training iteration ---------------------------------------------------

void BM_ReadaheadTrainingIteration(benchmark::State& state) {
  runtime::Engine engine(make_readahead_shaped_net());
  engine.set_mode(runtime::Mode::kTraining);
  nn::CrossEntropyLoss loss;
  nn::SGD opt(0.01, 0.99);
  opt.attach(engine.network().params());

  matrix::MatD x(1, readahead::kNumSelectedFeatures);
  matrix::MatD y(1, workloads::kNumTrainingClasses);
  for (int j = 0; j < readahead::kNumSelectedFeatures; ++j) {
    x.at(0, j) = 0.5 * j;
  }
  y.at(0, 1) = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.train_batch(x, y, loss, opt));
  }
  state.SetLabel("paper: 51 us per training iteration");
}
BENCHMARK(BM_ReadaheadTrainingIteration);

// --- supporting kernels -------------------------------------------------------

void BM_MatmulDouble(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(5);
  matrix::MatD a = matrix::random_uniform(n, n, -1.0, 1.0, rng);
  matrix::MatD b = matrix::random_uniform(n, n, -1.0, 1.0, rng);
  matrix::MatD c(n, n);
  for (auto _ : state) {
    matrix::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel("register-tiled");
}
BENCHMARK(BM_MatmulDouble)->Arg(16)->Arg(64);

void BM_MatmulDoubleNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(5);
  matrix::MatD a = matrix::random_uniform(n, n, -1.0, 1.0, rng);
  matrix::MatD b = matrix::random_uniform(n, n, -1.0, 1.0, rng);
  matrix::MatD c(n, n);
  for (auto _ : state) {
    matrix::matmul_naive(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel("reference i-k-j");
}
BENCHMARK(BM_MatmulDoubleNaive)->Arg(16)->Arg(64);

void BM_MatmulFixedPoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(5);
  matrix::MatX a = matrix::to_fixed(matrix::random_uniform(n, n, -1, 1, rng));
  matrix::MatX b = matrix::to_fixed(matrix::random_uniform(n, n, -1, 1, rng));
  matrix::MatX c(n, n);
  for (auto _ : state) {
    matrix::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel("FPU-free path");
}
BENCHMARK(BM_MatmulFixedPoint)->Arg(16)->Arg(64);

void BM_ApproxExp(benchmark::State& state) {
  double x = -20.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::kml_exp(x));
    x += 0.001;
    if (x > 20.0) x = -20.0;
  }
}
BENCHMARK(BM_ApproxExp);

// --- memory footprint (exact, via kml_malloc accounting) ----------------------

void report_memory_footprint() {
  kml_mem_reset_stats();
  const std::uint64_t before = kml_mem_usage();
  auto* net = new nn::Network(make_readahead_shaped_net());
  const std::uint64_t init_bytes = kml_mem_usage() - before;

  matrix::MatD x(1, readahead::kNumSelectedFeatures);
  kml_mem_reset_stats();
  const std::uint64_t steady = kml_mem_usage();
  const matrix::MatD out = net->forward(x);
  const std::uint64_t inference_peak = kml_mem_stats().peak_bytes - steady;

  std::printf("\n--- model memory footprint (kml_malloc accounting) ---\n");
  std::printf("weights only (inference deployment):    %zu bytes "
              "(paper: 3,916 B incl. layer structs)\n",
              net->param_bytes());
  std::printf("full init incl. gradient buffers:       %llu bytes\n",
              static_cast<unsigned long long>(init_bytes));
  std::printf("transient while inferencing:            %llu bytes "
              "(paper: +676 B)\n",
              static_cast<unsigned long long>(inference_peak));
  delete net;
}

// --- hot-path allocation count (exact, via kml_malloc accounting) -------------

struct InferenceCosts {
  double ns_per_inference;
  double allocs_per_inference;
};

// The zero-allocation contract, measured the same way the ctest guard
// enforces it: after one warm-up call, N steady-state inferences must add
// exactly zero to the cumulative allocation counter. The same loop yields
// the single-inference latency (paper: 21 us).
InferenceCosts report_inference_allocations() {
  runtime::Engine engine(make_readahead_shaped_net());
  const double features[readahead::kNumSelectedFeatures] = {11.0, 12.4, 11.9,
                                                            8.0, 4.8};
  engine.infer_class(features, readahead::kNumSelectedFeatures);  // warm

  constexpr int kCalls = 10'000;
  const std::uint64_t before = kml_mem_stats().total_allocs;
  const std::uint64_t start = kml_now_ns();
  for (int i = 0; i < kCalls; ++i) {
    engine.infer_class(features, readahead::kNumSelectedFeatures);
  }
  const std::uint64_t elapsed = kml_now_ns() - start;
  const std::uint64_t allocs = kml_mem_stats().total_allocs - before;

  InferenceCosts costs;
  costs.ns_per_inference = static_cast<double>(elapsed) / kCalls;
  costs.allocs_per_inference = static_cast<double>(allocs) / kCalls;
  std::printf("\n--- steady-state inference allocations ---\n");
  std::printf("heap allocations per inference:         %.4f "
              "(%llu over %d calls; target: 0)\n",
              costs.allocs_per_inference,
              static_cast<unsigned long long>(allocs), kCalls);
  std::printf("latency per inference:                  %.0f ns "
              "(paper: 21 us)\n",
              costs.ns_per_inference);
  return costs;
}

// --- blocked vs naive matmul throughput ---------------------------------------

struct MatmulCosts {
  double naive_ns;
  double blocked_ns;
  double flops;  // per multiply (2*n^3)
};

// Acceptance gate for the register-tiled kernels: >= 2x the reference
// i-k-j loop at 64x64x64 (results are bit-identical; only the schedule
// differs).
MatmulCosts report_matmul_speedup() {
  constexpr int kN = 64;
  constexpr int kReps = 2'000;
  constexpr int kRounds = 5;
  math::Rng rng(5);
  matrix::MatD a = matrix::random_uniform(kN, kN, -1.0, 1.0, rng);
  matrix::MatD b = matrix::random_uniform(kN, kN, -1.0, 1.0, rng);
  matrix::MatD c(kN, kN);

  const auto time_kernel = [&](auto&& kernel) {
    std::uint64_t best = ~0ULL;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t start = kml_now_ns();
      for (int i = 0; i < kReps; ++i) {
        kernel(a, b, c);
        benchmark::DoNotOptimize(c.data());
      }
      const std::uint64_t elapsed = kml_now_ns() - start;
      if (elapsed < best) best = elapsed;
    }
    return static_cast<double>(best) / kReps;
  };

  const double naive_ns =
      time_kernel([](const auto& x, const auto& y, auto& out) {
        matrix::matmul_naive(x, y, out);
      });
  const double blocked_ns =
      time_kernel([](const auto& x, const auto& y, auto& out) {
        matrix::matmul(x, y, out);
      });
  const double flops = 2.0 * kN * kN * kN;

  std::printf("\n--- blocked vs naive matmul (%dx%dx%d, double) ---\n", kN,
              kN, kN);
  std::printf("naive i-k-j:      %8.0f ns  (%.2f GFLOP/s)\n", naive_ns,
              flops / naive_ns);
  std::printf("register-tiled:   %8.0f ns  (%.2f GFLOP/s)\n", blocked_ns,
              flops / blocked_ns);
  std::printf("speedup:          %.2fx (target: >= 2x)\n",
              naive_ns / blocked_ns);
  return MatmulCosts{naive_ns, blocked_ns, flops};
}

// --- per-tier SIMD kernel throughput ------------------------------------------

struct TierRow {
  SimdLevel level;
  double matmul_ns;   // 64x64x64 f64 through the dispatched kernel
  double gemm_s8_ns;  // 64x64x64 int8 -> int32
  double exp_ns;      // kml_exp_span over 4096 doubles
};

// Times the dispatched kernels at every tier the host supports, forced via
// kml_simd_set_level (the same switch KML_SIMD_LEVEL drives). Results are
// bit-identical across rows (simd_test pins that); only the clock moves.
std::vector<TierRow> report_simd_tiers() {
  constexpr int kN = 64;
  constexpr int kReps = 300;
  constexpr int kRounds = 3;
  constexpr long kSpan = 4096;

  math::Rng rng(13);
  matrix::MatD a = matrix::random_uniform(kN, kN, -1.0, 1.0, rng);
  matrix::MatD b = matrix::random_uniform(kN, kN, -1.0, 1.0, rng);
  matrix::MatD c(kN, kN);
  std::vector<std::int8_t> qa(static_cast<std::size_t>(kN) * kN);
  std::vector<std::int8_t> qb(qa.size());
  std::vector<std::int32_t> qc(qa.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    qa[i] = static_cast<std::int8_t>(static_cast<int>(i * 37 % 255) - 127);
    qb[i] = static_cast<std::int8_t>(static_cast<int>(i * 91 % 255) - 127);
  }
  std::vector<double> span_in(static_cast<std::size_t>(kSpan));
  std::vector<double> span_out(span_in.size());
  for (long i = 0; i < kSpan; ++i) {
    span_in[static_cast<std::size_t>(i)] = -8.0 + 0.004 * static_cast<double>(i);
  }

  const auto best_of = [&](auto&& body, int reps) {
    std::uint64_t best = ~0ULL;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t start = kml_now_ns();
      for (int i = 0; i < reps; ++i) body();
      const std::uint64_t elapsed = kml_now_ns() - start;
      if (elapsed < best) best = elapsed;
    }
    return static_cast<double>(best) / reps;
  };

  std::vector<SimdLevel> tiers = {SimdLevel::kScalar};
  if (kml_simd_detected() >= SimdLevel::kSse2) tiers.push_back(SimdLevel::kSse2);
  if (kml_simd_detected() >= SimdLevel::kAvx2) tiers.push_back(SimdLevel::kAvx2);

  const SimdLevel restore = kml_simd_level();
  std::vector<TierRow> rows;
  std::printf("\n--- SIMD dispatch tiers (%dx%dx%d kernels, detected: %s) ---\n",
              kN, kN, kN, kml_simd_level_name(kml_simd_detected()));
  std::printf("%-8s %14s %16s %18s\n", "tier", "matmul f64", "gemm int8",
              "exp span 4096");
  for (SimdLevel tier : tiers) {
    kml_simd_set_level(tier);
    TierRow row;
    row.level = tier;
    row.matmul_ns = best_of(
        [&] {
          kml_simd_matmul_f64(a.data(), kN, b.data(), kN, c.data(), kN, kN,
                              kN, kN);
          benchmark::DoNotOptimize(c.data());
        },
        kReps);
    row.gemm_s8_ns = best_of(
        [&] {
          kml_simd_gemm_s8(qa.data(), kN, qb.data(), kN, qc.data(), kN, kN,
                           kN, kN);
          benchmark::DoNotOptimize(qc.data());
        },
        kReps);
    row.exp_ns = best_of(
        [&] {
          math::kml_exp_span(span_in.data(), span_out.data(), kSpan);
          benchmark::DoNotOptimize(span_out.data());
        },
        kReps * 4);
    std::printf("%-8s %11.0f ns %13.0f ns %15.0f ns\n",
                kml_simd_level_name(tier), row.matmul_ns, row.gemm_s8_ns,
                row.exp_ns);
    rows.push_back(row);
  }
  kml_simd_set_level(restore);
  return rows;
}

// --- int8 quantized serving vs float ------------------------------------------

struct Int8Costs {
  bool available = false;
  double float_ns_per_row = 0.0;  // batch-64 float engine, per row
  double int8_ns_per_row = 0.0;   // batch-64 int8 path, per row
  double float_acc_pct = 0.0;     // Table 2 training-workload windows
  double int8_acc_pct = 0.0;
  double acc_delta_points = 0.0;  // float - int8, percentage points
};

// The serving-side acceptance row: int8 batched inference under 300 ns/row
// with accuracy within one point of float on the Table 2 workload windows
// (the readahead classifier's own dataset — collected/cached exactly as
// bench_table2 trains on it).
Int8Costs report_int8_costs() {
  Int8Costs costs;
  data::Dataset dataset =
      bench::collect_or_load_dataset(bench::kDefaultDatasetPath);
  nn::Network net = bench::train_or_load_model(bench::kDefaultModelPath);
  costs.float_acc_pct = readahead::evaluate_nn(net, dataset) * 100.0;

  nn::QuantizedNetwork quant;
  if (!nn::QuantizedNetwork::quantize_int8(net, dataset.to_matrix(), quant)) {
    std::printf("\n--- int8 quantized serving: quantization failed ---\n");
    return costs;
  }
  costs.available = true;

  // Accuracy of the int8 path over the same raw windows.
  const int nfeat = dataset.num_features();
  const int nclasses = quant.out_features();
  const int total = dataset.size();
  constexpr int kBatch = 64;
  std::vector<double> feats(static_cast<std::size_t>(kBatch) * nfeat);
  std::vector<double> scores(static_cast<std::size_t>(kBatch) * nclasses);
  std::vector<int> classes(kBatch);
  int correct = 0;
  for (int base = 0; base < total; base += kBatch) {
    const int rows = total - base < kBatch ? total - base : kBatch;
    for (int r = 0; r < rows; ++r) {
      const double* src = dataset.features(base + r);
      for (int j = 0; j < nfeat; ++j) {
        feats[static_cast<std::size_t>(r) * nfeat + j] = src[j];
      }
    }
    quant.infer_batch_scores(feats.data(), nfeat, rows, scores.data(),
                             classes.data());
    for (int r = 0; r < rows; ++r) {
      if (classes[static_cast<std::size_t>(r)] == dataset.label(base + r)) {
        ++correct;
      }
    }
  }
  costs.int8_acc_pct =
      total > 0 ? 100.0 * correct / static_cast<double>(total) : 0.0;
  costs.acc_delta_points = costs.float_acc_pct - costs.int8_acc_pct;

  // Latency, batch 64: float engine vs the engine's int8 fast path.
  runtime::Engine engine(std::move(net));
  engine.warm_up(kBatch);
  for (int r = 0; r < kBatch; ++r) {
    const double* src = dataset.features(r % total);
    for (int j = 0; j < nfeat; ++j) {
      feats[static_cast<std::size_t>(r) * nfeat + j] = src[j];
    }
  }
  constexpr int kReps = 2'000;
  constexpr int kRounds = 5;
  const auto per_row = [&](auto&& call) {
    call();  // warm: sizes scratch, faults pages
    std::uint64_t best = ~0ULL;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t start = kml_now_ns();
      for (int i = 0; i < kReps; ++i) call();
      const std::uint64_t elapsed = kml_now_ns() - start;
      if (elapsed < best) best = elapsed;
    }
    return static_cast<double>(best) / (static_cast<double>(kReps) * kBatch);
  };
  costs.float_ns_per_row = per_row([&] {
    benchmark::DoNotOptimize(engine.infer_batch_scores(
        feats.data(), nfeat, kBatch, scores.data(), classes.data()));
  });
  engine.attach_quantized(std::move(quant));
  costs.int8_ns_per_row = per_row([&] {
    benchmark::DoNotOptimize(engine.infer_batch_scores_int8(
        feats.data(), nfeat, kBatch, scores.data(), classes.data()));
  });

  std::printf("\n--- int8 quantized serving (batch %d, %s dispatch) ---\n",
              kBatch, kml_simd_level_name(kml_simd_level()));
  std::printf("float batched:  %8.1f ns/inference\n", costs.float_ns_per_row);
  std::printf("int8 batched:   %8.1f ns/inference (target: < 300 ns) [%s]\n",
              costs.int8_ns_per_row,
              costs.int8_ns_per_row < 300.0 ? "PASS" : "FAIL");
  std::printf("float accuracy: %6.2f%%  (Table 2 workload windows)\n",
              costs.float_acc_pct);
  std::printf("int8 accuracy:  %6.2f%%  (delta %.2f points, target <= 1) "
              "[%s]\n",
              costs.int8_acc_pct, costs.acc_delta_points,
              costs.acc_delta_points <= 1.0 ? "PASS" : "FAIL");
  return costs;
}

// --- batched-inference thread scaling -----------------------------------------

struct BatchScaling {
  double ns_per_sample_t1 = 0.0;
  double ns_per_sample_t4 = 0.0;
  bool t4_meaningful = false;  // false on hosts with fewer CPUs than threads
  std::string skip_reason;
};

// Batched inference on a 64-feature / 64-class workload at 4 pool threads
// vs 1. Bit-identical outputs at every thread count is a ctest invariant
// (parallel_test); this reports the throughput side. On a host with fewer
// CPUs than pool threads the "speedup" measures oversubscription, not the
// pool — the cell is SKIPPED (null in the JSON, with a reason) instead of
// reporting a misleading ~1x.
BatchScaling report_batch_thread_scaling() {
  constexpr int kFeatures = 64;
  constexpr int kClasses = 64;
  constexpr int kBatch = 256;
  constexpr int kReps = 200;
  constexpr int kRounds = 3;

  math::Rng rng(7);
  nn::Network net =
      nn::build_mlp_classifier(kFeatures, 32, kClasses, rng);
  net.normalizer().import_moments(std::vector<double>(kFeatures, 10.0),
                                  std::vector<double>(kFeatures, 2.0));
  runtime::Engine engine(std::move(net));
  engine.warm_up(kBatch);

  std::vector<double> features;
  for (int i = 0; i < kBatch * kFeatures; ++i) {
    features.push_back(10.0 + rng.next_double());
  }
  std::vector<int> classes(kBatch, -1);

  const auto time_at = [&](unsigned threads) {
    kml_pool_set_threads(threads);
    // One untimed dispatch spawns/parks the workers for this setting.
    engine.infer_batch(features.data(), kFeatures, kBatch, classes.data());
    std::uint64_t best = ~0ULL;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t start = kml_now_ns();
      for (int i = 0; i < kReps; ++i) {
        engine.infer_batch(features.data(), kFeatures, kBatch,
                           classes.data());
      }
      const std::uint64_t elapsed = kml_now_ns() - start;
      if (elapsed < best) best = elapsed;
    }
    return static_cast<double>(best) / (static_cast<double>(kReps) * kBatch);
  };

  BatchScaling s;
  s.ns_per_sample_t1 = time_at(1);
  const unsigned cpus = kml_num_cpus();
  std::printf("\n--- batched inference thread scaling (%dx%d-class, batch "
              "%d) ---\n",
              kFeatures, kClasses, kBatch);
  std::printf("threads=1:   %8.1f ns/sample\n", s.ns_per_sample_t1);
  if (cpus >= 4) {
    s.t4_meaningful = true;
    s.ns_per_sample_t4 = time_at(4);
    std::printf("threads=4:   %8.1f ns/sample (%u CPUs online)\n",
                s.ns_per_sample_t4, cpus);
    std::printf("speedup:     %.2fx\n",
                s.ns_per_sample_t1 / s.ns_per_sample_t4);
  } else {
    char reason[64];
    std::snprintf(reason, sizeof(reason), "%u cpus < 4 threads", cpus);
    s.skip_reason = reason;
    std::printf("threads=4:   skipped (%s — a 4-thread run here measures "
                "oversubscription, not the pool)\n",
                reason);
  }
  kml_pool_set_threads(1);
  return s;
}

// --- observe-layer overhead (runtime toggle on the same binary) ---------------

// Times the data-collection hot path exactly as the trainer deploys it —
// per-event push() on the producer side, batched pop_many() drains (which
// flush push/pop/drop deltas and occupancy into the metrics registry) on
// the consumer side — with the registry recording vs runtime-disabled.
// The per-event paths carry no instrumentation at all (the ring's own
// counters are the metric, published per batch), so the delta prices the
// amortized publish; the design target is < 5%.
void report_observe_overhead() {
  constexpr std::uint64_t kIters = 4'000'000;
  constexpr std::size_t kBatch = 256;
  constexpr int kRounds = 5;

  data::CircularBuffer<data::TraceRecord> buffer(1 << 16);
  data::TraceRecord rec{1, 0, 0, 0};
  data::TraceRecord sink[kBatch];

  const auto time_round = [&]() {
    const std::uint64_t start = kml_now_ns();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      rec.pgoff = i;
      benchmark::DoNotOptimize(buffer.push(rec));
      if ((i & (kBatch - 1)) == kBatch - 1) {
        benchmark::DoNotOptimize(buffer.pop_many(sink, kBatch));
      }
    }
    return kml_now_ns() - start;
  };

  const bool was_enabled = observe::enabled();
  std::uint64_t best_on = ~0ULL;
  std::uint64_t best_off = ~0ULL;
  for (int r = 0; r < kRounds; ++r) {
    observe::set_enabled(true);
    const std::uint64_t on = time_round();
    observe::set_enabled(false);
    const std::uint64_t off = time_round();
    if (on < best_on) best_on = on;
    if (off < best_off) best_off = off;
  }
  observe::set_enabled(was_enabled);

  const double on_ns = static_cast<double>(best_on) / kIters;
  const double off_ns = static_cast<double>(best_off) / kIters;
  const double delta_pct =
      off_ns > 0.0 ? (on_ns - off_ns) / off_ns * 100.0 : 0.0;
  std::printf("\n--- observe-layer overhead (data-collection hot path) ---\n");
#if KML_OBSERVE_ENABLED
  std::printf("observe on:   %.2f ns/op\n", on_ns);
  std::printf("observe off:  %.2f ns/op\n", off_ns);
  std::printf("delta:        %+.2f%% (target: < 5%%)\n", delta_pct);
#else
  (void)delta_pct;  // meaningless when the layer is compiled out
  std::printf("compiled out (KML_OBSERVE=OFF): %.2f ns/op either way\n",
              on_ns);
#endif
}

// --- flight-recorder overhead (runtime toggle on the same binary) -------------

struct FlightOverhead {
  double on_ns;    // collection hot path, recorder recording
  double off_ns;   // collection hot path, recorder disabled
  double delta_pct;
  double event_ns; // one raw KML_EVENT while recording
};

// Same collection loop as report_observe_overhead (its per-batch
// publish_metrics() is where the buffer's KML_EVENTs fire), timed with the
// flight recorder recording vs runtime-disabled, plus the raw cost of one
// KML_EVENT. Design target for the on/off delta: < 5%; the off path is one
// relaxed load per publish.
//
// Measurement discipline: one full untimed warm-up pass per setting before
// any timed round (the first pass faults the ring pages and warms the
// branch predictors — folding it into a timed round inflated the ON side
// by ~5% on a quiet host), then best-of-9 alternating rounds so both
// settings sample the same thermal/scheduler conditions.
FlightOverhead report_flight_overhead() {
  constexpr std::uint64_t kIters = 4'000'000;
  constexpr std::size_t kBatch = 256;
  constexpr int kRounds = 9;

  data::CircularBuffer<data::TraceRecord> buffer(1 << 16);
  data::TraceRecord rec{1, 0, 0, 0};
  data::TraceRecord sink[kBatch];

  const auto time_round = [&]() {
    const std::uint64_t start = kml_now_ns();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      rec.pgoff = i;
      benchmark::DoNotOptimize(buffer.push(rec));
      if ((i & (kBatch - 1)) == kBatch - 1) {
        benchmark::DoNotOptimize(buffer.pop_many(sink, kBatch));
      }
    }
    return kml_now_ns() - start;
  };

  const bool was_enabled = observe::enabled();
  observe::set_enabled(true);
  observe::flight_set_enabled(true);
  time_round();  // warm-up, recording
  observe::flight_set_enabled(false);
  time_round();  // warm-up, disabled
  std::uint64_t best_on = ~0ULL;
  std::uint64_t best_off = ~0ULL;
  for (int r = 0; r < kRounds; ++r) {
    observe::flight_set_enabled(true);
    const std::uint64_t on = time_round();
    observe::flight_set_enabled(false);
    const std::uint64_t off = time_round();
    if (on < best_on) best_on = on;
    if (off < best_off) best_off = off;
  }

  // Raw per-event cost while recording (the ring wraps; that is the design).
  observe::flight_set_enabled(true);
  constexpr std::uint64_t kEvents = 4'000'000;
  std::uint64_t best_ev = ~0ULL;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t start = kml_now_ns();
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      KML_EVENT(observe::EventId::kPoolDispatch, i, 0);
    }
    const std::uint64_t elapsed = kml_now_ns() - start;
    if (elapsed < best_ev) best_ev = elapsed;
  }
  observe::flight_reset();
  observe::set_enabled(was_enabled);

  FlightOverhead f;
  f.on_ns = static_cast<double>(best_on) / kIters;
  f.off_ns = static_cast<double>(best_off) / kIters;
  f.delta_pct =
      f.off_ns > 0.0 ? (f.on_ns - f.off_ns) / f.off_ns * 100.0 : 0.0;
  f.event_ns = static_cast<double>(best_ev) / kEvents;
  std::printf("\n--- flight-recorder overhead (data-collection hot path) ---\n");
#if KML_OBSERVE_ENABLED
  std::printf("recorder on:  %.2f ns/op\n", f.on_ns);
  std::printf("recorder off: %.2f ns/op\n", f.off_ns);
  std::printf("delta:        %+.2f%% (target: < 5%%) [%s]\n", f.delta_pct,
              f.delta_pct < 5.0 ? "PASS" : "FAIL");
  std::printf("raw KML_EVENT: %.2f ns/event\n", f.event_ns);
#else
  std::printf("compiled out (KML_OBSERVE=OFF): %.2f ns/op either way\n",
              f.on_ns);
#endif
  return f;
}

// --- continuous-telemetry overhead (stage histograms + retention ring) --------

struct TelemetryOverhead {
  double on_ns;     // collection hot path + per-batch stage stamping, observe on
  double off_ns;    // same code path, observe runtime-disabled
  double delta_pct;
  double sample_ns; // one raw timeseries_sample() (full registry walk)
};

// Prices what PR 10 added to a serving-shaped loop: per-batch stage
// histograms (the fleet drain records queue-wait/coalesce, decide_batch
// records infer/decide — four KML_HIST_RECORDs per batch) plus the
// time-series poll on the maintenance cadence. The per-event path carries
// nothing; everything telemetry-related is amortized over the batch, so
// the on/off delta is the whole continuous-telemetry bill for this shape
// of pipeline. Same discipline as report_flight_overhead: one untimed
// warm-up pass per setting, then best-of-9 alternating rounds.
TelemetryOverhead report_telemetry_overhead() {
  constexpr std::uint64_t kIters = 4'000'000;
  constexpr std::size_t kBatch = 256;
  constexpr int kRounds = 9;

  data::CircularBuffer<data::TraceRecord> buffer(1 << 16);
  data::TraceRecord rec{1, 0, 0, 0};
  data::TraceRecord sink[kBatch];

  const auto time_round = [&]() {
    std::uint64_t batch_t0 = kml_now_ns();
    const std::uint64_t start = kml_now_ns();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      rec.pgoff = i;
      benchmark::DoNotOptimize(buffer.push(rec));
      if ((i & (kBatch - 1)) == kBatch - 1) {
        benchmark::DoNotOptimize(buffer.pop_many(sink, kBatch));
        // The fleet pipeline's per-batch stage stamping, condensed: the
        // spans all land in the same clock read here, which is fine — the
        // cost being measured is the record path, not the span math.
        const std::uint64_t now = kml_now_ns();
        const std::uint64_t span = now - batch_t0;
        KML_HIST_RECORD(observe::kMetricFleetStageQueueWaitNs, span);
        KML_HIST_RECORD(observe::kMetricFleetStageCoalesceNs, span);
        KML_HIST_RECORD(observe::kMetricFleetStageInferNs, span);
        KML_HIST_RECORD(observe::kMetricFleetStageDecideNs, span);
        observe::timeseries_poll(now);
        batch_t0 = now;
      }
    }
    return kml_now_ns() - start;
  };

  const bool was_enabled = observe::enabled();
  // A short tick so the poll actually samples during the timed rounds
  // instead of fast-pathing every call (1 ms ≈ thousands of samples per
  // round — the sampler must be cheap enough to disappear regardless).
  const std::uint64_t restore_tick = observe::timeseries_tick_ns();
  observe::timeseries_set_tick_ns(1'000'000);
  observe::set_enabled(true);
  time_round();  // warm-up, recording
  observe::set_enabled(false);
  time_round();  // warm-up, disabled
  std::uint64_t best_on = ~0ULL;
  std::uint64_t best_off = ~0ULL;
  for (int r = 0; r < kRounds; ++r) {
    observe::set_enabled(true);
    const std::uint64_t on = time_round();
    observe::set_enabled(false);
    const std::uint64_t off = time_round();
    if (on < best_on) best_on = on;
    if (off < best_off) best_off = off;
  }

  // Raw cost of one retention sample: a full registry walk (every counter,
  // gauge, and histogram bucket) under the ring's spinlock. This is the
  // per-tick maintenance cost a host pays once per second by default.
  observe::set_enabled(true);
  constexpr int kSamples = 2'000;
  std::uint64_t best_sample = ~0ULL;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t start = kml_now_ns();
    for (int i = 0; i < kSamples; ++i) {
      observe::timeseries_sample(start + static_cast<std::uint64_t>(i));
    }
    const std::uint64_t elapsed = kml_now_ns() - start;
    if (elapsed < best_sample) best_sample = elapsed;
  }
  observe::timeseries_set_tick_ns(restore_tick);
  observe::timeseries_reset();
  observe::set_enabled(was_enabled);

  TelemetryOverhead t;
  t.on_ns = static_cast<double>(best_on) / kIters;
  t.off_ns = static_cast<double>(best_off) / kIters;
  t.delta_pct =
      t.off_ns > 0.0 ? (t.on_ns - t.off_ns) / t.off_ns * 100.0 : 0.0;
  t.sample_ns = static_cast<double>(best_sample) / kSamples;
  std::printf("\n--- continuous-telemetry overhead (stage histograms + "
              "retention ring) ---\n");
#if KML_OBSERVE_ENABLED
  std::printf("telemetry on:  %.2f ns/op\n", t.on_ns);
  std::printf("telemetry off: %.2f ns/op\n", t.off_ns);
  std::printf("delta:         %+.2f%% (target: < 5%%) [%s]\n", t.delta_pct,
              t.delta_pct < 5.0 ? "PASS" : "FAIL");
  std::printf("raw timeseries_sample: %.0f ns/sample\n", t.sample_ns);
#else
  std::printf("compiled out (KML_OBSERVE=OFF): %.2f ns/op either way\n",
              t.on_ns);
#endif
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  // --json: skip the google-benchmark sweep (slow, human-oriented) and
  // write the structured report instead; must be consumed before
  // benchmark::Initialize sees an unknown flag.
  const bool json = bench::consume_flag(&argc, argv, "--json");
  benchmark::Initialize(&argc, argv);
  if (!json) benchmark::RunSpecifiedBenchmarks();
  report_memory_footprint();
  const InferenceCosts inference = report_inference_allocations();
  const MatmulCosts matmul = report_matmul_speedup();
  const std::vector<TierRow> tiers = report_simd_tiers();
  const Int8Costs int8 = report_int8_costs();
  const BatchScaling batch = report_batch_thread_scaling();
  if (!json) report_observe_overhead();
  const FlightOverhead flight = report_flight_overhead();
  const TelemetryOverhead telemetry = report_telemetry_overhead();

  if (json) {
    bench::JsonReport report;
    report.add("inference_ns", inference.ns_per_inference);
    report.add("allocations_per_inference", inference.allocs_per_inference);
    report.add("matmul_naive_ns", matmul.naive_ns);
    report.add("matmul_tiled_ns", matmul.blocked_ns);
    report.add("matmul_naive_gflops", matmul.flops / matmul.naive_ns);
    report.add("matmul_tiled_gflops", matmul.flops / matmul.blocked_ns);
    report.add("matmul_tiled_speedup", matmul.naive_ns / matmul.blocked_ns);
    report.add_string("simd_detected_tier",
                      kml_simd_level_name(kml_simd_detected()));
    for (const TierRow& row : tiers) {
      const std::string tier = kml_simd_level_name(row.level);
      report.add(("simd_matmul64_ns_" + tier).c_str(), row.matmul_ns);
      report.add(("simd_gemm_s8_64_ns_" + tier).c_str(), row.gemm_s8_ns);
      report.add(("simd_exp4096_ns_" + tier).c_str(), row.exp_ns);
    }
    if (int8.available) {
      report.add("int8_batch_infer_ns", int8.int8_ns_per_row);
      report.add("float_batch_infer_ns", int8.float_ns_per_row);
      report.add("float_accuracy_pct", int8.float_acc_pct);
      report.add("int8_accuracy_pct", int8.int8_acc_pct);
      report.add("int8_accuracy_delta_points", int8.acc_delta_points);
    } else {
      report.add_null("int8_batch_infer_ns");
      report.add_null("float_batch_infer_ns");
      report.add_null("float_accuracy_pct");
      report.add_null("int8_accuracy_pct");
      report.add_null("int8_accuracy_delta_points");
      report.add_string("int8_skip_reason", "quantization failed");
    }
    report.add("batch_infer_ns_per_sample_threads1", batch.ns_per_sample_t1);
    if (batch.t4_meaningful) {
      report.add("batch_infer_ns_per_sample_threads4",
                 batch.ns_per_sample_t4);
      report.add("batch_infer_speedup_4v1",
                 batch.ns_per_sample_t1 / batch.ns_per_sample_t4);
    } else {
      // Fewer CPUs than pool threads: a 4-thread number here would measure
      // oversubscription, so the cells are null with the reason recorded.
      report.add_null("batch_infer_ns_per_sample_threads4");
      report.add_null("batch_infer_speedup_4v1");
      report.add_string("batch_infer_speedup_4v1_skip_reason",
                        batch.skip_reason.c_str());
    }
    report.add("num_cpus", static_cast<double>(kml_num_cpus()));
    // Canonical name shared by every BENCH_*.json (the schema guard keys on
    // it); num_cpus stays for older diff tooling.
    report.add("cpus", static_cast<double>(kml_num_cpus()));
    report.add("flight_on_ns_per_op", flight.on_ns);
    report.add("flight_off_ns_per_op", flight.off_ns);
    report.add("flight_delta_pct", flight.delta_pct);
    report.add("flight_event_ns", flight.event_ns);
    report.add("telemetry_on_ns_per_op", telemetry.on_ns);
    report.add("telemetry_off_ns_per_op", telemetry.off_ns);
    report.add("telemetry_delta_pct", telemetry.delta_pct);
    report.add("timeseries_sample_ns", telemetry.sample_ns);
    const std::string path = bench::json_artifact_path("BENCH_overheads.json");
    if (report.write_file(path.c_str())) {
      std::printf("\nwrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
