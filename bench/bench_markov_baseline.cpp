// bench_markov_baseline — the related-work comparison against Markov-chain
// prefetching (Laga et al., Lynx).
//
// §5: "Laga et al. implemented Markov chain models to improve readahead...
// 50% better I/O performance for a database system... In comparison...
// our readahead model improved I/O throughput by as much as 2.3x. Moreover,
// our readahead model's kernel memory consumption is less than 4KB,
// compared to Laga et al.'s Markov model which consumed 94MB."
//
// Two claims, two measurements: (a) throughput of Markov prefetching vs the
// KML tuner vs vanilla across workloads; (b) the *memory* each approach
// holds — the Markov transition table scales with the data footprint while
// KML's model is a fixed few KB.
//
// Usage: bench_markov_baseline [seconds]
#include "baselines/markov.h"
#include "bench_common.h"

#include <cstdlib>

int main(int argc, char** argv) {
  using namespace kml;

  std::uint64_t seconds = 12;
  if (argc > 1) {
    const std::uint64_t s = std::strtoull(argv[1], nullptr, 10);
    if (s > 0) seconds = s;
  }

  nn::Network net = bench::train_or_load_model(bench::kDefaultModelPath);
  const auto predictor = bench::nn_predictor(net);

  readahead::ExperimentConfig config;
  config.device = sim::sata_ssd_config();  // Lynx evaluated on SATA SSDs
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = bench::actuation_table(config);

  std::printf("\nMarkov prefetching (Lynx-style) vs KML on %s\n",
              config.device.name);
  std::printf("%-24s %12s %12s %12s %14s\n", "workload", "vanilla",
              "markov", "kml-nn", "markov memory");

  std::size_t max_markov_memory = 0;
  for (int w = 0; w < workloads::kNumWorkloads; ++w) {
    const auto type = static_cast<workloads::WorkloadType>(w);
    workloads::WorkloadConfig wc;
    wc.type = type;
    wc.seed = config.seed;

    double vanilla_ops;
    {
      sim::StorageStack stack(readahead::make_stack_config(config));
      kv::MiniKV db(stack, readahead::make_kv_config(config));
      vanilla_ops = workloads::run_workload(db, wc,
                                            seconds * sim::kNsPerSec,
                                            UINT64_MAX)
                        .ops_per_sec;
    }

    double markov_ops;
    std::size_t markov_memory;
    {
      sim::StorageStack stack(readahead::make_stack_config(config));
      kv::MiniKV db(stack, readahead::make_kv_config(config));
      baselines::MarkovPrefetcher prefetcher(stack,
                                             baselines::MarkovConfig{});
      markov_ops =
          workloads::run_workload(
              db, wc, seconds * sim::kNsPerSec, UINT64_MAX,
              [&prefetcher](std::uint64_t) { prefetcher.on_tick(); })
              .ops_per_sec;
      markov_memory = prefetcher.memory_bytes();
      if (markov_memory > max_markov_memory) {
        max_markov_memory = markov_memory;
      }
    }

    const readahead::EvalOutcome kml_outcome =
        readahead::evaluate_closed_loop(config, type, predictor,
                                        tuner_config, seconds);

    std::printf("%-24s %12.0f %12.0f %12.0f %11.1f MB\n",
                workloads::workload_name(type), vanilla_ops, markov_ops,
                kml_outcome.kml_ops_per_sec,
                static_cast<double>(markov_memory) / (1024.0 * 1024.0));
  }

  // --- The baseline's home turf: a recurring query pattern ------------------
  //
  // Lynx's +50% came from TPC-H, where queries re-walk the same block
  // chains. None of the six db_bench workloads has learnable transitions
  // (pure-sequential needs no oracle; uniform-random has none). This
  // section recreates the favourable case: a fixed pseudo-random chain of
  // data blocks visited cyclically, footprint > cache so every lap misses.
  // The kernel heuristic sees random jumps; the Markov table learns the
  // chain after one lap and prefetches whole blocks ahead.
  {
    std::printf("\nrecurring-query pattern (Lynx's favourable case, %s):\n",
                config.device.name);
    constexpr std::uint64_t kBlocks = 4096;  // x 64 KiB = 256 MiB footprint
    constexpr std::uint32_t kBlockPages = 16;

    auto run_pattern = [&](bool with_markov) {
      sim::StackConfig sc = readahead::make_stack_config(config);
      sim::StorageStack stack(sc);
      sim::FileHandle& file =
          stack.files().create(kBlocks * kBlockPages);
      // Lynx *replaces* the kernel heuristic: with it left on, ramp windows
      // insert address-adjacent pages and pollute the transition table.
      if (with_markov) file.ra_pages = 0;
      baselines::MarkovPrefetcher prefetcher(stack,
                                             baselines::MarkovConfig{});
      // Fixed pseudo-random block chain.
      std::vector<std::uint64_t> chain(kBlocks);
      for (std::uint64_t i = 0; i < kBlocks; ++i) chain[i] = i;
      math::Rng rng(99);
      for (std::uint64_t i = kBlocks - 1; i > 0; --i) {
        std::swap(chain[i], chain[rng.next_below(i + 1)]);
      }
      const std::uint64_t deadline =
          stack.clock().now_ns() + seconds * sim::kNsPerSec;
      std::uint64_t blocks_read = 0;
      while (stack.clock().now_ns() < deadline) {
        const std::uint64_t block = chain[blocks_read % kBlocks];
        stack.cache().read(file, block * kBlockPages, kBlockPages);
        stack.charge_cpu_ns(1500);
        if (with_markov) prefetcher.on_tick();
        ++blocks_read;
      }
      return static_cast<double>(blocks_read) * sim::kNsPerSec /
             (seconds * sim::kNsPerSec);
    };

    const double vanilla_qps = run_pattern(false);
    const double markov_qps = run_pattern(true);
    std::printf("  vanilla readahead: %8.0f blocks/s\n", vanilla_qps);
    std::printf("  + markov chain:    %8.0f blocks/s  (%.2fx — the regime "
                "behind Lynx's +50%%)\n",
                markov_qps, markov_qps / vanilla_qps);
  }

  std::printf("\nmemory footprint: markov transition table peaks at %.1f MB "
              "(paper reports 94 MB for Lynx at production scale);\n"
              "the KML readahead model holds %zu bytes of weights "
              "(paper: <4 KB) regardless of device size.\n",
              static_cast<double>(max_markov_memory) / (1024.0 * 1024.0),
              net.param_bytes());
  return 0;
}
