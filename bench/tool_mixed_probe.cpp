// tool_mixed_probe — diagnostic: per-file tuner decisions in the mixed-
// tenant scenario.
#include "bench_common.h"
#include "kv/iterator.h"
#include "workloads/generator.h"

#include <cstdio>

int main() {
  using namespace kml;
  nn::Network net = bench::train_or_load_model(bench::kDefaultModelPath);
  const auto predictor = bench::nn_predictor(net);

  readahead::ExperimentConfig config;
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = {1024, 16, 512, 16};

  sim::StorageStack stack(readahead::make_stack_config(config));
  kv::KVConfig kv_config = readahead::make_kv_config(config);
  kv_config.num_keys = config.num_keys / 2;
  kv::MiniKV scan_db(stack, kv_config);
  kv::MiniKV rand_db(stack, kv_config);
  std::printf("scan base inode guess=1, rand base inode guess=3\n");

  readahead::PerFileTuner tuner(stack, predictor, tuner_config);

  // Parallel feature dump: independent extractors per inode.
  std::unordered_map<std::uint64_t, readahead::FeatureExtractor> extractors;
  std::unordered_map<std::uint64_t, std::vector<data::TraceRecord>> windows;
  stack.tracepoints().register_hook(
      [&](const sim::TraceEvent& ev) {
        windows[ev.inode].push_back(
            data::TraceRecord{ev.inode, ev.pgoff, ev.time_ns,
                              static_cast<std::uint8_t>(ev.type)});
      },
      sim::kKmlCollectionTracepoints);

  auto it = scan_db.new_iterator();
  it->seek_to_first();
  workloads::UniformKeys keys(rand_db.num_keys(), 7);

  std::uint64_t last_window = 0;
  while (stack.clock().now_ns() < 8 * sim::kNsPerSec) {
    rand_db.get(keys.next());
    for (int i = 0; i < 64; ++i) {
      if (!it->valid()) it->seek_to_first();
      it->next();
    }
    tuner.on_tick(stack.clock().now_ns());
    if (tuner.windows() != last_window) {
      last_window = tuner.windows();
      std::printf("window %llu:\n",
                  static_cast<unsigned long long>(last_window));
      for (const auto& d : tuner.last_window_decisions()) {
        std::printf("  inode %llu: class %d -> %u KB (%llu events)\n",
                    static_cast<unsigned long long>(d.inode),
                    d.predicted_class, d.ra_kb,
                    static_cast<unsigned long long>(d.events));
      }
      for (auto& [inode, win] : windows) {
        readahead::FeatureVector f = extractors[inode].extract_selected(
            win, stack.block_layer().file_readahead_kb(inode));
        std::printf("    features inode %llu:",
                    static_cast<unsigned long long>(inode));
        for (double v : f) std::printf(" %7.3f", v);
        std::printf("\n");
        win.clear();
      }
    }
  }
  return 0;
}
