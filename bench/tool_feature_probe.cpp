// tool_feature_probe — diagnostic: per-class feature statistics of the
// training set (NVMe) vs live feature vectors observed on another device.
// Used to debug cross-device transfer of the readahead classifier.
#include "bench_common.h"

#include <string>

#include <cstdio>

int main(int argc, char** argv) {
  using namespace kml;

  readahead::TraceGenConfig trace_config;
  trace_config.seconds_per_run = 6;
  const data::Dataset train = readahead::collect_training_data(trace_config);

  std::printf("training-set (NVMe) per-class feature means [count cma cmsd "
              "meandiff ra]:\n");
  for (int c = 0; c < workloads::kNumTrainingClasses; ++c) {
    double mean[readahead::kNumSelectedFeatures] = {};
    int n = 0;
    for (int i = 0; i < train.size(); ++i) {
      if (train.label(i) != c) continue;
      for (int j = 0; j < readahead::kNumSelectedFeatures; ++j) {
        mean[j] += train.features(i)[j];
      }
      ++n;
    }
    std::printf("  %-22s", workloads::workload_name(
                               static_cast<workloads::WorkloadType>(c)));
    for (double m : mean) std::printf(" %8.3f", m / (n > 0 ? n : 1));
    std::printf("  (n=%d)\n", n);
  }

  // Live SSD features for a chosen workload at a few readahead settings.
  workloads::WorkloadType probe_type = workloads::WorkloadType::kReadRandom;
  if (argc > 1) {
    const std::string name = argv[1];
    for (int w = 0; w < workloads::kNumAllWorkloads; ++w) {
      const auto t = static_cast<workloads::WorkloadType>(w);
      if (name == workloads::workload_name(t)) probe_type = t;
    }
  }
  for (std::uint32_t ra : {128u, 1024u, 8u}) {
    readahead::ExperimentConfig config;
    config.device = sim::sata_ssd_config();
    sim::StorageStack stack(readahead::make_stack_config(config));
    kv::MiniKV db(stack, readahead::make_kv_config(config));
    stack.block_layer().set_readahead_kb(ra);

    readahead::FeatureExtractor extractor;
    std::vector<data::TraceRecord> window;
    stack.tracepoints().register_hook(
        [&](const sim::TraceEvent& ev) {
          window.push_back(
              data::TraceRecord{ev.inode, ev.pgoff, ev.time_ns,
                                static_cast<std::uint8_t>(ev.type)});
        },
        sim::kKmlCollectionTracepoints);
    std::uint64_t boundary = sim::kNsPerSec;
    std::printf("\nSSD %s at ra=%u KB, per-window features:\n", workloads::workload_name(probe_type), ra);
    workloads::WorkloadConfig wc;
    wc.type = probe_type;
    workloads::run_workload(
        db, wc, 4 * sim::kNsPerSec, UINT64_MAX, [&](std::uint64_t now) {
          while (now >= boundary) {
            const auto f = extractor.extract_selected(
                window, stack.block_layer().readahead_kb());
            std::printf("  ");
            for (double v : f) std::printf(" %8.3f", v);
            std::printf("\n");
            window.clear();
            boundary += sim::kNsPerSec;
          }
        });
  }
  return 0;
}
