// bench_rl_tuner — the reinforcement-learning mode sketched in §3.2.
//
// The paper motivates in-kernel training with RL: "we can build a feedback
// system in the kernel and transform our readahead neural network model to
// a reinforcement learning model", useful exactly when the workload is NOT
// in the training set. This experiment runs the tabular Q-learning tuner —
// no offline traces, no labels, no pretrained model — against vanilla and
// against the supervised NN tuner on every workload and both devices.
//
// Expected shape: after its exploration transient the agent approaches the
// supervised tuner on the workloads whose state it can distinguish, and
// never needs the NVMe-collected training set the NN depends on.
//
// Usage: bench_rl_tuner [seconds] [warmup-seconds]
#include "bench_common.h"

#include <cstdlib>

int main(int argc, char** argv) {
  using namespace kml;

  std::uint64_t seconds = 60;
  std::uint64_t warmup = 20;
  if (argc > 1) {
    const std::uint64_t s = std::strtoull(argv[1], nullptr, 10);
    if (s > 0) seconds = s;
  }
  if (argc > 2) warmup = std::strtoull(argv[2], nullptr, 10);
  if (warmup >= seconds) warmup = seconds / 3;

  nn::Network net = bench::train_or_load_model(bench::kDefaultModelPath);
  const auto nn_predictor = bench::nn_predictor(net);

  const sim::DeviceConfig devices[2] = {sim::nvme_config(),
                                        sim::sata_ssd_config()};
  std::printf("\nQ-learning vs supervised NN vs vanilla "
              "(%llu s runs, %llu s RL warmup excluded)\n",
              static_cast<unsigned long long>(seconds),
              static_cast<unsigned long long>(warmup));

  for (const sim::DeviceConfig& device : devices) {
    readahead::ExperimentConfig config;
    config.device = device;
    readahead::TunerConfig nn_tuner;
    nn_tuner.class_ra_kb = bench::actuation_table(config);

    std::printf("\n%s:\n%-24s %12s %12s %12s %10s %10s\n", device.name,
                "workload", "vanilla", "rl (conv.)", "nn", "rl gain",
                "nn gain");
    for (int w = 0; w < workloads::kNumWorkloads; ++w) {
      const auto type = static_cast<workloads::WorkloadType>(w);

      readahead::RlConfig rl;
      rl.seed = 11 + static_cast<std::uint64_t>(w);
      const readahead::RlEvalOutcome rl_outcome =
          readahead::evaluate_rl_closed_loop(config, type, rl, seconds,
                                             warmup);
      const readahead::EvalOutcome nn_outcome =
          readahead::evaluate_closed_loop(config, type, nn_predictor,
                                          nn_tuner, seconds);
      std::printf("%-24s %12.0f %12.0f %12.0f %9.2fx %9.2fx\n",
                  workloads::workload_name(type),
                  rl_outcome.vanilla_ops_per_sec, rl_outcome.rl_ops_per_sec,
                  nn_outcome.kml_ops_per_sec, rl_outcome.speedup,
                  nn_outcome.speedup);
    }
  }
  std::printf("\nnote: the RL agent trains online during the run; the NN "
              "was trained offline on NVMe traces.\n");
  return 0;
}
