// bench_fleet — fleet serving at scale: thousands of tenants, one model.
//
// The question behind ROADMAP item 1: the paper's per-file tuner assumes a
// handful of open files; a real deployment has thousands, with Zipfian
// traffic skew. This bench drives the FleetService at 1k and 10k tenants
// and reports what the serving layer delivers on THIS host: tenants served,
// windows/sec through the coalesced batch path, and the p99 submit→decision
// latency — with the health guard's fleet-collapse signal armed, so a
// drowning service would show up as DEGRADED/FAILED instead of a pretty
// number.
//
// --json writes BENCH_fleet.json at the repo root (flat numeric fields,
// same convention as bench_overheads, always including "cpus" — absolute
// throughput on a 1-CPU container is not comparable to a 32-way box).
#include "bench_common.h"
#include "fleet/service.h"
#include "fleet/workload.h"
#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "portability/thread.h"
#include "runtime/engine.h"
#include "runtime/health.h"
#include "workloads/generator.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace {

using namespace kml;

struct ScaleResult {
  std::uint64_t tenants = 0;
  std::uint64_t tenants_served = 0;
  std::uint64_t windows = 0;
  double windows_per_sec = 0.0;
  std::uint64_t p99_decision_ns = 0;
  std::uint64_t p50_queue_age_us = 0;
  std::uint64_t p99_queue_age_us = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rate_limited = 0;
  int final_health = 0;
};

// One serving run: `ticks` rounds of (submit a burst of Zipfian tenant
// windows) -> drain -> tick, which is the per-virtual-second cadence the
// service is built around.
ScaleResult run_scale(runtime::Engine& engine, std::uint64_t num_tenants,
                      int ticks, int windows_per_tick, double theta,
                      std::uint64_t seed) {
  observe::reset_all();
  engine.reset_stats();

  runtime::HealthConfig hc;
  // The fleet-collapse signal (j): trips when the post-drain backlog stays
  // above 1/2 of the queue or the decision p99 exceeds 250 ms.
  hc.fleet_queue_depth_degrade = 1 << 14;
  hc.fleet_decision_p99_degrade_ns = 250'000'000;
  runtime::HealthMonitor monitor(hc);

  fleet::FleetConfig fc;
  fc.shards = 16;
  fc.max_tenants = static_cast<std::uint32_t>(num_tenants);
  fc.queue_capacity = 1 << 15;
  fc.max_batch = 256;
  fc.tenant_windows_per_tick = 64;
  fc.overload_queue_depth = 1 << 14;
  fc.health = &monitor;
  fleet::FleetService service(engine, fc);

  workloads::ZipfianTenantTraffic traffic(num_tenants, theta, seed);
  math::Rng rng(seed ^ 0xf1ee7);
  fleet::FleetWorkloadConfig wc;

  double features[fleet::kMaxFleetFeatures] = {};
  const std::uint64_t t0 = kml_now_ns();
  for (int tick = 0; tick < ticks; ++tick) {
    for (int i = 0; i < windows_per_tick; ++i) {
      const std::uint64_t tenant = traffic.next();
      const int cls =
          fleet::true_class_of(tenant, engine.num_classes());
      fleet::make_window(features, engine.num_features(), cls, wc.noise, rng);
      service.submit(tenant, features, engine.num_features());
    }
    service.drain(kml_now_ns());
    service.tick(kml_now_ns());
    monitor.observe_registry();
  }
  const std::uint64_t elapsed_ns = kml_now_ns() - t0;

  ScaleResult r;
  r.tenants = num_tenants;
  r.tenants_served = service.tenants_served();
  r.windows = service.stats().decided;
  r.windows_per_sec =
      elapsed_ns == 0 ? 0.0
                      : static_cast<double>(r.windows) * 1e9 /
                            static_cast<double>(elapsed_ns);
  const observe::Histogram* h =
      observe::find_histogram(observe::kMetricFleetDecisionNs);
  r.p99_decision_ns = h == nullptr ? 0 : h->percentile(99);
  const observe::Histogram* age =
      observe::find_histogram(observe::kMetricFleetQueueAgeUs);
  r.p50_queue_age_us = age == nullptr ? 0 : age->percentile(50);
  r.p99_queue_age_us = age == nullptr ? 0 : age->percentile(99);
  r.shed = service.stats().shed;
  r.rejected = service.stats().rejected;
  r.rate_limited = service.stats().rate_limited;
  r.final_health = static_cast<int>(monitor.state());
  return r;
}

void print_result(const ScaleResult& r) {
  std::printf(
      "tenants=%llu served=%llu windows=%llu windows/sec=%.0f "
      "p99=%llu ns queue_age_p50=%llu us queue_age_p99=%llu us "
      "shed=%llu rejected=%llu rate_limited=%llu health=%s\n",
      static_cast<unsigned long long>(r.tenants),
      static_cast<unsigned long long>(r.tenants_served),
      static_cast<unsigned long long>(r.windows), r.windows_per_sec,
      static_cast<unsigned long long>(r.p99_decision_ns),
      static_cast<unsigned long long>(r.p50_queue_age_us),
      static_cast<unsigned long long>(r.p99_queue_age_us),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.rate_limited),
      runtime::health_state_name(
          static_cast<runtime::HealthState>(r.final_health)));
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::consume_flag(&argc, argv, "--json");

  std::printf("training the fleet's shared model...\n");
  fleet::FleetWorkloadConfig wc;
  nn::Network net = fleet::train_fleet_model(wc, /*seed=*/42);
  runtime::Engine engine(std::move(net));
  engine.set_mode(runtime::Mode::kInference);

  // RocksDB-study skew (theta 0.99): the head of the tenant distribution
  // carries most of the windows, the tail is huge and quiet.
  const double theta = 0.99;
  const int ticks = 200;
  const int windows_per_tick = 4096;

  std::printf("\n-- 1k tenants --\n");
  const ScaleResult r1k =
      run_scale(engine, 1'000, ticks, windows_per_tick, theta, 7);
  print_result(r1k);

  // 10k tenants, telemetry on vs the whole observe layer dark: what the
  // per-stage histograms + queue-age stamping + time-series sampler cost
  // the serving path end to end (the ISSUE's <5% telemetry budget,
  // measured on the real pipeline rather than a microbench). The runs are
  // INTERLEAVED and each side keeps its best of 3 — a one-shot on/off
  // comparison on a busy 1-CPU host reads scheduler noise as telemetry
  // cost; best-of bounds the delta by what the code actually adds.
  ScaleResult r10k{};
  ScaleResult r10k_off{};
  for (int round = 0; round < 3; ++round) {
    const ScaleResult on =
        run_scale(engine, 10'000, ticks, windows_per_tick, theta, 7);
    if (on.windows_per_sec > r10k.windows_per_sec) r10k = on;
    observe::set_enabled(false);
    const ScaleResult off =
        run_scale(engine, 10'000, ticks, windows_per_tick, theta, 7);
    observe::set_enabled(true);
    if (off.windows_per_sec > r10k_off.windows_per_sec) r10k_off = off;
  }
  std::printf("\n-- 10k tenants (best of 3) --\n");
  print_result(r10k);
  std::printf("\n-- 10k tenants, observe disabled (best of 3) --\n");
  print_result(r10k_off);
  const double telemetry_delta_pct =
      r10k_off.windows_per_sec <= 0.0
          ? 0.0
          : (r10k_off.windows_per_sec - r10k.windows_per_sec) * 100.0 /
                r10k_off.windows_per_sec;
  std::printf("fleet telemetry cost: %.2f%% of windows/sec\n",
              telemetry_delta_pct);

  if (json) {
    bench::JsonReport report;
    report.add("tenants_1k", static_cast<double>(r1k.tenants));
    report.add("tenants_served_1k", static_cast<double>(r1k.tenants_served));
    report.add("windows_1k", static_cast<double>(r1k.windows));
    report.add("windows_per_sec_1k", r1k.windows_per_sec);
    report.add("p99_decision_ns_1k", static_cast<double>(r1k.p99_decision_ns));
    report.add("queue_age_p50_us_1k",
               static_cast<double>(r1k.p50_queue_age_us));
    report.add("queue_age_p99_us_1k",
               static_cast<double>(r1k.p99_queue_age_us));
    report.add("shed_1k", static_cast<double>(r1k.shed));
    report.add("final_health_1k", static_cast<double>(r1k.final_health));
    report.add("tenants_10k", static_cast<double>(r10k.tenants));
    report.add("tenants_served_10k",
               static_cast<double>(r10k.tenants_served));
    report.add("windows_10k", static_cast<double>(r10k.windows));
    report.add("windows_per_sec_10k", r10k.windows_per_sec);
    report.add("p99_decision_ns_10k",
               static_cast<double>(r10k.p99_decision_ns));
    report.add("queue_age_p50_us_10k",
               static_cast<double>(r10k.p50_queue_age_us));
    report.add("queue_age_p99_us_10k",
               static_cast<double>(r10k.p99_queue_age_us));
    report.add("shed_10k", static_cast<double>(r10k.shed));
    report.add("final_health_10k", static_cast<double>(r10k.final_health));
    report.add("windows_per_sec_10k_observe_off", r10k_off.windows_per_sec);
    report.add("fleet_telemetry_delta_pct", telemetry_delta_pct);
    report.add("cpus", static_cast<double>(kml_num_cpus()));
    const std::string path = bench::json_artifact_path("BENCH_fleet.json");
    if (report.write_file(path.c_str())) {
      std::printf("\nwrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
