// Tests for src/sim/writeback + src/writeback: daemon threshold semantics,
// the workload-dependent optimum (batching vs the reclaim cliff), and the
// RL closed loop on the second knob.
#include "writeback/workload.h"

#include <gtest/gtest.h>

namespace kml::writeback {
namespace {

sim::StackConfig small_stack() {
  sim::StackConfig config;
  config.device = sim::sata_ssd_config();
  config.cache_pages = 4096;
  return config;
}

TEST(WritebackDaemon, FlushesOnlyAboveThreshold) {
  sim::StorageStack stack(small_stack());
  sim::FileHandle& f = stack.files().create(100000);
  sim::WritebackDaemon daemon(stack.cache(), 10);

  stack.cache().write(f, 0, 10);  // exactly at threshold: no flush
  daemon.poll();
  EXPECT_EQ(daemon.stats().flushes, 0u);
  EXPECT_EQ(stack.cache().dirty_pages(), 10u);

  stack.cache().write(f, 100, 1);  // crosses it
  daemon.poll();
  EXPECT_EQ(daemon.stats().flushes, 1u);
  EXPECT_EQ(daemon.stats().pages_flushed, 11u);
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

TEST(WritebackDaemon, ZeroThresholdIsWriteThrough) {
  sim::StorageStack stack(small_stack());
  sim::FileHandle& f = stack.files().create(1000);
  sim::WritebackDaemon daemon(stack.cache(), 0);
  stack.cache().write(f, 5, 1);
  daemon.poll();
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

TEST(WritebackDaemon, SyncAllCoversMultipleFiles) {
  sim::StorageStack stack(small_stack());
  sim::FileHandle& a = stack.files().create(1000);
  sim::FileHandle& b = stack.files().create(1000);
  stack.cache().write(a, 0, 3);
  stack.cache().write(b, 10, 4);
  EXPECT_EQ(stack.cache().sync_all(), 7u);
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

TEST(WbWorkloads, AllKindsRunAndPayWriteback) {
  for (const WbKind kind :
       {WbKind::kSeqWriter, WbKind::kRandWriter, WbKind::kMixed}) {
    sim::StorageStack stack(small_stack());
    sim::WritebackDaemon daemon(stack.cache(), 512);
    WbConfig config;
    config.kind = kind;
    config.file_pages = 100000;
    config.hot_pages = 3000;
    const WbRunResult r = run_wb_workload(stack, daemon, config,
                                          2 * sim::kNsPerSec);
    EXPECT_GT(r.ops, 0u) << wb_kind_name(kind);
    EXPECT_GT(r.ops_per_sec, 0.0);
    EXPECT_GT(stack.device().stats().pages_written, 0u);
  }
}

TEST(WbWorkloads, SeqWriterPrefersBatchingBelowCapacity) {
  // The §6 case-study shape in miniature: for the sequential writer a
  // threshold just below cache capacity beats both a tiny threshold
  // (poor batching) and one beyond capacity (reclaim writes every page
  // individually).
  sim::StackConfig sc = small_stack();
  const auto run_at = [&](std::uint64_t threshold) {
    sim::StorageStack stack(sc);
    sim::WritebackDaemon daemon(stack.cache(), threshold);
    WbConfig config;
    config.kind = WbKind::kSeqWriter;
    config.file_pages = 200000;
    return run_wb_workload(stack, daemon, config, 2 * sim::kNsPerSec);
  };
  const double tiny = run_at(32).ops_per_sec;
  const double good = run_at(3000).ops_per_sec;  // < 4096-page cache
  const WbRunResult over = run_at(100000);       // > cache: reclaim path
  EXPECT_GT(good, tiny * 1.05);
  EXPECT_GT(good, over.ops_per_sec * 1.5);  // the cliff
  EXPECT_GT(over.dirty_evictions, 0u);      // paid via reclaim writeback
}

TEST(WbWorkloads, DeterministicForSameSeed) {
  const auto run_once = [] {
    sim::StorageStack stack(small_stack());
    sim::WritebackDaemon daemon(stack.cache(), 1024);
    WbConfig config;
    config.kind = WbKind::kMixed;
    return run_wb_workload(stack, daemon, config, sim::kNsPerSec).ops;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WbSweep, ProducesOnePointPerCell) {
  const auto sweep = writeback_sweep(small_stack(),
                                     {WbKind::kSeqWriter, WbKind::kMixed},
                                     {256, 2048}, 1);
  EXPECT_EQ(sweep.size(), 4u);
  for (const auto& p : sweep) EXPECT_GT(p.ops_per_sec, 0.0);
}

TEST(WbRl, AgentDoesNotFallOffTheCliff) {
  // With local exploration, a converged sequential-writer agent must stay
  // at or near the fixed default's throughput even though catastrophic
  // actions exist in its set.
  readahead::RlConfig rl;
  rl.actions_kb = {256, 3000, 100000};  // last one is past cache capacity
  rl.local_exploration = true;
  rl.seed = 3;
  WbConfig config;
  config.kind = WbKind::kSeqWriter;
  config.file_pages = 200000;
  const WbEvalOutcome outcome = evaluate_wb_rl(
      small_stack(), config, /*default_threshold_pages=*/3000, rl,
      /*seconds=*/30, /*warmup_seconds=*/10);
  // Living at the cliff threshold would run at ~0.2x; the agent pays only
  // bounded exploration cost (forced first visits re-trigger when its
  // coarse state discretization flaps, so allow a wider margin here than
  // the long-run benches show).
  EXPECT_GT(outcome.speedup, 0.7);
  EXPECT_FALSE(outcome.timeline.empty());
}

TEST(WbRl, LocalExplorationStaysAdjacent) {
  // Unit-level: with local exploration, actions chosen via epsilon must be
  // neighbours of the greedy action. Covered indirectly: force epsilon=1
  // and verify actuations only ever move one step per window.
  sim::StorageStack stack(small_stack());
  sim::WritebackDaemon daemon(stack.cache(), 256);
  readahead::RlConfig rl;
  rl.actions_kb = {100, 200, 300, 400, 500};
  rl.epsilon = 1.0;
  rl.epsilon_decay = 1.0;
  rl.epsilon_min = 1.0;
  rl.local_exploration = true;
  readahead::QLearningTuner agent(
      stack, rl, [&daemon](std::uint32_t t) {
        daemon.set_threshold_pages(t);
      });

  WbConfig config;
  config.kind = WbKind::kRandWriter;
  config.file_pages = 100000;
  run_wb_workload(stack, daemon, config, 12 * sim::kNsPerSec,
                  [&agent](std::uint64_t now, std::uint64_t ops) {
                    agent.on_tick(now, ops);
                  });
  const auto& timeline = agent.timeline();
  ASSERT_GT(timeline.size(), 6u);
  // After the forced first visits (5 actions), epsilon moves are +-1 of
  // the greedy action; with rewards nearly flat the greedy action is
  // stable, so consecutive actuated values never jump across the set.
  for (std::size_t i = 6; i < timeline.size(); ++i) {
    if (timeline[i].action < 0 || timeline[i - 1].action < 0) continue;
    EXPECT_LE(
        std::abs(timeline[i].action - timeline[i - 1].action), 2)
        << "window " << i;
  }
}

}  // namespace
}  // namespace kml::writeback
