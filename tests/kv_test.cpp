// Tests for src/kv: Bloom filter, table geometry, dense/sorted runs, the
// memtable, MiniKV point-lookup/write/flush/compaction behaviour, and the
// merged iterator (forward, reverse, seek, direction switches, dedupe).
#include "kv/iterator.h"
#include "kv/minikv.h"

#include <gtest/gtest.h>

#include <memory>

namespace kml::kv {
namespace {

sim::StackConfig tiny_stack() {
  sim::StackConfig config;
  config.device = sim::nvme_config();
  config.cache_pages = 4096;
  return config;
}

KVConfig tiny_kv(std::uint64_t keys = 10000) {
  KVConfig config;
  config.num_keys = keys;
  config.geom.entry_bytes = 128;
  config.geom.block_pages = 4;
  config.memtable_limit_bytes = 64 << 10;  // flush after 512 puts
  return config;
}

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bloom(1000, 10);
  for (std::uint64_t k = 0; k < 1000; ++k) bloom.add(k * 7);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(bloom.may_contain(k * 7)) << k;
  }
}

TEST(Bloom, FalsePositiveRateNearOnePercent) {
  BloomFilter bloom(10000, 10);
  for (std::uint64_t k = 0; k < 10000; ++k) bloom.add(k);
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.may_contain(1000000 + static_cast<std::uint64_t>(i))) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.03);
  EXPECT_GT(rate, 0.0001);  // a real filter, not a hash set
}

TEST(Geometry, EntryBlockPageMath) {
  TableGeometry geom;
  geom.entry_bytes = 1024;
  geom.block_pages = 16;
  EXPECT_EQ(geom.entries_per_block(), 64u);
  EXPECT_EQ(geom.pages_for(64), 16u);
  EXPECT_EQ(geom.pages_for(65), 32u);  // rounds up to whole blocks
  EXPECT_EQ(geom.pages_for(1), 16u);
}

TEST(DenseRunTest, FindAndBounds) {
  sim::StorageStack stack(tiny_stack());
  TableGeometry geom;
  DenseRun run(stack, geom, 1000);
  EXPECT_EQ(run.entry_count(), 1000u);
  EXPECT_EQ(run.find(42).value(), 42u);
  EXPECT_FALSE(run.find(1000).has_value());
  EXPECT_TRUE(run.may_contain(999));
  EXPECT_FALSE(run.may_contain(1000));
  EXPECT_EQ(run.lower_bound(500), 500u);
  EXPECT_EQ(run.lower_bound(5000), 1000u);
}

TEST(SortedRunTest, FindLowerBoundAndBloom) {
  sim::StorageStack stack(tiny_stack());
  TableGeometry geom;
  SortedRun run(stack, geom, {10, 20, 30, 40}, 10);
  EXPECT_EQ(run.entry_count(), 4u);
  EXPECT_EQ(run.find(30).value(), 2u);
  EXPECT_FALSE(run.find(25).has_value());
  EXPECT_EQ(run.key_at(1), 20u);
  EXPECT_EQ(run.lower_bound(25), 2u);
  EXPECT_EQ(run.lower_bound(45), 4u);
  EXPECT_FALSE(run.may_contain(5));   // below range
  EXPECT_FALSE(run.may_contain(50));  // above range
  EXPECT_TRUE(run.may_contain(20));
}

TEST(SortedRunTest, FlushChargesDeviceWrite) {
  sim::StorageStack stack(tiny_stack());
  TableGeometry geom;
  const std::uint64_t t0 = stack.clock().now_ns();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 1000; ++k) keys.push_back(k);
  SortedRun run(stack, geom, std::move(keys), 10);
  EXPECT_GT(stack.clock().now_ns(), t0);
  EXPECT_GT(stack.device().stats().pages_written, 0u);
}

TEST(MemtableTest, PutContainsClear) {
  Memtable mem(128);
  EXPECT_TRUE(mem.put(5));
  EXPECT_FALSE(mem.put(5));  // overwrite, not new
  EXPECT_TRUE(mem.contains(5));
  EXPECT_FALSE(mem.contains(6));
  EXPECT_EQ(mem.entry_count(), 1u);
  EXPECT_EQ(mem.approximate_bytes(), 128u);
  mem.clear();
  EXPECT_TRUE(mem.empty());
}

TEST(MemtableTest, SortedKeysAreSorted) {
  Memtable mem(128);
  mem.put(30);
  mem.put(10);
  mem.put(20);
  const auto keys = mem.sorted_keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], 10u);
  EXPECT_EQ(keys[2], 30u);
}

TEST(MemtableTest, TracksHighestSequenceNumber) {
  Memtable mem(128);
  EXPECT_EQ(mem.max_seq(), 0u);
  mem.put(10, 5);
  mem.put(20, 9);
  mem.put(10, 12);  // overwrite carries the newer seq
  EXPECT_EQ(mem.max_seq(), 12u);
  EXPECT_EQ(mem.entry_count(), 2u);
}

TEST(MemtableTest, IndexFullTripsAtLoadCeiling) {
  // capacity_hint 1 clamps to the 32-entry floor: a 64-slot index with its
  // load ceiling at 32 entries.
  Memtable mem(128, /*capacity_hint=*/1);
  for (std::uint64_t k = 0; k < 32; ++k) {
    EXPECT_FALSE(mem.index_full()) << k;
    mem.put(k * 1000 + 7);
  }
  EXPECT_TRUE(mem.index_full());
  // The index stays exact at the ceiling (it never drops inserts).
  for (std::uint64_t k = 0; k < 32; ++k) {
    EXPECT_TRUE(mem.contains(k * 1000 + 7)) << k;
  }
  EXPECT_FALSE(mem.contains(1));
}

TEST(MiniKVTest, GetFindsEveryBaseKey) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(1000));
  for (std::uint64_t k = 0; k < 1000; k += 97) {
    EXPECT_TRUE(db.get(k)) << k;
  }
  EXPECT_FALSE(db.get(1000));
  EXPECT_EQ(db.stats().gets, 12u);  // 11 present keys + 1 absent probe
}

TEST(MiniKVTest, GetChargesVirtualTime) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv());
  const std::uint64_t t0 = stack.clock().now_ns();
  db.get(1234);
  EXPECT_GT(stack.clock().now_ns(), t0);
}

TEST(MiniKVTest, MemtableServesFreshWrites) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv());
  db.put(42);
  const std::uint64_t hits_before = db.stats().memtable_hits;
  EXPECT_TRUE(db.get(42));
  EXPECT_EQ(db.stats().memtable_hits, hits_before + 1);
}

TEST(MiniKVTest, FlushCreatesOverlayRun) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv());
  EXPECT_EQ(db.run_count(), 1u);
  for (std::uint64_t k = 0; k < 600; ++k) db.put(k * 3);  // > 64 KiB
  EXPECT_GE(db.stats().flushes, 1u);
  EXPECT_GE(db.run_count(), 2u);
  // Flushed keys are still readable (from the overlay now).
  EXPECT_TRUE(db.get(3));
}

TEST(MiniKVTest, CompactionBoundsRunCount) {
  sim::StorageStack stack(tiny_stack());
  KVConfig config = tiny_kv();
  config.max_overlay_runs = 2;
  MiniKV db(stack, config);
  for (std::uint64_t k = 0; k < 5000; ++k) db.put(k % 2000);
  EXPECT_GE(db.stats().compactions, 1u);
  EXPECT_LE(db.run_count(), 1u + config.max_overlay_runs + 1u);
  EXPECT_TRUE(db.get(1999));
}

TEST(MiniKVTest, WalGroupCommit) {
  sim::StorageStack stack(tiny_stack());
  KVConfig config = tiny_kv();
  config.wal_buffer_bytes = 4096;  // flush every 32 puts (128 B entries)
  MiniKV db(stack, config);
  for (std::uint64_t k = 0; k < 100; ++k) db.put(k);
  EXPECT_GE(db.stats().wal_flushes, 3u);
}

TEST(IteratorTest, ForwardScanVisitsAllKeysInOrder) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(1000));
  auto it = db.new_iterator();
  std::uint64_t expected = 0;
  for (it->seek_to_first(); it->valid(); it->next()) {
    EXPECT_EQ(it->key(), expected++);
  }
  EXPECT_EQ(expected, 1000u);
}

TEST(IteratorTest, ReverseScanVisitsAllKeysDescending) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(500));
  auto it = db.new_iterator();
  std::uint64_t expected = 499;
  std::uint64_t count = 0;
  for (it->seek_to_last(); it->valid(); it->prev()) {
    EXPECT_EQ(it->key(), expected--);
    ++count;
  }
  EXPECT_EQ(count, 500u);
}

TEST(IteratorTest, SeekLandsOnLowerBound) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  auto it = db.new_iterator();
  it->seek(42);
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), 42u);
  it->seek(1000);
  EXPECT_FALSE(it->valid());
}

TEST(IteratorTest, MergedViewDeduplicatesOverlayKeys) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  // Overwrite some base keys; they live in the memtable too now.
  db.put(10);
  db.put(20);
  auto it = db.new_iterator();
  std::uint64_t count = 0;
  std::uint64_t prev = 0;
  bool first = true;
  for (it->seek_to_first(); it->valid(); it->next()) {
    if (!first) EXPECT_GT(it->key(), prev);  // strictly increasing => dedup
    prev = it->key();
    first = false;
    ++count;
  }
  EXPECT_EQ(count, 100u);  // no duplicates from the overlay
}

TEST(IteratorTest, MemtableOnlyKeysAppearInScan) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  db.put(100);  // beyond the base key range
  db.put(105);
  auto it = db.new_iterator();
  it->seek(100);
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), 100u);
  it->next();
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), 105u);
  it->next();
  EXPECT_FALSE(it->valid());
}

TEST(IteratorTest, DirectionSwitchMidStream) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  auto it = db.new_iterator();
  it->seek(50);
  it->next();  // 51
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), 51u);
  it->prev();  // back to 50
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), 50u);
  it->prev();  // 49
  EXPECT_EQ(it->key(), 49u);
  it->next();  // 50 again
  EXPECT_EQ(it->key(), 50u);
}

TEST(IteratorTest, PrevFromFirstInvalidates) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(10));
  auto it = db.new_iterator();
  it->seek_to_first();
  it->prev();
  EXPECT_FALSE(it->valid());
}

TEST(IteratorTest, ScanTouchesPageCache) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(1000));
  auto it = db.new_iterator();
  for (it->seek_to_first(); it->valid(); it->next()) {
  }
  EXPECT_GT(stack.cache().stats().hits + stack.cache().stats().misses, 0u);
  EXPECT_GT(stack.device().stats().pages_read, 0u);
}

TEST(MiniKVTest, GenerationAdvancesOnEveryMutation) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  const std::uint64_t g0 = db.generation();
  db.put(500);
  const std::uint64_t g1 = db.generation();
  EXPECT_GT(g1, g0);
  EXPECT_TRUE(db.checkpoint());
  const std::uint64_t g2 = db.generation();
  EXPECT_GT(g2, g1);
  db.get(5);  // reads do not invalidate iterators
  EXPECT_EQ(db.generation(), g2);
}

TEST(IteratorTest, StaleIteratorFailsLoudlyNotSilently) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  auto it = db.new_iterator();
  it->seek_to_first();
  ASSERT_TRUE(it->valid());
  EXPECT_FALSE(it->invalidated());
  db.put(500);  // generation moves; `it` is now stale
#ifdef NDEBUG
  // Release builds: the first use after invalidation parks the iterator in
  // a permanent, loud error state — never a silent read of retired runs.
  it->next();
  EXPECT_TRUE(it->invalidated());
  EXPECT_FALSE(it->valid());
  it->seek_to_first();  // every further call stays a no-op
  EXPECT_FALSE(it->valid());
  EXPECT_TRUE(it->invalidated());
#else
  // Debug builds: the same misuse trips the assert.
  EXPECT_DEATH(it->next(), "invalidated");
#endif
}

TEST(IteratorTest, FreshIteratorAfterMutationSeesTheWrite) {
  sim::StorageStack stack(tiny_stack());
  MiniKV db(stack, tiny_kv(100));
  auto stale = db.new_iterator();
  db.put(500);
  auto it = db.new_iterator();  // a new snapshot is the recovery path
  it->seek(500);
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), 500u);
  EXPECT_FALSE(it->invalidated());
}

TEST(MiniKVTest, BloomSavesProbesForAbsentKeys) {
  sim::StorageStack stack(tiny_stack());
  KVConfig config = tiny_kv(1000);
  MiniKV db(stack, config);
  // Create one overlay run holding only high keys.
  for (std::uint64_t k = 0; k < 600; ++k) db.put(2000 + k);
  ASSERT_GE(db.run_count(), 2u);
  // Lookups of base-range keys should rarely probe the overlay.
  db.reset_stats();
  for (std::uint64_t k = 0; k < 500; ++k) db.get(k);
  EXPECT_LT(db.stats().bloom_false_positives, 25u);
}

}  // namespace
}  // namespace kml::kv
