#!/bin/sh
# observe_off_build.sh — prove the KML_OBSERVE=OFF build stays honest.
#
# The whole observability layer must compile away: with
# -DKML_OBSERVE_ENABLED=0 every src/observe translation unit and a probe TU
# that exercises every public macro and function must compile warning-clean,
# and the probe must link no observe statics (no global constructors, no
# data/bss symbols) — "zero added statics" is the acceptance bar, checked
# with nm when available.
#
# Usage: observe_off_build.sh <c++-compiler> <repo-source-dir>

CXX="${1:-c++}"
SRC="${2:-$(dirname "$0")/..}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "observe_off_build: compiler '$CXX' not found; skipping"
  exit 0
fi

tmp="${TMPDIR:-/tmp}/kml_observe_off.$$"
mkdir -p "$tmp" || exit 1
trap 'rm -rf "$tmp"' EXIT

FLAGS="-std=c++20 -DKML_OBSERVE_ENABLED=0 -I$SRC/src -Wall -Wextra -Werror -c"

# 1. Every observe TU compiles with the layer switched off.
for f in "$SRC"/src/observe/*.cpp; do
  if ! "$CXX" $FLAGS "$f" -o "$tmp/$(basename "$f").o"; then
    echo "observe_off_build: $f does not compile with KML_OBSERVE=OFF"
    exit 1
  fi
done

# 2. A consumer TU that touches the full macro/API surface compiles to
#    nothing: macros expand to ((void)0), functions to inline no-op stubs.
cat > "$tmp/probe.cpp" <<'EOF'
#include "observe/export.h"
#include "observe/flight_recorder.h"
#include "observe/introspect.h"
#include "observe/metrics.h"
#include "observe/slo.h"
#include "observe/timeseries.h"

using namespace kml::observe;

int run_probe() {
  KML_COUNTER_INC("probe.counter");
  KML_COUNTER_ADD("probe.counter", 5);
  KML_GAUGE_SET("probe.gauge", -1);
  KML_HIST_RECORD("probe.hist", 42);
  KML_EVENT(EventId::kTunerDecision, 1, 2);
  { KML_SPAN_NS("probe.span"); }
  counter_add("probe.counter");
  gauge_set("probe.gauge", 7);
  hist_record("probe.hist", 9);
  flight_record(EventId::kBufferPush, 1, 2);
  flight_freeze();
  flight_thaw();
  flight_reset();
  StepSample s;
  introspect_record(s);
  int alive = enabled() ? 1 : 0;
  alive += flight_recording() ? 1 : 0;
  alive += static_cast<int>(flight_total_events());
  alive += static_cast<int>(introspect_steps());
  alive += static_cast<int>(registry_overflow_count());
  alive += static_cast<int>(format_json(snapshot()).size());
  alive += static_cast<int>(format_chrome_trace(flight_snapshot()).size());
  alive += static_cast<int>(format_introspect_json(introspect_snapshot())
                                .size());
  alive += static_cast<int>(format_flight_text(flight_snapshot()).size());
  // Telemetry v3 (PR 10): retention ring, SLO evaluation, Prometheus
  // exposition — all must be stubs when OFF.
  timeseries_set_enabled(true);
  timeseries_set_tick_ns(1);
  timeseries_sample(1);
  timeseries_reset();
  alive += timeseries_poll(2) ? 1 : 0;
  alive += timeseries_enabled() ? 1 : 0;
  alive += static_cast<int>(timeseries_samples());
  alive += static_cast<int>(timeseries_last_sample_ns());
  alive += static_cast<int>(timeseries_tick_ns() != 0);
  alive += static_cast<int>(timeseries_counter_delta("probe.counter", 1));
  alive += static_cast<int>(
      timeseries_counter_rate_per_sec("probe.counter", 1));
  alive += static_cast<int>(timeseries_gauge_last("probe.gauge"));
  alive += static_cast<int>(timeseries_hist_window_count("probe.hist", 1));
  alive += static_cast<int>(
      timeseries_hist_window_percentile("probe.hist", 1, 99));
  alive += static_cast<int>(timeseries_hist_window_over("probe.hist", 1, 1));
  SloObjective obj;
  obj.hist_name = "probe.hist";
  alive += slo_register(obj);
  alive += static_cast<int>(slo_count());
  alive += slo_objective(0) != nullptr ? 1 : 0;
  alive += slo_evaluate(0).burning ? 1 : 0;
  slo_reset();
  alive += static_cast<int>(format_prometheus().size());
  return alive;
}
EOF
if ! "$CXX" $FLAGS "$tmp/probe.cpp" -o "$tmp/probe.o"; then
  echo "observe_off_build: macro/API surface does not compile when OFF"
  exit 1
fi

# 3. Zero added statics: the probe object must carry no global constructors
#    and no data/bss definitions — everything compiled away.
if command -v nm >/dev/null 2>&1; then
  statics=$(nm "$tmp/probe.o" 2>/dev/null |
    grep -E ' [bBdD] |_GLOBAL__sub_I|static_initialization')
  if [ -n "$statics" ]; then
    echo "observe_off_build: OFF probe still defines static storage:"
    echo "$statics" | head -10
    exit 1
  fi
fi

echo "observe_off_build: clean"
exit 0
