// Tests for src/portability/simd: the determinism contract. Every
// floating-point kernel must be BIT-identical across dispatch tiers
// (scalar/SSE2/AVX2, forced via kml_simd_set_level — the programmatic twin
// of KML_SIMD_LEVEL), the transcendental spans must reproduce the scalar
// math/approx functions bit for bit including special values, and the int8
// GEMM must be exact. The routed matrix::matmul paths are pinned against
// matmul_naive at every tier so the seam stays honest end to end.
#include "portability/simd.h"

#include "math/approx.h"
#include "matrix/linalg.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace kml {
namespace {

std::vector<SimdLevel> available_tiers() {
  std::vector<SimdLevel> tiers = {SimdLevel::kScalar};
  const SimdLevel best = kml_simd_detected();
  if (best >= SimdLevel::kSse2) tiers.push_back(SimdLevel::kSse2);
  if (best >= SimdLevel::kAvx2) tiers.push_back(SimdLevel::kAvx2);
  return tiers;
}

// Restores the dispatch tier active at construction — tests force tiers
// freely without leaking the override into later tests.
struct TierGuard {
  SimdLevel prev = kml_simd_level();
  ~TierGuard() { kml_simd_set_level(prev); }
};

// Deterministic fill (xorshift64*), mapped into a small range so matmul
// reductions exercise real rounding.
std::uint64_t next_u64(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dULL;
}

double next_double(std::uint64_t& s) {
  return static_cast<double>(next_u64(s) >> 11) * (1.0 / 9007199254740992.0) *
             8.0 -
         4.0;
}

template <typename T>
void fill(std::vector<T>& v, std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& x : v) x = static_cast<T>(next_double(s));
}

template <typename T>
std::uint64_t bits_of(T x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(T));
  return b;
}

template <typename T>
void expect_bit_equal(const std::vector<T>& got, const std::vector<T>& want,
                      const char* what, SimdLevel tier) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(bits_of(got[i]), bits_of(want[i]))
        << what << " diverges from scalar at tier "
        << kml_simd_level_name(tier) << ", element " << i << ": got "
        << got[i] << ", want " << want[i];
  }
}

struct Shape {
  int m, n, k;
};

constexpr Shape kShapes[] = {{1, 1, 1},  {2, 3, 4},   {3, 5, 7},
                             {8, 8, 8},  {5, 17, 9},  {7, 33, 13},
                             {1, 31, 6}, {16, 4, 64}};

template <typename T>
void run_matmul_family(SimdLevel tier) {
  for (const Shape& s : kShapes) {
    std::vector<T> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<T> at(static_cast<std::size_t>(s.k) * s.m);
    std::vector<T> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<T> bt(static_cast<std::size_t>(s.n) * s.k);
    fill(a, 0x9e3779b97f4a7c15ULL + s.m);
    fill(at, 0xbf58476d1ce4e5b9ULL + s.n);
    fill(b, 0x94d049bb133111ebULL + s.k);
    fill(bt, 0xd6e8feb86659fd93ULL + s.m + s.n);
    std::vector<T> want(static_cast<std::size_t>(s.m) * s.n);
    std::vector<T> got(want.size());

    const auto run = [&](std::vector<T>& out) {
      if constexpr (sizeof(T) == 8) {
        kml_simd_matmul_f64(a.data(), s.k, b.data(), s.n, out.data(), s.n,
                            s.m, s.n, s.k);
      } else {
        kml_simd_matmul_f32(a.data(), s.k, b.data(), s.n, out.data(), s.n,
                            s.m, s.n, s.k);
      }
    };
    const auto run_bt = [&](std::vector<T>& out) {
      if constexpr (sizeof(T) == 8) {
        kml_simd_matmul_bt_f64(a.data(), s.k, bt.data(), s.k, out.data(), s.n,
                               s.m, s.n, s.k);
      } else {
        kml_simd_matmul_bt_f32(a.data(), s.k, bt.data(), s.k, out.data(), s.n,
                               s.m, s.n, s.k);
      }
    };
    const auto run_at = [&](std::vector<T>& out) {
      if constexpr (sizeof(T) == 8) {
        kml_simd_matmul_at_f64(at.data(), s.m, b.data(), s.n, out.data(), s.n,
                               s.m, s.n, s.k);
      } else {
        kml_simd_matmul_at_f32(at.data(), s.m, b.data(), s.n, out.data(), s.n,
                               s.m, s.n, s.k);
      }
    };

    ASSERT_EQ(kml_simd_set_level(SimdLevel::kScalar), SimdLevel::kScalar);
    run(want);
    ASSERT_EQ(kml_simd_set_level(tier), tier);
    run(got);
    expect_bit_equal(got, want, "matmul", tier);

    kml_simd_set_level(SimdLevel::kScalar);
    run_bt(want);
    kml_simd_set_level(tier);
    run_bt(got);
    expect_bit_equal(got, want, "matmul_bt", tier);

    kml_simd_set_level(SimdLevel::kScalar);
    run_at(want);
    kml_simd_set_level(tier);
    run_at(got);
    expect_bit_equal(got, want, "matmul_at", tier);
  }
}

TEST(Simd, MatmulFamilyBitIdenticalAcrossTiers) {
  TierGuard guard;
  for (SimdLevel tier : available_tiers()) {
    run_matmul_family<double>(tier);
    run_matmul_family<float>(tier);
  }
}

TEST(Simd, ElementwiseBitIdenticalAcrossTiers) {
  TierGuard guard;
  const long lengths[] = {1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 100};
  for (SimdLevel tier : available_tiers()) {
    for (long n : lengths) {
      std::vector<double> a(static_cast<std::size_t>(n));
      std::vector<double> b(a.size());
      fill(a, 0x1111 + static_cast<std::uint64_t>(n));
      fill(b, 0x2222 + static_cast<std::uint64_t>(n));
      std::vector<double> want(a.size());
      std::vector<double> got(a.size());

      struct Case {
        const char* name;
        void (*fn)(const double*, const double*, double*, long);
      };
      const Case cases[] = {{"add", &kml_simd_add_f64},
                            {"sub", &kml_simd_sub_f64},
                            {"mul", &kml_simd_mul_f64}};
      for (const Case& c : cases) {
        kml_simd_set_level(SimdLevel::kScalar);
        c.fn(a.data(), b.data(), want.data(), n);
        kml_simd_set_level(tier);
        c.fn(a.data(), b.data(), got.data(), n);
        expect_bit_equal(got, want, c.name, tier);
      }

      // axpy/scale mutate in place: run each tier from the same start state.
      std::vector<double> acc = a;
      kml_simd_set_level(SimdLevel::kScalar);
      kml_simd_axpy_f64(1.25, b.data(), acc.data(), n);
      kml_simd_scale_f64(acc.data(), 0.75, n);
      want = acc;
      acc = a;
      kml_simd_set_level(tier);
      kml_simd_axpy_f64(1.25, b.data(), acc.data(), n);
      kml_simd_scale_f64(acc.data(), 0.75, n);
      expect_bit_equal(acc, want, "axpy+scale", tier);

      std::vector<float> fa(a.size());
      std::vector<float> fb(a.size());
      fill(fa, 0x3333 + static_cast<std::uint64_t>(n));
      fill(fb, 0x4444 + static_cast<std::uint64_t>(n));
      std::vector<float> fwant(fa.size());
      std::vector<float> fgot(fa.size());
      kml_simd_set_level(SimdLevel::kScalar);
      kml_simd_mul_f32(fa.data(), fb.data(), fwant.data(), n);
      kml_simd_set_level(tier);
      kml_simd_mul_f32(fa.data(), fb.data(), fgot.data(), n);
      expect_bit_equal(fgot, fwant, "mul_f32", tier);
    }
  }
}

// Special values the span kernels must route through the scalar fallback
// (or reproduce exactly): NaN, infinities, the vector-safe domain edges
// (±700 for exp, ±20 for tanh), subnormal-adjacent magnitudes, and signed
// zero.
std::vector<double> transcendental_inputs() {
  std::vector<double> in = {
      0.0,    -0.0,   1.0,     -1.0,   0.5,    -0.5,    20.0,  -20.0,
      20.5,   -20.5,  699.5,   -699.5, 700.0,  -700.0,  700.5, -700.5,
      709.9,  -745.5, 1e-300,  -1e-300, 1e300, -1e300,  6.25,  -6.25,
      math::kml_nan(), math::kml_inf(), -math::kml_inf()};
  std::uint64_t s = 0xfeedface;
  for (int i = 0; i < 97; ++i) in.push_back(next_double(s) * 5.0);
  return in;
}

TEST(Simd, TranscendentalSpansMatchScalarBitsAtEveryTier) {
  TierGuard guard;
  const std::vector<double> in = transcendental_inputs();
  const long n = static_cast<long>(in.size());
  struct Case {
    const char* name;
    void (*span)(const double*, double*, long, KmlScalarFn);
    KmlScalarFn scalar;
  };
  const Case cases[] = {
      {"exp", &kml_simd_exp_span, &math::kml_exp},
      {"sigmoid", &kml_simd_sigmoid_span, &math::kml_sigmoid},
      {"tanh", &kml_simd_tanh_span, &math::kml_tanh}};
  for (SimdLevel tier : available_tiers()) {
    kml_simd_set_level(tier);
    for (const Case& c : cases) {
      std::vector<double> want(in.size());
      for (std::size_t i = 0; i < in.size(); ++i) want[i] = c.scalar(in[i]);
      std::vector<double> got(in.size());
      c.span(in.data(), got.data(), n, c.scalar);
      expect_bit_equal(got, want, c.name, tier);

      // in == out aliasing is part of the contract (activations run in
      // place).
      std::vector<double> inplace = in;
      c.span(inplace.data(), inplace.data(), n, c.scalar);
      expect_bit_equal(inplace, want, c.name, tier);
    }
  }
}

TEST(Simd, Int8GemmExactAcrossTiers) {
  TierGuard guard;
  for (const Shape& s : kShapes) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<std::int8_t> b(static_cast<std::size_t>(s.k) * s.n);
    std::uint64_t seed = 0xabcdef01 + static_cast<std::uint64_t>(s.m * s.n);
    for (auto& v : a) {
      v = static_cast<std::int8_t>(static_cast<int>(next_u64(seed) % 255) -
                                   127);
    }
    for (auto& v : b) {
      v = static_cast<std::int8_t>(static_cast<int>(next_u64(seed) % 255) -
                                   127);
    }
    // Grid extremes in known positions: the worst-case ±127·±127 products.
    a.front() = 127;
    b.front() = 127;
    a.back() = -127;
    b.back() = -127;

    // Exact integer reference.
    std::vector<std::int32_t> want(static_cast<std::size_t>(s.m) * s.n, 0);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        std::int32_t acc = 0;
        for (int kk = 0; kk < s.k; ++kk) {
          acc += static_cast<std::int32_t>(
                     a[static_cast<std::size_t>(i) * s.k + kk]) *
                 static_cast<std::int32_t>(
                     b[static_cast<std::size_t>(kk) * s.n + j]);
        }
        want[static_cast<std::size_t>(i) * s.n + j] = acc;
      }
    }

    for (SimdLevel tier : available_tiers()) {
      kml_simd_set_level(tier);
      std::vector<std::int32_t> got(want.size(), -1);
      kml_simd_gemm_s8(a.data(), s.k, b.data(), s.n, got.data(), s.n, s.m,
                       s.n, s.k);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "gemm_s8 tier " << kml_simd_level_name(tier) << " shape "
            << s.m << "x" << s.n << "x" << s.k << " element " << i;
      }
    }
  }
}

// End-to-end: the routed matrix::matmul must still match matmul_naive at
// every tier (the pre-existing equivalence suites run at the default tier;
// this pins the forced tiers too).
TEST(Simd, RoutedLinalgMatchesNaiveAtEveryTier) {
  TierGuard guard;
  matrix::MatD a(13, 17);
  matrix::MatD b(17, 11);
  matrix::MatD bt(11, 17);
  matrix::MatD at(17, 13);
  {
    std::uint64_t s = 0x5ca1ab1e;
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = next_double(s);
    for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = next_double(s);
    for (std::size_t i = 0; i < bt.size(); ++i) bt.data()[i] = next_double(s);
    for (std::size_t i = 0; i < at.size(); ++i) at.data()[i] = next_double(s);
  }
  matrix::MatD want(13, 11);
  matrix::MatD got(13, 11);
  for (SimdLevel tier : available_tiers()) {
    kml_simd_set_level(tier);

    matrix::matmul_naive(a, b, want);
    matrix::matmul(a, b, got);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
          << "matmul tier " << kml_simd_level_name(tier) << " element " << i;
    }

    matrix::matmul_bt_naive(a, bt, want);
    matrix::matmul_bt(a, bt, got);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
          << "matmul_bt tier " << kml_simd_level_name(tier) << " element "
          << i;
    }

    matrix::matmul_at_naive(at, b, want);
    matrix::matmul_at(at, b, got);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
          << "matmul_at tier " << kml_simd_level_name(tier) << " element "
          << i;
    }
  }
}

TEST(Simd, LevelNamesRoundTripAndClamp) {
  TierGuard guard;
  EXPECT_STREQ(kml_simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(kml_simd_level_name(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(kml_simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(kml_simd_level_name(SimdLevel::kNeon), "neon");
  EXPECT_EQ(kml_simd_level_from_name("AVX2"), SimdLevel::kAvx2);
  EXPECT_EQ(kml_simd_level_from_name("sse2"), SimdLevel::kSse2);
  EXPECT_EQ(kml_simd_level_from_name("Scalar"), SimdLevel::kScalar);
  EXPECT_EQ(kml_simd_level_from_name("bogus"), SimdLevel::kScalar);
  EXPECT_EQ(kml_simd_level_from_name(nullptr), SimdLevel::kScalar);

  // Requests clamp to what the CPU has; the NEON stub clamps to scalar.
  EXPECT_EQ(kml_simd_set_level(SimdLevel::kNeon), SimdLevel::kScalar);
  EXPECT_EQ(kml_simd_set_level(kml_simd_detected()), kml_simd_detected());
  EXPECT_LE(kml_simd_set_level(SimdLevel::kAvx2), kml_simd_detected());
}

}  // namespace
}  // namespace kml
