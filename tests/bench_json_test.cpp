// bench_json_test.cpp — schema guard for the committed BENCH_*.json
// artifacts.
//
// The perf-trajectory tooling diffs the BENCH_*.json files committed at the
// repo root across commits; for months they were written into whatever
// build directory the bench ran from, so the trajectory was silently empty.
// This guard pins the contract from the consuming side: artifacts exist at
// the root, every one parses as the flat numeric JSON bench::JsonReport
// emits, and every one records the "cpus" it ran on (absolute numbers from
// a 1-CPU container must never be compared to a 32-way box).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

// The same root discovery the benches use to place the artifacts: walk up
// from the working directory until ROADMAP.md appears.
fs::path find_repo_root() {
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 10; ++depth) {
    if (fs::exists(dir / "ROADMAP.md")) return dir;
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return {};
}

// Minimal parser for the bench::JsonReport format — one flat object whose
// values are numbers, `null` (a measurement skipped on this host, e.g. the
// 4-thread speedup cell on a 1-CPU box), or simple strings (skip reasons,
// tier names). Numbers land in `out`; null/string fields are validated and
// recorded in `skipped`/`strings`. Returns false (with a reason) on
// anything that shape does not allow; deliberately strict so format drift
// fails loudly here instead of in the diff tooling.
bool parse_flat_json(const std::string& text,
                     std::map<std::string, double>* out,
                     std::string* reason,
                     std::map<std::string, std::string>* strings = nullptr,
                     std::set<std::string>* skipped = nullptr) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
            text[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') {
    *reason = "missing opening brace";
    return false;
  }
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return true;  // empty object
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') {
      *reason = "expected quoted key";
      return false;
    }
    const std::size_t kend = text.find('"', i + 1);
    if (kend == std::string::npos) {
      *reason = "unterminated key";
      return false;
    }
    const std::string key = text.substr(i + 1, kend - i - 1);
    i = kend + 1;
    skip_ws();
    if (i >= text.size() || text[i] != ':') {
      *reason = "expected ':' after key " + key;
      return false;
    }
    ++i;
    skip_ws();
    if (text.compare(i, 4, "null") == 0) {
      if (skipped != nullptr) skipped->insert(key);
      i += 4;
    } else if (i < text.size() && text[i] == '"') {
      const std::size_t vend = text.find('"', i + 1);
      if (vend == std::string::npos) {
        *reason = "unterminated string value for key " + key;
        return false;
      }
      if (strings != nullptr) {
        (*strings)[key] = text.substr(i + 1, vend - i - 1);
      }
      i = vend + 1;
    } else {
      char* end = nullptr;
      const double value = std::strtod(text.c_str() + i, &end);
      if (end == text.c_str() + i) {
        *reason = "invalid value for key " + key;
        return false;
      }
      (*out)[key] = value;
      i = static_cast<std::size_t>(end - text.c_str());
    }
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return true;
    *reason = "expected ',' or '}' after key " + key;
    return false;
  }
}

TEST(BenchJson, CommittedArtifactsParseAndRecordCpus) {
  const fs::path root = find_repo_root();
  ASSERT_FALSE(root.empty()) << "repo root (ROADMAP.md) not found from "
                             << fs::current_path();
  int found = 0;
  for (const auto& entry : fs::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") {
      continue;
    }
    ++found;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << name;
    std::stringstream ss;
    ss << in.rdbuf();
    std::map<std::string, double> fields;
    std::map<std::string, std::string> strings;
    std::string reason;
    EXPECT_TRUE(parse_flat_json(ss.str(), &fields, &reason, &strings))
        << name << ": " << reason;
    EXPECT_FALSE(fields.empty()) << name << " has no fields";
    ASSERT_TRUE(fields.count("cpus") != 0)
        << name << " is missing the required \"cpus\" field";
    EXPECT_GE(fields["cpus"], 1.0) << name;
    // Provenance stamp (PR 10): every artifact carries non-empty git_sha /
    // build_type / timestamp_utc strings so a number is attributable to the
    // commit and build that produced it.
    for (const char* key : {"git_sha", "build_type", "timestamp_utc"}) {
      ASSERT_TRUE(strings.count(key) != 0)
          << name << " is missing the \"" << key << "\" provenance stamp";
      EXPECT_FALSE(strings[key].empty()) << name << ": empty " << key;
    }
  }
  // The artifacts are committed; an empty root means the --json path
  // regressed back to scattering results across build trees.
  EXPECT_GT(found, 0) << "no BENCH_*.json artifacts at " << root;
}

TEST(BenchJson, ParserRejectsMalformedDocuments) {
  std::map<std::string, double> fields;
  std::string reason;
  EXPECT_FALSE(parse_flat_json("", &fields, &reason));
  EXPECT_FALSE(parse_flat_json("{\"a\": }", &fields, &reason));
  EXPECT_FALSE(parse_flat_json("{\"a\": \"str}", &fields, &reason));
  EXPECT_FALSE(parse_flat_json("{\"a\": 1 \"b\": 2}", &fields, &reason));
  EXPECT_FALSE(parse_flat_json("{\"a\": nul}", &fields, &reason));
  EXPECT_TRUE(parse_flat_json("{\n  \"a\": 1.5,\n  \"b\": -2\n}\n", &fields,
                              &reason));
  EXPECT_DOUBLE_EQ(fields["a"], 1.5);
  EXPECT_DOUBLE_EQ(fields["b"], -2.0);
}

TEST(BenchJson, ParserAcceptsSkippedCellsAndStrings) {
  // The shape bench_overheads emits on a 1-CPU host: the thread-scaling
  // speedup is null (not a made-up 0.98x) plus a reason string.
  std::map<std::string, double> fields;
  std::map<std::string, std::string> strings;
  std::set<std::string> skipped;
  std::string reason;
  ASSERT_TRUE(parse_flat_json(
      "{\n"
      "  \"cpus\": 1.000000,\n"
      "  \"batch_infer_speedup_4v1\": null,\n"
      "  \"batch_infer_speedup_4v1_skip_reason\": \"1 cpu < 4 threads\",\n"
      "  \"inference_ns\": 250.5\n"
      "}\n",
      &fields, &reason, &strings, &skipped));
  EXPECT_DOUBLE_EQ(fields["cpus"], 1.0);
  EXPECT_DOUBLE_EQ(fields["inference_ns"], 250.5);
  EXPECT_EQ(fields.count("batch_infer_speedup_4v1"), 0u);
  EXPECT_EQ(skipped.count("batch_infer_speedup_4v1"), 1u);
  EXPECT_EQ(strings["batch_infer_speedup_4v1_skip_reason"],
            "1 cpu < 4 threads");
}

}  // namespace
