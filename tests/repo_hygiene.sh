#!/bin/sh
# repo_hygiene.sh — fail if build output is tracked by git.
#
# PR 1's review produced a committed build tree (~900 object files and
# CMake state under build-review/); this guard keeps that class of mistake
# from coming back. Run from anywhere; passes trivially when the checkout
# is not a git work tree (release tarballs, vendored copies).

repo_root="$(dirname "$0")/.."
cd "$repo_root" || exit 1

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "repo_hygiene: not a git work tree; skipping"
  exit 0
fi

offenders=$(git ls-files | grep -E '^build|(^|/)CMakeCache\.txt$|\.o$' )
if [ -n "$offenders" ]; then
  echo "repo_hygiene: build output is tracked by git:"
  echo "$offenders" | head -20
  echo "repo_hygiene: run 'git rm -r --cached <path>' and check .gitignore"
  exit 1
fi

# Thread creation must flow through the portability seam (src/portability),
# so a kernel backend can swap in kthread_run / atomic64_t: direct
# std::thread / std::jthread / std::async / pthread_* use anywhere else in
# src/ breaks that substitution. (Synchronization types like std::mutex are
# fine — only thread-creation and raw-pthread primitives are flagged.)
thread_offenders=$(git ls-files src | grep -E '\.(cpp|h)$' |
  grep -v '^src/portability/' |
  xargs grep -l -E 'std::thread|std::jthread|std::async|pthread_[a-z]' \
    2>/dev/null)
if [ -n "$thread_offenders" ]; then
  echo "repo_hygiene: raw threading primitives outside src/portability/:"
  echo "$thread_offenders" | head -20
  echo "repo_hygiene: use kml_thread_create / kml_parallel_for instead"
  exit 1
fi

# Raw SIMD intrinsics live only behind the portability seam
# (src/portability/simd_*.cpp): everywhere else uses the dispatched
# kml_simd_* kernels, so a non-x86 port or a KML_SIMD=OFF build never
# chases intrinsics through the tree. Any intrinsics header counts —
# <immintrin.h> pulls in everything on x86, and the narrower headers
# (emmintrin/xmmintrin/x86intrin) or <arm_neon.h> are the same leak.
simd_offenders=$(git ls-files src tests bench tools | grep -E '\.(cpp|h)$' |
  grep -v '^src/portability/' |
  xargs grep -l -E '#include[ ]*<(immintrin|emmintrin|xmmintrin|x86intrin|arm_neon)\.h>' \
    2>/dev/null)
if [ -n "$simd_offenders" ]; then
  echo "repo_hygiene: raw SIMD intrinsics outside src/portability/:"
  echo "$simd_offenders" | head -20
  echo "repo_hygiene: route through the kml_simd_* kernels (portability/simd.h)"
  exit 1
fi

# kml::observe is the record-path layer and must stay FPU-free: kernel
# record paths cannot touch floating point (no kernel_fpu_begin on a trace
# hook). Producers above the FPU line (runtime/nn/data) convert to
# milli-unit integers before calling in, so no observe source may even
# declare a float/double. Comments are stripped first; the word-boundary
# match also catches parameters and casts.
fpu_offenders=$(git ls-files src/observe | grep -E '\.(cpp|h)$' |
  while read -r f; do
    if sed -e 's://.*$::' "$f" | grep -qE '\b(float|double)\b'; then
      echo "$f"
    fi
  done)
if [ -n "$fpu_offenders" ]; then
  echo "repo_hygiene: float/double in the FPU-free observe layer:"
  echo "$fpu_offenders"
  echo "repo_hygiene: convert to milli-unit integers in the producer instead"
  exit 1
fi

# Eviction-policy internals are owned by src/sim: the seam is
# PageCache::set_policy / policy_type / policy_params. Code elsewhere in
# src/ constructing policies directly (make_eviction_policy) or driving
# them slot-by-slot (pick_victim) bypasses the residency reseeding and the
# switch accounting that set_policy provides.
policy_offenders=$(git ls-files src | grep -E '\.(cpp|h)$' |
  grep -v '^src/sim/' |
  xargs grep -l -E 'make_eviction_policy|pick_victim' 2>/dev/null)
if [ -n "$policy_offenders" ]; then
  echo "repo_hygiene: eviction-policy internals used outside src/sim/:"
  echo "$policy_offenders" | head -20
  echo "repo_hygiene: actuate through PageCache::set_policy instead"
  exit 1
fi

# The fleet service exists to amortize per-call inference costs across
# tenants: every classification must flow through the coalesced
# Engine::infer_batch* path. A stray per-window infer_class in src/fleet/
# silently forfeits the batching the subsystem is for.
fleet_offenders=$(git ls-files src/fleet | grep -E '\.(cpp|h)$' |
  xargs grep -l -E '\binfer_class\b' 2>/dev/null)
if [ -n "$fleet_offenders" ]; then
  echo "repo_hygiene: single-row Engine::infer_class used in src/fleet/:"
  echo "$fleet_offenders" | head -20
  echo "repo_hygiene: fleet decisions must use the batched infer_batch path"
  exit 1
fi

echo "repo_hygiene: clean"
exit 0
