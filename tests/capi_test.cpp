// Tests for src/capi: the C deployment boundary — load/infer/destroy for
// both model families, NULL/mismatch safety, and agreement with the C++
// path.
#include "capi/kml_api.h"

#include "dtree/decision_tree.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "observe/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

namespace {

using namespace kml;

const char* kModelPath = "/tmp/kml_capi_model.kml";
const char* kTreePath = "/tmp/kml_capi_tree.kmlt";

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    math::Rng rng(3);
    net_ = nn::build_mlp_classifier(4, 8, 3, rng);
    matrix::MatD stats = matrix::random_uniform(50, 4, -10, 10, rng);
    net_.normalizer().fit(stats);
    ASSERT_TRUE(nn::save_model(net_, kModelPath));

    data::Dataset d(2);
    for (int i = 0; i < 60; ++i) {
      double f[2] = {i < 30 ? -1.0 : 1.0, 0.5};
      d.add(f, i < 30 ? 0 : 1);
    }
    tree_.fit(d);
    ASSERT_TRUE(tree_.save(kTreePath));
  }
  void TearDown() override {
    std::remove(kModelPath);
    std::remove(kTreePath);
  }

  nn::Network net_;
  dtree::DecisionTree tree_;
};

TEST_F(CapiTest, ModelLoadInferDestroy) {
  kml_model* model = kml_model_load(kModelPath);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(kml_model_num_features(model), 4);
  EXPECT_EQ(kml_model_num_classes(model), 3);
  EXPECT_GT(kml_model_weight_bytes(model), 0u);

  const double features[4] = {1.0, -2.0, 0.5, 3.0};
  const int cls = kml_model_infer(model, features, 4);
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 3);

  // Agreement with the C++ inference path.
  std::vector<double> z(features, features + 4);
  net_.normalizer().transform_row(z.data(), 4);
  matrix::MatD x(1, 4);
  for (int j = 0; j < 4; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
  EXPECT_EQ(cls, net_.predict_classes(x).at(0, 0));

  kml_model_destroy(model);
}

TEST_F(CapiTest, ModelErrorPaths) {
  EXPECT_EQ(kml_model_load(nullptr), nullptr);
  EXPECT_EQ(kml_model_load("/tmp/kml_capi_missing.kml"), nullptr);
  EXPECT_EQ(kml_model_infer(nullptr, nullptr, 4), -1);
  EXPECT_EQ(kml_model_num_features(nullptr), -1);
  EXPECT_EQ(kml_model_num_classes(nullptr), -1);
  EXPECT_EQ(kml_model_weight_bytes(nullptr), 0u);
  kml_model_destroy(nullptr);  // no-op

  kml_model* model = kml_model_load(kModelPath);
  ASSERT_NE(model, nullptr);
  const double features[4] = {0, 0, 0, 0};
  EXPECT_EQ(kml_model_infer(model, features, 3), -1);  // width mismatch
  EXPECT_EQ(kml_model_infer(model, nullptr, 4), -1);
  kml_model_destroy(model);
}

TEST_F(CapiTest, ModelInferSteadyStateDoesNotAllocate) {
  kml_model* model = kml_model_load(kModelPath);
  ASSERT_NE(model, nullptr);
  const double features[4] = {1.0, -2.0, 0.5, 3.0};
  const int expected = kml_model_infer(model, features, 4);  // warm-up

  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(kml_model_infer(model, features, 4), expected);
  }
  EXPECT_EQ(kml_mem_stats().total_allocs, before);
  kml_model_destroy(model);
}

TEST_F(CapiTest, EngineLoadInferDestroy) {
  kml_engine* engine = kml_engine_load(kModelPath);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(kml_engine_num_features(engine), 4);
  EXPECT_EQ(kml_engine_num_classes(engine), 3);

  // Agreement with the plain model handle over a spread of inputs.
  kml_model* model = kml_model_load(kModelPath);
  ASSERT_NE(model, nullptr);
  math::Rng rng(9);
  for (int i = 0; i < 32; ++i) {
    double f[4];
    for (double& v : f) v = rng.next_double() * 20.0 - 10.0;
    const int cls = kml_engine_infer(engine, f, 4);
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, 3);
    EXPECT_EQ(cls, kml_model_infer(model, f, 4)) << i;
  }
  kml_model_destroy(model);
  kml_engine_destroy(engine);
}

TEST_F(CapiTest, EngineInferBatchAgreesWithSingle) {
  kml_engine* engine = kml_engine_load(kModelPath);
  ASSERT_NE(engine, nullptr);

  constexpr int kCount = 13;
  double features[kCount * 4];
  math::Rng rng(15);
  for (double& v : features) v = rng.next_double() * 20.0 - 10.0;
  int classes[kCount];
  ASSERT_EQ(kml_engine_infer_batch(engine, features, 4, kCount, classes),
            kCount);
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(classes[i], kml_engine_infer(engine, &features[i * 4], 4)) << i;
  }
  kml_engine_destroy(engine);
}

TEST_F(CapiTest, EngineInferSteadyStateDoesNotAllocate) {
  // kml_engine_load warm-ups for KML_ENGINE_DEFAULT_BATCH rows, so even the
  // *first* single and batched inference must be allocation-free.
  kml_engine* engine = kml_engine_load(kModelPath);
  ASSERT_NE(engine, nullptr);
  double features[KML_ENGINE_DEFAULT_BATCH * 4];
  math::Rng rng(21);
  for (double& v : features) v = rng.next_double();
  int classes[KML_ENGINE_DEFAULT_BATCH];

  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 0; i < 100; ++i) {
    kml_engine_infer(engine, features, 4);
    kml_engine_infer_batch(engine, features, 4, KML_ENGINE_DEFAULT_BATCH,
                           classes);
  }
  EXPECT_EQ(kml_mem_stats().total_allocs, before);
  kml_engine_destroy(engine);
}

TEST_F(CapiTest, EngineErrorPaths) {
  EXPECT_EQ(kml_engine_load(nullptr), nullptr);
  EXPECT_EQ(kml_engine_load("/tmp/kml_capi_missing.kml"), nullptr);
  EXPECT_EQ(kml_engine_infer(nullptr, nullptr, 4), -1);
  EXPECT_EQ(kml_engine_infer_batch(nullptr, nullptr, 4, 1, nullptr), -1);
  EXPECT_EQ(kml_engine_num_features(nullptr), -1);
  EXPECT_EQ(kml_engine_num_classes(nullptr), -1);
  kml_engine_destroy(nullptr);  // no-op

  kml_engine* engine = kml_engine_load(kModelPath);
  ASSERT_NE(engine, nullptr);
  const double f[4] = {0, 0, 0, 0};
  int cls = 0;
  EXPECT_EQ(kml_engine_infer(engine, f, 3), -1);  // width mismatch
  EXPECT_EQ(kml_engine_infer(engine, nullptr, 4), -1);
  EXPECT_EQ(kml_engine_infer_batch(engine, f, 4, 0, &cls), -1);
  EXPECT_EQ(kml_engine_infer_batch(engine, f, 4, 1, nullptr), -1);
  EXPECT_EQ(kml_engine_infer_batch(engine, f, 3, 1, &cls), -1);
  kml_engine_destroy(engine);
}

TEST_F(CapiTest, HealthGuardRoundTrip) {
  kml_health* health = kml_health_create();
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_HEALTHY);

  // Non-finite training step -> FAILED; rollback -> DEGRADED; a clean
  // streak -> HEALTHY (mirrors the C++ HealthMonitor contract).
  kml_health_observe_train_step(health, 0.0 / 0.0, 0);
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_FAILED);
  kml_health_notify_rollback(health);
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_DEGRADED);
  for (int i = 0; i < 64; ++i) {
    kml_health_observe_train_step(health, 1.0, 1);
  }
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_HEALTHY);

  // Watchdog through the C boundary.
  kml_health_heartbeat(health, 1000);
  EXPECT_EQ(kml_health_check_watchdog(health, 1500), 0);
  EXPECT_EQ(kml_health_check_watchdog(health, 10'000'000'000ull), 1);
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_DEGRADED);

  kml_health_destroy(health);
}

TEST_F(CapiTest, HealthGuardDropRate) {
  kml_health* health = kml_health_create();
  ASSERT_NE(health, nullptr);
  kml_health_observe_buffer(health, 2000, 0);
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_HEALTHY);
  kml_health_observe_buffer(health, 4000, 1900);
  EXPECT_EQ(kml_health_state(health), KML_HEALTH_DEGRADED);
  kml_health_destroy(health);
}

TEST_F(CapiTest, HealthGuardNullSafety) {
  EXPECT_EQ(kml_health_state(nullptr), -1);
  kml_health_observe_train_step(nullptr, 1.0, 1);
  kml_health_heartbeat(nullptr, 1);
  EXPECT_EQ(kml_health_check_watchdog(nullptr, 1), 0);
  kml_health_observe_buffer(nullptr, 1, 1);
  kml_health_notify_rollback(nullptr);
  kml_health_destroy(nullptr);  // all no-ops, no crash
}

TEST_F(CapiTest, MetricsSnapshotRoundTrip) {
  if (kml_metrics_enabled() == 0) {
    // Compiled out (KML_OBSERVE=OFF): reads report absence, export still
    // renders a well-formed empty snapshot.
    EXPECT_EQ(kml_metrics_counter("capi.test.counter"), -1);
    EXPECT_EQ(kml_metrics_hist_count("capi.test.hist"), -1);
    char buf[256];
    EXPECT_GT(kml_metrics_export(buf, sizeof(buf), 1), 0u);
    return;
  }

  const long long c0 = kml_metrics_counter("capi.test.counter");
  observe::counter_add("capi.test.counter", 7);
  observe::gauge_set("capi.test.gauge", -5);
  for (int i = 0; i < 10; ++i) observe::hist_record("capi.test.hist", 4096);

  EXPECT_EQ(kml_metrics_counter("capi.test.counter"),
            (c0 < 0 ? 0 : c0) + 7);
  EXPECT_EQ(kml_metrics_gauge("capi.test.gauge"), -5);
  EXPECT_GE(kml_metrics_hist_count("capi.test.hist"), 10);
  // 4096 is a power of two, i.e. exactly a bucket lower bound.
  EXPECT_EQ(kml_metrics_hist_percentile("capi.test.hist", 50), 4096);

  // Round trip through both export formats.
  char table[1 << 14];
  char json[1 << 14];
  ASSERT_LT(kml_metrics_export(table, sizeof(table), 0), sizeof(table));
  ASSERT_LT(kml_metrics_export(json, sizeof(json), 1), sizeof(json));
  EXPECT_NE(std::strstr(table, "capi.test.counter"), nullptr);
  EXPECT_NE(std::strstr(json, "\"capi.test.gauge\":-5"), nullptr);
  EXPECT_NE(std::strstr(json, "\"capi.test.hist\""), nullptr);

  // Truncation keeps the snprintf convention: full length returned, output
  // NUL-terminated within cap.
  char tiny[8];
  const size_t need = kml_metrics_export(tiny, sizeof(tiny), 0);
  EXPECT_GE(need, sizeof(tiny));
  EXPECT_EQ(tiny[sizeof(tiny) - 1], '\0');
}

TEST_F(CapiTest, MetricsToggleAndNullSafety) {
  EXPECT_EQ(kml_metrics_counter(nullptr), -1);
  EXPECT_EQ(kml_metrics_gauge(nullptr), -1);
  EXPECT_EQ(kml_metrics_hist_count(nullptr), -1);
  EXPECT_EQ(kml_metrics_hist_percentile("x", -1), -1);
  EXPECT_EQ(kml_metrics_hist_percentile("x", 101), -1);
  EXPECT_EQ(kml_metrics_export(nullptr, 64, 0), 0u);

  if (kml_metrics_enabled() == 0) return;  // compiled out
  kml_metrics_set_enabled(0);
  EXPECT_EQ(kml_metrics_enabled(), 0);
  observe::counter_add("capi.test.toggled", 1);  // dropped while disabled
  kml_metrics_set_enabled(1);
  EXPECT_EQ(kml_metrics_enabled(), 1);
  EXPECT_EQ(kml_metrics_counter("capi.test.toggled"), -1);  // never created
}

TEST_F(CapiTest, DtreeLoadInferDestroy) {
  kml_dtree* tree = kml_dtree_load(kTreePath);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(kml_dtree_node_count(tree), tree_.node_count());
  const double left[2] = {-1.0, 0.5};
  const double right[2] = {1.0, 0.5};
  EXPECT_EQ(kml_dtree_infer(tree, left, 2), 0);
  EXPECT_EQ(kml_dtree_infer(tree, right, 2), 1);
  kml_dtree_destroy(tree);
}

TEST_F(CapiTest, DtreeErrorPaths) {
  EXPECT_EQ(kml_dtree_load(nullptr), nullptr);
  EXPECT_EQ(kml_dtree_load("/tmp/kml_capi_missing.kmlt"), nullptr);
  EXPECT_EQ(kml_dtree_infer(nullptr, nullptr, 2), -1);
  EXPECT_EQ(kml_dtree_node_count(nullptr), -1);
  kml_dtree_destroy(nullptr);

  kml_dtree* tree = kml_dtree_load(kTreePath);
  ASSERT_NE(tree, nullptr);
  const double f[2] = {0, 0};
  EXPECT_EQ(kml_dtree_infer(tree, f, 5), -1);  // width mismatch
  kml_dtree_destroy(tree);
}

TEST_F(CapiTest, CachePolicyNamesRoundTrip) {
  EXPECT_EQ(kml_cache_policy_count(), 3);
  for (int i = 0; i < kml_cache_policy_count(); ++i) {
    const char* name = kml_cache_policy_name(i);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(kml_cache_policy_id(name), i);
  }
  EXPECT_STREQ(kml_cache_policy_name(KML_CACHE_POLICY_LRU), "lru");
  EXPECT_STREQ(kml_cache_policy_name(KML_CACHE_POLICY_CLOCK), "clock");
  EXPECT_STREQ(kml_cache_policy_name(KML_CACHE_POLICY_GCLOCK), "gclock");
  EXPECT_EQ(kml_cache_policy_name(-1), nullptr);
  EXPECT_EQ(kml_cache_policy_name(kml_cache_policy_count()), nullptr);
  EXPECT_EQ(kml_cache_policy_id(nullptr), -1);
  EXPECT_EQ(kml_cache_policy_id("bogus"), -1);
}

}  // namespace
