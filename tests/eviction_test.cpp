// Tests for the eviction case study: the pluggable EvictionPolicy seam
// (LRU equivalence against the pre-refactor cache, CLOCK/GCLOCK reference
// strings), the satellite bugfixes (write EOF clamp, drop_all waste
// accounting, marker-only-when-inserted), the cache feature extractor, and
// the CacheTuner's actuation + health degradation paths.
#include "eviction/features.h"
#include "eviction/tuner.h"
#include "eviction/workload.h"
#include "math/rng.h"
#include "runtime/health.h"
#include "sim/eviction_policy.h"
#include "sim/stack.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <list>
#include <unordered_map>
#include <vector>

namespace kml {
namespace {

// --- Reference implementation for the equivalence suite ----------------------
//
// The pre-refactor PageCache, verbatim where it matters: std::list LRU with
// front-insert / touch-to-front / evict-back, plus the three satellite
// bugfixes this PR applied to the real cache (EOF clamp in write, drop_all
// waste accounting; the marker fix is irrelevant here because the suite
// never arms markers). If the policy-seam refactor changed any decision,
// the replay below diverges immediately.
class RefLruCache {
 public:
  RefLruCache(std::uint64_t capacity, sim::SimClock& clock,
              sim::Device& device)
      : capacity_(capacity), clock_(clock), device_(device) {}

  void read(sim::FileHandle& file, std::uint64_t pgoff, std::uint64_t count) {
    for (std::uint64_t p = pgoff; p < pgoff + count; ++p) {
      if (p >= file.size_pages) break;
      const Key key{file.inode, p};
      auto it = pages_.find(key);
      if (it != pages_.end()) {
        ++stats_.hits;
        Page& page = *it->second;
        if (page.speculative) {
          page.speculative = false;
          ++stats_.prefetch_used;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        continue;
      }
      ++stats_.misses;
      // ra_pages is 0 in this suite: the miss path demand-reads one page.
      device_.read(file.inode, p, 1);
      insert(key, /*speculative=*/false, /*dirty=*/false);
    }
  }

  void write(sim::FileHandle& file, std::uint64_t pgoff,
             std::uint64_t count) {
    for (std::uint64_t p = pgoff; p < pgoff + count; ++p) {
      if (p >= file.size_pages) break;  // satellite fix: EOF clamp
      const Key key{file.inode, p};
      auto it = pages_.find(key);
      if (it == pages_.end()) {
        insert(key, /*speculative=*/false, /*dirty=*/true);
      } else {
        if (!it->second->dirty) ++dirty_count_;
        it->second->dirty = true;
        it->second->speculative = false;
        lru_.splice(lru_.begin(), lru_, it->second);
      }
    }
  }

  void do_readahead(sim::FileHandle& file, std::uint64_t start,
                    std::uint64_t count, std::uint64_t faulting) {
    if (start >= file.size_pages) return;
    if (start + count > file.size_pages) count = file.size_pages - start;
    constexpr std::uint64_t kNone = UINT64_MAX;
    std::uint64_t run_start = kNone;
    for (std::uint64_t p = start; p <= start + count; ++p) {
      const bool in_range = p < start + count;
      const bool is_cached =
          in_range && pages_.find(Key{file.inode, p}) != pages_.end();
      if (in_range && !is_cached) {
        if (run_start == kNone) run_start = p;
        continue;
      }
      if (run_start != kNone) {
        device_.read(file.inode, run_start, p - run_start);
        for (std::uint64_t q = run_start; q < p; ++q) {
          insert(Key{file.inode, q}, /*speculative=*/q != faulting,
                 /*dirty=*/false);
        }
        run_start = kNone;
      }
    }
  }

  std::uint64_t sync_all() {
    std::vector<std::uint64_t> inodes;
    for (const Page& page : lru_) {
      if (page.dirty) inodes.push_back(page.key.inode);
    }
    std::sort(inodes.begin(), inodes.end());
    inodes.erase(std::unique(inodes.begin(), inodes.end()), inodes.end());
    std::uint64_t total = 0;
    for (std::uint64_t inode : inodes) total += sync_file(inode);
    return total;
  }

  std::uint64_t sync_file(std::uint64_t inode) {
    std::vector<std::uint64_t> dirty;
    for (Page& page : lru_) {
      if (page.key.inode == inode && page.dirty) {
        dirty.push_back(page.key.pgoff);
        page.dirty = false;
        --dirty_count_;
      }
    }
    if (dirty.empty()) return 0;
    std::sort(dirty.begin(), dirty.end());
    std::uint64_t run_start = dirty.front();
    std::uint64_t prev = dirty.front();
    for (std::size_t i = 1; i <= dirty.size(); ++i) {
      const bool end = i == dirty.size();
      if (!end && dirty[i] == prev + 1) {
        prev = dirty[i];
        continue;
      }
      device_.write(inode, run_start, prev - run_start + 1);
      if (!end) {
        run_start = dirty[i];
        prev = dirty[i];
      }
    }
    stats_.synced_pages += dirty.size();
    return dirty.size();
  }

  void drop_all() {
    for (const Page& page : lru_) {  // satellite fix: waste accounting
      if (page.speculative) ++stats_.prefetch_wasted;
    }
    lru_.clear();
    pages_.clear();
    dirty_count_ = 0;
  }

  const sim::PageCacheStats& stats() const { return stats_; }
  std::uint64_t resident_pages() const { return pages_.size(); }
  std::uint64_t dirty_pages() const { return dirty_count_; }

  template <typename F>
  void for_each_resident(F f) const {
    for (const Page& page : lru_) f(page.key.inode, page.key.pgoff);
  }

 private:
  struct Key {
    std::uint64_t inode;
    std::uint64_t pgoff;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t x = k.inode * 0x9e3779b97f4a7c15ULL ^ k.pgoff;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Page {
    Key key;
    bool speculative = false;
    bool dirty = false;
  };

  void insert(const Key& key, bool speculative, bool dirty) {
    while (pages_.size() >= capacity_) evict_one();
    lru_.push_front(Page{key, speculative, dirty});
    pages_.emplace(key, lru_.begin());
    if (dirty) ++dirty_count_;
    ++stats_.inserted;
  }

  void evict_one() {
    const Page& victim = lru_.back();
    if (victim.speculative) ++stats_.prefetch_wasted;
    if (victim.dirty) {
      device_.write(victim.key.inode, victim.key.pgoff, 1);
      --dirty_count_;
      ++stats_.dirty_evictions;
    }
    ++stats_.evicted;
    pages_.erase(victim.key);
    lru_.pop_back();
  }

  std::uint64_t capacity_;
  sim::SimClock& clock_;
  sim::Device& device_;
  std::list<Page> lru_;
  std::unordered_map<Key, std::list<Page>::iterator, KeyHash> pages_;
  sim::PageCacheStats stats_;
  std::uint64_t dirty_count_ = 0;
};

void expect_stats_equal(const sim::PageCacheStats& a,
                        const sim::PageCacheStats& b, std::uint64_t op) {
  ASSERT_EQ(a.hits, b.hits) << "op " << op;
  ASSERT_EQ(a.misses, b.misses) << "op " << op;
  ASSERT_EQ(a.inserted, b.inserted) << "op " << op;
  ASSERT_EQ(a.evicted, b.evicted) << "op " << op;
  ASSERT_EQ(a.prefetch_wasted, b.prefetch_wasted) << "op " << op;
  ASSERT_EQ(a.prefetch_used, b.prefetch_used) << "op " << op;
  ASSERT_EQ(a.synced_pages, b.synced_pages) << "op " << op;
  ASSERT_EQ(a.dirty_evictions, b.dirty_evictions) << "op " << op;
}

// The tentpole guarantee: the extracted LRU policy is decision-for-decision
// identical to the pre-refactor cache. 30k mixed operations (reads, writes
// crossing EOF, readahead bursts, syncs, drops) against a 128-page cache;
// stats, residency, dirty counts, and the virtual clock must agree after
// every single op, and the full resident sets are compared periodically —
// one divergent eviction victim fails the suite within a handful of ops.
TEST(LruEquivalence, ReplayMatchesPreRefactorCache) {
  constexpr std::uint64_t kCapacity = 128;

  sim::SimClock new_clock;
  sim::TracepointRegistry new_tp;
  sim::Device new_dev(sim::nvme_config(), new_clock);
  sim::PageCache cache(kCapacity, new_clock, new_dev, new_tp);
  sim::FileTable new_files(0);  // readahead disabled on both sides

  sim::SimClock ref_clock;
  sim::Device ref_dev(sim::nvme_config(), ref_clock);
  RefLruCache ref(kCapacity, ref_clock, ref_dev);
  sim::FileTable ref_files(0);

  const std::uint64_t sizes[2] = {600, 400};
  std::uint64_t inodes[2];
  for (int i = 0; i < 2; ++i) {
    inodes[i] = new_files.create(sizes[i]).inode;
    ASSERT_EQ(ref_files.create(sizes[i]).inode, inodes[i]);
  }

  math::Rng rng(7);
  for (std::uint64_t op = 0; op < 30'000; ++op) {
    const int fi = rng.next_below(10) < 7 ? 0 : 1;
    sim::FileHandle& nf = new_files.get(inodes[fi]);
    sim::FileHandle& rf = ref_files.get(inodes[fi]);
    const std::uint64_t size = sizes[fi];
    const std::uint64_t r = rng.next_below(100);
    if (r < 55) {
      const std::uint64_t off = rng.next_below(size);
      const std::uint64_t count = 1 + rng.next_below(4);
      cache.read(nf, off, count);
      ref.read(rf, off, count);
    } else if (r < 75) {
      // Writes sometimes straddle (or start past) EOF — the clamp must
      // agree on both sides.
      const std::uint64_t off = rng.next_below(size + 8);
      const std::uint64_t count = 1 + rng.next_below(8);
      cache.write(nf, off, count);
      ref.write(rf, off, count);
    } else if (r < 90) {
      const std::uint64_t start = rng.next_below(size);
      const std::uint64_t count = 1 + rng.next_below(32);
      cache.do_readahead(nf, start, count, sim::PageCache::kNoMarker, start);
      ref.do_readahead(rf, start, count, start);
    } else if (r < 96) {
      ASSERT_EQ(cache.sync_file(inodes[fi]), ref.sync_file(inodes[fi]));
    } else if (r < 99) {
      ASSERT_EQ(cache.sync_all(), ref.sync_all());
    } else {
      cache.drop_all();
      ref.drop_all();
    }

    expect_stats_equal(cache.stats(), ref.stats(), op);
    ASSERT_EQ(cache.resident_pages(), ref.resident_pages()) << "op " << op;
    ASSERT_EQ(cache.dirty_pages(), ref.dirty_pages()) << "op " << op;
    ASSERT_EQ(new_clock.now_ns(), ref_clock.now_ns()) << "op " << op;

    if (op % 500 == 0) {
      // Same size + every reference page resident => identical sets.
      ref.for_each_resident([&](std::uint64_t inode, std::uint64_t pgoff) {
        ASSERT_TRUE(cache.cached(inode, pgoff))
            << "op " << op << " missing " << inode << ":" << pgoff;
      });
    }
  }
  EXPECT_GT(cache.stats().evicted, 10'000u);  // the suite exercised reclaim
}

// --- Policy reference strings ------------------------------------------------

TEST(EvictionPolicy, NamesAndFactory) {
  EXPECT_STREQ(sim::eviction_policy_name(sim::EvictionPolicyType::kLru),
               "lru");
  EXPECT_STREQ(sim::eviction_policy_name(sim::EvictionPolicyType::kClock),
               "clock");
  EXPECT_STREQ(sim::eviction_policy_name(sim::EvictionPolicyType::kGclock),
               "gclock");
  EXPECT_EQ(sim::eviction_policy_name(static_cast<sim::EvictionPolicyType>(3)),
            nullptr);
  for (int t = 0; t < sim::kNumEvictionPolicies; ++t) {
    auto policy = sim::make_eviction_policy(
        static_cast<sim::EvictionPolicyType>(t), sim::EvictionParams{});
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(static_cast<int>(policy->type()), t);
  }
}

TEST(EvictionPolicy, LruVictimIsLeastRecentlyUsed) {
  auto lru = sim::make_eviction_policy(sim::EvictionPolicyType::kLru,
                                       sim::EvictionParams{});
  lru->on_insert(0);
  lru->on_insert(1);
  lru->on_insert(2);
  lru->on_access(0);  // order (MRU..LRU): 0, 2, 1
  EXPECT_EQ(lru->pick_victim(), 1u);
  EXPECT_EQ(lru->pick_victim(), 2u);
  EXPECT_EQ(lru->pick_victim(), 0u);
}

TEST(EvictionPolicy, ClockGivesSecondChance) {
  auto clock = sim::make_eviction_policy(sim::EvictionPolicyType::kClock,
                                         sim::EvictionParams{});
  clock->on_insert(0);
  clock->on_insert(1);
  clock->on_insert(2);
  // All ref bits set at insert: the hand clears 0,1,2 on its first sweep
  // and evicts the oldest on the second pass.
  EXPECT_EQ(clock->pick_victim(), 0u);
  clock->on_insert(3);
  clock->on_access(1);  // re-referenced: survives the next sweep
  // Hand sits at slot 1: clears its bit, moves on, takes unreferenced 2.
  EXPECT_EQ(clock->pick_victim(), 2u);
}

TEST(EvictionPolicy, ScanResistantClockEvictsUnreferencedFirst) {
  sim::EvictionParams params;
  params.clock_insert_ref = 0;
  auto clock =
      sim::make_eviction_policy(sim::EvictionPolicyType::kClock, params);
  clock->on_insert(0);
  clock->on_insert(1);
  clock->on_insert(2);
  clock->on_access(0);
  // 0 is referenced; the hand starts there, clears it, and the first
  // never-touched page (1) dies without a grace sweep.
  EXPECT_EQ(clock->pick_victim(), 1u);
  EXPECT_EQ(clock->pick_victim(), 2u);
}

TEST(EvictionPolicy, GclockWeightsCountDown) {
  sim::EvictionParams params;
  params.gclock_insert_weight = 2;
  params.gclock_hit_weight = 3;
  params.gclock_max_weight = 4;
  auto gclock =
      sim::make_eviction_policy(sim::EvictionPolicyType::kGclock, params);
  gclock->on_insert(0);
  gclock->on_insert(1);
  gclock->on_access(0);  // 2 + 3 capped at max_weight = 4
  // Hand sweep: 0: 4->3, 1: 2->1, 0: 3->2, 1: 1->0 -> victim 1.
  EXPECT_EQ(gclock->pick_victim(), 1u);
  // Remaining ring is just slot 0 at weight 2: two more passes drain it.
  EXPECT_EQ(gclock->pick_victim(), 0u);
}

TEST(EvictionPolicy, GclockScanResistantRecyclesOneTouchPages) {
  sim::EvictionParams params;
  params.gclock_insert_weight = 0;
  params.gclock_hit_weight = 2;
  params.gclock_max_weight = 8;
  auto gclock =
      sim::make_eviction_policy(sim::EvictionPolicyType::kGclock, params);
  gclock->on_insert(0);  // hot page
  gclock->on_access(0);
  gclock->on_access(0);  // weight 4
  gclock->on_insert(1);  // scan page, weight 0
  gclock->on_insert(2);  // scan page, weight 0
  // Scan pages die in insertion order while the hot page keeps its weight.
  EXPECT_EQ(gclock->pick_victim(), 1u);
  EXPECT_EQ(gclock->pick_victim(), 2u);
  EXPECT_EQ(gclock->pick_victim(), 0u);
}

TEST(EvictionPolicy, OnEraseRemovesFromRing) {
  auto clock = sim::make_eviction_policy(sim::EvictionPolicyType::kClock,
                                         sim::EvictionParams{});
  clock->on_insert(0);
  clock->on_insert(1);
  clock->on_insert(2);
  clock->on_erase(0);  // the hand page itself
  EXPECT_EQ(clock->pick_victim(), 1u);
  clock->on_erase(2);
  clock->on_insert(4);
  EXPECT_EQ(clock->pick_victim(), 4u);
}

// --- PageCache policy plumbing -----------------------------------------------

TEST(PageCachePolicy, SetPolicyPreservesResidencyAndCounts) {
  sim::StackConfig config;
  config.cache_pages = 64;
  sim::StorageStack stack(config);
  sim::FileHandle& file = stack.files().create(256);
  for (std::uint64_t p = 0; p < 64; ++p) stack.cache().read(file, p, 1);
  ASSERT_EQ(stack.cache().resident_pages(), 64u);
  ASSERT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kLru);

  EXPECT_TRUE(stack.cache().set_policy(sim::EvictionPolicyType::kClock));
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kClock);
  EXPECT_EQ(stack.cache().resident_pages(), 64u);  // residency carries over
  EXPECT_EQ(stack.cache().stats().policy_switches, 1u);

  // Re-applying the same type+params is a no-op (per-window actuation must
  // not churn).
  EXPECT_FALSE(stack.cache().set_policy(sim::EvictionPolicyType::kClock));
  EXPECT_EQ(stack.cache().stats().policy_switches, 1u);

  // Same type, different knobs: a real switch.
  sim::EvictionParams params;
  params.clock_insert_ref = 0;
  EXPECT_TRUE(
      stack.cache().set_policy(sim::EvictionPolicyType::kClock, params));
  EXPECT_EQ(stack.cache().stats().policy_switches, 2u);

  // Reclaim still works under the reseeded policy.
  for (std::uint64_t p = 64; p < 192; ++p) stack.cache().read(file, p, 1);
  EXPECT_EQ(stack.cache().resident_pages(), 64u);
  EXPECT_GT(stack.cache().stats().evicted, 0u);
}

// --- Satellite regression tests ----------------------------------------------

// Writes past EOF used to insert phantom dirty pages with no backing block,
// which sync then "wrote back" to the device.
TEST(PageCacheBugfix, WriteClampsAtEof) {
  sim::StackConfig config;
  config.cache_pages = 64;
  sim::StorageStack stack(config);
  sim::FileHandle& file = stack.files().create(8);
  stack.cache().write(file, 6, 10);  // pages 6..15 requested, 6..7 exist
  EXPECT_EQ(stack.cache().resident_pages(), 2u);
  EXPECT_EQ(stack.cache().dirty_pages(), 2u);
  EXPECT_TRUE(stack.cache().cached(file.inode, 7));
  EXPECT_FALSE(stack.cache().cached(file.inode, 8));
  EXPECT_EQ(stack.cache().stats().inserted, 2u);
  EXPECT_EQ(stack.cache().sync_file(file.inode), 2u);

  stack.cache().write(file, 100, 3);  // entirely past EOF: nothing happens
  EXPECT_EQ(stack.cache().resident_pages(), 2u);
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

// drop_all used to discard resident never-accessed speculative pages
// without counting them as prefetch waste, zeroing the signal between
// benchmark phases.
TEST(PageCacheBugfix, DropAllCountsPrefetchWaste) {
  sim::SimClock clock;
  sim::TracepointRegistry tp;
  sim::Device dev(sim::nvme_config(), clock);
  sim::PageCache cache(64, clock, dev, tp);
  sim::FileTable files(0);
  sim::FileHandle& file = files.create(64);

  cache.do_readahead(file, 0, 8, sim::PageCache::kNoMarker, 0);
  ASSERT_EQ(cache.resident_pages(), 8u);  // 1 demanded + 7 speculative
  cache.read(file, 1, 1);                 // one speculative page gets used
  ASSERT_EQ(cache.stats().prefetch_used, 1u);

  cache.drop_all();
  EXPECT_EQ(cache.resident_pages(), 0u);
  EXPECT_EQ(cache.stats().prefetch_wasted, 6u);  // 7 speculative - 1 used
  EXPECT_EQ(cache.stats().evicted, 0u);  // a drop is not an eviction
}

// do_readahead used to arm the PG_readahead marker on any resident page at
// marker_pgoff — including pages it did not insert — double-arming windows
// that issued no I/O.
TEST(PageCacheBugfix, MarkerOnlyArmedOnInsertedPages) {
  sim::StackConfig config;
  config.cache_pages = 256;
  sim::StorageStack stack(config);
  sim::FileHandle& file = stack.files().create(256);

  // Marker page inserted by the call: armed; hitting it opens an async
  // window.
  stack.cache().do_readahead(file, 0, 8, /*marker_pgoff=*/4, /*faulting=*/0);
  stack.cache().read(file, 4, 1);
  EXPECT_EQ(stack.cache().readahead().stats().async_windows, 1u);

  // Every page of [16, 24) is already resident: the second call inserts
  // nothing, so it must not arm a marker on page 20.
  stack.cache().do_readahead(file, 16, 8, sim::PageCache::kNoMarker, 16);
  const std::uint64_t windows_before =
      stack.cache().readahead().stats().async_windows;
  stack.cache().do_readahead(file, 16, 8, /*marker_pgoff=*/20,
                             /*faulting=*/16);
  stack.cache().read(file, 20, 1);
  EXPECT_EQ(stack.cache().readahead().stats().async_windows, windows_before);
}

// --- Feature extractor -------------------------------------------------------

data::TraceRecord rec(sim::TraceEventType kind, std::uint64_t pgoff,
                      std::uint64_t inode = 1) {
  return data::TraceRecord{inode, pgoff, 0,
                           static_cast<std::uint8_t>(kind)};
}

TEST(CacheFeatures, HitFractionRunsAndReuseDistance) {
  eviction::CacheFeatureExtractor extractor;
  std::vector<data::TraceRecord> window{
      rec(sim::TraceEventType::kPageCacheMiss, 10),
      rec(sim::TraceEventType::kPageCacheHit, 10),
      rec(sim::TraceEventType::kPageCacheHit, 10),
      rec(sim::TraceEventType::kPageCacheMiss, 11),
      rec(sim::TraceEventType::kPageCacheHit, 11),
  };
  const eviction::CacheFeatureVector f =
      extractor.extract(window, sim::PageCacheStats{});
  EXPECT_NEAR(f[0], std::log2(6.0), 1e-9);  // log2(1 + 5 accesses)
  EXPECT_NEAR(f[1], 3.0 / 5.0, 1e-9);       // hit fraction
  // Two runs (2 hits, then 1 hit): mean run length 1.5.
  EXPECT_NEAR(f[2], std::log2(2.5), 1e-9);
  // Every re-touch has distance 1 -> bucket bit_width(1) == 1.
  EXPECT_NEAR(f[3], 1.0, 1e-9);
  EXPECT_NEAR(f[4], 0.0, 1e-9);  // no writebacks
  EXPECT_EQ(extractor.last_reuse_histogram()[1], 3u);
}

TEST(CacheFeatures, DirtyFraction) {
  eviction::CacheFeatureExtractor extractor;
  std::vector<data::TraceRecord> window{
      rec(sim::TraceEventType::kPageCacheHit, 1),
      rec(sim::TraceEventType::kWritebackDirtyPage, 1),
      rec(sim::TraceEventType::kPageCacheHit, 2),
      rec(sim::TraceEventType::kWritebackDirtyPage, 2),
  };
  const eviction::CacheFeatureVector f =
      extractor.extract(window, sim::PageCacheStats{});
  EXPECT_NEAR(f[4], 0.5, 1e-9);
}

TEST(CacheFeatures, ReuseDistanceBucketsAreLogScale) {
  eviction::CacheFeatureExtractor extractor;
  std::vector<data::TraceRecord> window;
  window.push_back(rec(sim::TraceEventType::kPageCacheHit, 100));
  for (std::uint64_t p = 0; p < 7; ++p) {
    window.push_back(rec(sim::TraceEventType::kPageCacheHit, p));
  }
  window.push_back(rec(sim::TraceEventType::kPageCacheHit, 100));
  const eviction::CacheFeatureVector f =
      extractor.extract(window, sim::PageCacheStats{});
  // Distance 8 -> bucket bit_width(8) == 4; it is the only sample.
  EXPECT_EQ(extractor.last_reuse_histogram()[4], 1u);
  EXPECT_NEAR(f[3], 4.0, 1e-9);
}

TEST(CacheFeatures, WasteRateFromStatsDeltas) {
  eviction::CacheFeatureExtractor extractor;
  std::vector<data::TraceRecord> window{
      rec(sim::TraceEventType::kPageCacheHit, 1)};
  sim::PageCacheStats stats;
  stats.inserted = 10;
  stats.prefetch_wasted = 0;
  // First window primes the baseline: no delta yet.
  EXPECT_NEAR(extractor.extract(window, stats)[5], 0.0, 1e-9);
  stats.inserted = 30;
  stats.prefetch_wasted = 10;  // 10 of the 20 new inserts were wasted
  EXPECT_NEAR(extractor.extract(window, stats)[5], 0.5, 1e-9);

  extractor.reset();  // back to unprimed
  stats.inserted = 50;
  stats.prefetch_wasted = 20;
  EXPECT_NEAR(extractor.extract(window, stats)[5], 0.0, 1e-9);
}

TEST(CacheFeatures, PhaseNames) {
  EXPECT_STREQ(eviction::cache_phase_name(eviction::CachePhase::kShifting),
               "shifting");
  EXPECT_STREQ(eviction::cache_phase_name(eviction::CachePhase::kScanMix),
               "scanmix");
  EXPECT_STREQ(eviction::cache_phase_name(eviction::CachePhase::kZipfHot),
               "zipfhot");
}

// --- CacheTuner --------------------------------------------------------------

runtime::HealthConfig quick_health() {
  runtime::HealthConfig config;
  config.warmup_steps = 0;
  config.strikes_to_degrade = 1;
  return config;
}

TEST(CacheTuner, ActuatesPredictedPolicyPerWindow) {
  sim::StackConfig config;
  config.cache_pages = 256;
  sim::StorageStack stack(config);
  eviction::CacheTunerConfig tuner_config;
  eviction::CacheTuner tuner(
      stack,
      [](const eviction::CacheFeatureVector&) {
        return static_cast<int>(eviction::CachePhase::kScanMix);
      },
      tuner_config);
  sim::FileHandle& file = stack.files().create(4096);

  for (std::uint64_t p = 0; p < 512; ++p) stack.cache().read(file, p, 1);
  stack.charge_cpu_ns(sim::kNsPerSec);
  tuner.on_tick(stack.clock().now_ns());

  ASSERT_EQ(tuner.windows(), 1u);
  const eviction::CacheTimelinePoint& point = tuner.timeline().back();
  EXPECT_EQ(point.predicted_class,
            static_cast<int>(eviction::CachePhase::kScanMix));
  EXPECT_TRUE(point.switched);
  EXPECT_GT(point.events, 0u);
  // scanmix maps to scan-resistant GCLOCK in the default table.
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kGclock);
  EXPECT_EQ(stack.cache().policy_params().gclock_insert_weight, 0u);
  EXPECT_EQ(stack.cache().stats().policy_switches, 1u);

  // Same prediction next window: actuation is a no-op, not a churn.
  for (std::uint64_t p = 0; p < 512; ++p) stack.cache().read(file, p, 1);
  stack.charge_cpu_ns(sim::kNsPerSec);
  tuner.on_tick(stack.clock().now_ns());
  EXPECT_EQ(tuner.windows(), 2u);
  EXPECT_FALSE(tuner.timeline().back().switched);
  EXPECT_EQ(stack.cache().stats().policy_switches, 1u);
}

TEST(CacheTuner, IdleWindowKeepsPolicy) {
  sim::StackConfig config;
  config.cache_pages = 64;
  config.eviction_policy = sim::EvictionPolicyType::kClock;
  sim::StorageStack stack(config);
  eviction::CacheTuner tuner(
      stack, [](const eviction::CacheFeatureVector&) { return 0; },
      eviction::CacheTunerConfig{});
  stack.charge_cpu_ns(sim::kNsPerSec);
  tuner.on_tick(stack.clock().now_ns());
  ASSERT_EQ(tuner.windows(), 1u);
  EXPECT_EQ(tuner.timeline().back().predicted_class, -1);
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kClock);
}

TEST(CacheTuner, HealthDegradationPinsVanillaLru) {
  sim::StackConfig config;
  config.cache_pages = 256;
  config.eviction_policy = sim::EvictionPolicyType::kGclock;
  sim::StorageStack stack(config);

  runtime::HealthMonitor monitor(quick_health());
  monitor.observe_train_step(std::numeric_limits<double>::quiet_NaN(),
                             false);
  ASSERT_NE(monitor.state(), runtime::HealthState::kHealthy);

  eviction::CacheTunerConfig tuner_config;
  tuner_config.health = &monitor;
  eviction::CacheTuner tuner(
      stack,
      [](const eviction::CacheFeatureVector&) {
        return static_cast<int>(eviction::CachePhase::kScanMix);
      },
      tuner_config);
  sim::FileHandle& file = stack.files().create(4096);

  for (std::uint64_t p = 0; p < 512; ++p) stack.cache().read(file, p, 1);
  stack.charge_cpu_ns(sim::kNsPerSec);
  tuner.on_tick(stack.clock().now_ns());

  // Degraded: the model is not consulted and the cache reverts to LRU.
  ASSERT_EQ(tuner.windows(), 1u);
  EXPECT_TRUE(tuner.timeline().back().degraded);
  EXPECT_EQ(tuner.timeline().back().predicted_class, -1);
  EXPECT_EQ(tuner.degraded_windows(), 1u);
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kLru);
  ASSERT_EQ(stack.cache().stats().policy_switches, 1u);

  // The vanilla pin is applied once, not per window.
  stack.charge_cpu_ns(sim::kNsPerSec);
  tuner.on_tick(stack.clock().now_ns());
  EXPECT_EQ(tuner.degraded_windows(), 2u);
  EXPECT_EQ(stack.cache().stats().policy_switches, 1u);
}

// --- Phase workload + RL smoke ----------------------------------------------

TEST(PhaseWorkload, DriverRunsEveryPhaseAndReportsRates) {
  sim::StackConfig config;
  config.cache_pages = 512;
  sim::StorageStack stack(config);
  eviction::PhaseWorkloadConfig workload;
  workload.file_pages = 4096;
  workload.window_pages = 256;
  workload.hot_pages = 300;
  workload.cpu_ns_per_op = 50'000;  // few ops per segment keep this fast
  eviction::PhaseDriver driver(stack, workload);

  const auto schedule = eviction::default_phase_schedule(1, 1);
  ASSERT_EQ(schedule.size(), 3u);  // shifting, scanmix, zipfhot
  const auto results = driver.run_schedule(schedule);
  ASSERT_EQ(results.size(), 3u);
  for (const eviction::PhaseResult& r : results) {
    EXPECT_GT(r.ops, 0u);
    EXPECT_GE(r.hit_rate, 0.0);
    EXPECT_LE(r.hit_rate, 1.0);
  }
  EXPECT_GT(driver.ops_completed(), 0u);
}

TEST(CacheRl, PolicyActuatorAppliesTableEntries) {
  sim::StackConfig config;
  config.cache_pages = 128;
  sim::StorageStack stack(config);
  const auto table = eviction::default_policy_table();
  auto actuate = eviction::make_policy_actuator(stack, table);
  actuate(static_cast<std::uint32_t>(eviction::CachePhase::kScanMix));
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kGclock);
  actuate(static_cast<std::uint32_t>(eviction::CachePhase::kShifting));
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kLru);
  actuate(99);  // out of range: ignored
  EXPECT_EQ(stack.cache().policy_type(), sim::EvictionPolicyType::kLru);
}

TEST(CacheRl, QLearnerDrivesPolicySwitches) {
  sim::StackConfig config;
  config.cache_pages = 128;
  sim::StorageStack stack(config);
  readahead::RlConfig rl_config = eviction::cache_rl_config();
  ASSERT_EQ(rl_config.actions_kb.size(),
            static_cast<std::size_t>(eviction::kNumCachePhases));
  readahead::QLearningTuner rl(
      stack, rl_config,
      eviction::make_policy_actuator(stack,
                                     eviction::default_policy_table()));
  sim::FileHandle& file = stack.files().create(2048);
  math::Rng rng(3);
  for (int window = 0; window < 5; ++window) {
    for (int i = 0; i < 200; ++i) {
      stack.cache().read(file, rng.next_below(512), 1);
      stack.charge_cpu_ns(20'000);
    }
    stack.charge_cpu_ns(sim::kNsPerSec);
    rl.on_tick(stack.clock().now_ns(), stack.cache().stats().hits);
  }
  ASSERT_GE(rl.timeline().size(), 4u);
  for (const readahead::RlTimelinePoint& point : rl.timeline()) {
    if (point.action >= 0) {
      EXPECT_LT(point.action, eviction::kNumCachePhases);
    }
  }
}

}  // namespace
}  // namespace kml
