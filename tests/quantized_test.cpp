// Tests for src/nn/quantized: fidelity of fixed-point inference vs the
// double-precision network, the no-FPU guarantee, range rejection, and
// footprint arithmetic.
#include "nn/quantized.h"

#include "nn/activations.h"
#include "nn/linear.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace kml::nn {
namespace {

// A trained-ish network over well-separated classes.
Network make_separable_net(math::Rng& rng, int classes = 3) {
  Network net = build_mlp_classifier(4, 8, classes, rng);
  // Train briefly so quantization has realistic weights to approximate.
  matrix::MatD x(90, 4);
  matrix::MatD y(90, classes);
  for (int i = 0; i < 90; ++i) {
    const int cls = i % classes;
    for (int j = 0; j < 4; ++j) x.at(i, j) = rng.normal(2.0 * cls, 0.4);
    y.at(i, cls) = 1.0;
  }
  net.normalizer().fit(x);
  const matrix::MatD z = net.normalizer().transform(x);
  CrossEntropyLoss loss;
  SGD opt(0.1, 0.9);
  opt.attach(net.params());
  net.train(z, y, loss, opt, 60, 16, rng);
  return net;
}

TEST(Quantized, AgreesWithDoubleNetworkOnSeparableData) {
  math::Rng rng(3);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));

  int agree = 0;
  const int kProbes = 200;
  for (int i = 0; i < kProbes; ++i) {
    const int cls = i % 3;
    double f[4];
    for (int j = 0; j < 4; ++j) f[j] = rng.normal(2.0 * cls, 0.4);

    std::vector<double> z(f, f + 4);
    net.normalizer().transform_row(z.data(), 4);
    matrix::MatD x(1, 4);
    for (int j = 0; j < 4; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
    const int ref = net.predict_classes(x).at(0, 0);

    if (q.infer_class(f, 4) == ref) ++agree;
  }
  // The hard-sigmoid approximation costs some fidelity, not much.
  EXPECT_GT(agree, kProbes * 85 / 100);
}

TEST(Quantized, ForwardTouchesNoFpu) {
  math::Rng rng(5);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));

  matrix::MatX x(1, 4);
  for (int j = 0; j < 4; ++j) {
    x.at(0, j) = math::Fixed::from_double(0.25 * j);
  }
  kml_fpu_reset_stats();
  const matrix::MatX logits = q.forward(x);
  EXPECT_EQ(kml_fpu_region_count(), 0u);  // the §3.1 guarantee
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 3);
}

TEST(Quantized, ParamBytesAreHalfOfDouble) {
  math::Rng rng(7);
  Network net = build_mlp_classifier(5, 16, 4, rng);
  net.normalizer().import_moments(std::vector<double>(5, 0.0),
                                  std::vector<double>(5, 1.0));
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  // weights in Q16.16 (4 B) vs double (8 B), plus 2*5 normalizer scalars.
  EXPECT_EQ(q.param_bytes(),
            net.param_bytes() / 2 + 2 * 5 * sizeof(math::Fixed));
  EXPECT_EQ(q.in_features(), 5);
  EXPECT_EQ(q.out_features(), 4);
  EXPECT_EQ(q.num_layers(), net.num_layers());
}

TEST(Quantized, RejectsOutOfRangeWeights) {
  math::Rng rng(9);
  Network net = build_mlp_classifier(2, 2, 2, rng);
  auto& lin = static_cast<Linear&>(net.layer(0));
  lin.weights().at(0, 0) = 1e6;  // outside Q16.16
  QuantizedNetwork q;
  EXPECT_FALSE(QuantizedNetwork::quantize(net, q));
}

TEST(Quantized, KnownTinyNetworkForward) {
  // y = hard_sigmoid(2x - 1) through a hand-built 1-1 net.
  Network net;
  auto lin = std::make_unique<Linear>(1, 1);
  lin->weights().at(0, 0) = 2.0;
  lin->bias().at(0, 0) = -1.0;
  net.add(std::move(lin)).add(std::make_unique<Sigmoid>());

  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  matrix::MatX x(1, 1);
  x.at(0, 0) = math::Fixed::from_double(0.5);  // 2*0.5 - 1 = 0 -> 0.5
  EXPECT_NEAR(q.forward(x).at(0, 0).to_double(), 0.5, 1e-3);
  x.at(0, 0) = math::Fixed::from_double(4.0);  // saturates -> 1.0
  EXPECT_NEAR(q.forward(x).at(0, 0).to_double(), 1.0, 1e-3);
}

TEST(Quantized, SaveLoadRoundTripPreservesInference) {
  const char* path = "/tmp/kml_quantized_roundtrip.kmlq";
  math::Rng rng(11);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  ASSERT_TRUE(q.save(path));

  QuantizedNetwork loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.num_layers(), q.num_layers());
  EXPECT_EQ(loaded.param_bytes(), q.param_bytes());
  for (int i = 0; i < 50; ++i) {
    double f[4];
    for (int j = 0; j < 4; ++j) f[j] = rng.uniform(-2.0, 6.0);
    EXPECT_EQ(loaded.infer_class(f, 4), q.infer_class(f, 4)) << i;
  }
  std::remove(path);
}

TEST(Quantized, LoadRejectsGarbage) {
  const char* path = "/tmp/kml_quantized_bad.kmlq";
  FILE* f = fopen(path, "wb");
  fputs("definitely not a KMLQ file", f);
  fclose(f);
  QuantizedNetwork q;
  EXPECT_FALSE(q.load(path));
  EXPECT_FALSE(q.load("/tmp/kml_quantized_missing.kmlq"));
  std::remove(path);
}

// --- int8 mode (PR 9) -------------------------------------------------------

// A raw calibration batch drawn from the same distribution the net was
// trained on (what a deployment would log and replay).
matrix::MatD make_calib(math::Rng& rng, int rows = 64, int classes = 3) {
  matrix::MatD calib(rows, 4);
  for (int i = 0; i < rows; ++i) {
    const int cls = i % classes;
    for (int j = 0; j < 4; ++j) calib.at(i, j) = rng.normal(2.0 * cls, 0.4);
  }
  return calib;
}

TEST(QuantizedInt8, AgreesWithFloatNetworkWithinAPoint) {
  math::Rng rng(13);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize_int8(net, make_calib(rng), q));
  EXPECT_EQ(q.mode(), QuantMode::kInt8);
  EXPECT_EQ(q.in_features(), 4);
  EXPECT_EQ(q.out_features(), 3);

  const int kProbes = 200;
  int ref_correct = 0;
  int q_correct = 0;
  int agree = 0;
  for (int i = 0; i < kProbes; ++i) {
    const int cls = i % 3;
    double f[4];
    for (int j = 0; j < 4; ++j) f[j] = rng.normal(2.0 * cls, 0.4);

    std::vector<double> z(f, f + 4);
    net.normalizer().transform_row(z.data(), 4);
    matrix::MatD x(1, 4);
    for (int j = 0; j < 4; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
    const int ref = net.predict_classes(x).at(0, 0);
    const int got = q.infer_class(f, 4);
    if (ref == cls) ++ref_correct;
    if (got == cls) ++q_correct;
    if (got == ref) ++agree;
  }
  // The ISSUE bar: int8 accuracy within one point of float (here 1 point of
  // 200 probes = 2), and the two models nearly always pick the same class.
  EXPECT_GE(q_correct, ref_correct - 2);
  EXPECT_GE(agree, kProbes * 97 / 100);
}

TEST(QuantizedInt8, BatchedMatchesSingleRowBitExact) {
  math::Rng rng(17);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize_int8(net, make_calib(rng), q));

  const int kRows = 32;
  std::vector<double> feats(kRows * 4);
  for (auto& v : feats) v = rng.uniform(-2.0, 6.0);
  std::vector<double> batch_scores(kRows * 3);
  std::vector<int> batch_classes(kRows);
  ASSERT_EQ(q.infer_batch_scores(feats.data(), 4, kRows, batch_scores.data(),
                                 batch_classes.data()),
            kRows);

  for (int r = 0; r < kRows; ++r) {
    double row_scores[3];
    int row_class = -1;
    ASSERT_EQ(q.infer_batch_scores(feats.data() + r * 4, 4, 1, row_scores,
                                   &row_class),
              1);
    EXPECT_EQ(row_class, batch_classes[static_cast<std::size_t>(r)]) << r;
    for (int c = 0; c < 3; ++c) {
      // Integer GEMM + element-independent dequant: batching must not
      // change a single bit.
      EXPECT_EQ(row_scores[c],
                batch_scores[static_cast<std::size_t>(r) * 3 + c])
          << "row " << r << " class " << c;
    }
  }
}

TEST(QuantizedInt8, SaveLoadRoundTripV2) {
  const char* path = "/tmp/kml_quantized_int8_roundtrip.kmlq";
  math::Rng rng(19);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize_int8(net, make_calib(rng), q));
  ASSERT_TRUE(q.save(path));

  QuantizedNetwork loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.mode(), QuantMode::kInt8);
  EXPECT_EQ(loaded.num_layers(), q.num_layers());
  EXPECT_EQ(loaded.param_bytes(), q.param_bytes());
  for (int i = 0; i < 50; ++i) {
    double f[4];
    for (int j = 0; j < 4; ++j) f[j] = rng.uniform(-2.0, 6.0);
    double want[3];
    double got[3];
    int want_cls = -1;
    int got_cls = -1;
    ASSERT_EQ(q.infer_batch_scores(f, 4, 1, want, &want_cls), 1);
    ASSERT_EQ(loaded.infer_batch_scores(f, 4, 1, got, &got_cls), 1);
    EXPECT_EQ(got_cls, want_cls) << i;
    for (int c = 0; c < 3; ++c) EXPECT_EQ(got[c], want[c]) << i;
  }
  std::remove(path);
}

TEST(QuantizedInt8, V1FilesStillLoadAfterV2) {
  // The format bump must not orphan deployed v1 artifacts: a Q16.16 file
  // written today round-trips as kFixed16, an int8 file as kInt8.
  const char* v1path = "/tmp/kml_quantized_v1.kmlq";
  const char* v2path = "/tmp/kml_quantized_v2.kmlq";
  math::Rng rng(23);
  Network net = make_separable_net(rng);
  QuantizedNetwork q16;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q16));
  ASSERT_TRUE(q16.save(v1path));
  QuantizedNetwork q8;
  ASSERT_TRUE(QuantizedNetwork::quantize_int8(net, make_calib(rng), q8));
  ASSERT_TRUE(q8.save(v2path));

  QuantizedNetwork a;
  ASSERT_TRUE(a.load(v1path));
  EXPECT_EQ(a.mode(), QuantMode::kFixed16);
  QuantizedNetwork b;
  ASSERT_TRUE(b.load(v2path));
  EXPECT_EQ(b.mode(), QuantMode::kInt8);

  // And a loader can flip between them: the v2 instance re-loads v1.
  ASSERT_TRUE(b.load(v1path));
  EXPECT_EQ(b.mode(), QuantMode::kFixed16);
  double f[4] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(b.infer_class(f, 4), q16.infer_class(f, 4));
  std::remove(v1path);
  std::remove(v2path);
}

TEST(QuantizedInt8, RejectsBadCalibration) {
  math::Rng rng(29);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  matrix::MatD empty;
  EXPECT_FALSE(QuantizedNetwork::quantize_int8(net, empty, q));
  matrix::MatD wrong(8, 7);  // model expects 4 features
  EXPECT_FALSE(QuantizedNetwork::quantize_int8(net, wrong, q));
}

TEST(QuantizedInt8, SaturatesExtremeValuesSafely) {
  // Weights and inputs far outside the grid must clamp to ±127, not
  // overflow the int8 conversion (UB when the clamp comes after the cast —
  // the sanitizer build watches this path).
  Network net;
  auto lin = std::make_unique<Linear>(2, 2);
  lin->weights().at(0, 0) = 500.0;
  lin->weights().at(0, 1) = -500.0;
  lin->weights().at(1, 0) = 0.001;
  lin->weights().at(1, 1) = -0.001;
  lin->bias().at(0, 0) = 0.0;
  lin->bias().at(0, 1) = 0.0;
  net.add(std::move(lin));
  net.normalizer().import_moments({0.0, 0.0}, {1.0, 1.0});

  matrix::MatD calib(2, 2);
  calib.at(0, 0) = 1.0;
  calib.at(0, 1) = -1.0;
  calib.at(1, 0) = 0.5;
  calib.at(1, 1) = -0.5;
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize_int8(net, calib, q));

  // Inputs ~1e6 times the calibrated range: the activation quantizer must
  // saturate, and the result must still be a sane argmax.
  const double extreme[2] = {1e6, -1e6};
  double scores[2];
  int cls = -1;
  ASSERT_EQ(q.infer_batch_scores(extreme, 2, 1, scores, &cls), 1);
  EXPECT_EQ(cls, 0);  // +500·(+127) dominates
  EXPECT_GT(scores[0], scores[1]);
}

TEST(Quantized, NormalizerAppliedInFixedPoint) {
  Network net;
  auto lin = std::make_unique<Linear>(1, 2);
  lin->weights().at(0, 0) = 1.0;
  lin->weights().at(0, 1) = -1.0;
  net.add(std::move(lin));
  net.normalizer().import_moments({10.0}, {2.0});

  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  // Raw 14 -> z = 2 -> logits (2, -2) -> class 0; raw 6 -> z = -2 -> class 1.
  const double hi = 14.0;
  const double lo = 6.0;
  EXPECT_EQ(q.infer_class(&hi, 1), 0);
  EXPECT_EQ(q.infer_class(&lo, 1), 1);
}

}  // namespace
}  // namespace kml::nn
