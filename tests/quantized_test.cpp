// Tests for src/nn/quantized: fidelity of fixed-point inference vs the
// double-precision network, the no-FPU guarantee, range rejection, and
// footprint arithmetic.
#include "nn/quantized.h"

#include "nn/activations.h"
#include "nn/linear.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace kml::nn {
namespace {

// A trained-ish network over well-separated classes.
Network make_separable_net(math::Rng& rng, int classes = 3) {
  Network net = build_mlp_classifier(4, 8, classes, rng);
  // Train briefly so quantization has realistic weights to approximate.
  matrix::MatD x(90, 4);
  matrix::MatD y(90, classes);
  for (int i = 0; i < 90; ++i) {
    const int cls = i % classes;
    for (int j = 0; j < 4; ++j) x.at(i, j) = rng.normal(2.0 * cls, 0.4);
    y.at(i, cls) = 1.0;
  }
  net.normalizer().fit(x);
  const matrix::MatD z = net.normalizer().transform(x);
  CrossEntropyLoss loss;
  SGD opt(0.1, 0.9);
  opt.attach(net.params());
  net.train(z, y, loss, opt, 60, 16, rng);
  return net;
}

TEST(Quantized, AgreesWithDoubleNetworkOnSeparableData) {
  math::Rng rng(3);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));

  int agree = 0;
  const int kProbes = 200;
  for (int i = 0; i < kProbes; ++i) {
    const int cls = i % 3;
    double f[4];
    for (int j = 0; j < 4; ++j) f[j] = rng.normal(2.0 * cls, 0.4);

    std::vector<double> z(f, f + 4);
    net.normalizer().transform_row(z.data(), 4);
    matrix::MatD x(1, 4);
    for (int j = 0; j < 4; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
    const int ref = net.predict_classes(x).at(0, 0);

    if (q.infer_class(f, 4) == ref) ++agree;
  }
  // The hard-sigmoid approximation costs some fidelity, not much.
  EXPECT_GT(agree, kProbes * 85 / 100);
}

TEST(Quantized, ForwardTouchesNoFpu) {
  math::Rng rng(5);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));

  matrix::MatX x(1, 4);
  for (int j = 0; j < 4; ++j) {
    x.at(0, j) = math::Fixed::from_double(0.25 * j);
  }
  kml_fpu_reset_stats();
  const matrix::MatX logits = q.forward(x);
  EXPECT_EQ(kml_fpu_region_count(), 0u);  // the §3.1 guarantee
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 3);
}

TEST(Quantized, ParamBytesAreHalfOfDouble) {
  math::Rng rng(7);
  Network net = build_mlp_classifier(5, 16, 4, rng);
  net.normalizer().import_moments(std::vector<double>(5, 0.0),
                                  std::vector<double>(5, 1.0));
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  // weights in Q16.16 (4 B) vs double (8 B), plus 2*5 normalizer scalars.
  EXPECT_EQ(q.param_bytes(),
            net.param_bytes() / 2 + 2 * 5 * sizeof(math::Fixed));
  EXPECT_EQ(q.in_features(), 5);
  EXPECT_EQ(q.out_features(), 4);
  EXPECT_EQ(q.num_layers(), net.num_layers());
}

TEST(Quantized, RejectsOutOfRangeWeights) {
  math::Rng rng(9);
  Network net = build_mlp_classifier(2, 2, 2, rng);
  auto& lin = static_cast<Linear&>(net.layer(0));
  lin.weights().at(0, 0) = 1e6;  // outside Q16.16
  QuantizedNetwork q;
  EXPECT_FALSE(QuantizedNetwork::quantize(net, q));
}

TEST(Quantized, KnownTinyNetworkForward) {
  // y = hard_sigmoid(2x - 1) through a hand-built 1-1 net.
  Network net;
  auto lin = std::make_unique<Linear>(1, 1);
  lin->weights().at(0, 0) = 2.0;
  lin->bias().at(0, 0) = -1.0;
  net.add(std::move(lin)).add(std::make_unique<Sigmoid>());

  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  matrix::MatX x(1, 1);
  x.at(0, 0) = math::Fixed::from_double(0.5);  // 2*0.5 - 1 = 0 -> 0.5
  EXPECT_NEAR(q.forward(x).at(0, 0).to_double(), 0.5, 1e-3);
  x.at(0, 0) = math::Fixed::from_double(4.0);  // saturates -> 1.0
  EXPECT_NEAR(q.forward(x).at(0, 0).to_double(), 1.0, 1e-3);
}

TEST(Quantized, SaveLoadRoundTripPreservesInference) {
  const char* path = "/tmp/kml_quantized_roundtrip.kmlq";
  math::Rng rng(11);
  Network net = make_separable_net(rng);
  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  ASSERT_TRUE(q.save(path));

  QuantizedNetwork loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.num_layers(), q.num_layers());
  EXPECT_EQ(loaded.param_bytes(), q.param_bytes());
  for (int i = 0; i < 50; ++i) {
    double f[4];
    for (int j = 0; j < 4; ++j) f[j] = rng.uniform(-2.0, 6.0);
    EXPECT_EQ(loaded.infer_class(f, 4), q.infer_class(f, 4)) << i;
  }
  std::remove(path);
}

TEST(Quantized, LoadRejectsGarbage) {
  const char* path = "/tmp/kml_quantized_bad.kmlq";
  FILE* f = fopen(path, "wb");
  fputs("definitely not a KMLQ file", f);
  fclose(f);
  QuantizedNetwork q;
  EXPECT_FALSE(q.load(path));
  EXPECT_FALSE(q.load("/tmp/kml_quantized_missing.kmlq"));
  std::remove(path);
}

TEST(Quantized, NormalizerAppliedInFixedPoint) {
  Network net;
  auto lin = std::make_unique<Linear>(1, 2);
  lin->weights().at(0, 0) = 1.0;
  lin->weights().at(0, 1) = -1.0;
  net.add(std::move(lin));
  net.normalizer().import_moments({10.0}, {2.0});

  QuantizedNetwork q;
  ASSERT_TRUE(QuantizedNetwork::quantize(net, q));
  // Raw 14 -> z = 2 -> logits (2, -2) -> class 0; raw 6 -> z = -2 -> class 1.
  const double hi = 14.0;
  const double lo = 6.0;
  EXPECT_EQ(q.infer_class(&hi, 1), 0);
  EXPECT_EQ(q.infer_class(&lo, 1), 1);
}

}  // namespace
}  // namespace kml::nn
