// Tests for src/runtime: the asynchronous training thread (data delivery,
// drop accounting, shutdown drain) and the engine (mode switch, inference,
// training, persistence, instrumentation).
#include "runtime/engine.h"
#include "runtime/training_thread.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

namespace kml::runtime {
namespace {

struct Collector {
  std::atomic<std::uint64_t> records{0};
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> checksum{0};
};

void collect_fn(void* user, const data::TraceRecord* records,
                std::size_t count) {
  auto* c = static_cast<Collector*>(user);
  c->records.fetch_add(count);
  c->calls.fetch_add(1);
  for (std::size_t i = 0; i < count; ++i) {
    c->checksum.fetch_add(records[i].pgoff);
  }
}

TEST(TrainingThread, DeliversAllSubmittedRecords) {
  Collector collector;
  std::uint64_t sum = 0;
  {
    TrainingThread trainer(1 << 12, 64, collect_fn, &collector);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      while (!trainer.submit(data::TraceRecord{1, i, i * 10, 0})) {
        kml_thread_yield();
      }
      sum += i;
    }
  }  // destructor joins and drains
  EXPECT_EQ(collector.records.load(), 1000u);
  EXPECT_EQ(collector.checksum.load(), sum);
  EXPECT_GE(collector.calls.load(), 1000u / 64);
}

TEST(TrainingThread, CountsDropsWhenConsumerIsGone) {
  // A tiny buffer with a slow consumer (batch 1 + contention) must drop
  // rather than block the producer — the paper's explicit design choice.
  Collector collector;
  TrainingThread trainer(8, 1, collect_fn, &collector);
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    if (trainer.submit(data::TraceRecord{1, i, i, 0})) ++accepted;
  }
  EXPECT_EQ(accepted + trainer.dropped(), 100000u);
  EXPECT_GT(accepted, 0u);
}

TEST(TrainingThread, ProcessedCounterAdvances) {
  Collector collector;
  TrainingThread trainer(1 << 10, 32, collect_fn, &collector);
  for (std::uint64_t i = 0; i < 100; ++i) {
    trainer.submit(data::TraceRecord{1, i, i, 0});
  }
  // Wait for the async thread to drain.
  for (int spin = 0; spin < 1000 && trainer.processed() < 100; ++spin) {
    kml_sleep_ms(1);
  }
  EXPECT_EQ(trainer.processed(), 100u);
}

nn::Network make_tiny_net(std::uint64_t seed = 5) {
  math::Rng rng(seed);
  nn::Network net = nn::build_mlp_classifier(2, 4, 2, rng);
  net.normalizer().import_moments({0.0, 0.0}, {1.0, 1.0});
  return net;
}

TEST(Engine, ModeSwitch) {
  Engine engine(make_tiny_net());
  EXPECT_EQ(engine.mode(), Mode::kInference);
  engine.set_mode(Mode::kTraining);
  EXPECT_EQ(engine.mode(), Mode::kTraining);
}

TEST(Engine, InferenceCountsAndTimes) {
  Engine engine(make_tiny_net());
  const double f[2] = {0.5, -0.5};
  const int cls = engine.infer_class(f, 2);
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 2);
  EXPECT_EQ(engine.stats().inferences, 1u);
  EXPECT_GT(engine.stats().inference_ns_total, 0u);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().inferences, 0u);
}

TEST(Engine, InferenceAppliesNormalizer) {
  // With moments mean=100, std=1 a raw feature of 100 is z=0; verify via
  // determinism: two engines with different moments disagree on the same
  // raw input only through normalization.
  nn::Network net_a = make_tiny_net(7);
  net_a.normalizer().import_moments({0.0, 0.0}, {1.0, 1.0});
  nn::Network net_b = make_tiny_net(7);  // identical weights (same seed)
  net_b.normalizer().import_moments({1000.0, 1000.0}, {1.0, 1.0});

  Engine a(std::move(net_a));
  Engine b(std::move(net_b));
  // Raw input near 1000: engine B sees z ~ 0, engine A sees z ~ 1000 (deep
  // saturation) — outputs must be computed from different activations.
  const double f[2] = {1000.0, -1000.0};
  a.infer_class(f, 2);
  b.infer_class(f, 2);
  // Verify through the underlying forward pass rather than argmax (which
  // can coincide): normalized inputs differ.
  matrix::MatD xa(1, 2);
  xa.at(0, 0) = 1000.0;
  xa.at(0, 1) = -1000.0;
  const matrix::MatD za = a.network().normalizer().transform(xa);
  const matrix::MatD zb = b.network().normalizer().transform(xa);
  EXPECT_GT(matrix::max_abs_diff(za, zb), 100.0);
}

TEST(Engine, TrainBatchReducesLossOverIterations) {
  Engine engine(make_tiny_net());
  engine.set_mode(Mode::kTraining);
  math::Rng rng(11);
  matrix::MatD x(20, 2);
  matrix::MatD y(20, 2);
  for (int i = 0; i < 20; ++i) {
    const int cls = i % 2;
    x.at(i, 0) = rng.normal(cls == 0 ? -1.0 : 1.0, 0.2);
    x.at(i, 1) = rng.normal(cls == 0 ? 1.0 : -1.0, 0.2);
    y.at(i, cls) = 1.0;
  }
  nn::CrossEntropyLoss loss;
  nn::SGD opt(0.5, 0.9);
  opt.attach(engine.network().params());
  const double first = engine.train_batch(x, y, loss, opt);
  double last = first;
  for (int i = 0; i < 100; ++i) last = engine.train_batch(x, y, loss, opt);
  EXPECT_LT(last, first);
  EXPECT_EQ(engine.stats().train_iterations, 101u);
  EXPECT_GT(engine.stats().avg_train_us(), 0.0);
}

TEST(Engine, TrainsWithAdamThroughTheOptimizerInterface) {
  Engine engine(make_tiny_net(17));
  engine.set_mode(Mode::kTraining);
  math::Rng rng(19);
  matrix::MatD x(16, 2);
  matrix::MatD y(16, 2);
  for (int i = 0; i < 16; ++i) {
    const int cls = i % 2;
    x.at(i, 0) = rng.normal(cls == 0 ? -1.0 : 1.0, 0.2);
    x.at(i, 1) = rng.normal(cls == 0 ? 1.0 : -1.0, 0.2);
    y.at(i, cls) = 1.0;
  }
  nn::CrossEntropyLoss loss;
  nn::Adam opt(0.05);
  opt.attach(engine.network().params());
  const double first = engine.train_batch(x, y, loss, opt);
  double last = first;
  for (int i = 0; i < 80; ++i) last = engine.train_batch(x, y, loss, opt);
  EXPECT_LT(last, first * 0.3);
}

TEST(Engine, FromFileRoundTrip) {
  const char* path = "/tmp/kml_engine_roundtrip.kml";
  Engine original(make_tiny_net(13));
  ASSERT_TRUE(nn::save_model(original.network(), path));

  Engine loaded{nn::Network{}};
  ASSERT_TRUE(Engine::from_file(loaded, path));
  const double f[2] = {0.3, 0.7};
  EXPECT_EQ(loaded.infer_class(f, 2), original.infer_class(f, 2));
  std::remove(path);
}

TEST(Engine, FromFileMissingFails) {
  Engine e{nn::Network{}};
  EXPECT_FALSE(Engine::from_file(e, "/tmp/kml_engine_missing.kml"));
}

TEST(Engine, FromFileFailureLeavesEngineIntact) {
  // A deployed engine asked to hot-load a bad model file must keep serving
  // with its current weights and stats.
  Engine engine(make_tiny_net(29));
  const double f[2] = {0.2, -0.9};
  const int before_class = engine.infer_class(f, 2);
  const std::uint64_t before_inferences = engine.stats().inferences;

  EXPECT_FALSE(Engine::from_file(engine, "/tmp/kml_engine_missing.kml"));

  EXPECT_EQ(engine.stats().inferences, before_inferences);
  EXPECT_EQ(engine.network().num_layers(), make_tiny_net(29).num_layers());
  EXPECT_EQ(engine.infer_class(f, 2), before_class);
}

// --- Zero-allocation hot paths -----------------------------------------------
// These are the ctest guards for the allocation contract: after one warm-up
// call, steady-state inference and training must not touch the heap. Every
// matrix allocation flows through kml_malloc, so the accounting is exact.

TEST(Engine, SteadyStateInferencePerformsZeroAllocations) {
  Engine engine(make_tiny_net());
  const double f[2] = {0.5, -0.5};
  const int expected = engine.infer_class(f, 2);  // warm-up allocates caches

  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(engine.infer_class(f, 2), expected);
  }
  EXPECT_EQ(kml_mem_stats().total_allocs, before)
      << "steady-state inference must not allocate";
}

TEST(Engine, WarmUpMakesFirstInferenceAllocationFree) {
  Engine engine(make_tiny_net());
  engine.warm_up(/*max_batch_rows=*/4);
  const double f[2] = {0.5, -0.5};

  const std::uint64_t before = kml_mem_stats().total_allocs;
  engine.infer_class(f, 2);
  double batch[4 * 2] = {0.5, -0.5, 1.0, 2.0, -1.0, 0.0, 0.25, 0.75};
  int classes[4] = {};
  engine.infer_batch(batch, 2, 4, classes);
  EXPECT_EQ(kml_mem_stats().total_allocs, before)
      << "after warm_up even the first calls must not allocate";
}

TEST(Engine, SteadyStateTrainingPerformsZeroAllocations) {
  Engine engine(make_tiny_net());
  engine.set_mode(Mode::kTraining);
  matrix::MatD x(4, 2);
  matrix::MatD y(4, 2);
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = 0.1 * i;
    x.at(i, 1) = -0.1 * i;
    y.at(i, i % 2) = 1.0;
  }
  nn::CrossEntropyLoss loss;
  nn::SGD opt(0.1, 0.9);
  opt.attach(engine.network().params());
  engine.train_batch(x, y, loss, opt);  // warm-up allocates caches

  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 0; i < 100; ++i) engine.train_batch(x, y, loss, opt);
  EXPECT_EQ(kml_mem_stats().total_allocs, before)
      << "steady-state training must not allocate";
}

TEST(Engine, InferBatchAgreesWithLoopedInfer) {
  Engine engine(make_tiny_net(23));
  math::Rng rng(47);
  constexpr int kCount = 17;  // not a multiple of any tile size
  std::vector<double> features;
  for (int i = 0; i < kCount * 2; ++i) {
    features.push_back(rng.next_double() * 4.0 - 2.0);
  }

  int batched[kCount];
  ASSERT_EQ(engine.infer_batch(features.data(), 2, kCount, batched), kCount);
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(batched[i], engine.infer_class(&features[i * 2], 2)) << i;
  }
  // Stats: the batch counted each sample as one inference.
  EXPECT_EQ(engine.stats().inferences,
            static_cast<std::uint64_t>(kCount + kCount));
}

TEST(Engine, InferBatchRejectsBadArguments) {
  Engine engine(make_tiny_net());
  const double f[2] = {0.5, -0.5};
  int cls = -1;
  EXPECT_EQ(engine.infer_batch(nullptr, 2, 1, &cls), 0);
  EXPECT_EQ(engine.infer_batch(f, 2, 1, nullptr), 0);
  EXPECT_EQ(engine.infer_batch(f, 2, 0, &cls), 0);
  EXPECT_EQ(engine.infer_batch(f, 2, -3, &cls), 0);
  EXPECT_EQ(engine.infer_batch(f, 0, 1, &cls), 0);
  EXPECT_EQ(cls, -1);
}

TEST(Engine, CheckpointRollbackSteadyStateDoesNotAllocate) {
  Engine engine(make_tiny_net());
  engine.checkpoint();  // warm-up sizes the checkpoint buffers
  const std::uint64_t before = kml_mem_stats().total_allocs;
  engine.checkpoint();
  EXPECT_TRUE(engine.rollback());
  EXPECT_EQ(kml_mem_stats().total_allocs, before);
}

TEST(Workspace, SlotsWarmAndAccountBytes) {
  Workspace ws;
  EXPECT_EQ(ws.bytes(), 0u);
  ws.warm(0, 4, 8);
  ws.warm(1, 2, 2);
  EXPECT_EQ(ws.bytes(), (4 * 8 + 2 * 2) * sizeof(double));
  double* ptr = ws.slot(0).data();
  ws.warm(0, 2, 8);  // shrink: same storage
  EXPECT_EQ(ws.slot(0).data(), ptr);
  EXPECT_EQ(ws.bytes(), (4 * 8 + 2 * 2) * sizeof(double));
}

// --- Shutdown-drain stress ---------------------------------------------------

TEST(TrainingThread, DrainsFullBufferAtShutdown) {
  // Fill the buffer to capacity with the consumer effectively parked (first
  // train_fn call sleeps), then destroy: the destructor's drain must deliver
  // every accepted record, with no deadlock and no loss.
  struct SlowStart {
    Collector collector;
    std::atomic<bool> first{true};
  } state;

  const auto slow_first_fn = [](void* user, const data::TraceRecord* records,
                                std::size_t count) {
    auto* s = static_cast<SlowStart*>(user);
    if (s->first.exchange(false)) kml_sleep_ms(50);  // park the consumer
    collect_fn(&s->collector, records, count);
  };

  std::uint64_t accepted = 0;
  std::uint64_t sum = 0;
  {
    TrainingThread trainer(256, 32, slow_first_fn, &state);
    // Overfill: some records drop while the consumer sleeps; all *accepted*
    // records must still arrive.
    for (std::uint64_t i = 0; i < 5000; ++i) {
      if (trainer.submit(data::TraceRecord{1, i, i, 0})) {
        ++accepted;
        sum += i;
      }
    }
  }  // destructor joins; must not deadlock with a full buffer
  EXPECT_EQ(state.collector.records.load(), accepted);
  EXPECT_EQ(state.collector.checksum.load(), sum);
}

TEST(TrainingThread, SlowConsumerShutdownAccountsEveryRecord) {
  // A train_fn that sleeps on every call: shutdown still terminates and
  // processed + dropped == submitted.
  struct Slow {
    Collector collector;
  } state;
  const auto slow_fn = [](void* user, const data::TraceRecord* records,
                          std::size_t count) {
    kml_sleep_ms(1);
    collect_fn(&static_cast<Slow*>(user)->collector, records, count);
  };

  const std::uint64_t submitted = 2000;
  std::uint64_t dropped = 0;
  {
    TrainingThread trainer(64, 16, slow_fn, &state);
    for (std::uint64_t i = 0; i < submitted; ++i) {
      if (!trainer.submit(data::TraceRecord{1, i, i, 0})) ++dropped;
    }
    // Snapshot before destruction: drops only happen on the producer side,
    // which is this thread, so the counter is final.
    dropped = trainer.dropped();
  }
  EXPECT_EQ(state.collector.records.load() + dropped, submitted);
}

TEST(TrainingThread, HeartbeatsReachAttachedMonitor) {
  HealthMonitor monitor;
  Collector collector;
  TrainingThread trainer(1 << 10, 32, collect_fn, &collector);
  trainer.attach_health(&monitor);
  for (int spin = 0; spin < 1000 && monitor.stats().heartbeats == 0; ++spin) {
    kml_sleep_ms(1);
  }
  EXPECT_GT(monitor.stats().heartbeats, 0u);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
}

TEST(TrainingThread, DropStormTripsAttachedMonitor) {
  HealthMonitor monitor;  // default: >50% drops over >=1024 records
  Collector collector;
  // Tiny buffer + sleeping consumer: almost everything drops.
  const auto sleepy_fn = [](void* user, const data::TraceRecord* records,
                            std::size_t count) {
    kml_sleep_ms(5);
    collect_fn(static_cast<Collector*>(user), records, count);
  };
  {
    TrainingThread trainer(8, 1, sleepy_fn, &collector);
    trainer.attach_health(&monitor);
    for (std::uint64_t i = 0; i < 200000; ++i) {
      trainer.submit(data::TraceRecord{1, i, i, 0});
    }
    for (int spin = 0;
         spin < 2000 && monitor.state() == HealthState::kHealthy; ++spin) {
      kml_sleep_ms(1);
    }
  }
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_GT(monitor.stats().drop_rate_trips, 0u);
}

}  // namespace
}  // namespace kml::runtime
