// parallel_stress_test.cpp — concurrency stress, written to run TSan-clean.
//
// Build the thread-sanitizer flavor with
//   cmake -B build-tsan -S . -DKML_SANITIZE=thread && cmake --build build-tsan
// and run this binary (or the whole suite) from it. The tests also run —
// and assert real invariants — in the plain build, so they double as
// ordinary regression coverage. All cross-thread traffic in the hot paths
// flows through the portability atomics (std::atomic underneath), which
// TSan models precisely; a data race anywhere in the pool, the sharded
// ring, or the engine read paths is a test failure under the sanitizer.
//
// Threads are created ONLY through the portability seam (kml_thread_create),
// same as the production training thread — the repo_hygiene check enforces
// this repo-wide.
#include "data/sharded_buffer.h"
#include "matrix/linalg.h"
#include "nn/network.h"
#include "portability/kml_lib.h"
#include "portability/thread.h"
#include "portability/threadpool.h"
#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace {

using namespace kml;

// Inference paths normalize their input, so the net needs fitted moments
// (identity transform keeps expectations simple).
nn::Network make_engine_net(int in, int hidden, int classes, unsigned seed) {
  math::Rng rng(seed);
  nn::Network net = nn::build_mlp_classifier(in, hidden, classes, rng);
  net.normalizer().import_moments(std::vector<double>(in, 0.0),
                                  std::vector<double>(in, 1.0));
  return net;
}

// --- thread-pool hammer ------------------------------------------------------

TEST(ParallelStress, PoolHammerManyDispatches) {
  kml_pool_set_threads(4);
  constexpr long kN = 4096;
  std::vector<std::int64_t> out(kN);
  for (int round = 0; round < 200; ++round) {
    parallel_for(kN, 8, [&](long b, long e, int) {
      for (long i = b; i < e; ++i) {
        out[static_cast<std::size_t>(i)] = i + round;
      }
    });
    // Spot-check a few slots each round, full check on the last.
    ASSERT_EQ(out[0], static_cast<std::int64_t>(round));
    ASSERT_EQ(out[kN - 1], kN - 1 + round);
  }
  for (long i = 0; i < kN; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i + 199);
  }
  kml_pool_shutdown();
}

TEST(ParallelStress, PoolSurvivesThreadCountChanges) {
  constexpr long kN = 1000;
  std::vector<int> hits(kN);
  for (unsigned t : {1u, 4u, 2u, 8u, 1u, 3u}) {
    kml_pool_set_threads(t);
    for (int round = 0; round < 20; ++round) {
      std::fill(hits.begin(), hits.end(), 0);
      parallel_for(kN, 4, [&](long b, long e, int) {
        for (long i = b; i < e; ++i) hits[static_cast<std::size_t>(i)] += 1;
      });
      for (long i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "threads=" << t;
      }
    }
  }
  kml_pool_shutdown();
}

// Concurrent submitters: only one wins the pool; the others must run their
// loops serially inline, still correctly. Each submitter fills its own
// private output so the only shared state is the pool itself.
struct SubmitterArg {
  std::vector<std::int64_t>* out;
  int rounds;
};

void submitter_main(void* arg) {
  auto* a = static_cast<SubmitterArg*>(arg);
  const long n = static_cast<long>(a->out->size());
  for (int r = 0; r < a->rounds; ++r) {
    parallel_for(n, 4, [&](long b, long e, int) {
      for (long i = b; i < e; ++i) {
        (*a->out)[static_cast<std::size_t>(i)] = 3 * i + r;
      }
    });
  }
}

TEST(ParallelStress, ConcurrentSubmittersStayCorrect) {
  kml_pool_set_threads(4);
  constexpr int kSubmitters = 3;
  constexpr long kN = 512;
  constexpr int kRounds = 50;
  std::vector<std::int64_t> outs[kSubmitters];
  SubmitterArg args[kSubmitters];
  KmlThread* threads[kSubmitters];
  for (int s = 0; s < kSubmitters; ++s) {
    outs[s].assign(kN, -1);
    args[s] = SubmitterArg{&outs[s], kRounds};
    threads[s] = kml_thread_create(&submitter_main, &args[s], "submitter");
    ASSERT_NE(threads[s], nullptr);
  }
  // The main thread submits too, for a fourth contender.
  std::vector<std::int64_t> main_out(kN, -1);
  SubmitterArg main_arg{&main_out, kRounds};
  submitter_main(&main_arg);
  for (KmlThread* t : threads) kml_thread_join(t);

  for (int s = 0; s < kSubmitters; ++s) {
    for (long i = 0; i < kN; ++i) {
      ASSERT_EQ(outs[s][static_cast<std::size_t>(i)], 3 * i + (kRounds - 1))
          << "submitter " << s;
    }
  }
  for (long i = 0; i < kN; ++i) {
    ASSERT_EQ(main_out[static_cast<std::size_t>(i)], 3 * i + (kRounds - 1));
  }
  kml_pool_shutdown();
}

// --- sharded ring: one producer thread per shard, one consumer ---------------

struct ProducerArg {
  data::ShardedBuffer<std::int64_t>* buf;
  unsigned shard;
  std::int64_t count;
};

void producer_main(void* arg) {
  auto* a = static_cast<ProducerArg*>(arg);
  for (std::int64_t i = 0; i < a->count;) {
    // Tag each record with its shard so the consumer can check per-shard
    // FIFO order. Retry on full: the stress wants total counts to balance.
    if (a->buf->push(a->shard * 1'000'000 + i, a->shard)) {
      ++i;
    } else {
      kml_thread_yield();
    }
  }
}

TEST(ParallelStress, ShardedBufferMultiProducerSingleConsumer) {
  constexpr unsigned kShards = 4;
  constexpr std::int64_t kPerProducer = 20'000;
  data::ShardedBuffer<std::int64_t> buf(1 << 10, kShards);
  ASSERT_EQ(buf.shard_count(), kShards);

  ProducerArg args[kShards];
  KmlThread* threads[kShards];
  for (unsigned s = 0; s < kShards; ++s) {
    args[s] = ProducerArg{&buf, s, kPerProducer};
    threads[s] = kml_thread_create(&producer_main, &args[s], "producer");
    ASSERT_NE(threads[s], nullptr);
  }

  std::int64_t next_seq[kShards] = {};
  std::int64_t total = 0;
  std::int64_t batch[256];
  while (total < static_cast<std::int64_t>(kShards) * kPerProducer) {
    const std::size_t got = buf.pop_many(batch, 256);
    if (got == 0) {
      kml_thread_yield();
      continue;
    }
    for (std::size_t i = 0; i < got; ++i) {
      const std::int64_t shard = batch[i] / 1'000'000;
      const std::int64_t seq = batch[i] % 1'000'000;
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, static_cast<std::int64_t>(kShards));
      ASSERT_EQ(seq, next_seq[shard]++) << "shard " << shard;
    }
    total += static_cast<std::int64_t>(got);
  }
  for (KmlThread* t : threads) kml_thread_join(t);

  EXPECT_EQ(buf.pop_many(batch, 256), 0u);
  // Note: dropped() may be nonzero — each rejected push counts as a drop
  // even though these producers retried; the sequence checks above prove
  // every record still arrived exactly once, in per-shard order.
  for (unsigned s = 0; s < kShards; ++s) {
    EXPECT_EQ(next_seq[s], kPerProducer) << "shard " << s;
  }
}

// --- engine: inference concurrent with checkpointing -------------------------

struct InferArg {
  runtime::Engine* engine;
  const double* features;
  int n;
  int iters;
  int expected;
  bool ok;
};

void infer_main(void* arg) {
  auto* a = static_cast<InferArg*>(arg);
  a->ok = true;
  for (int i = 0; i < a->iters; ++i) {
    if (a->engine->infer_class(a->features, a->n) != a->expected) {
      a->ok = false;
      return;
    }
  }
}

TEST(ParallelStress, InferConcurrentWithCheckpointThenRollback) {
  kml_pool_set_threads(1);  // isolate engine concurrency from pool dispatch
  runtime::Engine engine(make_engine_net(8, 16, 4, 31));
  engine.warm_up(4);
  const double features[8] = {0.5, -0.25, 1.0, 0.75, -1.0, 0.1, 0.0, 2.0};
  const int expected = engine.infer_class(features, 8);

  // checkpoint() only READS the live weights (it deep-copies them into the
  // engine-private shadow), so it may overlap inference. rollback() WRITES
  // the live weights and therefore runs only after the inference thread is
  // joined — the same single-writer discipline the training loop follows
  // (trainer quiesces inference consumers before restoring weights).
  InferArg infer{&engine, features, 8, 20'000, expected, false};
  KmlThread* t = kml_thread_create(&infer_main, &infer, "infer");
  ASSERT_NE(t, nullptr);
  for (int i = 0; i < 2'000; ++i) engine.checkpoint();
  kml_thread_join(t);
  EXPECT_TRUE(infer.ok) << "inference diverged while checkpointing";

  EXPECT_TRUE(engine.rollback());
  EXPECT_EQ(engine.infer_class(features, 8), expected);
  kml_pool_shutdown();
}

// Pool dispatch concurrent with a separate engine's batched inference: the
// pool is a process-wide singleton, so a training thread's parallel kernels
// and a tuner thread's (serial) inference must coexist.
struct BatchInferArg {
  runtime::Engine* engine;
  const std::vector<double>* features;
  int n;
  int count;
  std::vector<int>* ref;
  int iters;
  bool ok;
};

void batch_infer_main(void* arg) {
  auto* a = static_cast<BatchInferArg*>(arg);
  a->ok = true;
  std::vector<int> got(static_cast<std::size_t>(a->count), -1);
  for (int i = 0; i < a->iters; ++i) {
    if (a->engine->infer_batch(a->features->data(), a->n, a->count,
                               got.data()) != a->count ||
        got != *a->ref) {
      a->ok = false;
      return;
    }
  }
}

TEST(ParallelStress, PoolKernelsConcurrentWithForeignInference) {
  kml_pool_set_threads(4);
  // Engine A runs batched inference on its own thread; engine B (main
  // thread) hammers parallel matmuls through the shared pool. A's batches
  // are small enough to stay on the serial inline path, so the two never
  // contend for pool slots — only for the submit lock, which must be safe.
  runtime::Engine a(make_engine_net(8, 16, 4, 37));
  a.warm_up(16);
  std::vector<double> features;
  math::Rng frng(41);
  for (int i = 0; i < 16 * 8; ++i) features.push_back(frng.next_double());
  std::vector<int> ref(16, -1);
  ASSERT_EQ(a.infer_batch(features.data(), 8, 16, ref.data()), 16);

  BatchInferArg arg{&a, &features, 8, 16, &ref, 2'000, false};
  KmlThread* t = kml_thread_create(&batch_infer_main, &arg, "batch-infer");
  ASSERT_NE(t, nullptr);

  math::Rng mrng(43);
  const matrix::MatD ma = matrix::random_uniform(64, 64, -1.0, 1.0, mrng);
  const matrix::MatD mb = matrix::random_uniform(64, 64, -1.0, 1.0, mrng);
  matrix::MatD ref_out(64, 64);
  matrix::matmul_naive(ma, mb, ref_out);
  matrix::MatD out(64, 64);
  for (int i = 0; i < 200; ++i) {
    matrix::matmul(ma, mb, out);
    ASSERT_EQ(0, std::memcmp(ref_out.data(), out.data(),
                             static_cast<std::size_t>(out.size()) *
                                 sizeof(double)));
  }
  kml_thread_join(t);
  EXPECT_TRUE(arg.ok) << "foreign inference diverged during pool traffic";
  kml_pool_shutdown();
}

}  // namespace
