// Tests for src/dtree: CART fitting, prediction, stopping rules,
// serialization, and robustness to corrupt files.
#include "dtree/decision_tree.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace kml::dtree {
namespace {

data::Dataset axis_separable(int per_class, math::Rng& rng) {
  // Two 2-D blobs split cleanly at x0 = 0.
  data::Dataset d(2);
  for (int i = 0; i < per_class; ++i) {
    double a[2] = {rng.uniform(-2.0, -0.5), rng.uniform(-1.0, 1.0)};
    d.add(a, 0);
    double b[2] = {rng.uniform(0.5, 2.0), rng.uniform(-1.0, 1.0)};
    d.add(b, 1);
  }
  return d;
}

TEST(DecisionTree, FitsSeparableData) {
  math::Rng rng(3);
  const data::Dataset d = axis_separable(50, rng);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.accuracy(d), 1.0);
  EXPECT_LE(tree.depth(), 2);  // one split suffices
}

TEST(DecisionTree, PredictSingleVector) {
  math::Rng rng(5);
  DecisionTree tree;
  tree.fit(axis_separable(50, rng));
  const double left[2] = {-1.0, 0.0};
  const double right[2] = {1.0, 0.0};
  EXPECT_EQ(tree.predict(left, 2), 0);
  EXPECT_EQ(tree.predict(right, 2), 1);
}

TEST(DecisionTree, XorNeedsDepthTwo) {
  data::Dataset d(2);
  math::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    const double f[2] = {x, y};
    d.add(f, (x > 0) != (y > 0) ? 1 : 0);
  }
  DecisionTree tree;
  tree.fit(d);
  EXPECT_GE(tree.depth(), 2);
  EXPECT_GT(tree.accuracy(d), 0.95);
}

TEST(DecisionTree, MaxDepthIsRespected) {
  math::Rng rng(9);
  data::Dataset d(1);
  for (int i = 0; i < 256; ++i) {
    const double f = i;
    d.add(&f, i % 4);  // needs many splits for purity
  }
  TreeConfig config;
  config.max_depth = 3;
  DecisionTree tree(config);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, MinSamplesStopsSplitting) {
  TreeConfig config;
  config.min_samples_split = 1000;  // never split
  DecisionTree tree(config);
  math::Rng rng(11);
  tree.fit(axis_separable(50, rng));
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  data::Dataset d(1);
  for (int i = 0; i < 20; ++i) {
    const double f = i;
    d.add(&f, 1);  // single class
  }
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict(d.features(0), 1), 1);
}

TEST(DecisionTree, ConstantFeaturesFallBackToMajority) {
  data::Dataset d(1);
  const double f = 5.0;
  for (int i = 0; i < 10; ++i) d.add(&f, 0);
  for (int i = 0; i < 4; ++i) d.add(&f, 1);
  DecisionTree tree;
  tree.fit(d);
  // No threshold can separate identical values; majority class wins.
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict(&f, 1), 0);
}

TEST(DecisionTree, MatrixPredictMatchesRowPredict) {
  math::Rng rng(13);
  const data::Dataset d = axis_separable(30, rng);
  DecisionTree tree;
  tree.fit(d);
  const matrix::MatD x = d.to_matrix();
  const matrix::MatI pred = tree.predict(x);
  for (int i = 0; i < d.size(); ++i) {
    EXPECT_EQ(pred.at(i, 0), tree.predict(d.features(i), 2));
  }
}

TEST(DecisionTree, FeatureImportanceIdentifiesTheSplitFeature) {
  math::Rng rng(19);
  // Two features; only feature 0 separates the classes.
  data::Dataset d(2);
  for (int i = 0; i < 100; ++i) {
    double f[2] = {i < 50 ? -1.0 + 0.001 * i : 1.0 + 0.001 * i,
                   rng.uniform(-1.0, 1.0)};
    d.add(f, i < 50 ? 0 : 1);
  }
  DecisionTree tree;
  tree.fit(d);
  const std::vector<double> importance = tree.feature_importance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[0], 0.9);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(DecisionTree, FeatureImportanceOfStumpIsZero) {
  data::Dataset d(1);
  const double f = 1.0;
  for (int i = 0; i < 10; ++i) d.add(&f, 0);
  DecisionTree tree;
  tree.fit(d);
  for (double v : tree.feature_importance()) EXPECT_EQ(v, 0.0);
}

TEST(DecisionTree, TextDumpNamesFeaturesAndLeaves) {
  math::Rng rng(23);
  DecisionTree tree;
  tree.fit(axis_separable(30, rng));
  const char* names[2] = {"alpha", "beta"};
  const std::string text = tree.to_text(names);
  EXPECT_NE(text.find("if alpha <= "), std::string::npos);
  EXPECT_NE(text.find("leaf: class 0"), std::string::npos);
  EXPECT_NE(text.find("leaf: class 1"), std::string::npos);
  // Index form works too.
  EXPECT_NE(tree.to_text().find("if f[0] <= "), std::string::npos);
}

TEST(DecisionTree, SaveLoadRoundTrip) {
  const char* path = "/tmp/kml_tree_roundtrip.kmlt";
  math::Rng rng(17);
  const data::Dataset d = axis_separable(50, rng);
  DecisionTree tree;
  tree.fit(d);
  ASSERT_TRUE(tree.save(path));

  DecisionTree loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (int i = 0; i < d.size(); ++i) {
    EXPECT_EQ(loaded.predict(d.features(i), 2),
              tree.predict(d.features(i), 2));
  }
  std::remove(path);
}

TEST(DecisionTree, LoadRejectsGarbage) {
  const char* path = "/tmp/kml_tree_garbage.kmlt";
  FILE* f = fopen(path, "wb");
  fwrite("garbage", 1, 7, f);
  fclose(f);
  DecisionTree tree;
  EXPECT_FALSE(tree.load(path));
  std::remove(path);
  EXPECT_FALSE(tree.load("/tmp/kml_tree_nonexistent.kmlt"));
}

}  // namespace
}  // namespace kml::dtree
