// Tests for src/matrix: construction, dtype genericity, linalg kernels,
// and the FPU-guard accounting contract.
#include "matrix/linalg.h"
#include "matrix/matrix.h"

#include <gtest/gtest.h>

namespace kml::matrix {
namespace {

TEST(Mat, ConstructionZeroInitializes) {
  MatD m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(m.at(i, j), 0.0);
  }
}

TEST(Mat, EmptyMatrix) {
  MatD m;
  EXPECT_TRUE(m.empty());
  MatD z(0, 5);
  EXPECT_TRUE(z.empty());
}

TEST(Mat, CopyIsDeep) {
  MatD a(2, 2);
  a.at(0, 0) = 1.0;
  MatD b = a;
  b.at(0, 0) = 9.0;
  EXPECT_EQ(a.at(0, 0), 1.0);
  EXPECT_EQ(b.at(0, 0), 9.0);
}

TEST(Mat, MoveStealsStorage) {
  MatD a(4, 4);
  a.at(3, 3) = 5.0;
  const double* ptr = a.data();
  MatD b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.at(3, 3), 5.0);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing it
}

TEST(Mat, AllocationIsAccounted) {
  const std::uint64_t before = kml_mem_usage();
  {
    MatD m(100, 100);
    EXPECT_GE(kml_mem_usage(), before + 100 * 100 * sizeof(double));
  }
  EXPECT_EQ(kml_mem_usage(), before);
}

TEST(Mat, ApplyElementwise) {
  MatD m = MatD::filled(2, 2, 3.0);
  m.apply([](double x) { return x * x; });
  EXPECT_EQ(m.at(1, 1), 9.0);
}

TEST(Matmul, KnownProduct) {
  MatD a(2, 3);
  MatD b(3, 2);
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a.at(i, j) = v++;
  v = 1;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) b.at(i, j) = v++;
  MatD c(2, 2);
  matmul(a, b, c);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_EQ(c.at(0, 0), 22.0);
  EXPECT_EQ(c.at(0, 1), 28.0);
  EXPECT_EQ(c.at(1, 0), 49.0);
  EXPECT_EQ(c.at(1, 1), 64.0);
}

TEST(Matmul, IdentityIsNeutral) {
  math::Rng rng(3);
  MatD a = random_uniform(5, 5, -1.0, 1.0, rng);
  MatD eye(5, 5);
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0;
  MatD out(5, 5);
  matmul(a, eye, out);
  EXPECT_TRUE(approx_equal(a, out, 1e-12));
}

TEST(Matmul, TransposedVariantsAgree) {
  math::Rng rng(5);
  MatD a = random_uniform(4, 6, -2.0, 2.0, rng);
  MatD b = random_uniform(6, 3, -2.0, 2.0, rng);

  MatD ref(4, 3);
  matmul(a, b, ref);

  // a * b == a * (b^T)^T  via matmul_bt
  MatD bt = transpose(b);
  MatD out1(4, 3);
  matmul_bt(a, bt, out1);
  EXPECT_TRUE(approx_equal(ref, out1, 1e-12));

  // a * b == (a^T)^T * b  via matmul_at
  MatD at = transpose(a);
  MatD out2(4, 3);
  matmul_at(at, b, out2);
  EXPECT_TRUE(approx_equal(ref, out2, 1e-12));
}

TEST(Linalg, AddSubHadamard) {
  MatD a = MatD::filled(2, 2, 5.0);
  MatD b = MatD::filled(2, 2, 2.0);
  MatD out(2, 2);
  add(a, b, out);
  EXPECT_EQ(out.at(0, 0), 7.0);
  sub(a, b, out);
  EXPECT_EQ(out.at(0, 0), 3.0);
  hadamard(a, b, out);
  EXPECT_EQ(out.at(0, 0), 10.0);
}

TEST(Linalg, AxpyAndScale) {
  MatD a = MatD::filled(2, 2, 1.0);
  MatD b = MatD::filled(2, 2, 4.0);
  axpy(0.5, b, a);
  EXPECT_EQ(a.at(1, 1), 3.0);
  scale(a, 2.0);
  EXPECT_EQ(a.at(1, 1), 6.0);
}

TEST(Linalg, BiasRowBroadcast) {
  MatD a = MatD::filled(3, 2, 1.0);
  MatD bias(1, 2);
  bias.at(0, 0) = 10.0;
  bias.at(0, 1) = 20.0;
  add_bias_row(a, bias);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.at(i, 0), 11.0);
    EXPECT_EQ(a.at(i, 1), 21.0);
  }
}

TEST(Linalg, ColSums) {
  MatD a(2, 3);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a.at(i, j) = i + 1;
  MatD out(1, 3);
  col_sums(a, out);
  for (int j = 0; j < 3; ++j) EXPECT_EQ(out.at(0, j), 3.0);
}

TEST(Linalg, SoftmaxRowsAndArgmax) {
  MatD logits(2, 3);
  logits.at(0, 0) = 1.0;
  logits.at(0, 1) = 5.0;
  logits.at(0, 2) = 2.0;
  logits.at(1, 0) = 7.0;
  logits.at(1, 1) = 0.0;
  logits.at(1, 2) = -3.0;
  MatD probs(2, 3);
  softmax_rows(logits, probs);
  for (int i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 3; ++j) sum += probs.at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  const MatI pred = argmax_rows(probs);
  EXPECT_EQ(pred.at(0, 0), 1);
  EXPECT_EQ(pred.at(1, 0), 0);
}

TEST(Linalg, FrobeniusNorm) {
  MatD a(1, 2);
  a.at(0, 0) = 3.0;
  a.at(0, 1) = 4.0;
  EXPECT_NEAR(frobenius_norm(a), 5.0, 1e-12);
}

TEST(Linalg, XavierInitWithinLimit) {
  math::Rng rng(21);
  MatD w = xavier_uniform(16, 4, rng);
  const double limit = math::kml_sqrt(6.0 / 20.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(math::kml_abs(w.data()[i]), limit);
  }
}

TEST(Dtypes, IntMatmul) {
  MatI a = MatI::filled(2, 2, 2);
  MatI b = MatI::filled(2, 2, 3);
  MatI c(2, 2);
  matmul(a, b, c);
  EXPECT_EQ(c.at(0, 0), 12);
}

TEST(Dtypes, FixedMatmulApproximatesDouble) {
  math::Rng rng(33);
  MatD a = random_uniform(3, 3, -2.0, 2.0, rng);
  MatD b = random_uniform(3, 3, -2.0, 2.0, rng);
  MatD ref(3, 3);
  matmul(a, b, ref);

  MatX xa = to_fixed(a);
  MatX xb = to_fixed(b);
  MatX xc(3, 3);
  matmul(xa, xb, xc);
  EXPECT_TRUE(approx_equal(ref, fixed_to_double(xc), 1e-3));
}

TEST(Dtypes, FloatRoundTrip) {
  math::Rng rng(34);
  MatD a = random_uniform(4, 4, -1.0, 1.0, rng);
  EXPECT_TRUE(approx_equal(a, to_double(to_float(a)), 1e-6));
}

TEST(Mat, EnsureShapeReusesCapacity) {
  MatD m(8, 8);
  const double* ptr = m.data();
  EXPECT_EQ(m.capacity(), 64u);

  // Shrinking and reshaping within capacity must not reallocate.
  m.ensure_shape(2, 3);
  EXPECT_EQ(m.data(), ptr);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.capacity(), 64u);
  m.ensure_shape(64, 1);
  EXPECT_EQ(m.data(), ptr);

  // Growth reallocates and zero-initializes (fresh Mat semantics).
  m.ensure_shape(9, 9);
  EXPECT_EQ(m.capacity(), 81u);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0);
}

TEST(Mat, EnsureShapeNoAllocWithinCapacity) {
  MatD m(10, 10);
  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 1; i <= 10; ++i) m.ensure_shape(i, 10);
  m.ensure_shape(10, 10);
  EXPECT_EQ(kml_mem_stats().total_allocs, before);
}

TEST(Mat, CopyFromReusesStorageWhenShapeMatches) {
  MatD src(3, 4);
  for (std::size_t i = 0; i < src.size(); ++i) src.data()[i] = 0.5 * i;
  MatD dst(3, 4);
  const double* ptr = dst.data();
  const std::uint64_t before = kml_mem_stats().total_allocs;
  dst.copy_from(src);
  EXPECT_EQ(kml_mem_stats().total_allocs, before);
  EXPECT_EQ(dst.data(), ptr);
  EXPECT_TRUE(approx_equal(src, dst, 0.0));

  dst.copy_from(dst);  // self-copy is a no-op
  EXPECT_EQ(dst.data(), ptr);
}

// The register-tiled kernels must produce bit-for-bit the same values as
// the reference i-k-j loops: same additions, same order, per output
// element. Exercised over ragged shapes (row/column vectors, dimensions
// that are not multiples of the tile) so every edge-tile path runs.
TEST(Matmul, BlockedMatchesNaiveBitForBit) {
  const int shapes[][3] = {{1, 1, 1},  {1, 8, 1},   {8, 1, 8},   {1, 64, 7},
                           {5, 7, 9},  {3, 3, 3},   {17, 13, 11}, {4, 8, 4},
                           {8, 4, 8},  {64, 64, 64}, {2, 100, 3}, {33, 5, 65}};
  math::Rng rng(77);
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    MatD a = random_uniform(m, k, -3.0, 3.0, rng);
    MatD b = random_uniform(k, n, -3.0, 3.0, rng);
    MatD blocked(m, n);
    MatD naive(m, n);
    matmul(a, b, blocked);
    matmul_naive(a, b, naive);
    EXPECT_EQ(max_abs_diff(blocked, naive), 0.0)
        << "matmul mismatch at " << m << "x" << k << "x" << n;

    MatD bt = transpose(b);
    MatD blocked_bt(m, n);
    MatD naive_bt(m, n);
    matmul_bt(a, bt, blocked_bt);
    matmul_bt_naive(a, bt, naive_bt);
    EXPECT_EQ(max_abs_diff(blocked_bt, naive_bt), 0.0)
        << "matmul_bt mismatch at " << m << "x" << k << "x" << n;

    MatD at = transpose(a);
    MatD blocked_at(m, n);
    MatD naive_at(m, n);
    matmul_at(at, b, blocked_at);
    matmul_at_naive(at, b, naive_at);
    EXPECT_EQ(max_abs_diff(blocked_at, naive_at), 0.0)
        << "matmul_at mismatch at " << m << "x" << k << "x" << n;
  }
}

TEST(Matmul, BlockedMatchesNaiveFixedPoint) {
  math::Rng rng(78);
  MatX a = to_fixed(random_uniform(7, 9, -1.0, 1.0, rng));
  MatX b = to_fixed(random_uniform(9, 5, -1.0, 1.0, rng));
  MatX blocked(7, 5);
  MatX naive(7, 5);
  matmul(a, b, blocked);
  matmul_naive(a, b, naive);
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(blocked.data()[i].raw(), naive.data()[i].raw());
  }
}

TEST(FpuGuards, OneRegionPerFpOperation) {
  kml_fpu_reset_stats();
  math::Rng rng(55);
  MatD a = random_uniform(8, 8, -1.0, 1.0, rng);  // 1 region
  MatD b = random_uniform(8, 8, -1.0, 1.0, rng);  // 1 region
  MatD c(8, 8);
  matmul(a, b, c);  // exactly 1 region, not 8*8*8
  EXPECT_EQ(kml_fpu_region_count(), 3u);
}

TEST(FpuGuards, IntegerOpsDoNotTouchFpu) {
  kml_fpu_reset_stats();
  MatI a = MatI::filled(8, 8, 1);
  MatI b = MatI::filled(8, 8, 2);
  MatI c(8, 8);
  matmul(a, b, c);
  add(a, b, c);
  EXPECT_EQ(kml_fpu_region_count(), 0u);
}

}  // namespace
}  // namespace kml::matrix
