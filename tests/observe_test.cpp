// Tests for src/observe: counter/gauge/histogram semantics, the fixed-point
// log-scale bucketing math (exact inverse, edge values, overflow), integer
// percentile extraction, registry find-or-create and overflow behaviour,
// span timers, and the snapshot/export formats.
//
// The registry is process-global; every test namespaces its metric names
// and reads deltas rather than absolute values where another test (or the
// instrumented library code itself) could plausibly share a name.
#include "observe/metrics.h"

#include "portability/thread.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace kml::observe {
namespace {

#if !KML_OBSERVE_ENABLED

// Compiled-out build: the stubs must report disabled and produce an empty
// (but well-formed) export so consumers stay link- and logic-compatible.
TEST(Disabled, StubsReportDisabledAndExportEmpty) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_FALSE(enabled());  // compile-time switch wins
  counter_add("test.disabled.counter", 3);
  KML_COUNTER_INC("test.disabled.counter");
  const MetricsSnapshot snap = snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_FALSE(format_json(snap).empty());
}

#else  // KML_OBSERVE_ENABLED

TEST(Counter, AddAndReset) {
  Counter& c = get_counter("test.counter.basic");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, RegistryReturnsSameSlotForSameName) {
  Counter& a = get_counter("test.counter.identity");
  Counter& b = get_counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(find_counter("test.counter.identity"), &a);
  EXPECT_EQ(find_counter("test.counter.no-such-name"), nullptr);
}

TEST(Gauge, LastWriterWins) {
  Gauge& g = get_gauge("test.gauge.basic");
  g.set(7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

// --- histogram bucketing math ------------------------------------------------

TEST(HistogramMath, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(static_cast<unsigned>(v)), v);
  }
}

TEST(HistogramMath, LowerBoundIsExactInverse) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // just below it to the previous bucket.
  for (unsigned idx = 0; idx < Histogram::kNumBuckets; ++idx) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(idx);
    EXPECT_EQ(Histogram::bucket_index(lo), idx) << "lower bound of " << idx;
    if (lo > 0) {
      EXPECT_EQ(Histogram::bucket_index(lo - 1), idx - 1)
          << "value below bucket " << idx;
    }
  }
}

TEST(HistogramMath, IndexIsMonotonicAcrossOctaves) {
  unsigned last = 0;
  for (unsigned shift = 0; shift < 64; ++shift) {
    const std::uint64_t v = 1ull << shift;
    const unsigned idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, last);
    last = idx;
  }
}

TEST(HistogramMath, MaxValueLandsInLastBucket) {
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramMath, RelativeErrorBoundedBySubBucketWidth) {
  // Log-scale with 2^kSubBits sub-buckets: the lower bound under-reports a
  // recorded value by at most 1/2^kSubBits of it (25% with kSubBits=2).
  for (std::uint64_t v : {5ull, 100ull, 12'345ull, 1'000'000'007ull,
                          (1ull << 40) + 17}) {
    const std::uint64_t lo =
        Histogram::bucket_lower_bound(Histogram::bucket_index(v));
    EXPECT_LE(lo, v);
    EXPECT_GE(lo, v - v / Histogram::kSubBuckets);
  }
}

// --- histogram recording -----------------------------------------------------

TEST(Histogram, RecordsEdgeValues) {
  Histogram& h = get_histogram("test.hist.edges");
  h.reset();
  h.record(0);
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());
  // sum wraps modulo 2^64 by design (relaxed fetch_add) — count and max are
  // the trustworthy aggregates at the extremes.
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(h.percentile(100)),
            Histogram::kNumBuckets - 1);
}

TEST(Histogram, PercentilesWalkBucketCounts) {
  Histogram& h = get_histogram("test.hist.pcts");
  h.reset();
  // 90 fast ops at ~1000, 10 slow ops at ~1e6: p50/p90 must sit in the fast
  // bucket, p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(50),
            Histogram::bucket_lower_bound(Histogram::bucket_index(1000)));
  EXPECT_EQ(h.percentile(90),
            Histogram::bucket_lower_bound(Histogram::bucket_index(1000)));
  EXPECT_EQ(h.percentile(99),
            Histogram::bucket_lower_bound(Histogram::bucket_index(1'000'000)));
  EXPECT_EQ(h.max(), 1'000'000u);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram& h = get_histogram("test.hist.empty");
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
  EXPECT_EQ(h.percentile(1'000'000), 0u);  // clamp + empty together
}

TEST(Histogram, PercentileZeroIsSmallestRecordedBucket) {
  // Regression: pct=0 used to compute rank 0 and report the first (empty)
  // bucket — i.e. 0 — for data that never contained a zero. The rank
  // clamps to 1, so p0 is the smallest *recorded* value's bucket.
  Histogram& h = get_histogram("test.hist.p0");
  h.reset();
  for (int i = 0; i < 5; ++i) h.record(4096);
  EXPECT_EQ(h.percentile(0),
            Histogram::bucket_lower_bound(Histogram::bucket_index(4096)));
}

TEST(Histogram, PercentileAbove100ClampsTo100) {
  Histogram& h = get_histogram("test.hist.clamp");
  h.reset();
  h.record(10);
  h.record(1'000'000);
  EXPECT_EQ(h.percentile(101), h.percentile(100));
  EXPECT_EQ(h.percentile(std::numeric_limits<unsigned>::max()),
            h.percentile(100));
}

TEST(Histogram, OverflowBucketIsCountedAndExported) {
  Histogram& h = get_histogram("test.hist.ovfl");
  h.reset();
  EXPECT_EQ(h.overflow_count(), 0u);
  h.record(1000);  // ordinary value: not an overflow
  EXPECT_EQ(h.overflow_count(), 0u);
  h.record(std::numeric_limits<std::uint64_t>::max());
  h.record(std::numeric_limits<std::uint64_t>::max() - 1);
  EXPECT_EQ(h.overflow_count(), 2u);

  // The saturation count rides along in the snapshot rows and both export
  // formats (the "ovfl" table column / "overflow" JSON field).
  const MetricsSnapshot snap = snapshot();
  bool found = false;
  for (const auto& row : snap.histograms) {
    if (row.name == std::string("test.hist.ovfl")) {
      found = true;
      EXPECT_EQ(row.overflow, 2u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(format_json(snap).find("\"overflow\":"), std::string::npos);
  EXPECT_NE(format_table(snap).find("ovfl"), std::string::npos);
}

// --- static percentile walk & slot access (time-series building blocks) ------

TEST(HistogramMath, PercentileFromCountsMatchesInstanceWalk) {
  // The retention ring merges window bucket deltas and runs the percentile
  // walk over the merged array. Same data → bit-identical answers to the
  // live histogram, by construction: both call percentile_from_counts.
  Histogram& h = get_histogram("test.hist.staticwalk");
  h.reset();
  std::uint64_t counts[Histogram::kNumBuckets] = {};
  const std::uint64_t values[] = {3, 900, 900, 4096, 70'000, 70'000, 70'000,
                                  1'000'000'000};
  for (const std::uint64_t v : values) {
    h.record(v);
    counts[Histogram::bucket_index(v)] += 1;
  }
  for (const unsigned pct : {0u, 1u, 25u, 50u, 90u, 99u, 100u}) {
    EXPECT_EQ(Histogram::percentile_from_counts(counts, pct),
              h.percentile(pct))
        << "pct=" << pct;
  }
}

TEST(HistogramMath, PercentileFromCountsEdges) {
  std::uint64_t counts[Histogram::kNumBuckets] = {};
  // Empty: every percentile is 0.
  EXPECT_EQ(Histogram::percentile_from_counts(counts, 0), 0u);
  EXPECT_EQ(Histogram::percentile_from_counts(counts, 100), 0u);
  // One record in the saturation bucket: p0 == p100 == its lower bound,
  // and pct>100 clamps instead of walking past the array.
  counts[Histogram::kNumBuckets - 1] = 1;
  const std::uint64_t top =
      Histogram::bucket_lower_bound(Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::percentile_from_counts(counts, 0), top);
  EXPECT_EQ(Histogram::percentile_from_counts(counts, 100), top);
  EXPECT_EQ(Histogram::percentile_from_counts(counts, 100'000), top);
}

TEST(Histogram, BucketCountExposesRawBuckets) {
  // bucket_count is what the sampler walks; it must mirror record()
  // placement exactly and fail closed (0) out of range.
  Histogram& h = get_histogram("test.hist.buckets");
  h.reset();
  h.record(1000);
  h.record(1000);
  h.record(std::numeric_limits<std::uint64_t>::max());  // saturation bucket
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(1000)), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets), 0u);
  EXPECT_EQ(h.bucket_count(~0u), 0u);
}

TEST(Registry, IterationApiEnumeratesLiveSlots) {
  // The sampler and the Prometheus renderer read the pools positionally;
  // the slot APIs must agree with name-based lookup on both identity and
  // value, and stay in bounds.
  Counter& c = get_counter("test.iter.counter");
  c.reset();
  c.add(41);
  Gauge& g = get_gauge("test.iter.gauge");
  g.set(-7);
  Histogram& h = get_histogram("test.iter.hist");
  h.reset();
  h.record(512);

  bool saw_counter = false;
  for (std::size_t i = 0; i < counter_slots(); ++i) {
    if (std::string(counter_slot_name(i)) == "test.iter.counter") {
      saw_counter = true;
      EXPECT_EQ(counter_slot_value(i), 41u);
    }
  }
  EXPECT_TRUE(saw_counter);

  bool saw_gauge = false;
  for (std::size_t i = 0; i < gauge_slots(); ++i) {
    if (std::string(gauge_slot_name(i)) == "test.iter.gauge") {
      saw_gauge = true;
      EXPECT_EQ(gauge_slot_value(i), -7);
    }
  }
  EXPECT_TRUE(saw_gauge);

  bool saw_hist = false;
  for (std::size_t i = 0; i < histogram_slots(); ++i) {
    if (std::string(histogram_slot_name(i)) == "test.iter.hist") {
      saw_hist = true;
      EXPECT_EQ(histogram_slot(i), &h);  // slots are stable identities
    }
  }
  EXPECT_TRUE(saw_hist);
}

// --- runtime toggle & spans --------------------------------------------------

TEST(Toggle, DisabledStopsMacroRecording) {
  Counter& c = get_counter("test.toggle.counter");
  const std::uint64_t before = c.value();
  set_enabled(false);
  KML_COUNTER_INC("test.toggle.counter");
  counter_add("test.toggle.counter");
  set_enabled(true);
  EXPECT_EQ(c.value(), before);
  KML_COUNTER_INC("test.toggle.counter");
  EXPECT_EQ(c.value(), before + 1);
}

TEST(Span, RecordsElapsedNanoseconds) {
  Histogram& h = get_histogram("test.span.hist");
  h.reset();
  {
    KML_SPAN_NS("test.span.hist");
    kml_sleep_ms(2);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 1'000'000u);  // slept >= 2 ms; allow coarse clocks
}

// --- snapshot & export -------------------------------------------------------

TEST(Snapshot, ExportsRegisteredMetricsInBothFormats) {
  get_counter("test.snap.counter").add(5);
  get_gauge("test.snap.gauge").set(-17);
  Histogram& h = get_histogram("test.snap.hist");
  h.record(4096);

  const MetricsSnapshot snap = snapshot();
  const std::string table = format_table(snap);
  const std::string json = format_json(snap);

  EXPECT_NE(table.find("test.snap.counter"), std::string::npos);
  EXPECT_NE(table.find("test.snap.gauge"), std::string::npos);
  EXPECT_NE(table.find("test.snap.hist"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snap.gauge\":-17"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap.hist\""), std::string::npos);
}

TEST(Snapshot, ResetAllZeroesValuesButKeepsRegistrations) {
  Counter& c = get_counter("test.reset.counter");
  Histogram& h = get_histogram("test.reset.hist");
  c.add(9);
  h.record(123);
  reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(find_counter("test.reset.counter"), &c);  // registration survives
}

// --- registry overflow -------------------------------------------------------
// Declared last: flooding the pool is irreversible within a process, so this
// must not run before the tests that register real gauges.

TEST(RegistryOverflow, GaugePoolExhaustionDegradesToSharedSlot) {
  // Exhaust the gauge pool with throwaway names. Registration must never
  // crash or return null — past capacity every name shares one overflow
  // slot (attribution degrades, increments survive).
  char name[64];
  Gauge* last = nullptr;
  for (std::size_t i = 0; i < kMaxGauges + 8; ++i) {
    std::snprintf(name, sizeof(name), "test.gauge.flood.%zu", i);
    last = &get_gauge(name);
    last->set(static_cast<std::int64_t>(i));
  }
  ASSERT_NE(last, nullptr);
  Gauge& overflow = get_gauge("test.gauge.flood.another");
  EXPECT_EQ(&overflow, last);  // both past capacity -> same shared slot
}

TEST(RegistryOverflow, OverflowCountSurfacesAsSyntheticCounter) {
  // Flood the counter pool past capacity, then check the loss is visible:
  // registry_overflow_count() counts the refused registrations, and the
  // snapshot surfaces them as the synthetic "observe.registry.overflow"
  // counter so tool_metrics_dump (and any registry consumer) can alarm on
  // silently-dropped metrics.
  char name[64];
  for (std::size_t i = 0; i < kMaxCounters + 4; ++i) {
    std::snprintf(name, sizeof(name), "test.counter.flood.%zu", i);
    get_counter(name).add(1);
  }
  EXPECT_GE(registry_overflow_count(), 4u);

  const MetricsSnapshot snap = snapshot();
  bool found = false;
  for (const auto& row : snap.counters) {
    if (row.name == kMetricRegistryOverflow) {
      found = true;
      EXPECT_GE(row.value, 4u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(format_json(snap).find("\"observe.registry.overflow\""),
            std::string::npos);
}

#endif  // KML_OBSERVE_ENABLED

}  // namespace
}  // namespace kml::observe
