// End-to-end integration: the paper's complete deployment story in one
// test — collect traces in "user space", train, save the KML model file,
// load it back through the C API (the kernel-module boundary), attach the
// tuner, and beat vanilla readahead on a workload/device combination that
// was never in the training set.
#include "capi/kml_api.h"
#include "nn/quantized.h"
#include "nn/serialize.h"
#include "readahead/model.h"
#include "readahead/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace kml {
namespace {

readahead::ExperimentConfig small_experiment(sim::DeviceConfig device) {
  readahead::ExperimentConfig config;
  config.device = device;
  config.num_keys = 150000;
  config.cache_pages = 2048;
  return config;
}

TEST(Integration, FullPaperPipelineEndToEnd) {
  const char* model_path = "/tmp/kml_integration_model.kml";

  // 1. User-space development: collect labeled traces on NVMe.
  readahead::TraceGenConfig trace_config;
  trace_config.base = small_experiment(sim::nvme_config());
  trace_config.ra_values_kb = {8, 64, 512};
  trace_config.seconds_per_run = 5;
  const data::Dataset dataset =
      readahead::collect_training_data(trace_config);
  ASSERT_GT(dataset.size(), 30);

  // 2. Train and validate.
  readahead::ModelConfig model_config;
  model_config.epochs = 200;
  nn::Network net = readahead::train_readahead_nn(dataset, model_config);
  ASSERT_GT(readahead::evaluate_nn(net, dataset), 0.85);

  // 3. Save the KML model file (the deployment artifact).
  ASSERT_TRUE(nn::save_model(net, model_path));

  // 4. "Kernel module" loads it through the C API.
  kml_model* deployed = kml_model_load(model_path);
  ASSERT_NE(deployed, nullptr);
  ASSERT_EQ(kml_model_num_features(deployed),
            readahead::kNumSelectedFeatures);
  ASSERT_EQ(kml_model_num_classes(deployed),
            workloads::kNumTrainingClasses);
  ASSERT_LT(kml_model_weight_bytes(deployed), 8192u);

  const readahead::ReadaheadTuner::PredictFn predictor =
      [deployed](const readahead::FeatureVector& f) {
        return kml_model_infer(deployed, f.data(),
                               readahead::kNumSelectedFeatures);
      };

  // 5. Closed loop on SATA SSD — a device the model never trained on —
  //    running readrandom against vanilla.
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = {1024, 8, 512, 8};
  const readahead::EvalOutcome outcome = readahead::evaluate_closed_loop(
      small_experiment(sim::sata_ssd_config()),
      workloads::WorkloadType::kReadRandom, predictor, tuner_config,
      /*seconds=*/6);

  EXPECT_GT(outcome.vanilla_ops_per_sec, 0.0);
  EXPECT_GT(outcome.speedup, 1.3) << "deployed model failed to transfer";
  EXPECT_EQ(outcome.dropped_records, 0u);

  kml_model_destroy(deployed);
  std::remove(model_path);
}

TEST(Integration, QuantizedDeploymentAgreesWithDouble) {
  // The FPU-free variant of the same flow: quantize the trained model,
  // round-trip it through the KMLQ file, and check the closed loop still
  // wins with fixed-point inference.
  readahead::TraceGenConfig trace_config;
  trace_config.base = small_experiment(sim::nvme_config());
  trace_config.ra_values_kb = {8, 128};
  trace_config.seconds_per_run = 4;
  const data::Dataset dataset =
      readahead::collect_training_data(trace_config);
  readahead::ModelConfig model_config;
  model_config.epochs = 150;
  nn::Network net = readahead::train_readahead_nn(dataset, model_config);

  const char* qpath = "/tmp/kml_integration_model.kmlq";
  nn::QuantizedNetwork q;
  ASSERT_TRUE(nn::QuantizedNetwork::quantize(net, q));
  ASSERT_TRUE(q.save(qpath));
  nn::QuantizedNetwork deployed;
  ASSERT_TRUE(deployed.load(qpath));

  // Agreement with the double path on the training windows.
  int agree = 0;
  for (int i = 0; i < dataset.size(); ++i) {
    std::vector<double> z(dataset.features(i),
                          dataset.features(i) + dataset.num_features());
    net.normalizer().transform_row(z.data(), dataset.num_features());
    matrix::MatD x(1, dataset.num_features());
    for (int j = 0; j < dataset.num_features(); ++j) {
      x.at(0, j) = z[static_cast<std::size_t>(j)];
    }
    const int d_pred = net.predict_classes(x).at(0, 0);
    if (deployed.infer_class(dataset.features(i),
                             dataset.num_features()) == d_pred) {
      ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / dataset.size(), 0.85);
  std::remove(qpath);
}

}  // namespace
}  // namespace kml
