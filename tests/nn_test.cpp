// Tests for src/nn: layer forward/backward correctness (numerical gradient
// checking), losses, SGD dynamics, end-to-end training on separable data,
// and the KML model file format.
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

namespace kml::nn {
namespace {

// Numerical gradient of `loss(net(x), y)` w.r.t. one parameter entry.
double numeric_param_grad(Network& net, Loss& loss, const matrix::MatD& x,
                          const matrix::MatD& y, matrix::MatD* param,
                          std::size_t flat_index, double eps = 1e-6) {
  double& w = param->data()[flat_index];
  const double saved = w;
  w = saved + eps;
  const double up = loss.forward(net.forward(x), y);
  w = saved - eps;
  const double down = loss.forward(net.forward(x), y);
  w = saved;
  return (up - down) / (2.0 * eps);
}

TEST(Linear, ForwardComputesAffine) {
  Linear lin(2, 2);
  lin.weights().at(0, 0) = 1.0;
  lin.weights().at(0, 1) = 2.0;
  lin.weights().at(1, 0) = 3.0;
  lin.weights().at(1, 1) = 4.0;
  lin.bias().at(0, 0) = 10.0;
  lin.bias().at(0, 1) = 20.0;

  matrix::MatD x(1, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = 1.0;
  const matrix::MatD out = lin.forward(x);
  EXPECT_EQ(out.at(0, 0), 14.0);  // 1+3+10
  EXPECT_EQ(out.at(0, 1), 26.0);  // 2+4+20
}

TEST(Linear, GradCheckAgainstNumericalDerivative) {
  math::Rng rng(42);
  Network net;
  net.add(std::make_unique<Linear>(3, 4, rng))
      .add(std::make_unique<Sigmoid>())
      .add(std::make_unique<Linear>(4, 2, rng));
  MSELoss loss;

  matrix::MatD x = matrix::random_uniform(5, 3, -1.0, 1.0, rng);
  matrix::MatD y = matrix::random_uniform(5, 2, -1.0, 1.0, rng);

  // Analytic gradients.
  for (auto& p : net.params()) p.grad->fill(0.0);
  loss.forward(net.forward(x), y);
  matrix::MatD grad = loss.backward();
  for (int i = net.num_layers() - 1; i >= 0; --i) {
    grad = net.layer(i).backward(grad);
  }

  // Compare a spread of parameter entries in every tensor.
  for (auto& p : net.params()) {
    for (std::size_t k = 0; k < p.value->size();
         k += p.value->size() / 3 + 1) {
      const double numeric = numeric_param_grad(net, loss, x, y, p.value, k);
      EXPECT_NEAR(p.grad->data()[k], numeric, 1e-5)
          << "param entry " << k;
    }
  }
}

TEST(Activations, SigmoidForwardBackward) {
  Sigmoid s;
  matrix::MatD x(1, 3);
  x.at(0, 0) = 0.0;
  x.at(0, 1) = 100.0;
  x.at(0, 2) = -100.0;
  const matrix::MatD out = s.forward(x);
  EXPECT_NEAR(out.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(out.at(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(out.at(0, 2), 0.0, 1e-12);

  matrix::MatD g = matrix::MatD::filled(1, 3, 1.0);
  const matrix::MatD gin = s.backward(g);
  EXPECT_NEAR(gin.at(0, 0), 0.25, 1e-12);  // sigmoid'(0)
  EXPECT_NEAR(gin.at(0, 1), 0.0, 1e-9);    // saturated
}

TEST(Activations, ReLUKillsNegativeGradients) {
  ReLU r;
  matrix::MatD x(1, 2);
  x.at(0, 0) = -3.0;
  x.at(0, 1) = 2.0;
  const matrix::MatD out = r.forward(x);
  EXPECT_EQ(out.at(0, 0), 0.0);
  EXPECT_EQ(out.at(0, 1), 2.0);
  matrix::MatD g = matrix::MatD::filled(1, 2, 7.0);
  const matrix::MatD gin = r.backward(g);
  EXPECT_EQ(gin.at(0, 0), 0.0);
  EXPECT_EQ(gin.at(0, 1), 7.0);
}

TEST(Activations, TanhGradCheck) {
  Tanh t;
  matrix::MatD x(1, 1);
  x.at(0, 0) = 0.7;
  t.forward(x);
  matrix::MatD g = matrix::MatD::filled(1, 1, 1.0);
  const matrix::MatD gin = t.backward(g);
  const double y = math::kml_tanh(0.7);
  EXPECT_NEAR(gin.at(0, 0), 1.0 - y * y, 1e-10);
}

TEST(Loss, CrossEntropyOfUniformLogitsIsLogC) {
  CrossEntropyLoss loss;
  matrix::MatD logits = matrix::MatD::filled(4, 3, 0.0);
  matrix::MatD target(4, 3);
  for (int i = 0; i < 4; ++i) target.at(i, i % 3) = 1.0;
  EXPECT_NEAR(loss.forward(logits, target), math::kml_log(3.0), 1e-9);
}

TEST(Loss, CrossEntropyGradientIsSoftmaxMinusTarget) {
  CrossEntropyLoss loss;
  matrix::MatD logits(1, 2);
  logits.at(0, 0) = 2.0;
  logits.at(0, 1) = 0.0;
  matrix::MatD target(1, 2);
  target.at(0, 0) = 1.0;
  loss.forward(logits, target);
  const matrix::MatD g = loss.backward();
  const double p0 = math::kml_sigmoid(2.0);  // softmax of 2 classes
  EXPECT_NEAR(g.at(0, 0), p0 - 1.0, 1e-9);
  EXPECT_NEAR(g.at(0, 1), 1.0 - p0, 1e-9);
}

TEST(Loss, CrossEntropyGradChecksNumerically) {
  math::Rng rng(7);
  CrossEntropyLoss loss;
  matrix::MatD logits = matrix::random_uniform(3, 4, -2.0, 2.0, rng);
  matrix::MatD target(3, 4);
  for (int i = 0; i < 3; ++i) target.at(i, (i * 2) % 4) = 1.0;

  loss.forward(logits, target);
  const matrix::MatD g = loss.backward();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double eps = 1e-6;
      const double saved = logits.at(i, j);
      logits.at(i, j) = saved + eps;
      const double up = loss.forward(logits, target);
      logits.at(i, j) = saved - eps;
      const double down = loss.forward(logits, target);
      logits.at(i, j) = saved;
      EXPECT_NEAR(g.at(i, j), (up - down) / (2 * eps), 1e-6);
    }
  }
}

TEST(Loss, MSEValueAndGradient) {
  MSELoss loss;
  matrix::MatD pred = matrix::MatD::filled(1, 2, 2.0);
  matrix::MatD target = matrix::MatD::filled(1, 2, 0.0);
  EXPECT_NEAR(loss.forward(pred, target), 4.0, 1e-12);
  const matrix::MatD g = loss.backward();
  EXPECT_NEAR(g.at(0, 0), 2.0, 1e-12);  // 2*(2-0)/2 elements
}

TEST(Sgd, StepMovesAgainstGradient) {
  matrix::MatD w = matrix::MatD::filled(1, 1, 1.0);
  matrix::MatD g = matrix::MatD::filled(1, 1, 0.5);
  SGD opt(0.1, 0.0);
  opt.attach({{&w, &g}});
  opt.step();
  EXPECT_NEAR(w.at(0, 0), 0.95, 1e-12);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  matrix::MatD w = matrix::MatD::filled(1, 1, 0.0);
  matrix::MatD g = matrix::MatD::filled(1, 1, 1.0);
  SGD opt(0.1, 0.9);
  opt.attach({{&w, &g}});
  opt.step();  // v=-0.1, w=-0.1
  opt.step();  // v=-0.19, w=-0.29
  EXPECT_NEAR(w.at(0, 0), -0.29, 1e-12);
}

TEST(Adam, StepMovesAgainstGradientWithBiasCorrection) {
  matrix::MatD w = matrix::MatD::filled(1, 1, 1.0);
  matrix::MatD g = matrix::MatD::filled(1, 1, 0.5);
  Adam opt(0.1);
  opt.attach({{&w, &g}});
  opt.step();
  // With bias correction the first step magnitude is ~lr regardless of
  // gradient scale: w -> 1.0 - 0.1 * (g/|g|).
  EXPECT_NEAR(w.at(0, 0), 0.9, 1e-6);
}

TEST(Adam, AdaptsPerParameterScale) {
  // Two params with gradients of very different magnitude get steps of the
  // same magnitude — the defining Adam property.
  matrix::MatD w = matrix::MatD::filled(1, 2, 0.0);
  matrix::MatD g(1, 2);
  g.at(0, 0) = 100.0;
  g.at(0, 1) = 0.001;
  Adam opt(0.05);
  opt.attach({{&w, &g}});
  opt.step();
  EXPECT_NEAR(w.at(0, 0), -0.05, 1e-4);
  EXPECT_NEAR(w.at(0, 1), -0.05, 1e-3);
}

TEST(Adam, TrainsXorLikeSgd) {
  math::Rng rng(61);
  Network net = build_mlp_classifier(2, 8, 2, rng);
  matrix::MatD x(4, 2);
  matrix::MatD y(4, 2);
  matrix::MatI labels(4, 1);
  const int xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = xs[i][0];
    x.at(i, 1) = xs[i][1];
    const int label = xs[i][0] ^ xs[i][1];
    y.at(i, label) = 1.0;
    labels.at(i, 0) = label;
  }
  CrossEntropyLoss loss;
  Adam opt(0.05);
  opt.attach(net.params());
  net.train(x, y, loss, opt, 400, 4, rng);
  EXPECT_EQ(net.accuracy(x, labels), 1.0);
}

TEST(Network, LearnsXor) {
  // The classic non-linearly-separable sanity check.
  math::Rng rng(11);
  Network net = build_mlp_classifier(2, 8, 2, rng);
  matrix::MatD x(4, 2);
  matrix::MatD y(4, 2);
  matrix::MatI labels(4, 1);
  const int xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = xs[i][0];
    x.at(i, 1) = xs[i][1];
    const int label = xs[i][0] ^ xs[i][1];
    y.at(i, label) = 1.0;
    labels.at(i, 0) = label;
  }
  CrossEntropyLoss loss;
  SGD opt(0.5, 0.9);
  opt.attach(net.params());
  const TrainReport report = net.train(x, y, loss, opt, 800, 4, rng);
  EXPECT_LT(report.final_loss, 0.1);
  EXPECT_EQ(net.accuracy(x, labels), 1.0);
}

TEST(Network, TrainingLossDecreases) {
  math::Rng rng(19);
  Network net = build_mlp_classifier(3, 8, 2, rng);
  // Separable blobs.
  matrix::MatD x(40, 3);
  matrix::MatD y(40, 2);
  for (int i = 0; i < 40; ++i) {
    const int cls = i % 2;
    for (int j = 0; j < 3; ++j) {
      x.at(i, j) = rng.normal(cls == 0 ? -1.0 : 1.0, 0.3);
    }
    y.at(i, cls) = 1.0;
  }
  CrossEntropyLoss loss;
  SGD opt(0.1, 0.9);
  opt.attach(net.params());
  const TrainReport report = net.train(x, y, loss, opt, 30, 8, rng);
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front());
}

TEST(Network, TrainRejectsBadInputsExplicitly) {
  // Shape validation used to be assert-only; in release builds train()
  // would happily chew on mismatched batches. Now it reports.
  math::Rng rng(31);
  Network net = build_mlp_classifier(3, 4, 2, rng);
  CrossEntropyLoss loss;
  SGD opt(0.1, 0.0);
  opt.attach(net.params());

  matrix::MatD x(4, 3);
  matrix::MatD y(4, 2);

  const TrainReport empty = net.train(matrix::MatD(0, 3), matrix::MatD(0, 2),
                                      loss, opt, 5, 2, rng);
  EXPECT_FALSE(empty.ok);
  ASSERT_NE(empty.error, nullptr);
  EXPECT_STREQ(empty.error, "empty training set");
  EXPECT_EQ(empty.epochs, 0);

  const TrainReport mismatch =
      net.train(x, matrix::MatD(3, 2), loss, opt, 5, 2, rng);
  EXPECT_FALSE(mismatch.ok);
  ASSERT_NE(mismatch.error, nullptr);
  EXPECT_STREQ(mismatch.error, "x/y row count mismatch");

  const TrainReport bad_batch = net.train(x, y, loss, opt, 5, 0, rng);
  EXPECT_FALSE(bad_batch.ok);
  ASSERT_NE(bad_batch.error, nullptr);
  EXPECT_STREQ(bad_batch.error, "batch_size must be positive");

  const TrainReport good = net.train(x, y, loss, opt, 1, 2, rng);
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.error, nullptr);
  EXPECT_EQ(good.epochs, 1);
}

TEST(Network, EvalModeForwardMatchesTrainMode) {
  // Eval mode skips the backward caches but must not change outputs.
  math::Rng rng(37);
  Network net = build_mlp_classifier(4, 8, 3, rng);
  matrix::MatD x = matrix::random_uniform(5, 4, -1.0, 1.0, rng);

  net.set_training(true);
  const matrix::MatD train_out = net.forward(x);
  net.set_training(false);
  const matrix::MatD eval_out = net.forward(x);
  EXPECT_TRUE(approx_equal(train_out, eval_out, 0.0));
  for (int i = 0; i < net.num_layers(); ++i) {
    EXPECT_FALSE(net.layer(i).training());
  }
}

TEST(Network, ForwardScratchMatchesForward) {
  math::Rng rng(41);
  Network net = build_mlp_classifier(4, 8, 3, rng);
  net.set_training(false);
  matrix::MatD x = matrix::random_uniform(6, 4, -1.0, 1.0, rng);
  const matrix::MatD copying = net.forward(x);
  const matrix::MatD& scratch = net.forward_scratch(x);
  EXPECT_TRUE(approx_equal(copying, scratch, 0.0));
}

TEST(Network, ParamBytesMatchesArchitecture) {
  math::Rng rng(23);
  Network net = build_mlp_classifier(5, 16, 4, rng);
  // (5*16 + 16) + (16*16 + 16) + (16*4 + 4) doubles
  const std::size_t params = 5 * 16 + 16 + 16 * 16 + 16 + 16 * 4 + 4;
  EXPECT_EQ(net.param_bytes(), params * sizeof(double));
  // The paper reports 3,916 B for its readahead model: same order.
  EXPECT_LT(net.param_bytes(), 4096u);
}

TEST(Serialize, SaveLoadRoundTripPreservesOutputs) {
  const char* path = "/tmp/kml_model_roundtrip.kml";
  math::Rng rng(29);
  Network net = build_mlp_classifier(5, 16, 4, rng);

  // Fit a normalizer so moments round-trip too.
  matrix::MatD stats = matrix::random_uniform(50, 5, 0.0, 100.0, rng);
  net.normalizer().fit(stats);

  matrix::MatD x = matrix::random_uniform(7, 5, -1.0, 1.0, rng);
  const matrix::MatD before = net.forward(x);

  ASSERT_TRUE(save_model(net, path));
  Network loaded;
  ASSERT_TRUE(load_model(loaded, path));
  const matrix::MatD after = loaded.forward(x);
  EXPECT_TRUE(matrix::approx_equal(before, after, 1e-12));

  // Normalizer moments survive.
  std::vector<double> m1, s1, m2, s2;
  net.normalizer().export_moments(m1, s1);
  loaded.normalizer().export_moments(m2, s2);
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_NEAR(m1[i], m2[i], 1e-12);
    EXPECT_NEAR(s1[i], s2[i], 1e-12);
  }
  std::remove(path);
}

TEST(Serialize, RejectsCorruptFiles) {
  const char* path = "/tmp/kml_model_corrupt.kml";
  FILE* f = fopen(path, "wb");
  const char junk[] = "not a kml model at all";
  fwrite(junk, 1, sizeof(junk), f);
  fclose(f);
  Network net;
  EXPECT_FALSE(load_model(net, path));
  std::remove(path);
}

TEST(Serialize, RejectsMissingFile) {
  Network net;
  EXPECT_FALSE(load_model(net, "/tmp/kml_no_such_model.kml"));
}

TEST(Serialize, RejectsTruncatedFile) {
  const char* path = "/tmp/kml_model_trunc.kml";
  math::Rng rng(31);
  Network net = build_mlp_classifier(3, 4, 2, rng);
  ASSERT_TRUE(save_model(net, path));
  // Truncate to half.
  const std::int64_t full = kml_fsize(path);
  FILE* f = fopen(path, "rb");
  std::vector<char> buf(static_cast<std::size_t>(full / 2));
  ASSERT_EQ(fread(buf.data(), 1, buf.size(), f), buf.size());
  fclose(f);
  f = fopen(path, "wb");
  fwrite(buf.data(), 1, buf.size(), f);
  fclose(f);

  Network loaded;
  EXPECT_FALSE(load_model(loaded, path));
  std::remove(path);
}

}  // namespace
}  // namespace kml::nn
