// Tests for the health-guard runtime (src/runtime/health): the monitor's
// state machine, the engine's validated train steps + checkpoint/rollback,
// and graceful degradation of the readahead tuners to vanilla readahead.
#include "kv/minikv.h"
#include "observe/metrics.h"
#include "readahead/file_tuner.h"
#include "readahead/pipeline.h"
#include "readahead/tuner.h"
#include "runtime/engine.h"
#include "runtime/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace kml::runtime {
namespace {

HealthConfig fast_config() {
  HealthConfig config;
  config.warmup_steps = 4;
  config.strikes_to_degrade = 2;
  config.strikes_to_fail = 4;
  config.clean_steps_to_recover = 3;
  config.drop_window_min_records = 10;
  return config;
}

TEST(HealthMonitor, StartsHealthy) {
  HealthMonitor monitor;
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_TRUE(monitor.healthy());
}

TEST(HealthMonitor, StateNamesAreStable) {
  EXPECT_STREQ(health_state_name(HealthState::kHealthy), "HEALTHY");
  EXPECT_STREQ(health_state_name(HealthState::kDegraded), "DEGRADED");
  EXPECT_STREQ(health_state_name(HealthState::kFailed), "FAILED");
}

TEST(HealthMonitor, NonFiniteLossFailsImmediately) {
  HealthMonitor monitor(fast_config());
  monitor.observe_train_step(std::numeric_limits<double>::quiet_NaN(), false);
  EXPECT_EQ(monitor.state(), HealthState::kFailed);
  EXPECT_EQ(monitor.stats().non_finite_events, 1u);
  EXPECT_EQ(monitor.stats().failures, 1u);
}

TEST(HealthMonitor, DivergenceStrikesDegradeThenFail) {
  HealthMonitor monitor(fast_config());
  // Establish a baseline around loss = 1.0.
  for (int i = 0; i < 8; ++i) monitor.observe_train_step(1.0, true);
  ASSERT_EQ(monitor.state(), HealthState::kHealthy);

  monitor.observe_train_step(50.0, true);  // strike 1
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  monitor.observe_train_step(50.0, true);  // strike 2 -> DEGRADED
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  monitor.observe_train_step(50.0, true);  // strike 3
  monitor.observe_train_step(50.0, true);  // strike 4 -> FAILED
  EXPECT_EQ(monitor.state(), HealthState::kFailed);
  EXPECT_EQ(monitor.stats().divergence_strikes, 4u);
}

TEST(HealthMonitor, DivergentLossDoesNotPolluteTheBaseline) {
  HealthMonitor monitor(fast_config());
  for (int i = 0; i < 8; ++i) monitor.observe_train_step(1.0, true);
  const double baseline = monitor.stats().loss_ewma;
  monitor.observe_train_step(1000.0, true);  // strike; EWMA must not absorb
  EXPECT_DOUBLE_EQ(monitor.stats().loss_ewma, baseline);
}

TEST(HealthMonitor, CleanStreakRecoversFromDegraded) {
  HealthMonitor monitor(fast_config());
  for (int i = 0; i < 8; ++i) monitor.observe_train_step(1.0, true);
  monitor.observe_train_step(50.0, true);
  monitor.observe_train_step(50.0, true);
  ASSERT_EQ(monitor.state(), HealthState::kDegraded);

  // clean_steps_to_recover = 3 consecutive sane steps.
  monitor.observe_train_step(1.0, true);
  monitor.observe_train_step(1.0, true);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  monitor.observe_train_step(1.0, true);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().recoveries, 1u);
}

TEST(HealthMonitor, FailedDoesNotRecoverWithoutRollback) {
  HealthMonitor monitor(fast_config());
  monitor.observe_train_step(std::numeric_limits<double>::infinity(), false);
  ASSERT_EQ(monitor.state(), HealthState::kFailed);
  for (int i = 0; i < 50; ++i) monitor.observe_train_step(1.0, true);
  EXPECT_EQ(monitor.state(), HealthState::kFailed);

  // Rollback opens the door: FAILED -> DEGRADED, then a clean streak heals.
  monitor.notify_rollback();
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  for (int i = 0; i < 10; ++i) monitor.observe_train_step(1.0, true);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().rollbacks_seen, 1u);
}

TEST(HealthMonitor, WatchdogNeverTripsBeforeFirstHeartbeat) {
  HealthMonitor monitor(fast_config());
  EXPECT_FALSE(monitor.check_watchdog(1'000'000'000'000ull));
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
}

TEST(HealthMonitor, WatchdogTripsOnStalledTrainer) {
  HealthConfig config = fast_config();
  config.heartbeat_timeout_ns = 1000;
  HealthMonitor monitor(config);
  monitor.heartbeat(10'000);
  EXPECT_FALSE(monitor.check_watchdog(10'500));  // within budget
  EXPECT_TRUE(monitor.check_watchdog(12'000));   // stalled
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().watchdog_timeouts, 1u);

  // A resumed heartbeat plus a clean streak recovers.
  monitor.heartbeat(12'500);
  EXPECT_FALSE(monitor.check_watchdog(13'000));
  for (int i = 0; i < 8; ++i) monitor.observe_train_step(1.0, true);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
}

TEST(HealthMonitor, DropRateTripDegrades) {
  HealthMonitor monitor(fast_config());  // threshold 0.5, window >= 10
  monitor.observe_buffer(100, 0);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  // Next delta window: 100 more submissions, 80 dropped.
  monitor.observe_buffer(200, 80);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().drop_rate_trips, 1u);
}

TEST(HealthMonitor, SmallDropWindowsAreNotJudged) {
  HealthMonitor monitor(fast_config());  // drop_window_min_records = 10
  monitor.observe_buffer(4, 4);  // 100% drop rate but only 4 records
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
}

#if KML_OBSERVE_ENABLED

// Registry-sourced signals: the monitor pulls drop-rate and inference-p99
// straight from the global metrics registry instead of being hand-fed.
// These tests drive the same counters/histograms the instrumented code
// bumps; deltas-based judging makes them robust to whatever other tests in
// this process contributed before the priming call.
TEST(HealthMonitor, RegistryDropRateTripDegrades) {
  observe::Counter& push =
      observe::get_counter(observe::kMetricBufferPush);
  observe::Counter& drop =
      observe::get_counter(observe::kMetricBufferDrop);
  HealthMonitor monitor(fast_config());  // threshold 0.5, window >= 10
  monitor.observe_registry();            // primes baselines
  push.add(100);
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  push.add(20);
  drop.add(80);  // 80% of this window's 100 submissions dropped
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().drop_rate_trips, 1u);
}

TEST(HealthMonitor, RegistryInferenceLatencyTripDegrades) {
  observe::Histogram& hist =
      observe::get_histogram(observe::kMetricInferenceNs);
  hist.reset();  // cumulative p99 — clear whatever this process recorded
  HealthConfig config = fast_config();
  config.inference_p99_degrade_ns = 1'000'000;  // budget: 1 ms
  HealthMonitor monitor(config);
  monitor.observe_registry();  // primes baselines
  for (int i = 0; i < 100; ++i) hist.record(50'000'000);  // 50 ms each
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().latency_trips, 1u);

  // Quiesced model: no new inferences -> the (cumulative) histogram must
  // not re-trip the guard on stale history.
  monitor.reset();
  monitor.observe_registry();  // re-prime after reset
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().latency_trips, 0u);
}

// (i) cache hit-rate collapse: the eviction case study's safety net. A
// mis-actuated policy shows up as a collapsed hit rate over the judged
// window; the monitor trips DEGRADED and the cache tuner pins vanilla LRU.
TEST(HealthMonitor, RegistryCacheHitRateCollapseDegrades) {
  observe::Counter& hits = observe::get_counter(observe::kMetricCacheHit);
  observe::Counter& misses = observe::get_counter(observe::kMetricCacheMiss);
  HealthConfig config = fast_config();
  config.cache_hit_rate_degrade_milli = 500;  // floor: 50% hit rate
  config.cache_min_accesses = 100;
  HealthMonitor monitor(config);
  monitor.observe_registry();  // primes baselines
  hits.add(90);
  misses.add(10);  // 90% window: healthy
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  hits.add(10);
  misses.add(90);  // 10% window: collapse
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().cache_trips, 1u);
}

TEST(HealthMonitor, RegistryCacheWindowBelowMinAccessesNotJudged) {
  observe::Counter& misses = observe::get_counter(observe::kMetricCacheMiss);
  HealthConfig config = fast_config();
  config.cache_hit_rate_degrade_milli = 500;
  config.cache_min_accesses = 1'000'000'000;  // nothing reaches the window
  HealthMonitor monitor(config);
  monitor.observe_registry();
  misses.add(500);  // all misses, but below the judgement window
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().cache_trips, 0u);
}

TEST(HealthMonitor, RegistryCacheSignalDisabledByDefault) {
  observe::Counter& misses = observe::get_counter(observe::kMetricCacheMiss);
  HealthMonitor monitor(fast_config());  // cache_hit_rate_degrade_milli = 0
  monitor.observe_registry();
  misses.add(100'000);
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().cache_trips, 0u);
}

TEST(HealthMonitor, RegistryLatencySignalDisabledByDefault) {
  observe::Histogram& hist =
      observe::get_histogram(observe::kMetricInferenceNs);
  HealthMonitor monitor(fast_config());  // inference_p99_degrade_ns = 0
  monitor.observe_registry();
  for (int i = 0; i < 100; ++i) hist.record(50'000'000);
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().latency_trips, 0u);
}

#endif  // KML_OBSERVE_ENABLED

TEST(HealthMonitor, ResetReturnsToPristine) {
  HealthMonitor monitor(fast_config());
  monitor.observe_train_step(std::numeric_limits<double>::quiet_NaN(), false);
  ASSERT_EQ(monitor.state(), HealthState::kFailed);
  monitor.reset();
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().train_steps, 0u);
}

// --- Engine integration ------------------------------------------------------

nn::Network make_net(std::uint64_t seed = 5) {
  math::Rng rng(seed);
  nn::Network net = nn::build_mlp_classifier(2, 4, 2, rng);
  net.normalizer().import_moments({0.0, 0.0}, {1.0, 1.0});
  return net;
}

struct TrainSetup {
  matrix::MatD x{8, 2};
  matrix::MatD y{8, 2};
  nn::CrossEntropyLoss loss;
  nn::SGD opt{0.1, 0.0};

  explicit TrainSetup(Engine& engine) {
    math::Rng rng(23);
    for (int i = 0; i < 8; ++i) {
      const int cls = i % 2;
      x.at(i, 0) = rng.normal(cls == 0 ? -1.0 : 1.0, 0.2);
      x.at(i, 1) = rng.normal(cls == 0 ? 1.0 : -1.0, 0.2);
      y.at(i, cls) = 1.0;
    }
    opt.attach(engine.network().params());
  }
};

TEST(EngineHealth, ValidStepsCheckpointAndFeedMonitor) {
  HealthMonitor monitor(fast_config());
  Engine engine(make_net());
  engine.attach_health(&monitor);
  engine.set_mode(Mode::kTraining);
  TrainSetup t(engine);

  EXPECT_FALSE(engine.has_checkpoint());
  engine.train_batch(t.x, t.y, t.loss, t.opt);
  EXPECT_TRUE(engine.has_checkpoint());
  EXPECT_EQ(engine.stats().checkpoints, 1u);
  EXPECT_EQ(engine.stats().invalid_train_steps, 0u);
  EXPECT_EQ(monitor.stats().train_steps, 1u);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
}

TEST(EngineHealth, PoisonedWeightsFailTheMonitorAndRollbackRestores) {
  HealthMonitor monitor(fast_config());
  Engine engine(make_net());
  engine.attach_health(&monitor);
  engine.set_mode(Mode::kTraining);
  TrainSetup t(engine);

  // A few good steps to establish the checkpoint.
  for (int i = 0; i < 3; ++i) engine.train_batch(t.x, t.y, t.loss, t.opt);
  ASSERT_TRUE(engine.has_checkpoint());
  ASSERT_TRUE(engine.weights_finite());

  engine.set_mode(Mode::kInference);
  const double probe[2] = {0.4, -0.6};
  const int before = engine.infer_class(probe, 2);

  // Poison one weight: the next train step sees non-finite weights.
  auto params = engine.network().params();
  params[0].value->at(0, 0) = std::numeric_limits<double>::quiet_NaN();
  ASSERT_FALSE(engine.weights_finite());

  engine.set_mode(Mode::kTraining);
  engine.train_batch(t.x, t.y, t.loss, t.opt);
  EXPECT_GE(engine.stats().invalid_train_steps, 1u);
  EXPECT_EQ(monitor.state(), HealthState::kFailed);

  // Rollback to last-known-good: weights finite again, health on probation,
  // and the restored model must infer exactly as it did pre-poisoning...
  ASSERT_TRUE(engine.rollback());
  // Optimizer state still carries NaN from the poisoned step (0 * NaN is
  // NaN, so even zero momentum keeps it); re-attach to zero the buffers —
  // the documented post-rollback step.
  t.opt.attach(engine.network().params());
  EXPECT_TRUE(engine.weights_finite());
  EXPECT_EQ(engine.stats().rollbacks, 1u);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);

  engine.set_mode(Mode::kInference);
  EXPECT_EQ(engine.infer_class(probe, 2), before);

  // ...and clean training afterwards recovers full health.
  engine.set_mode(Mode::kTraining);
  for (int i = 0; i < 8; ++i) engine.train_batch(t.x, t.y, t.loss, t.opt);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
}

TEST(EngineHealth, RollbackWithoutCheckpointFails) {
  Engine engine(make_net());
  EXPECT_FALSE(engine.has_checkpoint());
  EXPECT_FALSE(engine.rollback());
}

}  // namespace
}  // namespace kml::runtime

// --- Tuner degradation -------------------------------------------------------

namespace kml::readahead {
namespace {

ExperimentConfig tiny_experiment() {
  ExperimentConfig config;
  config.num_keys = 100000;
  config.cache_pages = 2048;
  return config;
}

TEST(TunerDegradation, UnhealthyMonitorRevertsToVanillaAndResumes) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));

  runtime::HealthMonitor monitor(runtime::HealthConfig{});
  TunerConfig config;
  config.class_ra_kb = {512, 16, 256, 32};
  config.health = &monitor;
  config.vanilla_ra_kb = 128;
  int predictions = 0;
  ReadaheadTuner tuner(
      stack,
      [&predictions](const FeatureVector&) {
        ++predictions;
        return 1;
      },
      config);

  // Healthy window: the class-1 table entry (16 KB) is actuated.
  for (std::uint64_t k = 0; k < 50; ++k) db.get(k * 977);
  tuner.on_tick(sim::kNsPerSec + 1);
  ASSERT_EQ(stack.block_layer().readahead_kb(), 16u);
  ASSERT_EQ(predictions, 1);
  EXPECT_FALSE(tuner.timeline().back().degraded);

  // Training blows up -> FAILED. The next window must revert to vanilla and
  // skip inference entirely.
  monitor.observe_train_step(std::numeric_limits<double>::quiet_NaN(), false);
  ASSERT_EQ(monitor.state(), runtime::HealthState::kFailed);
  for (std::uint64_t k = 0; k < 50; ++k) db.get(k * 1033);
  tuner.on_tick(2 * sim::kNsPerSec + 1);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 128u);
  EXPECT_EQ(predictions, 1);  // no inference while quarantined
  EXPECT_TRUE(tuner.timeline().back().degraded);
  EXPECT_EQ(tuner.degraded_windows(), 1u);

  // Stays vanilla while FAILED.
  for (std::uint64_t k = 0; k < 50; ++k) db.get(k * 1051);
  tuner.on_tick(3 * sim::kNsPerSec + 1);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 128u);
  EXPECT_EQ(tuner.degraded_windows(), 2u);

  // Rollback + clean streak -> HEALTHY; actuation resumes.
  monitor.notify_rollback();
  // +1: the first post-rollback step re-primes the EWMA baseline.
  for (std::uint32_t i = 0; i <= monitor.config().clean_steps_to_recover;
       ++i) {
    monitor.observe_train_step(1.0, true);
  }
  ASSERT_EQ(monitor.state(), runtime::HealthState::kHealthy);
  for (std::uint64_t k = 0; k < 50; ++k) db.get(k * 1087);
  tuner.on_tick(4 * sim::kNsPerSec + 1);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 16u);
  EXPECT_EQ(predictions, 2);
  EXPECT_FALSE(tuner.timeline().back().degraded);
  EXPECT_EQ(tuner.degraded_windows(), 2u);  // no new degraded windows
}

TEST(TunerDegradation, NullHealthMeansAlwaysActuate) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  ReadaheadTuner tuner(
      stack, [](const FeatureVector&) { return 1; }, TunerConfig{});
  db.get(1);
  tuner.on_tick(sim::kNsPerSec + 1);
  EXPECT_EQ(tuner.degraded_windows(), 0u);
  EXPECT_FALSE(tuner.timeline().back().degraded);
}

TEST(TunerDegradation, PerFileTunerRestoresActuatedInodes) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));

  runtime::HealthMonitor monitor;
  TunerConfig config;
  config.class_ra_kb = {512, 16, 256, 32};
  config.health = &monitor;
  config.vanilla_ra_kb = 128;
  PerFileTuner tuner(
      stack, [](const FeatureVector&) { return 1; }, config,
      /*min_events=*/1);

  for (std::uint64_t k = 0; k < 200; ++k) db.get(k * 977);
  tuner.on_tick(sim::kNsPerSec + 1);
  ASSERT_FALSE(tuner.last_window_decisions().empty());
  const std::uint64_t inode = tuner.last_window_decisions()[0].inode;
  ASSERT_EQ(stack.block_layer().file_readahead_kb(inode), 16u);

  // FAILED: the tuned inode reverts to vanilla; no decisions are made.
  monitor.observe_train_step(std::numeric_limits<double>::quiet_NaN(), false);
  for (std::uint64_t k = 0; k < 200; ++k) db.get(k * 1033);
  tuner.on_tick(2 * sim::kNsPerSec + 1);
  EXPECT_EQ(stack.block_layer().file_readahead_kb(inode), 128u);
  EXPECT_TRUE(tuner.last_window_decisions().empty());
  EXPECT_EQ(tuner.degraded_windows(), 1u);
}

TEST(TunerDegradation, ClosedLoopReportsDegradedWindowsAndRecovers) {
  // Acceptance scenario: a closed-loop run with divergence injected partway
  // through falls back to vanilla, then resumes after a rollback.
  runtime::HealthMonitor monitor;
  TunerConfig tuner_config;
  tuner_config.health = &monitor;

  const std::uint64_t seconds = 8;
  bool poisoned = false;
  bool rolled_back = false;
  const auto inject = [&](std::uint64_t now_ns) {
    if (!poisoned && now_ns >= 3 * sim::kNsPerSec) {
      poisoned = true;  // trainer diverges at t=3s
      monitor.observe_train_step(
          std::numeric_limits<double>::quiet_NaN(), false);
    }
    if (!rolled_back && now_ns >= 6 * sim::kNsPerSec) {
      rolled_back = true;  // operator/engine rolls back at t=6s
      monitor.notify_rollback();
      for (std::uint32_t i = 0;
           i <= monitor.config().clean_steps_to_recover; ++i) {
        monitor.observe_train_step(1.0, true);
      }
    }
  };

  const EvalOutcome outcome = evaluate_closed_loop(
      tiny_experiment(), workloads::WorkloadType::kReadRandom,
      [](const FeatureVector&) { return 1; }, tuner_config, seconds, inject);

  ASSERT_TRUE(poisoned);
  ASSERT_TRUE(rolled_back);
  // Roughly seconds 3..6 are degraded; at least one window on each side of
  // the fault must be healthy (fallback engaged AND recovery resumed).
  EXPECT_GT(outcome.degraded_windows, 0u);
  EXPECT_LT(outcome.degraded_windows, outcome.timeline.size());
  bool saw_degraded = false;
  bool saw_healthy_after = false;
  for (const TimelinePoint& p : outcome.timeline) {
    if (p.degraded) saw_degraded = true;
    if (saw_degraded && !p.degraded) saw_healthy_after = true;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_healthy_after);
  EXPECT_GT(outcome.vanilla_ops_per_sec, 0.0);
  EXPECT_GT(outcome.kml_ops_per_sec, 0.0);
}

}  // namespace
}  // namespace kml::readahead
