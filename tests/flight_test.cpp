// Tests for the flight recorder and its consumers: ring wraparound and
// freeze/thaw semantics, concurrent-writer stress through the portability
// thread seam, the fault -> invalid step -> FAILED -> rollback -> DEGRADED
// causal chain (including the post-mortem dump files), introspection-ring
// determinism, the registry-sourced gradient/drift health signals, and a
// round-trip of the Chrome trace / introspection JSON exports through a
// minimal parser.
//
// The flight rings and the metrics registry are process-global; every test
// resets (and, at exit, thaws) the recorder so order of execution within
// one binary run does not matter.
#include "observe/export.h"
#include "observe/flight_recorder.h"
#include "observe/introspect.h"
#include "observe/metrics.h"

#include "nn/network.h"
#include "portability/fault.h"
#include "portability/thread.h"
#include "portability/threadpool.h"
#include "runtime/engine.h"
#include "runtime/health.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace kml {
namespace {

using observe::EventId;
using observe::FlightSnapshot;
using observe::TraceEvent;

#if !KML_OBSERVE_ENABLED

// Compiled-out build: the whole surface must stub to inert no-ops.
TEST(FlightDisabled, StubsAreInert) {
  EXPECT_FALSE(observe::flight_recording());
  KML_EVENT(EventId::kTunerDecision, 1, 2);
  observe::flight_freeze();
  EXPECT_FALSE(observe::flight_frozen());
  EXPECT_EQ(observe::flight_total_events(), 0u);
  const FlightSnapshot snap = observe::flight_snapshot();
  EXPECT_TRUE(snap.threads.empty());
  EXPECT_FALSE(observe::format_chrome_trace(snap).empty());
}

#else  // KML_OBSERVE_ENABLED

// Fresh recorder: enabled, thawed, rings cleared.
void reset_flight() {
  observe::set_enabled(true);
  observe::flight_thaw();
  observe::flight_set_enabled(true);
  observe::flight_reset();
}

// The calling thread's ring dump, or nullptr if it never recorded.
const observe::FlightThreadDump* own_dump(const FlightSnapshot& snap) {
  const std::uint32_t self = static_cast<std::uint32_t>(kml_thread_self());
  for (const auto& t : snap.threads) {
    if (t.thread_id == self) return &t;
  }
  return nullptr;
}

// True when `ids` appears as an ordered (not necessarily contiguous)
// subsequence of the dump, with each match also satisfying `accept`.
bool contains_in_order(const std::vector<TraceEvent>& events,
                       const std::vector<EventId>& ids,
                       bool (*accept)(const TraceEvent&) = nullptr) {
  std::size_t want = 0;
  for (const TraceEvent& e : events) {
    if (want == ids.size()) break;
    if (e.event_id != static_cast<std::uint16_t>(ids[want])) continue;
    if (accept != nullptr && !accept(e)) continue;
    ++want;
  }
  return want == ids.size();
}

// --- ring mechanics ----------------------------------------------------------

TEST(FlightRing, WraparoundKeepsNewestEventsInOrder) {
  reset_flight();
  const std::uint64_t n = observe::kFlightEventsPerThread + 100;
  for (std::uint64_t i = 0; i < n; ++i) {
    observe::flight_record(EventId::kTunerDecision, i, 0);
  }
  EXPECT_EQ(observe::flight_total_events(), n);

  const FlightSnapshot snap = observe::flight_snapshot();
  const auto* mine = own_dump(snap);
  ASSERT_NE(mine, nullptr);
  // The ring holds exactly the newest kFlightEventsPerThread events,
  // oldest first: arg0 must run [100, n) contiguously.
  ASSERT_EQ(mine->events.size(), observe::kFlightEventsPerThread);
  for (std::size_t i = 0; i < mine->events.size(); ++i) {
    EXPECT_EQ(mine->events[i].arg0, 100 + i) << "slot " << i;
    EXPECT_EQ(mine->events[i].event_id,
              static_cast<std::uint16_t>(EventId::kTunerDecision));
  }
  EXPECT_EQ(snap.total_recorded, n);
}

TEST(FlightRing, FreezeStopsRecordingAndThawResumes) {
  reset_flight();
  for (int i = 0; i < 3; ++i) {
    observe::flight_record(EventId::kEngineCheckpoint, i, 0);
  }
  observe::flight_freeze();
  EXPECT_TRUE(observe::flight_frozen());
  EXPECT_FALSE(observe::flight_recording());
  KML_EVENT(EventId::kEngineCheckpoint, 99, 0);  // must be dropped
  observe::flight_record(EventId::kEngineCheckpoint, 99, 0);
  EXPECT_EQ(observe::flight_total_events(), 3u);

  FlightSnapshot snap = observe::flight_snapshot();
  EXPECT_TRUE(snap.frozen);
  const auto* mine = own_dump(snap);
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->events.size(), 3u);

  observe::flight_thaw();
  EXPECT_FALSE(observe::flight_frozen());
  KML_EVENT(EventId::kEngineCheckpoint, 4, 0);
  EXPECT_EQ(observe::flight_total_events(), 4u);
}

TEST(FlightRing, RuntimeKillSwitchGatesTheMacro) {
  reset_flight();
  observe::flight_set_enabled(false);
  EXPECT_FALSE(observe::flight_recording());
  KML_EVENT(EventId::kBufferDrop, 1, 0);
  EXPECT_EQ(observe::flight_total_events(), 0u);
  observe::flight_set_enabled(true);
  KML_EVENT(EventId::kBufferDrop, 1, 0);
  EXPECT_EQ(observe::flight_total_events(), 1u);
}

// --- concurrent writers ------------------------------------------------------

struct WriterArgs {
  std::uint64_t tag = 0;
  std::uint64_t count = 0;
};

void writer_main(void* arg) {
  const WriterArgs* a = static_cast<const WriterArgs*>(arg);
  for (std::uint64_t i = 0; i < a->count; ++i) {
    observe::flight_record(EventId::kPoolDispatch, i, a->tag);
  }
}

TEST(FlightStress, ConcurrentWritersKeepPerThreadOrder) {
  reset_flight();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50'000;

  WriterArgs args[kWriters];
  KmlThread* threads[kWriters] = {};
  for (int w = 0; w < kWriters; ++w) {
    args[w].tag = 1000 + static_cast<std::uint64_t>(w);
    args[w].count = kPerWriter;
    threads[w] = kml_thread_create(writer_main, &args[w], "flight-writer");
    ASSERT_NE(threads[w], nullptr);
  }
  for (int w = 0; w < kWriters; ++w) kml_thread_join(threads[w]);

  EXPECT_EQ(observe::flight_total_events(), kWriters * kPerWriter);
  EXPECT_EQ(observe::flight_lost_thread_events(), 0u);

  // Each writer's ring must hold the newest kFlightEventsPerThread of its
  // own events, in order — SPSC rings cannot interleave across threads.
  const FlightSnapshot snap = observe::flight_snapshot();
  int seen_writers = 0;
  for (const auto& t : snap.threads) {
    if (t.events.empty() || t.events[0].arg1 < 1000) continue;
    ++seen_writers;
    ASSERT_EQ(t.events.size(), observe::kFlightEventsPerThread);
    const std::uint64_t first = kPerWriter - observe::kFlightEventsPerThread;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      ASSERT_EQ(t.events[i].arg0, first + i)
          << "thread " << t.thread_id << " slot " << i;
      ASSERT_EQ(t.events[i].arg1, t.events[0].arg1);  // one writer per ring
    }
  }
  EXPECT_EQ(seen_writers, kWriters);
}

// --- the causal chain --------------------------------------------------------

nn::Network small_net(std::uint64_t seed) {
  math::Rng rng(seed);
  nn::Network net = nn::build_mlp_classifier(4, 8, 3, rng);
  net.normalizer().import_moments({10.0, 10.0, 10.0, 10.0},
                                  {2.0, 2.0, 2.0, 2.0});
  return net;
}

bool is_enter_failed(const TraceEvent& e) {
  return e.arg1 == static_cast<std::uint64_t>(runtime::HealthState::kFailed);
}

TEST(FlightCausalChain, FaultToRollbackIsCapturedAndFrozen) {
  reset_flight();
  std::remove("flight_test_dump.bin");
  std::remove("flight_test_dump.txt");

  runtime::Engine engine(small_net(7));
  engine.set_mode(runtime::Mode::kTraining);
  runtime::HealthConfig hc;
  hc.flight_dump_prefix = "flight_test_dump";
  runtime::HealthMonitor monitor(hc);
  engine.attach_health(&monitor);

  nn::CrossEntropyLoss loss;
  nn::SGD opt(0.01, 0.0);
  opt.attach(engine.network().params());
  matrix::MatD x(1, 4);
  matrix::MatD y(1, 3);
  for (int j = 0; j < 4; ++j) x.at(0, j) = 0.5 * j;
  y.at(0, 1) = 1.0;

  for (int i = 0; i < 4; ++i) engine.train_batch(x, y, loss, opt);
  ASSERT_TRUE(engine.has_checkpoint());
  ASSERT_EQ(monitor.state(), runtime::HealthState::kHealthy);

  kml_fault_arm_nth(FaultSite::kTrainStep, 1, 1);
  engine.train_batch(x, y, loss, opt);  // the injected invalid step
  kml_fault_disarm(FaultSite::kTrainStep);
  EXPECT_EQ(monitor.state(), runtime::HealthState::kFailed);
  // FAILED must NOT freeze: the rollback that follows is part of the story.
  EXPECT_FALSE(observe::flight_frozen());

  EXPECT_TRUE(engine.rollback());
  EXPECT_EQ(monitor.state(), runtime::HealthState::kDegraded);
  // Entering DEGRADED freezes the rings and writes the configured dump.
  EXPECT_TRUE(observe::flight_frozen());

  const FlightSnapshot snap = observe::flight_snapshot();
  EXPECT_TRUE(snap.frozen);
  const auto* mine = own_dump(snap);
  ASSERT_NE(mine, nullptr);
  EXPECT_TRUE(contains_in_order(
      mine->events,
      {EventId::kFaultInjected, EventId::kEngineTrainStep,
       EventId::kEngineInvalidStep, EventId::kHealthTransition,
       EventId::kEngineRollback, EventId::kHealthTransition}));
  // The first health transition in the chain is specifically -> FAILED.
  EXPECT_TRUE(contains_in_order(mine->events, {EventId::kHealthTransition},
                                is_enter_failed));

  // The post-mortem files landed next to the test.
  std::FILE* bin = std::fopen("flight_test_dump.bin", "rb");
  ASSERT_NE(bin, nullptr);
  std::fseek(bin, 0, SEEK_END);
  const long bin_size = std::ftell(bin);
  std::fclose(bin);
  EXPECT_GT(bin_size, 0);
  EXPECT_EQ(static_cast<std::size_t>(bin_size) % sizeof(TraceEvent), 0u);
  std::FILE* txt = std::fopen("flight_test_dump.txt", "r");
  ASSERT_NE(txt, nullptr);
  std::fclose(txt);
  std::remove("flight_test_dump.bin");
  std::remove("flight_test_dump.txt");

  // The text dump names the events (stable names are part of the format).
  const std::string text = observe::format_flight_text(snap);
  EXPECT_NE(text.find("fault.injected"), std::string::npos);
  EXPECT_NE(text.find("engine.rollback"), std::string::npos);
  EXPECT_NE(text.find("health.transition"), std::string::npos);

  observe::flight_thaw();
}

// --- introspection -----------------------------------------------------------

TEST(Introspect, RingIsDeterministicAtFixedThreadCount) {
  kml_pool_set_threads(2);
  const auto run_once = [] {
    observe::introspect_reset();
    runtime::Engine engine(small_net(11));
    engine.set_mode(runtime::Mode::kTraining);
    nn::CrossEntropyLoss loss;
    nn::SGD opt(0.05, 0.0);
    opt.attach(engine.network().params());
    matrix::MatD x(2, 4);
    matrix::MatD y(2, 3);
    for (int r = 0; r < 2; ++r) {
      for (int j = 0; j < 4; ++j) x.at(r, j) = 10.0 + 0.25 * (r + j);
      y.at(r, r) = 1.0;
    }
    for (int i = 0; i < 12; ++i) engine.train_batch(x, y, loss, opt);
    return observe::introspect_snapshot();
  };

  const observe::IntrospectSnapshot a = run_once();
  const observe::IntrospectSnapshot b = run_once();
  ASSERT_EQ(a.steps.size(), 12u);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  EXPECT_EQ(a.total_recorded, b.total_recorded);
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    const observe::StepSample& sa = a.steps[i];
    const observe::StepSample& sb = b.steps[i];
    EXPECT_EQ(sa.step, sb.step) << "step " << i;
    EXPECT_EQ(sa.loss_milli, sb.loss_milli) << "step " << i;
    EXPECT_EQ(sa.num_layers, sb.num_layers) << "step " << i;
    EXPECT_EQ(sa.valid, 1u) << "step " << i;
    for (unsigned l = 0; l < observe::kIntrospectLayers; ++l) {
      EXPECT_EQ(sa.grad_norm_milli[l], sb.grad_norm_milli[l])
          << "step " << i << " layer " << l;
      EXPECT_EQ(sa.wdelta_norm_milli[l], sb.wdelta_norm_milli[l])
          << "step " << i << " layer " << l;
    }
  }
  // A 3-layer MLP reports per-layer norms, and training gradients are
  // non-trivial (all-zero norms would mean the probe is disconnected).
  EXPECT_EQ(a.steps.back().num_layers, 3u);
  EXPECT_GT(a.steps.back().grad_norm_milli[0] +
                a.steps.back().grad_norm_milli[1] +
                a.steps.back().grad_norm_milli[2],
            0);
}

TEST(Introspect, RingKeepsNewestCapacitySteps) {
  observe::introspect_reset();
  const std::uint64_t n = observe::kIntrospectCapacity + 17;
  observe::StepSample s;
  for (std::uint64_t i = 1; i <= n; ++i) {
    s.step = i;
    s.loss_milli = static_cast<std::int64_t>(i);
    observe::introspect_record(s);
  }
  const observe::IntrospectSnapshot snap = observe::introspect_snapshot();
  EXPECT_EQ(snap.total_recorded, n);
  ASSERT_EQ(snap.steps.size(), observe::kIntrospectCapacity);
  EXPECT_EQ(snap.steps.front().step, 18u);  // oldest surviving
  EXPECT_EQ(snap.steps.back().step, n);     // newest
  observe::introspect_reset();
}

// --- registry-sourced health signals ----------------------------------------

TEST(HealthSignals, InputDriftTripsDegraded) {
  reset_flight();
  runtime::Engine engine(small_net(13));
  ASSERT_TRUE(engine.drift().active());

  runtime::HealthConfig hc;
  hc.drift_z_degrade_milli = 1000;  // |z| > 1.0 is sick
  runtime::HealthMonitor monitor(hc);

  // Baseline mean 10, std 2; constant 30s are a z of 10 per feature. The
  // gauge publishes every 64 samples (past the tracker's 32-sample floor).
  const double shifted[4] = {30.0, 30.0, 30.0, 30.0};
  for (int i = 0; i < 128; ++i) engine.infer_class(shifted, 4);
  EXPECT_GE(engine.drift().max_z_milli(), 1000);

  monitor.observe_registry();  // primes baselines only
  EXPECT_EQ(monitor.state(), runtime::HealthState::kHealthy);

  for (int i = 0; i < 64; ++i) engine.infer_class(shifted, 4);
  monitor.observe_registry();  // sample count advanced -> judge the gauge
  EXPECT_EQ(monitor.state(), runtime::HealthState::kDegraded);
  EXPECT_GE(monitor.stats().drift_trips, 1u);
  EXPECT_TRUE(observe::flight_frozen());  // DEGRADED froze the recorder
  observe::flight_thaw();
}

TEST(HealthSignals, GradientExplosionTripsDegraded) {
  reset_flight();
  runtime::HealthConfig hc;
  hc.grad_norm_degrade_milli = 5'000;  // worst-layer L2 norm > 5.0 is sick
  runtime::HealthMonitor monitor(hc);

  observe::get_counter(observe::kMetricTrainSteps).add(1);
  observe::get_gauge(observe::kMetricGradNormMilli).set(80'000);
  monitor.observe_registry();  // primes
  EXPECT_EQ(monitor.state(), runtime::HealthState::kHealthy);

  observe::get_counter(observe::kMetricTrainSteps).add(1);  // steps advance
  monitor.observe_registry();  // now the gauge is judged
  EXPECT_EQ(monitor.state(), runtime::HealthState::kDegraded);
  EXPECT_GE(monitor.stats().grad_trips, 1u);
  observe::flight_thaw();
}

TEST(HealthSignals, QuiescedGaugeNeverTrips) {
  reset_flight();
  runtime::HealthConfig hc;
  hc.grad_norm_degrade_milli = 5'000;
  runtime::HealthMonitor monitor(hc);

  // A stale huge gauge with a non-advancing step counter must not trip:
  // the model is not training, so the reading is history, not news.
  observe::get_gauge(observe::kMetricGradNormMilli).set(999'000);
  monitor.observe_registry();  // primes
  monitor.observe_registry();  // counter unchanged -> no judgement
  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), runtime::HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().grad_trips, 0u);
}

// --- export round-trip -------------------------------------------------------

// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
// grammar the exporters are allowed to emit, no extensions. parse() is true
// only when the whole document is one valid value.
class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : s_(s) {}
  bool parse() {
    skip();
    if (!value()) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip();
      if (!string()) return false;
      skip();
      if (peek() != ':') return false;
      ++pos_;
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Export, ChromeTraceRoundTripsThroughParser) {
  reset_flight();
  observe::flight_record(EventId::kTrainBatchBegin, 1, 32);
  observe::flight_record(EventId::kTunerDecision, 2, 256);
  observe::flight_record(EventId::kTrainBatchEnd, 1, 32);
  observe::flight_record(EventId::kTrainBatchBegin, 2, 32);  // unpaired

  const std::string json =
      observe::format_chrome_trace(observe::flight_snapshot());
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // The begin/end pair stitched into one duration span; the decision and
  // the unpaired begin degrade to instants.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("trainer.batch"), std::string::npos);
  EXPECT_NE(json.find("tuner.decision"), std::string::npos);
}

TEST(Export, EmptyTraceIsStillValidJson) {
  reset_flight();
  const std::string json =
      observe::format_chrome_trace(observe::flight_snapshot());
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Export, IntrospectJsonRoundTripsThroughParser) {
  observe::introspect_reset();
  observe::StepSample s;
  s.step = 1;
  s.loss_milli = 693;  // ln(2) in milli
  s.num_layers = 2;
  s.valid = 1;
  s.grad_norm_milli[0] = 120;
  s.grad_norm_milli[1] = -7;  // format is signed; exercise it
  observe::introspect_record(s);

  const std::string json =
      observe::format_introspect_json(observe::introspect_snapshot());
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"schema\":\"kml.introspect.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"loss_milli\":693"), std::string::npos);
  EXPECT_NE(json.find("-7"), std::string::npos);
  observe::introspect_reset();
}

TEST(Export, MetricsJsonRoundTripsThroughParser) {
  observe::get_counter("test.flight.export.counter").add(3);
  const std::string json = observe::format_json(observe::snapshot());
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"schema\":\"kml.metrics.v1\""), std::string::npos);
}

#endif  // KML_OBSERVE_ENABLED

}  // namespace
}  // namespace kml
