// Tests for src/readahead/rl_tuner: state discretization, Q updates,
// epsilon decay, and online convergence toward the known-good readahead on
// a live workload.
#include "readahead/pipeline.h"
#include "readahead/rl_tuner.h"

#include <gtest/gtest.h>

namespace kml::readahead {
namespace {

ExperimentConfig tiny_experiment() {
  ExperimentConfig config;
  config.num_keys = 100000;
  config.cache_pages = 2048;
  return config;
}

FeatureVector features_with(double log_count, double log_meandiff) {
  FeatureVector f{};
  f[0] = log_count;
  f[2] = log_meandiff;  // model-input order: [2] = mean |delta offset|
  return f;
}

TEST(RlDiscretize, BucketsCoverTheGrid) {
  // Sequential, low rate -> state 0.
  EXPECT_EQ(QLearningTuner::discretize(features_with(5.0, 0.5)), 0);
  // Very scattered, high rate -> last state.
  EXPECT_EQ(QLearningTuner::discretize(features_with(13.0, 10.0)), 14);
  // States are distinct across pattern buckets.
  const int a = QLearningTuner::discretize(features_with(11.0, 0.5));
  const int b = QLearningTuner::discretize(features_with(11.0, 2.0));
  const int c = QLearningTuner::discretize(features_with(11.0, 8.0));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(RlTuner, ActuatesAnActionEachNonEmptyWindow) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  RlConfig config;
  QLearningTuner agent(stack, config);

  std::uint64_t ops = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    db.get(k * 499);
    agent.on_tick(stack.clock().now_ns(), ++ops);
  }
  // Force several window closings.
  agent.on_tick(5 * sim::kNsPerSec, ops);
  ASSERT_GE(agent.timeline().size(), 5u);
  const RlTimelinePoint& first = agent.timeline()[0];
  EXPECT_GE(first.action, 0);
  bool in_action_set = false;
  for (std::uint32_t a : config.actions_kb) {
    if (a == first.ra_kb) in_action_set = true;
  }
  EXPECT_TRUE(in_action_set);
}

TEST(RlTuner, EpsilonDecaysOverWindows) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  RlConfig config;
  QLearningTuner agent(stack, config);
  std::uint64_t ops = 0;
  for (int window = 0; window < 20; ++window) {
    for (int k = 0; k < 20; ++k) {
      db.get(static_cast<std::uint64_t>(window * 100 + k) * 31);
      ++ops;
    }
    agent.on_tick((static_cast<std::uint64_t>(window) + 1) * sim::kNsPerSec +
                      stack.clock().now_ns(),
                  ops);
  }
  const auto& timeline = agent.timeline();
  ASSERT_GE(timeline.size(), 2u);
  EXPECT_LT(timeline.back().epsilon, timeline.front().epsilon);
}

TEST(RlTuner, IdleWindowsDoNotUpdateQ) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  RlConfig config;
  QLearningTuner agent(stack, config);
  agent.on_tick(4 * sim::kNsPerSec, 0);
  for (double q : agent.q_table()) EXPECT_EQ(q, 0.0);
  for (const auto& p : agent.timeline()) EXPECT_EQ(p.action, -1);
}

TEST(RlTuner, RewardIsPerWindowOpsDelta) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  RlConfig config;
  QLearningTuner agent(stack, config);
  db.get(1);
  agent.on_tick(sim::kNsPerSec + 1, 7);
  db.get(2);
  agent.on_tick(2 * sim::kNsPerSec + 1, 19);
  ASSERT_EQ(agent.timeline().size(), 2u);
  EXPECT_EQ(agent.timeline()[0].reward, 7.0);
  EXPECT_EQ(agent.timeline()[1].reward, 12.0);
}

TEST(RlTuner, ConvergesTowardSmallReadaheadOnRandomReads) {
  // Online learning on SATA readrandom: after the exploration transient the
  // greedy policy for the random-pattern state must prefer a small window,
  // and post-warmup throughput must beat vanilla.
  ExperimentConfig config = tiny_experiment();
  config.device = sim::sata_ssd_config();
  RlConfig rl;
  rl.seed = 5;
  const RlEvalOutcome outcome = evaluate_rl_closed_loop(
      config, workloads::WorkloadType::kReadRandom, rl,
      /*seconds=*/40, /*warmup_seconds=*/20);
  EXPECT_GT(outcome.vanilla_ops_per_sec, 0.0);
  EXPECT_GT(outcome.speedup, 1.2);
}

}  // namespace
}  // namespace kml::readahead
