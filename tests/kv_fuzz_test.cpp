// Randomized differential tests: MiniKV against a trivial reference model
// (std::set of present keys). Random interleavings of puts, gets, scans,
// and reverse scans — across flushes and compactions — must always agree
// with the reference. The crash fuzz at the bottom extends the same idea
// to durability: randomized kill points at every fault seam, each followed
// by a recovery that must honor the exact-ack contract.
#include "kv/iterator.h"

#include "kv_crash_harness.h"
#include "math/rng.h"
#include "kv/minikv.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace kml::kv {
namespace {

sim::StackConfig fuzz_stack() {
  sim::StackConfig config;
  config.cache_pages = 2048;
  return config;
}

KVConfig fuzz_kv(std::uint64_t base_keys) {
  KVConfig config;
  config.num_keys = base_keys;
  config.geom.entry_bytes = 128;
  config.geom.block_pages = 4;
  config.memtable_limit_bytes = 16 << 10;  // flush every 128 puts
  config.max_overlay_runs = 2;             // compact aggressively
  return config;
}

class KvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvFuzz, GetsAgreeWithReferenceAcrossFlushesAndCompactions) {
  sim::StorageStack stack(fuzz_stack());
  const std::uint64_t base = 2000;
  MiniKV db(stack, fuzz_kv(base));
  std::set<std::uint64_t> reference;
  for (std::uint64_t k = 0; k < base; ++k) reference.insert(k);

  kml::math::Rng rng(GetParam());
  const std::uint64_t key_space = 3 * base;  // includes absent keys
  for (int op = 0; op < 3000; ++op) {
    const std::uint64_t key = rng.next_below(key_space);
    if (rng.next_below(3) == 0) {
      db.put(key);
      reference.insert(key);
    } else {
      EXPECT_EQ(db.get(key), reference.count(key) > 0) << "key " << key;
    }
  }
  EXPECT_GT(db.stats().flushes, 2u);      // the mix crossed flush boundaries
  EXPECT_GT(db.stats().compactions, 0u);  // ... and compactions
}

TEST_P(KvFuzz, ForwardScanMatchesSortedReference) {
  sim::StorageStack stack(fuzz_stack());
  const std::uint64_t base = 1000;
  MiniKV db(stack, fuzz_kv(base));
  std::set<std::uint64_t> reference;
  for (std::uint64_t k = 0; k < base; ++k) reference.insert(k);

  kml::math::Rng rng(GetParam() ^ 0xf00d);
  for (int op = 0; op < 700; ++op) {
    const std::uint64_t key = rng.next_below(4 * base);
    db.put(key);
    reference.insert(key);
  }

  auto it = db.new_iterator();
  auto ref_it = reference.begin();
  std::uint64_t count = 0;
  for (it->seek_to_first(); it->valid(); it->next(), ++ref_it, ++count) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it->key(), *ref_it);
  }
  EXPECT_EQ(count, reference.size());
}

TEST_P(KvFuzz, ReverseScanMatchesReverseReference) {
  sim::StorageStack stack(fuzz_stack());
  const std::uint64_t base = 800;
  MiniKV db(stack, fuzz_kv(base));
  std::set<std::uint64_t> reference;
  for (std::uint64_t k = 0; k < base; ++k) reference.insert(k);

  kml::math::Rng rng(GetParam() ^ 0xbeef);
  for (int op = 0; op < 500; ++op) {
    const std::uint64_t key = rng.next_below(3 * base);
    db.put(key);
    reference.insert(key);
  }

  auto it = db.new_iterator();
  auto ref_it = reference.rbegin();
  std::uint64_t count = 0;
  for (it->seek_to_last(); it->valid(); it->prev(), ++ref_it, ++count) {
    ASSERT_NE(ref_it, reference.rend());
    EXPECT_EQ(it->key(), *ref_it);
  }
  EXPECT_EQ(count, reference.size());
}

TEST_P(KvFuzz, SeeksMatchReferenceLowerBound) {
  sim::StorageStack stack(fuzz_stack());
  const std::uint64_t base = 1000;
  MiniKV db(stack, fuzz_kv(base));
  std::set<std::uint64_t> reference;
  for (std::uint64_t k = 0; k < base; ++k) reference.insert(k);

  kml::math::Rng rng(GetParam() ^ 0x5eec);
  for (int op = 0; op < 400; ++op) {
    const std::uint64_t key = rng.next_below(4 * base);
    db.put(key);
    reference.insert(key);
  }

  auto it = db.new_iterator();
  for (int probe = 0; probe < 300; ++probe) {
    const std::uint64_t target = rng.next_below(5 * base);
    it->seek(target);
    const auto ref = reference.lower_bound(target);
    if (ref == reference.end()) {
      EXPECT_FALSE(it->valid()) << "target " << target;
    } else {
      ASSERT_TRUE(it->valid()) << "target " << target;
      EXPECT_EQ(it->key(), *ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvFuzz,
                         ::testing::Values(1ull, 42ull, 20260706ull));

// --- Randomized crash-point recovery fuzz ------------------------------------
//
// Each iteration is one independent kill-and-recover cycle: arm a random
// durability fault site to fire after a random number of hits, run a random
// put/checkpoint mix until the store crashes (or power-cut it if the fault
// never fired), then recover the directory and check the exact-ack
// contract — every acknowledged write present, no un-acked write
// resurrected, no torn manifest accepted. 350 iterations x 3 seeds =
// 1050 randomized crash points per suite run.

class KvCrashFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvCrashFuzz, RandomCrashPointsNeverLoseAckedWrites) {
  const std::uint64_t seed = GetParam();
  const std::string dir =
      testutil::crash_dir("kv_crash_fuzz_" + std::to_string(seed));
  // One directory reused across iterations: a fresh store rewrites every
  // file its manifest references, so stale files from a prior crash are
  // inert — exactly the situation a long-lived deployment directory is in.
  const KVConfig config = testutil::crash_kv(dir);
  math::Rng rng(seed ^ 0xc4a5ull);
  constexpr FaultSite kSites[] = {FaultSite::kWalAppend,
                                  FaultSite::kCheckpointWrite,
                                  FaultSite::kManifestRename,
                                  FaultSite::kRunFlush};
  constexpr int kCrashPoints = 350;

  for (int iter = 0; iter < kCrashPoints; ++iter) {
    SCOPED_TRACE("crash point " + std::to_string(iter));
    testutil::WriteJournal journal;
    std::uint64_t durable = 0;
    {
      sim::StorageStack stack(testutil::crash_stack());
      MiniKV db(stack, config);
      ASSERT_FALSE(db.failed());
      const FaultSite site = kSites[rng.next_below(4)];
      kml_fault_arm_nth(site, 1 + rng.next_below(12));
      testutil::drive_until_crash(db, journal, rng, 60 + rng.next_below(240));
      kml_fault_disarm_all();
      // Fault never fired within the budget: cut the power mid-buffer
      // instead — an equally legitimate crash point.
      if (!db.failed()) db.crash();
      durable = db.durable_seq();
    }
    sim::StorageStack stack(testutil::crash_stack());
    auto db = MiniKV::recover(stack, config);
    ASSERT_NE(db, nullptr) << "post-crash directory failed to recover";
    testutil::verify_recovery(*db, journal, durable, config.num_keys);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasFailure()) {
      FAIL() << "recovery invariants violated; directory kept at " << dir;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvCrashFuzz,
                         ::testing::Values(1ull, 42ull, 20260706ull));

}  // namespace
}  // namespace kml::kv
