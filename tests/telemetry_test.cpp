// telemetry_test — the PR-10 observability layer: time-series retention
// (windowed deltas/rates/percentiles over registry samples), SLO burn-rate
// evaluation on top of those windows, and the Prometheus text exposition
// round-trip through a real parser.
//
// Shares one process-wide registry with every other test in this binary, so
// each test uses its own metric names and resets the rings it owns.
#include "capi/kml_api.h"
#include "observe/metrics.h"
#include "observe/slo.h"
#include "observe/timeseries.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace kml::observe;

constexpr std::uint64_t kSec = 1'000'000'000ull;

#if !KML_OBSERVE_ENABLED

// Compiled-out build: the v3 surfaces (retention ring, SLO evaluation,
// Prometheus exposition) must be inert stubs that stay link- and
// logic-compatible — same contract observe_test pins for the core layer.
TEST(TelemetryDisabled, V3SurfacesAreInertStubs) {
  timeseries_set_enabled(true);
  timeseries_sample(1);
  EXPECT_FALSE(timeseries_enabled());
  EXPECT_EQ(timeseries_samples(), 0u);
  EXPECT_EQ(timeseries_counter_delta("off.counter", 1), 0u);
  SloObjective obj;
  obj.hist_name = "off.hist";
  EXPECT_EQ(slo_register(obj), -1);
  EXPECT_EQ(slo_count(), 0u);
  EXPECT_FALSE(slo_evaluate(0).burning);
  EXPECT_TRUE(format_prometheus().empty());
  char buf[8] = {1};
  EXPECT_EQ(kml_metrics_prom(buf, sizeof(buf)), 0u);
  EXPECT_EQ(buf[0], '\0');
}

#else  // KML_OBSERVE_ENABLED

// Every timeseries test owns the ring: drop retained samples first.
void fresh_ring() {
  set_enabled(true);
  timeseries_set_enabled(true);
  timeseries_set_tick_ns(kTimeSeriesDefaultTickNs);
  timeseries_reset();
}

// --- time-series retention ---------------------------------------------------

TEST(Timeseries, CounterDeltaAndRateAcrossTicks) {
  fresh_ring();
  Counter& c = get_counter("ts.counter.rate");
  c.reset();

  c.add(100);
  timeseries_sample(1 * kSec);  // delta vs process start: 100
  c.add(50);
  timeseries_sample(3 * kSec);  // delta 50 over 2 s

  EXPECT_EQ(timeseries_samples(), 2u);
  EXPECT_EQ(timeseries_last_sample_ns(), 3 * kSec);
  EXPECT_EQ(timeseries_counter_delta("ts.counter.rate", 1), 50u);
  EXPECT_EQ(timeseries_counter_delta("ts.counter.rate", 2), 150u);
  // Window 1 spans (1 s, 3 s]: 50 events / 2 s = 25/s, exactly, in integers.
  EXPECT_EQ(timeseries_counter_rate_per_sec("ts.counter.rate", 1), 25u);
  // Unknown names and pre-first-sample queries fail closed.
  EXPECT_EQ(timeseries_counter_delta("ts.counter.absent", 1), 0u);
}

TEST(Timeseries, CounterRegistryResetReadsAsFreshDelta) {
  fresh_ring();
  Counter& c = get_counter("ts.counter.reset");
  c.reset();
  c.add(1000);
  timeseries_sample(1 * kSec);
  // A registry reset between ticks must not produce a huge wrapped delta:
  // the re-accumulated value IS the delta.
  c.reset();
  c.add(7);
  timeseries_sample(2 * kSec);
  EXPECT_EQ(timeseries_counter_delta("ts.counter.reset", 1), 7u);
}

TEST(Timeseries, GaugeRetainsLastValue) {
  fresh_ring();
  Gauge& g = get_gauge("ts.gauge.last");
  g.set(11);
  timeseries_sample(1 * kSec);
  g.set(-4);
  timeseries_sample(2 * kSec);
  EXPECT_EQ(timeseries_gauge_last("ts.gauge.last"), -4);
}

TEST(Timeseries, HistogramWindowMergeAcrossTicks) {
  fresh_ring();
  Histogram& h = get_histogram("ts.hist.merge");
  h.reset();

  // Tick 1: 90 fast records. Tick 2: 10 slow ones. A window of 1 sees only
  // the slow tick; a window of 2 merges both and must answer exactly what
  // one histogram holding all 100 records would.
  for (int i = 0; i < 90; ++i) h.record(1000);
  timeseries_sample(1 * kSec);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  timeseries_sample(2 * kSec);

  EXPECT_EQ(timeseries_hist_window_count("ts.hist.merge", 1), 10u);
  EXPECT_EQ(timeseries_hist_window_count("ts.hist.merge", 2), 100u);

  const std::uint64_t fast_lb =
      Histogram::bucket_lower_bound(Histogram::bucket_index(1000));
  const std::uint64_t slow_lb =
      Histogram::bucket_lower_bound(Histogram::bucket_index(1'000'000));
  EXPECT_EQ(timeseries_hist_window_percentile("ts.hist.merge", 1, 50),
            slow_lb);
  EXPECT_EQ(timeseries_hist_window_percentile("ts.hist.merge", 2, 50),
            fast_lb);
  EXPECT_EQ(timeseries_hist_window_percentile("ts.hist.merge", 2, 99),
            slow_lb);
  // Bit-identical to the live histogram over the same records (both sides
  // run Histogram::percentile_from_counts on identical bucket counts).
  for (const unsigned pct : {0u, 50u, 90u, 99u, 100u}) {
    EXPECT_EQ(timeseries_hist_window_percentile("ts.hist.merge", 2, pct),
              h.percentile(pct))
        << "pct=" << pct;
  }
  // Threshold classification at bucket resolution: power-of-two thresholds
  // sit exactly on bucket lower bounds, so the split is exact.
  EXPECT_EQ(timeseries_hist_window_over("ts.hist.merge", 2, 4096), 10u);
  EXPECT_EQ(timeseries_hist_window_over("ts.hist.merge", 2, 0), 100u);
  EXPECT_EQ(timeseries_hist_window_over("ts.hist.merge", 2,
                                        std::numeric_limits<
                                            std::uint64_t>::max()),
            0u);
}

TEST(Timeseries, WindowClampsToRetainedSamplesAndWraps) {
  fresh_ring();
  Counter& c = get_counter("ts.counter.wrap");
  c.reset();
  // 40 ticks of +1 each: more than the ring retains (32). A huge window
  // clamps to the retained span, so the delta is 32, not 40.
  for (unsigned t = 1; t <= 40; ++t) {
    c.add(1);
    timeseries_sample(t * kSec);
  }
  EXPECT_EQ(timeseries_samples(), 40u);
  EXPECT_EQ(timeseries_counter_delta("ts.counter.wrap", 1), 1u);
  EXPECT_EQ(timeseries_counter_delta("ts.counter.wrap", 1'000'000),
            static_cast<std::uint64_t>(kTimeSeriesTicks));
  // Window 0 clamps up to 1.
  EXPECT_EQ(timeseries_counter_delta("ts.counter.wrap", 0), 1u);
  // Full-ring rate: the oldest in-window sample is the base (its own span
  // is unknowable), so 31 intervals of 1/s remain visible.
  EXPECT_EQ(timeseries_counter_rate_per_sec("ts.counter.wrap",
                                            kTimeSeriesTicks),
            static_cast<std::uint64_t>(kTimeSeriesTicks) /
                (kTimeSeriesTicks - 1));
}

TEST(Timeseries, PollHonoursTickPeriod) {
  fresh_ring();
  timeseries_set_tick_ns(kSec);
  EXPECT_TRUE(timeseries_poll(5 * kSec));    // first poll always samples
  EXPECT_FALSE(timeseries_poll(5 * kSec));   // not due
  EXPECT_FALSE(timeseries_poll(6 * kSec - 1));
  EXPECT_TRUE(timeseries_poll(6 * kSec));    // exactly one tick later
  EXPECT_EQ(timeseries_samples(), 2u);
}

TEST(Timeseries, DisabledSamplerRetainsNothing) {
  fresh_ring();
  timeseries_set_enabled(false);
  timeseries_sample(1 * kSec);
  EXPECT_FALSE(timeseries_poll(10 * kSec));
  EXPECT_EQ(timeseries_samples(), 0u);
  timeseries_set_enabled(true);
}

// --- SLO burn-rate evaluation ------------------------------------------------

// One burn scenario: per tick, `good` records under the threshold and `bad`
// records far above it, across `ticks` samples.
void drive_slo_ticks(Histogram& h, int ticks, int good, int bad,
                     std::uint64_t start_tick) {
  for (int t = 0; t < ticks; ++t) {
    for (int i = 0; i < good; ++i) h.record(100);
    for (int i = 0; i < bad; ++i) h.record(1'000'000);
    timeseries_sample((start_tick + static_cast<std::uint64_t>(t)) * kSec);
  }
}

TEST(Slo, BurnRateIntegerMathIsExact) {
  fresh_ring();
  slo_reset();
  Histogram& h = get_histogram("slo.hist.math");
  h.reset();

  SloObjective obj;
  obj.hist_name = "slo.hist.math";
  obj.threshold_ns = 1024;        // power of two: exact bucket split
  obj.objective_milli = 900;      // error budget: 100 milli (10%)
  obj.fast_window_ticks = 1;
  obj.slow_window_ticks = 2;
  obj.fast_burn_trip_milli = 500;
  obj.slow_burn_trip_milli = 500;
  obj.min_window_records = 10;
  const int idx = slo_register(obj);
  ASSERT_GE(idx, 0);
  EXPECT_EQ(slo_count(), 1u);
  ASSERT_NE(slo_objective(static_cast<std::size_t>(idx)), nullptr);
  EXPECT_EQ(slo_objective(static_cast<std::size_t>(idx))->threshold_ns,
            1024u);

  // Two ticks of 90 good / 10 bad: bad ratio 100 milli against a 100-milli
  // budget — burn rate exactly 1000 milli (1.0x budget) in both windows.
  drive_slo_ticks(h, 2, 90, 10, 1);
  const SloStatus s = slo_evaluate(static_cast<std::size_t>(idx));
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.fast_total, 100u);
  EXPECT_EQ(s.fast_bad, 10u);
  EXPECT_EQ(s.slow_total, 200u);
  EXPECT_EQ(s.slow_bad, 20u);
  EXPECT_EQ(s.fast_burn_milli, 1000u);
  EXPECT_EQ(s.slow_burn_milli, 1000u);
  EXPECT_TRUE(s.burning);  // 1000 > 500 in both windows
}

TEST(Slo, HealthyWindowDoesNotBurn) {
  fresh_ring();
  slo_reset();
  Histogram& h = get_histogram("slo.hist.healthy");
  h.reset();
  SloObjective obj;
  obj.hist_name = "slo.hist.healthy";
  obj.threshold_ns = 1024;
  obj.objective_milli = 900;
  obj.fast_window_ticks = 1;
  obj.slow_window_ticks = 2;
  obj.fast_burn_trip_milli = 500;
  obj.slow_burn_trip_milli = 500;
  obj.min_window_records = 10;
  const int idx = slo_register(obj);
  ASSERT_GE(idx, 0);
  drive_slo_ticks(h, 2, 100, 0, 1);
  const SloStatus s = slo_evaluate(static_cast<std::size_t>(idx));
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.fast_burn_milli, 0u);
  EXPECT_FALSE(s.burning);
}

TEST(Slo, BothWindowsMustExceedToTrip) {
  // One bad burst inside an otherwise healthy long window: the fast window
  // screams but the slow window holds the trip back (the multiwindow point:
  // page on sustained burn, not blips).
  fresh_ring();
  slo_reset();
  Histogram& h = get_histogram("slo.hist.blip");
  h.reset();
  SloObjective obj;
  obj.hist_name = "slo.hist.blip";
  obj.threshold_ns = 1024;
  obj.objective_milli = 900;
  obj.fast_window_ticks = 1;
  obj.slow_window_ticks = 8;
  obj.fast_burn_trip_milli = 500;
  obj.slow_burn_trip_milli = 900;
  obj.min_window_records = 10;
  const int idx = slo_register(obj);
  ASSERT_GE(idx, 0);
  drive_slo_ticks(h, 7, 100, 0, 1);  // seven clean ticks
  drive_slo_ticks(h, 1, 0, 50, 8);   // one fully-bad (smaller) tick
  const SloStatus s = slo_evaluate(static_cast<std::size_t>(idx));
  ASSERT_TRUE(s.valid);
  // Fast window: 100% bad -> burn 10000 milli, far past its 500 trip.
  EXPECT_GT(s.fast_burn_milli, 500u);
  // Slow window: 50/750 bad -> 66 milli ratio on a 100-milli budget ->
  // burn 660 milli, under its 900 trip.
  EXPECT_LE(s.slow_burn_milli, 900u);
  EXPECT_FALSE(s.burning);
}

TEST(Slo, ThinWindowsAreInvalidNotBurning) {
  fresh_ring();
  slo_reset();
  Histogram& h = get_histogram("slo.hist.thin");
  h.reset();
  SloObjective obj;
  obj.hist_name = "slo.hist.thin";
  obj.threshold_ns = 1024;
  obj.min_window_records = 64;
  obj.fast_window_ticks = 1;
  obj.slow_window_ticks = 2;
  const int idx = slo_register(obj);
  ASSERT_GE(idx, 0);
  drive_slo_ticks(h, 2, 3, 3, 1);  // 6 records per tick << 64
  const SloStatus s = slo_evaluate(static_cast<std::size_t>(idx));
  EXPECT_FALSE(s.valid);
  EXPECT_FALSE(s.burning);
}

TEST(Slo, RegistrationValidatesInput) {
  slo_reset();
  SloObjective bad;
  bad.hist_name = nullptr;
  EXPECT_EQ(slo_register(bad), -1);
  EXPECT_EQ(slo_count(), 0u);
  EXPECT_EQ(slo_objective(0), nullptr);
  // Out-of-range evaluate fails closed.
  const SloStatus s = slo_evaluate(99);
  EXPECT_FALSE(s.valid);
  EXPECT_FALSE(s.burning);
  slo_reset();
}

// --- Prometheus exposition round-trip ----------------------------------------

struct PromSample {
  std::string name;
  std::string le;  // empty for non-bucket samples
  long long value = 0;
};

struct PromParse {
  std::map<std::string, std::string> types;  // metric family -> TYPE
  std::vector<PromSample> samples;
  int bad_lines = 0;
};

bool prom_name_ok(const std::string& s) {
  if (s.empty()) return false;
  for (const char ch : s) {
    if (!(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
          ch == ':')) {
      return false;
    }
  }
  return !std::isdigit(static_cast<unsigned char>(s[0]));
}

// A strict-enough parser for text format 0.0.4 as this repo emits it:
// `# TYPE <family> <kind>` comments and `name[{le="<x>"}] <integer>`
// sample lines. Anything else on a non-empty line counts as bad.
PromParse parse_prom(const std::string& text) {
  PromParse out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string family, kind;
      if (ls >> family >> kind &&
          (kind == "counter" || kind == "gauge" || kind == "histogram")) {
        out.types[family] = kind;
      } else {
        ++out.bad_lines;
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    PromSample s;
    std::string::size_type value_at;
    const std::string::size_type brace = line.find('{');
    if (brace != std::string::npos) {
      const std::string::size_type close = line.find('}', brace);
      const std::string labels = close == std::string::npos
                                     ? std::string()
                                     : line.substr(brace + 1,
                                                   close - brace - 1);
      if (close == std::string::npos || labels.rfind("le=\"", 0) != 0 ||
          labels.back() != '"') {
        ++out.bad_lines;
        continue;
      }
      s.name = line.substr(0, brace);
      s.le = labels.substr(4, labels.size() - 5);
      value_at = close + 1;
    } else {
      const std::string::size_type space = line.find(' ');
      if (space == std::string::npos) {
        ++out.bad_lines;
        continue;
      }
      s.name = line.substr(0, space);
      value_at = space;
    }
    char* end = nullptr;
    s.value = std::strtoll(line.c_str() + value_at, &end, 10);
    if (end == line.c_str() + value_at || *end != '\0') {
      ++out.bad_lines;
      continue;
    }
    out.samples.push_back(s);
  }
  return out;
}

TEST(Prometheus, ExpositionRoundTripsThroughParser) {
  set_enabled(true);
  Counter& c = get_counter("prom.rt.requests");
  c.reset();
  c.add(5);
  Gauge& g = get_gauge("prom.rt.depth");
  g.set(-3);
  Histogram& h = get_histogram("prom.rt.lat_ns");
  h.reset();
  for (int i = 0; i < 3; ++i) h.record(100);
  h.record(1'000'000'000);
  h.record(std::numeric_limits<std::uint64_t>::max());  // overflow bucket

  const std::string text = format_prometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  const PromParse p = parse_prom(text);
  EXPECT_EQ(p.bad_lines, 0) << text.substr(0, 400);

  // Every sample belongs to a declared family with a sanitized name.
  for (const PromSample& s : p.samples) {
    EXPECT_TRUE(prom_name_ok(s.name)) << s.name;
    std::string family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string suf(suffix);
      if (family.size() > suf.size() &&
          family.compare(family.size() - suf.size(), suf.size(), suf) == 0 &&
          p.types.count(family.substr(0, family.size() - suf.size()))) {
        family = family.substr(0, family.size() - suf.size());
        break;
      }
    }
    EXPECT_TRUE(p.types.count(family) == 1 ||
                p.types.count(s.name) == 1)
        << "undeclared family for " << s.name;
  }

  // The three metrics written above come back with their exact values.
  long long counter_val = -1, gauge_val = 0, count_val = -1, inf_val = -1;
  std::vector<long long> cumulative;
  std::vector<std::string> les;
  for (const PromSample& s : p.samples) {
    if (s.name == "kml_prom_rt_requests_total") counter_val = s.value;
    if (s.name == "kml_prom_rt_depth") gauge_val = s.value;
    if (s.name == "kml_prom_rt_lat_ns_count") count_val = s.value;
    if (s.name == "kml_prom_rt_lat_ns_bucket") {
      cumulative.push_back(s.value);
      les.push_back(s.le);
      if (s.le == "+Inf") inf_val = s.value;
    }
  }
  EXPECT_EQ(counter_val, 5);
  EXPECT_EQ(gauge_val, -3);
  EXPECT_EQ(count_val, 5);
  EXPECT_EQ(inf_val, 5);
  // Counter TYPE lines carry the full sample name (`..._total`), the
  // classic text-format 0.0.4 convention.
  EXPECT_EQ(p.types.at("kml_prom_rt_requests_total"), "counter");
  EXPECT_EQ(p.types.at("kml_prom_rt_depth"), "gauge");
  EXPECT_EQ(p.types.at("kml_prom_rt_lat_ns"), "histogram");
  // Histogram buckets: cumulative and non-decreasing, +Inf last.
  ASSERT_GE(cumulative.size(), 2u);
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_LE(cumulative[i - 1], cumulative[i]);
  }
  EXPECT_EQ(les.back(), "+Inf");
  // The synthetic registry-overflow counter is part of the scrape.
  bool saw_overflow = false;
  for (const PromSample& s : p.samples) {
    if (s.name == "kml_observe_registry_overflow_total") saw_overflow = true;
  }
  EXPECT_TRUE(saw_overflow);
}

TEST(Prometheus, CApiUsesSnprintfConvention) {
  Counter& c = get_counter("prom.capi.counter");
  c.reset();
  c.add(1);
  char probe[1] = {'x'};
  const size_t need = kml_metrics_prom(probe, sizeof(probe));
  ASSERT_GT(need, 0u);
  EXPECT_EQ(probe[0], '\0');  // truncated but NUL-terminated
  std::vector<char> full(need + 1);
  EXPECT_EQ(kml_metrics_prom(full.data(), full.size()), need);
  EXPECT_EQ(std::strlen(full.data()), need);
  EXPECT_NE(std::strstr(full.data(), "kml_prom_capi_counter_total"),
            nullptr);
}

TEST(Prometheus, TimeseriesCApiDelegates) {
  kml_timeseries_reset();
  EXPECT_EQ(kml_timeseries_samples(), 0ull);
  kml_timeseries_sample(1 * kSec);
  EXPECT_EQ(kml_timeseries_samples(), 1ull);
  EXPECT_EQ(kml_timeseries_poll(1 * kSec), 0);
  EXPECT_EQ(kml_timeseries_poll(2 * kSec), 1);
  EXPECT_EQ(kml_timeseries_samples(), 2ull);
  kml_timeseries_reset();
}

#endif  // KML_OBSERVE_ENABLED

}  // namespace
