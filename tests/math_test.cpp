// Tests for src/math: the from-scratch approximations, fixed-point type,
// RNG/Zipf, and running statistics. Accuracy bounds are pinned against
// <cmath> references.
#include "math/approx.h"
#include "math/fixed.h"
#include "math/rng.h"
#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace kml::math {
namespace {

// --- approx ------------------------------------------------------------------

TEST(Approx, ExpMatchesLibmOverWideRange) {
  for (double x = -30.0; x <= 30.0; x += 0.137) {
    const double ref = std::exp(x);
    EXPECT_NEAR(kml_exp(x), ref, std::abs(ref) * 1e-10 + 1e-300) << x;
  }
}

TEST(Approx, ExpEdgeCases) {
  EXPECT_EQ(kml_exp(0.0), 1.0);
  EXPECT_EQ(kml_exp(-1000.0), 0.0);
  EXPECT_TRUE(kml_isinf(kml_exp(1000.0)));
  EXPECT_TRUE(kml_isnan(kml_exp(kml_nan())));
}

TEST(Approx, ExpSubnormalRange) {
  // Around the subnormal boundary the result must stay monotone and finite.
  const double a = kml_exp(-709.0);
  const double b = kml_exp(-720.0);
  EXPECT_GT(a, b);
  EXPECT_GT(b, 0.0);
}

TEST(Approx, LogMatchesLibm) {
  for (double x : {1e-10, 1e-3, 0.5, 1.0, 1.5, 2.0, 10.0, 12345.678, 1e18}) {
    EXPECT_NEAR(kml_log(x), std::log(x), std::abs(std::log(x)) * 1e-12 + 1e-12)
        << x;
  }
}

TEST(Approx, LogEdgeCases) {
  EXPECT_TRUE(kml_isnan(kml_log(-1.0)));
  EXPECT_TRUE(kml_isinf(kml_log(0.0)));
  EXPECT_LT(kml_log(0.0), 0.0);
  EXPECT_TRUE(kml_isinf(kml_log(kml_inf())));
}

TEST(Approx, LogExpRoundTrip) {
  for (double x = -20.0; x <= 20.0; x += 0.618) {
    EXPECT_NEAR(kml_log(kml_exp(x)), x, 1e-10) << x;
  }
}

TEST(Approx, SigmoidProperties) {
  EXPECT_DOUBLE_EQ(kml_sigmoid(0.0), 0.5);
  EXPECT_NEAR(kml_sigmoid(10.0) + kml_sigmoid(-10.0), 1.0, 1e-12);
  EXPECT_NEAR(kml_sigmoid(-800.0), 0.0, 1e-12);  // stable in the far tail
  EXPECT_NEAR(kml_sigmoid(800.0), 1.0, 1e-12);
  for (double x = -8.0; x <= 8.0; x += 0.31) {
    EXPECT_NEAR(kml_sigmoid(x), 1.0 / (1.0 + std::exp(-x)), 1e-12) << x;
  }
}

TEST(Approx, TanhMatchesLibm) {
  for (double x = -5.0; x <= 5.0; x += 0.173) {
    EXPECT_NEAR(kml_tanh(x), std::tanh(x), 1e-10) << x;
  }
}

TEST(Approx, SqrtMatchesLibm) {
  for (double x : {0.0, 1e-12, 0.25, 1.0, 2.0, 1e6, 1e18}) {
    EXPECT_NEAR(kml_sqrt(x), std::sqrt(x), std::sqrt(x) * 1e-12) << x;
  }
  EXPECT_TRUE(kml_isnan(kml_sqrt(-1.0)));
}

TEST(Approx, PowIntegerFastPathIsExact) {
  EXPECT_DOUBLE_EQ(kml_pow(2.0, 10.0), 1024.0);
  EXPECT_DOUBLE_EQ(kml_pow(3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(kml_pow(2.0, -3.0), 0.125);
  EXPECT_DOUBLE_EQ(kml_pow(-2.0, 2.0), 4.0);  // negative base, integer exp
}

TEST(Approx, PowGeneralMatchesLibm) {
  for (double x : {0.5, 1.7, 3.14159, 100.0}) {
    for (double y : {-2.5, -0.3, 0.5, 1.9}) {
      EXPECT_NEAR(kml_pow(x, y), std::pow(x, y),
                  std::abs(std::pow(x, y)) * 1e-10)
          << x << "^" << y;
    }
  }
}

TEST(Approx, SoftmaxSumsToOneAndIsStable) {
  const double in[4] = {1000.0, 1001.0, 999.0, 1000.5};  // would overflow naive
  double out[4];
  kml_softmax(in, out, 4);
  double sum = 0.0;
  for (double v : out) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(out[1], out[3]);
  EXPECT_GT(out[3], out[0]);
}

TEST(Approx, LogSumExpStable) {
  const double in[3] = {1000.0, 1000.0, 1000.0};
  EXPECT_NEAR(kml_log_sum_exp(in, 3), 1000.0 + std::log(3.0), 1e-9);
}

// --- fixed point --------------------------------------------------------------

TEST(Fixed, RoundTripConversion) {
  for (double v : {-100.25, -1.5, 0.0, 0.5, 3.75, 1000.125}) {
    EXPECT_NEAR(Fixed::from_double(v).to_double(), v, 1.0 / (1 << 16)) << v;
  }
}

TEST(Fixed, Arithmetic) {
  const Fixed a = Fixed::from_double(2.5);
  const Fixed b = Fixed::from_double(1.25);
  EXPECT_NEAR((a + b).to_double(), 3.75, 1e-4);
  EXPECT_NEAR((a - b).to_double(), 1.25, 1e-4);
  EXPECT_NEAR((a * b).to_double(), 3.125, 1e-3);
  EXPECT_NEAR((a / b).to_double(), 2.0, 1e-3);
  EXPECT_NEAR((-a).to_double(), -2.5, 1e-4);
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
  const Fixed big = Fixed::from_double(30000.0);
  EXPECT_EQ(big * big, Fixed::max());
  EXPECT_EQ(-big * big, Fixed::min());
  EXPECT_EQ(big + big, Fixed::max());
  const Fixed neg = Fixed::from_double(-30000.0);
  EXPECT_EQ(neg + neg, Fixed::min());
}

TEST(Fixed, DivideByZeroSaturates) {
  EXPECT_EQ(Fixed::from_int(5) / Fixed::zero(), Fixed::max());
  EXPECT_EQ(Fixed::from_int(-5) / Fixed::zero(), Fixed::min());
}

TEST(Fixed, MultiplyRoundsToNearest) {
  // Regression: multiply used an arithmetic right shift, which floors — so
  // every negative product was biased one ULP toward -inf. Q16.16 products
  // now round to nearest, ties away from zero, symmetrically in sign.
  const Fixed a = Fixed::from_double(0.1);   // inexact in Q16.16
  const Fixed b = Fixed::from_double(0.7);
  EXPECT_EQ(((-a) * b).raw(), -(a * b).raw());
  EXPECT_EQ((a * (-b)).raw(), -(a * b).raw());
  EXPECT_EQ(((-a) * (-b)).raw(), (a * b).raw());

  // Smallest representable halves: 2^-16 * 0.5 = 2^-17, exactly a tie —
  // rounds away from zero instead of truncating to 0.
  const Fixed ulp = Fixed::from_raw(1);
  const Fixed half = Fixed::from_double(0.5);
  EXPECT_EQ((ulp * half).raw(), 1);
  EXPECT_EQ(((-ulp) * half).raw(), -1);
}

TEST(Fixed, MultiplySymmetricOverSweep) {
  // (-a)*b == -(a*b) for a sweep of raw values that exercise all fractional
  // bit patterns; the old shift-based multiply failed for most of these.
  for (std::int32_t ra = 1; ra < 1 << 18; ra = ra * 3 + 1) {
    for (std::int32_t rb = 1; rb < 1 << 18; rb = rb * 5 + 3) {
      const Fixed a = Fixed::from_raw(ra);
      const Fixed b = Fixed::from_raw(rb);
      ASSERT_EQ(((-a) * b).raw(), -(a * b).raw()) << ra << " * " << rb;
    }
  }
}

TEST(Fixed, DivideRoundsToNearest) {
  // 1 / 3 in Q16.16: true quotient 21845.33 -> 21845; 2 / 3: 43690.67 ->
  // 43691 (the floor-based divide gave 43690). Negatives mirror exactly.
  const Fixed one = Fixed::from_int(1);
  const Fixed two = Fixed::from_int(2);
  const Fixed three = Fixed::from_int(3);
  EXPECT_EQ((one / three).raw(), 21845);
  EXPECT_EQ((two / three).raw(), 43691);
  EXPECT_EQ(((-two) / three).raw(), -43691);
  EXPECT_EQ((two / (-three)).raw(), -43691);
}

TEST(Fixed, ToIntRoundsToNearestTiesAway) {
  // Regression: to_int() used an arithmetic shift, i.e. floor — so
  // to_int(2.9) returned 2 and to_int(-2.4) returned -3. Now symmetric
  // round-half-away-from-zero.
  EXPECT_EQ(Fixed::from_double(2.9).to_int(), 3);
  EXPECT_EQ(Fixed::from_double(2.4).to_int(), 2);
  EXPECT_EQ(Fixed::from_double(2.5).to_int(), 3);
  EXPECT_EQ(Fixed::from_double(-2.4).to_int(), -2);
  EXPECT_EQ(Fixed::from_double(-2.5).to_int(), -3);
  EXPECT_EQ(Fixed::from_double(-2.9).to_int(), -3);
  EXPECT_EQ(Fixed::from_double(-0.4).to_int(), 0);
  EXPECT_EQ(Fixed::from_double(0.5).to_int(), 1);
  for (int v = -50; v <= 50; ++v) {
    EXPECT_EQ(Fixed::from_int(v).to_int(), v) << v;  // integers exact
  }
}

TEST(Fixed, SigmoidApproximationBounds) {
  // Piecewise-linear sigmoid: max abs error vs the real one is ~0.07 inside
  // (-4, 4) and exact at the rails.
  EXPECT_EQ(fixed_sigmoid(Fixed::from_double(10.0)), Fixed::one());
  EXPECT_EQ(fixed_sigmoid(Fixed::from_double(-10.0)), Fixed::zero());
  for (double x = -6.0; x <= 6.0; x += 0.25) {
    const double approx = fixed_sigmoid(Fixed::from_double(x)).to_double();
    const double ref = 1.0 / (1.0 + std::exp(-x));
    EXPECT_NEAR(approx, ref, 0.125) << x;
  }
  EXPECT_NEAR(fixed_sigmoid(Fixed::zero()).to_double(), 0.5, 1e-4);
}

// --- rng ------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Zipf, RanksAreBoundedAndSkewed) {
  Rng rng(17);
  Zipf zipf(1000, 0.9, rng);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t r = zipf.next();
    ASSERT_LT(r, 1000u);
    ++counts[static_cast<std::size_t>(r)];
  }
  // Rank 0 must dominate rank 100 heavily under theta = 0.9.
  EXPECT_GT(counts[0], counts[100] * 10);
  // And the head must not be everything: the tail gets some mass.
  int tail = 0;
  for (int i = 500; i < 1000; ++i) tail += counts[static_cast<std::size_t>(i)];
  EXPECT_GT(tail, 100);
}

TEST(Zipf, DistributionSanityAt100kAcrossThetas) {
  // Fleet-scale sanity: n = 100k tenants at the workload-study skews
  // (theta 0.9 / 0.99) plus a super-linear 1.2 (alpha = 1/(1-theta) goes
  // negative there — the Gray et al. inversion must still be well-behaved).
  const double thetas[] = {0.9, 0.99, 1.2};
  int head[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    Rng rng(123);
    Zipf zipf(100'000, thetas[t], rng);
    std::vector<int> counts(100'000, 0);
    for (int i = 0; i < 200'000; ++i) {
      const std::uint64_t r = zipf.next();
      ASSERT_LT(r, 100'000u);
      ++counts[static_cast<std::size_t>(r)];
    }
    // Head frequencies decay monotonically in rank, and the head is heavy
    // (empirically rank 0 draws >= 9k of 200k even at theta 0.9).
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[100]);
    EXPECT_GT(counts[0], 5'000);
    // The tail never collapses to zero mass, even at theta 1.2
    // (empirically ~2.7k of 200k draws land in ranks >= 50k there).
    int tail = 0;
    for (int i = 50'000; i < 100'000; ++i) {
      tail += counts[static_cast<std::size_t>(i)];
    }
    EXPECT_GT(tail, 500);
    head[t] = counts[0];
  }
  // Skew must increase with theta.
  EXPECT_GT(head[1], head[0]);
  EXPECT_GT(head[2], head[1]);
}

TEST(Zipf, DeterministicForFixedSeed) {
  for (const double theta : {0.9, 0.99, 1.2}) {
    Rng r1(7);
    Rng r2(7);
    Zipf a(100'000, theta, r1);
    Zipf b(100'000, theta, r2);
    for (int i = 0; i < 20'000; ++i) {
      ASSERT_EQ(a.next(), b.next()) << "theta=" << theta << " i=" << i;
    }
  }
}

// --- stats ------------------------------------------------------------------

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Population variance of 1..100 = (n^2-1)/12 = 833.25.
  EXPECT_NEAR(s.variance(), 833.25, 1e-9);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Welford must survive mean ~1e12 with tiny variance.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e12 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(MovingAverageTest, SlidesOverWindow) {
  MovingAverage ma(3);
  EXPECT_EQ(ma.value(), 0.0);
  ma.add(3.0);
  EXPECT_DOUBLE_EQ(ma.value(), 3.0);
  ma.add(6.0);
  ma.add(9.0);
  EXPECT_DOUBLE_EQ(ma.value(), 6.0);
  ma.add(12.0);  // 3.0 falls out
  EXPECT_DOUBLE_EQ(ma.value(), 9.0);
  ma.reset();
  EXPECT_EQ(ma.count(), 0u);
}

TEST(ZScoreTest, StandardizesAndGuardsZeroStd) {
  EXPECT_DOUBLE_EQ(z_score(15.0, 10.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(z_score(5.0, 10.0, 5.0), -1.0);
  EXPECT_DOUBLE_EQ(z_score(123.0, 10.0, 0.0), 0.0);  // constant feature
}

TEST(PearsonTest, PerfectAndInverseCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x.data(), y.data(), 5), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x.data(), z.data(), 5), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1, 1};
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_EQ(pearson(x.data(), y.data(), 4), 0.0);
  EXPECT_EQ(pearson(x.data(), y.data(), 1), 0.0);
}

}  // namespace
}  // namespace kml::math
