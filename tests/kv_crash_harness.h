// kv_crash_harness.h — shared kill-and-recover machinery for the MiniKV
// crash-consistency tests (kv_recover_test and the kv_fuzz_test crash fuzz).
//
// The contract under test (DESIGN.md §12): after any crash — an injected
// durability fault at one of the FaultSite seams or a plain power cut via
// MiniKV::crash() — recover() must produce a store where
//   (1) every write acknowledged durable (seq <= durable_seq() at the
//       moment of the crash) is present,
//   (2) a non-base key whose writes were all un-acknowledged is absent
//       (the torn WAL tail dies whole, never resurrects), and
//   (3) the store reports exactly one recovery and a durable horizon no
//       older than the crash-time one.
//
// The journal records what the *application* observed (which puts were
// accepted, with which sequence numbers); ack status is decided only after
// the crash by comparing against the frozen durable_seq(). That mirrors how
// a real client of a group-committed store reasons about its data.
#pragma once

#include "kv/minikv.h"
#include "math/rng.h"
#include "portability/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace kml::kv::testutil {

// Fresh empty directory under the gtest temp root. Reusing one directory
// across crash iterations is safe — every file a new manifest references is
// rewritten in truncate mode — but each test keeps its own namespace so a
// failing iteration leaves a debuggable corpse.
inline std::string crash_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline sim::StackConfig crash_stack() {
  sim::StackConfig config;
  config.cache_pages = 2048;
  return config;
}

// Small, twitchy store: group commit every 4 puts, flush every 16, compact
// at 2 overlays — a short workload crosses every durability seam (WAL
// commit, run flush, manifest write, manifest rename) many times.
inline KVConfig crash_kv(const std::string& dir,
                         std::uint64_t base_keys = 64) {
  KVConfig config;
  config.num_keys = base_keys;
  config.geom.entry_bytes = 128;
  config.geom.block_pages = 4;
  config.memtable_limit_bytes = 2 << 10;  // 16 entries per flush
  config.wal_buffer_bytes = 512;          // 4 records per group commit
  config.max_overlay_runs = 2;
  config.durable_dir = dir;
  return config;
}

// Every accepted put's (key, seq), in acceptance order.
struct WriteJournal {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> puts;

  // Issue a put and journal it iff the store accepted it (a crashed store
  // refuses writes without consuming a sequence number).
  void record_put(MiniKV& db, std::uint64_t key) {
    const std::uint64_t before = db.last_seq();
    db.put(key);
    if (db.last_seq() == before + 1) puts.emplace_back(key, before + 1);
  }

  // Keys with at least one acknowledged write (seq <= durable).
  std::vector<std::uint64_t> acked_keys(std::uint64_t durable) const {
    std::vector<std::uint64_t> keys;
    for (const auto& [key, seq] : puts) {
      if (seq <= durable) keys.push_back(key);
    }
    dedupe(&keys);
    return keys;
  }

  // Non-base keys whose every write was un-acknowledged: these must be
  // absent after recovery. (Base keys are always present; an acked write
  // to a key also keeps it present regardless of later un-acked ones.)
  std::vector<std::uint64_t> unacked_only_keys(std::uint64_t durable,
                                               std::uint64_t base_keys) const {
    std::vector<std::uint64_t> acked = acked_keys(durable);
    std::vector<std::uint64_t> keys;
    for (const auto& [key, seq] : puts) {
      if (seq > durable && key >= base_keys &&
          !std::binary_search(acked.begin(), acked.end(), key)) {
        keys.push_back(key);
      }
    }
    dedupe(&keys);
    return keys;
  }

 private:
  static void dedupe(std::vector<std::uint64_t>* keys) {
    std::sort(keys->begin(), keys->end());
    keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
  }
};

// Drive random puts (seasoned with occasional checkpoints) until the store
// crashes on an armed fault or the op budget runs out. Keys span 4x the
// base range so the journal holds base overwrites and fresh keys alike.
inline void drive_until_crash(MiniKV& db, WriteJournal& journal,
                              math::Rng& rng, std::uint64_t max_ops) {
  const std::uint64_t key_space = 4 * db.num_keys();
  for (std::uint64_t op = 0; op < max_ops && !db.failed(); ++op) {
    if (rng.next_below(40) == 0) {
      (void)db.checkpoint();
    } else {
      journal.record_put(db, rng.next_below(key_space));
    }
  }
}

// The post-recovery invariant check shared by every kill-and-recover test.
// `durable_at_crash` is durable_seq() read from the dead store.
inline void verify_recovery(MiniKV& db, const WriteJournal& journal,
                            std::uint64_t durable_at_crash,
                            std::uint64_t base_keys) {
  EXPECT_EQ(db.stats().recoveries, 1u);
  EXPECT_GE(db.durable_seq(), durable_at_crash);
  for (const std::uint64_t key : journal.acked_keys(durable_at_crash)) {
    EXPECT_TRUE(db.get(key)) << "acked key " << key << " lost in recovery";
  }
  for (const std::uint64_t key :
       journal.unacked_only_keys(durable_at_crash, base_keys)) {
    EXPECT_FALSE(db.get(key)) << "un-acked key " << key << " resurrected";
  }
}

}  // namespace kml::kv::testutil
