// Tests for src/baselines: the Markov-chain prefetching baseline (Laga et
// al. comparison) — learning, prediction, confidence gating, memory growth.
#include "baselines/markov.h"

#include "math/rng.h"

#include <gtest/gtest.h>

namespace kml::baselines {
namespace {

sim::StackConfig tiny_stack() {
  sim::StackConfig config;
  config.cache_pages = 8192;
  return config;
}

TEST(Markov, LearnsDeterministicTransitionAndPrefetches) {
  sim::StorageStack stack(tiny_stack());
  sim::FileHandle& f = stack.files().create(100000);
  f.ra_pages = 0;  // isolate the baseline from kernel readahead

  MarkovConfig config;
  config.block_pages = 4;
  MarkovPrefetcher prefetcher(stack, config);

  // Deterministic pattern: block 10 -> block 50, repeated.
  for (int round = 0; round < 6; ++round) {
    stack.cache().read(f, 10 * 4, 1);
    stack.cache().read(f, 50 * 4, 1);
    stack.cache().drop_all();  // force re-misses each round
    prefetcher.on_tick();
  }
  EXPECT_GT(prefetcher.transitions_learned(), 0u);
  EXPECT_GT(prefetcher.prefetches_issued(), 0u);

  // After learning, visiting block 10 prefetches block 50: the next access
  // to block 50 is a cache hit.
  stack.cache().drop_all();
  stack.cache().read(f, 10 * 4, 1);
  prefetcher.on_tick();
  EXPECT_TRUE(stack.cache().cached(f.inode, 50 * 4));
}

TEST(Markov, LowConfidenceTransitionsAreNotPrefetched) {
  sim::StorageStack stack(tiny_stack());
  sim::FileHandle& f = stack.files().create(100000);
  f.ra_pages = 0;

  MarkovConfig config;
  config.block_pages = 4;
  config.confidence = 0.9;  // require near-determinism
  MarkovPrefetcher prefetcher(stack, config);

  // Block 10 alternates between many successors: no one clears 90%.
  for (int round = 0; round < 12; ++round) {
    stack.cache().read(f, 10 * 4, 1);
    stack.cache().read(f, static_cast<std::uint64_t>(20 + round) * 4, 1);
    stack.cache().drop_all();
    prefetcher.on_tick();
  }
  EXPECT_EQ(prefetcher.prefetches_issued(), 0u);
}

TEST(Markov, MemoryGrowsWithDistinctBlocks) {
  sim::StorageStack stack(tiny_stack());
  sim::FileHandle& f = stack.files().create(1000000);
  f.ra_pages = 0;
  MarkovConfig config;
  MarkovPrefetcher prefetcher(stack, config);

  const std::size_t empty = prefetcher.memory_bytes();
  kml::math::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    stack.cache().read(f, rng.next_below(900000), 1);
  }
  // The table tracks per-block state: memory scales with footprint — the
  // structural weakness the paper contrasts with KML's fixed-size model.
  EXPECT_GT(prefetcher.memory_bytes(), empty + 10000);
}

TEST(Markov, UnregistersHookOnDestruction) {
  sim::StorageStack stack(tiny_stack());
  {
    MarkovPrefetcher prefetcher(stack, MarkovConfig{});
    EXPECT_EQ(stack.tracepoints().hook_count(), 1);
  }
  EXPECT_EQ(stack.tracepoints().hook_count(), 0);
}

TEST(Markov, SuccessorSetIsBounded) {
  sim::StorageStack stack(tiny_stack());
  sim::FileHandle& f = stack.files().create(1000000);
  f.ra_pages = 0;
  MarkovConfig config;
  config.block_pages = 4;
  config.max_successors = 2;
  MarkovPrefetcher prefetcher(stack, config);

  // One predecessor block fanning out to many successors: memory for that
  // entry must stay bounded by max_successors.
  for (int i = 0; i < 50; ++i) {
    stack.cache().read(f, 10 * 4, 1);
    stack.cache().read(f, static_cast<std::uint64_t>(100 + i) * 4, 1);
    stack.cache().drop_all();
  }
  // 1 predecessor entry + bounded successors + per-inode cursor: well under
  // an unbounded-successor implementation.
  EXPECT_LT(prefetcher.memory_bytes(), 51 * 16 + 4096);
}

}  // namespace
}  // namespace kml::baselines
