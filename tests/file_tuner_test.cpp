// Tests for src/readahead/file_tuner: per-inode demultiplexing, independent
// actuation, the min-events gate, and the mixed-tenant evaluation.
#include "readahead/file_tuner.h"
#include "readahead/pipeline.h"

#include <gtest/gtest.h>

namespace kml::readahead {
namespace {

ExperimentConfig tiny_experiment() {
  ExperimentConfig config;
  config.num_keys = 100000;
  config.cache_pages = 2048;
  return config;
}

// Predictor keyed on the pattern feature: sequential-looking streams are
// class 0, scattered ones class 1 (model-input order: [2] = log mean |Δ|).
int pattern_oracle(const FeatureVector& f) {
  return f[2] < 3.0 ? 0 : 1;
}

TEST(PerFileTunerTest, ActuatesFilesIndependently) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  sim::FileHandle& seq_file = stack.files().create(100000);
  sim::FileHandle& rand_file = stack.files().create(100000);

  TunerConfig config;
  config.class_ra_kb = {1024, 16, 512, 32};
  PerFileTuner tuner(stack, pattern_oracle, config, /*min_events=*/16);

  // Drive distinct patterns on the two files.
  math::Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    stack.cache().read(seq_file, static_cast<std::uint64_t>(i), 1);
    stack.cache().read(rand_file, rng.next_below(90000), 1);
    tuner.on_tick(stack.clock().now_ns());
  }
  tuner.on_tick(stack.clock().now_ns() + sim::kNsPerSec);

  ASSERT_EQ(tuner.windows(), 1u);
  EXPECT_EQ(stack.block_layer().file_readahead_kb(seq_file.inode), 1024u);
  EXPECT_EQ(stack.block_layer().file_readahead_kb(rand_file.inode), 16u);
  EXPECT_EQ(tuner.last_window_decisions().size(), 2u);
}

TEST(PerFileTunerTest, MinEventsGateSkipsQuietFiles) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  sim::FileHandle& busy = stack.files().create(100000);
  sim::FileHandle& quiet = stack.files().create(100000);

  TunerConfig config;
  config.class_ra_kb = {1024, 16, 512, 32};
  PerFileTuner tuner(stack, pattern_oracle, config, /*min_events=*/64);

  for (int i = 0; i < 200; ++i) {
    stack.cache().read(busy, static_cast<std::uint64_t>(i), 1);
    tuner.on_tick(stack.clock().now_ns());
  }
  stack.cache().read(quiet, 5, 1);  // far below the gate
  tuner.on_tick(stack.clock().now_ns() + sim::kNsPerSec);

  EXPECT_EQ(stack.block_layer().file_readahead_kb(quiet.inode), 128u);
  ASSERT_EQ(tuner.last_window_decisions().size(), 1u);
  EXPECT_EQ(tuner.last_window_decisions()[0].inode, busy.inode);
}

TEST(PerFileTunerTest, UnregistersHookOnDestruction) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  {
    PerFileTuner tuner(stack, pattern_oracle, TunerConfig{});
    EXPECT_EQ(stack.tracepoints().hook_count(), 1);
  }
  EXPECT_EQ(stack.tracepoints().hook_count(), 0);
}

TEST(PerFileTunerTest, SurvivesFileRemoval) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  sim::FileHandle& doomed = stack.files().create(100000);
  const std::uint64_t inode = doomed.inode;

  PerFileTuner tuner(stack, pattern_oracle, TunerConfig{},
                     /*min_events=*/16);
  for (int i = 0; i < 100; ++i) {
    stack.cache().read(stack.files().get(inode),
                       static_cast<std::uint64_t>(i), 1);
    tuner.on_tick(stack.clock().now_ns());
  }
  stack.files().remove(inode);  // compaction deleted the run
  tuner.on_tick(stack.clock().now_ns() + sim::kNsPerSec);  // must not crash
  EXPECT_TRUE(tuner.last_window_decisions().empty());
}

TEST(MixedTenants, PerFileDominatesGlobalOnBothMetrics) {
  // With a pattern oracle: vanilla < {global, per-file} on gets, and
  // per-file must not sacrifice the scanner the way a random-favouring
  // global knob does.
  ExperimentConfig config = tiny_experiment();
  TunerConfig tuner_config;
  tuner_config.class_ra_kb = {1024, 16, 512, 32};

  const MixedTenantResult vanilla = evaluate_mixed_tenants(
      config, pattern_oracle, tuner_config, TuningMode::kVanilla, 5);
  const MixedTenantResult per_file = evaluate_mixed_tenants(
      config, pattern_oracle, tuner_config, TuningMode::kPerFile, 5);

  EXPECT_GT(per_file.get_ops_per_sec, vanilla.get_ops_per_sec * 1.1);
  EXPECT_GE(per_file.scan_entries_per_sec,
            vanilla.scan_entries_per_sec * 0.95);
  EXPECT_GT(per_file.combined_ops_per_sec, 0.0);
}

}  // namespace
}  // namespace kml::readahead
