// Tests for src/sim/trace_io: capture format round-trip, corruption
// rejection, and access replay fidelity.
#include "sim/trace_io.h"

#include "math/rng.h"

#include "kv/minikv.h"
#include "workloads/drivers.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace kml::sim {
namespace {

StackConfig tiny_stack() {
  StackConfig config;
  config.cache_pages = 4096;
  return config;
}

TEST(TraceIo, CaptureRoundTripsEventsAndFileTable) {
  const char* path = "/tmp/kml_trace_roundtrip.kmlr";
  {
    StorageStack stack(tiny_stack());
    FileHandle& f = stack.files().create(5000);
    f.ra_pages = 0;
    TraceWriter writer(stack, path);
    ASSERT_TRUE(writer.ok());
    stack.cache().read(f, 10, 3);   // 3 inserts
    stack.cache().write(f, 99, 2);  // 2 dirty events (+2 inserts)
    EXPECT_TRUE(writer.finish());
    EXPECT_EQ(writer.captured(), 7u);
  }

  TraceReader reader;
  ASSERT_TRUE(reader.open(path));
  ASSERT_EQ(reader.files().size(), 1u);
  EXPECT_EQ(reader.files()[0].second, 5000u);
  EXPECT_EQ(reader.remaining(), 7u);

  TraceEvent ev;
  ASSERT_TRUE(reader.next(ev));
  EXPECT_EQ(ev.type, TraceEventType::kAddToPageCache);
  EXPECT_EQ(ev.pgoff, 10u);
  int reads = 1;
  int writes = 0;
  while (reader.next(ev)) {
    (ev.type == TraceEventType::kAddToPageCache ? reads : writes) += 1;
  }
  EXPECT_EQ(reads, 5);
  EXPECT_EQ(writes, 2);
  std::remove(path);
}

TEST(TraceIo, LargeCaptureSurvivesBufferedFlushes) {
  const char* path = "/tmp/kml_trace_large.kmlr";
  std::uint64_t captured;
  {
    StorageStack stack(tiny_stack());
    FileHandle& f = stack.files().create(200000);
    f.ra_pages = 0;
    TraceWriter writer(stack, path);
    kml::math::Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
      stack.cache().read(f, rng.next_below(190000), 1);
    }
    ASSERT_TRUE(writer.finish());
    captured = writer.captured();
  }
  EXPECT_GE(captured, 9000u);  // a few re-hits are fine
  TraceReader reader;
  ASSERT_TRUE(reader.open(path));
  EXPECT_EQ(reader.remaining(), captured);
  std::remove(path);
}

TEST(TraceIo, ReaderRejectsGarbageAndTruncation) {
  const char* path = "/tmp/kml_trace_bad.kmlr";
  {
    FILE* f = fopen(path, "wb");
    fputs("garbage header", f);
    fclose(f);
  }
  TraceReader reader;
  EXPECT_FALSE(reader.open(path));
  EXPECT_FALSE(reader.open("/tmp/kml_trace_nonexistent.kmlr"));
  std::remove(path);
}

TEST(TraceIo, ReplayReproducesAccessesOnFreshStack) {
  const char* path = "/tmp/kml_trace_replay.kmlr";
  std::uint64_t original_inserted;
  {
    StorageStack stack(tiny_stack());
    FileHandle& f = stack.files().create(5000);
    f.ra_pages = 0;
    TraceWriter writer(stack, path);
    for (std::uint64_t p = 0; p < 64; ++p) stack.cache().read(f, p, 1);
    stack.cache().write(f, 1000, 4);
    ASSERT_TRUE(writer.finish());
    original_inserted = stack.cache().stats().inserted;
  }

  TraceReader reader;
  ASSERT_TRUE(reader.open(path));
  StorageStack replay_stack(tiny_stack());
  const ReplayStats stats = replay_trace(replay_stack, reader);
  EXPECT_EQ(stats.reads_issued, original_inserted);
  EXPECT_EQ(stats.writes_issued, 4u);
  EXPECT_GT(stats.duration_ns, 0u);
  // The replayed stack really performed the I/O.
  EXPECT_GE(replay_stack.device().stats().pages_read, 64u);
  std::remove(path);
}

TEST(TraceIo, WhatIfReplayUnderDifferentReadahead) {
  // Capture a sequential scan, then replay it twice with different
  // readahead settings: the offline what-if experiment the module enables.
  const char* path = "/tmp/kml_trace_whatif.kmlr";
  {
    StorageStack stack(tiny_stack());
    FileHandle& f = stack.files().create(5000);
    f.ra_pages = 0;  // capture raw per-page accesses
    TraceWriter writer(stack, path);
    for (std::uint64_t p = 0; p < 512; ++p) stack.cache().read(f, p, 1);
    ASSERT_TRUE(writer.finish());
  }
  TraceReader reader;
  ASSERT_TRUE(reader.open(path));

  StorageStack no_ra(tiny_stack());
  no_ra.files().set_default_ra_pages(0);
  const ReplayStats slow = replay_trace(no_ra, reader);

  reader.rewind();
  StorageStack big_ra(tiny_stack());
  big_ra.files().set_default_ra_pages(64);
  const ReplayStats fast = replay_trace(big_ra, reader);

  EXPECT_EQ(slow.reads_issued, fast.reads_issued);
  EXPECT_LT(fast.duration_ns, slow.duration_ns);  // readahead pays off
  std::remove(path);
}

TEST(TraceIo, CaptureFromRealWorkload) {
  const char* path = "/tmp/kml_trace_workload.kmlr";
  {
    StorageStack stack(tiny_stack());
    kv::KVConfig kv_config;
    kv_config.num_keys = 500000;  // ~15.6K pages: far exceeds the cache
    kv_config.geom.block_pages = 4;
    kv::MiniKV db(stack, kv_config);
    TraceWriter writer(stack, path);
    workloads::WorkloadConfig wc;
    wc.type = workloads::WorkloadType::kReadRandom;
    workloads::run_workload(db, wc, UINT64_MAX / 2, 500);
    ASSERT_TRUE(writer.finish());
    EXPECT_GT(writer.captured(), 500u);
  }
  TraceReader reader;
  ASSERT_TRUE(reader.open(path));
  EXPECT_GE(reader.files().size(), 2u);  // base run + WAL
  std::remove(path);
}

}  // namespace
}  // namespace kml::sim
