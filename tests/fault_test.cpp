// Tests for the fault-injection registry (src/portability/fault.h) and for
// the error paths it makes reachable: allocation failure in kml_malloc /
// kml_realloc / the arena, degraded CircularBuffer and Mat construction,
// file-op faults, and the atomic model save.
#include "data/circular_buffer.h"
#include "matrix/matrix.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "portability/fault.h"
#include "portability/kml_lib.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace kml {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kml_lib_init();
    kml_fault_disarm_all();
    kml_mem_reset_stats();
  }
  void TearDown() override {
    kml_fault_disarm_all();
    kml_lib_shutdown();
  }
};

TEST_F(FaultTest, EverySiteHasAName) {
  for (unsigned i = 0; i < kNumFaultSites; ++i) {
    const char* name = kml_fault_site_name(static_cast<FaultSite>(i));
    ASSERT_NE(name, nullptr) << i;
    EXPECT_GT(std::strlen(name), 0u) << i;
    EXPECT_STRNE(name, "unknown") << i;
  }
  // Out-of-range values degrade to "unknown", never to a read past the
  // name table.
  EXPECT_STREQ(kml_fault_site_name(FaultSite::kSiteCount), "unknown");
}

TEST_F(FaultTest, EverySiteRoundTripsArmHitInjectDisarm) {
  // Round-trip over ALL sites: arm (fail every hit), verify the hot-path
  // check injects and counts, then disarm and verify the site is quiet.
  // This is the runtime companion of the static_assert on the name table:
  // a site added without full registry support fails here.
  for (unsigned i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    kml_fault_arm_every(site, 1);
    EXPECT_TRUE(kml_fault_should_fail(site)) << kml_fault_site_name(site);
    EXPECT_TRUE(kml_fault_should_fail(site)) << kml_fault_site_name(site);
    EXPECT_EQ(kml_fault_hits(site), 2u) << kml_fault_site_name(site);
    EXPECT_EQ(kml_fault_injected(site), 2u) << kml_fault_site_name(site);
    kml_fault_disarm(site);
    EXPECT_FALSE(kml_fault_should_fail(site)) << kml_fault_site_name(site);
    // Injected counter survives disarm for post-hoc assertions.
    EXPECT_EQ(kml_fault_injected(site), 2u) << kml_fault_site_name(site);
  }
}

TEST_F(FaultTest, DisarmedSiteNeverFails) {
  for (int i = 0; i < 100; ++i) {
    void* p = kml_malloc(64);
    ASSERT_NE(p, nullptr);
    kml_free(p);
  }
  EXPECT_EQ(kml_fault_injected(FaultSite::kMalloc), 0u);
}

TEST_F(FaultTest, NthPolicyFailsExactlyTheNthHit) {
  kml_fault_arm_nth(FaultSite::kMalloc, 2);
  void* a = kml_malloc(32);  // hit 1: succeeds
  void* b = kml_malloc(32);  // hit 2: injected failure
  void* c = kml_malloc(32);  // hit 3: succeeds
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(b, nullptr);
  EXPECT_NE(c, nullptr);
  EXPECT_EQ(kml_fault_hits(FaultSite::kMalloc), 3u);
  EXPECT_EQ(kml_fault_injected(FaultSite::kMalloc), 1u);
  kml_free(a);
  kml_free(c);
}

TEST_F(FaultTest, NthPolicyWithCountFailsARange) {
  kml_fault_arm_nth(FaultSite::kMalloc, 2, 2);  // hits 2 and 3 fail
  void* a = kml_malloc(32);
  void* b = kml_malloc(32);
  void* c = kml_malloc(32);
  void* d = kml_malloc(32);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(b, nullptr);
  EXPECT_EQ(c, nullptr);
  EXPECT_NE(d, nullptr);
  kml_free(a);
  kml_free(d);
}

TEST_F(FaultTest, NthOnwardFailsForever) {
  kml_fault_arm_nth(FaultSite::kMalloc, 3, UINT64_MAX);
  void* a = kml_malloc(32);
  void* b = kml_malloc(32);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(kml_malloc(32), nullptr);
  kml_free(a);
  kml_free(b);
}

TEST_F(FaultTest, EveryKPolicyFailsPeriodically) {
  kml_fault_arm_every(FaultSite::kMalloc, 3);
  std::vector<bool> failed;
  std::vector<void*> live;
  for (int i = 0; i < 9; ++i) {
    void* p = kml_malloc(16);
    failed.push_back(p == nullptr);
    if (p != nullptr) live.push_back(p);
  }
  // Hits 3, 6, 9 fail.
  const std::vector<bool> expect = {false, false, true,  false, false,
                                    true,  false, false, true};
  EXPECT_EQ(failed, expect);
  EXPECT_EQ(kml_fault_injected(FaultSite::kMalloc), 3u);
  for (void* p : live) kml_free(p);
}

TEST_F(FaultTest, ProbabilityPolicyIsSeedDeterministic) {
  const auto sample = [](std::uint64_t seed) {
    kml_fault_arm_probability(FaultSite::kMalloc, 0.5, seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      void* p = kml_malloc(16);
      pattern.push_back(p == nullptr);
      kml_free(p);  // nullptr-safe
    }
    kml_fault_disarm(FaultSite::kMalloc);
    return pattern;
  };
  const std::vector<bool> a = sample(42);
  const std::vector<bool> b = sample(42);
  const std::vector<bool> c = sample(43);
  EXPECT_EQ(a, b);       // same seed, same decisions
  EXPECT_NE(a, c);       // different seed, different stream (overwhelmingly)
  // p=0.5 over 64 trials: both outcomes must occur.
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultTest, ProbabilityExtremes) {
  kml_fault_arm_probability(FaultSite::kMalloc, 0.0, 7);
  for (int i = 0; i < 32; ++i) {
    void* p = kml_malloc(16);
    EXPECT_NE(p, nullptr);
    kml_free(p);
  }
  kml_fault_arm_probability(FaultSite::kMalloc, 1.0, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(kml_malloc(16), nullptr);
}

TEST_F(FaultTest, InjectedMallocFailureDoesNotLeakAccounting) {
  const std::uint64_t before = kml_mem_usage();
  kml_fault_arm_every(FaultSite::kMalloc, 1);
  EXPECT_EQ(kml_malloc(1024), nullptr);
  EXPECT_EQ(kml_zalloc(1024), nullptr);   // routed through kml_malloc
  EXPECT_EQ(kml_calloc(16, 64), nullptr);
  kml_fault_disarm(FaultSite::kMalloc);
  EXPECT_EQ(kml_mem_usage(), before);
}

TEST_F(FaultTest, ReallocFaultLeavesOriginalBlockValid) {
  auto* p = static_cast<unsigned char*>(kml_malloc(64));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 64);
  kml_fault_arm_every(FaultSite::kRealloc, 1);
  EXPECT_EQ(kml_realloc(p, 4096), nullptr);
  kml_fault_disarm(FaultSite::kRealloc);
  // realloc-failure contract: the original block is untouched.
  for (int i = 0; i < 64; ++i) ASSERT_EQ(p[i], 0xAB) << i;
  kml_free(p);
}

TEST_F(FaultTest, ArenaFaultForcesHeapFallback) {
  ASSERT_TRUE(kml_mem_reserve(1 << 16));
  const std::size_t arena_before = kml_mem_reserved_remaining();
  kml_fault_arm_every(FaultSite::kArena, 1);
  void* p = kml_malloc(256);
  ASSERT_NE(p, nullptr);  // served from the heap, not the arena
  EXPECT_EQ(kml_mem_reserved_remaining(), arena_before);
  kml_fault_disarm(FaultSite::kArena);
  kml_free(p);
  kml_mem_release();
}

TEST_F(FaultTest, CircularBufferDegradesGracefullyOnCtorOom) {
  // The buffer's single allocation is the first kml_malloc after arming.
  kml_fault_arm_nth(FaultSite::kMalloc, 1);
  data::CircularBuffer<int> buffer(1024);
  kml_fault_disarm(FaultSite::kMalloc);

  EXPECT_EQ(buffer.capacity(), 0u);
  EXPECT_FALSE(buffer.push(7));  // drops, never dereferences null slots
  EXPECT_FALSE(buffer.push(8));
  EXPECT_EQ(buffer.dropped(), 2u);
  int out = 0;
  EXPECT_FALSE(buffer.pop(out));
  EXPECT_TRUE(buffer.empty());
  // Destructor of the degraded buffer must be a no-op (no double free).
}

TEST_F(FaultTest, BufferPushFaultForcesDrops) {
  data::CircularBuffer<int> buffer(64);
  kml_fault_arm_every(FaultSite::kBufferPush, 2);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (buffer.push(i)) ++accepted;
  }
  kml_fault_disarm(FaultSite::kBufferPush);
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(buffer.dropped(), 5u);
  EXPECT_EQ(buffer.size(), 5u);
}

TEST_F(FaultTest, MatConstructionSurvivesAllocationFailure) {
  kml_fault_arm_nth(FaultSite::kMalloc, 1);
  matrix::MatD m(128, 128);
  kml_fault_disarm(FaultSite::kMalloc);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
}

TEST_F(FaultTest, LinearConstructionSurvivesAllocationFailure) {
  // Fail every allocation: weights and bias both come back empty, the
  // deserializer's lin->weights().empty() check catches it.
  kml_fault_arm_nth(FaultSite::kMalloc, 1, UINT64_MAX);
  nn::Linear lin(16, 8);
  kml_fault_disarm(FaultSite::kMalloc);
  EXPECT_TRUE(lin.weights().empty());
}

TEST_F(FaultTest, FileOpenFaultFailsModelLoad) {
  const std::string path =
      ::testing::TempDir() + "/kml_fault_open_model.kml";
  math::Rng rng(3);
  nn::Network net = nn::build_mlp_classifier(2, 4, 2, rng);
  ASSERT_TRUE(nn::save_model(net, path.c_str()));

  kml_fault_arm_every(FaultSite::kFileOpen, 1);
  nn::Network out;
  EXPECT_FALSE(nn::load_model(out, path.c_str()));
  kml_fault_disarm(FaultSite::kFileOpen);
  EXPECT_TRUE(nn::load_model(out, path.c_str()));
  std::remove(path.c_str());
}

TEST_F(FaultTest, ShortReadFaultFailsModelLoad) {
  const std::string path =
      ::testing::TempDir() + "/kml_fault_shortread_model.kml";
  math::Rng rng(4);
  nn::Network net = nn::build_mlp_classifier(2, 4, 2, rng);
  ASSERT_TRUE(nn::save_model(net, path.c_str()));

  // Every read comes back short *and* consumes only half the requested
  // bytes; slurp_file's retry loop must still terminate and report failure
  // rather than parse a torn image. (Reads that eventually deliver all
  // bytes across retries are legitimate — fail every read to guarantee a
  // premature EOF.)
  kml_fault_arm_nth(FaultSite::kFileRead, 1, UINT64_MAX);
  nn::Network out;
  EXPECT_FALSE(nn::load_model(out, path.c_str()));
  kml_fault_disarm(FaultSite::kFileRead);
  std::remove(path.c_str());
}

TEST_F(FaultTest, WriteFaultAbortsSaveAndKeepsOldModel) {
  const std::string path =
      ::testing::TempDir() + "/kml_fault_write_model.kml";
  const std::string tmp = path + ".tmp";
  math::Rng rng(5);
  nn::Network original = nn::build_mlp_classifier(2, 4, 2, rng);
  ASSERT_TRUE(nn::save_model(original, path.c_str()));
  const std::int64_t good_size = kml_fsize(path.c_str());

  nn::Network replacement = nn::build_mlp_classifier(2, 8, 2, rng);
  kml_fault_arm_every(FaultSite::kFileWrite, 1);
  EXPECT_FALSE(nn::save_model(replacement, path.c_str()));
  kml_fault_disarm(FaultSite::kFileWrite);

  // Atomic-save contract: the deployed file is byte-for-byte the old model
  // and the abandoned temp file is cleaned up.
  EXPECT_EQ(kml_fsize(path.c_str()), good_size);
  EXPECT_EQ(kml_fsize(tmp.c_str()), -1);
  nn::Network out;
  EXPECT_TRUE(nn::load_model(out, path.c_str()));
  EXPECT_EQ(out.num_layers(), original.num_layers());
  std::remove(path.c_str());
}

TEST_F(FaultTest, RenameFaultAbortsSaveAndKeepsOldModel) {
  const std::string path =
      ::testing::TempDir() + "/kml_fault_rename_model.kml";
  math::Rng rng(6);
  nn::Network original = nn::build_mlp_classifier(2, 4, 2, rng);
  ASSERT_TRUE(nn::save_model(original, path.c_str()));

  kml_fault_arm_every(FaultSite::kFileRename, 1);
  EXPECT_FALSE(nn::save_model(original, path.c_str()));
  kml_fault_disarm(FaultSite::kFileRename);

  EXPECT_EQ(kml_fsize((path + ".tmp").c_str()), -1);
  nn::Network out;
  EXPECT_TRUE(nn::load_model(out, path.c_str()));
  std::remove(path.c_str());
}

TEST_F(FaultTest, DisarmAllClearsEverySite) {
  for (unsigned i = 0; i < kNumFaultSites; ++i) {
    kml_fault_arm_every(static_cast<FaultSite>(i), 1);
  }
  kml_fault_disarm_all();
  void* p = kml_malloc(32);
  EXPECT_NE(p, nullptr);
  kml_free(p);
  KmlFile* f = kml_fopen("/dev/null", "r");
  EXPECT_NE(f, nullptr);
  kml_fclose(f);
}

}  // namespace
}  // namespace kml
