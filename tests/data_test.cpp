// Tests for src/data: the lock-free SPSC circular buffer (including a real
// producer/consumer stress test), Z-score normalizer, dataset/k-fold
// machinery, and the time windower.
#include "data/circular_buffer.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/windower.h"
#include "observe/metrics.h"
#include "portability/thread.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <vector>

namespace kml::data {
namespace {

TEST(CircularBuffer, PushPopFifoOrder) {
  CircularBuffer<int> buf(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(buf.push(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(buf.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(buf.pop(out));
}

TEST(CircularBuffer, CapacityRoundsUpToPow2) {
  CircularBuffer<int> buf(5);
  EXPECT_EQ(buf.capacity(), 8u);
  CircularBuffer<int> one(0);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(CircularBuffer, FullBufferDropsAndCounts) {
  CircularBuffer<int> buf(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(buf.push(i));
  EXPECT_FALSE(buf.push(99));
  EXPECT_FALSE(buf.push(100));
  EXPECT_EQ(buf.dropped(), 2u);
  EXPECT_EQ(buf.size(), 4u);
}

TEST(CircularBuffer, WrapAroundManyTimes) {
  CircularBuffer<std::uint64_t> buf(4);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(buf.push(i));
    if (i % 3 == 2) {
      // Drain in bursts so head/tail wrap repeatedly.
      std::uint64_t out;
      while (buf.pop(out)) {
        EXPECT_EQ(out, expected++);
      }
    }
  }
}

TEST(CircularBuffer, PopMany) {
  CircularBuffer<int> buf(16);
  for (int i = 0; i < 10; ++i) buf.push(i);
  int out[6];
  EXPECT_EQ(buf.pop_many(out, 6), 6u);
  EXPECT_EQ(out[5], 5);
  EXPECT_EQ(buf.size(), 4u);
}

// Cross-thread SPSC stress: the producer pushes a monotone sequence through
// a small buffer while the consumer drains; every received value must be in
// order with no duplicates (drops are allowed and counted).
struct SpscCtx {
  CircularBuffer<std::uint64_t>* buf;
  std::uint64_t to_send;
};

TEST(CircularBuffer, CrossThreadOrderingHolds) {
  CircularBuffer<std::uint64_t> buf(64);
  SpscCtx ctx{&buf, 200000};
  auto producer = +[](void* arg) {
    auto* c = static_cast<SpscCtx*>(arg);
    for (std::uint64_t i = 0; i < c->to_send; ++i) {
      c->buf->push(i);  // drops allowed under pressure
    }
  };
  KmlThread* t = kml_thread_create(producer, &ctx, "producer");
  ASSERT_NE(t, nullptr);

  std::uint64_t last = 0;
  std::uint64_t received = 0;
  bool have_last = false;
  std::uint64_t out;
  // Consume until the producer finishes and the buffer drains.
  for (;;) {
    if (buf.pop(out)) {
      if (have_last) {
        EXPECT_GT(out, last);  // strictly increasing => no dup, no reorder
      }
      last = out;
      have_last = true;
      ++received;
      continue;
    }
    if (received + buf.dropped() >= ctx.to_send) break;
    kml_thread_yield();
  }
  kml_thread_join(t);
  EXPECT_EQ(received + buf.dropped(), ctx.to_send);
  EXPECT_GT(received, 0u);
}

TEST(Normalizer, FitTransformZeroMeanUnitVar) {
  matrix::MatD x(100, 2);
  math::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.normal(50.0, 10.0);
    x.at(i, 1) = rng.normal(-3.0, 0.5);
  }
  ZScoreNormalizer norm;
  norm.fit(x);
  const matrix::MatD z = norm.transform(x);
  math::RunningStats s0;
  math::RunningStats s1;
  for (int i = 0; i < 100; ++i) {
    s0.add(z.at(i, 0));
    s1.add(z.at(i, 1));
  }
  EXPECT_NEAR(s0.mean(), 0.0, 1e-9);
  EXPECT_NEAR(s0.stddev(), 1.0, 1e-9);
  EXPECT_NEAR(s1.mean(), 0.0, 1e-9);
  EXPECT_NEAR(s1.stddev(), 1.0, 1e-9);
}

TEST(Normalizer, ConstantFeatureMapsToZero) {
  matrix::MatD x = matrix::MatD::filled(10, 1, 42.0);
  ZScoreNormalizer norm;
  norm.fit(x);
  const matrix::MatD z = norm.transform(x);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.at(i, 0), 0.0);
}

TEST(Normalizer, ImportedMomentsFreeze) {
  ZScoreNormalizer norm;
  norm.import_moments({10.0}, {2.0});
  double f = 14.0;
  norm.transform_row(&f, 1);
  EXPECT_DOUBLE_EQ(f, 2.0);
}

TEST(Normalizer, OnlineObserveMatchesBatchFit) {
  math::Rng rng(5);
  matrix::MatD x(200, 3);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = rng.uniform(-5.0, 5.0);
  }
  ZScoreNormalizer batch;
  batch.fit(x);
  ZScoreNormalizer online(3);
  for (int i = 0; i < 200; ++i) online.observe(x.row(i), 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(batch.mean(j), online.mean(j), 1e-9);
    EXPECT_NEAR(batch.stddev(j), online.stddev(j), 1e-9);
  }
}

TEST(MinMax, ScalesToUnitInterval) {
  matrix::MatD x(3, 2);
  x.at(0, 0) = 10.0;
  x.at(1, 0) = 20.0;
  x.at(2, 0) = 30.0;
  x.at(0, 1) = -1.0;
  x.at(1, 1) = 0.0;
  x.at(2, 1) = 1.0;
  MinMaxNormalizer norm;
  norm.fit(x);
  const matrix::MatD z = norm.transform(x);
  EXPECT_DOUBLE_EQ(z.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(z.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(z.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(z.at(2, 1), 1.0);
  EXPECT_EQ(norm.min(0), 10.0);
  EXPECT_EQ(norm.max(0), 30.0);
}

TEST(MinMax, ClampsOutOfRangeAndHandlesConstants) {
  matrix::MatD x(2, 2);
  x.at(0, 0) = 0.0;
  x.at(1, 0) = 10.0;
  x.at(0, 1) = 7.0;  // constant feature
  x.at(1, 1) = 7.0;
  MinMaxNormalizer norm;
  norm.fit(x);
  double row[2] = {-5.0, 7.0};
  norm.transform_row(row, 2);
  EXPECT_DOUBLE_EQ(row[0], 0.0);  // clamped below
  EXPECT_DOUBLE_EQ(row[1], 0.0);  // constant -> 0
  double high[2] = {100.0, 7.0};
  norm.transform_row(high, 2);
  EXPECT_DOUBLE_EQ(high[0], 1.0);  // clamped above
}

TEST(MinMax, OnlineObserveMatchesBatchFit) {
  math::Rng rng(31);
  matrix::MatD x(100, 3);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = rng.uniform(-50.0, 50.0);
  }
  MinMaxNormalizer batch;
  batch.fit(x);
  MinMaxNormalizer online(3);
  for (int i = 0; i < 100; ++i) online.observe(x.row(i), 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(batch.min(j), online.min(j));
    EXPECT_DOUBLE_EQ(batch.max(j), online.max(j));
  }
}

TEST(Dataset, AddAndMaterialize) {
  Dataset d(2);
  const double a[2] = {1.0, 2.0};
  const double b[2] = {3.0, 4.0};
  d.add(a, 0);
  d.add(b, 1);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.num_classes(), 2);
  const matrix::MatD x = d.to_matrix();
  EXPECT_EQ(x.at(1, 1), 4.0);
  const matrix::MatD y = d.to_one_hot(2);
  EXPECT_EQ(y.at(0, 0), 1.0);
  EXPECT_EQ(y.at(1, 1), 1.0);
  EXPECT_EQ(y.at(1, 0), 0.0);
}

TEST(Dataset, ShufflePreservesPairs) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    const double f = i * 10.0;
    d.add(&f, i % 5);
  }
  math::Rng rng(9);
  d.shuffle(rng);
  for (int i = 0; i < 50; ++i) {
    // The label always equals (feature/10) mod 5 if pairs moved together.
    EXPECT_EQ(d.label(i), static_cast<int>(d.features(i)[0] / 10.0) % 5);
  }
}

TEST(Dataset, KFoldCoversEveryRowExactlyOnce) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    const double f = i;
    d.add(&f, 0);
  }
  math::Rng rng(13);
  const std::vector<Fold> folds = k_fold_split(d, 10, rng);
  ASSERT_EQ(folds.size(), 10u);
  std::vector<int> seen(100, 0);
  for (const Fold& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 100);
    for (int i = 0; i < fold.test.size(); ++i) {
      ++seen[static_cast<std::size_t>(fold.test.features(i)[0])];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(Dataset, TrainTestSplitFractions) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    const double f = i;
    d.add(&f, 0);
  }
  math::Rng rng(17);
  const Fold fold = train_test_split(d, 0.25, rng);
  EXPECT_EQ(fold.test.size(), 25);
  EXPECT_EQ(fold.train.size(), 75);
}

TEST(DatasetCsv, RoundTripPreservesSamples) {
  const char* path = "/tmp/kml_dataset_roundtrip.csv";
  Dataset d(3);
  math::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    double f[3] = {rng.uniform(-100, 100), rng.normal(), 1e-9 * i};
    d.add(f, i % 4);
  }
  ASSERT_TRUE(save_dataset_csv(d, path));

  Dataset loaded;
  ASSERT_TRUE(load_dataset_csv(loaded, path));
  ASSERT_EQ(loaded.size(), d.size());
  ASSERT_EQ(loaded.num_features(), 3);
  for (int i = 0; i < d.size(); ++i) {
    EXPECT_EQ(loaded.label(i), d.label(i));
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(loaded.features(i)[j], d.features(i)[j]);
    }
  }
  std::remove(path);
}

TEST(DatasetCsv, LoadMissingFileFails) {
  Dataset d;
  EXPECT_FALSE(load_dataset_csv(d, "/tmp/kml_no_such_dataset.csv"));
}

TEST(DatasetCsv, LoadRejectsGarbageAndRaggedRows) {
  const char* path = "/tmp/kml_dataset_bad.csv";
  {
    FILE* f = fopen(path, "w");
    fputs("not,numbers,at,all\n", f);
    fclose(f);
  }
  Dataset d;
  EXPECT_FALSE(load_dataset_csv(d, path));
  {
    FILE* f = fopen(path, "w");
    fputs("1.0,2.0,0\n1.0,1\n", f);  // ragged second row
    fclose(f);
  }
  EXPECT_FALSE(load_dataset_csv(d, path));
  std::remove(path);
}

TEST(Windower, EmitsWindowPerPeriodIncludingEmpty) {
  std::vector<std::pair<std::uint64_t, std::size_t>> emitted;
  Windower w(1000, [&](std::uint64_t idx, const std::vector<TraceRecord>& r) {
    emitted.emplace_back(idx, r.size());
  });
  w.push(TraceRecord{1, 10, 100, 0});
  w.push(TraceRecord{1, 11, 900, 0});
  w.push(TraceRecord{1, 12, 3500, 0});  // skips windows 0..2 boundary
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0], (std::pair<std::uint64_t, std::size_t>{0, 2}));
  EXPECT_EQ(emitted[1], (std::pair<std::uint64_t, std::size_t>{1, 0}));
  EXPECT_EQ(emitted[2], (std::pair<std::uint64_t, std::size_t>{2, 0}));
  w.flush();
  ASSERT_EQ(emitted.size(), 4u);
  EXPECT_EQ(emitted[3].second, 1u);
}

TEST(Windower, AdvanceClosesWindowsWithoutRecords) {
  int windows = 0;
  Windower w(100, [&](std::uint64_t, const std::vector<TraceRecord>&) {
    ++windows;
  });
  w.advance_to(550);
  EXPECT_EQ(windows, 5);
}

// --- regressions -------------------------------------------------------------

// round_up_pow2 used to spin forever for capacities above the largest
// power of two representable in size_t (the doubling loop wrapped to 0).
// The constructor must instead degrade to the zero-capacity drop-everything
// buffer — quickly.
TEST(CircularBuffer, HugeCapacityRequestDegradesInsteadOfHanging) {
  constexpr std::size_t kTooBig =
      std::numeric_limits<std::size_t>::max() / 2 + 2;
  CircularBuffer<std::uint64_t> buf(kTooBig);
  EXPECT_EQ(buf.capacity(), 0u);
  EXPECT_FALSE(buf.push(1));
  EXPECT_EQ(buf.dropped(), 1u);
  std::uint64_t out;
  EXPECT_FALSE(buf.pop(out));
  EXPECT_EQ(buf.size(), 0u);
}

// size() used to load head before tail; a pop() landing between the two
// loads could make tail > head and the unsigned subtraction wrapped to
// ~2^64. Deterministic shape of that interleaving: size() computed from a
// stale head and a newer tail must clamp to 0, and any result must stay
// within [0, capacity].
TEST(CircularBuffer, SizeNeverExceedsCapacity) {
  CircularBuffer<std::uint64_t> buf(8);
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(buf.push(i));
  std::uint64_t out;
  for (int i = 0; i < 8; ++i) {
    EXPECT_LE(buf.size(), buf.capacity());
    ASSERT_TRUE(buf.pop(out));
  }
  EXPECT_EQ(buf.size(), 0u);
}

// Threaded version of the same regression: a producer, a consumer, and a
// third thread hammering size() concurrently. Any torn/wrapped read shows
// up as size() > capacity.
struct SizeStressCtx {
  CircularBuffer<std::uint64_t>* buf;
  std::atomic<bool>* stop;
  std::atomic<std::uint64_t>* violations;
};

TEST(CircularBuffer, ConcurrentSizeReaderStaysInBounds) {
  CircularBuffer<std::uint64_t> buf(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  SizeStressCtx ctx{&buf, &stop, &violations};

  auto producer = +[](void* arg) {
    auto* c = static_cast<SizeStressCtx*>(arg);
    for (std::uint64_t i = 0; i < 300000; ++i) c->buf->push(i);
    c->stop->store(true, std::memory_order_release);
  };
  auto reader = +[](void* arg) {
    auto* c = static_cast<SizeStressCtx*>(arg);
    while (!c->stop->load(std::memory_order_acquire)) {
      if (c->buf->size() > c->buf->capacity()) {
        c->violations->fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  KmlThread* tp = kml_thread_create(producer, &ctx, "producer");
  KmlThread* tr = kml_thread_create(reader, &ctx, "size-reader");
  ASSERT_NE(tp, nullptr);
  ASSERT_NE(tr, nullptr);

  // Consumer on the test thread: pops race the size() reader's loads.
  std::uint64_t received = 0;
  std::uint64_t out;
  while (!stop.load(std::memory_order_acquire) || !buf.empty()) {
    if (buf.pop(out)) {
      ++received;
    } else {
      kml_thread_yield();
    }
  }
  kml_thread_join(tp);
  kml_thread_join(tr);
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(received + buf.dropped(), 300000u);
}

// Consumer-side metric publication: pop_many flushes push/pop/drop deltas
// into the process-global registry. Read deltas (other tests and library
// code share the same counters when the whole binary runs in one process).
#if KML_OBSERVE_ENABLED
TEST(CircularBuffer, PopManyPublishesRegistryDeltas) {
  if (!observe::enabled()) GTEST_SKIP() << "observe disabled at runtime";
  const std::uint64_t push0 =
      observe::get_counter(observe::kMetricBufferPush).value();
  const std::uint64_t pop0 =
      observe::get_counter(observe::kMetricBufferPop).value();
  const std::uint64_t drop0 =
      observe::get_counter(observe::kMetricBufferDrop).value();

  CircularBuffer<int> buf(4);
  for (int i = 0; i < 6; ++i) buf.push(i);  // 4 land, 2 drop
  int out[4];
  EXPECT_EQ(buf.pop_many(out, 4), 4u);

  EXPECT_EQ(observe::get_counter(observe::kMetricBufferPush).value() - push0,
            4u);
  EXPECT_EQ(observe::get_counter(observe::kMetricBufferPop).value() - pop0,
            4u);
  EXPECT_EQ(observe::get_counter(observe::kMetricBufferDrop).value() - drop0,
            2u);
  EXPECT_EQ(observe::get_gauge(observe::kMetricBufferOccupancy).value(), 0);
}
#endif  // KML_OBSERVE_ENABLED

}  // namespace
}  // namespace kml::data
