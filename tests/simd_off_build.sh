#!/bin/sh
# simd_off_build.sh — prove the KML_SIMD=OFF build stays honest.
#
# With -DKML_SIMD_ENABLED=0 the ISA translation units are compiled out of
# the build entirely, so the dispatcher and the scalar reference kernels
# must form a complete, warning-clean library on their own: simd.cpp must
# compile with the tier tables absent, and a probe TU exercising the whole
# public seam must compile against it. This is the compile-time half of the
# kill switch (the runtime half — KML_SIMD=off pinning the scalar tier — is
# covered by simd_test forcing tiers programmatically).
#
# Usage: simd_off_build.sh <c++-compiler> <repo-source-dir>

CXX="${1:-c++}"
SRC="${2:-$(dirname "$0")/..}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "simd_off_build: compiler '$CXX' not found; skipping"
  exit 0
fi

tmp="${TMPDIR:-/tmp}/kml_simd_off.$$"
mkdir -p "$tmp" || exit 1
trap 'rm -rf "$tmp"' EXIT

FLAGS="-std=c++20 -DKML_SIMD_ENABLED=0 -I$SRC/src -Wall -Wextra -Werror -c"

# 1. The dispatcher compiles with every ISA tier switched off. (The ISA TUs
#    themselves compile to empty files when OFF — that must hold too, since
#    a build system may still feed them to the compiler.)
for f in "$SRC"/src/portability/simd.cpp \
         "$SRC"/src/portability/simd_sse2.cpp \
         "$SRC"/src/portability/simd_avx2.cpp; do
  if ! "$CXX" $FLAGS "$f" -o "$tmp/$(basename "$f").o"; then
    echo "simd_off_build: $f does not compile with KML_SIMD=OFF"
    exit 1
  fi
done

# 2. A consumer TU touching the full seam compiles against the OFF build.
cat > "$tmp/probe.cpp" <<'EOF'
#include "portability/simd.h"

using namespace kml;

int run_probe() {
  double a[4] = {1, 2, 3, 4};
  double b[4] = {5, 6, 7, 8};
  double o[4] = {};
  float fa[4] = {1, 2, 3, 4};
  float fb[4] = {5, 6, 7, 8};
  float fo[4] = {};
  signed char qa[4] = {1, -2, 3, -4};
  signed char qb[4] = {5, -6, 7, -8};
  int qo[4] = {};

  kml_simd_matmul_f64(a, 2, b, 2, o, 2, 2, 2, 2);
  kml_simd_matmul_bt_f64(a, 2, b, 2, o, 2, 2, 2, 2);
  kml_simd_matmul_at_f64(a, 2, b, 2, o, 2, 2, 2, 2);
  kml_simd_matmul_f32(fa, 2, fb, 2, fo, 2, 2, 2, 2);
  kml_simd_matmul_bt_f32(fa, 2, fb, 2, fo, 2, 2, 2, 2);
  kml_simd_matmul_at_f32(fa, 2, fb, 2, fo, 2, 2, 2, 2);
  kml_simd_add_f64(a, b, o, 4);
  kml_simd_sub_f64(a, b, o, 4);
  kml_simd_mul_f64(a, b, o, 4);
  kml_simd_axpy_f64(0.5, b, o, 4);
  kml_simd_scale_f64(o, 2.0, 4);
  kml_simd_add_f32(fa, fb, fo, 4);
  kml_simd_sub_f32(fa, fb, fo, 4);
  kml_simd_mul_f32(fa, fb, fo, 4);
  auto ident = [](double x) { return x; };
  kml_simd_exp_span(a, o, 4, ident);
  kml_simd_sigmoid_span(a, o, 4, ident);
  kml_simd_tanh_span(a, o, 4, ident);
  kml_simd_gemm_s8(qa, 2, qb, 2, qo, 2, 2, 2, 2);

  int alive = static_cast<int>(kml_simd_detected());
  alive += static_cast<int>(kml_simd_level());
  alive += static_cast<int>(kml_simd_set_level(SimdLevel::kAvx2));
  alive += static_cast<int>(
      kml_simd_level_from_name(kml_simd_level_name(SimdLevel::kScalar)));
  return alive + static_cast<int>(o[0] + fo[0]) + qo[0];
}
EOF
if ! "$CXX" $FLAGS "$tmp/probe.cpp" -o "$tmp/probe.o"; then
  echo "simd_off_build: seam surface does not compile when OFF"
  exit 1
fi

# 3. OFF must mean off: no vector-ISA tier may survive in the objects. An
#    AVX2 instruction in the OFF build would crash a pre-AVX2 host at
#    dispatch-table swap, so look for any table symbol beyond scalar.
if command -v nm >/dev/null 2>&1; then
  tiers=$(nm "$tmp/simd.cpp.o" "$tmp/simd_sse2.cpp.o" "$tmp/simd_avx2.cpp.o" \
            2>/dev/null | grep -E 'sse2_table|avx2_table' | grep -v ' U ')
  if [ -n "$tiers" ]; then
    echo "simd_off_build: OFF build still defines vector tier tables:"
    echo "$tiers" | head -10
    exit 1
  fi
fi

echo "simd_off_build: clean"
exit 0
