// Corruption-fuzz tests for the KML model file format (src/nn/serialize):
// exhaustive truncation, seeded bit flips (the CRC must catch every one),
// hostile dimension headers (allocation must stay bounded), version-1
// compatibility, and the size cap. A loader that can face the kernel's
// trust boundary has to shrug all of this off — return false, never crash,
// never over-allocate, never touch `out`.
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "portability/kml_lib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace kml::nn {
namespace {

class SerializeFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kml_lib_init();
    kml_mem_reset_stats();
  }
  void TearDown() override { kml_lib_shutdown(); }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + "/" + name;
  }

  // A realistic small model: the paper's readahead topology with a fitted
  // normalizer.
  static Network make_model(std::uint64_t seed = 21) {
    math::Rng rng(seed);
    Network net = build_mlp_classifier(5, 8, 4, rng);
    matrix::MatD x(32, 5);
    for (int i = 0; i < 32; ++i) {
      for (int j = 0; j < 5; ++j) x.at(i, j) = rng.normal(j, 1.0 + j);
    }
    net.normalizer().fit(x);
    return net;
  }

  static void file_bytes(const std::string& path,
                         std::vector<std::uint8_t>& bytes) {
    bytes.resize(static_cast<std::size_t>(kml_fsize(path.c_str())));
    KmlFile* f = kml_fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    std::int64_t got = 0;
    while (got < static_cast<std::int64_t>(bytes.size())) {
      const std::int64_t n =
          kml_fread(f, bytes.data() + got, bytes.size() - got);
      ASSERT_GT(n, 0);
      got += n;
    }
    kml_fclose(f);
  }

  static void write_bytes(const std::string& path,
                          const std::vector<std::uint8_t>& bytes) {
    KmlFile* f = kml_fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
      ASSERT_EQ(kml_fwrite(f, bytes.data(), bytes.size()),
                static_cast<std::int64_t>(bytes.size()));
    }
    kml_fclose(f);
  }
};

TEST_F(SerializeFuzzTest, V2RoundTripAndFooter) {
  const std::string path = temp_path("fuzz_roundtrip.kml");
  Network net = make_model();
  ASSERT_TRUE(save_model(net, path.c_str()));

  std::vector<std::uint8_t> bytes;
  file_bytes(path, bytes);
  ASSERT_GE(bytes.size(), 12u);

  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, kModelVersion);

  // The footer is the CRC of everything before it.
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 4, sizeof(stored));
  EXPECT_EQ(stored, model_crc32(bytes.data(), bytes.size() - 4));

  Network out;
  ASSERT_TRUE(load_model(out, path.c_str()));
  EXPECT_EQ(out.num_layers(), net.num_layers());
  std::remove(path.c_str());
}

TEST_F(SerializeFuzzTest, TruncationAtEveryByteOffsetFailsCleanly) {
  const std::string path = temp_path("fuzz_trunc_src.kml");
  const std::string cut = temp_path("fuzz_trunc_cut.kml");
  ASSERT_TRUE(save_model(make_model(), path.c_str()));
  std::vector<std::uint8_t> bytes;
  file_bytes(path, bytes);
  ASSERT_GT(bytes.size(), 0u);

  // A pre-populated network proves `out` is untouched across every failed
  // load, not just left default-constructed.
  Network out = make_model(99);
  const int layers_before = out.num_layers();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_bytes(cut, std::vector<std::uint8_t>(bytes.begin(),
                                               bytes.begin() + len));
    ASSERT_FALSE(load_model(out, cut.c_str())) << "truncated at " << len;
    ASSERT_EQ(out.num_layers(), layers_before) << "out mutated at " << len;
  }
  // The intact file still loads.
  EXPECT_TRUE(load_model(out, path.c_str()));
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST_F(SerializeFuzzTest, ThousandSeededBitFlipsAllRejected) {
  const std::string path = temp_path("fuzz_flip_src.kml");
  const std::string flipped = temp_path("fuzz_flip_dst.kml");
  ASSERT_TRUE(save_model(make_model(), path.c_str()));
  std::vector<std::uint8_t> bytes;
  file_bytes(path, bytes);

  const std::uint64_t mem_floor = kml_mem_stats().peak_bytes;
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_int_distribution<std::size_t> byte_at(0, bytes.size() - 1);
  std::uniform_int_distribution<int> bit_at(0, 7);

  Network out;
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> mutant = bytes;
    const std::size_t off = byte_at(rng);
    const int bit = bit_at(rng);
    mutant[off] ^= static_cast<std::uint8_t>(1u << bit);
    write_bytes(flipped, mutant);
    // Every single-bit flip is detectable: either a validation check or the
    // CRC-32 footer (which catches *all* single-bit errors) must reject it.
    ASSERT_FALSE(load_model(out, flipped.c_str()))
        << "bit " << bit << " of byte " << off << " went unnoticed";
  }
  // Bounded allocation: no mutant may have driven more than the file-size
  // cap's worth of transient memory (slack for the parse scaffolding).
  EXPECT_LT(kml_mem_stats().peak_bytes - mem_floor,
            static_cast<std::uint64_t>(2 * kMaxModelFileBytes));
  std::remove(path.c_str());
  std::remove(flipped.c_str());
}

// Build a syntactically valid v1 image by hand (no CRC footer — the v1
// writer never had one).
std::vector<std::uint8_t> craft_v1_image(std::uint32_t nfeat,
                                         std::uint32_t nlayers,
                                         std::uint32_t lin_in,
                                         std::uint32_t lin_out,
                                         bool include_weights = true) {
  std::vector<std::uint8_t> img;
  const auto u32 = [&img](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    img.insert(img.end(), p, p + 4);
  };
  const auto f64 = [&img](double v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    img.insert(img.end(), p, p + 8);
  };
  u32(kModelMagic);
  u32(1);  // version 1
  u32(nfeat);
  if (include_weights) {
    for (std::uint32_t j = 0; j < nfeat; ++j) f64(0.0);  // means
    for (std::uint32_t j = 0; j < nfeat; ++j) f64(1.0);  // stddevs
  }
  u32(nlayers);
  for (std::uint32_t i = 0; i < nlayers && include_weights; ++i) {
    u32(1);  // kLinear
    u32(lin_in);
    u32(lin_out);
    for (std::uint64_t k = 0;
         k < static_cast<std::uint64_t>(lin_in) * lin_out + lin_out; ++k) {
      f64(0.25);
    }
  }
  return img;
}

TEST_F(SerializeFuzzTest, GenuineV1FileStillLoads) {
  const std::string path = temp_path("fuzz_v1_compat.kml");
  write_bytes(path, craft_v1_image(2, 1, 2, 3));
  Network out;
  ASSERT_TRUE(load_model(out, path.c_str()));
  ASSERT_EQ(out.num_layers(), 1);
  EXPECT_EQ(out.layer(0).in_features(), 2);
  EXPECT_EQ(out.layer(0).out_features(), 3);
  // Weights arrived intact (all 0.25 by construction).
  auto& lin = static_cast<Linear&>(out.layer(0));
  EXPECT_DOUBLE_EQ(lin.weights().at(1, 2), 0.25);

  matrix::MatD x(1, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = -1.0;
  const matrix::MatD y = out.forward(x);
  EXPECT_EQ(y.cols(), 3);
  std::remove(path.c_str());
}

TEST_F(SerializeFuzzTest, HostileDimensionsRejectedWithBoundedAllocation) {
  const std::string path = temp_path("fuzz_hostile.kml");
  const std::uint64_t mem_floor = kml_mem_stats().peak_bytes;
  Network out;

  // Normalizer claims 4 billion features in a 20-byte file.
  write_bytes(path, craft_v1_image(0xFFFFFFFFu, 0, 0, 0, false));
  EXPECT_FALSE(load_model(out, path.c_str()));

  // A million layers, no payload behind them.
  write_bytes(path, craft_v1_image(0, 1'000'000, 0, 0, false));
  EXPECT_FALSE(load_model(out, path.c_str()));

  // One linear layer claiming 65k x 65k weights (32 GiB) in a tiny file.
  {
    std::vector<std::uint8_t> img = craft_v1_image(0, 0, 0, 0, false);
    img.resize(img.size() - 4);  // drop the nlayers field
    const auto u32 = [&img](std::uint32_t v) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
      img.insert(img.end(), p, p + 4);
    };
    u32(1);        // nlayers
    u32(1);        // kLinear
    u32(0xFFFFu);  // in
    u32(0xFFFFu);  // out
    write_bytes(path, img);
    EXPECT_FALSE(load_model(out, path.c_str()));
  }

  // Unknown layer type.
  {
    std::vector<std::uint8_t> img = craft_v1_image(0, 0, 0, 0, false);
    img.resize(img.size() - 4);
    const auto u32 = [&img](std::uint32_t v) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
      img.insert(img.end(), p, p + 4);
    };
    u32(1);    // nlayers
    u32(777);  // no such LayerType
    u32(1);
    u32(1);
    write_bytes(path, img);
    EXPECT_FALSE(load_model(out, path.c_str()));
  }

  // Trailing garbage after a valid v1 image.
  {
    std::vector<std::uint8_t> img = craft_v1_image(2, 1, 2, 3);
    img.push_back(0xEE);
    write_bytes(path, img);
    EXPECT_FALSE(load_model(out, path.c_str()));
  }

  // None of the hostile headers may have provoked a large allocation.
  EXPECT_LT(kml_mem_stats().peak_bytes - mem_floor, 64u << 20);
  std::remove(path.c_str());
}

TEST_F(SerializeFuzzTest, OversizedFileRejected) {
  const std::string path = temp_path("fuzz_oversized.kml");
  // A sparse file over the cap: write one byte past the limit.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(kMaxModelFileBytes), SEEK_SET),
            0);
  std::fputc('x', f);
  std::fclose(f);
  ASSERT_GT(kml_fsize(path.c_str()), kMaxModelFileBytes);

  const std::uint64_t mem_floor = kml_mem_stats().peak_bytes;
  Network out;
  EXPECT_FALSE(load_model(out, path.c_str()));
  // Rejected on size alone — before the image was ever slurped.
  EXPECT_LT(kml_mem_stats().peak_bytes - mem_floor, 1u << 20);
  std::remove(path.c_str());
}

TEST_F(SerializeFuzzTest, FailedLoadLeavesOutUntouched) {
  const std::string good = temp_path("fuzz_untouched_good.kml");
  const std::string bad = temp_path("fuzz_untouched_bad.kml");
  ASSERT_TRUE(save_model(make_model(31), good.c_str()));

  Network out;
  ASSERT_TRUE(load_model(out, good.c_str()));
  matrix::MatD x(1, 5);
  for (int j = 0; j < 5; ++j) x.at(0, j) = 0.5 * j;
  const matrix::MatD before = out.forward(out.normalizer().transform(x));

  // Corrupt file: the loaded network must keep producing identical output.
  std::vector<std::uint8_t> bytes;
  file_bytes(good, bytes);
  bytes[bytes.size() / 2] ^= 0x40;
  write_bytes(bad, bytes);
  ASSERT_FALSE(load_model(out, bad.c_str()));

  const matrix::MatD after = out.forward(out.normalizer().transform(x));
  EXPECT_EQ(matrix::max_abs_diff(before, after), 0.0);
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace kml::nn
