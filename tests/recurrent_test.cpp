// Tests for src/nn/recurrent: BPTT gradient checks for both cell types,
// temporal learning tasks, and the sequence-classifier head.
#include "nn/recurrent.h"

#include <gtest/gtest.h>

namespace kml::nn {
namespace {

// Scalar objective L = sum_{t,j} W[t][j] * h[t][j] so dL/dh = W, which we
// feed straight into backward_sequence. Numeric gradients perturb a
// parameter and recompute L via a fresh forward pass.
double weighted_sum(const matrix::MatD& h, const matrix::MatD& w) {
  double total = 0.0;
  for (int t = 0; t < h.rows(); ++t) {
    for (int j = 0; j < h.cols(); ++j) total += h.at(t, j) * w.at(t, j);
  }
  return total;
}

void grad_check_cell(RecurrentCell& cell, int t_steps, std::uint64_t seed) {
  math::Rng rng(seed);
  const matrix::MatD x =
      matrix::random_uniform(t_steps, cell.in_features(), -1, 1, rng);
  const matrix::MatD w =
      matrix::random_uniform(t_steps, cell.hidden_size(), -1, 1, rng);

  cell.zero_grad();
  cell.forward_sequence(x);
  const matrix::MatD grad_in =
      cell.backward_sequence(w);  // dL/dh == w by construction

  // Parameter gradients.
  for (auto& p : cell.params()) {
    for (std::size_t k = 0; k < p.value->size();
         k += p.value->size() / 4 + 1) {
      double& param = p.value->data()[k];
      const double saved = param;
      const double eps = 1e-6;
      param = saved + eps;
      const double up = weighted_sum(cell.forward_sequence(x), w);
      param = saved - eps;
      const double down = weighted_sum(cell.forward_sequence(x), w);
      param = saved;
      EXPECT_NEAR(p.grad->data()[k], (up - down) / (2 * eps), 1e-5)
          << "param idx " << k;
    }
  }

  // Input gradients (restore the cached state first).
  cell.forward_sequence(x);
  for (int t = 0; t < t_steps; ++t) {
    matrix::MatD xp = x;
    const double eps = 1e-6;
    xp.at(t, 0) += eps;
    const double up = weighted_sum(cell.forward_sequence(xp), w);
    xp.at(t, 0) -= 2 * eps;
    const double down = weighted_sum(cell.forward_sequence(xp), w);
    EXPECT_NEAR(grad_in.at(t, 0), (up - down) / (2 * eps), 1e-5)
        << "input step " << t;
  }
}

TEST(Rnn, GradCheckThroughTime) {
  math::Rng rng(11);
  RnnCell cell(3, 4, rng);
  grad_check_cell(cell, 6, 21);
}

TEST(Rnn, OutputShapeAndRange) {
  math::Rng rng(3);
  RnnCell cell(2, 5, rng);
  const matrix::MatD x = matrix::random_uniform(7, 2, -3, 3, rng);
  const matrix::MatD h = cell.forward_sequence(x);
  EXPECT_EQ(h.rows(), 7);
  EXPECT_EQ(h.cols(), 5);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_LE(math::kml_abs(h.data()[i]), 1.0);  // tanh range
  }
}

TEST(Rnn, StatePropagatesAcrossSteps) {
  math::Rng rng(5);
  RnnCell cell(1, 3, rng);
  // Same input at each step: if state propagates, h_1 != h_0.
  matrix::MatD x = matrix::MatD::filled(2, 1, 0.7);
  const matrix::MatD h = cell.forward_sequence(x);
  double diff = 0.0;
  for (int j = 0; j < 3; ++j) diff += math::kml_abs(h.at(0, j) - h.at(1, j));
  EXPECT_GT(diff, 1e-6);
}

TEST(Lstm, GradCheckThroughTime) {
  math::Rng rng(13);
  LstmCell cell(3, 4, rng);
  grad_check_cell(cell, 6, 23);
}

TEST(Lstm, ForgetBiasStartsOpen) {
  math::Rng rng(7);
  LstmCell cell(2, 4, rng);
  auto params = cell.params();
  const matrix::MatD& b = *params[2].value;  // bias is third
  for (int j = 4; j < 8; ++j) EXPECT_EQ(b.at(0, j), 1.0);  // forget block
  for (int j = 0; j < 4; ++j) EXPECT_EQ(b.at(0, j), 0.0);
}

TEST(Lstm, CellStateIsNotBoundedByOne) {
  // Repeated positive input accumulates in c; |h| stays < 1 but the cell
  // state can exceed 1 — the long-memory property.
  math::Rng rng(9);
  LstmCell cell(1, 2, rng);
  matrix::MatD x = matrix::MatD::filled(30, 1, 1.0);
  const matrix::MatD h = cell.forward_sequence(x);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_LT(math::kml_abs(h.data()[i]), 1.0);
  }
}

// Temporal toy task: the label is decided by the FIRST element of the
// sequence, so the model must carry information across all steps.
void train_first_element_task(SequenceClassifier& clf, int t_steps,
                              double lr, int epochs, double* accuracy) {
  math::Rng rng(31);
  SGD opt(lr, 0.9);
  opt.attach(clf.params());

  std::vector<matrix::MatD> sequences;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    matrix::MatD seq(t_steps, 1);
    const int label = static_cast<int>(rng.next_below(2));
    seq.at(0, 0) = label == 1 ? 1.0 : -1.0;
    for (int t = 1; t < t_steps; ++t) seq.at(t, 0) = rng.uniform(-0.3, 0.3);
    sequences.push_back(std::move(seq));
    labels.push_back(label);
  }
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      clf.train_step(sequences[i], labels[i], opt);
    }
  }
  int correct = 0;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    if (clf.predict(sequences[i]) == labels[i]) ++correct;
  }
  *accuracy = static_cast<double>(correct) / sequences.size();
}

TEST(SequenceClassifierTest, RnnLearnsShortTemporalDependency) {
  math::Rng rng(41);
  SequenceClassifier clf(SequenceClassifier::CellKind::kRnn, 1, 8, 2, rng);
  double acc = 0.0;
  train_first_element_task(clf, /*t_steps=*/5, 0.05, 60, &acc);
  EXPECT_GT(acc, 0.9);
}

TEST(SequenceClassifierTest, LstmLearnsLongerTemporalDependency) {
  math::Rng rng(43);
  SequenceClassifier clf(SequenceClassifier::CellKind::kLstm, 1, 8, 2, rng);
  double acc = 0.0;
  train_first_element_task(clf, /*t_steps=*/12, 0.02, 200, &acc);
  EXPECT_GT(acc, 0.9);
}

TEST(SequenceClassifierTest, TrainStepReducesLoss) {
  math::Rng rng(47);
  SequenceClassifier clf(SequenceClassifier::CellKind::kLstm, 2, 6, 3, rng);
  SGD opt(0.05, 0.9);
  opt.attach(clf.params());
  matrix::MatD seq = matrix::random_uniform(4, 2, -1, 1, rng);
  const double first = clf.train_step(seq, 1, opt);
  double last = first;
  for (int i = 0; i < 50; ++i) last = clf.train_step(seq, 1, opt);
  EXPECT_LT(last, first * 0.5);
}

TEST(SequenceClassifierTest, LogitShape) {
  math::Rng rng(53);
  SequenceClassifier clf(SequenceClassifier::CellKind::kRnn, 3, 4, 5, rng);
  const matrix::MatD logits =
      clf.forward(matrix::random_uniform(6, 3, -1, 1, rng));
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 5);
}

}  // namespace
}  // namespace kml::nn
