// Property-based and parameterized sweeps across module invariants:
// algebraic identities for matrices and fixed-point, conservation laws for
// the circular buffer and page cache, window-sizing monotonicity for the
// readahead engine, and gradient checks across random architectures.
#include "data/circular_buffer.h"
#include "matrix/linalg.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "sim/stack.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace kml {
namespace {

// --- matrix algebra across shapes ---------------------------------------------

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  math::Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  const matrix::MatD a = matrix::random_uniform(m, k, -2, 2, rng);
  const matrix::MatD b = matrix::random_uniform(k, n, -2, 2, rng);
  const matrix::MatD c = matrix::random_uniform(k, n, -2, 2, rng);

  // a*(b+c) == a*b + a*c
  matrix::MatD bc(k, n);
  matrix::add(b, c, bc);
  matrix::MatD left(m, n);
  matrix::matmul(a, bc, left);

  matrix::MatD ab(m, n);
  matrix::MatD ac(m, n);
  matrix::matmul(a, b, ab);
  matrix::matmul(a, c, ac);
  matrix::MatD right(m, n);
  matrix::add(ab, ac, right);

  EXPECT_TRUE(matrix::approx_equal(left, right, 1e-9));
}

TEST_P(MatmulShapes, TransposeReversesProduct) {
  const auto [m, k, n] = GetParam();
  math::Rng rng(static_cast<std::uint64_t>(m * 7 + k * 3 + n));
  const matrix::MatD a = matrix::random_uniform(m, k, -2, 2, rng);
  const matrix::MatD b = matrix::random_uniform(k, n, -2, 2, rng);

  // (a*b)^T == b^T * a^T
  matrix::MatD ab(m, n);
  matrix::matmul(a, b, ab);
  const matrix::MatD left = matrix::transpose(ab);

  const matrix::MatD bt = matrix::transpose(b);
  const matrix::MatD at = matrix::transpose(a);
  matrix::MatD right(n, m);
  matrix::matmul(bt, at, right);

  EXPECT_TRUE(matrix::approx_equal(left, right, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 5, 3},
                      std::tuple{4, 4, 4}, std::tuple{7, 2, 9},
                      std::tuple{16, 16, 16}, std::tuple{3, 17, 5}));

// --- fixed-point properties ---------------------------------------------------

class FixedPair : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(FixedPair, AdditionCommutesAndRoundTrips) {
  const auto [x, y] = GetParam();
  const math::Fixed a = math::Fixed::from_double(x);
  const math::Fixed b = math::Fixed::from_double(y);
  EXPECT_EQ((a + b).raw(), (b + a).raw());
  EXPECT_EQ((a * b).raw(), (b * a).raw());
  // a + b - b == a whenever no saturation occurred.
  if (std::abs(x) < 10000 && std::abs(y) < 10000) {
    EXPECT_EQ(((a + b) - b).raw(), a.raw());
  }
}

TEST_P(FixedPair, OrderingMatchesDouble) {
  const auto [x, y] = GetParam();
  if (std::abs(x - y) < 1e-3) return;  // below fixed-point resolution
  EXPECT_EQ(math::Fixed::from_double(x) < math::Fixed::from_double(y), x < y);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FixedPair,
    ::testing::Values(std::tuple{0.0, 0.0}, std::tuple{1.5, -2.25},
                      std::tuple{-0.001, 0.002}, std::tuple{100.0, 0.5},
                      std::tuple{-30000.0, 29000.0},
                      std::tuple{12345.678, -9876.5}));

// --- circular buffer conservation ----------------------------------------------

class BufferCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferCapacity, PushedEqualsPoppedPlusDropped) {
  data::CircularBuffer<std::uint64_t> buffer(GetParam());
  math::Rng rng(GetParam());
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t out;
  std::uint64_t last = 0;
  bool have_last = false;
  for (int round = 0; round < 2000; ++round) {
    if (rng.next_below(3) != 0) {
      buffer.push(pushed);
      ++pushed;
    } else if (buffer.pop(out)) {
      if (have_last) EXPECT_GT(out, last);  // FIFO, no dup, no reorder
      last = out;
      have_last = true;
      ++popped;
    }
  }
  while (buffer.pop(out)) {
    if (have_last) EXPECT_GT(out, last);
    last = out;
    have_last = true;
    ++popped;
  }
  EXPECT_EQ(pushed, popped + buffer.dropped());
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferCapacity,
                         ::testing::Values(1, 2, 7, 64, 1024));

// --- readahead window laws ------------------------------------------------------

class RaPagesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaPagesSweep, WindowsNeverExceedMax) {
  const std::uint64_t max = GetParam();
  std::uint64_t size = sim::ReadaheadEngine::init_window(1, max);
  EXPECT_LE(size, max);
  EXPECT_GE(size, 1u);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t next = sim::ReadaheadEngine::next_window(size, max);
    EXPECT_LE(next, max);
    EXPECT_GE(next, size == max ? max : size);  // monotone ramp to max
    size = next;
  }
  EXPECT_EQ(size, max);  // ramp converges to the cap
}

TEST_P(RaPagesSweep, SequentialReadDevicePagesBounded) {
  // Conservation: a sequential scan of N pages reads each page from the
  // device at most once, plus at most ~2 windows of overrun.
  sim::StackConfig sc;
  sc.cache_pages = 100000;
  sim::StorageStack stack(sc);
  sim::FileHandle& f = stack.files().create(100000);
  f.ra_pages = static_cast<std::uint32_t>(GetParam());
  const std::uint64_t kPages = 512;
  for (std::uint64_t p = 0; p < kPages; ++p) stack.cache().read(f, p, 1);
  EXPECT_GE(stack.device().stats().pages_read, kPages);
  EXPECT_LE(stack.device().stats().pages_read, kPages + 2 * GetParam() + 4);
  // And every demanded page really is resident.
  for (std::uint64_t p = 0; p < kPages; ++p) {
    EXPECT_TRUE(stack.cache().cached(f.inode, p)) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(MaxWindows, RaPagesSweep,
                         ::testing::Values(1, 2, 4, 32, 256));

// --- gradient checks across architectures --------------------------------------

struct ArchSpec {
  int in;
  int hidden;
  int out;
  int activation;  // 0 sigmoid, 1 relu, 2 tanh
};

class GradCheck : public ::testing::TestWithParam<ArchSpec> {};

TEST_P(GradCheck, AnalyticMatchesNumeric) {
  const ArchSpec spec = GetParam();
  math::Rng rng(static_cast<std::uint64_t>(
      spec.in * 1000 + spec.hidden * 10 + spec.out));
  nn::Network net;
  net.add(std::make_unique<nn::Linear>(spec.in, spec.hidden, rng));
  switch (spec.activation) {
    case 0: net.add(std::make_unique<nn::Sigmoid>()); break;
    case 1: net.add(std::make_unique<nn::ReLU>()); break;
    default: net.add(std::make_unique<nn::Tanh>()); break;
  }
  net.add(std::make_unique<nn::Linear>(spec.hidden, spec.out, rng));

  nn::CrossEntropyLoss loss;
  const matrix::MatD x = matrix::random_uniform(3, spec.in, -1, 1, rng);
  matrix::MatD y(3, spec.out);
  for (int i = 0; i < 3; ++i) y.at(i, i % spec.out) = 1.0;

  for (auto& p : net.params()) p.grad->fill(0.0);
  loss.forward(net.forward(x), y);
  matrix::MatD grad = loss.backward();
  for (int i = net.num_layers() - 1; i >= 0; --i) {
    grad = net.layer(i).backward(grad);
  }

  auto params = net.params();
  for (auto& p : params) {
    const std::size_t probe = p.value->size() / 2;
    double& w = p.value->data()[probe];
    const double eps = 1e-6;
    const double saved = w;
    w = saved + eps;
    const double up = loss.forward(net.forward(x), y);
    w = saved - eps;
    const double down = loss.forward(net.forward(x), y);
    w = saved;
    EXPECT_NEAR(p.grad->data()[probe], (up - down) / (2 * eps), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, GradCheck,
    ::testing::Values(ArchSpec{2, 3, 2, 0}, ArchSpec{5, 16, 4, 0},
                      ArchSpec{3, 8, 2, 1}, ArchSpec{4, 6, 3, 2},
                      ArchSpec{1, 2, 2, 0}, ArchSpec{8, 4, 5, 1}));

// --- approximation accuracy sweeps ---------------------------------------------

class ExpRange : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(ExpRange, RelativeErrorBounded) {
  const auto [lo, hi] = GetParam();
  const double step = (hi - lo) / 997.0;
  for (double x = lo; x <= hi; x += step) {
    const double ref = std::exp(x);
    if (ref == 0.0 || std::isinf(ref)) continue;
    EXPECT_NEAR(math::kml_exp(x) / ref, 1.0, 1e-9) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, ExpRange,
                         ::testing::Values(std::tuple{-1.0, 1.0},
                                           std::tuple{-60.0, -20.0},
                                           std::tuple{20.0, 60.0},
                                           std::tuple{-700.0, -600.0},
                                           std::tuple{600.0, 700.0}));

}  // namespace
}  // namespace kml
