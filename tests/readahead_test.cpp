// Tests for src/readahead: feature extraction semantics, model training
// helpers, the tuner closed loop, and the experiment pipeline — including a
// miniature end-to-end run asserting the paper's headline direction (KML
// beats vanilla on readrandom).
#include "readahead/model.h"
#include "readahead/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace kml::readahead {
namespace {

data::TraceRecord read_rec(std::uint64_t pgoff, std::uint64_t t = 0) {
  return data::TraceRecord{1, pgoff, t, 0};
}

TEST(Features, CountAndRaValue) {
  FeatureExtractor fx;
  std::vector<data::TraceRecord> window{read_rec(1), read_rec(2),
                                        read_rec(3)};
  const CandidateVector f = fx.extract(window, 256);
  EXPECT_EQ(f[0], 3.0);   // tracepoint count
  EXPECT_EQ(f[4], 256.0); // current readahead
}

TEST(Features, SequentialWindowHasUnitMeanDiff) {
  FeatureExtractor fx;
  std::vector<data::TraceRecord> window;
  for (std::uint64_t p = 100; p < 200; ++p) window.push_back(read_rec(p));
  const CandidateVector f = fx.extract(window, 128);
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // mean |delta|
  EXPECT_DOUBLE_EQ(f[7], 1.0);  // max |delta|
}

TEST(Features, RandomWindowHasLargeMeanDiff) {
  FeatureExtractor fx;
  math::Rng rng(3);
  std::vector<data::TraceRecord> window;
  for (int i = 0; i < 200; ++i) {
    window.push_back(read_rec(rng.next_below(1000000)));
  }
  const CandidateVector f = fx.extract(window, 128);
  EXPECT_GT(f[3], 10000.0);
  EXPECT_GT(f[2], 10000.0);  // cumulative stddev of offsets
}

TEST(Features, CumulativeStatsPersistAcrossWindows) {
  FeatureExtractor fx;
  std::vector<data::TraceRecord> w1{read_rec(0), read_rec(0)};
  fx.extract(w1, 128);
  std::vector<data::TraceRecord> w2{read_rec(100)};
  const CandidateVector f = fx.extract(w2, 128);
  // CMA over all three records: (0+0+100)/3.
  EXPECT_NEAR(f[1], 100.0 / 3.0, 1e-9);
}

TEST(Features, ResetForgetsHistory) {
  FeatureExtractor fx;
  std::vector<data::TraceRecord> w1{read_rec(1000)};
  fx.extract(w1, 128);
  fx.reset();
  std::vector<data::TraceRecord> w2{read_rec(10)};
  const CandidateVector f = fx.extract(w2, 128);
  EXPECT_DOUBLE_EQ(f[1], 10.0);
  EXPECT_DOUBLE_EQ(f[3], 0.0);  // no previous record after reset
}

TEST(Features, WriteFractionAndInodeCount) {
  FeatureExtractor fx;
  std::vector<data::TraceRecord> window{
      data::TraceRecord{1, 5, 0, 0}, data::TraceRecord{2, 6, 0, 1},
      data::TraceRecord{3, 7, 0, 1}, data::TraceRecord{1, 8, 0, 0}};
  const CandidateVector f = fx.extract(window, 128);
  EXPECT_DOUBLE_EQ(f[5], 0.5);  // write fraction
  EXPECT_DOUBLE_EQ(f[6], 3.0);  // distinct inodes
}

TEST(Features, EmptyWindowIsAllZerosExceptRa) {
  FeatureExtractor fx;
  std::vector<data::TraceRecord> window;
  const CandidateVector f = fx.extract(window, 64);
  EXPECT_EQ(f[0], 0.0);
  EXPECT_EQ(f[3], 0.0);
  EXPECT_EQ(f[4], 64.0);
}

TEST(Features, LogCompressIsMonotoneAndSparesWriteFraction) {
  CandidateVector raw{1000.0, 262144.0, 151000.0, 2900.0, 128.0,
                      0.37, 3.0, 500000.0};
  const CandidateVector z = FeatureExtractor::log_compress(raw);
  for (int i = 0; i < kNumCandidateFeatures; ++i) {
    if (i == 5) {
      EXPECT_DOUBLE_EQ(z[5], 0.37);  // ratio feature untouched
    } else {
      EXPECT_NEAR(z[static_cast<std::size_t>(i)],
                  math::kml_log(1.0 + raw[static_cast<std::size_t>(i)]),
                  1e-12);
    }
  }
  // Monotone: larger raw value -> larger compressed value.
  CandidateVector bigger = raw;
  bigger[0] *= 10.0;
  EXPECT_GT(FeatureExtractor::log_compress(bigger)[0], z[0]);
}

TEST(Features, LogCompressShrinksDeviceRateGap) {
  // The transfer problem in one assertion: a 6x event-rate gap is >5000
  // events linear but <2 in log space — inside one z-score unit of the
  // training spread.
  CandidateVector nvme{};
  CandidateVector sata{};
  nvme[0] = 660000.0;
  sata[0] = 110000.0;
  const double linear_gap = nvme[0] - sata[0];
  const double log_gap = FeatureExtractor::log_compress(nvme)[0] -
                         FeatureExtractor::log_compress(sata)[0];
  EXPECT_GT(linear_gap, 500000.0);
  EXPECT_LT(log_gap, 2.0);
}

TEST(Features, SelectTakesTheDocumentedFive) {
  CandidateVector all{1, 2, 3, 4, 5, 6, 7, 8};
  const FeatureVector sel = FeatureExtractor::select(all);
  EXPECT_EQ(sel[0], 1.0);  // count
  EXPECT_EQ(sel[1], 2.0);  // cumulative offset mean
  EXPECT_EQ(sel[2], 4.0);  // mean |delta offset|
  EXPECT_EQ(sel[3], 7.0);  // distinct inodes (candidate 6)
  EXPECT_EQ(sel[4], 5.0);  // readahead KB
}

TEST(Model, TrainsToHighAccuracyOnSyntheticClasses) {
  // Four synthetic workload-like clusters in feature space.
  math::Rng rng(5);
  data::Dataset d(kNumSelectedFeatures);
  for (int i = 0; i < 400; ++i) {
    const int cls = i % 4;
    double f[kNumSelectedFeatures];
    for (int j = 0; j < kNumSelectedFeatures; ++j) {
      f[j] = rng.normal(cls * 10.0, 1.0);
    }
    d.add(f, cls);
  }
  ModelConfig config;
  config.epochs = 100;
  nn::Network net = train_readahead_nn(d, config);
  EXPECT_GT(evaluate_nn(net, d), 0.97);
}

TEST(Model, KFoldAccuracyOnSeparableData) {
  math::Rng rng(7);
  data::Dataset d(kNumSelectedFeatures);
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 4;
    double f[kNumSelectedFeatures];
    for (int j = 0; j < kNumSelectedFeatures; ++j) {
      f[j] = rng.normal(cls * 8.0, 0.5);
    }
    d.add(f, cls);
  }
  ModelConfig config;
  config.epochs = 60;
  EXPECT_GT(kfold_nn_accuracy(d, 5, config), 0.9);
}

TEST(Model, GridSearchFindsAWorkingConfiguration) {
  math::Rng rng(71);
  data::Dataset d(kNumSelectedFeatures);
  for (int i = 0; i < 120; ++i) {
    const int cls = i % 4;
    double f[kNumSelectedFeatures];
    for (int j = 0; j < kNumSelectedFeatures; ++j) {
      f[j] = rng.normal(cls * 6.0, 0.5);
    }
    d.add(f, cls);
  }
  ModelConfig base;
  base.epochs = 40;
  base.augment_copies = 0;
  const GridSearchResult result =
      grid_search(d, {4, 16}, {0.01, 0.1}, {0.9}, 4, base);
  EXPECT_EQ(result.trials.size(), 4u);
  EXPECT_GT(result.best_accuracy, 0.9);
  // The winner's recorded accuracy matches its trial entry.
  bool found = false;
  for (const auto& [config, acc] : result.trials) {
    if (config.hidden == result.best.hidden &&
        config.learning_rate == result.best.learning_rate &&
        acc == result.best_accuracy) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Model, DecisionTreeAlternativeTrains) {
  math::Rng rng(9);
  data::Dataset d(kNumSelectedFeatures);
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 4;
    double f[kNumSelectedFeatures];
    for (int j = 0; j < kNumSelectedFeatures; ++j) {
      f[j] = rng.normal(cls * 8.0, 0.5);
    }
    d.add(f, cls);
  }
  const ReadaheadTree tree = train_readahead_dtree(d);
  EXPECT_GT(tree.accuracy(d), 0.95);
}

ExperimentConfig tiny_experiment() {
  ExperimentConfig config;
  config.num_keys = 100000;    // ~100 MiB at 1 KiB entries
  config.cache_pages = 2048;   // 8 MiB
  return config;
}

TEST(Tuner, ActuatesTableEntryForPredictedClass) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  TunerConfig config;
  config.class_ra_kb = {512, 16, 256, 32};
  ReadaheadTuner tuner(
      stack, [](const FeatureVector&) { return 1; }, config);
  // Generate some traffic, then cross a window boundary.
  for (std::uint64_t k = 0; k < 50; ++k) db.get(k * 977);
  tuner.on_tick(sim::kNsPerSec + 1);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 16u);
  ASSERT_EQ(tuner.windows(), 1u);
  EXPECT_EQ(tuner.timeline()[0].predicted_class, 1);
  EXPECT_GT(tuner.timeline()[0].events, 0u);
}

TEST(Tuner, EmptyWindowKeepsCurrentSetting) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  TunerConfig config;
  int calls = 0;
  ReadaheadTuner tuner(
      stack,
      [&calls](const FeatureVector&) {
        ++calls;
        return 0;
      },
      config);
  tuner.on_tick(3 * sim::kNsPerSec);  // three empty windows
  EXPECT_EQ(tuner.windows(), 3u);
  EXPECT_EQ(calls, 0);  // no inference without data
  EXPECT_EQ(stack.block_layer().readahead_kb(), 128u);
  EXPECT_EQ(tuner.timeline()[0].predicted_class, -1);
}

TEST(Tuner, ChargesInferenceCpuOnVirtualClock) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  TunerConfig config;
  config.inference_cpu_ns = 21000;
  ReadaheadTuner tuner(
      stack, [](const FeatureVector&) { return 0; }, config);
  db.get(1);
  const std::uint64_t before = stack.clock().now_ns();
  tuner.on_tick(sim::kNsPerSec + 1);
  EXPECT_EQ(stack.clock().now_ns(), before + 21000);
}

TEST(Tuner, OutOfRangePredictionLeavesRaUntouched) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  kv::MiniKV db(stack, make_kv_config(tiny_experiment()));
  ReadaheadTuner tuner(
      stack, [](const FeatureVector&) { return 99; }, TunerConfig{});
  db.get(1);
  tuner.on_tick(sim::kNsPerSec + 1);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 128u);
}

TEST(Tuner, UnregistersHookOnDestruction) {
  sim::StorageStack stack(make_stack_config(tiny_experiment()));
  {
    ReadaheadTuner tuner(
        stack, [](const FeatureVector&) { return 0; }, TunerConfig{});
    EXPECT_EQ(stack.tracepoints().hook_count(), 1);
  }
  EXPECT_EQ(stack.tracepoints().hook_count(), 0);
}

TEST(Pipeline, BestRaTablePicksArgmax) {
  std::vector<SweepPoint> sweep{
      {workloads::WorkloadType::kReadSeq, 128, 100.0},
      {workloads::WorkloadType::kReadSeq, 512, 300.0},
      {workloads::WorkloadType::kReadRandom, 16, 900.0},
      {workloads::WorkloadType::kReadRandom, 128, 400.0},
  };
  const auto table = best_ra_table(sweep);
  EXPECT_EQ(table[0], 512u);
  EXPECT_EQ(table[1], 16u);
}

TEST(Pipeline, PaperRaValuesAreTwentyAscending) {
  const auto values = paper_ra_values();
  EXPECT_EQ(values.size(), 20u);
  EXPECT_EQ(values.front(), 8u);
  EXPECT_EQ(values.back(), 1024u);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GT(values[i], values[i - 1]);
  }
}

TEST(Pipeline, CollectTrainingDataProducesLabeledWindows) {
  TraceGenConfig config;
  config.base = tiny_experiment();
  config.ra_values_kb = {128};
  config.seconds_per_run = 3;
  const data::Dataset d = collect_training_data(config);
  EXPECT_EQ(d.num_features(), kNumSelectedFeatures);
  EXPECT_GT(d.size(), 4);
  EXPECT_EQ(d.num_classes(), workloads::kNumTrainingClasses);
  // Every label appears.
  int seen[workloads::kNumTrainingClasses] = {};
  for (int i = 0; i < d.size(); ++i) ++seen[d.label(i)];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Pipeline, CollectSequenceDataProducesFixedLengthSequences) {
  SequenceGenConfig config;
  config.base = tiny_experiment();
  config.ra_values_kb = {128};
  config.seconds_per_run = 3;
  config.steps_per_sequence = 4;
  config.sub_window_ms = 250;
  const SequenceDataset dataset = collect_sequence_data(config);
  ASSERT_GT(dataset.size(), 4);
  for (const matrix::MatD& seq : dataset.sequences) {
    EXPECT_EQ(seq.rows(), 4);
    EXPECT_EQ(seq.cols(), kNumSelectedFeatures);
  }
  // Every training class appears.
  int seen[workloads::kNumTrainingClasses] = {};
  for (int label : dataset.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, workloads::kNumTrainingClasses);
    ++seen[label];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Pipeline, DatasetFromTraceMatchesLiveExtraction) {
  // Capture a run, featurize offline, and compare against live windowed
  // extraction — the two paths must produce identical feature rows.
  const char* path = "/tmp/kml_pipeline_trace.kmlr";
  ExperimentConfig config = tiny_experiment();

  data::Dataset live(kNumSelectedFeatures);
  {
    sim::StorageStack stack(make_stack_config(config));
    kv::MiniKV db(stack, make_kv_config(config));
    sim::TraceWriter writer(stack, path);

    FeatureExtractor extractor;
    std::vector<data::TraceRecord> window;
    std::uint64_t boundary = sim::kNsPerSec;
    std::uint64_t index = 0;
    stack.tracepoints().register_hook(
        [&](const sim::TraceEvent& ev) {
          window.push_back(
              data::TraceRecord{ev.inode, ev.pgoff, ev.time_ns,
                                static_cast<std::uint8_t>(ev.type)});
        },
        sim::kKmlCollectionTracepoints);
    workloads::WorkloadConfig wc;
    wc.type = workloads::WorkloadType::kReadRandom;
    workloads::run_workload(
        db, wc, 4 * sim::kNsPerSec, UINT64_MAX, [&](std::uint64_t now) {
          while (now >= boundary) {
            const FeatureVector f = extractor.extract_selected(window, 128);
            if (index > 0 && !window.empty()) live.add(f.data(), 1);
            window.clear();
            ++index;
            boundary += sim::kNsPerSec;
          }
        });
    ASSERT_TRUE(writer.finish());
  }

  sim::TraceReader reader;
  ASSERT_TRUE(reader.open(path));
  const data::Dataset offline = dataset_from_trace(reader, 1, 128);

  ASSERT_GE(offline.size(), live.size());
  for (int i = 0; i < live.size(); ++i) {
    for (int j = 0; j < kNumSelectedFeatures; ++j) {
      // The live tuner closes windows at op boundaries while the offline
      // path splits strictly by timestamp, so a handful of events that
      // straddle a boundary inside one op land in adjacent windows — a
      // few parts per million in the log-domain features.
      EXPECT_NEAR(offline.features(i)[j], live.features(i)[j], 0.05)
          << "window " << i << " feature " << j;
    }
    EXPECT_EQ(offline.label(i), 1);
  }
  std::remove(path);
}

TEST(Pipeline, EndToEndKmlBeatsVanillaOnReadRandom) {
  // Miniature Table 2 cell: a perfect classifier (oracle) plus the sweep's
  // readrandom optimum must beat the vanilla default on SATA.
  ExperimentConfig config = tiny_experiment();
  config.device = sim::sata_ssd_config();
  TunerConfig tuner_config;
  tuner_config.class_ra_kb = {1024, 16, 512, 32};
  const EvalOutcome outcome = evaluate_closed_loop(
      config, workloads::WorkloadType::kReadRandom,
      [](const FeatureVector&) {
        return static_cast<int>(workloads::WorkloadType::kReadRandom);
      },
      tuner_config, /*seconds=*/6);
  EXPECT_GT(outcome.vanilla_ops_per_sec, 0.0);
  EXPECT_GT(outcome.speedup, 1.3);
  EXPECT_FALSE(outcome.timeline.empty());
  EXPECT_EQ(outcome.dropped_records, 0u);
}

TEST(Pipeline, PerSecondSeriesCoverRun) {
  ExperimentConfig config = tiny_experiment();
  const EvalOutcome outcome = evaluate_closed_loop(
      config, workloads::WorkloadType::kReadRandom,
      [](const FeatureVector&) { return 1; }, TunerConfig{}, 4);
  EXPECT_GE(outcome.vanilla_per_second.size(), 3u);
  EXPECT_GE(outcome.kml_per_second.size(), 3u);
  for (double ops : outcome.kml_per_second) EXPECT_GT(ops, 0.0);
}

}  // namespace
}  // namespace kml::readahead
