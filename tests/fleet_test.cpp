// fleet_test.cpp — tiny-scale fleet serving: admission, coalescing,
// rate limiting, shedding, per-tenant adaptation, and the health guard's
// fleet-collapse signal. 64 tenants, deterministic seeds, fast enough for
// tier-1 (the 1k/10k-tenant runs live in bench_fleet).
#include "fleet/service.h"
#include "fleet/workload.h"
#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "observe/slo.h"
#include "observe/timeseries.h"
#include "portability/kml_lib.h"
#include "runtime/engine.h"
#include "runtime/health.h"
#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace kml;

constexpr std::uint64_t kSeed = 42;

runtime::Engine make_engine() {
  fleet::FleetWorkloadConfig wc;
  runtime::Engine engine(
      fleet::train_fleet_model(wc, kSeed, /*samples=*/512, /*epochs=*/20));
  engine.set_mode(runtime::Mode::kInference);
  return engine;
}

// Submit one well-formed window for `tenant` whose true class matches the
// workload's ground truth.
fleet::SubmitResult submit_window(fleet::FleetService& service,
                                  runtime::Engine& engine,
                                  std::uint64_t tenant, math::Rng& rng) {
  fleet::FleetWorkloadConfig wc;
  double f[fleet::kMaxFleetFeatures] = {};
  fleet::make_window(f, engine.num_features(),
                     fleet::true_class_of(tenant, engine.num_classes()),
                     wc.noise, rng);
  return service.submit(tenant, f, engine.num_features());
}

TEST(FleetService, ShardOfIsStableAndInRange) {
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.shards = 8;
  fleet::FleetService service(engine, fc);
  for (std::uint64_t t = 0; t < 1000; ++t) {
    const unsigned s = service.shard_of(t);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, service.shard_of(t));  // deterministic
  }
  // The fold spreads a dense id range: no shard owns everything.
  std::vector<int> per_shard(8, 0);
  for (std::uint64_t t = 0; t < 1000; ++t) ++per_shard[service.shard_of(t)];
  for (int c : per_shard) EXPECT_GT(c, 0);
}

TEST(FleetService, AdmitsCoalescesAndDecides) {
  observe::reset_all();
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.shards = 4;
  fc.max_batch = 16;
  fc.tenant_windows_per_tick = 8;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  for (std::uint64_t t = 0; t < 64; ++t) {
    EXPECT_EQ(submit_window(service, engine, t, rng),
              fleet::SubmitResult::kQueued);
  }
  EXPECT_EQ(service.active_tenants(), 64u);
  EXPECT_EQ(service.stats().admitted, 64u);

  const std::size_t decided = service.drain(kml_now_ns());
  EXPECT_EQ(decided, 64u);
  EXPECT_EQ(service.tenants_served(), 64u);
  EXPECT_EQ(service.backlog(), 0u);
  // 64 windows over 4 shards with max_batch 16: the drain must coalesce —
  // far fewer engine calls than windows.
  EXPECT_LE(service.stats().batches, 8u);
  // The shared model classifies the synthetic windows near-perfectly.
  int correct = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    if (service.last_class(t) ==
        fleet::true_class_of(t, engine.num_classes())) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 60);
  // No submit ever bypassed the pre-folded shard contract.
  EXPECT_EQ(service.folded_pushes(), 0u);
}

TEST(FleetService, Int8PathServesAndMatchesFloatDecisions) {
  runtime::Engine engine = make_engine();

  // Calibrate from workload windows — the batch a deployment would log.
  fleet::FleetWorkloadConfig wc;
  math::Rng crng(kSeed + 1);
  matrix::MatD calib(128, engine.num_features());
  for (int i = 0; i < 128; ++i) {
    double f[fleet::kMaxFleetFeatures] = {};
    fleet::make_window(f, engine.num_features(),
                       fleet::true_class_of(static_cast<std::uint64_t>(i),
                                            engine.num_classes()),
                       wc.noise, crng);
    for (int j = 0; j < engine.num_features(); ++j) calib.at(i, j) = f[j];
  }
  nn::QuantizedNetwork q;
  ASSERT_TRUE(
      nn::QuantizedNetwork::quantize_int8(engine.network(), calib, q));
  engine.attach_quantized(std::move(q));
  ASSERT_TRUE(engine.has_quantized());

  // Same windows through a float service and an int8 service (bias
  // adaptation off so the shared model alone decides).
  fleet::FleetConfig fc;
  fc.shards = 4;
  fc.max_batch = 16;
  fc.bias_lr = 0.0;
  fleet::FleetConfig fc8 = fc;
  fc8.use_int8 = true;
  fleet::FleetService fservice(engine, fc);
  fleet::FleetService qservice(engine, fc8);

  math::Rng rng(kSeed);
  for (std::uint64_t t = 0; t < 64; ++t) {
    double f[fleet::kMaxFleetFeatures] = {};
    fleet::make_window(f, engine.num_features(),
                       fleet::true_class_of(t, engine.num_classes()),
                       wc.noise, rng);
    EXPECT_EQ(fservice.submit(t, f, engine.num_features()),
              fleet::SubmitResult::kQueued);
    EXPECT_EQ(qservice.submit(t, f, engine.num_features()),
              fleet::SubmitResult::kQueued);
  }
  EXPECT_EQ(fservice.drain(kml_now_ns()), 64u);
  EXPECT_EQ(qservice.drain(kml_now_ns()), 64u);

  int agree = 0;
  int correct = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    if (qservice.last_class(t) == fservice.last_class(t)) ++agree;
    if (qservice.last_class(t) ==
        fleet::true_class_of(t, engine.num_classes())) {
      ++correct;
    }
  }
  // int8 quantization may flip a borderline window, not the fleet.
  EXPECT_GE(agree, 62);
  EXPECT_GE(correct, 60);
  EXPECT_GE(qservice.stats().batches, 1u);
  EXPECT_EQ(qservice.stats().infer_dropped, 0u);
}

TEST(FleetService, RateLimitsPerTenantAndRefillsOnTick) {
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.tenant_windows_per_tick = 4;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(submit_window(service, engine, 7, rng),
              fleet::SubmitResult::kQueued);
  }
  EXPECT_EQ(submit_window(service, engine, 7, rng),
            fleet::SubmitResult::kRateLimited);
  EXPECT_EQ(service.stats().rate_limited, 1u);
  // Another tenant still has its own bucket.
  EXPECT_EQ(submit_window(service, engine, 8, rng),
            fleet::SubmitResult::kQueued);

  service.drain(kml_now_ns());
  service.tick(kml_now_ns());
  EXPECT_EQ(submit_window(service, engine, 7, rng),
            fleet::SubmitResult::kQueued);
}

TEST(FleetService, AdmissionCapRejectsTenantBeyondMax) {
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.max_tenants = 8;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  for (std::uint64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(submit_window(service, engine, t, rng),
              fleet::SubmitResult::kQueued);
  }
  EXPECT_EQ(submit_window(service, engine, 99, rng),
            fleet::SubmitResult::kRejected);
  EXPECT_EQ(service.active_tenants(), 8u);
  EXPECT_GE(service.stats().rejected, 1u);
}

TEST(FleetService, OverloadShedsLowestTrafficTenantsFirst) {
  observe::reset_all();
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.shards = 4;
  fc.queue_capacity = 1 << 10;
  fc.tenant_windows_per_tick = 0;  // no rate limit: let the backlog build
  fc.overload_queue_depth = 32;
  fc.shed_batch = 16;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  // Skewed traffic: tenants 0-7 are hot (16 windows each), 8-63 cold (1).
  for (std::uint64_t t = 0; t < 8; ++t) {
    for (int i = 0; i < 16; ++i) submit_window(service, engine, t, rng);
  }
  for (std::uint64_t t = 8; t < 64; ++t) submit_window(service, engine, t, rng);
  service.drain(kml_now_ns());  // every tenant now has a traffic history

  // Rebuild a deep backlog and tick WITHOUT draining: overload control must
  // latch admissions closed and shed exactly shed_batch tenants, all from
  // the cold tail.
  for (std::uint64_t t = 0; t < 8; ++t) {
    for (int i = 0; i < 16; ++i) submit_window(service, engine, t, rng);
  }
  ASSERT_GT(service.backlog(), fc.overload_queue_depth);
  service.tick(kml_now_ns());
  EXPECT_FALSE(service.admissions_open());
  EXPECT_EQ(service.stats().shed, 16u);
  EXPECT_EQ(service.active_tenants(), 48u);
  for (std::uint64_t t = 0; t < 8; ++t) {
    EXPECT_NE(service.last_class(t), -1) << "hot tenant " << t << " shed";
  }
  // A shed tenant's submit is rejected while the latch holds (tenant 8 is
  // in the cold tail the shed targeted); a surviving tenant still queues.
  EXPECT_EQ(service.stats().rejected, 0u);
  EXPECT_EQ(submit_window(service, engine, 8, rng),
            fleet::SubmitResult::kRejected);
  EXPECT_EQ(submit_window(service, engine, 0, rng),
            fleet::SubmitResult::kQueued);

  // Draining the backlog reopens admissions on the next tick, and the shed
  // tenant re-admits itself.
  service.drain(kml_now_ns());
  service.tick(kml_now_ns());
  EXPECT_TRUE(service.admissions_open());
  EXPECT_EQ(submit_window(service, engine, 8, rng),
            fleet::SubmitResult::kQueued);
}

TEST(FleetService, TenantTableStaysBoundedUnderShedChurn) {
  // Regression: shed tenants used to stay in the table forever (inactive,
  // bias retained), so overload cycles with fresh tenant ids grew the map
  // without bound — contradicting the max_tenants contract. Now a new
  // admission into a full table evicts the lowest-traffic shed entry.
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.max_tenants = 16;
  fc.tenant_windows_per_tick = 0;  // no rate limit: let the backlog build
  fc.overload_queue_depth = 4;
  fc.shed_batch = 8;
  fc.queue_capacity = 1 << 10;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  std::uint64_t next_tenant = 0;
  for (int round = 0; round < 12; ++round) {
    // Fill the active cap with fresh ids; their queued windows already
    // exceed the overload threshold, so the tick sheds half the fleet.
    while (service.active_tenants() < fc.max_tenants) {
      submit_window(service, engine, next_tenant++, rng);
    }
    ASSERT_GT(service.backlog(), fc.overload_queue_depth);
    service.tick(kml_now_ns());
    EXPECT_EQ(service.active_tenants(), fc.max_tenants - fc.shed_batch);
    // Clear the backlog so the next tick reopens admissions.
    service.drain(kml_now_ns());
    service.tick(kml_now_ns());
    ASSERT_TRUE(service.admissions_open());
    EXPECT_LE(service.tenant_table_size(), fc.max_tenants);
  }
  // ~100 unique tenants churned through a 16-slot table: the bound held
  // only because shed entries were evicted to make room.
  EXPECT_GT(next_tenant, 3 * static_cast<std::uint64_t>(fc.max_tenants));
  EXPECT_LE(service.tenant_table_size(), fc.max_tenants);
  EXPECT_GT(service.stats().bias_evicted, 0u);
}

TEST(FleetService, PerTenantBiasFlipsADivergentTenant) {
  runtime::Engine engine = make_engine();
  fleet::FleetConfig fc;
  fc.bias_lr = 0.5;
  fc.bias_max = 8.0;
  fc.tenant_windows_per_tick = 0;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);
  fleet::FleetWorkloadConfig wc;

  // A divergent tenant: its windows look like class `shared` to the model,
  // but its observed outcome is a different class — only the per-tenant
  // output bias can close that gap without touching the shared weights.
  const std::uint64_t tenant = 3;
  const int shared = fleet::true_class_of(tenant, engine.num_classes());
  const int observed = (shared + 1) % engine.num_classes();

  int flipped_at = -1;
  for (int round = 0; round < 32; ++round) {
    double f[fleet::kMaxFleetFeatures] = {};
    fleet::make_window(f, engine.num_features(), shared, wc.noise, rng);
    ASSERT_EQ(service.submit(tenant, f, engine.num_features()),
              fleet::SubmitResult::kQueued);
    ASSERT_EQ(service.drain(kml_now_ns()), 1u);
    if (service.last_class(tenant) == observed) {
      flipped_at = round;
      break;
    }
    service.record_outcome(tenant, observed);
  }
  EXPECT_GE(flipped_at, 1) << "bias never flipped the decision";
  EXPECT_GT(service.stats().biased_flips, 0u);

  // Another tenant with the same feature pattern is untouched — the
  // adaptation is per-tenant, not global.
  double f[fleet::kMaxFleetFeatures] = {};
  fleet::make_window(f, engine.num_features(), shared, wc.noise, rng);
  ASSERT_EQ(service.submit(77, f, engine.num_features()),
            fleet::SubmitResult::kQueued);
  service.drain(kml_now_ns());
  EXPECT_EQ(service.last_class(77), shared);
}

TEST(FleetService, HealthFleetSignalTripsOnQueueCollapse) {
  observe::reset_all();
  runtime::Engine engine = make_engine();

  runtime::HealthConfig hc;
  hc.fleet_queue_depth_degrade = 16;
  runtime::HealthMonitor monitor(hc);

  fleet::FleetConfig fc;
  fc.tenant_windows_per_tick = 0;
  fc.overload_queue_depth = 1 << 20;  // service-side control out of the way
  fc.health = &monitor;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  // Decide some windows so "fleet.windows" advances (the signal is gated on
  // progress), then build a backlog deeper than the threshold and publish.
  for (std::uint64_t t = 0; t < 8; ++t) submit_window(service, engine, t, rng);
  service.drain(kml_now_ns());
  for (int i = 0; i < 64; ++i) submit_window(service, engine, 1, rng);
  service.tick(kml_now_ns());  // publishes fleet.queue_depth = 64

  monitor.observe_registry();  // primes baselines
  // Advance the windows counter, keep the backlog deep, poll again.
  for (std::uint64_t t = 0; t < 8; ++t) submit_window(service, engine, t, rng);
  service.drain(kml_now_ns());
  for (int i = 0; i < 64; ++i) submit_window(service, engine, 1, rng);
  service.tick(kml_now_ns());
  monitor.observe_registry();

  EXPECT_EQ(monitor.state(), runtime::HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().fleet_trips, 1u);

  // The service reacts to the verdict on its next tick: admissions close
  // and lowest-traffic tenants are shed.
  service.tick(kml_now_ns());
  EXPECT_FALSE(service.admissions_open());
  EXPECT_GT(service.stats().shed, 0u);
}

#if KML_OBSERVE_ENABLED

TEST(FleetService, SloBurnTripsHealthGuardWithFlightChain) {
  // End-to-end continuous-telemetry chain, deterministic: fleet stage
  // histograms -> time-series windows -> SLO burn evaluation -> health
  // signal (k) -> kSloBurn + health.transition in the flight dump.
  observe::reset_all();
  observe::timeseries_reset();
  observe::slo_reset();
  observe::flight_thaw();
  observe::flight_reset();
  observe::flight_set_enabled(true);
  constexpr std::uint64_t kSec = 1'000'000'000ull;

  runtime::Engine engine = make_engine();
  runtime::HealthConfig hc;
  hc.slo_burning_to_degrade = 1;
  hc.flight_dump_prefix = "fleet_slo_burn_flight";
  runtime::HealthMonitor monitor(hc);

  // Objective on the queue-wait stage: anything older than ~1 us is a bad
  // event. The spin below guarantees every window in this test waits far
  // longer, so each tick burns at 100% — both windows trip together.
  observe::SloObjective obj;
  obj.hist_name = observe::kMetricFleetStageQueueWaitNs;
  obj.threshold_ns = 1024;
  obj.objective_milli = 990;
  obj.fast_window_ticks = 1;
  obj.slow_window_ticks = 2;
  obj.fast_burn_trip_milli = 1000;
  obj.slow_burn_trip_milli = 1000;
  obj.min_window_records = 8;
  ASSERT_GE(observe::slo_register(obj), 0);

  fleet::FleetConfig fc;
  fc.health = &monitor;
  // Every window must land a queue-wait record (min_window_records = 8 out
  // of 16 per tick), so disable the 1-in-2^shift stage sampling.
  fc.stage_sample_shift = 0;
  fleet::FleetService service(engine, fc);
  math::Rng rng(kSeed);

  // One overloaded tick: submit, let the queue age past the threshold,
  // drain (records the stage histograms), then retain the tick. The sample
  // clock is virtual — only window membership matters here, not rates.
  const auto burn_tick = [&](std::uint64_t sample_ns) {
    for (std::uint64_t t = 0; t < 16; ++t) {
      ASSERT_EQ(submit_window(service, engine, t, rng),
                fleet::SubmitResult::kQueued);
    }
    const std::uint64_t start = kml_now_ns();
    while (kml_now_ns() - start < 4'000) {
    }
    ASSERT_EQ(service.drain(kml_now_ns()), 16u);
    observe::timeseries_sample(sample_ns);
  };

  burn_tick(1 * kSec);
  burn_tick(2 * kSec);
  monitor.observe_registry();  // primes baselines; never judges
  EXPECT_EQ(monitor.state(), runtime::HealthState::kHealthy);

  burn_tick(3 * kSec);  // sampler advanced: the next poll judges the burn
  monitor.observe_registry();

  EXPECT_EQ(monitor.state(), runtime::HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().slo_trips, 1u);

  // DEGRADED froze and dumped the flight ring; the causal chain — the burn
  // event, then the transition it caused — must be legible in the dump.
  std::ifstream txt("fleet_slo_burn_flight.txt");
  ASSERT_TRUE(txt.good());
  std::stringstream ss;
  ss << txt.rdbuf();
  const std::string dump = ss.str();
  EXPECT_NE(dump.find("slo.burn"), std::string::npos);
  EXPECT_NE(dump.find("health.transition"), std::string::npos);
  std::remove("fleet_slo_burn_flight.txt");
  std::remove("fleet_slo_burn_flight.bin");

  // Leave the recorder recording for whatever test runs next.
  observe::flight_thaw();
  observe::slo_reset();
  observe::timeseries_reset();
}

#endif  // KML_OBSERVE_ENABLED

TEST(FleetService, RejectsModelWiderThanWindowFormat) {
  math::Rng rng(kSeed);
  nn::Network wide = nn::build_mlp_classifier(
      fleet::kMaxFleetFeatures + 1, 4, 2, rng);
  runtime::Engine engine(std::move(wide));
  engine.set_mode(runtime::Mode::kInference);
  fleet::FleetConfig fc;
  fleet::FleetService service(engine, fc);
  double f[fleet::kMaxFleetFeatures + 1] = {};
  EXPECT_EQ(service.submit(1, f, fleet::kMaxFleetFeatures + 1),
            fleet::SubmitResult::kRejected);
  EXPECT_EQ(service.drain(kml_now_ns()), 0u);
}

}  // namespace
