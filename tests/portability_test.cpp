// Tests for the KML development API (src/portability): memory accounting,
// the reservation arena, threading, atomics, logging, file ops, FPU guards,
// and epoch-based reclamation.
#include "portability/bits.h"
#include "portability/epoch.h"
#include "portability/kml_lib.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace kml {
namespace {

class PortabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kml_lib_init();
    kml_mem_reset_stats();
  }
  void TearDown() override { kml_lib_shutdown(); }
};

TEST_F(PortabilityTest, MallocFreeAccountsBytes) {
  const std::uint64_t before = kml_mem_usage();
  void* p = kml_malloc(1000);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(kml_mem_usage(), before + 1000);
  kml_free(p);
  EXPECT_EQ(kml_mem_usage(), before);
}

TEST_F(PortabilityTest, MallocZeroReturnsNull) {
  EXPECT_EQ(kml_malloc(0), nullptr);
}

TEST_F(PortabilityTest, FreeNullIsNoop) {
  kml_free(nullptr);  // must not crash
}

TEST_F(PortabilityTest, MallocIs16ByteAligned) {
  for (std::size_t size : {1, 7, 16, 33, 1000}) {
    void* p = kml_malloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u) << size;
    kml_free(p);
  }
}

TEST_F(PortabilityTest, ZallocZeroFills) {
  auto* p = static_cast<unsigned char*>(kml_zalloc(256));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], 0) << i;
  kml_free(p);
}

TEST_F(PortabilityTest, CallocOverflowReturnsNull) {
  EXPECT_EQ(kml_calloc(SIZE_MAX / 2, 4), nullptr);
}

TEST_F(PortabilityTest, ReallocPreservesContents) {
  auto* p = static_cast<char*>(kml_malloc(8));
  ASSERT_NE(p, nullptr);
  std::memcpy(p, "kmltest", 8);
  auto* q = static_cast<char*>(kml_realloc(p, 64));
  ASSERT_NE(q, nullptr);
  EXPECT_STREQ(q, "kmltest");
  kml_free(q);
}

TEST_F(PortabilityTest, ReallocNullActsAsMalloc) {
  void* p = kml_realloc(nullptr, 32);
  ASSERT_NE(p, nullptr);
  kml_free(p);
}

TEST_F(PortabilityTest, ReallocToZeroFrees) {
  void* p = kml_malloc(32);
  const std::uint64_t live = kml_mem_usage();
  EXPECT_EQ(kml_realloc(p, 0), nullptr);
  EXPECT_EQ(kml_mem_usage(), live - 32);
}

TEST_F(PortabilityTest, PeakTracksHighWater) {
  kml_mem_reset_stats();
  void* a = kml_malloc(1 << 16);
  void* b = kml_malloc(1 << 16);
  kml_free(a);
  kml_free(b);
  EXPECT_GE(kml_mem_stats().peak_bytes, 2u << 16);
  EXPECT_EQ(kml_mem_stats().total_allocs, 2u);
  EXPECT_EQ(kml_mem_stats().total_frees, 2u);
}

TEST_F(PortabilityTest, ReservationArenaServesAllocations) {
  ASSERT_TRUE(kml_mem_reserve(1 << 16));
  const std::size_t before = kml_mem_reserved_remaining();
  void* p = kml_malloc(1024);
  ASSERT_NE(p, nullptr);
  EXPECT_LT(kml_mem_reserved_remaining(), before);
  kml_free(p);
  kml_mem_release();
  EXPECT_EQ(kml_mem_reserved_remaining(), 0u);
}

TEST_F(PortabilityTest, ArenaExhaustionFallsBackToHeap) {
  ASSERT_TRUE(kml_mem_reserve(4096));
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) {
    void* p = kml_malloc(1024);  // far exceeds the 4 KiB arena
    ASSERT_NE(p, nullptr);
    blocks.push_back(p);
  }
  for (void* p : blocks) kml_free(p);
  kml_mem_release();
}

TEST_F(PortabilityTest, ThreadRunsAndJoins) {
  std::atomic<int> counter{0};
  auto fn = +[](void* arg) {
    static_cast<std::atomic<int>*>(arg)->fetch_add(7);
  };
  KmlThread* t = kml_thread_create(fn, &counter, "test");
  ASSERT_NE(t, nullptr);
  kml_thread_join(t);
  EXPECT_EQ(counter.load(), 7);
}

TEST_F(PortabilityTest, ThreadCreateNullFnFails) {
  EXPECT_EQ(kml_thread_create(nullptr, nullptr, "bad"), nullptr);
}

TEST_F(PortabilityTest, NumCpusPositive) { EXPECT_GE(kml_num_cpus(), 1u); }

TEST_F(PortabilityTest, AtomicsBasicOps) {
  KmlAtomic64 a{};
  kml_atomic_store64(&a, 41);
  EXPECT_EQ(kml_atomic_load64(&a), 41);
  EXPECT_EQ(kml_atomic_add64(&a, 1), 42);
  EXPECT_TRUE(kml_atomic_cas64(&a, 42, 100));
  EXPECT_FALSE(kml_atomic_cas64(&a, 42, 200));
  EXPECT_EQ(kml_atomic_load64(&a), 100);
}

TEST_F(PortabilityTest, AtomicAddIsConcurrencySafe) {
  KmlAtomic64 a{};
  kml_atomic_store64(&a, 0);
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  struct Ctx {
    KmlAtomic64* a;
  } ctx{&a};
  auto fn = +[](void* arg) {
    auto* c = static_cast<Ctx*>(arg);
    for (int i = 0; i < kIters; ++i) kml_atomic_add64(c->a, 1);
  };
  std::vector<KmlThread*> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(kml_thread_create(fn, &ctx, "adder"));
  }
  for (KmlThread* t : threads) kml_thread_join(t);
  EXPECT_EQ(kml_atomic_load64(&a), kThreads * kIters);
}

// Log sink capture. The sink is a plain function pointer, so stash lines in
// a file-scope buffer.
std::vector<std::string>* g_captured = nullptr;

TEST_F(PortabilityTest, LogSinkReceivesFormattedLines) {
  std::vector<std::string> lines;
  g_captured = &lines;
  kml_set_log_sink(+[](LogLevel, const char* line) {
    g_captured->push_back(line);
  });
  kml_set_log_level(LogLevel::kInfo);
  KML_INFO("value=%d", 42);
  KML_DEBUG("hidden %d", 1);  // below level: dropped
  kml_set_log_sink(nullptr);
  g_captured = nullptr;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "value=42");
}

TEST_F(PortabilityTest, LogLevelRoundTrips) {
  kml_set_log_level(LogLevel::kWarn);
  EXPECT_EQ(kml_get_log_level(), LogLevel::kWarn);
  kml_set_log_level(LogLevel::kInfo);
}

TEST_F(PortabilityTest, FileWriteReadRoundTrip) {
  const char* path = "/tmp/kml_file_test.bin";
  KmlFile* w = kml_fopen(path, "w");
  ASSERT_NE(w, nullptr);
  const char payload[] = "0123456789";
  EXPECT_EQ(kml_fwrite(w, payload, sizeof(payload)),
            static_cast<std::int64_t>(sizeof(payload)));
  kml_fclose(w);

  EXPECT_EQ(kml_fsize(path), static_cast<std::int64_t>(sizeof(payload)));

  KmlFile* r = kml_fopen(path, "r");
  ASSERT_NE(r, nullptr);
  char buf[32] = {};
  EXPECT_EQ(kml_fread(r, buf, sizeof(buf)),
            static_cast<std::int64_t>(sizeof(payload)));
  EXPECT_STREQ(buf, payload);
  EXPECT_EQ(kml_fread(r, buf, sizeof(buf)), 0);  // EOF
  kml_fclose(r);
  std::remove(path);
}

TEST_F(PortabilityTest, FopenBadModeFails) {
  EXPECT_EQ(kml_fopen("/tmp/kml_x", "x"), nullptr);
  EXPECT_EQ(kml_fopen("/tmp/kml_x", "r+"), nullptr);
  EXPECT_EQ(kml_fopen(nullptr, "r"), nullptr);
}

TEST_F(PortabilityTest, FopenAppendModeAppends) {
  const char* path = "/tmp/kml_append_test.bin";
  std::remove(path);

  // "a" creates the file when missing...
  KmlFile* a = kml_fopen(path, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(kml_fwrite(a, "abc", 3), 3);
  EXPECT_TRUE(kml_fflush(a));
  kml_fclose(a);

  // ...and every later append lands at the end (the WAL shape).
  a = kml_fopen(path, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(kml_fwrite(a, "def", 3), 3);
  EXPECT_TRUE(kml_fflush(a));
  kml_fclose(a);

  EXPECT_EQ(kml_fsize(path), 6);
  KmlFile* r = kml_fopen(path, "r");
  ASSERT_NE(r, nullptr);
  char buf[8] = {};
  EXPECT_EQ(kml_fread(r, buf, sizeof(buf)), 6);
  EXPECT_STREQ(buf, "abcdef");
  kml_fclose(r);
  std::remove(path);
}

TEST_F(PortabilityTest, FsizeMissingFileIsMinusOne) {
  EXPECT_EQ(kml_fsize("/tmp/kml_does_not_exist_42"), -1);
}

TEST_F(PortabilityTest, FpuGuardsCountRegions) {
  kml_fpu_reset_stats();
  EXPECT_FALSE(kml_fpu_in_region());
  kml_fpu_begin();
  EXPECT_TRUE(kml_fpu_in_region());
  kml_fpu_begin();  // nested: same region
  kml_fpu_end();
  EXPECT_TRUE(kml_fpu_in_region());
  kml_fpu_end();
  EXPECT_FALSE(kml_fpu_in_region());
  EXPECT_EQ(kml_fpu_region_count(), 1u);
}

// --- Epoch-based reclamation -------------------------------------------------
//
// The global epoch domain outlives individual tests (thread slots are
// claimed for the process lifetime), so every assertion works in deltas.

std::atomic<int> g_epoch_freed{0};

void counting_delete(void* p) {
  delete static_cast<int*>(p);
  g_epoch_freed.fetch_add(1, std::memory_order_relaxed);
}

TEST_F(PortabilityTest, EpochReclaimFreesWhenNoReaderIsPinned) {
  const int before = g_epoch_freed.load();
  kml_epoch_retire(new int(1), &counting_delete);
  kml_epoch_retire(new int(2), &counting_delete);
  kml_epoch_drain();
  EXPECT_EQ(g_epoch_freed.load(), before + 2);
  EXPECT_EQ(kml_epoch_deferred(), 0u);
}

TEST_F(PortabilityTest, EpochEnterIsReentrant) {
  EXPECT_FALSE(kml_epoch_in_critical_section());
  kml_epoch_enter();
  kml_epoch_enter();
  EXPECT_TRUE(kml_epoch_in_critical_section());
  kml_epoch_exit();
  EXPECT_TRUE(kml_epoch_in_critical_section());  // outermost still holds
  kml_epoch_exit();
  EXPECT_FALSE(kml_epoch_in_critical_section());
}

TEST_F(PortabilityTest, EpochPinnedReaderDefersTheFree) {
  const int before = g_epoch_freed.load();
  kml_epoch_enter();
  kml_epoch_retire(new int(3), &counting_delete);
  kml_epoch_reclaim();
  // Retired under our own pin: reclaim must not free it yet.
  EXPECT_EQ(g_epoch_freed.load(), before);
  EXPECT_GE(kml_epoch_deferred(), 1u);
  kml_epoch_exit();
  kml_epoch_drain();
  EXPECT_EQ(g_epoch_freed.load(), before + 1);
}

struct PinHolder {
  std::atomic<int> phase{0};  // 0 starting, 1 pinned, 2 done
  std::uint64_t stalls_baseline = 0;
};

void pin_holder_main(void* arg) {
  auto* h = static_cast<PinHolder*>(arg);
  kml_epoch_enter();
  h->phase.store(1, std::memory_order_release);
  // Hold the pin until the main thread's drain logs a stalled pass; that
  // makes the stall path deterministic instead of a sleep-length race.
  while (kml_epoch_stalls() <= h->stalls_baseline) kml_thread_yield();
  kml_epoch_exit();
  h->phase.store(2, std::memory_order_release);
}

TEST_F(PortabilityTest, EpochDrainStallsOnPinnedReaderThenCompletes) {
  const int freed_before = g_epoch_freed.load();
  PinHolder holder;
  holder.stalls_baseline = kml_epoch_stalls();
  KmlThread* t = kml_thread_create(pin_holder_main, &holder, "epochpin");
  ASSERT_NE(t, nullptr);
  while (holder.phase.load(std::memory_order_acquire) < 1) {
    kml_thread_yield();
  }
  kml_epoch_retire(new int(4), &counting_delete);
  // Drain: first pass(es) free nothing (reader pinned) and count stalls;
  // the holder sees the stall, unpins, and the drain completes.
  kml_epoch_drain();
  kml_thread_join(t);
  EXPECT_GT(kml_epoch_stalls(), holder.stalls_baseline);
  EXPECT_EQ(kml_epoch_deferred(), 0u);
  EXPECT_EQ(g_epoch_freed.load(), freed_before + 1);
}

// The shared round-up (src/portability/bits.h): the naive doubling loop it
// replaced never terminated for v > 2^63 (the probe wraps to zero). Both
// former copies — CircularBuffer and the readahead window sizing — now
// route through this one guarded implementation.
TEST(Bits, RoundUpPow2SmallValues) {
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(0), 1u);
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(1), 1u);
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(2), 2u);
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(3), 4u);
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(64), 64u);
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(65), 128u);
  static_assert(kml_round_up_pow2<std::uint32_t>(5) == 8u);  // constexpr
}

TEST(Bits, RoundUpPow2ClampsInsteadOfSpinning) {
  constexpr std::uint64_t kTop64 = std::uint64_t{1} << 63;
  // Exact top power of two is representable and returned as-is.
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(kTop64), kTop64);
  // Anything above it has no representable round-up: clamp, don't wrap.
  // These inputs made the old loop spin forever.
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(kTop64 + 1), kTop64);
  EXPECT_EQ(kml_round_up_pow2<std::uint64_t>(UINT64_MAX), kTop64);

  constexpr std::uint32_t kTop32 = std::uint32_t{1} << 31;
  EXPECT_EQ(kml_round_up_pow2<std::uint32_t>(kTop32), kTop32);
  EXPECT_EQ(kml_round_up_pow2<std::uint32_t>(kTop32 + 1), kTop32);
  EXPECT_EQ(kml_round_up_pow2<std::uint32_t>(UINT32_MAX), kTop32);
}

}  // namespace
}  // namespace kml
