// kv_recover_test.cpp — crash consistency and concurrent-read safety for
// the durable MiniKV (DESIGN.md §12).
//
// Covers the checkpoint/recover round trip, WAL tail replay, the exact-ack
// contract across power cuts and injected durability faults at every
// FaultSite seam, torn-manifest rejection, the health guard's KV-recovery
// signal, and the epoch-protected lock-free read path under concurrent
// flush/compaction (the TSan target: build with -DKML_SANITIZE=thread and
// this binary must run clean).
#include "kv_crash_harness.h"

#include "kv/iterator.h"
#include "observe/metrics.h"
#include "portability/epoch.h"
#include "portability/file.h"
#include "portability/thread.h"
#include "runtime/health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace kml::kv {
namespace {

using testutil::crash_dir;
using testutil::crash_kv;
using testutil::crash_stack;
using testutil::drive_until_crash;
using testutil::verify_recovery;
using testutil::WriteJournal;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(kml_fsize(path.c_str())));
  KmlFile* f = kml_fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  std::int64_t got = 0;
  while (got < static_cast<std::int64_t>(bytes.size())) {
    const std::int64_t n = kml_fread(f, bytes.data() + got, bytes.size() - got);
    if (n <= 0) break;
    got += n;
  }
  kml_fclose(f);
  EXPECT_EQ(got, static_cast<std::int64_t>(bytes.size()));
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  KmlFile* f = kml_fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(kml_fwrite(f, bytes.data(), bytes.size()),
            static_cast<std::int64_t>(bytes.size()));
  kml_fclose(f);
}

TEST(Recover, FreshDurableStoreSeedsRecoverableDirectory) {
  const std::string dir = crash_dir("kv_seed");
  const KVConfig config = crash_kv(dir);
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    ASSERT_FALSE(db.failed());
    // The directory is recoverable the moment the constructor returns.
    EXPECT_GT(kml_fsize(manifest_path(dir).c_str()), 0);
    EXPECT_GE(kml_fsize(wal_path(dir, 0).c_str()), 0);
  }
  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->stats().recoveries, 1u);
  EXPECT_EQ(db->stats().wal_records_replayed, 0u);
  EXPECT_TRUE(db->get(0));  // base run rebuilt
}

TEST(Recover, CheckpointRecoverRoundTrip) {
  const std::string dir = crash_dir("kv_roundtrip");
  const KVConfig config = crash_kv(dir);
  const std::uint64_t base = config.num_keys;
  std::uint64_t last_seq = 0;
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    for (std::uint64_t k = 0; k < 50; ++k) db.put(base + 2 * k);
    ASSERT_TRUE(db.checkpoint());
    EXPECT_EQ(db.stats().checkpoints, 1u);
    // A checkpoint acknowledges everything it persisted.
    last_seq = db.last_seq();
    EXPECT_EQ(db.durable_seq(), last_seq);
  }
  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->stats().recoveries, 1u);
  // The checkpoint rotated onto an empty WAL: nothing to replay.
  EXPECT_EQ(db->stats().wal_records_replayed, 0u);
  EXPECT_GE(db->durable_seq(), last_seq);
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_TRUE(db->get(base + 2 * k)) << k;
  }
  EXPECT_TRUE(db->get(base / 2));         // base keys survive too
  EXPECT_FALSE(db->get(base + 1));        // never written
}

TEST(Recover, CleanShutdownCommitsAndReplaysWalTail) {
  const std::string dir = crash_dir("kv_tail");
  const KVConfig config = crash_kv(dir);
  const std::uint64_t base = config.num_keys;
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    // 10 puts: two full group commits plus a tail the destructor commits.
    for (std::uint64_t k = 0; k < 10; ++k) db.put(base + k);
  }
  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->stats().wal_replays, 1u);
  EXPECT_EQ(db->stats().wal_records_replayed, 10u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_TRUE(db->get(base + k)) << k;
}

TEST(Recover, SecondRecoveryNeedsNoReplay) {
  const std::string dir = crash_dir("kv_rerecover");
  const KVConfig config = crash_kv(dir);
  const std::uint64_t base = config.num_keys;
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    for (std::uint64_t k = 0; k < 10; ++k) db.put(base + k);
    db.crash();  // tail was acked at the 8th put; the last 2 die
  }
  {
    sim::StorageStack stack(crash_stack());
    auto db = MiniKV::recover(stack, config);
    ASSERT_NE(db, nullptr);
    EXPECT_EQ(db->stats().wal_records_replayed, 8u);
  }
  // Recovery ended on a flushed, rotated (empty) WAL: recovering the same
  // directory again replays nothing and loses nothing.
  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->stats().wal_records_replayed, 0u);
  for (std::uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(db->get(base + k)) << k;
}

TEST(Recover, PowerCutDropsExactlyTheUnackedTail) {
  const std::string dir = crash_dir("kv_powercut");
  const KVConfig config = crash_kv(dir);
  const std::uint64_t base = config.num_keys;
  WriteJournal journal;
  std::uint64_t durable = 0;
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    // Group commit fires at the 4th put; puts 5 and 6 stay buffered.
    for (std::uint64_t k = 1; k <= 6; ++k) journal.record_put(db, base + k);
    EXPECT_EQ(db.durable_seq(), 4u);
    EXPECT_EQ(db.last_seq(), 6u);
    db.crash();
    durable = db.durable_seq();
    EXPECT_EQ(durable, 4u);  // frozen at the last acknowledged commit
  }
  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);
  verify_recovery(*db, journal, durable, base);
  EXPECT_TRUE(db->get(base + 4));   // acked
  EXPECT_FALSE(db->get(base + 5));  // buffered, never acked
  EXPECT_FALSE(db->get(base + 6));
}

TEST(Recover, KillAndRecoverAtEachFaultSite) {
  const FaultSite kSites[] = {FaultSite::kWalAppend,
                              FaultSite::kCheckpointWrite,
                              FaultSite::kManifestRename,
                              FaultSite::kRunFlush};
  for (const FaultSite site : kSites) {
    SCOPED_TRACE(kml_fault_site_name(site));
    const std::string dir =
        crash_dir(std::string("kv_site_") + kml_fault_site_name(site));
    const KVConfig config = crash_kv(dir);
    WriteJournal journal;
    std::uint64_t durable = 0;
    {
      sim::StorageStack stack(crash_stack());
      MiniKV db(stack, config);
      ASSERT_FALSE(db.failed());
      // Arm after construction (the seeding manifest must succeed); let a
      // couple of hits through so the crash lands mid-history.
      kml_fault_arm_nth(site, 3);
      math::Rng rng(static_cast<std::uint64_t>(site) * 977 + 5);
      drive_until_crash(db, journal, rng, 600);
      kml_fault_disarm_all();
      ASSERT_TRUE(db.failed()) << "fault never hit within the op budget";
      EXPECT_GE(kml_fault_injected(site), 1u);
      durable = db.durable_seq();
    }
    sim::StorageStack stack(crash_stack());
    auto db = MiniKV::recover(stack, config);
    ASSERT_NE(db, nullptr);
    verify_recovery(*db, journal, durable, config.num_keys);
  }
}

TEST(Recover, TornManifestIsRejectedNeverHalfLoaded) {
  const std::string dir = crash_dir("kv_torn");
  const KVConfig config = crash_kv(dir);
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    for (std::uint64_t k = 0; k < 30; ++k) db.put(config.num_keys + k);
    ASSERT_TRUE(db.checkpoint());
  }
  const std::uint64_t torn_before =
      observe::get_counter(observe::kMetricKvTornManifests).value();
  const std::vector<std::uint8_t> good = read_file(manifest_path(dir));
  ASSERT_GT(good.size(), 8u);

  // Bit rot: one flipped byte mid-image must fail the CRC footer.
  std::vector<std::uint8_t> flipped = good;
  flipped[flipped.size() / 2] ^= 0xff;
  write_file(manifest_path(dir), flipped);
  {
    sim::StorageStack stack(crash_stack());
    EXPECT_EQ(MiniKV::recover(stack, config), nullptr);
  }

  // Torn write: a half-length image must be rejected the same way.
  std::vector<std::uint8_t> torn(good.begin(),
                                 good.begin() + good.size() / 2);
  write_file(manifest_path(dir), torn);
  {
    sim::StorageStack stack(crash_stack());
    EXPECT_EQ(MiniKV::recover(stack, config), nullptr);
  }
  EXPECT_EQ(observe::get_counter(observe::kMetricKvTornManifests).value(),
            torn_before + 2);

  // Restoring the original image restores recoverability: the rejection
  // was the reader refusing bad bytes, not state loss.
  write_file(manifest_path(dir), good);
  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->get(config.num_keys + 29));
}

TEST(Recover, MissingManifestReturnsNull) {
  const std::string dir = crash_dir("kv_missing");
  sim::StorageStack stack(crash_stack());
  EXPECT_EQ(MiniKV::recover(stack, crash_kv(dir)), nullptr);
}

TEST(Recover, RecoveryTripsHealthGuardOntoProbation) {
  const std::string dir = crash_dir("kv_health");
  const KVConfig config = crash_kv(dir);
  {
    sim::StorageStack stack(crash_stack());
    MiniKV db(stack, config);
    db.put(config.num_keys + 7);
    ASSERT_TRUE(db.checkpoint());
  }
  runtime::HealthMonitor monitor;  // kv_recoveries_to_degrade defaults to 1
  monitor.observe_registry();      // prime baselines
  ASSERT_TRUE(monitor.healthy());

  sim::StorageStack stack(crash_stack());
  auto db = MiniKV::recover(stack, config);
  ASSERT_NE(db, nullptr);

  monitor.observe_registry();
  EXPECT_EQ(monitor.state(), runtime::HealthState::kDegraded);
  EXPECT_EQ(monitor.stats().kv_recovery_trips, 1u);
}

// --- Epoch-protected concurrent reads ---------------------------------------

TEST(ConcurrentReads, SingleThreadSanity) {
  sim::StorageStack stack(crash_stack());
  // In-memory store: the epoch-protected read path is identical, without
  // file I/O muddying the TSan runs.
  const KVConfig config = crash_kv("", /*base_keys=*/64);
  MiniKV db(stack, config);
  const std::uint64_t base = config.num_keys;

  db.put(base + 5);
  EXPECT_TRUE(db.get_concurrent(base + 5));   // memtable hit
  EXPECT_TRUE(db.get_concurrent(base / 2));   // base-run hit
  EXPECT_FALSE(db.get_concurrent(base + 6));  // absent
  ASSERT_TRUE(db.checkpoint());               // flush to an overlay
  EXPECT_TRUE(db.get_concurrent(base + 5));   // overlay hit
  EXPECT_EQ(db.concurrent_gets(), 4u);
  EXPECT_EQ(db.concurrent_hits(), 3u);
  // The virtual-time plane never saw these lookups.
  EXPECT_EQ(db.stats().gets, 0u);
}

struct ConcurrentReader {
  MiniKV* db = nullptr;
  std::atomic<bool>* stop = nullptr;
  std::uint64_t base_keys = 0;
  std::uint64_t probes = 0;
  std::uint64_t misses = 0;
};

void reader_main(void* arg) {
  auto* r = static_cast<ConcurrentReader*>(arg);
  std::uint64_t key = 0;
  while (!r->stop->load(std::memory_order_acquire)) {
    // Base keys are present in every published LiveState, so any miss is a
    // reclamation or publication bug.
    if (!r->db->get_concurrent(key)) ++r->misses;
    ++r->probes;
    key = (key + 1) % r->base_keys;
  }
}

TEST(ConcurrentReads, EpochProtectsReadersAcrossFlushAndCompaction) {
  sim::StorageStack stack(crash_stack());
  const KVConfig config = crash_kv("", /*base_keys=*/256);
  MiniKV db(stack, config);

  const std::uint64_t retired_before = kml_epoch_retired_total();
  std::atomic<bool> stop{false};
  constexpr int kReaders = 3;
  ConcurrentReader args[kReaders];
  KmlThread* threads[kReaders];
  for (int i = 0; i < kReaders; ++i) {
    args[i].db = &db;
    args[i].stop = &stop;
    args[i].base_keys = config.num_keys;
    threads[i] = kml_thread_create(reader_main, &args[i], "kvreader");
    ASSERT_NE(threads[i], nullptr);
  }

  // Owner thread: enough writes to cross many flushes and compactions,
  // each of which publishes a new LiveState and retires the old one under
  // the readers' feet.
  for (std::uint64_t k = 0; k < 3000; ++k) {
    db.put(config.num_keys + (k % (3 * config.num_keys)));
  }
  EXPECT_GT(db.stats().flushes, 10u);
  EXPECT_GT(db.stats().compactions, 0u);

  stop.store(true, std::memory_order_release);
  for (int i = 0; i < kReaders; ++i) kml_thread_join(threads[i]);

  std::uint64_t probes = 0;
  for (const ConcurrentReader& r : args) {
    EXPECT_GT(r.probes, 0u);
    EXPECT_EQ(r.misses, 0u) << "a pinned reader saw a reclaimed state";
    probes += r.probes;
  }
  EXPECT_EQ(db.concurrent_gets(), probes);
  EXPECT_EQ(db.concurrent_hits(), probes);

  // Every publish routed the old LiveState through the epoch domain.
  EXPECT_GT(db.stats().epoch_deferred_frees, 10u);
  EXPECT_GT(kml_epoch_retired_total(), retired_before);

  // With the readers gone, the domain drains to empty.
  kml_epoch_drain();
  EXPECT_EQ(kml_epoch_deferred(), 0u);
}

}  // namespace
}  // namespace kml::kv
