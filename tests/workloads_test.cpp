// Tests for src/workloads: key generators, the six drivers, determinism,
// duration/op-count limits, and the tick callback contract.
#include "workloads/drivers.h"
#include "workloads/generator.h"
#include "workloads/mixgraph.h"

#include <gtest/gtest.h>

namespace kml::workloads {
namespace {

sim::StackConfig tiny_stack() {
  sim::StackConfig config;
  config.device = sim::nvme_config();
  config.cache_pages = 4096;
  return config;
}

kv::KVConfig tiny_kv() {
  kv::KVConfig config;
  config.num_keys = 20000;
  config.geom.entry_bytes = 128;
  config.geom.block_pages = 4;
  return config;
}

TEST(Names, AllWorkloadsNamed) {
  EXPECT_STREQ(workload_name(WorkloadType::kReadSeq), "readseq");
  EXPECT_STREQ(workload_name(WorkloadType::kReadRandom), "readrandom");
  EXPECT_STREQ(workload_name(WorkloadType::kReadReverse), "readreverse");
  EXPECT_STREQ(workload_name(WorkloadType::kReadRandomWriteRandom),
               "readrandomwriterandom");
  EXPECT_STREQ(workload_name(WorkloadType::kUpdateRandom), "updaterandom");
  EXPECT_STREQ(workload_name(WorkloadType::kMixGraph), "mixgraph");
  EXPECT_STREQ(workload_name(WorkloadType::kSeekRandom), "seekrandom");
  EXPECT_STREQ(workload_name(WorkloadType::kReadWhileWriting),
               "readwhilewriting");
  EXPECT_STREQ(workload_name(WorkloadType::kMlIngest), "mlingest");
}

TEST(Generators, UniformKeysWithinBounds) {
  UniformKeys gen(1000, 3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.next(), 1000u);
}

TEST(Generators, ZipfKeysWithinBoundsAndSkewed) {
  ZipfKeys gen(10000, 0.99, 5);
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k = gen.next();
    ASSERT_LT(k, 10000u);
    ++counts[static_cast<std::size_t>(k)];
  }
  // A handful of keys should dominate: the max count far exceeds uniform.
  int mx = 0;
  for (int c : counts) mx = std::max(mx, c);
  EXPECT_GT(mx, 50);  // uniform expectation is 5
}

TEST(MixGraph, OpMixApproximatesConfiguredPercentages) {
  MixGraphGenerator gen(10000, 0.9, 80, 15, 20, 7);
  int gets = 0;
  int puts = 0;
  int scans = 0;
  for (int i = 0; i < 20000; ++i) {
    switch (gen.next().op) {
      case MixOp::kGet: ++gets; break;
      case MixOp::kPut: ++puts; break;
      case MixOp::kScan: ++scans; break;
    }
  }
  EXPECT_NEAR(gets / 20000.0, 0.80, 0.02);
  EXPECT_NEAR(puts / 20000.0, 0.15, 0.02);
  EXPECT_NEAR(scans / 20000.0, 0.05, 0.02);
}

TEST(MixGraph, ScanLengthsAreBoundedAndPositive) {
  MixGraphGenerator gen(1000, 0.9, 0, 0, 25, 11);  // all scans
  for (int i = 0; i < 1000; ++i) {
    const MixAction a = gen.next();
    ASSERT_EQ(a.op, MixOp::kScan);
    EXPECT_GE(a.scan_length, 1u);
    EXPECT_LE(a.scan_length, 50u);
  }
}

class DriverTest : public ::testing::TestWithParam<WorkloadType> {};

TEST_P(DriverTest, RunsAndMakesProgress) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = GetParam();
  const RunResult r =
      run_workload(db, wc, 200 * 1000 * 1000 /* 200 ms */, UINT64_MAX);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.ops_per_sec, 0.0);
  EXPECT_GE(r.duration_ns, 200u * 1000 * 1000);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DriverTest,
    ::testing::Values(WorkloadType::kReadSeq, WorkloadType::kReadRandom,
                      WorkloadType::kReadReverse,
                      WorkloadType::kReadRandomWriteRandom,
                      WorkloadType::kUpdateRandom, WorkloadType::kMixGraph,
                      WorkloadType::kSeekRandom,
                      WorkloadType::kReadWhileWriting,
                      WorkloadType::kMlIngest),
    [](const ::testing::TestParamInfo<WorkloadType>& info) {
      return std::string(workload_name(info.param));
    });

TEST(Drivers, MaxOpsCapIsRespected) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kReadRandom;
  const RunResult r = run_workload(db, wc, UINT64_MAX / 2, 100);
  EXPECT_EQ(r.ops, 100u);
}

TEST(Drivers, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::StorageStack stack(tiny_stack());
    kv::MiniKV db(stack, tiny_kv());
    WorkloadConfig wc;
    wc.type = WorkloadType::kMixGraph;
    wc.seed = 99;
    return run_workload(db, wc, 300 * 1000 * 1000, UINT64_MAX);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.duration_ns, b.duration_ns);
}

TEST(Drivers, DifferentSeedsVisitDifferentKeys) {
  // The seed flows into the key generator: the two runs must touch
  // different key sequences (observable through the generator directly).
  UniformKeys a(1 << 20, 1);
  UniformKeys b(1 << 20, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Drivers, TickFiresPerOpWithMonotoneTime) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kReadRandom;
  std::uint64_t ticks = 0;
  std::uint64_t last = 0;
  const RunResult r = run_workload(db, wc, UINT64_MAX / 2, 50,
                                   [&](std::uint64_t now) {
                                     EXPECT_GE(now, last);
                                     last = now;
                                     ++ticks;
                                   });
  EXPECT_EQ(ticks, r.ops);
}

TEST(Drivers, UpdateRandomIssuesReadsAndWrites) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kUpdateRandom;
  run_workload(db, wc, UINT64_MAX / 2, 200);
  EXPECT_EQ(db.stats().gets, 200u);
  EXPECT_EQ(db.stats().puts, 200u);
}

TEST(Drivers, ReadWriteMixMatchesReadPercent) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kReadRandomWriteRandom;
  wc.read_percent = 70;
  run_workload(db, wc, UINT64_MAX / 2, 5000);
  const double read_frac =
      static_cast<double>(db.stats().gets) /
      static_cast<double>(db.stats().gets + db.stats().puts);
  EXPECT_NEAR(read_frac, 0.70, 0.03);
}

TEST(Drivers, SeekRandomReadsSeekNextsEntries) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kSeekRandom;
  wc.seek_nexts = 8;
  run_workload(db, wc, UINT64_MAX / 2, 50);
  // Each op advances the iterator seek_nexts times.
  EXPECT_EQ(db.stats().iter_steps, 50u * 8u);
}

TEST(Drivers, ReadWhileWritingMixesWritesAtConfiguredRate) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kReadWhileWriting;
  wc.writes_per_16_reads = 4;
  run_workload(db, wc, UINT64_MAX / 2, 1600);
  EXPECT_EQ(db.stats().puts, 400u);
  EXPECT_EQ(db.stats().gets, 1200u);
}

TEST(Drivers, MlIngestMixesScansReadsAndWritesAtFixedRatio) {
  sim::StorageStack stack(tiny_stack());
  kv::MiniKV db(stack, tiny_kv());
  WorkloadConfig wc;
  wc.type = WorkloadType::kMlIngest;
  run_workload(db, wc, UINT64_MAX / 2, 1600);
  // 16-op cycle: 10 shard-scan steps, 5 shuffled reads, 1 write.
  EXPECT_EQ(db.stats().puts, 100u);
  EXPECT_EQ(db.stats().gets, 500u);
  EXPECT_EQ(db.stats().iter_steps, 1000u);
}

TEST(Drivers, MlIngestIsDeterministic) {
  auto run_once = [] {
    sim::StorageStack stack(tiny_stack());
    kv::MiniKV db(stack, tiny_kv());
    WorkloadConfig wc;
    wc.type = WorkloadType::kMlIngest;
    wc.seed = 1234;
    return run_workload(db, wc, 300 * 1000 * 1000, UINT64_MAX);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.duration_ns, b.duration_ns);
}

TEST(Drivers, ReadSeqWrapsAroundAtEof) {
  sim::StorageStack stack(tiny_stack());
  kv::KVConfig config = tiny_kv();
  config.num_keys = 100;  // tiny database: must wrap many times
  kv::MiniKV db(stack, config);
  WorkloadConfig wc;
  wc.type = WorkloadType::kReadSeq;
  const RunResult r = run_workload(db, wc, UINT64_MAX / 2, 550);
  EXPECT_EQ(r.ops, 550u);  // > 5 full passes without getting stuck
}

}  // namespace
}  // namespace kml::workloads
