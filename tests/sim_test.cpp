// Tests for src/sim: virtual clock, device cost model, page cache (LRU,
// hits/misses, eviction), the ondemand readahead engine (window sizing,
// ramp-up, marker re-arming, random fallback), tracepoints, and the block
// layer actuation surface.
#include "math/rng.h"
#include "sim/stack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace kml::sim {
namespace {

StackConfig small_stack(std::uint64_t cache_pages = 1024) {
  StackConfig config;
  config.device = nvme_config();
  config.cache_pages = cache_pages;
  return config;
}

TEST(Clock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance(500);
  clock.advance(1500);
  EXPECT_EQ(clock.now_ns(), 2000u);
  EXPECT_DOUBLE_EQ(clock.now_sec(), 2e-6);
  clock.reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(DeviceModel, ReadCostIsOverheadPlusTransfer) {
  SimClock clock;
  Device dev(nvme_config(), clock);
  const DeviceConfig& c = dev.config();
  const std::uint64_t cost = dev.read(1, 0, 4);
  EXPECT_EQ(cost, c.random_cmd_ns + 4 * c.page_transfer_ns);
  EXPECT_EQ(clock.now_ns(), cost);
}

TEST(DeviceModel, SequentialContinuationIsCheap) {
  SimClock clock;
  Device dev(nvme_config(), clock);
  const DeviceConfig& c = dev.config();
  dev.read(1, 0, 4);
  const std::uint64_t cost = dev.read(1, 4, 4);  // continues at page 4
  EXPECT_EQ(cost, c.seq_cmd_ns + 4 * c.page_transfer_ns);
  EXPECT_EQ(dev.stats().seq_continuations, 1u);
}

TEST(DeviceModel, StreamBreaksOnGapOrOtherFile) {
  SimClock clock;
  Device dev(nvme_config(), clock);
  const DeviceConfig& c = dev.config();
  dev.read(1, 0, 4);
  EXPECT_EQ(dev.read(1, 8, 1), c.random_cmd_ns + c.page_transfer_ns);
  dev.read(1, 9, 1);  // continuation again
  EXPECT_EQ(dev.read(2, 10, 1), c.random_cmd_ns + c.page_transfer_ns);
}

TEST(DeviceModel, WriteBreaksReadStream) {
  SimClock clock;
  Device dev(nvme_config(), clock);
  dev.read(1, 0, 4);
  dev.write(1, 100, 8);
  const DeviceConfig& c = dev.config();
  EXPECT_EQ(dev.read(1, 4, 1), c.random_cmd_ns + c.page_transfer_ns);
}

TEST(DeviceModel, SataIsSlowerThanNvme) {
  const DeviceConfig nvme = nvme_config();
  const DeviceConfig sata = sata_ssd_config();
  EXPECT_GT(sata.random_cmd_ns, nvme.random_cmd_ns);
  EXPECT_GT(sata.page_transfer_ns, nvme.page_transfer_ns);
}

TEST(FileTableTest, CreateAssignsUniqueInodesAndDefaultRa) {
  FileTable files(128);
  FileHandle& a = files.create(100);
  FileHandle& b = files.create(200);
  const std::uint64_t a_inode = a.inode;  // a dangles once removed below
  EXPECT_NE(a.inode, b.inode);
  EXPECT_EQ(a.ra_pages, 32u);  // 128 KB / 4 KB
  EXPECT_TRUE(files.exists(a_inode));
  files.remove(a_inode);
  EXPECT_FALSE(files.exists(a_inode));
}

TEST(FileTableTest, KbPageConversions) {
  EXPECT_EQ(FileTable::kb_to_pages(128), 32u);
  EXPECT_EQ(FileTable::kb_to_pages(8), 2u);
  EXPECT_EQ(FileTable::pages_to_kb(256), 1024u);
}

TEST(PageCacheTest, MissThenHit) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(1000);
  stack.cache().read(f, 0, 1);
  EXPECT_EQ(stack.cache().stats().misses, 1u);
  const std::uint64_t t = stack.clock().now_ns();
  stack.cache().read(f, 0, 1);
  EXPECT_EQ(stack.cache().stats().hits, 1u);
  EXPECT_EQ(stack.clock().now_ns(), t);  // hits are free of device time
}

TEST(PageCacheTest, LruEvictionUnderPressure) {
  StorageStack stack(small_stack(/*cache_pages=*/4));
  FileHandle& f = stack.files().create(1000);
  f.ra_pages = 0;  // isolate the cache from readahead
  for (std::uint64_t p = 0; p < 16; p += 2) stack.cache().read(f, p, 1);
  EXPECT_LE(stack.cache().resident_pages(), 4u);
  EXPECT_FALSE(stack.cache().cached(f.inode, 0));  // oldest evicted
  EXPECT_TRUE(stack.cache().cached(f.inode, 14));  // newest resident
  EXPECT_GT(stack.cache().stats().evicted, 0u);
}

TEST(PageCacheTest, TouchKeepsHotPagesResident) {
  StorageStack stack(small_stack(/*cache_pages=*/4));
  FileHandle& f = stack.files().create(1000);
  f.ra_pages = 0;
  stack.cache().read(f, 0, 1);
  for (std::uint64_t p = 2; p < 12; p += 2) {
    stack.cache().read(f, 0, 1);  // keep page 0 hot
    stack.cache().read(f, p, 1);
  }
  EXPECT_TRUE(stack.cache().cached(f.inode, 0));
}

TEST(PageCacheTest, WriteDirtiesAndFiresWriteback) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(1000);
  std::uint64_t writebacks = 0;
  stack.tracepoints().register_hook([&](const TraceEvent& ev) {
    if (ev.type == TraceEventType::kWritebackDirtyPage) ++writebacks;
  });
  stack.cache().write(f, 10, 3);
  EXPECT_EQ(writebacks, 3u);
  EXPECT_TRUE(stack.cache().cached(f.inode, 11));
}

TEST(PageCacheTest, SyncFileBatchesContiguousDirtyRuns) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(1000);
  stack.cache().write(f, 10, 4);   // one run
  stack.cache().write(f, 100, 2);  // second run
  EXPECT_EQ(stack.cache().dirty_pages(), 6u);
  const std::uint64_t cmds_before = stack.device().stats().write_commands;
  EXPECT_EQ(stack.cache().sync_file(f.inode), 6u);
  EXPECT_EQ(stack.device().stats().write_commands, cmds_before + 2);
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
  EXPECT_EQ(stack.cache().sync_file(f.inode), 0u);  // idempotent
}

TEST(PageCacheTest, SyncFileOnlyTouchesTargetInode) {
  StorageStack stack(small_stack());
  FileHandle& a = stack.files().create(100);
  FileHandle& b = stack.files().create(100);
  stack.cache().write(a, 0, 2);
  stack.cache().write(b, 0, 3);
  EXPECT_EQ(stack.cache().sync_file(a.inode), 2u);
  EXPECT_EQ(stack.cache().dirty_pages(), 3u);  // b's pages still dirty
}

TEST(PageCacheTest, DirtyEvictionChargesReclaimWriteback) {
  StorageStack stack(small_stack(/*cache_pages=*/4));
  FileHandle& f = stack.files().create(1000);
  f.ra_pages = 0;
  stack.cache().write(f, 0, 4);  // fill cache with dirty pages
  const std::uint64_t writes_before = stack.device().stats().pages_written;
  for (std::uint64_t p = 100; p < 104; ++p) stack.cache().read(f, p, 1);
  EXPECT_EQ(stack.device().stats().pages_written, writes_before + 4);
  EXPECT_GE(stack.cache().stats().dirty_evictions, 4u);
  EXPECT_EQ(stack.cache().dirty_pages(), 0u);
}

TEST(PageCacheTest, RewritingDirtyPageCountsOnce) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(100);
  stack.cache().write(f, 5, 1);
  stack.cache().write(f, 5, 1);
  EXPECT_EQ(stack.cache().dirty_pages(), 1u);
}

TEST(PageCacheTest, DropAllEmptiesCache) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(1000);
  stack.cache().read(f, 0, 8);
  EXPECT_GT(stack.cache().resident_pages(), 0u);
  stack.cache().drop_all();
  EXPECT_EQ(stack.cache().resident_pages(), 0u);
}

TEST(PageCacheTest, ReadPastEofIsClipped) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(10);
  stack.cache().read(f, 8, 10);  // only pages 8, 9 exist
  EXPECT_FALSE(stack.cache().cached(f.inode, 10));
  EXPECT_TRUE(stack.cache().cached(f.inode, 9));
}

TEST(Tracepoints, AddToPageCacheFiresPerInsertedPage) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(1000);
  f.ra_pages = 0;
  std::vector<std::uint64_t> offsets;
  stack.tracepoints().register_hook([&](const TraceEvent& ev) {
    if (ev.type == TraceEventType::kAddToPageCache) {
      offsets.push_back(ev.pgoff);
    }
  });
  stack.cache().read(f, 5, 1);
  stack.cache().read(f, 5, 1);  // hit: no insert
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0], 5u);
}

TEST(Tracepoints, UnregisterStopsDelivery) {
  TracepointRegistry reg;
  int count = 0;
  const int h = reg.register_hook([&](const TraceEvent&) { ++count; });
  reg.emit(TraceEventType::kAddToPageCache, 1, 2, 3);
  reg.unregister(h);
  reg.emit(TraceEventType::kAddToPageCache, 1, 2, 3);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(reg.emitted(), 2u);
  EXPECT_EQ(reg.hook_count(), 0);
}

TEST(Tracepoints, SlotReuseAfterUnregister) {
  TracepointRegistry reg;
  const int a = reg.register_hook([](const TraceEvent&) {});
  reg.unregister(a);
  const int b = reg.register_hook([](const TraceEvent&) {});
  EXPECT_EQ(a, b);
}

// --- ondemand readahead -------------------------------------------------------

TEST(Readahead, WindowSizingMatchesKernelFormulas) {
  // get_init_ra_size
  EXPECT_EQ(ReadaheadEngine::init_window(1, 32), 4u);    // <= max/32 -> 4x
  EXPECT_EQ(ReadaheadEngine::init_window(2, 32), 4u);    // <= max/4 -> 2x
  EXPECT_EQ(ReadaheadEngine::init_window(16, 32), 32u);  // else -> max
  EXPECT_EQ(ReadaheadEngine::init_window(1, 2), 2u);
  // get_next_ra_size
  EXPECT_EQ(ReadaheadEngine::next_window(1, 32), 4u);   // < max/16 -> 4x
  EXPECT_EQ(ReadaheadEngine::next_window(4, 32), 8u);   // else -> 2x
  EXPECT_EQ(ReadaheadEngine::next_window(32, 32), 32u); // capped
}

TEST(Readahead, SequentialStreamRampsAndPipelines) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(10000);
  f.ra_pages = 32;
  // Consume 256 pages sequentially.
  for (std::uint64_t p = 0; p < 256; ++p) stack.cache().read(f, p, 1);
  const PageCacheStats& cs = stack.cache().stats();
  // After ramp-up nearly everything is prefetched ahead of the reader:
  // misses stay a small fraction.
  EXPECT_LT(cs.misses, 8u);
  EXPECT_GT(cs.hits, 240u);
  EXPECT_GT(stack.cache().readahead().stats().async_windows, 3u);
  // Few large device commands, not 256 small ones.
  EXPECT_LT(stack.device().stats().read_commands, 32u);
}

TEST(Readahead, RandomAccessReadsSinglePages) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(100000);
  f.ra_pages = 32;
  // Far-apart single-page reads: no window should open.
  for (std::uint64_t p = 1000; p <= 91000; p += 10000) {
    stack.cache().read(f, p, 1);
  }
  EXPECT_EQ(stack.device().stats().pages_read,
            stack.cache().stats().misses);
  EXPECT_EQ(stack.cache().readahead().stats().sync_windows, 0u);
  EXPECT_GT(stack.cache().readahead().stats().random_reads, 0u);
}

TEST(Readahead, DisabledReadsExactlyDemandedPages) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(10000);
  f.ra_pages = 0;
  for (std::uint64_t p = 0; p < 64; ++p) stack.cache().read(f, p, 1);
  EXPECT_EQ(stack.device().stats().pages_read, 64u);
  EXPECT_EQ(stack.device().stats().read_commands, 64u);
}

TEST(Readahead, WindowIsCappedByRaPages) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(100000);
  f.ra_pages = 4;
  for (std::uint64_t p = 0; p < 256; ++p) stack.cache().read(f, p, 1);
  // No device command may exceed the 4-page cap (plus the 1-page demand
  // read at the start).
  EXPECT_GE(stack.device().stats().read_commands,
            256u / 4u);  // at least a command per window
  // Bounded overrun: the pipeline may run at most ~2 windows ahead.
  EXPECT_LE(stack.device().stats().pages_read, 256u + 8u);
  EXPECT_GE(stack.device().stats().pages_read, 256u);
}

TEST(Readahead, PrefetchSkipsCachedPages) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(10000);
  f.ra_pages = 0;
  // Pre-populate pages 4..7 without readahead.
  for (std::uint64_t p = 4; p < 8; ++p) stack.cache().read(f, p, 1);
  stack.device().reset_stats();
  f.ra_pages = 32;
  f.ra.prev_pos = UINT64_MAX;
  // Sequential stream from 0: windows overlapping 4..7 must not re-read.
  for (std::uint64_t p = 0; p < 16; ++p) stack.cache().read(f, p, 1);
  EXPECT_EQ(stack.device().stats().pages_read,
            stack.cache().stats().inserted - 4u);
}

TEST(Readahead, WastedPrefetchIsAccounted) {
  StorageStack stack(small_stack(/*cache_pages=*/64));
  FileHandle& f = stack.files().create(100000);
  f.ra_pages = 32;
  // Short sequential bursts at random far-apart starts: windows open and
  // over-read; the cache then cycles, evicting speculative pages unused.
  kml::math::Rng rng(3);
  for (int burst = 0; burst < 64; ++burst) {
    const std::uint64_t base = rng.next_below(90000);
    for (std::uint64_t i = 0; i < 4; ++i) stack.cache().read(f, base + i, 1);
  }
  EXPECT_GT(stack.cache().stats().prefetch_wasted, 0u);
}

TEST(BlockLayerTest, SetReadaheadUpdatesDeviceAndOpenFiles) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(100);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 128u);
  stack.block_layer().set_readahead_kb(512);
  EXPECT_EQ(f.ra_pages, 128u);
  EXPECT_EQ(stack.block_layer().readahead_kb(), 512u);
  // Files created afterwards inherit the new default.
  FileHandle& g = stack.files().create(100);
  EXPECT_EQ(g.ra_pages, 128u);
  EXPECT_EQ(stack.block_layer().actuations(), 1u);
}

TEST(BlockLayerTest, FadviseHintsFollowPosixSemantics) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(100);
  stack.block_layer().fadvise(f.inode, Fadvise::kRandom);
  EXPECT_EQ(f.ra_pages, 0u);
  stack.block_layer().fadvise(f.inode, Fadvise::kSequential);
  EXPECT_EQ(f.ra_pages, 64u);  // 2x the 128 KB default
  stack.block_layer().fadvise(f.inode, Fadvise::kNormal);
  EXPECT_EQ(f.ra_pages, 32u);
  EXPECT_EQ(stack.block_layer().actuations(), 3u);
}

TEST(BlockLayerTest, FadviseRandomDisablesReadaheadEndToEnd) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(10000);
  stack.block_layer().fadvise(f.inode, Fadvise::kRandom);
  for (std::uint64_t p = 0; p < 32; ++p) stack.cache().read(f, p, 1);
  // Sequential access, but the hint suppresses all speculation.
  EXPECT_EQ(stack.device().stats().pages_read, 32u);
}

TEST(BlockLayerTest, PerFileOverride) {
  StorageStack stack(small_stack());
  FileHandle& f = stack.files().create(100);
  FileHandle& g = stack.files().create(100);
  stack.block_layer().set_file_readahead_kb(f.inode, 8);
  EXPECT_EQ(f.ra_pages, 2u);
  EXPECT_EQ(g.ra_pages, 32u);
  EXPECT_EQ(stack.block_layer().file_readahead_kb(f.inode), 8u);
}

}  // namespace
}  // namespace kml::sim
