// parallel_test.cpp — the determinism contract of the thread pool.
//
// The parallel kernels promise bit-identical results at ANY thread count
// (static chunking, each output element computed by exactly one worker with
// the same k-ascending loop), and the data-parallel trainer promises
// run-to-run reproducibility at a FIXED thread count (gradients are reduced
// in worker-index order; across thread counts only float-summation rounding
// differs — DESIGN.md §10). These tests pin both promises, plus the
// zero-allocation guarantee of the parallel steady-state paths.
//
// Each TEST runs in its own process (gtest_discover_tests), so the global
// thread-count knob set here cannot leak into other suites.
#include "data/sharded_buffer.h"
#include "matrix/linalg.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/sgd.h"
#include "portability/kml_lib.h"
#include "portability/threadpool.h"
#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

// The near-SIZE_MAX ShardedBuffer regression below exercises the graceful
// out-of-memory path: aligned_alloc returns nullptr and the ring degrades
// loudly. ASan's default is to abort on allocation-size-too-big instead of
// returning null; opt this binary into glibc-compatible behavior so the
// test verifies the same path under sanitizers.
extern "C" const char* __asan_default_options() {
  return "allocator_may_return_null=1";
}

namespace {

using namespace kml;

// Exact elementwise equality — the contract is bit-identity, not tolerance.
void expect_bit_identical(const matrix::MatD& a, const matrix::MatD& b,
                          const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.size()) *
                               sizeof(double)))
      << what << ": results differ across thread counts";
}

// Engine nets need fitted normalizer moments: infer paths call
// transform_row, which requires import_moments (identity here).
nn::Network make_engine_net(int in, int hidden, int classes, unsigned seed) {
  math::Rng rng(seed);
  nn::Network net = nn::build_mlp_classifier(in, hidden, classes, rng);
  net.normalizer().import_moments(std::vector<double>(in, 0.0),
                                  std::vector<double>(in, 1.0));
  return net;
}

struct Shape {
  int m, k, n;
};

// Ragged shapes straddling every dispatch regime: below the parallel work
// threshold (serial inline), at the register-tile boundary, and large enough
// to fan out across 8 workers with uneven tail chunks.
const Shape kShapes[] = {{1, 1, 1},    {3, 5, 7},    {8, 8, 8},
                         {17, 9, 33},  {64, 64, 64}, {61, 67, 73},
                         {128, 33, 96}, {5, 128, 130}};

TEST(ParallelDeterminism, MatmulBitIdenticalAcrossThreadCounts) {
  for (const Shape& s : kShapes) {
    math::Rng rng(101);
    const matrix::MatD a = matrix::random_uniform(s.m, s.k, -2.0, 2.0, rng);
    const matrix::MatD b = matrix::random_uniform(s.k, s.n, -2.0, 2.0, rng);
    matrix::MatD ref(s.m, s.n);
    kml_pool_set_threads(1);
    matrix::matmul(a, b, ref);
    for (unsigned t : {2u, 8u}) {
      kml_pool_set_threads(t);
      matrix::MatD out(s.m, s.n);
      matrix::matmul(a, b, out);
      expect_bit_identical(ref, out, "matmul");
    }
  }
  kml_pool_shutdown();
}

TEST(ParallelDeterminism, MatmulBtBitIdenticalAcrossThreadCounts) {
  for (const Shape& s : kShapes) {
    math::Rng rng(103);
    // out = a * b^T: a is m x k, b is n x k.
    const matrix::MatD a = matrix::random_uniform(s.m, s.k, -2.0, 2.0, rng);
    const matrix::MatD b = matrix::random_uniform(s.n, s.k, -2.0, 2.0, rng);
    matrix::MatD ref(s.m, s.n);
    kml_pool_set_threads(1);
    matrix::matmul_bt(a, b, ref);
    for (unsigned t : {2u, 8u}) {
      kml_pool_set_threads(t);
      matrix::MatD out(s.m, s.n);
      matrix::matmul_bt(a, b, out);
      expect_bit_identical(ref, out, "matmul_bt");
    }
  }
  kml_pool_shutdown();
}

TEST(ParallelDeterminism, MatmulAtBitIdenticalAcrossThreadCounts) {
  for (const Shape& s : kShapes) {
    math::Rng rng(107);
    // out = a^T * b: a is k x m, b is k x n.
    const matrix::MatD a = matrix::random_uniform(s.k, s.m, -2.0, 2.0, rng);
    const matrix::MatD b = matrix::random_uniform(s.k, s.n, -2.0, 2.0, rng);
    matrix::MatD ref(s.m, s.n);
    kml_pool_set_threads(1);
    matrix::matmul_at(a, b, ref);
    for (unsigned t : {2u, 8u}) {
      kml_pool_set_threads(t);
      matrix::MatD out(s.m, s.n);
      matrix::matmul_at(a, b, out);
      expect_bit_identical(ref, out, "matmul_at");
    }
  }
  kml_pool_shutdown();
}

TEST(ParallelDeterminism, ElementwiseKernelsBitIdenticalAcrossThreadCounts) {
  math::Rng rng(109);
  const matrix::MatD a = matrix::random_uniform(300, 257, -3.0, 3.0, rng);
  const matrix::MatD b = matrix::random_uniform(300, 257, -3.0, 3.0, rng);
  const matrix::MatD bias = matrix::random_uniform(1, 257, -1.0, 1.0, rng);

  struct Result {
    matrix::MatD add, sub, had, axpy, sm, biased;
  };
  const auto run_all = [&](unsigned threads) {
    kml_pool_set_threads(threads);
    Result r;
    r.add.ensure_shape(a.rows(), a.cols());
    r.sub.ensure_shape(a.rows(), a.cols());
    r.had.ensure_shape(a.rows(), a.cols());
    r.sm.ensure_shape(a.rows(), a.cols());
    matrix::add(a, b, r.add);
    matrix::sub(a, b, r.sub);
    matrix::hadamard(a, b, r.had);
    r.axpy.copy_from(a);
    matrix::axpy(0.37, b, r.axpy);
    matrix::scale(r.axpy, 1.13);
    matrix::softmax_rows(a, r.sm);
    r.biased.copy_from(a);
    matrix::add_bias_row(r.biased, bias);
    return r;
  };

  const Result ref = run_all(1);
  for (unsigned t : {2u, 8u}) {
    const Result got = run_all(t);
    expect_bit_identical(ref.add, got.add, "add");
    expect_bit_identical(ref.sub, got.sub, "sub");
    expect_bit_identical(ref.had, got.had, "hadamard");
    expect_bit_identical(ref.axpy, got.axpy, "axpy+scale");
    expect_bit_identical(ref.sm, got.sm, "softmax_rows");
    expect_bit_identical(ref.biased, got.biased, "add_bias_row");
  }
  kml_pool_shutdown();
}

TEST(ParallelDeterminism, InferBatchBitIdenticalAcrossThreadCounts) {
  runtime::Engine engine(make_engine_net(64, 32, 64, 7));
  constexpr int kCount = 67;  // ragged: not a multiple of any chunk size
  engine.warm_up(kCount);

  math::Rng rng(11);
  std::vector<double> features;
  for (int i = 0; i < kCount * 64; ++i) {
    features.push_back(rng.next_double() * 8.0 - 4.0);
  }

  kml_pool_set_threads(1);
  std::vector<int> ref(kCount, -1);
  ASSERT_EQ(engine.infer_batch(features.data(), 64, kCount, ref.data()),
            kCount);
  for (unsigned t : {2u, 8u}) {
    kml_pool_set_threads(t);
    std::vector<int> got(kCount, -2);
    ASSERT_EQ(engine.infer_batch(features.data(), 64, kCount, got.data()),
              kCount);
    EXPECT_EQ(ref, got) << "infer_batch diverged at " << t << " threads";
  }
  kml_pool_shutdown();
}

// --- Training reproducibility ------------------------------------------------

matrix::MatD make_train_x(int rows, int cols, unsigned seed) {
  math::Rng rng(seed);
  return matrix::random_uniform(rows, cols, -1.0, 1.0, rng);
}

matrix::MatD make_train_y(int rows, int classes, unsigned seed) {
  math::Rng rng(seed);
  matrix::MatD y(rows, classes);
  for (int i = 0; i < rows; ++i) {
    y.at(i, static_cast<int>(rng.next_below(
                static_cast<std::uint32_t>(classes)))) = 1.0;
  }
  return y;
}

// Run the full Network::train loop from a fixed seed and return the final
// flattened parameters.
std::vector<double> train_and_dump(unsigned threads) {
  kml_pool_set_threads(threads);
  math::Rng net_rng(42);
  nn::Network net = nn::build_mlp_classifier(8, 16, 4, net_rng);
  const matrix::MatD x = make_train_x(96, 8, 5);
  const matrix::MatD y = make_train_y(96, 4, 6);
  nn::CrossEntropyLoss loss;
  nn::SGD opt(0.05, 0.9);
  opt.attach(net.params());
  math::Rng shuffle_rng(77);
  net.train(x, y, loss, opt, /*epochs=*/3, /*batch_size=*/32, shuffle_rng);

  std::vector<double> flat;
  for (const nn::ParamRef& p : net.params()) {
    const matrix::MatD& v = *p.value;
    flat.insert(flat.end(), v.data(), v.data() + v.size());
  }
  return flat;
}

TEST(ParallelDeterminism, TrainRunToRunReproducibleAtFixedThreadCount) {
  for (unsigned t : {1u, 4u}) {
    const std::vector<double> first = train_and_dump(t);
    const std::vector<double> second = train_and_dump(t);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                             first.size() * sizeof(double)))
        << "training not reproducible at " << t << " threads";
  }
  kml_pool_shutdown();
}

TEST(ParallelDeterminism, TrainLossAgreesAcrossThreadCountsWithinRounding) {
  // Across thread counts gradient values differ only by float-summation
  // order; three epochs of SGD must land in the same neighborhood.
  const std::vector<double> serial = train_and_dump(1);
  const std::vector<double> par = train_and_dump(4);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], par[i], 1e-6) << "param " << i;
  }
  kml_pool_shutdown();
}

// --- Zero-allocation parallel steady state -----------------------------------

TEST(ParallelZeroAlloc, SteadyStateTrainBatchAtFourThreads) {
  kml_pool_set_threads(4);
  runtime::Engine engine(make_engine_net(8, 16, 4, 9));
  engine.set_mode(runtime::Mode::kTraining);
  // 32 rows / kTrainRowsPerWorker(8) = 4 chunks -> all 4 workers engage.
  const matrix::MatD x = make_train_x(32, 8, 21);
  const matrix::MatD y = make_train_y(32, 4, 22);
  nn::CrossEntropyLoss loss;
  nn::SGD opt(0.05, 0.9);
  opt.attach(engine.network().params());
  // Warm-up: sizes every per-worker slice and spawns the pool workers.
  engine.train_batch(x, y, loss, opt);
  engine.train_batch(x, y, loss, opt);

  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 0; i < 100; ++i) engine.train_batch(x, y, loss, opt);
  EXPECT_EQ(kml_mem_stats().total_allocs, before)
      << "parallel steady-state training must not allocate";
  kml_pool_shutdown();
}

TEST(ParallelZeroAlloc, SteadyStateInferBatchAtFourThreads) {
  kml_pool_set_threads(4);
  runtime::Engine engine(make_engine_net(64, 32, 64, 13));
  constexpr int kCount = 256;  // large enough to cross the parallel grain
  engine.warm_up(kCount);

  math::Rng rng(17);
  std::vector<double> features;
  for (int i = 0; i < kCount * 64; ++i) {
    features.push_back(rng.next_double());
  }
  std::vector<int> classes(kCount, -1);
  // Warm-up dispatch spawns the pool workers.
  ASSERT_EQ(engine.infer_batch(features.data(), 64, kCount, classes.data()),
            kCount);

  const std::uint64_t before = kml_mem_stats().total_allocs;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(engine.infer_batch(features.data(), 64, kCount, classes.data()),
              kCount);
  }
  EXPECT_EQ(kml_mem_stats().total_allocs, before)
      << "parallel steady-state batched inference must not allocate";
  kml_pool_shutdown();
}

// --- Pool knob & dispatch basics ---------------------------------------------

TEST(ThreadPool, KnobClampsAndReports) {
  kml_pool_set_threads(3);
  EXPECT_EQ(kml_pool_threads(), 3u);
  kml_pool_set_threads(1);
  EXPECT_EQ(kml_pool_threads(), 1u);
  kml_pool_set_threads(0);  // 0 = hardware concurrency
  EXPECT_GE(kml_pool_threads(), 1u);
  kml_pool_shutdown();
}

TEST(ThreadPool, WorkersForRespectsGrainAndThreads) {
  kml_pool_set_threads(8);
  EXPECT_EQ(kml_pool_workers_for(0, 1), 1u);
  EXPECT_EQ(kml_pool_workers_for(7, 8), 1u);    // one chunk -> serial
  EXPECT_EQ(kml_pool_workers_for(16, 8), 2u);   // two chunks
  EXPECT_EQ(kml_pool_workers_for(1000, 8), 8u); // capped by thread knob
  kml_pool_set_threads(2);
  EXPECT_EQ(kml_pool_workers_for(1000, 8), 2u);
  kml_pool_shutdown();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  kml_pool_set_threads(4);
  constexpr long kN = 10'007;  // prime: guarantees a ragged tail chunk
  std::vector<int> hits(kN, 0);
  parallel_for(kN, 16, [&](long b, long e, int) {
    for (long i = b; i < e; ++i) hits[static_cast<std::size_t>(i)] += 1;
  });
  for (long i = 0; i < kN; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1)
      << "index " << i;
  kml_pool_shutdown();
}

// --- ShardedBuffer -----------------------------------------------------------

TEST(ShardedBuffer, SingleShardIsPlainFifo) {
  data::ShardedBuffer<int> buf(8, 1);
  EXPECT_EQ(buf.shard_count(), 1u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(buf.push(i));
  EXPECT_EQ(buf.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(buf.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(buf.empty());
}

TEST(ShardedBuffer, RoundRobinDrainCoversAllShards) {
  data::ShardedBuffer<int> buf(64, 4);
  EXPECT_EQ(buf.shard_count(), 4u);
  // 10 values per shard, tagged by shard.
  for (unsigned s = 0; s < 4; ++s) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(buf.push(static_cast<int>(s) * 100 + i, s));
    }
  }
  EXPECT_EQ(buf.size(), 40u);

  int out[64];
  std::size_t total = 0;
  int next_per_shard[4] = {0, 0, 0, 0};
  while (total < 40) {
    const std::size_t got = buf.pop_many(out, 7);
    ASSERT_GT(got, 0u);
    for (std::size_t i = 0; i < got; ++i) {
      const int shard = out[i] / 100;
      const int seq = out[i] % 100;
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, 4);
      // Per-shard FIFO order must be preserved by the round-robin drain.
      EXPECT_EQ(seq, next_per_shard[shard]++);
    }
    total += got;
  }
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.pop_many(out, 7), 0u);
}

TEST(ShardedBuffer, OutOfRangeShardIdIsALoudContractViolation) {
  // An unfolded shard id used to fold silently — two producers landing on
  // one SPSC ring with zero synchronization. Debug builds now assert;
  // release builds still fold (dropping data would be worse) but count
  // every violation so tool_metrics_dump and this accessor expose it.
  data::ShardedBuffer<int> buf(16, 2);
  EXPECT_TRUE(buf.push(1, 0));
  EXPECT_EQ(buf.folded_pushes(), 0u);
#ifdef NDEBUG
  EXPECT_TRUE(buf.push(2, 2));  // folds onto shard 0
  EXPECT_TRUE(buf.push(3, 5));  // folds onto shard 1
  EXPECT_EQ(buf.folded_pushes(), 2u);
  EXPECT_EQ(buf.size(), 3u);
  int out[4];
  EXPECT_EQ(buf.pop_many(out, 4), 3u);
#else
  EXPECT_DEATH(buf.push(2, 2), "pre-folded");
#endif
}

TEST(ShardedBuffer, NearMaxCapacityDoesNotWrapToTinyRings) {
  // Regression: the ceil-divide was (capacity + shards - 1) / shards, which
  // wraps for capacity within shards-1 of SIZE_MAX and silently built 64
  // one-slot rings out of a near-SIZE_MAX budget. Divide-first arithmetic
  // forwards the absurd per-shard size to CircularBuffer's allocation
  // guard, which degrades to zero-capacity drop-everything rings — loud
  // (KML_ERROR + dropped()), never quietly tiny.
  data::ShardedBuffer<int> buf(SIZE_MAX - 1, 64);
  EXPECT_EQ(buf.requested_capacity(), SIZE_MAX - 1);
  EXPECT_NE(buf.capacity(), 64u);  // the old wrapped outcome
  if (!buf.push(1, 0)) {
    EXPECT_GT(buf.dropped(), 0u);
  }
}

TEST(ShardedBuffer, RoundUpInflationIsAccounted) {
  // 65 slots over 64 shards: ceil-divide gives 2 per shard, the power-of-
  // two round-up keeps 2, so 128 slots are actually allocated — nearly
  // double the request. Both numbers must be visible so callers can size
  // budgets as shards x power-of-two and make them agree.
  data::ShardedBuffer<int> buf(65, 64);
  EXPECT_EQ(buf.requested_capacity(), 65u);
  EXPECT_EQ(buf.capacity(), 128u);
  EXPECT_EQ(buf.shard_count(), 64u);
}

TEST(ShardedBuffer, PopManyHotShardCannotStarveColdShards) {
  // One hot shard (Zipf head) with 1000 queued items, three cold shards
  // with 10 each: a batch of 40 popped round-robin must carry every cold
  // shard's items, not 40 hot ones.
  data::ShardedBuffer<int> buf(4096, 4);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(buf.push(0 + i * 4, 0));
  for (unsigned s = 1; s < 4; ++s) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(buf.push(static_cast<int>(s) + i * 4, s));
    }
  }
  int out[40];
  ASSERT_EQ(buf.pop_many(out, 40), 40u);
  int per_shard[4] = {0, 0, 0, 0};
  for (int v : out) ++per_shard[v % 4];
  // Round-robin interleave: 10 per shard while all four have items.
  for (int s = 0; s < 4; ++s) {
    EXPECT_GE(per_shard[s], 8) << "shard " << s << " starved";
  }
}

TEST(ShardedBuffer, DroppedAggregatesAcrossShards) {
  // Total capacity 8 over 2 shards -> 4 slots each; every rejected push
  // increments the shard's dropped counter, so nothing goes missing.
  data::ShardedBuffer<int> buf(8, 2);
  for (int i = 0; i < 10; ++i) buf.push(i, 0);
  for (int i = 0; i < 10; ++i) buf.push(i, 1);
  EXPECT_GT(buf.dropped(), 0u);
  EXPECT_EQ(buf.size() + buf.dropped(), 20u);
}

}  // namespace
