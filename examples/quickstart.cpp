// quickstart — the KML core library in 5 minutes.
//
// Builds a small neural-network classifier with the from-scratch ML stack
// (matrices, layers, losses, SGD), trains it on synthetic data, measures
// accuracy, saves it in the KML model file format, loads it back, and shows
// the memory accounting every deployment decision rests on.
//
//   ./examples/quickstart
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "portability/kml_lib.h"

#include <cstdio>

int main() {
  using namespace kml;
  kml_lib_init();

  // 1. Synthetic 3-class problem: Gaussian blobs in 4-D.
  math::Rng rng(2024);
  const int kSamples = 600;
  const int kFeatures = 4;
  const int kClasses = 3;
  matrix::MatD x(kSamples, kFeatures);
  matrix::MatD y(kSamples, kClasses);
  matrix::MatI labels(kSamples, 1);
  for (int i = 0; i < kSamples; ++i) {
    const int cls = i % kClasses;
    for (int j = 0; j < kFeatures; ++j) {
      x.at(i, j) = rng.normal(2.5 * cls, 0.8);
    }
    y.at(i, cls) = 1.0;
    labels.at(i, 0) = cls;
  }

  // 2. Build the network: Linear -> Sigmoid -> Linear (a chain computation
  //    graph, trained by reverse-mode autodiff).
  nn::Network net;
  net.add(std::make_unique<nn::Linear>(kFeatures, 12, rng))
      .add(std::make_unique<nn::Sigmoid>())
      .add(std::make_unique<nn::Linear>(12, kClasses, rng));

  // 3. Fit the Z-score normalizer and train with SGD + momentum.
  net.normalizer().fit(x);
  const matrix::MatD z = net.normalizer().transform(x);
  nn::CrossEntropyLoss loss;
  nn::SGD opt(/*learning_rate=*/0.05, /*momentum=*/0.9);
  opt.attach(net.params());
  const nn::TrainReport report = net.train(z, y, loss, opt, /*epochs=*/40,
                                           /*batch_size=*/32, rng);
  std::printf("trained %d epochs: loss %.4f -> %.4f, accuracy %.1f%%\n",
              report.epochs, report.epoch_losses.front(), report.final_loss,
              net.accuracy(z, labels) * 100.0);

  // 4. Save in the KML model file format and reload (the user-space ->
  //    kernel deployment path).
  const char* path = "quickstart_model.kml";
  if (!nn::save_model(net, path)) {
    std::fprintf(stderr, "failed to save model\n");
    return 1;
  }
  nn::Network deployed;
  if (!nn::load_model(deployed, path)) {
    std::fprintf(stderr, "failed to load model\n");
    return 1;
  }
  const matrix::MatD z2 = deployed.normalizer().transform(x);
  std::printf("reloaded model accuracy: %.1f%% (identical weights)\n",
              deployed.accuracy(z2, labels) * 100.0);

  // 5. Every byte is accounted — this is how the paper reports its 3,916 B
  //    model footprint.
  std::printf("model weights: %zu bytes; live kml allocations: %llu bytes\n",
              deployed.param_bytes(),
              static_cast<unsigned long long>(kml_mem_usage()));

  kml_lib_shutdown();
  return 0;
}
