// trace_whatif — capture once, replay under different readahead settings.
//
// The offline counterpart of the closed loop: capture the page-cache
// tracepoint stream of a live workload to a KML trace file (the LTTng role
// in the paper's methodology), then replay the exact same accesses against
// fresh stacks configured with different readahead values — answering
// "what would this workload have done under RA=X?" without re-running the
// application.
//
//   ./examples/trace_whatif [workload] [capture-seconds]
#include "readahead/pipeline.h"
#include "sim/trace_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  using namespace kml;

  workloads::WorkloadType workload = workloads::WorkloadType::kReadRandom;
  std::uint64_t seconds = 5;
  if (argc > 1) {
    const std::string name = argv[1];
    for (int w = 0; w < workloads::kNumAllWorkloads; ++w) {
      const auto t = static_cast<workloads::WorkloadType>(w);
      if (name == workloads::workload_name(t)) workload = t;
    }
  }
  if (argc > 2) {
    const std::uint64_t s = std::strtoull(argv[2], nullptr, 10);
    if (s > 0) seconds = s;
  }

  readahead::ExperimentConfig config;
  config.num_keys = 200000;
  config.cache_pages = 4096;
  const char* trace_path = "whatif_capture.kmlr";

  // 1. Capture. Readahead is disabled during capture so the trace holds the
  //    application's *demanded* pages, not the heuristic's speculation —
  //    the replay then re-decides speculation under each setting.
  std::printf("[1/2] capturing %s for %llu virtual seconds...\n",
              workloads::workload_name(workload),
              static_cast<unsigned long long>(seconds));
  {
    sim::StorageStack stack(readahead::make_stack_config(config));
    kv::MiniKV db(stack, readahead::make_kv_config(config));
    stack.block_layer().set_readahead_kb(0);
    sim::TraceWriter writer(stack, trace_path);
    workloads::WorkloadConfig wc;
    wc.type = workload;
    const workloads::RunResult r = workloads::run_workload(
        db, wc, seconds * sim::kNsPerSec, UINT64_MAX);
    if (!writer.finish()) {
      std::fprintf(stderr, "capture failed\n");
      return 1;
    }
    std::printf("      %llu ops -> %llu trace records -> %s (%lld bytes)\n",
                static_cast<unsigned long long>(r.ops),
                static_cast<unsigned long long>(writer.captured()),
                trace_path, static_cast<long long>(kml_fsize(trace_path)));
  }

  // 2. What-if replays.
  std::printf("[2/2] replaying the capture under different readahead "
              "settings:\n\n%10s %16s %14s\n", "ra (KB)", "virtual time",
              "device reads");
  sim::TraceReader reader;
  if (!reader.open(trace_path)) {
    std::fprintf(stderr, "cannot reopen capture\n");
    return 1;
  }
  for (const std::uint32_t ra_kb : {0u, 8u, 32u, 128u, 512u, 1024u}) {
    reader.rewind();
    sim::StorageStack stack(readahead::make_stack_config(config));
    stack.files().set_default_ra_pages(sim::FileTable::kb_to_pages(ra_kb));
    const sim::ReplayStats stats = sim::replay_trace(stack, reader);
    std::printf("%10u %13.3f s %14llu\n", ra_kb,
                static_cast<double>(stats.duration_ns) / 1e9,
                static_cast<unsigned long long>(
                    stack.device().stats().pages_read));
  }
  std::printf("\nthe fastest row is the readahead value the KML tuner would "
              "steer toward for this workload.\n");
  return 0;
}
