// readahead_tuning — the paper's case study, end to end, in one program.
//
// Trains the workload classifier from simulated kernel traces, then attaches
// the KML tuner to a live storage stack running a workload it has never
// seen (mixgraph) and prints the closed loop at work: per-second throughput
// against a vanilla run, the predicted workload class, and the actuated
// readahead size.
//
//   ./examples/readahead_tuning [workload] [nvme|ssd]
#include "readahead/model.h"
#include "readahead/pipeline.h"

#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  using namespace kml;

  workloads::WorkloadType workload = workloads::WorkloadType::kMixGraph;
  sim::DeviceConfig device = sim::nvme_config();
  if (argc > 1) {
    const std::string name = argv[1];
    for (int w = 0; w < workloads::kNumWorkloads; ++w) {
      const auto t = static_cast<workloads::WorkloadType>(w);
      if (name == workloads::workload_name(t)) workload = t;
    }
  }
  if (argc > 2 && std::strcmp(argv[2], "ssd") == 0) {
    device = sim::sata_ssd_config();
  }

  // 1. Collect labeled traces on NVMe (short runs for a demo) and train.
  std::printf("[1/3] collecting traces and training the classifier...\n");
  readahead::TraceGenConfig trace_config;
  trace_config.seconds_per_run = 8;
  trace_config.ra_values_kb = {8, 64, 128, 512};
  const data::Dataset dataset =
      readahead::collect_training_data(trace_config);
  readahead::ModelConfig model_config;
  nn::Network net = readahead::train_readahead_nn(dataset, model_config);
  std::printf("      %d windows, training accuracy %.1f%%\n", dataset.size(),
              readahead::evaluate_nn(net, dataset) * 100.0);

  // 2. Derive the actuation table from a condensed readahead study.
  std::printf("[2/3] sweeping readahead sizes on %s...\n", device.name);
  readahead::ExperimentConfig config;
  config.device = device;
  const std::vector<workloads::WorkloadType> training_types = {
      workloads::WorkloadType::kReadSeq, workloads::WorkloadType::kReadRandom,
      workloads::WorkloadType::kReadReverse,
      workloads::WorkloadType::kReadRandomWriteRandom};
  const auto sweep = readahead::readahead_sweep(
      config, training_types, {8, 16, 64, 128, 512, 1024}, 3);
  readahead::TunerConfig tuner_config;
  tuner_config.class_ra_kb = readahead::best_ra_table(sweep);

  // 3. Closed loop vs vanilla.
  std::printf("[3/3] running %s on %s, vanilla vs KML...\n\n",
              workloads::workload_name(workload), device.name);
  const readahead::ReadaheadTuner::PredictFn predictor =
      [&net](const readahead::FeatureVector& f) {
        std::vector<double> z(f.begin(), f.end());
        net.normalizer().transform_row(z.data(), static_cast<int>(z.size()));
        matrix::MatD x(1, static_cast<int>(z.size()));
        for (std::size_t j = 0; j < z.size(); ++j) {
          x.at(0, static_cast<int>(j)) = z[j];
        }
        return net.predict_classes(x).at(0, 0);
      };
  const readahead::EvalOutcome outcome = readahead::evaluate_closed_loop(
      config, workload, predictor, tuner_config, /*seconds=*/15);

  std::printf("%6s %14s %14s %10s %24s\n", "sec", "vanilla ops/s",
              "kml ops/s", "ra (KB)", "predicted class");
  const std::size_t n = outcome.timeline.size();
  for (std::size_t s = 0; s < n; ++s) {
    const double vanilla = s < outcome.vanilla_per_second.size()
                               ? outcome.vanilla_per_second[s]
                               : 0.0;
    const double kml = s < outcome.kml_per_second.size()
                           ? outcome.kml_per_second[s]
                           : 0.0;
    const int cls = outcome.timeline[s].predicted_class;
    std::printf("%6zu %14.0f %14.0f %10u %24s\n", s, vanilla, kml,
                outcome.timeline[s].ra_kb,
                cls < 0 ? "(idle)"
                        : workloads::workload_name(
                              static_cast<workloads::WorkloadType>(cls)));
  }
  std::printf("\noverall: vanilla %.0f ops/s -> kml %.0f ops/s  (%.2fx)\n",
              outcome.vanilla_ops_per_sec, outcome.kml_ops_per_sec,
              outcome.speedup);
  return 0;
}
