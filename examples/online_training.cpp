// online_training — the in-kernel training mode of §3.2/§3.3.
//
// Demonstrates the asynchronous side of KML: data-collection hooks on the
// I/O path push trace records into the lock-free circular buffer; a
// separate *training thread* drains them, windows them, extracts and
// normalizes features online, and performs SGD iterations — all while the
// workload keeps running. At the end the freshly trained model is switched
// to inference mode and cross-checked against held-out windows.
//
//   ./examples/online_training
#include "readahead/features.h"
#include "readahead/model.h"
#include "readahead/pipeline.h"
#include "runtime/training_thread.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace {

using namespace kml;

// State shared with the async training thread. Online learner: keeps a
// window per second of trace time, turns completed windows into training
// samples, and runs one SGD iteration per sample.
struct OnlineTrainer {
  explicit OnlineTrainer(int label)
      : label_(label), opt(0.01, 0.99) {
    math::Rng rng(31);
    net = nn::build_mlp_classifier(readahead::kNumSelectedFeatures, 16,
                                   workloads::kNumTrainingClasses, rng);
    net.normalizer().import_moments(
        std::vector<double>(readahead::kNumSelectedFeatures, 0.0),
        std::vector<double>(readahead::kNumSelectedFeatures, 1.0));
    opt.attach(net.params());
  }

  void consume(const data::TraceRecord* records, std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < count; ++i) {
      const data::TraceRecord& rec = records[i];
      while (rec.time_ns >= boundary_ns) {
        finish_window();
        boundary_ns += sim::kNsPerSec;
      }
      window.push_back(rec);
    }
  }

  void finish_window() {
    if (window.empty()) return;
    const readahead::FeatureVector f =
        extractor.extract_selected(window, 128);
    window.clear();

    // Online normalization: running moments updated as data arrives (§3.2).
    online_moments.observe(f.data(), readahead::kNumSelectedFeatures);
    std::vector<double> means;
    std::vector<double> stds;
    online_moments.export_moments(means, stds);
    for (auto& s : stds) {
      if (s < 1e-9) s = 1.0;
    }
    net.normalizer().import_moments(means, stds);

    std::vector<double> z(f.begin(), f.end());
    net.normalizer().transform_row(z.data(),
                                   readahead::kNumSelectedFeatures);
    matrix::MatD x(1, readahead::kNumSelectedFeatures);
    for (int j = 0; j < readahead::kNumSelectedFeatures; ++j) {
      x.at(0, j) = z[static_cast<std::size_t>(j)];
    }
    matrix::MatD y(1, workloads::kNumTrainingClasses);
    y.at(0, label_) = 1.0;
    last_loss = net.train_step(x, y, loss, opt);
    ++iterations;
  }

  int label_;
  std::mutex mutex;
  std::vector<data::TraceRecord> window;
  std::uint64_t boundary_ns = sim::kNsPerSec;
  readahead::FeatureExtractor extractor;
  data::ZScoreNormalizer online_moments{readahead::kNumSelectedFeatures};
  nn::Network net;
  nn::CrossEntropyLoss loss;
  nn::SGD opt;
  double last_loss = 0.0;
  std::atomic<int> iterations{0};
};

void trainer_callback(void* user, const data::TraceRecord* records,
                      std::size_t count) {
  static_cast<OnlineTrainer*>(user)->consume(records, count);
}

}  // namespace

int main() {
  std::printf("online (in-\"kernel\") training: readrandom traces stream "
              "through the lock-free buffer into the async trainer\n\n");

  OnlineTrainer trainer(
      static_cast<int>(workloads::WorkloadType::kReadRandom));
  runtime::TrainingThread thread(/*buffer_capacity=*/1 << 16, /*batch=*/256,
                                 trainer_callback, &trainer);

  // Live storage stack + workload; the hook forwards tracepoints into the
  // training thread, exactly like the kernel module would.
  readahead::ExperimentConfig config;
  config.num_keys = 200000;
  config.cache_pages = 4096;
  sim::StorageStack stack(readahead::make_stack_config(config));
  kv::MiniKV db(stack, readahead::make_kv_config(config));
  stack.tracepoints().register_hook([&](const sim::TraceEvent& ev) {
    thread.submit(data::TraceRecord{ev.inode, ev.pgoff, ev.time_ns,
                                    static_cast<std::uint8_t>(ev.type)});
  });

  workloads::WorkloadConfig wc;
  wc.type = workloads::WorkloadType::kReadRandom;
  const workloads::RunResult r =
      workloads::run_workload(db, wc, 20 * sim::kNsPerSec, UINT64_MAX);
  std::printf("workload done: %llu ops over %llu virtual seconds\n",
              static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.duration_ns /
                                              sim::kNsPerSec));

  // Let the async thread drain, then inspect what it learned.
  while (thread.processed() + thread.dropped() <
         stack.tracepoints().emitted()) {
    kml_sleep_ms(1);
  }
  double last_loss;
  int iterations;
  {
    std::lock_guard<std::mutex> lock(trainer.mutex);
    last_loss = trainer.last_loss;
    iterations = trainer.iterations.load();
  }
  std::printf("trainer: %llu records processed, %llu dropped, %d SGD "
              "iterations, last loss %.4f\n",
              static_cast<unsigned long long>(thread.processed()),
              static_cast<unsigned long long>(thread.dropped()), iterations,
              last_loss);
  return 0;
}
