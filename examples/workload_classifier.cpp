// workload_classifier — the user-space model-development loop of §3.3.
//
// "Users can collect data using KML's data processing and normalization
// components and then train ML models on collected trace data in user
// space... When the neural network model is ready to be deployed, the user
// can save the model to a file that has a KML-specific file format."
//
// This example runs that loop: collect labeled traces, inspect feature/
// class correlations (the paper's Pearson analysis), cross-validate both
// model families, and write the deployable artifacts.
//
//   ./examples/workload_classifier
#include "math/stats.h"
#include "nn/serialize.h"
#include "readahead/model.h"
#include "readahead/pipeline.h"

#include <cstdio>
#include <vector>

int main() {
  using namespace kml;

  // 1. Collect labeled windows from the four training workloads.
  std::printf("collecting traces from 4 workloads on NVMe...\n");
  readahead::TraceGenConfig trace_config;
  trace_config.seconds_per_run = 10;
  const data::Dataset dataset =
      readahead::collect_training_data(trace_config);
  std::printf("%d windows x %d features\n\n", dataset.size(),
              dataset.num_features());

  // 2. Feature relevance via Pearson correlation against the class label —
  //    the analysis the paper used to confirm its feature selection.
  const char* feature_names[readahead::kNumSelectedFeatures] = {
      "tracepoint count", "cum. offset mean", "mean |offset delta|",
      "distinct inodes", "current readahead"};
  std::printf("Pearson correlation (feature vs class label):\n");
  const int n = dataset.size();
  std::vector<double> label_col(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) label_col[static_cast<std::size_t>(i)] =
      dataset.label(i);
  for (int j = 0; j < dataset.num_features(); ++j) {
    std::vector<double> col(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      col[static_cast<std::size_t>(i)] = dataset.features(i)[j];
    }
    std::printf("  %-22s % .3f\n", feature_names[j],
                math::pearson(col.data(), label_col.data(),
                              static_cast<std::size_t>(n)));
  }

  // 3. Cross-validate the neural network (paper: 95.5% at k=10).
  readahead::ModelConfig model_config;
  const double acc =
      readahead::kfold_nn_accuracy(dataset, 10, model_config);
  std::printf("\nneural network, 10-fold cross-validation: %.1f%%\n",
              acc * 100.0);

  // 4. And the decision-tree alternative.
  math::Rng rng(7);
  const data::Fold fold = data::train_test_split(dataset, 0.25, rng);
  const readahead::ReadaheadTree tree =
      readahead::train_readahead_dtree(fold.train);
  std::printf("decision tree, hold-out: %.1f%% (%d nodes)\n",
              tree.accuracy(fold.test) * 100.0, tree.tree.node_count());

  // 5. Produce the deployable artifacts.
  nn::Network net = readahead::train_readahead_nn(dataset, model_config);
  if (nn::save_model(net, "workload_classifier.kml")) {
    std::printf("\nsaved deployable model -> workload_classifier.kml\n");
  }
  if (tree.tree.save("workload_classifier.kmlt")) {
    std::printf("saved decision tree     -> workload_classifier.kmlt\n");
  }
  if (data::save_dataset_csv(dataset, "workload_traces.csv")) {
    std::printf("saved training windows  -> workload_traces.csv\n");
  }
  return 0;
}
