#include "runtime/health.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "observe/slo.h"
#include "observe/timeseries.h"
#include "portability/log.h"

#include <cmath>

namespace kml::runtime {

namespace {

// kHealthTransition args are (old_state, new_state) as integers.
inline void emit_transition(HealthState from, HealthState to) {
  (void)from;  // unused when KML_OBSERVE=OFF compiles the event away
  (void)to;
  KML_EVENT(observe::EventId::kHealthTransition,
            static_cast<std::uint64_t>(from), static_cast<std::uint64_t>(to));
}

}  // namespace

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "HEALTHY";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kFailed: return "FAILED";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {}

void HealthMonitor::enter_degraded() {
  if (state() == HealthState::kDegraded) return;
  KML_WARN("health: %s -> DEGRADED", health_state_name(state()));
  emit_transition(state(), HealthState::kDegraded);
  state_.store(static_cast<int>(HealthState::kDegraded),
               std::memory_order_release);
  stats_.degradations += 1;
  clean_streak_ = 0;
  // Preserve the events that led here (the transition itself included).
  freeze_flight();
}

void HealthMonitor::enter_failed() {
  if (state() == HealthState::kFailed) return;
  KML_WARN("health: %s -> FAILED", health_state_name(state()));
  emit_transition(state(), HealthState::kFailed);
  state_.store(static_cast<int>(HealthState::kFailed),
               std::memory_order_release);
  stats_.failures += 1;
  clean_streak_ = 0;
  // No freeze here — see the header: the imminent rollback and
  // FAILED->DEGRADED probation transition complete the causal chain, and
  // entering DEGRADED freezes with all of it on record.
}

void HealthMonitor::enter_healthy() {
  if (state() == HealthState::kHealthy) return;
  KML_INFO("health: %s -> HEALTHY", health_state_name(state()));
  emit_transition(state(), HealthState::kHealthy);
  state_.store(static_cast<int>(HealthState::kHealthy),
               std::memory_order_release);
  stats_.recoveries += 1;
  strikes_ = 0;
  clean_streak_ = 0;
  // Recovered: resume recording so the next incident gets a fresh window.
  observe::flight_thaw();
}

void HealthMonitor::freeze_flight() {
  if (observe::flight_frozen()) return;
  observe::flight_freeze();
  if (config_.flight_dump_prefix != nullptr) {
    observe::flight_dump_files(observe::flight_snapshot(),
                               config_.flight_dump_prefix);
  }
}

void HealthMonitor::observe_train_step(double loss, bool valid) {
  std::lock_guard<std::mutex> guard(lock_);
  stats_.train_steps += 1;

  // (a) Non-finite loss/weights: the model is garbage right now; only a
  // rollback can start recovery.
  if (!valid || !std::isfinite(loss)) {
    stats_.non_finite_events += 1;
    enter_failed();
    return;
  }

  // (b) EWMA divergence. The baseline warms up unconditionally, then only
  // absorbs non-diverged steps.
  if (!ewma_primed_) {
    stats_.loss_ewma = loss;
    ewma_primed_ = true;
    return;
  }
  const bool warmed = stats_.train_steps > config_.warmup_steps;
  const double baseline = stats_.loss_ewma;
  const bool diverged =
      warmed && loss > config_.divergence_ratio * baseline &&
      loss > 1e-12;  // a spike over a ~zero baseline is numeric noise
  if (diverged) {
    strikes_ += 1;
    stats_.divergence_strikes += 1;
    clean_streak_ = 0;
    if (strikes_ >= config_.strikes_to_fail) {
      enter_failed();
    } else if (strikes_ >= config_.strikes_to_degrade) {
      enter_degraded();
    }
    return;
  }

  stats_.loss_ewma += config_.ewma_alpha * (loss - stats_.loss_ewma);
  clean_streak_ += 1;
  if (clean_streak_ >= config_.clean_steps_to_recover &&
      state() == HealthState::kDegraded) {
    enter_healthy();
  }
}

void HealthMonitor::heartbeat(std::uint64_t now_ns) {
  last_heartbeat_ns_.store(now_ns, std::memory_order_release);
  std::lock_guard<std::mutex> guard(lock_);
  stats_.heartbeats += 1;
  heartbeat_seen_ = true;
}

bool HealthMonitor::check_watchdog(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> guard(lock_);
  if (!heartbeat_seen_) return false;
  const std::uint64_t last = last_heartbeat_ns_.load(std::memory_order_acquire);
  if (now_ns <= last || now_ns - last <= config_.heartbeat_timeout_ns) {
    return false;
  }
  stats_.watchdog_timeouts += 1;
  // A stalled trainer means stale — not garbage — predictions: degrade.
  enter_degraded();
  return true;
}

void HealthMonitor::observe_buffer(std::uint64_t submitted_total,
                                   std::uint64_t dropped_total) {
  std::lock_guard<std::mutex> guard(lock_);
  // Delta since the previous observation, tolerating counter resets.
  if (submitted_total < last_submitted_ || dropped_total < last_dropped_) {
    last_submitted_ = submitted_total;
    last_dropped_ = dropped_total;
    return;
  }
  const std::uint64_t submitted = submitted_total - last_submitted_;
  const std::uint64_t dropped = dropped_total - last_dropped_;
  if (submitted < config_.drop_window_min_records) return;  // window too small
  last_submitted_ = submitted_total;
  last_dropped_ = dropped_total;
  const double rate =
      static_cast<double>(dropped) / static_cast<double>(submitted);
  if (rate > config_.drop_rate_threshold) {
    stats_.drop_rate_trips += 1;
    enter_degraded();
  }
}

void HealthMonitor::observe_registry() {
#if KML_OBSERVE_ENABLED
  // Read the registry outside the lock (all relaxed atomic reads).
  observe::Counter* push = observe::find_counter(observe::kMetricBufferPush);
  observe::Counter* drop = observe::find_counter(observe::kMetricBufferDrop);
  const std::uint64_t pushed = push != nullptr ? push->value() : 0;
  const std::uint64_t dropped = drop != nullptr ? drop->value() : 0;
  const std::uint64_t submitted = pushed + dropped;
  std::uint64_t inferences = 0;
  std::uint64_t p99 = 0;
  if (config_.inference_p99_degrade_ns > 0) {
    if (observe::Histogram* h =
            observe::find_histogram(observe::kMetricInferenceNs)) {
      inferences = h->count();
      p99 = h->percentile(99);
    }
  }
  std::uint64_t train_steps = 0;
  std::int64_t grad_norm_milli = 0;
  if (config_.grad_norm_degrade_milli > 0) {
    if (observe::Counter* c = observe::find_counter(observe::kMetricTrainSteps))
      train_steps = c->value();
    if (observe::Gauge* g = observe::find_gauge(observe::kMetricGradNormMilli))
      grad_norm_milli = g->value();
  }
  std::uint64_t drift_samples = 0;
  std::int64_t drift_z_milli = 0;
  if (config_.drift_z_degrade_milli > 0) {
    if (observe::Gauge* g = observe::find_gauge(observe::kMetricDriftSamples))
      drift_samples = static_cast<std::uint64_t>(g->value());
    if (observe::Gauge* g = observe::find_gauge(observe::kMetricDriftZMilli))
      drift_z_milli = g->value();
  }
  std::uint64_t kv_recoveries = 0;
  std::uint64_t kv_torn = 0;
  if (config_.kv_recoveries_to_degrade > 0) {
    if (observe::Counter* c = observe::find_counter(observe::kMetricKvRecoveries))
      kv_recoveries = c->value();
    if (observe::Counter* c =
            observe::find_counter(observe::kMetricKvTornManifests))
      kv_torn = c->value();
  }
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  if (config_.cache_hit_rate_degrade_milli > 0) {
    if (observe::Counter* c = observe::find_counter(observe::kMetricCacheHit))
      cache_hits = c->value();
    if (observe::Counter* c = observe::find_counter(observe::kMetricCacheMiss))
      cache_misses = c->value();
  }
  std::uint64_t fleet_windows = 0;
  std::uint64_t fleet_depth = 0;
  std::uint64_t fleet_p99 = 0;
  if (config_.fleet_queue_depth_degrade > 0 ||
      config_.fleet_decision_p99_degrade_ns > 0) {
    if (observe::Counter* c =
            observe::find_counter(observe::kMetricFleetWindows))
      fleet_windows = c->value();
    if (observe::Gauge* g =
            observe::find_gauge(observe::kMetricFleetQueueDepth)) {
      const std::int64_t v = g->value();
      fleet_depth = v > 0 ? static_cast<std::uint64_t>(v) : 0;
    }
    if (config_.fleet_decision_p99_degrade_ns > 0) {
      if (observe::Histogram* h =
              observe::find_histogram(observe::kMetricFleetDecisionNs))
        fleet_p99 = h->percentile(99);
    }
  }
  std::uint64_t slo_samples = 0;
  std::uint32_t slo_burning = 0;
  std::uint64_t slo_worst_idx = 0;
  std::uint64_t slo_worst_burn = 0;
  if (config_.slo_burning_to_degrade > 0) {
    slo_samples = observe::timeseries_samples();
    const std::size_t n = observe::slo_count();
    for (std::size_t i = 0; i < n; ++i) {
      const observe::SloStatus st = observe::slo_evaluate(i);
      if (!st.burning) continue;
      slo_burning += 1;
      if (st.fast_burn_milli >= slo_worst_burn) {
        slo_worst_burn = st.fast_burn_milli;
        slo_worst_idx = i;
      }
    }
  }

  std::lock_guard<std::mutex> guard(lock_);
  if (!registry_primed_) {
    registry_primed_ = true;
    registry_last_submitted_ = submitted;
    registry_last_dropped_ = dropped;
    registry_last_inferences_ = inferences;
    registry_last_train_steps_ = train_steps;
    registry_last_drift_samples_ = drift_samples;
    registry_last_kv_recoveries_ = kv_recoveries;
    registry_last_kv_torn_ = kv_torn;
    registry_last_cache_hits_ = cache_hits;
    registry_last_cache_misses_ = cache_misses;
    registry_last_fleet_windows_ = fleet_windows;
    registry_last_slo_samples_ = slo_samples;
    return;
  }

  // (d) drop rate over the delta window, tolerating registry resets.
  if (submitted < registry_last_submitted_ ||
      dropped < registry_last_dropped_) {
    registry_last_submitted_ = submitted;
    registry_last_dropped_ = dropped;
  } else if (submitted - registry_last_submitted_ >=
             config_.drop_window_min_records) {
    const std::uint64_t sub_delta = submitted - registry_last_submitted_;
    const std::uint64_t drop_delta = dropped - registry_last_dropped_;
    registry_last_submitted_ = submitted;
    registry_last_dropped_ = dropped;
    const double rate =
        static_cast<double>(drop_delta) / static_cast<double>(sub_delta);
    if (rate > config_.drop_rate_threshold) {
      stats_.drop_rate_trips += 1;
      enter_degraded();
    }
  }

  // (e) inference p99. The histogram is cumulative, so only judge while
  // inferences are actually flowing (count advanced since the last poll) —
  // a quiesced model cannot trip the guard on stale history alone.
  if (config_.inference_p99_degrade_ns > 0 &&
      inferences > registry_last_inferences_) {
    registry_last_inferences_ = inferences;
    if (p99 > config_.inference_p99_degrade_ns) {
      stats_.latency_trips += 1;
      enter_degraded();
    }
  }

  // (f) gradient explosion. Gauge = worst per-layer gradient L2-norm of the
  // most recent step; only judged while training actually progresses.
  if (config_.grad_norm_degrade_milli > 0 &&
      train_steps > registry_last_train_steps_) {
    registry_last_train_steps_ = train_steps;
    if (grad_norm_milli > 0 &&
        static_cast<std::uint64_t>(grad_norm_milli) >
            config_.grad_norm_degrade_milli) {
      stats_.grad_trips += 1;
      enter_degraded();
    }
  }

  // (g) input drift. Gauge = max per-feature |z| of the live input mean vs
  // the training baseline; only judged while inference traffic flows.
  if (config_.drift_z_degrade_milli > 0 &&
      drift_samples > registry_last_drift_samples_) {
    registry_last_drift_samples_ = drift_samples;
    if (drift_z_milli > 0 && static_cast<std::uint64_t>(drift_z_milli) >
                                 config_.drift_z_degrade_milli) {
      stats_.drift_trips += 1;
      enter_degraded();
    }
  }

  // (h) KV recovery. Counters, not gauges, so no progress companion is
  // needed: any advance IS the event. A recovered (or torn-manifest-
  // rejected) store means the data the model reads was rebuilt underneath
  // it — probation until a clean streak proves the predictions still hold.
  if (config_.kv_recoveries_to_degrade > 0) {
    std::uint64_t events = 0;
    if (kv_recoveries >= registry_last_kv_recoveries_) {
      events += kv_recoveries - registry_last_kv_recoveries_;
    }
    if (kv_torn >= registry_last_kv_torn_) {
      events += kv_torn - registry_last_kv_torn_;
    }
    registry_last_kv_recoveries_ = kv_recoveries;
    registry_last_kv_torn_ = kv_torn;
    if (events >= config_.kv_recoveries_to_degrade) {
      stats_.kv_recovery_trips += 1;
      enter_degraded();
    }
  }

  // (i) cache hit-rate collapse over the delta window, tolerating registry
  // resets like (d). Integer-only rate comparison: hit-rate(milli) < floor
  // <=> hits * 1000 < floor * accesses.
  if (config_.cache_hit_rate_degrade_milli > 0) {
    if (cache_hits < registry_last_cache_hits_ ||
        cache_misses < registry_last_cache_misses_) {
      registry_last_cache_hits_ = cache_hits;
      registry_last_cache_misses_ = cache_misses;
    } else {
      const std::uint64_t hit_delta = cache_hits - registry_last_cache_hits_;
      const std::uint64_t miss_delta =
          cache_misses - registry_last_cache_misses_;
      const std::uint64_t accesses = hit_delta + miss_delta;
      if (accesses >= config_.cache_min_accesses) {
        registry_last_cache_hits_ = cache_hits;
        registry_last_cache_misses_ = cache_misses;
        if (hit_delta * 1000 <
            config_.cache_hit_rate_degrade_milli * accesses) {
          stats_.cache_trips += 1;
          enter_degraded();
        }
      }
    }
  }

  // (j) fleet collapse. The queue-depth gauge is instantaneous (post-drain
  // backlog) and the decision histogram cumulative, so both are judged only
  // while fleet windows are actually being decided — an idle or quiesced
  // fleet cannot trip on stale history.
  if ((config_.fleet_queue_depth_degrade > 0 ||
       config_.fleet_decision_p99_degrade_ns > 0) &&
      fleet_windows > registry_last_fleet_windows_) {
    registry_last_fleet_windows_ = fleet_windows;
    const bool depth_collapse = config_.fleet_queue_depth_degrade > 0 &&
                                fleet_depth > config_.fleet_queue_depth_degrade;
    const bool latency_collapse =
        config_.fleet_decision_p99_degrade_ns > 0 &&
        fleet_p99 > config_.fleet_decision_p99_degrade_ns;
    if (depth_collapse || latency_collapse) {
      stats_.fleet_trips += 1;
      KML_EVENT(observe::EventId::kFleetOverload, fleet_depth, fleet_p99);
      enter_degraded();
    }
  }

  // (k) SLO burn rate. Judged only while the time-series sampler advances:
  // the burn windows are windows over the ring, and without a fresh sample
  // this poll would re-judge exactly the history the previous poll saw.
  if (config_.slo_burning_to_degrade > 0 &&
      slo_samples > registry_last_slo_samples_) {
    registry_last_slo_samples_ = slo_samples;
    if (slo_burning >= config_.slo_burning_to_degrade) {
      stats_.slo_trips += 1;
      KML_EVENT(observe::EventId::kSloBurn, slo_worst_idx, slo_worst_burn);
      enter_degraded();
    }
  }
#endif  // KML_OBSERVE_ENABLED
}

void HealthMonitor::notify_rollback() {
  std::lock_guard<std::mutex> guard(lock_);
  stats_.rollbacks_seen += 1;
  strikes_ = 0;
  // Restart the divergence baseline: post-rollback losses come from the
  // checkpointed weights, not the diverged ones.
  ewma_primed_ = false;
  if (state() == HealthState::kFailed) enter_degraded();
}

void HealthMonitor::reset() {
  std::lock_guard<std::mutex> guard(lock_);
  state_.store(static_cast<int>(HealthState::kHealthy),
               std::memory_order_release);
  stats_ = HealthStats{};
  strikes_ = 0;
  clean_streak_ = 0;
  ewma_primed_ = false;
  heartbeat_seen_ = false;
  last_heartbeat_ns_.store(0, std::memory_order_release);
  last_submitted_ = 0;
  last_dropped_ = 0;
  registry_primed_ = false;
  registry_last_submitted_ = 0;
  registry_last_dropped_ = 0;
  registry_last_inferences_ = 0;
  registry_last_train_steps_ = 0;
  registry_last_drift_samples_ = 0;
  registry_last_kv_recoveries_ = 0;
  registry_last_kv_torn_ = 0;
  registry_last_cache_hits_ = 0;
  registry_last_cache_misses_ = 0;
  registry_last_fleet_windows_ = 0;
  registry_last_slo_samples_ = 0;
  // New model deployed: resume flight recording for its first incident.
  observe::flight_thaw();
}

HealthStats HealthMonitor::stats() const {
  std::lock_guard<std::mutex> guard(lock_);
  return stats_;
}

}  // namespace kml::runtime
