// workspace.h — preallocated scratch pool for the ML hot path (§3.3).
//
// The paper's memory-reservation discipline: a kernel deployment must not
// call the allocator from the inference/training hot path, because under
// memory pressure an allocation can stall (hurting tail latency) or fail
// (killing a training step). A Workspace is a small fixed set of matrix
// slots, presized once at build/load time and reshaped in place afterwards
// — every steady-state use is allocation-free, and the whole pool's
// footprint is visible through portability's byte accounting. It can also
// bridge to kml_mem_reserve() so the backing bytes come out of the
// up-front arena rather than the system allocator.
#pragma once

#include "matrix/matrix.h"

#include <array>
#include <cstddef>

namespace kml::runtime {

class Workspace {
 public:
  // Fixed slot count: a std::vector here could grow (and therefore
  // allocate) from the hot path, which is exactly what this class exists
  // to prevent.
  static constexpr int kMaxSlots = 8;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  // Scratch slot `i` (0-based). Callers reshape via Mat::ensure_shape, so a
  // slot only ever allocates when it grows past its high-water capacity.
  matrix::MatD& slot(int i) {
    assert(i >= 0 && i < kMaxSlots);
    return slots_[static_cast<std::size_t>(i)];
  }
  const matrix::MatD& slot(int i) const {
    assert(i >= 0 && i < kMaxSlots);
    return slots_[static_cast<std::size_t>(i)];
  }

  // Presize a slot's capacity to rows x cols (shape is left at the warmed
  // size; the next ensure_shape adjusts it without allocating).
  void warm(int i, int rows, int cols) { slot(i).ensure_shape(rows, cols); }

  // Bytes of matrix capacity currently held across all slots — the
  // analytic cross-check against kml_mem_stats() for the pool.
  std::size_t bytes() const;

  // Bridge to the portability reservation arena: carve out `bytes` of
  // payload up front (padded for per-block headers) so subsequent warm()
  // calls — and any other kml_malloc — are served from the arena,
  // lock-free. Returns false if the backing allocation failed or an arena
  // with live blocks is already installed.
  static bool reserve_arena(std::size_t bytes);
  static void release_arena();

 private:
  std::array<matrix::MatD, kMaxSlots> slots_;
};

}  // namespace kml::runtime
