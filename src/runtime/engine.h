// engine.h — the KML engine: mode switching and instrumented inference (§3.3).
//
// "KML can do either training or inference in user or kernel spaces. Also,
// one can switch between training and inference modes as needed." The engine
// wraps a Network with an explicit mode, the fitted normalizer, and latency/
// count instrumentation (the paper reports 21 µs per inference and 51 µs per
// training iteration for the readahead model; bench_overheads reproduces the
// measurement through these counters).
#pragma once

#include "nn/network.h"
#include "nn/quantized.h"
#include "nn/serialize.h"
#include "runtime/health.h"
#include "runtime/workspace.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace kml::runtime {

enum class Mode { kTraining, kInference };

struct EngineStats {
  std::uint64_t inferences = 0;
  std::uint64_t train_iterations = 0;
  std::uint64_t inference_ns_total = 0;
  std::uint64_t train_ns_total = 0;
  // Failure accounting (the health-guard's raw material).
  std::uint64_t invalid_train_steps = 0;  // non-finite loss or weights
  std::uint64_t checkpoints = 0;          // last-known-good snapshots taken
  std::uint64_t rollbacks = 0;            // snapshots restored

  double avg_inference_us() const {
    return inferences == 0
               ? 0.0
               : static_cast<double>(inference_ns_total) / inferences / 1e3;
  }
  double avg_train_us() const {
    return train_iterations == 0
               ? 0.0
               : static_cast<double>(train_ns_total) / train_iterations / 1e3;
  }
};

class Engine {
 public:
  explicit Engine(nn::Network net);

  // Load a deployed model from the KML file format.
  static bool from_file(Engine& out, const char* path);

  Mode mode() const { return mode_; }
  // Mode switching also flips the network's train/eval flag: inference mode
  // disables every backward-pass cache, which is what makes the steady-state
  // inference path allocation-free.
  void set_mode(Mode m) {
    mode_ = m;
    net_.set_training(m == Mode::kTraining);
  }

  // Classify one raw (un-normalized) feature vector. Applies the model's
  // Z-score normalizer, then argmax over the network output. Only legal in
  // inference mode. After the first call at a given feature count, repeat
  // calls perform zero heap allocations (enforced by a ctest guard).
  int infer_class(const double* features, int n);

  // Classify `count` feature vectors in one forward pass. `features` is
  // row-major (count x n); the predicted class of row i lands in
  // classes_out[i]. One matmul over the whole window amortizes the per-call
  // fixed costs that dominate tiny models. Returns the number of rows
  // classified (count, or 0 on bad arguments). Zero-allocation at steady
  // state, like infer_class.
  int infer_batch(const double* features, int n, int count, int* classes_out);

  // infer_batch, plus the raw output activations: scores_out (row-major,
  // count x num_classes()) receives each row of the network's final layer
  // before the argmax. The fleet service uses this to apply a cheap
  // per-tenant output bias on top of the shared model — argmax over
  // (scores + bias) — without a second forward pass. classes_out may be
  // nullptr when the caller computes its own (biased) argmax. Same
  // zero-allocation steady state as infer_batch.
  int infer_batch_scores(const double* features, int n, int count,
                         double* scores_out, int* classes_out);

  // Attach an int8-quantized copy of the model for the fast serving path.
  // The engine takes ownership; pass a default-constructed network (or a
  // kFixed16 one) to detach. The quantized copy is a *serving artifact* of
  // the float network — retraining the float weights does not refresh it;
  // re-quantize and re-attach after a weight update.
  void attach_quantized(nn::QuantizedNetwork q);
  bool has_quantized() const { return quantized_ != nullptr; }
  const nn::QuantizedNetwork* quantized() const { return quantized_.get(); }

  // infer_batch_scores through the attached int8 network. Same shape and
  // return contract as infer_batch_scores; counts toward the same
  // inference stats. Falls back to the float path (with a one-shot warning)
  // when no int8 network is attached. Unlike the float path it skips drift
  // tracking and observe histograms — it is the minimal-overhead serving
  // fast path; callers that want drift accounting use the float path.
  int infer_batch_scores_int8(const double* features, int n, int count,
                              double* scores_out, int* classes_out);

  // Output width of the model (classes for a classifier); 0 when the
  // network has no shaped layers.
  int num_classes();

  // Input width of the model; 0 when the network has no shaped layers.
  int num_features() { return model_in_features(); }

  // Presize every hot-path buffer — the network's forward/backward scratch,
  // the engine's input staging slots, and the checkpoint shadow — for
  // batches of up to `max_batch_rows` rows, so even the *first* inference
  // or training step allocates nothing. The §3.3 "reserve before use"
  // discipline, applied at model build/load time.
  void warm_up(int max_batch_rows);

  // One SGD iteration on a batch (training mode only). Returns the loss.
  //
  // The step is *validated*: if the loss and every weight are finite, the
  // engine checkpoints the weights as last-known-good; otherwise it counts
  // an invalid step and keeps the previous checkpoint. Either way the
  // outcome is reported to the attached HealthMonitor (if any).
  double train_batch(const matrix::MatD& x, const matrix::MatD& y,
                     nn::Loss& loss, nn::Optimizer& opt);

  // Health-guard integration: outcomes of train_batch feed `monitor`
  // (observe_train_step), and rollback() notifies it. Pass nullptr to
  // detach. The monitor must outlive the engine.
  void attach_health(HealthMonitor* monitor) { health_ = monitor; }
  HealthMonitor* health() const { return health_; }

  // Last-known-good weight management. checkpoint() snapshots the current
  // weights unconditionally (called automatically after validated train
  // steps); rollback() restores the snapshot and returns false when none
  // exists. A successful rollback informs the attached monitor.
  //
  // Rollback restores *weights only*: optimizer state (momentum/Adam
  // moments) lives in the caller's Optimizer and still holds values from
  // the bad step — re-attach() the optimizer after a rollback, which
  // recreates its state buffers zeroed.
  void checkpoint();
  bool has_checkpoint() const { return has_checkpoint_; }
  bool rollback();

  // True when every parameter of the network is finite.
  bool weights_finite();

  // Input-drift tracking: infer_class/infer_batch feed every raw feature
  // row into this tracker, whose baseline is the normalizer's (frozen)
  // training-time moments. The max |z| is published to the registry
  // ("data.drift.max_z_milli") so the health monitor can watch it.
  const data::DriftTracker& drift() const { return drift_; }
  // Re-adopt the normalizer's current moments (e.g. after a refit).
  void rebaseline_drift();

  nn::Network& network() { return net_; }
  Workspace& workspace() { return ws_; }
  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EngineStats{}; }

 private:
  // Workspace slot assignments.
  static constexpr int kSlotInferIn = 0;  // 1 x n single-sample staging
  static constexpr int kSlotBatchIn = 1;  // count x n batched staging

  int model_in_features();

  // Shared body of infer_batch / infer_batch_scores; either output may be
  // nullptr (but not both — the callers enforce that).
  int infer_batch_impl(const double* features, int n, int count,
                       int* classes_out, double* scores_out);

  // Per-step model introspection (loss + per-layer gradient/weight-delta
  // norms) into the observe ring; no-op when observe is disabled. Must stay
  // allocation-free: it reads params_/good_params_ and the cached
  // param_layer_ map only.
  void record_introspection(double loss, bool valid, std::uint64_t ts_ns);
  // Drift bookkeeping shared by the infer paths.
  void observe_drift_row(const double* features, int n);
  // Top-2 output margin of `row`, milli-scaled, recorded as the
  // prediction-confidence histogram.
  static std::int64_t confidence_milli(const matrix::MatD& out, int row);

  nn::Network net_;
  Mode mode_ = Mode::kInference;
  EngineStats stats_;
  // Input staging pool; reshaped in place on the hot path.
  Workspace ws_;
  // net_.params() materializes a fresh vector per call; cached once here.
  // ParamRefs point into Layer-owned matrices, whose addresses survive
  // Network moves (layers are held by unique_ptr).
  std::vector<nn::ParamRef> params_;
  // Last-known-good parameter values, in params() order.
  std::vector<matrix::MatD> good_params_;
  bool has_checkpoint_ = false;
  HealthMonitor* health_ = nullptr;
  // params_[i] belongs to trainable layer param_layer_[i] (introspection
  // attribution; built once at construction).
  std::vector<int> param_layer_;
  int trainable_layers_ = 0;
  data::DriftTracker drift_;
  // Optional int8 serving copy (attach_quantized); null until attached.
  std::unique_ptr<nn::QuantizedNetwork> quantized_;
  bool int8_fallback_logged_ = false;
};

}  // namespace kml::runtime
