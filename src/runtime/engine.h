// engine.h — the KML engine: mode switching and instrumented inference (§3.3).
//
// "KML can do either training or inference in user or kernel spaces. Also,
// one can switch between training and inference modes as needed." The engine
// wraps a Network with an explicit mode, the fitted normalizer, and latency/
// count instrumentation (the paper reports 21 µs per inference and 51 µs per
// training iteration for the readahead model; bench_overheads reproduces the
// measurement through these counters).
#pragma once

#include "nn/network.h"
#include "nn/serialize.h"

#include <chrono>
#include <cstdint>

namespace kml::runtime {

enum class Mode { kTraining, kInference };

struct EngineStats {
  std::uint64_t inferences = 0;
  std::uint64_t train_iterations = 0;
  std::uint64_t inference_ns_total = 0;
  std::uint64_t train_ns_total = 0;

  double avg_inference_us() const {
    return inferences == 0
               ? 0.0
               : static_cast<double>(inference_ns_total) / inferences / 1e3;
  }
  double avg_train_us() const {
    return train_iterations == 0
               ? 0.0
               : static_cast<double>(train_ns_total) / train_iterations / 1e3;
  }
};

class Engine {
 public:
  explicit Engine(nn::Network net);

  // Load a deployed model from the KML file format.
  static bool from_file(Engine& out, const char* path);

  Mode mode() const { return mode_; }
  void set_mode(Mode m) { mode_ = m; }

  // Classify one raw (un-normalized) feature vector. Applies the model's
  // Z-score normalizer, then argmax over the network output. Only legal in
  // inference mode.
  int infer_class(const double* features, int n);

  // One SGD iteration on a batch (training mode only). Returns the loss.
  double train_batch(const matrix::MatD& x, const matrix::MatD& y,
                     nn::Loss& loss, nn::Optimizer& opt);

  nn::Network& network() { return net_; }
  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EngineStats{}; }

 private:
  nn::Network net_;
  Mode mode_ = Mode::kInference;
  EngineStats stats_;
};

}  // namespace kml::runtime
