// training_thread.h — the asynchronous training/normalization thread (§3.2).
//
// Data collection happens inline on latency-sensitive paths (the I/O path in
// the readahead case study); normalization and training are "offloaded to a
// separate asynchronous kernel thread" so the hot path never enables the FPU
// or blocks. The channel is the lock-free circular buffer; the only thing a
// user supplies is the training function pointer — exactly the programming
// model the paper describes ("the only information users need to provide in
// the model-initialization code is a pointer to the model's training
// function").
//
// KML currently supports one training thread (chain graphs are processed
// serially); this class enforces that by owning the consumer side outright.
#pragma once

#include "data/sharded_buffer.h"
#include "data/windower.h"
#include "portability/thread.h"
#include "runtime/health.h"

#include <atomic>
#include <cstddef>

namespace kml::runtime {

// Called on the training thread with a drained batch of records.
// `user` is the opaque pointer given at construction.
using train_fn = void (*)(void* user, const data::TraceRecord* records,
                          std::size_t count);

class TrainingThread {
 public:
  // Starts the thread immediately. `buffer_capacity` caps memory (§3.1);
  // `batch` is the max records handed to one train_fn call. `shards` splits
  // the collection ring into per-producer SPSC shards (1 = the classic
  // single ring): producers on distinct shards never touch a shared cache
  // line, matching per-CPU collection hooks.
  TrainingThread(std::size_t buffer_capacity, std::size_t batch,
                 train_fn fn, void* user, unsigned shards = 1);

  // Stops and joins the thread; remaining buffered records are drained
  // through one final train_fn call sequence first.
  ~TrainingThread();

  TrainingThread(const TrainingThread&) = delete;
  TrainingThread& operator=(const TrainingThread&) = delete;

  // Producer API — wait-free, safe from exactly one producer thread *per
  // shard*. `shard` is the producer's stable id (per-CPU hooks pass their
  // CPU number); ids beyond shard_count() fold back modulo. Returns false
  // when the shard is full (the record is dropped and counted).
  bool submit(const data::TraceRecord& record, unsigned shard = 0);

  unsigned shard_count() const { return buffer_.shard_count(); }

  // Records handed to train_fn so far.
  std::uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }

  // Records lost to a full buffer (the accuracy-vs-memory tradeoff knob).
  std::uint64_t dropped() const { return buffer_.dropped(); }

  std::size_t buffer_capacity() const { return buffer_.capacity(); }

  // Health-guard integration: once attached, the trainer loop heartbeats
  // the monitor (wall-clock ns) and feeds it drop-rate (and optionally
  // inference-latency) signals from the metrics registry, falling back to
  // the private processed/dropped counters when observe is off. Safe to
  // attach/detach while running; the monitor must outlive this thread.
  void attach_health(HealthMonitor* monitor) {
    health_.store(monitor, std::memory_order_release);
    // Prime the registry baselines synchronously on the attaching thread:
    // if priming waited for the trainer loop's first poll, a burst of
    // submissions racing the thread's first scheduling would be absorbed
    // into the baseline and never judged.
    if (monitor != nullptr && observe::enabled()) {
      monitor->observe_registry();
    }
  }

 private:
  static void thread_main(void* self);
  void run();
  // One train_fn call: timed span + processed/records accounting.
  void run_batch(data::TraceRecord* records, std::size_t n);

  data::ShardedBuffer<data::TraceRecord> buffer_;
  std::size_t batch_;
  train_fn fn_;
  void* user_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> processed_{0};
  // Batch sequence number (trainer thread only); flight-recorder span id.
  std::uint64_t batch_seq_ = 0;
  std::atomic<HealthMonitor*> health_{nullptr};
  KmlThread* thread_ = nullptr;
};

}  // namespace kml::runtime
