#include "runtime/training_thread.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "portability/log.h"

#include <vector>

namespace kml::runtime {

TrainingThread::TrainingThread(std::size_t buffer_capacity, std::size_t batch,
                               train_fn fn, void* user, unsigned shards)
    : buffer_(buffer_capacity, shards),
      batch_(batch == 0 ? 1 : batch),
      fn_(fn),
      user_(user) {
  thread_ = kml_thread_create(&TrainingThread::thread_main, this,
                              "kml-trainer");
  if (thread_ == nullptr) {
    KML_ERROR("TrainingThread: failed to spawn trainer thread");
  }
}

TrainingThread::~TrainingThread() {
  stop_.store(true, std::memory_order_release);
  kml_thread_join(thread_);
}

bool TrainingThread::submit(const data::TraceRecord& record, unsigned shard) {
  return buffer_.push(record, shard);
}

void TrainingThread::thread_main(void* self) {
  static_cast<TrainingThread*>(self)->run();
}

void TrainingThread::run_batch(data::TraceRecord* records, std::size_t n) {
  // Batch seq is the pre-increment count: begin/end share it as arg0, which
  // is what lets the exporter stitch them into one Chrome-trace span.
  const std::uint64_t seq = ++batch_seq_;
  (void)seq;  // unused when KML_OBSERVE=OFF compiles the events away
  KML_EVENT(observe::EventId::kTrainBatchBegin, seq, n);
  {
    KML_SPAN_NS(observe::kMetricTrainBatchNs);
    if (fn_ != nullptr) fn_(user_, records, n);
  }
  KML_EVENT(observe::EventId::kTrainBatchEnd, seq, n);
  processed_.fetch_add(n, std::memory_order_relaxed);
  KML_COUNTER_INC(observe::kMetricTrainerBatches);
  KML_COUNTER_ADD(observe::kMetricTrainerRecords, n);
}

void TrainingThread::run() {
  std::vector<data::TraceRecord> scratch(batch_);
  for (;;) {
    // Liveness + drop-rate signals for the health guard. The heartbeat is
    // wall-clock: a stalled (or deadlocked) train_fn stops it, which is
    // exactly what the watchdog is for. Drop-rate (and the optional
    // inference-latency guard) come from the metrics registry — the single
    // source of truth — with the private counters as the fallback when the
    // observe layer is compiled out or disabled at runtime.
    if (HealthMonitor* monitor = health_.load(std::memory_order_acquire)) {
      monitor->heartbeat(kml_now_ns());
      if (observe::enabled()) {
        monitor->observe_registry();
      } else {
        const std::uint64_t dropped = buffer_.dropped();
        monitor->observe_buffer(
            processed_.load(std::memory_order_relaxed) + buffer_.size() +
                dropped,
            dropped);
      }
    }
    const std::size_t n = buffer_.pop_many(scratch.data(), batch_);
    if (n > 0) {
      run_batch(scratch.data(), n);
      continue;  // keep draining while there is work
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Final drain after stop: consume whatever raced in.
      const std::size_t rest = buffer_.pop_many(scratch.data(), batch_);
      if (rest > 0) {
        run_batch(scratch.data(), rest);
        continue;
      }
      return;
    }
    kml_sleep_ms(1);
  }
}

}  // namespace kml::runtime
