#include "runtime/engine.h"

#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "portability/log.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace kml::runtime {

Engine::Engine(nn::Network net) : net_(std::move(net)) {}

bool Engine::from_file(Engine& out, const char* path) {
  nn::Network net;
  if (!nn::load_model(net, path)) return false;
  out = Engine(std::move(net));
  return true;
}

int Engine::infer_class(const double* features, int n) {
  assert(mode_ == Mode::kInference);
  const std::uint64_t start = kml_now_ns();

  // Normalize a copy of the features with the deployed moments.
  std::vector<double> z(features, features + n);
  net_.normalizer().transform_row(z.data(), n);

  matrix::MatD x(1, n);
  for (int j = 0; j < n; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
  const matrix::MatI pred = net_.predict_classes(x);

  stats_.inferences += 1;
  const std::uint64_t elapsed = kml_now_ns() - start;
  stats_.inference_ns_total += elapsed;
  KML_HIST_RECORD(observe::kMetricInferenceNs, elapsed);
  return pred.at(0, 0);
}

double Engine::train_batch(const matrix::MatD& x, const matrix::MatD& y,
                           nn::Loss& loss, nn::Optimizer& opt) {
  assert(mode_ == Mode::kTraining);
  const std::uint64_t start = kml_now_ns();
  const double l = net_.train_step(x, y, loss, opt);
  stats_.train_iterations += 1;
  stats_.train_ns_total += kml_now_ns() - start;

  // Validate before the step's weights can become the rollback target: a
  // non-finite loss or any non-finite weight keeps the previous checkpoint.
  const bool valid = std::isfinite(l) && weights_finite();
  if (valid) {
    checkpoint();
  } else {
    stats_.invalid_train_steps += 1;
    KML_COUNTER_INC(observe::kMetricEngineInvalidSteps);
    KML_WARN("engine: invalid train step (loss=%f); checkpoint withheld", l);
  }
  if (health_ != nullptr) health_->observe_train_step(l, valid);
  return l;
}

bool Engine::weights_finite() {
  for (const nn::ParamRef& p : net_.params()) {
    const matrix::MatD& m = *p.value;
    const double* data = m.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!std::isfinite(data[i])) return false;
    }
  }
  return true;
}

void Engine::checkpoint() {
  const std::vector<nn::ParamRef> params = net_.params();
  good_params_.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    good_params_[i] = *params[i].value;  // deep copy
  }
  has_checkpoint_ = true;
  stats_.checkpoints += 1;
  KML_COUNTER_INC(observe::kMetricEngineCheckpoints);
}

bool Engine::rollback() {
  if (!has_checkpoint_) return false;
  const std::vector<nn::ParamRef> params = net_.params();
  if (params.size() != good_params_.size()) return false;  // topology changed
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i].value->same_shape(good_params_[i])) return false;
    *params[i].value = good_params_[i];
  }
  stats_.rollbacks += 1;
  KML_COUNTER_INC(observe::kMetricEngineRollbacks);
  KML_INFO("engine: rolled back to last-known-good weights");
  if (health_ != nullptr) health_->notify_rollback();
  return true;
}

}  // namespace kml::runtime
