#include "runtime/engine.h"

#include "portability/log.h"

#include <cassert>
#include <vector>

namespace kml::runtime {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Engine::Engine(nn::Network net) : net_(std::move(net)) {}

bool Engine::from_file(Engine& out, const char* path) {
  nn::Network net;
  if (!nn::load_model(net, path)) return false;
  out = Engine(std::move(net));
  return true;
}

int Engine::infer_class(const double* features, int n) {
  assert(mode_ == Mode::kInference);
  const std::uint64_t start = now_ns();

  // Normalize a copy of the features with the deployed moments.
  std::vector<double> z(features, features + n);
  net_.normalizer().transform_row(z.data(), n);

  matrix::MatD x(1, n);
  for (int j = 0; j < n; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
  const matrix::MatI pred = net_.predict_classes(x);

  stats_.inferences += 1;
  stats_.inference_ns_total += now_ns() - start;
  return pred.at(0, 0);
}

double Engine::train_batch(const matrix::MatD& x, const matrix::MatD& y,
                           nn::Loss& loss, nn::Optimizer& opt) {
  assert(mode_ == Mode::kTraining);
  const std::uint64_t start = now_ns();
  const double l = net_.train_step(x, y, loss, opt);
  stats_.train_iterations += 1;
  stats_.train_ns_total += now_ns() - start;
  return l;
}

}  // namespace kml::runtime
