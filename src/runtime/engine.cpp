#include "runtime/engine.h"

#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "portability/log.h"
#include "portability/threadpool.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace kml::runtime {

namespace {

// Argmax over one output row — the allocation-free core of argmax_rows.
int argmax_row(const matrix::MatD& m, int row) {
  const double* r = m.row(row);
  int best = 0;
  for (int j = 1; j < m.cols(); ++j) {
    if (r[j] > r[best]) best = j;
  }
  return best;
}

}  // namespace

Engine::Engine(nn::Network net) : net_(std::move(net)) {
  params_ = net_.params();
  net_.set_training(mode_ == Mode::kTraining);
}

bool Engine::from_file(Engine& out, const char* path) {
  nn::Network net;
  if (!nn::load_model(net, path)) return false;
  out = Engine(std::move(net));
  return true;
}

int Engine::model_in_features() {
  for (int i = 0; i < net_.num_layers(); ++i) {
    const int in = net_.layer(i).in_features();
    if (in > 0) return in;
  }
  return 0;
}

void Engine::warm_up(int max_batch_rows) {
  if (max_batch_rows <= 0) return;
  net_.reserve_scratch(max_batch_rows);
  const int n = model_in_features();
  if (n > 0) {
    ws_.warm(kSlotInferIn, 1, n);
    ws_.warm(kSlotBatchIn, max_batch_rows, n);
  }
  // Shadow copies for checkpoint() at the parameter shapes (contents are
  // garbage until the first real checkpoint; has_checkpoint_ stays false).
  good_params_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    good_params_[i].ensure_shape(params_[i].value->rows(),
                                 params_[i].value->cols());
  }
}

int Engine::infer_class(const double* features, int n) {
  assert(mode_ == Mode::kInference);
  const std::uint64_t start = kml_now_ns();

  // Stage and normalize in workspace scratch (the deployed moments are
  // frozen; transform_row works in place).
  matrix::MatD& x = ws_.slot(kSlotInferIn);
  x.ensure_shape(1, n);
  for (int j = 0; j < n; ++j) x.at(0, j) = features[j];
  net_.normalizer().transform_row(x.row(0), n);

  const matrix::MatD& out = net_.forward_scratch(x);
  const int pred = argmax_row(out, 0);

  stats_.inferences += 1;
  const std::uint64_t elapsed = kml_now_ns() - start;
  stats_.inference_ns_total += elapsed;
  KML_HIST_RECORD(observe::kMetricInferenceNs, elapsed);
  return pred;
}

int Engine::infer_batch(const double* features, int n, int count,
                        int* classes_out) {
  assert(mode_ == Mode::kInference);
  if (features == nullptr || classes_out == nullptr || n <= 0 || count <= 0) {
    return 0;
  }
  const std::uint64_t start = kml_now_ns();

  matrix::MatD& x = ws_.slot(kSlotBatchIn);
  x.ensure_shape(count, n);
  // Rows are staged/normalized and argmax'd independently, so both loops
  // partition across the pool (bit-identical at any thread count); the
  // forward pass parallelizes inside the matmul kernels. Grain keeps a few
  // thousand elements per chunk so small batches stay serial.
  const long row_grain = n > 0 ? (4096 + n - 1) / n : 1;
  parallel_for(count, row_grain, [&](long i0, long i1, int) {
    for (long i = i0; i < i1; ++i) {
      double* xrow = x.row(static_cast<int>(i));
      const double* frow = features + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) xrow[j] = frow[j];
      net_.normalizer().transform_row(xrow, n);
    }
  });

  const matrix::MatD& out = net_.forward_scratch(x);
  const long out_grain =
      out.cols() > 0 ? (4096 + out.cols() - 1) / out.cols() : 1;
  parallel_for(count, out_grain, [&](long i0, long i1, int) {
    for (long i = i0; i < i1; ++i) {
      classes_out[i] = argmax_row(out, static_cast<int>(i));
    }
  });

  stats_.inferences += static_cast<std::uint64_t>(count);
  const std::uint64_t elapsed = kml_now_ns() - start;
  stats_.inference_ns_total += elapsed;
  KML_HIST_RECORD(observe::kMetricInferenceNs, elapsed);
  return count;
}

double Engine::train_batch(const matrix::MatD& x, const matrix::MatD& y,
                           nn::Loss& loss, nn::Optimizer& opt) {
  assert(mode_ == Mode::kTraining);
  const std::uint64_t start = kml_now_ns();
  const double l = net_.train_step(x, y, loss, opt);
  stats_.train_iterations += 1;
  stats_.train_ns_total += kml_now_ns() - start;

  // Validate before the step's weights can become the rollback target: a
  // non-finite loss or any non-finite weight keeps the previous checkpoint.
  const bool valid = std::isfinite(l) && weights_finite();
  if (valid) {
    checkpoint();
  } else {
    stats_.invalid_train_steps += 1;
    KML_COUNTER_INC(observe::kMetricEngineInvalidSteps);
    KML_WARN("engine: invalid train step (loss=%f); checkpoint withheld", l);
  }
  if (health_ != nullptr) health_->observe_train_step(l, valid);
  return l;
}

bool Engine::weights_finite() {
  for (const nn::ParamRef& p : params_) {
    const matrix::MatD& m = *p.value;
    const double* data = m.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!std::isfinite(data[i])) return false;
    }
  }
  return true;
}

void Engine::checkpoint() {
  good_params_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    // Deep copy into retained storage: after the first checkpoint (or a
    // warm_up), per-step snapshots never touch the allocator.
    good_params_[i].copy_from(*params_[i].value);
  }
  has_checkpoint_ = true;
  stats_.checkpoints += 1;
  KML_COUNTER_INC(observe::kMetricEngineCheckpoints);
}

bool Engine::rollback() {
  if (!has_checkpoint_) return false;
  if (params_.size() != good_params_.size()) return false;  // topology changed
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].value->same_shape(good_params_[i])) return false;
    params_[i].value->copy_from(good_params_[i]);
  }
  stats_.rollbacks += 1;
  KML_COUNTER_INC(observe::kMetricEngineRollbacks);
  KML_INFO("engine: rolled back to last-known-good weights");
  if (health_ != nullptr) health_->notify_rollback();
  return true;
}

}  // namespace kml::runtime
