#include "runtime/engine.h"

#include "observe/flight_recorder.h"
#include "observe/introspect.h"
#include "observe/metrics.h"
#include "portability/fault.h"
#include "portability/kml_lib.h"
#include "portability/log.h"
#include "portability/threadpool.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace kml::runtime {

namespace {

// Argmax over one output row — the allocation-free core of argmax_rows.
int argmax_row(const matrix::MatD& m, int row) {
  const double* r = m.row(row);
  int best = 0;
  for (int j = 1; j < m.cols(); ++j) {
    if (r[j] > r[best]) best = j;
  }
  return best;
}

// Milli-scale a double with saturation; the bridge from the FPU-using
// runtime layer into observe's integer-only channel.
std::int64_t to_milli(double v) {
  double m = v * 1000.0;
  if (m > 9e18) m = 9e18;
  if (m < -9e18) m = -9e18;
  return static_cast<std::int64_t>(m);
}

// How often the infer paths publish the drift gauge (power of two so the
// check is a mask).
constexpr std::uint64_t kDriftPublishEvery = 64;

}  // namespace

Engine::Engine(nn::Network net) : net_(std::move(net)) {
  params_ = net_.params();
  net_.set_training(mode_ == Mode::kTraining);
  // Attribute each flat param to its trainable layer once — Layer::params()
  // allocates, so the mapping must never be rebuilt on the train path.
  param_layer_.clear();
  trainable_layers_ = 0;
  for (int li = 0; li < net_.num_layers(); ++li) {
    const std::size_t k = net_.layer(li).params().size();
    if (k == 0) continue;
    for (std::size_t i = 0; i < k; ++i) param_layer_.push_back(trainable_layers_);
    ++trainable_layers_;
  }
  rebaseline_drift();
}

void Engine::rebaseline_drift() { drift_.set_baseline(net_.normalizer()); }

bool Engine::from_file(Engine& out, const char* path) {
  nn::Network net;
  if (!nn::load_model(net, path)) return false;
  out = Engine(std::move(net));
  return true;
}

int Engine::model_in_features() {
  for (int i = 0; i < net_.num_layers(); ++i) {
    const int in = net_.layer(i).in_features();
    if (in > 0) return in;
  }
  return 0;
}

void Engine::warm_up(int max_batch_rows) {
  if (max_batch_rows <= 0) return;
  net_.reserve_scratch(max_batch_rows);
  const int n = model_in_features();
  if (n > 0) {
    ws_.warm(kSlotInferIn, 1, n);
    ws_.warm(kSlotBatchIn, max_batch_rows, n);
  }
  // Shadow copies for checkpoint() at the parameter shapes (contents are
  // garbage until the first real checkpoint; has_checkpoint_ stays false).
  good_params_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    good_params_[i].ensure_shape(params_[i].value->rows(),
                                 params_[i].value->cols());
  }
}

int Engine::infer_class(const double* features, int n) {
  assert(mode_ == Mode::kInference);
  const std::uint64_t start = kml_now_ns();

  observe_drift_row(features, n);

  // Stage and normalize in workspace scratch (the deployed moments are
  // frozen; transform_row works in place).
  matrix::MatD& x = ws_.slot(kSlotInferIn);
  x.ensure_shape(1, n);
  for (int j = 0; j < n; ++j) x.at(0, j) = features[j];
  net_.normalizer().transform_row(x.row(0), n);

  const matrix::MatD& out = net_.forward_scratch(x);
  const int pred = argmax_row(out, 0);
  if (observe::enabled()) {
    KML_HIST_RECORD(observe::kMetricConfidenceMilli,
                    static_cast<std::uint64_t>(confidence_milli(out, 0)));
  }

  stats_.inferences += 1;
  const std::uint64_t elapsed = kml_now_ns() - start;
  stats_.inference_ns_total += elapsed;
  KML_HIST_RECORD(observe::kMetricInferenceNs, elapsed);
  return pred;
}

int Engine::num_classes() {
  for (int i = net_.num_layers() - 1; i >= 0; --i) {
    const int out = net_.layer(i).out_features();
    if (out > 0) return out;
  }
  return 0;
}

int Engine::infer_batch(const double* features, int n, int count,
                        int* classes_out) {
  if (classes_out == nullptr) return 0;
  return infer_batch_impl(features, n, count, classes_out, nullptr);
}

int Engine::infer_batch_scores(const double* features, int n, int count,
                               double* scores_out, int* classes_out) {
  if (scores_out == nullptr) return 0;
  return infer_batch_impl(features, n, count, classes_out, scores_out);
}

void Engine::attach_quantized(nn::QuantizedNetwork q) {
  if (q.mode() != nn::QuantMode::kInt8 || q.num_layers() == 0) {
    quantized_.reset();
    return;
  }
  quantized_ = std::make_unique<nn::QuantizedNetwork>(std::move(q));
  int8_fallback_logged_ = false;
}

int Engine::infer_batch_scores_int8(const double* features, int n, int count,
                                    double* scores_out, int* classes_out) {
  if (quantized_ == nullptr) {
    if (!int8_fallback_logged_) {
      int8_fallback_logged_ = true;
      KML_WARN("Engine::infer_batch_scores_int8: no int8 network attached; "
               "serving through the float path");
    }
    return infer_batch_scores(features, n, count, scores_out, classes_out);
  }
  const std::uint64_t start = kml_now_ns();
  const int done =
      quantized_->infer_batch_scores(features, n, count, scores_out,
                                     classes_out);
  if (done > 0) {
    stats_.inferences += static_cast<std::uint64_t>(done);
    stats_.inference_ns_total += kml_now_ns() - start;
  }
  return done;
}

int Engine::infer_batch_impl(const double* features, int n, int count,
                             int* classes_out, double* scores_out) {
  assert(mode_ == Mode::kInference);
  if (features == nullptr || n <= 0 || count <= 0) {
    return 0;
  }
  const std::uint64_t start = kml_now_ns();

  matrix::MatD& x = ws_.slot(kSlotBatchIn);
  x.ensure_shape(count, n);
  // Rows are staged/normalized and argmax'd independently, so both loops
  // partition across the pool (bit-identical at any thread count); the
  // forward pass parallelizes inside the matmul kernels. Grain keeps a few
  // thousand elements per chunk so small batches stay serial.
  const long row_grain = n > 0 ? (4096 + n - 1) / n : 1;
  parallel_for(count, row_grain, [&](long i0, long i1, int) {
    for (long i = i0; i < i1; ++i) {
      double* xrow = x.row(static_cast<int>(i));
      const double* frow = features + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) xrow[j] = frow[j];
      net_.normalizer().transform_row(xrow, n);
    }
  });

  // Drift sees raw rows (pre-normalization) on the consumer thread; the
  // tracker is not thread-safe so this stays outside the parallel region.
  for (int i = 0; i < count; ++i) {
    observe_drift_row(features + static_cast<std::size_t>(i) * n, n);
  }

  const matrix::MatD& out = net_.forward_scratch(x);
  const long out_grain =
      out.cols() > 0 ? (4096 + out.cols() - 1) / out.cols() : 1;
  parallel_for(count, out_grain, [&](long i0, long i1, int) {
    for (long i = i0; i < i1; ++i) {
      if (classes_out != nullptr) {
        classes_out[i] = argmax_row(out, static_cast<int>(i));
      }
      if (scores_out != nullptr) {
        const double* src = out.row(static_cast<int>(i));
        double* dst = scores_out + static_cast<std::size_t>(i) * out.cols();
        for (int j = 0; j < out.cols(); ++j) dst[j] = src[j];
      }
    }
  });
  if (observe::enabled()) {
    // Confidence is a distribution read via percentiles, so the batched
    // path stride-samples 1 row in 8: the top-2 margin scan plus a
    // histogram record per row was a measurable slice of fleet serving
    // throughput, and every batch still contributes its first row. The
    // single-row infer path above records every decision — per-decision
    // consumers (confidence gating) live there.
    for (int i = 0; i < count; i += 8) {
      KML_HIST_RECORD(observe::kMetricConfidenceMilli,
                      static_cast<std::uint64_t>(confidence_milli(out, i)));
    }
  }

  stats_.inferences += static_cast<std::uint64_t>(count);
  const std::uint64_t elapsed = kml_now_ns() - start;
  stats_.inference_ns_total += elapsed;
  KML_HIST_RECORD(observe::kMetricInferenceNs, elapsed);
  return count;
}

double Engine::train_batch(const matrix::MatD& x, const matrix::MatD& y,
                           nn::Loss& loss, nn::Optimizer& opt) {
  assert(mode_ == Mode::kTraining);
  const std::uint64_t start = kml_now_ns();
  const double l = net_.train_step(x, y, loss, opt);
  stats_.train_iterations += 1;
  const std::uint64_t end = kml_now_ns();
  stats_.train_ns_total += end - start;

  // Validate before the step's weights can become the rollback target: a
  // non-finite loss or any non-finite weight keeps the previous checkpoint.
  bool valid = std::isfinite(l) && weights_finite();
  // Fault-injection rehearsal: treat the step as invalid even though the
  // math succeeded, so the rollback/health/flight-recorder causal chain can
  // be exercised deterministically.
  if (kml_fault_should_fail(FaultSite::kTrainStep)) {
    KML_EVENT(observe::EventId::kFaultInjected,
              static_cast<std::uint64_t>(FaultSite::kTrainStep),
              kml_fault_injected(FaultSite::kTrainStep));
    valid = false;
  }
  KML_COUNTER_INC(observe::kMetricTrainSteps);
  KML_EVENT(observe::EventId::kEngineTrainStep, stats_.train_iterations,
            static_cast<std::uint64_t>(to_milli(l)));

  // Introspection samples the gradients and the weight motion *before*
  // checkpoint() overwrites good_params_ with this step's weights.
  record_introspection(l, valid, end);

  if (valid) {
    checkpoint();
  } else {
    stats_.invalid_train_steps += 1;
    KML_COUNTER_INC(observe::kMetricEngineInvalidSteps);
    KML_EVENT(observe::EventId::kEngineInvalidStep, stats_.train_iterations,
              static_cast<std::uint64_t>(to_milli(l)));
    KML_WARN("engine: invalid train step (loss=%f); checkpoint withheld", l);
  }
  if (health_ != nullptr) health_->observe_train_step(l, valid);
  return l;
}

void Engine::record_introspection(double loss, bool valid,
                                  std::uint64_t ts_ns) {
  if (!observe::enabled()) return;
  observe::StepSample s{};
  s.step = stats_.train_iterations;
  s.ts_ns = ts_ns;
  s.loss_milli = to_milli(loss);
  s.valid = valid ? 1 : 0;
  constexpr int kMaxLayers = static_cast<int>(observe::kIntrospectLayers);
  const int layers = trainable_layers_ < kMaxLayers ? trainable_layers_
                                                    : kMaxLayers;
  s.num_layers = static_cast<std::uint32_t>(layers);
  // Accumulate per-layer sums of squares in one flat pass over the params;
  // the layer attribution comes from the cached param_layer_ map.
  double grad_sq[observe::kIntrospectLayers] = {0.0};
  double delta_sq[observe::kIntrospectLayers] = {0.0};
  const bool have_prev =
      has_checkpoint_ && good_params_.size() == params_.size();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    // Layers beyond the sample's capacity fold into the last slot.
    int li = param_layer_[i];
    if (li >= kMaxLayers) li = kMaxLayers - 1;
    const matrix::MatD& g = *params_[i].grad;
    const double* gd = g.data();
    double acc = 0.0;
    for (std::size_t k = 0; k < g.size(); ++k) acc += gd[k] * gd[k];
    grad_sq[li] += acc;
    if (have_prev && params_[i].value->same_shape(good_params_[i])) {
      const double* va = params_[i].value->data();
      const double* vb = good_params_[i].data();
      double dacc = 0.0;
      for (std::size_t k = 0; k < params_[i].value->size(); ++k) {
        const double d = va[k] - vb[k];
        dacc += d * d;
      }
      delta_sq[li] += dacc;
    }
  }
  std::int64_t worst_grad_milli = 0;
  for (int li = 0; li < layers; ++li) {
    const std::int64_t gm = to_milli(std::sqrt(grad_sq[li]));
    s.grad_norm_milli[li] = gm;
    s.wdelta_norm_milli[li] = to_milli(std::sqrt(delta_sq[li]));
    if (gm > worst_grad_milli) worst_grad_milli = gm;
  }
  observe::introspect_record(s);
  // The health monitor's gradient-explosion signal reads this gauge, gated
  // on the train-step counter advancing.
  KML_GAUGE_SET(observe::kMetricGradNormMilli,
                static_cast<std::uint64_t>(worst_grad_milli));
}

void Engine::observe_drift_row(const double* features, int n) {
  if (!drift_.active()) return;
  drift_.observe_row(features, n);
  if ((drift_.samples() & (kDriftPublishEvery - 1)) != 0) return;
  const std::int64_t z = drift_.max_z_milli();
  (void)z;  // unused when KML_OBSERVE=OFF compiles the sinks away
  KML_GAUGE_SET(observe::kMetricDriftZMilli, static_cast<std::uint64_t>(z));
  KML_GAUGE_SET(observe::kMetricDriftSamples, drift_.samples());
  KML_EVENT(observe::EventId::kDriftSample, static_cast<std::uint64_t>(z),
            drift_.samples());
}

std::int64_t Engine::confidence_milli(const matrix::MatD& out, int row) {
  const double* r = out.row(row);
  const int cols = out.cols();
  if (cols == 1) return to_milli(r[0]);
  double best = r[0], second = r[1];
  if (second > best) {
    best = r[1];
    second = r[0];
  }
  for (int j = 2; j < cols; ++j) {
    if (r[j] > best) {
      second = best;
      best = r[j];
    } else if (r[j] > second) {
      second = r[j];
    }
  }
  // Top-2 margin: ~0 means the classifier was torn between two classes.
  std::int64_t m = to_milli(best - second);
  return m < 0 ? 0 : m;
}

bool Engine::weights_finite() {
  for (const nn::ParamRef& p : params_) {
    const matrix::MatD& m = *p.value;
    const double* data = m.data();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (!std::isfinite(data[i])) return false;
    }
  }
  return true;
}

void Engine::checkpoint() {
  good_params_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    // Deep copy into retained storage: after the first checkpoint (or a
    // warm_up), per-step snapshots never touch the allocator.
    good_params_[i].copy_from(*params_[i].value);
  }
  has_checkpoint_ = true;
  stats_.checkpoints += 1;
  KML_COUNTER_INC(observe::kMetricEngineCheckpoints);
  KML_EVENT(observe::EventId::kEngineCheckpoint, stats_.checkpoints,
            static_cast<std::uint64_t>(params_.size()));
}

bool Engine::rollback() {
  if (!has_checkpoint_) return false;
  if (params_.size() != good_params_.size()) return false;  // topology changed
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].value->same_shape(good_params_[i])) return false;
    params_[i].value->copy_from(good_params_[i]);
  }
  stats_.rollbacks += 1;
  KML_COUNTER_INC(observe::kMetricEngineRollbacks);
  KML_EVENT(observe::EventId::kEngineRollback, stats_.rollbacks,
            stats_.invalid_train_steps);
  KML_INFO("engine: rolled back to last-known-good weights");
  if (health_ != nullptr) health_->notify_rollback();
  return true;
}

}  // namespace kml::runtime
