// health.h — the health-guard state machine for in-kernel learning.
//
// An online learner *will* transiently mispredict or diverge (the RL-storage
// line of work makes this explicit), and a kernel-resident trainer can stall
// or produce non-finite weights under pressure. The HealthMonitor is the
// principled sickness detector the deployment needs: independent signals
// feed one three-state machine, and the actuation side (readahead tuner)
// reads the state to decide whether model predictions may touch the I/O
// path at all.
//
//   HEALTHY  — predictions actuate normally.
//   DEGRADED — suspicious (loss divergence, sample loss, stalled trainer):
//              stop actuating, fall back to the vanilla heuristic, keep
//              observing. Recovers to HEALTHY after a clean streak.
//   FAILED   — model state is untrustworthy (non-finite loss/weights,
//              repeated divergence): requires an engine rollback to the
//              last-known-good checkpoint before recovery can begin.
//
// Signals:
//   (a) non-finite loss/weights after Engine::train_batch  -> FAILED
//   (b) EWMA loss-divergence strikes                       -> DEGRADED/FAILED
//   (c) training-thread heartbeat watchdog                 -> DEGRADED
//   (d) circular-buffer drop-rate over threshold           -> DEGRADED
//
// Thread model: one writer per signal is fine (trainer thread feeds (a)-(c),
// the tuner thread feeds (d)); all mutations serialize on an internal mutex,
// while state() is a lock-free atomic read safe from the I/O path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace kml::runtime {

enum class HealthState : int { kHealthy = 0, kDegraded = 1, kFailed = 2 };

const char* health_state_name(HealthState state);

struct HealthConfig {
  // (b) EWMA loss divergence: a step whose loss exceeds ratio x the EWMA
  // baseline is a strike; the baseline only absorbs clean steps, so a
  // diverging run cannot drag its own threshold up.
  double ewma_alpha = 0.05;
  double divergence_ratio = 4.0;
  std::uint64_t warmup_steps = 16;     // steps before divergence is judged
  std::uint32_t strikes_to_degrade = 3;
  std::uint32_t strikes_to_fail = 8;
  // Clean steps needed to leave DEGRADED (and to clear strikes).
  std::uint32_t clean_steps_to_recover = 16;

  // (c) Watchdog: a trainer silent for longer than this is considered
  // stalled. Timestamps are caller-supplied, so tests and simulations can
  // drive any clock.
  std::uint64_t heartbeat_timeout_ns = 2'000'000'000;

  // (d) Drop-rate guard: fraction of submitted records dropped, judged over
  // windows of at least `drop_window_min_records` submissions.
  double drop_rate_threshold = 0.5;
  std::uint64_t drop_window_min_records = 1024;

  // (e) Inference-latency guard (registry-sourced): if the p99 of the
  // "runtime.inference_ns" histogram exceeds this while inferences are
  // flowing, the model is too slow for the I/O path and the tuner should
  // fall back. 0 disables the signal (the threshold is deployment-
  // specific; the paper's budget is ~21 us on their hardware).
  std::uint64_t inference_p99_degrade_ns = 0;

  // (f) Gradient-explosion guard (registry-sourced): worst per-layer
  // gradient L2-norm, milli-scaled ("nn.train.grad_norm_milli"), judged
  // only while the train-step counter advances. A blowing-up gradient
  // predicts non-finite weights several steps before they happen. 0
  // disables.
  std::uint64_t grad_norm_degrade_milli = 0;

  // (g) Input-drift guard (registry-sourced): max per-feature |z| of the
  // live input mean vs the training baseline, milli-scaled
  // ("data.drift.max_z_milli"), judged only while the drift sample count
  // advances. Drifted inputs invalidate the model silently — every weight
  // stays finite. 0 disables.
  std::uint64_t drift_z_degrade_milli = 0;

  // (h) KV-recovery guard (registry-sourced): the storage backend crashed
  // and came back. A recovery means the store the model was trained
  // against was rebuilt from WAL + manifest — feature distributions may
  // have jumped (cold cache, replayed tail), so predictions go on
  // probation. Trips DEGRADED when the "kv.recoveries" counter (or a
  // "kv.torn_manifests_rejected" rejection, which is strictly worse)
  // advances by at least this much between polls. 0 disables.
  std::uint64_t kv_recoveries_to_degrade = 1;

  // (i) Cache hit-rate collapse guard (registry-sourced): the eviction
  // tuner's blast radius. Judged over delta windows of at least
  // `cache_min_accesses` page-cache accesses ("sim.cache.hit" +
  // "sim.cache.miss" counters); trips DEGRADED when the windowed hit rate,
  // milli-scaled, falls below this floor — a mistuned reclaim policy shows
  // up here before anywhere else, and the tuner's degradation path then
  // pins the cache back to plain LRU. 0 disables.
  std::uint64_t cache_hit_rate_degrade_milli = 0;
  std::uint64_t cache_min_accesses = 1024;

  // (j) Fleet-collapse guard (registry-sourced): the tenant-sharded
  // inference service is drowning — either the post-drain backlog
  // ("fleet.queue_depth" gauge) stays above the depth threshold or the
  // submit→decision p99 ("fleet.decision_ns" histogram) exceeds the latency
  // budget. Judged only while the "fleet.windows" counter advances (an idle
  // fleet cannot trip on stale history). The fleet service reacts to the
  // DEGRADED state by refusing new admissions and shedding its
  // lowest-traffic tenants first. 0 disables each sub-signal independently.
  std::uint64_t fleet_queue_depth_degrade = 0;
  std::uint64_t fleet_decision_p99_degrade_ns = 0;

  // (k) SLO burn-rate guard (registry-sourced, telemetry v3): trips
  // DEGRADED when at least this many registered latency objectives
  // (observe/slo.h) are simultaneously burning — fast AND slow burn windows
  // both over their trip rates with enough records to trust. Judged only
  // while the time-series sampler advances (the burn windows are ring
  // windows; without fresh samples the verdict would be stale history). A
  // kSloBurn flight event for the worst-burning objective precedes the
  // transition, preserving the causal chain. 0 disables.
  std::uint32_t slo_burning_to_degrade = 0;

  // Flight-recorder dump file prefix (writes <prefix>.bin/<prefix>.txt when
  // the recorder freezes on a bad transition). nullptr = freeze only, no
  // dump. The pointed-to string must outlive the monitor.
  const char* flight_dump_prefix = nullptr;
};

struct HealthStats {
  std::uint64_t train_steps = 0;        // observations fed to (a)/(b)
  std::uint64_t non_finite_events = 0;  // (a) trips
  std::uint64_t divergence_strikes = 0; // (b) strikes (cumulative)
  std::uint64_t watchdog_timeouts = 0;  // (c) trips
  std::uint64_t drop_rate_trips = 0;    // (d) trips
  std::uint64_t latency_trips = 0;      // (e) trips (inference p99 guard)
  std::uint64_t grad_trips = 0;         // (f) trips (gradient explosion)
  std::uint64_t drift_trips = 0;        // (g) trips (input drift)
  std::uint64_t kv_recovery_trips = 0;  // (h) trips (KV store recovered)
  std::uint64_t cache_trips = 0;        // (i) trips (hit-rate collapse)
  std::uint64_t fleet_trips = 0;        // (j) trips (fleet queue/latency)
  std::uint64_t slo_trips = 0;          // (k) trips (SLO burn rate)
  std::uint64_t heartbeats = 0;
  std::uint64_t degradations = 0;       // transitions into DEGRADED
  std::uint64_t failures = 0;           // transitions into FAILED
  std::uint64_t recoveries = 0;         // transitions back to HEALTHY
  std::uint64_t rollbacks_seen = 0;     // notify_rollback() calls
  double loss_ewma = 0.0;               // current baseline
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config = HealthConfig{});

  // Lock-free; safe from the I/O path.
  HealthState state() const {
    return static_cast<HealthState>(state_.load(std::memory_order_acquire));
  }
  bool healthy() const { return state() == HealthState::kHealthy; }

  // (a)+(b): one call per Engine::train_batch. `valid` is false when the
  // step produced a non-finite loss or non-finite weights.
  void observe_train_step(double loss, bool valid);

  // (c) producer side: the training thread announces liveness.
  void heartbeat(std::uint64_t now_ns);

  // (c) consumer side: anyone with the same clock checks for a stall.
  // Returns true if the watchdog tripped on this call. Never trips before
  // the first heartbeat (a not-yet-started trainer is not a stalled one).
  bool check_watchdog(std::uint64_t now_ns);

  // (d): cumulative producer counters (monotonic), e.g. from
  // TrainingThread::processed()+dropped() and ::dropped().
  void observe_buffer(std::uint64_t submitted_total,
                      std::uint64_t dropped_total);

  // (d)+(e)+(f)+(g) from the metrics registry — the single source of truth
  // when the observe layer is compiled in and recording. Reads the global
  // buffer push/drop counters for the drop-rate guard, the inference-latency
  // histogram p99 for the latency guard, the gradient-norm gauge for the
  // explosion guard, and the drift gauges for the covariate-shift guard. The
  // first call only primes the baselines (registry counters are
  // process-global and may predate this monitor); deltas are judged from the
  // second call on, and each gauge is judged only while its companion
  // progress counter advances (a quiesced model cannot trip on stale
  // history). No-op with KML_OBSERVE=OFF (the registry is empty).
  void observe_registry();

  // The engine restored its last-known-good checkpoint: FAILED drops to
  // DEGRADED (probation); a clean streak then recovers to HEALTHY.
  void notify_rollback();

  // Back to pristine HEALTHY with zeroed baselines (new model deployed).
  void reset();

  const HealthConfig& config() const { return config_; }
  HealthStats stats() const;

 private:
  // All three require lock_ held. Each transition is stamped into the
  // flight recorder; entering DEGRADED freezes it (and dumps, when
  // configured) so the events leading up to the sickness survive. FAILED
  // deliberately does NOT freeze: the expected next events — rollback, then
  // the FAILED->DEGRADED probation transition — are the tail of the causal
  // chain the dump exists to show, and freezing early would truncate it.
  void enter_degraded();
  void enter_failed();
  void enter_healthy();
  // Freeze the flight recorder (idempotent) and dump if configured.
  void freeze_flight();

  HealthConfig config_;
  std::atomic<int> state_{static_cast<int>(HealthState::kHealthy)};
  mutable std::mutex lock_;
  HealthStats stats_;
  std::uint32_t strikes_ = 0;
  std::uint32_t clean_streak_ = 0;
  bool ewma_primed_ = false;
  std::atomic<std::uint64_t> last_heartbeat_ns_{0};
  bool heartbeat_seen_ = false;
  std::uint64_t last_submitted_ = 0;
  std::uint64_t last_dropped_ = 0;
  // Registry-path baselines, separate from the observe_buffer() ones so a
  // deployment mixing both sources cannot corrupt either delta stream.
  bool registry_primed_ = false;
  std::uint64_t registry_last_submitted_ = 0;
  std::uint64_t registry_last_dropped_ = 0;
  std::uint64_t registry_last_inferences_ = 0;
  std::uint64_t registry_last_train_steps_ = 0;
  std::uint64_t registry_last_drift_samples_ = 0;
  std::uint64_t registry_last_kv_recoveries_ = 0;
  std::uint64_t registry_last_kv_torn_ = 0;
  std::uint64_t registry_last_cache_hits_ = 0;
  std::uint64_t registry_last_cache_misses_ = 0;
  std::uint64_t registry_last_fleet_windows_ = 0;
  std::uint64_t registry_last_slo_samples_ = 0;
};

}  // namespace kml::runtime
