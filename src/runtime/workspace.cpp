#include "runtime/workspace.h"

#include "portability/memory.h"

namespace kml::runtime {

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s.capacity() * sizeof(double);
  return total;
}

bool Workspace::reserve_arena(std::size_t bytes) {
  if (bytes == 0) return false;
  // Each arena-served block pays a 16-byte accounting header plus up to 15
  // bytes of alignment padding; pad the payload request so `bytes` of
  // matrix data genuinely fit. 32 bytes per slot covers the worst case for
  // the handful of blocks a workspace creates.
  const std::size_t overhead = static_cast<std::size_t>(kMaxSlots) * 32;
  return kml_mem_reserve(bytes + overhead);
}

void Workspace::release_arena() { kml_mem_release(); }

}  // namespace kml::runtime
