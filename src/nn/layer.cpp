#include "nn/layer.h"

namespace kml::nn {

void Layer::zero_grad() {
  for (ParamRef p : params()) {
    p.grad->fill(0.0);
  }
}

}  // namespace kml::nn
