#include "nn/layer.h"

namespace kml::nn {

void Layer::zero_grad() {
  for (ParamRef p : params()) {
    p.grad->fill(0.0);
  }
}

void Layer::forward_into(const matrix::MatD& in, matrix::MatD& out) {
  out.copy_from(forward(in));
}

void Layer::backward_into(const matrix::MatD& grad_out,
                          matrix::MatD& grad_in) {
  grad_in.copy_from(backward(grad_out));
}

}  // namespace kml::nn
