#include "nn/layer.h"

namespace kml::nn {

void Layer::zero_grad() {
  for (ParamRef p : params()) {
    p.grad->fill(0.0);
  }
}

void Layer::forward_into(const matrix::MatD& in, matrix::MatD& out) {
  out.copy_from(forward(in));
}

void Layer::backward_into(const matrix::MatD& grad_out,
                          matrix::MatD& grad_in) {
  grad_in.copy_from(backward(grad_out));
}

void Layer::forward_slice(const matrix::MatD& in, matrix::MatD& out,
                          LayerSlice& /*ctx*/) {
  // Serial-only fallback for external subclasses (supports_parallel_train()
  // is false, so the Network never runs this concurrently).
  forward_into(in, out);
}

void Layer::backward_slice(const matrix::MatD& grad_out, LayerSlice& /*ctx*/,
                           matrix::MatD& grad_in) {
  backward_into(grad_out, grad_in);
}

}  // namespace kml::nn
