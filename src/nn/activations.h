// activations.h — elementwise activation layers (§2, §4).
//
// The readahead network uses sigmoid activations between its three linear
// layers "to model the non-linearity exhibited by the readahead-vs-
// throughput curves". ReLU and tanh round out the library.
#pragma once

#include "nn/layer.h"

namespace kml::nn {

class Sigmoid : public Layer {
 public:
  matrix::MatD forward(const matrix::MatD& in) override;
  matrix::MatD backward(const matrix::MatD& grad_out) override;
  void forward_into(const matrix::MatD& in, matrix::MatD& out) override;
  void backward_into(const matrix::MatD& grad_out,
                     matrix::MatD& grad_in) override;
  bool supports_parallel_train() const override { return true; }
  void forward_slice(const matrix::MatD& in, matrix::MatD& out,
                     LayerSlice& ctx) override;
  void backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                      matrix::MatD& grad_in) override;
  LayerType type() const override { return LayerType::kSigmoid; }
  const char* name() const override { return "sigmoid"; }

 private:
  matrix::MatD cached_out_;  // sigmoid' = y*(1-y): cache the output
};

class ReLU : public Layer {
 public:
  matrix::MatD forward(const matrix::MatD& in) override;
  matrix::MatD backward(const matrix::MatD& grad_out) override;
  void forward_into(const matrix::MatD& in, matrix::MatD& out) override;
  void backward_into(const matrix::MatD& grad_out,
                     matrix::MatD& grad_in) override;
  bool supports_parallel_train() const override { return true; }
  void forward_slice(const matrix::MatD& in, matrix::MatD& out,
                     LayerSlice& ctx) override;
  void backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                      matrix::MatD& grad_in) override;
  LayerType type() const override { return LayerType::kReLU; }
  const char* name() const override { return "relu"; }

 private:
  matrix::MatD cached_in_;
};

class Tanh : public Layer {
 public:
  matrix::MatD forward(const matrix::MatD& in) override;
  matrix::MatD backward(const matrix::MatD& grad_out) override;
  void forward_into(const matrix::MatD& in, matrix::MatD& out) override;
  void backward_into(const matrix::MatD& grad_out,
                     matrix::MatD& grad_in) override;
  bool supports_parallel_train() const override { return true; }
  void forward_slice(const matrix::MatD& in, matrix::MatD& out,
                     LayerSlice& ctx) override;
  void backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                      matrix::MatD& grad_in) override;
  LayerType type() const override { return LayerType::kTanh; }
  const char* name() const override { return "tanh"; }

 private:
  matrix::MatD cached_out_;  // tanh' = 1 - y^2
};

}  // namespace kml::nn
