#include "nn/recurrent.h"

#include "math/approx.h"

#include <cassert>

namespace kml::nn {

void RecurrentCell::zero_grad() {
  for (ParamRef p : params()) p.grad->fill(0.0);
}

// ---- Elman RNN ----------------------------------------------------------------

RnnCell::RnnCell(int in_features, int hidden, math::Rng& rng)
    : wx_(matrix::xavier_uniform(in_features, hidden, rng)),
      wh_(matrix::xavier_uniform(hidden, hidden, rng)),
      b_(1, hidden),
      grad_wx_(in_features, hidden),
      grad_wh_(hidden, hidden),
      grad_b_(1, hidden) {}

matrix::MatD RnnCell::forward_sequence(const matrix::MatD& sequence) {
  assert(sequence.cols() == wx_.rows());
  const int t_steps = sequence.rows();
  const int hidden = wx_.cols();
  // Cache reuse: repeated same-shape sequences skip the allocator
  // (cached_h_ is fully overwritten below, so no zero-fill is needed).
  cached_in_.copy_from(sequence);
  cached_h_.ensure_shape(t_steps, hidden);

  matrix::FpuGuard<double> guard;
  std::vector<double> prev(static_cast<std::size_t>(hidden), 0.0);
  for (int t = 0; t < t_steps; ++t) {
    const double* x = sequence.row(t);
    double* h = cached_h_.row(t);
    for (int j = 0; j < hidden; ++j) {
      double a = b_.at(0, j);
      for (int k = 0; k < sequence.cols(); ++k) a += x[k] * wx_.at(k, j);
      for (int k = 0; k < hidden; ++k) {
        a += prev[static_cast<std::size_t>(k)] * wh_.at(k, j);
      }
      h[j] = math::kml_tanh(a);
    }
    for (int j = 0; j < hidden; ++j) prev[static_cast<std::size_t>(j)] = h[j];
  }
  return cached_h_;
}

matrix::MatD RnnCell::backward_sequence(const matrix::MatD& grad_h) {
  assert(grad_h.same_shape(cached_h_));
  const int t_steps = cached_h_.rows();
  const int hidden = wx_.cols();
  const int in = wx_.rows();
  matrix::MatD grad_in(t_steps, in);

  matrix::FpuGuard<double> guard;
  std::vector<double> carry(static_cast<std::size_t>(hidden), 0.0);
  std::vector<double> da(static_cast<std::size_t>(hidden), 0.0);
  for (int t = t_steps - 1; t >= 0; --t) {
    const double* h = cached_h_.row(t);
    const double* x = cached_in_.row(t);
    for (int j = 0; j < hidden; ++j) {
      const double dh = grad_h.at(t, j) + carry[static_cast<std::size_t>(j)];
      da[static_cast<std::size_t>(j)] = dh * (1.0 - h[j] * h[j]);
    }
    // Parameter gradients.
    for (int j = 0; j < hidden; ++j) {
      const double d = da[static_cast<std::size_t>(j)];
      grad_b_.at(0, j) += d;
      for (int k = 0; k < in; ++k) grad_wx_.at(k, j) += x[k] * d;
      if (t > 0) {
        const double* hp = cached_h_.row(t - 1);
        for (int k = 0; k < hidden; ++k) grad_wh_.at(k, j) += hp[k] * d;
      }
    }
    // Input gradient and recurrent carry.
    double* gx = grad_in.row(t);
    for (int k = 0; k < in; ++k) {
      double acc = 0.0;
      for (int j = 0; j < hidden; ++j) {
        acc += da[static_cast<std::size_t>(j)] * wx_.at(k, j);
      }
      gx[k] = acc;
    }
    for (int k = 0; k < hidden; ++k) {
      double acc = 0.0;
      for (int j = 0; j < hidden; ++j) {
        acc += da[static_cast<std::size_t>(j)] * wh_.at(k, j);
      }
      carry[static_cast<std::size_t>(k)] = acc;
    }
  }
  return grad_in;
}

std::vector<ParamRef> RnnCell::params() {
  return {{&wx_, &grad_wx_}, {&wh_, &grad_wh_}, {&b_, &grad_b_}};
}

// ---- LSTM ----------------------------------------------------------------------

LstmCell::LstmCell(int in_features, int hidden, math::Rng& rng)
    : wx_(matrix::xavier_uniform(in_features, 4 * hidden, rng)),
      wh_(matrix::xavier_uniform(hidden, 4 * hidden, rng)),
      b_(1, 4 * hidden),
      grad_wx_(in_features, 4 * hidden),
      grad_wh_(hidden, 4 * hidden),
      grad_b_(1, 4 * hidden) {
  // Standard trick: start with the forget gate open so gradients flow
  // through time early in training.
  for (int j = hidden; j < 2 * hidden; ++j) b_.at(0, j) = 1.0;
}

matrix::MatD LstmCell::forward_sequence(const matrix::MatD& sequence) {
  assert(sequence.cols() == wx_.rows());
  const int t_steps = sequence.rows();
  const int hidden = hidden_size();
  // Cache reuse as in RnnCell: every element below is overwritten.
  cached_in_.copy_from(sequence);
  cached_h_.ensure_shape(t_steps, hidden);
  cached_c_.ensure_shape(t_steps, hidden);
  cached_gates_.ensure_shape(t_steps, 4 * hidden);

  matrix::FpuGuard<double> guard;
  std::vector<double> h_prev(static_cast<std::size_t>(hidden), 0.0);
  std::vector<double> c_prev(static_cast<std::size_t>(hidden), 0.0);
  std::vector<double> z(static_cast<std::size_t>(4 * hidden), 0.0);

  for (int t = 0; t < t_steps; ++t) {
    const double* x = sequence.row(t);
    for (int j = 0; j < 4 * hidden; ++j) {
      double a = b_.at(0, j);
      for (int k = 0; k < sequence.cols(); ++k) a += x[k] * wx_.at(k, j);
      for (int k = 0; k < hidden; ++k) {
        a += h_prev[static_cast<std::size_t>(k)] * wh_.at(k, j);
      }
      z[static_cast<std::size_t>(j)] = a;
    }
    double* gates = cached_gates_.row(t);
    double* c = cached_c_.row(t);
    double* h = cached_h_.row(t);
    for (int j = 0; j < hidden; ++j) {
      const double i_g = math::kml_sigmoid(z[static_cast<std::size_t>(j)]);
      const double f_g =
          math::kml_sigmoid(z[static_cast<std::size_t>(hidden + j)]);
      const double g_g =
          math::kml_tanh(z[static_cast<std::size_t>(2 * hidden + j)]);
      const double o_g =
          math::kml_sigmoid(z[static_cast<std::size_t>(3 * hidden + j)]);
      gates[j] = i_g;
      gates[hidden + j] = f_g;
      gates[2 * hidden + j] = g_g;
      gates[3 * hidden + j] = o_g;
      c[j] = f_g * c_prev[static_cast<std::size_t>(j)] + i_g * g_g;
      h[j] = o_g * math::kml_tanh(c[j]);
    }
    for (int j = 0; j < hidden; ++j) {
      h_prev[static_cast<std::size_t>(j)] = h[j];
      c_prev[static_cast<std::size_t>(j)] = c[j];
    }
  }
  return cached_h_;
}

matrix::MatD LstmCell::backward_sequence(const matrix::MatD& grad_h) {
  assert(grad_h.same_shape(cached_h_));
  const int t_steps = cached_h_.rows();
  const int hidden = hidden_size();
  const int in = wx_.rows();
  matrix::MatD grad_in(t_steps, in);

  matrix::FpuGuard<double> guard;
  std::vector<double> dh_carry(static_cast<std::size_t>(hidden), 0.0);
  std::vector<double> dc_carry(static_cast<std::size_t>(hidden), 0.0);
  std::vector<double> dz(static_cast<std::size_t>(4 * hidden), 0.0);

  for (int t = t_steps - 1; t >= 0; --t) {
    const double* gates = cached_gates_.row(t);
    const double* c = cached_c_.row(t);
    const double* x = cached_in_.row(t);
    for (int j = 0; j < hidden; ++j) {
      const double i_g = gates[j];
      const double f_g = gates[hidden + j];
      const double g_g = gates[2 * hidden + j];
      const double o_g = gates[3 * hidden + j];
      const double c_prev = t > 0 ? cached_c_.at(t - 1, j) : 0.0;
      const double tc = math::kml_tanh(c[j]);

      const double dh =
          grad_h.at(t, j) + dh_carry[static_cast<std::size_t>(j)];
      const double dc = dh * o_g * (1.0 - tc * tc) +
                        dc_carry[static_cast<std::size_t>(j)];

      const double d_i = dc * g_g;
      const double d_f = dc * c_prev;
      const double d_g = dc * i_g;
      const double d_o = dh * tc;

      dz[static_cast<std::size_t>(j)] = d_i * i_g * (1.0 - i_g);
      dz[static_cast<std::size_t>(hidden + j)] = d_f * f_g * (1.0 - f_g);
      dz[static_cast<std::size_t>(2 * hidden + j)] =
          d_g * (1.0 - g_g * g_g);
      dz[static_cast<std::size_t>(3 * hidden + j)] = d_o * o_g * (1.0 - o_g);

      dc_carry[static_cast<std::size_t>(j)] = dc * f_g;
    }

    // Parameter gradients from dz.
    for (int j = 0; j < 4 * hidden; ++j) {
      const double d = dz[static_cast<std::size_t>(j)];
      grad_b_.at(0, j) += d;
      for (int k = 0; k < in; ++k) grad_wx_.at(k, j) += x[k] * d;
      if (t > 0) {
        const double* hp = cached_h_.row(t - 1);
        for (int k = 0; k < hidden; ++k) grad_wh_.at(k, j) += hp[k] * d;
      }
    }

    // dx_t and dh_{t-1}.
    double* gx = grad_in.row(t);
    for (int k = 0; k < in; ++k) {
      double acc = 0.0;
      for (int j = 0; j < 4 * hidden; ++j) {
        acc += dz[static_cast<std::size_t>(j)] * wx_.at(k, j);
      }
      gx[k] = acc;
    }
    for (int k = 0; k < hidden; ++k) {
      double acc = 0.0;
      for (int j = 0; j < 4 * hidden; ++j) {
        acc += dz[static_cast<std::size_t>(j)] * wh_.at(k, j);
      }
      dh_carry[static_cast<std::size_t>(k)] = acc;
    }
  }
  return grad_in;
}

std::vector<ParamRef> LstmCell::params() {
  return {{&wx_, &grad_wx_}, {&wh_, &grad_wh_}, {&b_, &grad_b_}};
}

// ---- Sequence classifier --------------------------------------------------------

SequenceClassifier::SequenceClassifier(CellKind kind, int in_features,
                                       int hidden, int num_classes,
                                       math::Rng& rng)
    : cell_(kind == CellKind::kRnn
                ? std::unique_ptr<RecurrentCell>(
                      std::make_unique<RnnCell>(in_features, hidden, rng))
                : std::make_unique<LstmCell>(in_features, hidden, rng)),
      head_(hidden, num_classes, rng),
      num_classes_(num_classes) {}

matrix::MatD SequenceClassifier::forward(const matrix::MatD& sequence) {
  const matrix::MatD hs = cell_->forward_sequence(sequence);
  last_t_ = hs.rows();
  matrix::MatD last(1, hs.cols());
  for (int j = 0; j < hs.cols(); ++j) {
    last.at(0, j) = hs.at(hs.rows() - 1, j);
  }
  return head_.forward(last);
}

double SequenceClassifier::train_step(const matrix::MatD& sequence,
                                      int label, Optimizer& opt) {
  assert(label >= 0 && label < num_classes_);
  cell_->zero_grad();
  head_.zero_grad();

  const matrix::MatD logits = forward(sequence);
  matrix::MatD target(1, num_classes_);
  target.at(0, label) = 1.0;
  const double loss_value = loss_.forward(logits, target);

  const matrix::MatD dlogits = loss_.backward();
  const matrix::MatD dlast = head_.backward(dlogits);

  matrix::MatD grad_h(last_t_, cell_->hidden_size());
  for (int j = 0; j < grad_h.cols(); ++j) {
    grad_h.at(last_t_ - 1, j) = dlast.at(0, j);
  }
  cell_->backward_sequence(grad_h);
  opt.step();
  return loss_value;
}

int SequenceClassifier::predict(const matrix::MatD& sequence) {
  const matrix::MatD logits = forward(sequence);
  int best = 0;
  for (int c = 1; c < logits.cols(); ++c) {
    if (logits.at(0, c) > logits.at(0, best)) best = c;
  }
  return best;
}

std::vector<ParamRef> SequenceClassifier::params() {
  std::vector<ParamRef> out = cell_->params();
  for (ParamRef p : head_.params()) out.push_back(p);
  return out;
}

}  // namespace kml::nn
