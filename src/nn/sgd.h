// sgd.h — optimizers (§2, §4).
//
// The optimizer interface mirrors the layer extensibility contract: attach
// to a parameter set, then step() after each backward pass. The readahead
// model trains with SGD, lr = 0.01 and momentum = 0.99 (the paper's
// "conventional" setting after Bengio 2012 / Sutskever 2013):
//   v <- momentum * v - lr * grad
//   w <- w + v
// Adam (Kingma & Ba 2015) is included as the extensibility demonstration —
// a new optimizer implements exactly attach() and step().
#pragma once

#include "nn/layer.h"

#include <vector>

namespace kml::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Bind the parameters this optimizer updates; state buffers are
  // (re)created zeroed, matching each parameter's shape.
  virtual void attach(const std::vector<ParamRef>& params) = 0;

  // Apply one update from the currently accumulated gradients.
  virtual void step() = 0;
};

class SGD final : public Optimizer {
 public:
  SGD(double learning_rate, double momentum);

  void attach(const std::vector<ParamRef>& params) override;
  void step() override;

  double learning_rate() const { return lr_; }
  double momentum() const { return momentum_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  std::vector<ParamRef> params_;
  std::vector<matrix::MatD> velocity_;
};

// Adam with bias correction:
//   m <- b1*m + (1-b1)*g;  v <- b2*v + (1-b2)*g^2
//   w <- w - lr * m_hat / (sqrt(v_hat) + eps)
class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);

  void attach(const std::vector<ParamRef>& params) override;
  void step() override;

  double learning_rate() const { return lr_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::uint64_t t_ = 0;
  std::vector<ParamRef> params_;
  std::vector<matrix::MatD> m_;
  std::vector<matrix::MatD> v_;
};

}  // namespace kml::nn
