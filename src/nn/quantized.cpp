#include "nn/quantized.h"

#include "math/stats.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "portability/log.h"
#include "portability/simd.h"

#include <cassert>

namespace kml::nn {
namespace {

constexpr double kQMax = 32000.0;  // safe margin inside Q16.16 range

// Symmetric int8 grid: ±127 only. -128 is excluded so negation is closed
// and the scale maps the max-abs value exactly onto the grid edge.
constexpr double kInt8Max = 127.0;

// Round-to-nearest (ties away from zero) with saturation. The clamp
// happens BEFORE the int cast: casting an out-of-range double to a signed
// integer is undefined behavior (the UBSan suite covers this path with
// values far outside the grid).
std::int8_t quantize_sat(double x, double inv_scale) {
  double t = x * inv_scale;
  t += t >= 0.0 ? 0.5 : -0.5;
  if (t > kInt8Max) t = kInt8Max;
  if (t < -kInt8Max) t = -kInt8Max;
  return static_cast<std::int8_t>(t);
}

double max_abs(const double* data, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = math::kml_abs(data[i]);
    if (a > m) m = a;
  }
  return m;
}

// maxabs/127, floored so an all-zero tensor still yields a usable scale
// (everything quantizes to 0 either way).
double symmetric_scale(double maxabs) {
  return maxabs < 1e-30 ? 1.0 / kInt8Max : maxabs / kInt8Max;
}

bool in_range(const matrix::MatD& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (math::kml_abs(m.data()[i]) > kQMax) return false;
  }
  return true;
}

math::Fixed fixed_activation(LayerType type, math::Fixed x) {
  switch (type) {
    case LayerType::kSigmoid:
      return math::fixed_sigmoid(x);
    case LayerType::kReLU:
      return x > math::Fixed::zero() ? x : math::Fixed::zero();
    case LayerType::kTanh: {
      // hard tanh: clamp(x, -1, 1) — same piecewise-linear spirit.
      if (x > math::Fixed::one()) return math::Fixed::one();
      if (x < -math::Fixed::one()) return -math::Fixed::one();
      return x;
    }
    default:
      return x;
  }
}

}  // namespace

bool QuantizedNetwork::quantize(const Network& net, QuantizedNetwork& out) {
  QuantizedNetwork q;
  auto& mutable_net = const_cast<Network&>(net);
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& layer = mutable_net.layer(i);
    QLayer ql;
    ql.type = layer.type();
    switch (layer.type()) {
      case LayerType::kLinear: {
        auto& lin = static_cast<Linear&>(layer);
        if (!in_range(lin.weights()) || !in_range(lin.bias())) {
          KML_ERROR("quantize: layer %d weights exceed Q16.16 range", i);
          return false;
        }
        ql.weights = matrix::to_fixed(lin.weights());
        ql.bias = matrix::to_fixed(lin.bias());
        break;
      }
      case LayerType::kSigmoid:
      case LayerType::kReLU:
      case LayerType::kTanh:
        break;
      default:
        KML_ERROR("quantize: unsupported layer type %d",
                  static_cast<int>(layer.type()));
        return false;
    }
    q.layers_.push_back(std::move(ql));
  }

  std::vector<double> means;
  std::vector<double> stds;
  net.normalizer().export_moments(means, stds);
  for (std::size_t j = 0; j < means.size(); ++j) {
    if (math::kml_abs(means[j]) > kQMax) {
      KML_ERROR("quantize: normalizer mean %zu exceeds Q16.16 range", j);
      return false;
    }
    q.norm_mean_.push_back(math::Fixed::from_double(means[j]));
    const double inv = stds[j] < 1e-9 ? 0.0 : 1.0 / stds[j];
    q.norm_inv_std_.push_back(math::Fixed::from_double(inv));
  }
  out = std::move(q);
  return true;
}

matrix::MatX QuantizedNetwork::forward(const matrix::MatX& in) const {
  if (mode_ == QuantMode::kInt8) return matrix::MatX();  // fixed-point only
  matrix::MatX activation = in;
  for (const QLayer& layer : layers_) {
    if (layer.type == LayerType::kLinear) {
      matrix::MatX out(activation.rows(), layer.weights.cols());
      matrix::matmul(activation, layer.weights, out);
      for (int r = 0; r < out.rows(); ++r) {
        for (int c = 0; c < out.cols(); ++c) {
          out.at(r, c) += layer.bias.at(0, c);
        }
      }
      activation = std::move(out);
    } else {
      for (std::size_t i = 0; i < activation.size(); ++i) {
        activation.data()[i] = fixed_activation(layer.type,
                                                activation.data()[i]);
      }
    }
  }
  return activation;
}

int QuantizedNetwork::infer_class(const double* features, int n) const {
  if (mode_ == QuantMode::kInt8) {
    scores_.resize(static_cast<std::size_t>(out_features()));
    int cls = -1;
    if (infer_batch_scores(features, n, 1, scores_.data(), &cls) != 1) {
      return -1;
    }
    return cls;
  }
  assert(static_cast<std::size_t>(n) == norm_mean_.size() ||
         norm_mean_.empty());
  matrix::MatX x(1, n);
  for (int j = 0; j < n; ++j) {
    math::Fixed v = math::Fixed::from_double(features[j]);
    if (!norm_mean_.empty()) {
      const auto idx = static_cast<std::size_t>(j);
      v = (v - norm_mean_[idx]) * norm_inv_std_[idx];
    }
    x.at(0, j) = v;
  }
  const matrix::MatX logits = forward(x);
  int best = 0;
  for (int c = 1; c < logits.cols(); ++c) {
    if (logits.at(0, c) > logits.at(0, best)) best = c;
  }
  return best;
}

int QuantizedNetwork::num_layers() const {
  return mode_ == QuantMode::kInt8 ? static_cast<int>(int8_layers_.size())
                                   : static_cast<int>(layers_.size());
}

int QuantizedNetwork::in_features() const {
  if (mode_ == QuantMode::kInt8) {
    for (const Int8Layer& layer : int8_layers_) {
      if (layer.type == LayerType::kLinear) return layer.weights.rows();
    }
    return 0;
  }
  for (const QLayer& layer : layers_) {
    if (layer.type == LayerType::kLinear) return layer.weights.rows();
  }
  return 0;
}

int QuantizedNetwork::out_features() const {
  if (mode_ == QuantMode::kInt8) {
    for (auto it = int8_layers_.rbegin(); it != int8_layers_.rend(); ++it) {
      if (it->type == LayerType::kLinear) return it->weights.cols();
    }
    return 0;
  }
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if (it->type == LayerType::kLinear) return it->weights.cols();
  }
  return 0;
}

bool QuantizedNetwork::quantize_int8(const Network& net,
                                     const matrix::MatD& calib_raw,
                                     QuantizedNetwork& out) {
  QuantizedNetwork q;
  q.mode_ = QuantMode::kInt8;

  std::vector<double> means;
  std::vector<double> stds;
  net.normalizer().export_moments(means, stds);
  if (calib_raw.rows() == 0 ||
      (means.size() != 0 &&
       calib_raw.cols() != static_cast<int>(means.size()))) {
    KML_ERROR("quantize_int8: calibration batch is empty or has %d features "
              "(model expects %zu)",
              calib_raw.cols(), means.size());
    return false;
  }
  q.norm_mean_d_ = means;
  q.norm_std_d_ = stds;

  // Calibration propagates FLOAT activations through the net so each linear
  // layer's s_in reflects the real input distribution (quantize-after-train:
  // weights are untouched, only observed).
  matrix::FpuGuard<double> guard;
  matrix::MatD act = calib_raw;
  if (!means.empty()) {
    for (int r = 0; r < act.rows(); ++r) {
      for (int c = 0; c < act.cols(); ++c) {
        const auto j = static_cast<std::size_t>(c);
        act.at(r, c) = math::z_score(act.at(r, c), means[j], stds[j]);
      }
    }
  }

  auto& mutable_net = const_cast<Network&>(net);
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& layer = mutable_net.layer(i);
    Int8Layer ql;
    ql.type = layer.type();
    switch (layer.type()) {
      case LayerType::kLinear: {
        auto& lin = static_cast<Linear&>(layer);
        const matrix::MatD& w = lin.weights();
        if (act.cols() != w.rows()) {
          KML_ERROR("quantize_int8: layer %d expects %d inputs, got %d", i,
                    w.rows(), act.cols());
          return false;
        }
        ql.s_in = symmetric_scale(max_abs(act.data(), act.size()));
        ql.s_w = symmetric_scale(max_abs(w.data(), w.size()));
        ql.weights = matrix::Mat<std::int8_t>(w.rows(), w.cols());
        const double inv_sw = 1.0 / ql.s_w;
        for (std::size_t e = 0; e < w.size(); ++e) {
          ql.weights.data()[e] = quantize_sat(w.data()[e], inv_sw);
        }
        ql.bias.assign(lin.bias().data(),
                       lin.bias().data() + lin.bias().size());
        // Propagate the float layer for the next layer's calibration.
        matrix::MatD next(act.rows(), w.cols());
        matrix::matmul(act, w, next);
        matrix::add_bias_row(next, lin.bias());
        act = std::move(next);
        break;
      }
      case LayerType::kSigmoid:
        math::kml_sigmoid_span(act.data(), act.data(),
                               static_cast<long>(act.size()));
        break;
      case LayerType::kTanh:
        math::kml_tanh_span(act.data(), act.data(),
                            static_cast<long>(act.size()));
        break;
      case LayerType::kReLU:
        for (std::size_t e = 0; e < act.size(); ++e) {
          if (act.data()[e] < 0.0) act.data()[e] = 0.0;
        }
        break;
      default:
        KML_ERROR("quantize_int8: unsupported layer type %d",
                  static_cast<int>(layer.type()));
        return false;
    }
    q.int8_layers_.push_back(std::move(ql));
  }
  out = std::move(q);
  return true;
}

int QuantizedNetwork::infer_batch_scores(const double* features, int n,
                                         int count, double* scores_out,
                                         int* classes_out) const {
  if (mode_ != QuantMode::kInt8 || features == nullptr ||
      scores_out == nullptr || count <= 0 || n <= 0 || n != in_features()) {
    return 0;
  }
  matrix::FpuGuard<double> guard;

  // Stage + normalize into the activation scratch (count x n, row-major).
  act_.resize(static_cast<std::size_t>(count) * n);
  int width = n;
  const bool have_norm = !norm_mean_d_.empty();
  for (int r = 0; r < count; ++r) {
    const double* src = features + static_cast<std::size_t>(r) * n;
    double* dst = act_.data() + static_cast<std::size_t>(r) * n;
    if (have_norm) {
      for (int c = 0; c < n; ++c) {
        const auto idx = static_cast<std::size_t>(c);
        dst[c] = math::z_score(src[c], norm_mean_d_[idx], norm_std_d_[idx]);
      }
    } else {
      for (int c = 0; c < n; ++c) dst[c] = src[c];
    }
  }

  for (const Int8Layer& layer : int8_layers_) {
    const std::size_t elems = static_cast<std::size_t>(count) * width;
    switch (layer.type) {
      case LayerType::kLinear: {
        const int kin = layer.weights.rows();
        const int kout = layer.weights.cols();
        assert(width == kin);
        // Quantize this layer's input activations onto the calibrated grid.
        qin_.resize(elems);
        const double inv_sin = 1.0 / layer.s_in;
        for (std::size_t e = 0; e < elems; ++e) {
          qin_[e] = quantize_sat(act_[e], inv_sin);
        }
        // int8 GEMM through the SIMD seam (exact at every dispatch tier).
        acc_.resize(static_cast<std::size_t>(count) * kout);
        kml_simd_gemm_s8(qin_.data(), kin, layer.weights.data(), kout,
                         acc_.data(), kout, count, kout, kin);
        // Dequantize + bias back into double activations.
        next_.resize(static_cast<std::size_t>(count) * kout);
        const double scale = layer.s_in * layer.s_w;
        for (int r = 0; r < count; ++r) {
          const std::int32_t* arow =
              acc_.data() + static_cast<std::size_t>(r) * kout;
          double* nrow = next_.data() + static_cast<std::size_t>(r) * kout;
          for (int c = 0; c < kout; ++c) {
            nrow[c] = static_cast<double>(arow[c]) * scale +
                      layer.bias[static_cast<std::size_t>(c)];
          }
        }
        act_.swap(next_);
        width = kout;
        break;
      }
      case LayerType::kSigmoid:
        math::kml_sigmoid_span(act_.data(), act_.data(),
                               static_cast<long>(elems));
        break;
      case LayerType::kTanh:
        math::kml_tanh_span(act_.data(), act_.data(),
                            static_cast<long>(elems));
        break;
      case LayerType::kReLU:
        for (std::size_t e = 0; e < elems; ++e) {
          if (act_[e] < 0.0) act_[e] = 0.0;
        }
        break;
      default:
        return 0;
    }
  }

  for (int r = 0; r < count; ++r) {
    const double* row = act_.data() + static_cast<std::size_t>(r) * width;
    double* dst = scores_out + static_cast<std::size_t>(r) * width;
    int best = 0;
    for (int c = 0; c < width; ++c) {
      dst[c] = row[c];
      if (row[c] > row[best]) best = c;
    }
    if (classes_out != nullptr) classes_out[r] = best;
  }
  return count;
}

namespace {

constexpr std::uint32_t kQMagic = 0x514c4d4b;  // "KMLQ"
constexpr std::uint32_t kQVersionFixed16 = 1;  // Q16.16 payload
constexpr std::uint32_t kQVersionInt8 = 2;     // int8 weights + double scales
constexpr std::uint32_t kQMaxDim = 1u << 16;

bool write_u32(KmlFile* f, std::uint32_t v) {
  return kml_fwrite(f, &v, sizeof(v)) == sizeof(v);
}

bool read_u32(KmlFile* f, std::uint32_t& v) {
  return kml_fread(f, &v, sizeof(v)) == sizeof(v);
}

bool write_raw32(KmlFile* f, const math::Fixed* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(math::Fixed));
  return kml_fwrite(f, data, n * sizeof(math::Fixed)) == bytes;
}

bool read_raw32(KmlFile* f, math::Fixed* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(math::Fixed));
  return kml_fread(f, data, n * sizeof(math::Fixed)) == bytes;
}

bool write_f64(KmlFile* f, const double* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(double));
  return kml_fwrite(f, data, n * sizeof(double)) == bytes;
}

bool read_f64(KmlFile* f, double* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(double));
  return kml_fread(f, data, n * sizeof(double)) == bytes;
}

bool write_s8(KmlFile* f, const std::int8_t* data, std::size_t n) {
  if (n == 0) return true;
  return kml_fwrite(f, data, n) == static_cast<std::int64_t>(n);
}

bool read_s8(KmlFile* f, std::int8_t* data, std::size_t n) {
  if (n == 0) return true;
  return kml_fread(f, data, n) == static_cast<std::int64_t>(n);
}

}  // namespace

bool QuantizedNetwork::save(const char* path) const {
  KmlFile* f = kml_fopen(path, "w");
  if (f == nullptr) return false;
  bool ok;
  if (mode_ == QuantMode::kInt8) {
    ok = write_u32(f, kQMagic) && write_u32(f, kQVersionInt8);
    ok = ok && write_u32(f, static_cast<std::uint32_t>(norm_mean_d_.size()));
    ok = ok && write_f64(f, norm_mean_d_.data(), norm_mean_d_.size());
    ok = ok && write_f64(f, norm_std_d_.data(), norm_std_d_.size());
    ok = ok && write_u32(f, static_cast<std::uint32_t>(int8_layers_.size()));
    for (const Int8Layer& layer : int8_layers_) {
      ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.type));
      ok = ok &&
           write_u32(f, static_cast<std::uint32_t>(layer.weights.rows()));
      ok = ok &&
           write_u32(f, static_cast<std::uint32_t>(layer.weights.cols()));
      if (layer.type == LayerType::kLinear) {
        // Scales plus a zero-point word per tensor pair. The symmetric grid
        // always writes 0; the field exists so an asymmetric scheme can
        // bump the minor layout without a new version.
        ok = ok && write_f64(f, &layer.s_in, 1) && write_f64(f, &layer.s_w, 1);
        ok = ok && write_u32(f, 0u);
        ok = ok && write_s8(f, layer.weights.data(), layer.weights.size());
        ok = ok && write_f64(f, layer.bias.data(), layer.bias.size());
      }
    }
  } else {
    ok = write_u32(f, kQMagic) && write_u32(f, kQVersionFixed16);
    ok = ok && write_u32(f, static_cast<std::uint32_t>(norm_mean_.size()));
    ok = ok && write_raw32(f, norm_mean_.data(), norm_mean_.size());
    ok = ok && write_raw32(f, norm_inv_std_.data(), norm_inv_std_.size());

    ok = ok && write_u32(f, static_cast<std::uint32_t>(layers_.size()));
    for (const QLayer& layer : layers_) {
      ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.type));
      ok = ok &&
           write_u32(f, static_cast<std::uint32_t>(layer.weights.rows()));
      ok = ok &&
           write_u32(f, static_cast<std::uint32_t>(layer.weights.cols()));
      if (layer.type == LayerType::kLinear) {
        ok = ok && write_raw32(f, layer.weights.data(), layer.weights.size());
        ok = ok && write_raw32(f, layer.bias.data(), layer.bias.size());
      }
    }
  }
  kml_fclose(f);
  return ok;
}

bool QuantizedNetwork::load(const char* path) {
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) return false;
  QuantizedNetwork fresh;
  bool ok = true;

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  ok = read_u32(f, magic) && read_u32(f, version) && magic == kQMagic &&
       (version == kQVersionFixed16 || version == kQVersionInt8);

  std::uint32_t nfeat = 0;
  ok = ok && read_u32(f, nfeat) && nfeat <= kQMaxDim;
  if (ok && version == kQVersionInt8) {
    fresh.mode_ = QuantMode::kInt8;
    fresh.norm_mean_d_.resize(nfeat);
    fresh.norm_std_d_.resize(nfeat);
    ok = read_f64(f, fresh.norm_mean_d_.data(), nfeat) &&
         read_f64(f, fresh.norm_std_d_.data(), nfeat);
  } else if (ok) {
    fresh.norm_mean_.resize(nfeat);
    fresh.norm_inv_std_.resize(nfeat);
    ok = read_raw32(f, fresh.norm_mean_.data(), nfeat) &&
         read_raw32(f, fresh.norm_inv_std_.data(), nfeat);
  }

  std::uint32_t nlayers = 0;
  ok = ok && read_u32(f, nlayers) && nlayers <= 1024;
  for (std::uint32_t i = 0; ok && i < nlayers; ++i) {
    std::uint32_t type = 0;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    ok = read_u32(f, type) && read_u32(f, rows) && read_u32(f, cols) &&
         rows <= kQMaxDim && cols <= kQMaxDim;
    if (!ok) break;
    const auto ltype = static_cast<LayerType>(type);
    switch (ltype) {
      case LayerType::kLinear:
        break;
      case LayerType::kSigmoid:
      case LayerType::kReLU:
      case LayerType::kTanh:
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) break;
    if (version == kQVersionInt8) {
      Int8Layer layer;
      layer.type = ltype;
      if (ltype == LayerType::kLinear) {
        std::uint32_t zero_point = 1;
        ok = read_f64(f, &layer.s_in, 1) && read_f64(f, &layer.s_w, 1) &&
             read_u32(f, zero_point) && zero_point == 0 && layer.s_in > 0.0 &&
             layer.s_w > 0.0;
        if (ok) {
          layer.weights = matrix::Mat<std::int8_t>(static_cast<int>(rows),
                                                   static_cast<int>(cols));
          layer.bias.resize(cols);
          ok = read_s8(f, layer.weights.data(), layer.weights.size()) &&
               read_f64(f, layer.bias.data(), layer.bias.size());
        }
      }
      if (ok) fresh.int8_layers_.push_back(std::move(layer));
    } else {
      QLayer layer;
      layer.type = ltype;
      if (ltype == LayerType::kLinear) {
        layer.weights =
            matrix::MatX(static_cast<int>(rows), static_cast<int>(cols));
        layer.bias = matrix::MatX(1, static_cast<int>(cols));
        ok = read_raw32(f, layer.weights.data(), layer.weights.size()) &&
             read_raw32(f, layer.bias.data(), layer.bias.size());
      }
      if (ok) fresh.layers_.push_back(std::move(layer));
    }
  }
  kml_fclose(f);
  if (!ok) {
    KML_ERROR("QuantizedNetwork::load: failed to parse %s", path);
    return false;
  }
  *this = std::move(fresh);
  return true;
}

std::size_t QuantizedNetwork::param_bytes() const {
  if (mode_ == QuantMode::kInt8) {
    std::size_t total =
        (norm_mean_d_.size() + norm_std_d_.size()) * sizeof(double);
    for (const Int8Layer& layer : int8_layers_) {
      total += layer.weights.size() * sizeof(std::int8_t) +
               layer.bias.size() * sizeof(double) + 2 * sizeof(double);
    }
    return total;
  }
  std::size_t total =
      (norm_mean_.size() + norm_inv_std_.size()) * sizeof(math::Fixed);
  for (const QLayer& layer : layers_) {
    total += (layer.weights.size() + layer.bias.size()) * sizeof(math::Fixed);
  }
  return total;
}

}  // namespace kml::nn
