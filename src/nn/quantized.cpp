#include "nn/quantized.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "portability/log.h"

#include <cassert>

namespace kml::nn {
namespace {

constexpr double kQMax = 32000.0;  // safe margin inside Q16.16 range

bool in_range(const matrix::MatD& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (math::kml_abs(m.data()[i]) > kQMax) return false;
  }
  return true;
}

math::Fixed fixed_activation(LayerType type, math::Fixed x) {
  switch (type) {
    case LayerType::kSigmoid:
      return math::fixed_sigmoid(x);
    case LayerType::kReLU:
      return x > math::Fixed::zero() ? x : math::Fixed::zero();
    case LayerType::kTanh: {
      // hard tanh: clamp(x, -1, 1) — same piecewise-linear spirit.
      if (x > math::Fixed::one()) return math::Fixed::one();
      if (x < -math::Fixed::one()) return -math::Fixed::one();
      return x;
    }
    default:
      return x;
  }
}

}  // namespace

bool QuantizedNetwork::quantize(const Network& net, QuantizedNetwork& out) {
  QuantizedNetwork q;
  auto& mutable_net = const_cast<Network&>(net);
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& layer = mutable_net.layer(i);
    QLayer ql;
    ql.type = layer.type();
    switch (layer.type()) {
      case LayerType::kLinear: {
        auto& lin = static_cast<Linear&>(layer);
        if (!in_range(lin.weights()) || !in_range(lin.bias())) {
          KML_ERROR("quantize: layer %d weights exceed Q16.16 range", i);
          return false;
        }
        ql.weights = matrix::to_fixed(lin.weights());
        ql.bias = matrix::to_fixed(lin.bias());
        break;
      }
      case LayerType::kSigmoid:
      case LayerType::kReLU:
      case LayerType::kTanh:
        break;
      default:
        KML_ERROR("quantize: unsupported layer type %d",
                  static_cast<int>(layer.type()));
        return false;
    }
    q.layers_.push_back(std::move(ql));
  }

  std::vector<double> means;
  std::vector<double> stds;
  net.normalizer().export_moments(means, stds);
  for (std::size_t j = 0; j < means.size(); ++j) {
    if (math::kml_abs(means[j]) > kQMax) {
      KML_ERROR("quantize: normalizer mean %zu exceeds Q16.16 range", j);
      return false;
    }
    q.norm_mean_.push_back(math::Fixed::from_double(means[j]));
    const double inv = stds[j] < 1e-9 ? 0.0 : 1.0 / stds[j];
    q.norm_inv_std_.push_back(math::Fixed::from_double(inv));
  }
  out = std::move(q);
  return true;
}

matrix::MatX QuantizedNetwork::forward(const matrix::MatX& in) const {
  matrix::MatX activation = in;
  for (const QLayer& layer : layers_) {
    if (layer.type == LayerType::kLinear) {
      matrix::MatX out(activation.rows(), layer.weights.cols());
      matrix::matmul(activation, layer.weights, out);
      for (int r = 0; r < out.rows(); ++r) {
        for (int c = 0; c < out.cols(); ++c) {
          out.at(r, c) += layer.bias.at(0, c);
        }
      }
      activation = std::move(out);
    } else {
      for (std::size_t i = 0; i < activation.size(); ++i) {
        activation.data()[i] = fixed_activation(layer.type,
                                                activation.data()[i]);
      }
    }
  }
  return activation;
}

int QuantizedNetwork::infer_class(const double* features, int n) const {
  assert(static_cast<std::size_t>(n) == norm_mean_.size() ||
         norm_mean_.empty());
  matrix::MatX x(1, n);
  for (int j = 0; j < n; ++j) {
    math::Fixed v = math::Fixed::from_double(features[j]);
    if (!norm_mean_.empty()) {
      const auto idx = static_cast<std::size_t>(j);
      v = (v - norm_mean_[idx]) * norm_inv_std_[idx];
    }
    x.at(0, j) = v;
  }
  const matrix::MatX logits = forward(x);
  int best = 0;
  for (int c = 1; c < logits.cols(); ++c) {
    if (logits.at(0, c) > logits.at(0, best)) best = c;
  }
  return best;
}

int QuantizedNetwork::in_features() const {
  for (const QLayer& layer : layers_) {
    if (layer.type == LayerType::kLinear) return layer.weights.rows();
  }
  return 0;
}

int QuantizedNetwork::out_features() const {
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if (it->type == LayerType::kLinear) return it->weights.cols();
  }
  return 0;
}

namespace {

constexpr std::uint32_t kQMagic = 0x514c4d4b;  // "KMLQ"
constexpr std::uint32_t kQVersion = 1;
constexpr std::uint32_t kQMaxDim = 1u << 16;

bool write_u32(KmlFile* f, std::uint32_t v) {
  return kml_fwrite(f, &v, sizeof(v)) == sizeof(v);
}

bool read_u32(KmlFile* f, std::uint32_t& v) {
  return kml_fread(f, &v, sizeof(v)) == sizeof(v);
}

bool write_raw32(KmlFile* f, const math::Fixed* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(math::Fixed));
  return kml_fwrite(f, data, n * sizeof(math::Fixed)) == bytes;
}

bool read_raw32(KmlFile* f, math::Fixed* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(math::Fixed));
  return kml_fread(f, data, n * sizeof(math::Fixed)) == bytes;
}

}  // namespace

bool QuantizedNetwork::save(const char* path) const {
  KmlFile* f = kml_fopen(path, "w");
  if (f == nullptr) return false;
  bool ok = write_u32(f, kQMagic) && write_u32(f, kQVersion);

  ok = ok && write_u32(f, static_cast<std::uint32_t>(norm_mean_.size()));
  ok = ok && write_raw32(f, norm_mean_.data(), norm_mean_.size());
  ok = ok && write_raw32(f, norm_inv_std_.data(), norm_inv_std_.size());

  ok = ok && write_u32(f, static_cast<std::uint32_t>(layers_.size()));
  for (const QLayer& layer : layers_) {
    ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.type));
    ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.weights.rows()));
    ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.weights.cols()));
    if (layer.type == LayerType::kLinear) {
      ok = ok && write_raw32(f, layer.weights.data(), layer.weights.size());
      ok = ok && write_raw32(f, layer.bias.data(), layer.bias.size());
    }
  }
  kml_fclose(f);
  return ok;
}

bool QuantizedNetwork::load(const char* path) {
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) return false;
  QuantizedNetwork fresh;
  bool ok = true;

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  ok = read_u32(f, magic) && read_u32(f, version) && magic == kQMagic &&
       version == kQVersion;

  std::uint32_t nfeat = 0;
  ok = ok && read_u32(f, nfeat) && nfeat <= kQMaxDim;
  if (ok) {
    fresh.norm_mean_.resize(nfeat);
    fresh.norm_inv_std_.resize(nfeat);
    ok = read_raw32(f, fresh.norm_mean_.data(), nfeat) &&
         read_raw32(f, fresh.norm_inv_std_.data(), nfeat);
  }

  std::uint32_t nlayers = 0;
  ok = ok && read_u32(f, nlayers) && nlayers <= 1024;
  for (std::uint32_t i = 0; ok && i < nlayers; ++i) {
    std::uint32_t type = 0;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    ok = read_u32(f, type) && read_u32(f, rows) && read_u32(f, cols) &&
         rows <= kQMaxDim && cols <= kQMaxDim;
    if (!ok) break;
    QLayer layer;
    layer.type = static_cast<LayerType>(type);
    switch (layer.type) {
      case LayerType::kLinear:
        layer.weights = matrix::MatX(static_cast<int>(rows),
                                     static_cast<int>(cols));
        layer.bias = matrix::MatX(1, static_cast<int>(cols));
        ok = read_raw32(f, layer.weights.data(), layer.weights.size()) &&
             read_raw32(f, layer.bias.data(), layer.bias.size());
        break;
      case LayerType::kSigmoid:
      case LayerType::kReLU:
      case LayerType::kTanh:
        break;
      default:
        ok = false;
        break;
    }
    if (ok) fresh.layers_.push_back(std::move(layer));
  }
  kml_fclose(f);
  if (!ok) {
    KML_ERROR("QuantizedNetwork::load: failed to parse %s", path);
    return false;
  }
  *this = std::move(fresh);
  return true;
}

std::size_t QuantizedNetwork::param_bytes() const {
  std::size_t total =
      (norm_mean_.size() + norm_inv_std_.size()) * sizeof(math::Fixed);
  for (const QLayer& layer : layers_) {
    total += (layer.weights.size() + layer.bias.size()) * sizeof(math::Fixed);
  }
  return total;
}

}  // namespace kml::nn
