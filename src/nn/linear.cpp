#include "nn/linear.h"

#include "matrix/linalg.h"

namespace kml::nn {

Linear::Linear(int in_features, int out_features, math::Rng& rng)
    : weights_(matrix::xavier_uniform(in_features, out_features, rng)),
      bias_(1, out_features),
      grad_w_(in_features, out_features),
      grad_b_(1, out_features) {}

Linear::Linear(int in_features, int out_features)
    : weights_(in_features, out_features),
      bias_(1, out_features),
      grad_w_(in_features, out_features),
      grad_b_(1, out_features) {}

matrix::MatD Linear::forward(const matrix::MatD& in) {
  matrix::MatD out;
  forward_into(in, out);
  return out;
}

void Linear::forward_into(const matrix::MatD& in, matrix::MatD& out) {
  assert(in.data() != out.data());
  // The backward pass needs the input activation; inference does not — in
  // eval mode the deep copy (the per-call allocation the paper's 21 µs
  // inference budget cannot afford) is skipped entirely.
  if (training_) cached_in_.copy_from(in);
  out.ensure_shape(in.rows(), weights_.cols());
  matrix::matmul(in, weights_, out);
  matrix::add_bias_row(out, bias_);
}

matrix::MatD Linear::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Linear::backward_into(const matrix::MatD& grad_out,
                           matrix::MatD& grad_in) {
  assert(grad_out.data() != grad_in.data());
  // dL/dW += in^T * grad_out;  dL/db += column sums;  dL/din = grad_out * W^T
  scratch_gw_.ensure_shape(weights_.rows(), weights_.cols());
  matrix::matmul_at(cached_in_, grad_out, scratch_gw_);
  matrix::add(grad_w_, scratch_gw_, grad_w_);

  scratch_gb_.ensure_shape(1, bias_.cols());
  matrix::col_sums(grad_out, scratch_gb_);
  matrix::add(grad_b_, scratch_gb_, grad_b_);

  grad_in.ensure_shape(grad_out.rows(), weights_.rows());
  matrix::matmul_bt(grad_out, weights_, grad_in);
}

void Linear::forward_slice(const matrix::MatD& in, matrix::MatD& out,
                           LayerSlice& ctx) {
  assert(in.data() != out.data());
  // Same math as forward_into, but the backward cache is the worker's own.
  ctx.cache.copy_from(in);
  out.ensure_shape(in.rows(), weights_.cols());
  matrix::matmul(in, weights_, out);
  matrix::add_bias_row(out, bias_);
}

void Linear::backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                            matrix::MatD& grad_in) {
  assert(grad_out.data() != grad_in.data());
  if (ctx.pgrads.size() < 2) ctx.pgrads.resize(2);  // first use only
  matrix::MatD& gw = ctx.pgrads[0];
  matrix::MatD& gb = ctx.pgrads[1];
  gw.ensure_shape(weights_.rows(), weights_.cols());
  matrix::matmul_at(ctx.cache, grad_out, gw);
  gb.ensure_shape(1, bias_.cols());
  matrix::col_sums(grad_out, gb);
  grad_in.ensure_shape(grad_out.rows(), weights_.rows());
  matrix::matmul_bt(grad_out, weights_, grad_in);
}

std::vector<ParamRef> Linear::params() {
  return {{&weights_, &grad_w_}, {&bias_, &grad_b_}};
}

void Linear::zero_grad() {
  grad_w_.fill(0.0);
  grad_b_.fill(0.0);
}

}  // namespace kml::nn
