#include "nn/linear.h"

#include "matrix/linalg.h"

namespace kml::nn {

Linear::Linear(int in_features, int out_features, math::Rng& rng)
    : weights_(matrix::xavier_uniform(in_features, out_features, rng)),
      bias_(1, out_features),
      grad_w_(in_features, out_features),
      grad_b_(1, out_features) {}

Linear::Linear(int in_features, int out_features)
    : weights_(in_features, out_features),
      bias_(1, out_features),
      grad_w_(in_features, out_features),
      grad_b_(1, out_features) {}

matrix::MatD Linear::forward(const matrix::MatD& in) {
  cached_in_ = in;
  matrix::MatD out(in.rows(), weights_.cols());
  matrix::matmul(in, weights_, out);
  matrix::add_bias_row(out, bias_);
  return out;
}

matrix::MatD Linear::backward(const matrix::MatD& grad_out) {
  // dL/dW += in^T * grad_out;  dL/db += column sums;  dL/din = grad_out * W^T
  matrix::MatD gw(weights_.rows(), weights_.cols());
  matrix::matmul_at(cached_in_, grad_out, gw);
  matrix::add(grad_w_, gw, grad_w_);

  matrix::MatD gb(1, bias_.cols());
  matrix::col_sums(grad_out, gb);
  matrix::add(grad_b_, gb, grad_b_);

  matrix::MatD grad_in(grad_out.rows(), weights_.rows());
  matrix::matmul_bt(grad_out, weights_, grad_in);
  return grad_in;
}

std::vector<ParamRef> Linear::params() {
  return {{&weights_, &grad_w_}, {&bias_, &grad_b_}};
}

}  // namespace kml::nn
