// layer.h — differentiable layer interface (§2).
//
// "For each layer type and loss function, we implemented a function for
// forward propagation (i.e., inference), and another for back-propagation."
// Extensibility contract (§2): a new layer implements exactly three things —
// construction/initialization, forward(), and backward(). Gradients flow by
// reverse-mode automatic differentiation: backward() receives dL/d(output)
// and must (a) accumulate dL/d(params) into its grad buffers and (b) return
// dL/d(input) for the upstream layer.
//
// Bulk tensors live in Mat<double> (kml_malloc-backed); training precision
// is double, with float/fixed conversions available for deployment.
#pragma once

#include "matrix/matrix.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace kml::nn {

// Layer type tags; also the on-disk discriminator in the model file format.
enum class LayerType : std::uint32_t {
  kLinear = 1,
  kSigmoid = 2,
  kReLU = 3,
  kTanh = 4,
};

// One trainable tensor and its gradient, exposed to the optimizer.
struct ParamRef {
  matrix::MatD* value;
  matrix::MatD* grad;
};

// Per-(layer, worker) training context for the data-parallel minibatch path.
// The serial path keeps the backward caches and gradient accumulators inside
// the layer; when a minibatch is split across workers each worker needs its
// own copies, owned by the Network and handed in here. `pgrads` holds the
// worker's *partial* parameter gradients (same order as params()); the
// Network reduces them into the layer's accumulators in fixed worker-index
// order after the parallel region.
struct LayerSlice {
  matrix::MatD cache;                 // layer-specific saved activation
  std::vector<matrix::MatD> pgrads;   // partial dL/d(param) per params() entry
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Inference path. `in` is (batch x in_features); returns
  // (batch x out_features). Implementations cache what backward() needs.
  virtual matrix::MatD forward(const matrix::MatD& in) = 0;

  // Training path. `grad_out` is dL/d(output) with the same shape forward
  // returned; returns dL/d(input). Must be called after forward() on the
  // same batch.
  virtual matrix::MatD backward(const matrix::MatD& grad_out) = 0;

  // Allocation-free hot path: identical math to forward()/backward() but
  // the result lands in caller-owned scratch (reshaped via ensure_shape, so
  // steady-state repeat shapes never hit the allocator). `out`/`grad_in`
  // must not alias `in`/`grad_out`. The base implementations fall back to
  // the allocating path so external Layer subclasses keep working; every
  // in-tree layer overrides them.
  virtual void forward_into(const matrix::MatD& in, matrix::MatD& out);
  virtual void backward_into(const matrix::MatD& grad_out,
                             matrix::MatD& grad_in);

  // Data-parallel training path: identical math to forward_into/
  // backward_into, but all mutable state (backward caches, parameter-
  // gradient accumulation) lives in the caller-owned per-worker `ctx`, so
  // distinct workers can run disjoint row slices of one minibatch
  // concurrently. backward_slice OVERWRITES ctx.pgrads with this slice's
  // partial gradients (it does not accumulate into the layer). Layers that
  // override these return true from supports_parallel_train(); the base
  // fallbacks run the serial member-state path and are only valid when no
  // other slice is in flight.
  virtual bool supports_parallel_train() const { return false; }
  virtual void forward_slice(const matrix::MatD& in, matrix::MatD& out,
                             LayerSlice& ctx);
  virtual void backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                              matrix::MatD& grad_in);

  // Trainable parameters (empty for activations).
  virtual std::vector<ParamRef> params() { return {}; }

  // Zero all parameter gradients before a new batch. Virtual so layers with
  // parameters can fill their grad buffers directly instead of paying the
  // params() vector allocation per training step.
  virtual void zero_grad();

  // Train/eval mode (default: training, matching historical behaviour).
  // Eval mode lets layers skip the backward-pass caches entirely — the
  // deep copies of every activation that made inference allocate.
  void set_training(bool on) { training_ = on; }
  bool training() const { return training_; }

  virtual LayerType type() const = 0;
  virtual const char* name() const = 0;

  // Feature counts; 0 means "shape-preserving" (activations).
  virtual int in_features() const { return 0; }
  virtual int out_features() const { return 0; }

 protected:
  bool training_ = true;
};

}  // namespace kml::nn
