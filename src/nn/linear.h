// linear.h — fully connected layer: out = in * W + b (§2).
#pragma once

#include "nn/layer.h"

namespace kml::nn {

class Linear : public Layer {
 public:
  // Xavier-uniform initialized weights; zero bias.
  Linear(int in_features, int out_features, math::Rng& rng);

  // Uninitialized (zero) weights — used by the deserializer.
  Linear(int in_features, int out_features);

  matrix::MatD forward(const matrix::MatD& in) override;
  matrix::MatD backward(const matrix::MatD& grad_out) override;
  void forward_into(const matrix::MatD& in, matrix::MatD& out) override;
  void backward_into(const matrix::MatD& grad_out,
                     matrix::MatD& grad_in) override;
  bool supports_parallel_train() const override { return true; }
  void forward_slice(const matrix::MatD& in, matrix::MatD& out,
                     LayerSlice& ctx) override;
  void backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                      matrix::MatD& grad_in) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  LayerType type() const override { return LayerType::kLinear; }
  const char* name() const override { return "linear"; }
  int in_features() const override { return weights_.rows(); }
  int out_features() const override { return weights_.cols(); }

  matrix::MatD& weights() { return weights_; }
  matrix::MatD& bias() { return bias_; }
  const matrix::MatD& weights() const { return weights_; }
  const matrix::MatD& bias() const { return bias_; }

 private:
  matrix::MatD weights_;   // (in x out)
  matrix::MatD bias_;      // (1 x out)
  matrix::MatD grad_w_;
  matrix::MatD grad_b_;
  matrix::MatD cached_in_;  // saved activation for the backward pass
  // Per-batch gradient scratch: backward() accumulates into grad_w_/grad_b_
  // through these so repeated steps reuse one allocation.
  matrix::MatD scratch_gw_;
  matrix::MatD scratch_gb_;
};

}  // namespace kml::nn
