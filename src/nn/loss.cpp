#include "nn/loss.h"

#include "math/approx.h"
#include "matrix/linalg.h"

#include <cassert>

namespace kml::nn {

double Loss::forward_backward_slice(const matrix::MatD& pred,
                                    const matrix::MatD& target,
                                    int total_rows, matrix::MatD& grad) {
  // Serial-only fallback for external subclasses (supports_slices() is
  // false, so the Network never runs this concurrently). Rescale the mean-
  // normalized gradient back to slice convention.
  const double mean_loss = forward(pred, target);
  backward_into(grad);
  const double slice_norm = slice_loss_norm(pred.rows(), pred.cols());
  matrix::scale(grad, slice_norm / slice_loss_norm(total_rows, pred.cols()));
  return mean_loss * slice_norm;
}

double Loss::slice_loss_norm(int total_rows, int /*cols*/) const {
  return static_cast<double>(total_rows);
}

double CrossEntropyLoss::forward(const matrix::MatD& pred,
                                 const matrix::MatD& target) {
  assert(pred.same_shape(target));
  // Cache reuse: ensure_shape only reallocates on growth, so steady-state
  // batches of one shape hit the allocator exactly zero times (previously
  // every call paid a fresh softmax matrix plus a target deep copy).
  cached_softmax_.ensure_shape(pred.rows(), pred.cols());
  matrix::softmax_rows(pred, cached_softmax_);
  cached_target_.copy_from(target);

  matrix::FpuGuard<double> guard;
  double total = 0.0;
  for (int i = 0; i < pred.rows(); ++i) {
    // loss_i = logsumexp(logits) - logits[true]; computed via the cached
    // softmax as -log(p_true), floored to avoid log(0).
    for (int j = 0; j < pred.cols(); ++j) {
      if (target.at(i, j) > 0.0) {
        const double p =
            math::kml_max(cached_softmax_.at(i, j), 1e-300);
        total += -math::kml_log(p) * target.at(i, j);
      }
    }
  }
  return total / static_cast<double>(pred.rows());
}

double CrossEntropyLoss::forward_backward_slice(const matrix::MatD& pred,
                                                const matrix::MatD& target,
                                                int total_rows,
                                                matrix::MatD& grad) {
  assert(pred.same_shape(target));
  // Fused softmax + NLL sum + gradient, all in caller scratch: the softmax
  // lands directly in `grad`, then becomes (softmax - target) / total in
  // place. No member state, so worker slices can run concurrently.
  grad.ensure_shape(pred.rows(), pred.cols());
  matrix::softmax_rows(pred, grad);
  matrix::FpuGuard<double> guard;
  double total = 0.0;
  for (int i = 0; i < pred.rows(); ++i) {
    for (int j = 0; j < pred.cols(); ++j) {
      if (target.at(i, j) > 0.0) {
        const double p = math::kml_max(grad.at(i, j), 1e-300);
        total += -math::kml_log(p) * target.at(i, j);
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(total_rows);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] = (grad.data()[i] - target.data()[i]) * inv;
  }
  return total;
}

double CrossEntropyLoss::slice_loss_norm(int total_rows, int /*cols*/) const {
  return static_cast<double>(total_rows);
}

matrix::MatD CrossEntropyLoss::backward() {
  matrix::MatD grad;
  backward_into(grad);
  return grad;
}

void CrossEntropyLoss::backward_into(matrix::MatD& grad) {
  assert(!cached_softmax_.empty());
  grad.ensure_shape(cached_softmax_.rows(), cached_softmax_.cols());
  matrix::sub(cached_softmax_, cached_target_, grad);
  matrix::scale(grad, 1.0 / static_cast<double>(grad.rows()));
}

double MSELoss::forward(const matrix::MatD& pred,
                        const matrix::MatD& target) {
  assert(pred.same_shape(target));
  cached_pred_.copy_from(pred);
  cached_target_.copy_from(target);
  matrix::FpuGuard<double> guard;
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    total += d * d;
  }
  return total / static_cast<double>(pred.size());
}

double MSELoss::forward_backward_slice(const matrix::MatD& pred,
                                       const matrix::MatD& target,
                                       int total_rows, matrix::MatD& grad) {
  assert(pred.same_shape(target));
  grad.ensure_shape(pred.rows(), pred.cols());
  matrix::FpuGuard<double> guard;
  const double scale =
      2.0 / (static_cast<double>(total_rows) *
             static_cast<double>(pred.cols() > 0 ? pred.cols() : 1));
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    total += d * d;
    grad.data()[i] = d * scale;
  }
  return total;
}

double MSELoss::slice_loss_norm(int total_rows, int cols) const {
  return static_cast<double>(total_rows) *
         static_cast<double>(cols > 0 ? cols : 1);
}

matrix::MatD MSELoss::backward() {
  matrix::MatD grad;
  backward_into(grad);
  return grad;
}

void MSELoss::backward_into(matrix::MatD& grad) {
  assert(!cached_pred_.empty());
  grad.ensure_shape(cached_pred_.rows(), cached_pred_.cols());
  matrix::sub(cached_pred_, cached_target_, grad);
  matrix::scale(grad, 2.0 / static_cast<double>(grad.size()));
}

}  // namespace kml::nn
