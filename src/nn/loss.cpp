#include "nn/loss.h"

#include "math/approx.h"
#include "matrix/linalg.h"

#include <cassert>

namespace kml::nn {

double CrossEntropyLoss::forward(const matrix::MatD& pred,
                                 const matrix::MatD& target) {
  assert(pred.same_shape(target));
  // Cache reuse: ensure_shape only reallocates on growth, so steady-state
  // batches of one shape hit the allocator exactly zero times (previously
  // every call paid a fresh softmax matrix plus a target deep copy).
  cached_softmax_.ensure_shape(pred.rows(), pred.cols());
  matrix::softmax_rows(pred, cached_softmax_);
  cached_target_.copy_from(target);

  matrix::FpuGuard<double> guard;
  double total = 0.0;
  for (int i = 0; i < pred.rows(); ++i) {
    // loss_i = logsumexp(logits) - logits[true]; computed via the cached
    // softmax as -log(p_true), floored to avoid log(0).
    for (int j = 0; j < pred.cols(); ++j) {
      if (target.at(i, j) > 0.0) {
        const double p =
            math::kml_max(cached_softmax_.at(i, j), 1e-300);
        total += -math::kml_log(p) * target.at(i, j);
      }
    }
  }
  return total / static_cast<double>(pred.rows());
}

matrix::MatD CrossEntropyLoss::backward() {
  matrix::MatD grad;
  backward_into(grad);
  return grad;
}

void CrossEntropyLoss::backward_into(matrix::MatD& grad) {
  assert(!cached_softmax_.empty());
  grad.ensure_shape(cached_softmax_.rows(), cached_softmax_.cols());
  matrix::sub(cached_softmax_, cached_target_, grad);
  matrix::scale(grad, 1.0 / static_cast<double>(grad.rows()));
}

double MSELoss::forward(const matrix::MatD& pred,
                        const matrix::MatD& target) {
  assert(pred.same_shape(target));
  cached_pred_.copy_from(pred);
  cached_target_.copy_from(target);
  matrix::FpuGuard<double> guard;
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    total += d * d;
  }
  return total / static_cast<double>(pred.size());
}

matrix::MatD MSELoss::backward() {
  matrix::MatD grad;
  backward_into(grad);
  return grad;
}

void MSELoss::backward_into(matrix::MatD& grad) {
  assert(!cached_pred_.empty());
  grad.ensure_shape(cached_pred_.rows(), cached_pred_.cols());
  matrix::sub(cached_pred_, cached_target_, grad);
  matrix::scale(grad, 2.0 / static_cast<double>(grad.size()));
}

}  // namespace kml::nn
