// serialize.h — the KML model file format (§3.3).
//
// The development loop the paper describes: train and debug a model in user
// space, "save the model to a file that has a KML-specific file format",
// then load it from a kernel module for in-kernel inference. The format
// carries the layer chain, all weights, and the fitted Z-score normalizer
// (a model without its feature moments is undeployable).
//
// Layout (little-endian):
//   u32 magic 'KMLM'   u32 version
//   u32 num_features   f64 means[]   f64 stddevs[]   (normalizer)
//   u32 num_layers
//   per layer: u32 type, u32 in, u32 out, [f64 weights (in*out), f64 bias
//   (out)] for linear layers; activations carry no payload.
#pragma once

#include "nn/network.h"

namespace kml::nn {

inline constexpr std::uint32_t kModelMagic = 0x4d4c4d4b;  // "KMLM"
inline constexpr std::uint32_t kModelVersion = 1;

// Write `net` to `path`. Returns false on I/O failure.
bool save_model(const Network& net, const char* path);

// Load a network from `path` into `out` (replacing its contents).
// Returns false on I/O error, bad magic/version, or malformed layer data.
bool load_model(Network& out, const char* path);

}  // namespace kml::nn
