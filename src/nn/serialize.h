// serialize.h — the KML model file format (§3.3).
//
// The development loop the paper describes: train and debug a model in user
// space, "save the model to a file that has a KML-specific file format",
// then load it from a kernel module for in-kernel inference. The format
// carries the layer chain, all weights, and the fitted Z-score normalizer
// (a model without its feature moments is undeployable).
//
// Layout (little-endian):
//   u32 magic 'KMLM'   u32 version
//   u32 num_features   f64 means[]   f64 stddevs[]   (normalizer)
//   u32 num_layers
//   per layer: u32 type, u32 in, u32 out, [f64 weights (in*out), f64 bias
//   (out)] for linear layers; activations carry no payload.
//   version >= 2 only: u32 CRC-32 footer over every preceding byte.
//
// Robustness contract (the in-kernel loader cannot afford anything less):
//   * save_model is atomic — it writes `path`.tmp and rename(2)s it into
//     place, so a crash mid-save never corrupts the deployed model;
//   * load_model treats the file as hostile: dimensions are bounds-checked
//     against the remaining payload *before* any allocation (a corrupt
//     header cannot drive a multi-GiB kml_malloc), the whole file is capped
//     at kMaxModelFileBytes, and a truncated/bit-flipped file yields false,
//     never a crash;
//   * version-1 files (no CRC) still load; version-2 files must pass the
//     checksum.
#pragma once

#include "nn/network.h"

namespace kml::nn {

inline constexpr std::uint32_t kModelMagic = 0x4d4c4d4b;  // "KMLM"
inline constexpr std::uint32_t kModelVersion = 2;
// Oldest version load_model still accepts.
inline constexpr std::uint32_t kMinModelVersion = 1;
// Upper bound on a loadable model file; bounds the load-time allocation no
// matter what the header claims (the paper's models are ~4 KB).
inline constexpr std::int64_t kMaxModelFileBytes = 16ll << 20;

// CRC-32 (IEEE 802.3 polynomial) of `data`; exposed for tests that craft
// or corrupt model files by hand.
std::uint32_t model_crc32(const void* data, std::size_t size);

// Write `net` to `path` (version kModelVersion, CRC footer). Returns false
// on I/O failure; on failure the previous file at `path`, if any, is left
// intact.
bool save_model(const Network& net, const char* path);

// Load a network from `path` into `out`. Returns false on I/O error, bad
// magic/version, checksum mismatch, or malformed layer data; on failure
// `out` is left untouched.
bool load_model(Network& out, const char* path);

}  // namespace kml::nn
