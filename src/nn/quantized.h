// quantized.h — FPU-free fixed-point inference (§3.1).
//
// "Another way to perform FP operations in a kernel is to use a fixed-point
// representation. Operations on fixed-point representations can be faster
// and do not require an FP unit in the running processor." KML supports
// int/float/double matrices; this module completes the story: convert a
// trained double-precision chain network into Q16.16 fixed point (weights,
// biases, and the normalizer moments) and run inference without a single
// kernel_fpu_begin(). Activations use the piecewise-linear hard sigmoid.
//
// The tradeoff the paper warns about ("fixed-point representations cannot
// emulate large ranges, which can lead to numerical instability") is real:
// inputs must be normalized (Z-scores are O(1)) and accuracy drops slightly
// — tests and bench_ablation quantify it.
#pragma once

#include "matrix/linalg.h"
#include "nn/network.h"

#include <vector>

namespace kml::nn {

class QuantizedNetwork {
 public:
  QuantizedNetwork() = default;

  // Quantize a trained chain network. Supported layers: Linear, Sigmoid,
  // ReLU, Tanh. Returns false (leaving `out` untouched) on unsupported
  // layers or weights outside the representable Q16.16 range.
  static bool quantize(const Network& net, QuantizedNetwork& out);

  // Forward pass, fixed-point end to end. `features` are RAW (the quantized
  // normalizer is applied internally). Returns the argmax class.
  int infer_class(const double* features, int n) const;

  // Fixed-point logits for inspection/testing.
  matrix::MatX forward(const matrix::MatX& in) const;

  int num_layers() const { return static_cast<int>(layers_.size()); }
  int in_features() const;
  int out_features() const;

  // Bytes of fixed-point parameter storage (4 B/element vs 8 B double).
  std::size_t param_bytes() const;

  // Quantized model file format ('KMLQ'): the artifact a strictly FPU-free
  // kernel deployment loads — raw Q16.16 words, no doubles anywhere.
  bool save(const char* path) const;
  bool load(const char* path);

 private:
  struct QLayer {
    LayerType type;
    matrix::MatX weights;  // empty for activations
    matrix::MatX bias;
  };

  std::vector<QLayer> layers_;
  std::vector<math::Fixed> norm_mean_;
  std::vector<math::Fixed> norm_inv_std_;  // precomputed 1/stddev
};

}  // namespace kml::nn
