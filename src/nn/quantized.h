// quantized.h — FPU-free fixed-point inference (§3.1).
//
// "Another way to perform FP operations in a kernel is to use a fixed-point
// representation. Operations on fixed-point representations can be faster
// and do not require an FP unit in the running processor." KML supports
// int/float/double matrices; this module completes the story: convert a
// trained double-precision chain network into Q16.16 fixed point (weights,
// biases, and the normalizer moments) and run inference without a single
// kernel_fpu_begin(). Activations use the piecewise-linear hard sigmoid.
//
// The tradeoff the paper warns about ("fixed-point representations cannot
// emulate large ranges, which can lead to numerical instability") is real:
// inputs must be normalized (Z-scores are O(1)) and accuracy drops slightly
// — tests and bench_ablation quantify it.
//
// PR 9 adds a second quantization mode: int8 weights with per-layer
// symmetric quantize-after-train calibration. Weights and the per-linear
// input activations are mapped to int8 by max-abs scales (s = maxabs/127,
// zero-point 0), the GEMM runs int8×int8→int32 through the portability
// SIMD seam (exact integer arithmetic, bit-identical at every dispatch
// tier), and each output is dequantized as acc·(s_in·s_w) + bias with
// double activations between layers. That keeps accuracy within a point of
// float on the Table 2 workloads while the hot multiply runs 8–16 lanes
// wide — the serving-side speed story, complementing kFixed16's strictly
// FPU-free kernel story.
#pragma once

#include "matrix/linalg.h"
#include "nn/network.h"

#include <cstdint>
#include <vector>

namespace kml::nn {

// Which parameter representation a QuantizedNetwork holds. A given
// instance is exactly one of these (set by the quantize call or the loaded
// file version).
enum class QuantMode { kFixed16 = 0, kInt8 = 1 };

class QuantizedNetwork {
 public:
  QuantizedNetwork() = default;

  // Quantize a trained chain network to Q16.16. Supported layers: Linear,
  // Sigmoid, ReLU, Tanh. Returns false (leaving `out` untouched) on
  // unsupported layers or weights outside the representable Q16.16 range.
  static bool quantize(const Network& net, QuantizedNetwork& out);

  // Quantize to int8 with per-layer symmetric max-abs calibration.
  // `calib_raw` is a batch of RAW (un-normalized) feature rows; it is
  // normalized with the network's own moments and propagated through the
  // float layers to observe each linear layer's input range. Scales use the
  // symmetric ±127 grid (no -128, no zero-point). Returns false on
  // unsupported layers or an empty/mismatched calibration batch.
  static bool quantize_int8(const Network& net, const matrix::MatD& calib_raw,
                            QuantizedNetwork& out);

  QuantMode mode() const { return mode_; }

  // Forward pass, fixed-point end to end (kFixed16 only). `features` are
  // RAW (the quantized normalizer is applied internally). Returns the
  // argmax class.
  int infer_class(const double* features, int n) const;

  // Batched inference, shaped exactly like Engine::infer_batch_scores:
  // `features` is row-major (count x n) RAW rows; scores_out (row-major,
  // count x out_features()) receives the dequantized final-layer outputs;
  // classes_out (may be nullptr) the per-row argmax. Returns rows served
  // (count, or 0 on bad arguments / kFixed16 mode). NOT thread-safe: the
  // scratch buffers are members (zero allocations at steady state), so one
  // thread serves at a time — the fleet consumer's single-threaded contract.
  int infer_batch_scores(const double* features, int n, int count,
                         double* scores_out, int* classes_out) const;

  // Fixed-point logits for inspection/testing (kFixed16 only).
  matrix::MatX forward(const matrix::MatX& in) const;

  int num_layers() const;
  int in_features() const;
  int out_features() const;

  // Bytes of quantized parameter storage (4 B/element Q16.16, 1 B/element
  // int8 weights + the double scales/biases).
  std::size_t param_bytes() const;

  // Quantized model file format ('KMLQ'). v1: raw Q16.16 words, no doubles
  // anywhere (the strictly FPU-free artifact). v2: int8 weights plus double
  // scales/zero-points/biases. save() writes the version matching mode();
  // load() accepts both.
  bool save(const char* path) const;
  bool load(const char* path);

 private:
  struct QLayer {
    LayerType type;
    matrix::MatX weights;  // empty for activations
    matrix::MatX bias;
  };

  // One int8-mode layer. Activation layers carry only `type`; linear
  // layers carry int8 weights (in x out), double bias, and the two
  // symmetric scales such that real ≈ q * scale.
  struct Int8Layer {
    LayerType type = LayerType::kLinear;
    matrix::Mat<std::int8_t> weights;
    std::vector<double> bias;
    double s_in = 1.0;  // input-activation scale (calibrated)
    double s_w = 1.0;   // weight scale
  };

  QuantMode mode_ = QuantMode::kFixed16;

  // kFixed16 state.
  std::vector<QLayer> layers_;
  std::vector<math::Fixed> norm_mean_;
  std::vector<math::Fixed> norm_inv_std_;  // precomputed 1/stddev

  // kInt8 state. Normalizer moments stay double: the int8 path normalizes
  // with math::z_score exactly like the float engine, so the only accuracy
  // loss is the weight/activation grid.
  std::vector<Int8Layer> int8_layers_;
  std::vector<double> norm_mean_d_;
  std::vector<double> norm_std_d_;

  // Batched-inference scratch (sized on first use, reused after — the
  // reason infer_batch_scores is single-threaded).
  mutable std::vector<double> act_;
  mutable std::vector<double> next_;
  mutable std::vector<double> scores_;  // infer_class's one-row staging
  mutable std::vector<std::int8_t> qin_;
  mutable std::vector<std::int32_t> acc_;
};

}  // namespace kml::nn
