#include "nn/serialize.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "portability/checksum.h"
#include "portability/file.h"
#include "portability/log.h"

#include <cstring>
#include <string>
#include <vector>

namespace kml::nn {
namespace {

// Layer shapes are bounded to keep a corrupt file from driving giant
// allocations during load (belt; the remaining-bytes check below is the
// suspenders).
constexpr std::uint32_t kMaxDim = 1u << 16;
constexpr std::uint32_t kMaxLayers = 1024;

// --- Byte-buffer serialization ----------------------------------------------
//
// Both directions go through an in-memory image of the file. On save that
// makes the CRC and the atomic tmp-file+rename commit trivial; on load it
// lets every field be validated against the *actual* remaining bytes before
// any allocation happens, so the parser's allocation is bounded by the file
// size (itself capped) rather than by whatever a hostile header claims.

class ByteWriter {
 public:
  void u32(std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(v));
  }
  void f64s(const double* data, std::size_t n) {
    if (n == 0) return;  // e.g. a model saved without a fitted normalizer
    const auto* p = reinterpret_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n * sizeof(double));
  }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  bool u32(std::uint32_t& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, data_ + pos_, sizeof(v));
    pos_ += sizeof(v);
    return true;
  }

  bool f64s(double* out, std::size_t n) {
    if (n > remaining() / sizeof(double)) return false;
    if (n == 0) return true;
    std::memcpy(out, data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Read the whole file at `path` into `out`, enforcing the size cap. The
// short-read check catches files that shrink mid-read (or an injected
// kFileRead fault).
bool slurp_file(const char* path, std::vector<std::uint8_t>& out) {
  const std::int64_t size = kml_fsize(path);
  if (size < 0) return false;
  if (size > kMaxModelFileBytes) {
    KML_ERROR("load_model: %s is %lld bytes, over the %lld-byte cap", path,
              static_cast<long long>(size),
              static_cast<long long>(kMaxModelFileBytes));
    return false;
  }
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) return false;
  out.resize(static_cast<std::size_t>(size));
  std::int64_t got = 0;
  while (got < size) {
    const std::int64_t n =
        kml_fread(f, out.data() + got, static_cast<std::size_t>(size - got));
    if (n <= 0) break;  // error or premature EOF
    got += n;
  }
  kml_fclose(f);
  return got == size;
}

// Serialize the model payload (everything but the CRC footer).
void write_payload(const Network& net, ByteWriter& w) {
  w.u32(kModelMagic);
  w.u32(kModelVersion);

  std::vector<double> means;
  std::vector<double> stds;
  net.normalizer().export_moments(means, stds);
  w.u32(static_cast<std::uint32_t>(means.size()));
  w.f64s(means.data(), means.size());
  w.f64s(stds.data(), stds.size());

  w.u32(static_cast<std::uint32_t>(net.num_layers()));
  auto& mutable_net = const_cast<Network&>(net);
  for (int i = 0; i < net.num_layers(); ++i) {
    Layer& layer = mutable_net.layer(i);
    w.u32(static_cast<std::uint32_t>(layer.type()));
    w.u32(static_cast<std::uint32_t>(layer.in_features()));
    w.u32(static_cast<std::uint32_t>(layer.out_features()));
    if (layer.type() == LayerType::kLinear) {
      auto& lin = static_cast<Linear&>(layer);
      w.f64s(lin.weights().data(), lin.weights().size());
      w.f64s(lin.bias().data(), lin.bias().size());
    }
  }
}

// Parse a payload image (magic through last layer, CRC already stripped)
// into `net`. Every dimension is checked against reader.remaining() before
// the corresponding allocation.
bool parse_payload(ByteReader& r, Network& net, const char* path) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.u32(magic) || !r.u32(version)) return false;
  if (magic != kModelMagic || version < kMinModelVersion ||
      version > kModelVersion) {
    KML_ERROR("load_model: bad magic/version in %s", path);
    return false;
  }

  std::uint32_t nfeat = 0;
  if (!r.u32(nfeat) || nfeat > kMaxDim) return false;
  if (r.remaining() < static_cast<std::size_t>(nfeat) * 2 * sizeof(double)) {
    return false;  // claimed normalizer larger than the file
  }
  if (nfeat > 0) {
    std::vector<double> means(nfeat);
    std::vector<double> stds(nfeat);
    if (!r.f64s(means.data(), nfeat) || !r.f64s(stds.data(), nfeat)) {
      return false;
    }
    net.normalizer().import_moments(means, stds);
  }

  std::uint32_t nlayers = 0;
  if (!r.u32(nlayers) || nlayers > kMaxLayers) return false;
  for (std::uint32_t i = 0; i < nlayers; ++i) {
    std::uint32_t type = 0;
    std::uint32_t in = 0;
    std::uint32_t feat_out = 0;
    if (!r.u32(type) || !r.u32(in) || !r.u32(feat_out)) return false;
    switch (static_cast<LayerType>(type)) {
      case LayerType::kLinear: {
        if (in == 0 || feat_out == 0 || in > kMaxDim || feat_out > kMaxDim) {
          return false;
        }
        // Weight + bias payload must actually be present before the layer
        // (and its kml_malloc-backed matrices) is built.
        const std::uint64_t params =
            static_cast<std::uint64_t>(in) * feat_out + feat_out;
        if (params > r.remaining() / sizeof(double)) return false;
        auto lin = std::make_unique<Linear>(static_cast<int>(in),
                                            static_cast<int>(feat_out));
        if (lin->weights().empty() || lin->bias().empty()) {
          return false;  // allocation failed under memory pressure
        }
        if (!r.f64s(lin->weights().data(), lin->weights().size()) ||
            !r.f64s(lin->bias().data(), lin->bias().size())) {
          return false;
        }
        net.add(std::move(lin));
        break;
      }
      case LayerType::kSigmoid:
        net.add(std::make_unique<Sigmoid>());
        break;
      case LayerType::kReLU:
        net.add(std::make_unique<ReLU>());
        break;
      case LayerType::kTanh:
        net.add(std::make_unique<Tanh>());
        break;
      default:
        KML_ERROR("load_model: unknown layer type %u in %s", type, path);
        return false;
    }
  }
  // Trailing bytes mean the image is not a model this writer produced.
  return r.done();
}

}  // namespace

std::uint32_t model_crc32(const void* data, std::size_t size) {
  // Delegates to the shared portability CRC-32 so the model format and the
  // KV durability formats (WAL, manifest, run files) verify identically.
  return kml_crc32(data, size);
}

bool save_model(const Network& net, const char* path) {
  ByteWriter w;
  write_payload(net, w);
  const std::uint32_t crc = model_crc32(w.bytes().data(), w.bytes().size());
  w.u32(crc);

  // Atomic commit: write the complete image to a temp file, then rename it
  // over `path`. A crash (or injected write fault) before the rename leaves
  // any previously deployed model untouched.
  const std::string tmp = std::string(path) + ".tmp";
  KmlFile* f = kml_fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    KML_ERROR("save_model: cannot open %s", tmp.c_str());
    return false;
  }
  const auto bytes = static_cast<std::int64_t>(w.bytes().size());
  const bool wrote = kml_fwrite(f, w.bytes().data(), w.bytes().size()) == bytes;
  kml_fclose(f);
  if (!wrote || !kml_frename(tmp.c_str(), path)) {
    KML_ERROR("save_model: failed to commit %s", path);
    kml_fremove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_model(Network& out, const char* path) {
  std::vector<std::uint8_t> image;
  if (!slurp_file(path, image)) {
    KML_ERROR("load_model: cannot read %s", path);
    return false;
  }

  // Peek the version to decide whether a CRC footer must be present and
  // verified; the image handed to the parser excludes the footer.
  std::size_t payload_size = image.size();
  if (image.size() >= 8) {
    std::uint32_t version = 0;
    std::memcpy(&version, image.data() + 4, sizeof(version));
    if (version >= 2) {
      if (image.size() < 12) {  // magic + version + crc is the bare minimum
        KML_ERROR("load_model: %s too short for a v2 model", path);
        return false;
      }
      payload_size = image.size() - sizeof(std::uint32_t);
      std::uint32_t stored = 0;
      std::memcpy(&stored, image.data() + payload_size, sizeof(stored));
      if (model_crc32(image.data(), payload_size) != stored) {
        KML_ERROR("load_model: checksum mismatch in %s", path);
        return false;
      }
    }
  }

  Network net;
  ByteReader reader(image.data(), payload_size);
  if (!parse_payload(reader, net, path)) {
    KML_ERROR("load_model: failed to parse %s", path);
    return false;
  }
  out = std::move(net);
  return true;
}

}  // namespace kml::nn
