#include "nn/serialize.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "portability/file.h"
#include "portability/log.h"

#include <cstring>
#include <vector>

namespace kml::nn {
namespace {

bool write_u32(KmlFile* f, std::uint32_t v) {
  return kml_fwrite(f, &v, sizeof(v)) == sizeof(v);
}

bool write_f64s(KmlFile* f, const double* data, std::size_t n) {
  if (n == 0) return true;  // e.g. a model saved without a fitted normalizer
  const auto bytes = static_cast<std::int64_t>(n * sizeof(double));
  return kml_fwrite(f, data, n * sizeof(double)) == bytes;
}

bool read_u32(KmlFile* f, std::uint32_t& v) {
  return kml_fread(f, &v, sizeof(v)) == sizeof(v);
}

bool read_f64s(KmlFile* f, double* data, std::size_t n) {
  if (n == 0) return true;
  const auto bytes = static_cast<std::int64_t>(n * sizeof(double));
  return kml_fread(f, data, n * sizeof(double)) == bytes;
}

// Layer shapes are bounded to keep a corrupt file from driving giant
// allocations during load.
constexpr std::uint32_t kMaxDim = 1u << 16;

}  // namespace

bool save_model(const Network& net, const char* path) {
  KmlFile* f = kml_fopen(path, "w");
  if (f == nullptr) {
    KML_ERROR("save_model: cannot open %s", path);
    return false;
  }
  bool ok = write_u32(f, kModelMagic) && write_u32(f, kModelVersion);

  std::vector<double> means;
  std::vector<double> stds;
  net.normalizer().export_moments(means, stds);
  ok = ok && write_u32(f, static_cast<std::uint32_t>(means.size()));
  ok = ok && write_f64s(f, means.data(), means.size());
  ok = ok && write_f64s(f, stds.data(), stds.size());

  ok = ok && write_u32(f, static_cast<std::uint32_t>(net.num_layers()));
  auto& mutable_net = const_cast<Network&>(net);
  for (int i = 0; ok && i < net.num_layers(); ++i) {
    Layer& layer = mutable_net.layer(i);
    ok = write_u32(f, static_cast<std::uint32_t>(layer.type()));
    ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.in_features()));
    ok = ok && write_u32(f, static_cast<std::uint32_t>(layer.out_features()));
    if (layer.type() == LayerType::kLinear) {
      auto& lin = static_cast<Linear&>(layer);
      ok = ok && write_f64s(f, lin.weights().data(), lin.weights().size());
      ok = ok && write_f64s(f, lin.bias().data(), lin.bias().size());
    }
  }
  kml_fclose(f);
  if (!ok) KML_ERROR("save_model: short write to %s", path);
  return ok;
}

bool load_model(Network& out, const char* path) {
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) {
    KML_ERROR("load_model: cannot open %s", path);
    return false;
  }

  Network net;
  bool ok = true;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  ok = read_u32(f, magic) && read_u32(f, version);
  if (ok && (magic != kModelMagic || version != kModelVersion)) {
    KML_ERROR("load_model: bad magic/version in %s", path);
    ok = false;
  }

  std::uint32_t nfeat = 0;
  ok = ok && read_u32(f, nfeat) && nfeat <= kMaxDim;
  if (ok) {
    std::vector<double> means(nfeat);
    std::vector<double> stds(nfeat);
    ok = read_f64s(f, means.data(), nfeat) && read_f64s(f, stds.data(), nfeat);
    if (ok && nfeat > 0) net.normalizer().import_moments(means, stds);
  }

  std::uint32_t nlayers = 0;
  ok = ok && read_u32(f, nlayers) && nlayers <= 1024;
  for (std::uint32_t i = 0; ok && i < nlayers; ++i) {
    std::uint32_t type = 0;
    std::uint32_t in = 0;
    std::uint32_t feat_out = 0;
    ok = read_u32(f, type) && read_u32(f, in) && read_u32(f, feat_out);
    if (!ok) break;
    switch (static_cast<LayerType>(type)) {
      case LayerType::kLinear: {
        if (in == 0 || feat_out == 0 || in > kMaxDim || feat_out > kMaxDim) {
          ok = false;
          break;
        }
        auto lin = std::make_unique<Linear>(static_cast<int>(in),
                                            static_cast<int>(feat_out));
        ok = read_f64s(f, lin->weights().data(), lin->weights().size()) &&
             read_f64s(f, lin->bias().data(), lin->bias().size());
        if (ok) net.add(std::move(lin));
        break;
      }
      case LayerType::kSigmoid:
        net.add(std::make_unique<Sigmoid>());
        break;
      case LayerType::kReLU:
        net.add(std::make_unique<ReLU>());
        break;
      case LayerType::kTanh:
        net.add(std::make_unique<Tanh>());
        break;
      default:
        KML_ERROR("load_model: unknown layer type %u in %s", type, path);
        ok = false;
        break;
    }
  }
  kml_fclose(f);
  if (!ok) {
    KML_ERROR("load_model: failed to parse %s", path);
    return false;
  }
  out = std::move(net);
  return true;
}

}  // namespace kml::nn
