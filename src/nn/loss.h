// loss.h — loss functions (§2, §4).
//
// Cross-entropy (with built-in softmax — the readahead classifier's loss)
// and mean-squared error. forward() returns the mean loss over the batch;
// backward() returns dL/d(logits) already divided by the batch size, so the
// network's backward pass needs no extra scaling.
#pragma once

#include "matrix/matrix.h"

namespace kml::nn {

class Loss {
 public:
  virtual ~Loss() = default;

  // `pred` is the network output (logits for classification losses);
  // `target` is the supervision signal (one-hot rows for classification).
  virtual double forward(const matrix::MatD& pred,
                         const matrix::MatD& target) = 0;

  // Gradient of the mean batch loss w.r.t. `pred`; call after forward()
  // on the same pair.
  virtual matrix::MatD backward() = 0;

  // Allocation-free variant: same gradient, written into caller scratch.
  // Default falls back to backward(); both in-tree losses override.
  virtual void backward_into(matrix::MatD& grad) { grad.copy_from(backward()); }

  // Data-parallel slice evaluation: compute the UNNORMALIZED loss sum over
  // the rows of pred/target (one worker's slice of a minibatch) and write
  // dL/d(pred) for those rows into `grad`, using `total_rows` — the full
  // minibatch row count — as the gradient normalizer. Stateless: touches no
  // loss member state, so distinct workers can run concurrently. The batch
  // loss is the worker-index-ordered sum of slice returns divided by
  // slice_loss_norm(). Losses that override these return true from
  // supports_slices().
  virtual bool supports_slices() const { return false; }
  virtual double forward_backward_slice(const matrix::MatD& pred,
                                        const matrix::MatD& target,
                                        int total_rows, matrix::MatD& grad);
  virtual double slice_loss_norm(int total_rows, int cols) const;

  virtual const char* name() const = 0;
};

// Softmax + negative log likelihood, fused for the numerically stable
// gradient (softmax(pred) - target) / batch.
class CrossEntropyLoss : public Loss {
 public:
  double forward(const matrix::MatD& pred,
                 const matrix::MatD& target) override;
  matrix::MatD backward() override;
  void backward_into(matrix::MatD& grad) override;
  bool supports_slices() const override { return true; }
  double forward_backward_slice(const matrix::MatD& pred,
                                const matrix::MatD& target, int total_rows,
                                matrix::MatD& grad) override;
  double slice_loss_norm(int total_rows, int cols) const override;
  const char* name() const override { return "cross_entropy"; }

 private:
  matrix::MatD cached_softmax_;
  matrix::MatD cached_target_;
};

// Mean over batch and features of (pred - target)^2.
class MSELoss : public Loss {
 public:
  double forward(const matrix::MatD& pred,
                 const matrix::MatD& target) override;
  matrix::MatD backward() override;
  void backward_into(matrix::MatD& grad) override;
  bool supports_slices() const override { return true; }
  double forward_backward_slice(const matrix::MatD& pred,
                                const matrix::MatD& target, int total_rows,
                                matrix::MatD& grad) override;
  double slice_loss_norm(int total_rows, int cols) const override;
  const char* name() const override { return "mse"; }

 private:
  matrix::MatD cached_pred_;
  matrix::MatD cached_target_;
};

}  // namespace kml::nn
