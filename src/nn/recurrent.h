// recurrent.h — recurrent cells with backpropagation through time.
//
// The paper's future work (§6): "We also plan to support arbitrary
// computation DAGs (e.g., Recurrent Neural Networks (RNNs)) and Long
// Short-Term Memory (LSTM)." This module implements both cell types over
// the same matrix/math substrate as the chain networks:
//
//   RnnCell  — Elman recurrence   h_t = tanh(x_t Wx + h_{t-1} Wh + b)
//   LstmCell — standard LSTM       i,f,o = sigmoid(...), g = tanh(...)
//              c_t = f*c_{t-1} + i*g;  h_t = o * tanh(c_t)
//
// Both process one sequence at a time (T x in_features), cache per-step
// activations during forward_sequence(), and produce exact gradients with
// full BPTT in backward_sequence(). SequenceClassifier puts a linear head
// on the final hidden state for sequence classification — the natural
// extension of the readahead model to sub-second feature histories.
#pragma once

#include "matrix/linalg.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/sgd.h"

#include <memory>
#include <vector>

namespace kml::nn {

// Shared interface of the two recurrent cells.
class RecurrentCell {
 public:
  virtual ~RecurrentCell() = default;

  // Input: (T x in_features). Output: (T x hidden) — the hidden state at
  // every step. Initial state is zero. Caches activations for BPTT.
  virtual matrix::MatD forward_sequence(const matrix::MatD& sequence) = 0;

  // `grad_h` is dL/d(hidden output) with shape (T x hidden) — pass zeros
  // for steps that do not feed the loss. Accumulates parameter gradients
  // and returns dL/d(input) of shape (T x in_features).
  virtual matrix::MatD backward_sequence(const matrix::MatD& grad_h) = 0;

  virtual std::vector<ParamRef> params() = 0;
  virtual int in_features() const = 0;
  virtual int hidden_size() const = 0;

  void zero_grad();
};

class RnnCell final : public RecurrentCell {
 public:
  RnnCell(int in_features, int hidden, math::Rng& rng);

  matrix::MatD forward_sequence(const matrix::MatD& sequence) override;
  matrix::MatD backward_sequence(const matrix::MatD& grad_h) override;
  std::vector<ParamRef> params() override;
  int in_features() const override { return wx_.rows(); }
  int hidden_size() const override { return wx_.cols(); }

 private:
  matrix::MatD wx_;  // (in x hidden)
  matrix::MatD wh_;  // (hidden x hidden)
  matrix::MatD b_;   // (1 x hidden)
  matrix::MatD grad_wx_;
  matrix::MatD grad_wh_;
  matrix::MatD grad_b_;
  matrix::MatD cached_in_;  // (T x in)
  matrix::MatD cached_h_;   // (T x hidden), post-tanh
};

class LstmCell final : public RecurrentCell {
 public:
  LstmCell(int in_features, int hidden, math::Rng& rng);

  matrix::MatD forward_sequence(const matrix::MatD& sequence) override;
  matrix::MatD backward_sequence(const matrix::MatD& grad_h) override;
  std::vector<ParamRef> params() override;
  int in_features() const override { return wx_.rows(); }
  int hidden_size() const override { return wx_.cols() / 4; }

 private:
  // Gate layout along columns: [i | f | g | o], each `hidden` wide.
  matrix::MatD wx_;  // (in x 4*hidden)
  matrix::MatD wh_;  // (hidden x 4*hidden)
  matrix::MatD b_;   // (1 x 4*hidden)
  matrix::MatD grad_wx_;
  matrix::MatD grad_wh_;
  matrix::MatD grad_b_;
  matrix::MatD cached_in_;
  matrix::MatD cached_h_;      // (T x hidden)
  matrix::MatD cached_c_;      // (T x hidden), cell state
  matrix::MatD cached_gates_;  // (T x 4*hidden), post-nonlinearity
};

// Recurrent cell + linear readout on the last hidden state, trained with
// cross-entropy — a sequence classifier.
class SequenceClassifier {
 public:
  enum class CellKind { kRnn, kLstm };

  SequenceClassifier(CellKind kind, int in_features, int hidden,
                     int num_classes, math::Rng& rng);

  // Logits (1 x num_classes) for one sequence (T x in_features).
  matrix::MatD forward(const matrix::MatD& sequence);

  // One BPTT training step on a single labeled sequence; returns the loss.
  double train_step(const matrix::MatD& sequence, int label, Optimizer& opt);

  int predict(const matrix::MatD& sequence);

  std::vector<ParamRef> params();
  RecurrentCell& cell() { return *cell_; }

 private:
  std::unique_ptr<RecurrentCell> cell_;
  Linear head_;
  CrossEntropyLoss loss_;
  int num_classes_;
  int last_t_ = 0;
};

}  // namespace kml::nn
