#include "nn/network.h"

#include "matrix/linalg.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "observe/flight_recorder.h"
#include "portability/threadpool.h"

#include <cassert>

namespace kml::nn {

namespace {

// Double -> milli-scaled integer for the integer-only observe channel,
// saturating instead of invoking UB on absurd losses. Unused when the
// KML_EVENT call sites compile away under KML_OBSERVE=OFF.
[[maybe_unused]] std::uint64_t loss_milli_bits(double v) {
  double m = v * 1000.0;
  if (m > 9e18) m = 9e18;
  if (m < -9e18) m = -9e18;
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(m));
}

}  // namespace

Network& Network::add(std::unique_ptr<Layer> layer) {
  assert(layer != nullptr);
  layer->set_training(training_);
  layers_.push_back(std::move(layer));
  return *this;
}

matrix::MatD Network::forward(const matrix::MatD& in) {
  matrix::MatD out;
  out.copy_from(forward_scratch(in));
  return out;
}

const matrix::MatD& Network::forward_scratch(const matrix::MatD& in) {
  const matrix::MatD* cur = &in;
  int slot = 0;
  for (auto& layer : layers_) {
    layer->forward_into(*cur, fscratch_[slot]);
    cur = &fscratch_[slot];
    slot ^= 1;
  }
  return *cur;
}

void Network::set_training(bool on) {
  training_ = on;
  for (auto& layer : layers_) layer->set_training(on);
}

int Network::max_feature_width() const {
  int w = 0;
  for (const auto& layer : layers_) {
    if (layer->in_features() > w) w = layer->in_features();
    if (layer->out_features() > w) w = layer->out_features();
  }
  return w;
}

void Network::reserve_scratch(int max_rows) {
  const int w = max_feature_width();
  if (max_rows <= 0 || w <= 0) return;
  for (auto& s : fscratch_) s.ensure_shape(max_rows, w);
  for (auto& s : gscratch_) s.ensure_shape(max_rows, w);

  // Also presize the data-parallel worker slices for the current thread
  // knob, so the first hot parallel training step allocates nothing.
  const int workers = static_cast<int>(
      kml_pool_workers_for(max_rows, kTrainRowsPerWorker));
  if (workers <= 1 || !layers_support_parallel()) return;
  refresh_param_cache();
  const int chunk = (max_rows + workers - 1) / workers;
  if (static_cast<int>(wslices_.size()) < workers) {
    wslices_.resize(static_cast<std::size_t>(workers));
  }
  for (int wi = 0; wi < workers; ++wi) {
    auto& ws = wslices_[static_cast<std::size_t>(wi)];
    ws.x.ensure_shape(chunk, w);
    ws.y.ensure_shape(chunk, w);
    for (auto& s : ws.f) s.ensure_shape(chunk, w);
    for (auto& s : ws.g) s.ensure_shape(chunk, w);
    if (ws.layers.size() != layers_.size()) {
      ws.layers.assign(layers_.size(), LayerSlice{});
    }
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      LayerSlice& slice = ws.layers[li];
      slice.cache.ensure_shape(chunk, w);
      const auto& prefs = param_cache_[li];
      if (slice.pgrads.size() < prefs.size()) {
        slice.pgrads.resize(prefs.size());
      }
      for (std::size_t pi = 0; pi < prefs.size(); ++pi) {
        slice.pgrads[pi].ensure_shape(prefs[pi].value->rows(),
                                      prefs[pi].value->cols());
      }
    }
  }
}

double Network::train_step(const matrix::MatD& x, const matrix::MatD& y,
                           Loss& loss, Optimizer& opt) {
  // Backward needs the per-layer caches; re-arm them if the caller left the
  // network in eval mode.
  if (!training_) set_training(true);
  // Worker count is a pure function of the batch shape and the pool's
  // thread knob — never of timing — so a given (seed, thread count) always
  // trains the same way. 1 worker takes the exact pre-pool serial path.
  const unsigned workers =
      (loss.supports_slices() && layers_support_parallel())
          ? kml_pool_workers_for(x.rows(), kTrainRowsPerWorker)
          : 1u;
  if (workers <= 1) return train_step_serial(x, y, loss, opt);
  return train_step_parallel(x, y, loss, opt, static_cast<int>(workers));
}

double Network::train_step_serial(const matrix::MatD& x,
                                  const matrix::MatD& y, Loss& loss,
                                  Optimizer& opt) {
  for (auto& layer : layers_) layer->zero_grad();
  const matrix::MatD& pred = forward_scratch(x);
  const double batch_loss = loss.forward(pred, y);
  loss.backward_into(gscratch_[0]);
  const matrix::MatD* grad = &gscratch_[0];
  int slot = 1;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    (*it)->backward_into(*grad, gscratch_[slot]);
    grad = &gscratch_[slot];
    slot ^= 1;
  }
  opt.step();
  return batch_loss;
}

bool Network::layers_support_parallel() const {
  for (const auto& layer : layers_) {
    if (!layer->supports_parallel_train()) return false;
  }
  return !layers_.empty();
}

void Network::refresh_param_cache() {
  if (param_cache_.size() == layers_.size()) return;
  param_cache_.clear();
  param_cache_.reserve(layers_.size());
  for (auto& layer : layers_) param_cache_.push_back(layer->params());
}

double Network::train_step_parallel(const matrix::MatD& x,
                                    const matrix::MatD& y, Loss& loss,
                                    Optimizer& opt, int workers) {
  const int rows = x.rows();
  const int nlayers = static_cast<int>(layers_.size());
  const int chunk = (rows + workers - 1) / workers;
  refresh_param_cache();
  if (static_cast<int>(wslices_.size()) < workers) {
    wslices_.resize(static_cast<std::size_t>(workers));
  }
  for (int w = 0; w < workers; ++w) {
    auto& ws = wslices_[static_cast<std::size_t>(w)];
    if (static_cast<int>(ws.layers.size()) != nlayers) {
      ws.layers.assign(static_cast<std::size_t>(nlayers), LayerSlice{});
    }
  }
  for (auto& layer : layers_) layer->zero_grad();

  // Each worker runs forward/backward on its contiguous row slice using
  // only its own WorkerSlice — no shared mutable state. The body is keyed
  // by the loop index (not the pool slot), so even a degraded-to-serial
  // dispatch computes the identical slices.
  parallel_for(workers, 1, [&](long b0, long b1, int) {
    for (long w = b0; w < b1; ++w) {
      WorkerSlice& ws = wslices_[static_cast<std::size_t>(w)];
      const int r0 = static_cast<int>(w) * chunk;
      const int r1 = r0 + chunk < rows ? r0 + chunk : rows;
      const int count = r1 - r0;
      ws.loss_sum = 0.0;
      ws.active = count > 0;
      if (!ws.active) continue;
      ws.x.ensure_shape(count, x.cols());
      ws.y.ensure_shape(count, y.cols());
      for (int r = 0; r < count; ++r) {
        const double* xs = x.row(r0 + r);
        double* xd = ws.x.row(r);
        for (int c = 0; c < x.cols(); ++c) xd[c] = xs[c];
        const double* ys = y.row(r0 + r);
        double* yd = ws.y.row(r);
        for (int c = 0; c < y.cols(); ++c) yd[c] = ys[c];
      }
      const matrix::MatD* cur = &ws.x;
      int slot = 0;
      for (int li = 0; li < nlayers; ++li) {
        layers_[static_cast<std::size_t>(li)]->forward_slice(
            *cur, ws.f[slot], ws.layers[static_cast<std::size_t>(li)]);
        cur = &ws.f[slot];
        slot ^= 1;
      }
      ws.loss_sum = loss.forward_backward_slice(*cur, ws.y, rows, ws.g[0]);
      const matrix::MatD* grad = &ws.g[0];
      slot = 1;
      for (int li = nlayers - 1; li >= 0; --li) {
        layers_[static_cast<std::size_t>(li)]->backward_slice(
            *grad, ws.layers[static_cast<std::size_t>(li)], ws.g[slot]);
        grad = &ws.g[slot];
        slot ^= 1;
      }
    }
  });

  // Deterministic reduction: ascending worker index, always the same
  // float-summation order for a given (batch shape, thread count).
  double total = 0.0;
  for (int w = 0; w < workers; ++w) {
    if (wslices_[static_cast<std::size_t>(w)].active) {
      total += wslices_[static_cast<std::size_t>(w)].loss_sum;
    }
  }
  for (int li = 0; li < nlayers; ++li) {
    auto& prefs = param_cache_[static_cast<std::size_t>(li)];
    for (std::size_t pi = 0; pi < prefs.size(); ++pi) {
      for (int w = 0; w < workers; ++w) {
        WorkerSlice& ws = wslices_[static_cast<std::size_t>(w)];
        if (!ws.active) continue;
        matrix::add(*prefs[pi].grad,
                    ws.layers[static_cast<std::size_t>(li)].pgrads[pi],
                    *prefs[pi].grad);
      }
    }
  }
  opt.step();
  return total / loss.slice_loss_norm(rows, y.cols());
}

TrainReport Network::train(const matrix::MatD& x, const matrix::MatD& y,
                           Loss& loss, Optimizer& opt, int epochs,
                           int batch_size,
                           math::Rng& rng) {
  TrainReport report;
  if (x.rows() == 0) {
    report.ok = false;
    report.error = "empty training set";
    return report;
  }
  if (x.rows() != y.rows()) {
    report.ok = false;
    report.error = "x/y row count mismatch";
    return report;
  }
  if (batch_size <= 0) {
    report.ok = false;
    report.error = "batch_size must be positive";
    return report;
  }
  const int n = x.rows();
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    KML_EVENT(observe::EventId::kTrainEpochBegin,
              static_cast<std::uint64_t>(epoch),
              static_cast<std::uint64_t>(epochs));
    // Fisher–Yates reshuffle each epoch.
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(j)]);
    }
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += batch_size) {
      const int count = start + batch_size <= n ? batch_size : n - start;
      // One staging pair reused across all batches and epochs; the final
      // ragged batch shrinks in place and the next epoch's full batch grows
      // back into the same retained capacity.
      batch_x_.ensure_shape(count, x.cols());
      batch_y_.ensure_shape(count, y.cols());
      for (int r = 0; r < count; ++r) {
        const int src = order[static_cast<std::size_t>(start + r)];
        for (int c = 0; c < x.cols(); ++c) batch_x_.at(r, c) = x.at(src, c);
        for (int c = 0; c < y.cols(); ++c) batch_y_.at(r, c) = y.at(src, c);
      }
      epoch_loss += train_step(batch_x_, batch_y_, loss, opt);
      ++batches;
    }
    epoch_loss /= batches > 0 ? batches : 1;
    KML_EVENT(observe::EventId::kTrainEpochEnd,
              static_cast<std::uint64_t>(epoch), loss_milli_bits(epoch_loss));
    report.epoch_losses.push_back(epoch_loss);
    report.final_loss = epoch_loss;
    ++report.epochs;
  }
  return report;
}

matrix::MatI Network::predict_classes(const matrix::MatD& x) {
  return matrix::argmax_rows(forward_scratch(x));
}

double Network::accuracy(const matrix::MatD& x, const matrix::MatI& labels) {
  assert(x.rows() == labels.rows());
  if (x.rows() == 0) return 0.0;
  const matrix::MatI pred = predict_classes(x);
  int correct = 0;
  for (int i = 0; i < x.rows(); ++i) {
    if (pred.at(i, 0) == labels.at(i, 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.rows());
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) {
    for (ParamRef p : layer->params()) out.push_back(p);
  }
  return out;
}

std::size_t Network::param_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    // params() is non-const by interface; safe because we only read shapes.
    for (ParamRef p : const_cast<Layer&>(*layer).params()) {
      total += p.value->size() * sizeof(double);
    }
  }
  return total;
}

Network build_mlp_classifier(int in_features, int hidden, int num_classes,
                             math::Rng& rng) {
  Network net;
  net.add(std::make_unique<Linear>(in_features, hidden, rng))
      .add(std::make_unique<Sigmoid>())
      .add(std::make_unique<Linear>(hidden, hidden, rng))
      .add(std::make_unique<Sigmoid>())
      .add(std::make_unique<Linear>(hidden, num_classes, rng));
  return net;
}

}  // namespace kml::nn
