#include "nn/activations.h"

#include "math/approx.h"

namespace kml::nn {

matrix::MatD Sigmoid::forward(const matrix::MatD& in) {
  matrix::MatD out = in;
  out.apply([](double x) { return math::kml_sigmoid(x); });
  cached_out_ = out;
  return out;
}

matrix::MatD Sigmoid::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in = grad_out;
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    const double y = cached_out_.data()[i];
    grad_in.data()[i] *= y * (1.0 - y);
  }
  return grad_in;
}

matrix::MatD ReLU::forward(const matrix::MatD& in) {
  cached_in_ = in;
  matrix::MatD out = in;
  out.apply([](double x) { return x > 0.0 ? x : 0.0; });
  return out;
}

matrix::MatD ReLU::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in = grad_out;
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (cached_in_.data()[i] <= 0.0) grad_in.data()[i] = 0.0;
  }
  return grad_in;
}

matrix::MatD Tanh::forward(const matrix::MatD& in) {
  matrix::MatD out = in;
  out.apply([](double x) { return math::kml_tanh(x); });
  cached_out_ = out;
  return out;
}

matrix::MatD Tanh::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in = grad_out;
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    const double y = cached_out_.data()[i];
    grad_in.data()[i] *= 1.0 - y * y;
  }
  return grad_in;
}

}  // namespace kml::nn
