#include "nn/activations.h"

#include "math/approx.h"

namespace kml::nn {

matrix::MatD Sigmoid::forward(const matrix::MatD& in) {
  matrix::MatD out;
  forward_into(in, out);
  return out;
}

void Sigmoid::forward_into(const matrix::MatD& in, matrix::MatD& out) {
  out.ensure_shape(in.rows(), in.cols());
  {
    matrix::FpuGuard<double> guard;
    math::kml_sigmoid_span(in.data(), out.data(),
                           static_cast<long>(in.size()));
  }
  // sigmoid' = y*(1-y) needs the output; eval mode skips the cache.
  if (training_) cached_out_.copy_from(out);
}

matrix::MatD Sigmoid::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Sigmoid::backward_into(const matrix::MatD& grad_out,
                            matrix::MatD& grad_in) {
  grad_in.ensure_shape(grad_out.rows(), grad_out.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const double y = cached_out_.data()[i];
    grad_in.data()[i] = grad_out.data()[i] * (y * (1.0 - y));
  }
}

void Sigmoid::forward_slice(const matrix::MatD& in, matrix::MatD& out,
                            LayerSlice& ctx) {
  out.ensure_shape(in.rows(), in.cols());
  {
    matrix::FpuGuard<double> guard;
    math::kml_sigmoid_span(in.data(), out.data(),
                           static_cast<long>(in.size()));
  }
  ctx.cache.copy_from(out);
}

void Sigmoid::backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                             matrix::MatD& grad_in) {
  grad_in.ensure_shape(grad_out.rows(), grad_out.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const double y = ctx.cache.data()[i];
    grad_in.data()[i] = grad_out.data()[i] * (y * (1.0 - y));
  }
}

matrix::MatD ReLU::forward(const matrix::MatD& in) {
  matrix::MatD out;
  forward_into(in, out);
  return out;
}

void ReLU::forward_into(const matrix::MatD& in, matrix::MatD& out) {
  if (training_) cached_in_.copy_from(in);
  out.ensure_shape(in.rows(), in.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double x = in.data()[i];
    out.data()[i] = x > 0.0 ? x : 0.0;
  }
}

matrix::MatD ReLU::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void ReLU::backward_into(const matrix::MatD& grad_out,
                         matrix::MatD& grad_in) {
  grad_in.ensure_shape(grad_out.rows(), grad_out.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in.data()[i] =
        cached_in_.data()[i] <= 0.0 ? 0.0 : grad_out.data()[i];
  }
}

void ReLU::forward_slice(const matrix::MatD& in, matrix::MatD& out,
                         LayerSlice& ctx) {
  ctx.cache.copy_from(in);
  out.ensure_shape(in.rows(), in.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double x = in.data()[i];
    out.data()[i] = x > 0.0 ? x : 0.0;
  }
}

void ReLU::backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                          matrix::MatD& grad_in) {
  grad_in.ensure_shape(grad_out.rows(), grad_out.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in.data()[i] =
        ctx.cache.data()[i] <= 0.0 ? 0.0 : grad_out.data()[i];
  }
}

matrix::MatD Tanh::forward(const matrix::MatD& in) {
  matrix::MatD out;
  forward_into(in, out);
  return out;
}

void Tanh::forward_into(const matrix::MatD& in, matrix::MatD& out) {
  out.ensure_shape(in.rows(), in.cols());
  {
    matrix::FpuGuard<double> guard;
    math::kml_tanh_span(in.data(), out.data(),
                        static_cast<long>(in.size()));
  }
  if (training_) cached_out_.copy_from(out);
}

matrix::MatD Tanh::backward(const matrix::MatD& grad_out) {
  matrix::MatD grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Tanh::backward_into(const matrix::MatD& grad_out,
                         matrix::MatD& grad_in) {
  grad_in.ensure_shape(grad_out.rows(), grad_out.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const double y = cached_out_.data()[i];
    grad_in.data()[i] = grad_out.data()[i] * (1.0 - y * y);
  }
}

void Tanh::forward_slice(const matrix::MatD& in, matrix::MatD& out,
                         LayerSlice& ctx) {
  out.ensure_shape(in.rows(), in.cols());
  {
    matrix::FpuGuard<double> guard;
    math::kml_tanh_span(in.data(), out.data(),
                        static_cast<long>(in.size()));
  }
  ctx.cache.copy_from(out);
}

void Tanh::backward_slice(const matrix::MatD& grad_out, LayerSlice& ctx,
                          matrix::MatD& grad_in) {
  grad_in.ensure_shape(grad_out.rows(), grad_out.cols());
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const double y = ctx.cache.data()[i];
    grad_in.data()[i] = grad_out.data()[i] * (1.0 - y * y);
  }
}

}  // namespace kml::nn
