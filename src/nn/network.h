// network.h — the chain computation graph (§2).
//
// KML builds "a computation directed acyclic graph (DAG) of the individual
// layers" and traverses it for inference; the current prototype supports
// chain graphs (§3.2), which is exactly this class: an ordered sequence of
// layers trained by reverse-mode autodiff (back-propagation) and SGD.
#pragma once

#include "data/normalizer.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/sgd.h"

#include <memory>
#include <vector>

namespace kml::nn {

struct TrainReport {
  int epochs = 0;
  double final_loss = 0.0;
  std::vector<double> epoch_losses;
  // Shape validation outcome. Bad inputs (empty set, row mismatch, bad
  // batch size) used to be assert-only — release builds trained on garbage.
  // Now they return ok=false with a static description and train nothing.
  bool ok = true;
  const char* error = nullptr;
};

class Network {
 public:
  Network() = default;

  // Append a layer; returns *this for fluent construction.
  Network& add(std::unique_ptr<Layer> layer);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int i) { return *layers_[static_cast<std::size_t>(i)]; }
  const Layer& layer(int i) const {
    return *layers_[static_cast<std::size_t>(i)];
  }

  // Inference: run the chain forward. Thread-safe only against itself.
  matrix::MatD forward(const matrix::MatD& in);

  // Allocation-free forward pass: layers ping-pong between two network-
  // owned scratch matrices (layer i reads one slot and writes the other, so
  // no layer ever aliases its own input). The returned reference points at
  // network scratch and is valid until the next forward/train call. After
  // the first call at a given batch shape, steady-state repeats perform
  // zero heap allocations.
  const matrix::MatD& forward_scratch(const matrix::MatD& in);

  // Train/eval mode, propagated to every layer (layers added later inherit
  // it). Eval mode skips all backward-pass caches — required for the
  // zero-allocation inference guarantee; training mode restores them.
  void set_training(bool on);
  bool training() const { return training_; }

  // Presize the forward/backward scratch (and each layer's caches, via one
  // throwaway training step shape) for batches of up to `max_rows` rows, so
  // even the first hot-path call allocates nothing. Called by the runtime
  // engine at build/load time — the paper's §3.3 "reserve before use"
  // memory discipline.
  void reserve_scratch(int max_rows);

  // One SGD step on a (mini-)batch: zero grads, forward, loss, backward,
  // optimizer step. Returns the batch loss. `opt` must be attach()ed to
  // this network's params() first.
  //
  // When the thread pool has more than one worker and every layer (and the
  // loss) supports the slice API, the minibatch is split across workers
  // data-parallel: each worker runs forward/backward on a contiguous row
  // slice into its own scratch, and the partial gradients are reduced in
  // fixed worker-index order — run-to-run deterministic for a given thread
  // count. At 1 thread this is exactly the serial path (bit-identical to
  // pre-pool builds); gradient values at other thread counts differ only by
  // float-summation rounding (DESIGN.md §10).
  double train_step(const matrix::MatD& x, const matrix::MatD& y, Loss& loss,
                    Optimizer& opt);

  // Full training loop with mini-batching and per-epoch shuffling.
  TrainReport train(const matrix::MatD& x, const matrix::MatD& y, Loss& loss,
                    Optimizer& opt, int epochs, int batch_size,
                    math::Rng& rng);

  // Classification helpers: predicted class per row / accuracy vs labels.
  matrix::MatI predict_classes(const matrix::MatD& x);
  double accuracy(const matrix::MatD& x, const matrix::MatI& labels);

  // All trainable parameters in chain order (for the optimizer and the
  // serializer).
  std::vector<ParamRef> params();

  // Total bytes of parameter data (the model-footprint number the paper
  // reports comes from kml_mem_stats; this is the analytic cross-check).
  std::size_t param_bytes() const;

  // Optional attached input normalizer, serialized with the model so a
  // deployed network carries its fitted feature moments.
  data::ZScoreNormalizer& normalizer() { return normalizer_; }
  const data::ZScoreNormalizer& normalizer() const { return normalizer_; }

 private:
  // Per-worker context for the data-parallel training path: staged input
  // rows, ping-pong activation/gradient scratch, and one LayerSlice per
  // layer. All matrices retain capacity across steps (zero steady-state
  // allocations).
  struct WorkerSlice {
    matrix::MatD x, y;
    matrix::MatD f[2];
    matrix::MatD g[2];
    std::vector<LayerSlice> layers;
    double loss_sum = 0.0;
    bool active = false;  // false for trailing empty slices of tiny batches
  };

  // Widest activation row any layer produces or consumes (for scratch
  // presizing); 0 when the chain has no linear layers.
  int max_feature_width() const;

  // Serial train_step body (the pre-pool path, used at 1 worker).
  double train_step_serial(const matrix::MatD& x, const matrix::MatD& y,
                           Loss& loss, Optimizer& opt);
  // Data-parallel body: `workers` > 1 slices of the batch, reduced in
  // worker-index order.
  double train_step_parallel(const matrix::MatD& x, const matrix::MatD& y,
                             Loss& loss, Optimizer& opt, int workers);
  // True when every layer implements the slice API.
  bool layers_support_parallel() const;
  // Rebuild param_cache_ if layers were added since the last training step.
  void refresh_param_cache();

  std::vector<std::unique_ptr<Layer>> layers_;
  data::ZScoreNormalizer normalizer_;
  bool training_ = true;
  // Ping-pong scratch pairs for the allocation-free paths: activations for
  // forward_scratch, gradients for train_step's backward sweep.
  matrix::MatD fscratch_[2];
  matrix::MatD gscratch_[2];
  // Mini-batch staging reused across every batch of every epoch in train().
  matrix::MatD batch_x_;
  matrix::MatD batch_y_;
  // Data-parallel training state (empty until the first parallel step).
  std::vector<WorkerSlice> wslices_;
  // params() per layer, cached so the hot training path never rebuilds the
  // vectors (ParamRefs point at stable layer members).
  std::vector<std::vector<ParamRef>> param_cache_;
};

// Minimum minibatch rows per training worker: below this the per-slice
// staging + reduction overhead beats the win.
inline constexpr int kTrainRowsPerWorker = 8;

// The readahead network architecture from §4: three linear layers joined by
// sigmoid activations (in -> hidden -> hidden -> classes).
Network build_mlp_classifier(int in_features, int hidden, int num_classes,
                             math::Rng& rng);

}  // namespace kml::nn
