#include "nn/sgd.h"

#include "matrix/linalg.h"

#include <cassert>

namespace kml::nn {

SGD::SGD(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  assert(learning_rate > 0.0);
  assert(momentum >= 0.0 && momentum < 1.0 + 1e-9);
}

void SGD::attach(const std::vector<ParamRef>& params) {
  params_ = params;
  velocity_.clear();
  velocity_.reserve(params.size());
  for (const ParamRef& p : params) {
    velocity_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void SGD::step() {
  matrix::FpuGuard<double> guard;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    matrix::MatD& v = velocity_[i];
    const matrix::MatD& g = *params_[i].grad;
    matrix::MatD& w = *params_[i].value;
    assert(v.same_shape(g) && v.same_shape(w));
    for (std::size_t k = 0; k < v.size(); ++k) {
      v.data()[k] = momentum_ * v.data()[k] - lr_ * g.data()[k];
      w.data()[k] += v.data()[k];
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  assert(learning_rate > 0.0);
  assert(beta1 >= 0.0 && beta1 < 1.0);
  assert(beta2 >= 0.0 && beta2 < 1.0);
}

void Adam::attach(const std::vector<ParamRef>& params) {
  params_ = params;
  m_.clear();
  v_.clear();
  t_ = 0;
  for (const ParamRef& p : params) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  matrix::FpuGuard<double> guard;
  ++t_;
  const double bc1 =
      1.0 - math::kml_pow(beta1_, static_cast<double>(t_));
  const double bc2 =
      1.0 - math::kml_pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    matrix::MatD& m = m_[i];
    matrix::MatD& v = v_[i];
    const matrix::MatD& g = *params_[i].grad;
    matrix::MatD& w = *params_[i].value;
    assert(m.same_shape(g) && m.same_shape(w));
    for (std::size_t k = 0; k < m.size(); ++k) {
      const double grad = g.data()[k];
      m.data()[k] = beta1_ * m.data()[k] + (1.0 - beta1_) * grad;
      v.data()[k] = beta2_ * v.data()[k] + (1.0 - beta2_) * grad * grad;
      const double m_hat = m.data()[k] / bc1;
      const double v_hat = v.data()[k] / bc2;
      w.data()[k] -= lr_ * m_hat / (math::kml_sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace kml::nn
