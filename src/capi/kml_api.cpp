#include "capi/kml_api.h"

#include "dtree/decision_tree.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "observe/export.h"
#include "observe/flight_recorder.h"
#include "observe/introspect.h"
#include "observe/metrics.h"
#include "observe/timeseries.h"
#include "portability/threadpool.h"
#include "runtime/engine.h"
#include "runtime/health.h"
#include "sim/eviction_policy.h"

#include <climits>
#include <cstring>
#include <new>
#include <string>
#include <vector>

// Opaque handle definitions: thin wrappers over the C++ objects. All
// C-visible functions are noexcept by construction (no exception may cross
// the C boundary).
struct kml_model {
  kml::nn::Network net;
  int in_features;
  int num_classes;
  // Input staging for the allocation-free inference path.
  kml::matrix::MatD x_scratch;
};

struct kml_engine {
  kml::runtime::Engine engine;
  int in_features;
  int num_classes;
};

struct kml_dtree {
  kml::dtree::DecisionTree tree;
};

struct kml_health {
  kml::runtime::HealthMonitor monitor;
};

namespace {

// Feature counts derived from the layer chain (first/last linear layer).
int chain_in_features(kml::nn::Network& net) {
  for (int i = 0; i < net.num_layers(); ++i) {
    const int in = net.layer(i).in_features();
    if (in > 0) return in;
  }
  return -1;
}

int chain_out_features(kml::nn::Network& net) {
  for (int i = net.num_layers() - 1; i >= 0; --i) {
    const int out = net.layer(i).out_features();
    if (out > 0) return out;
  }
  return -1;
}

}  // namespace

extern "C" {

void kml_set_threads(unsigned n) { kml::kml_pool_set_threads(n); }

unsigned kml_get_threads(void) { return kml::kml_pool_threads(); }

kml_model* kml_model_load(const char* path) {
  if (path == nullptr) return nullptr;
  kml::nn::Network net;
  if (!kml::nn::load_model(net, path)) return nullptr;
  auto* handle = new (std::nothrow) kml_model{std::move(net), 0, 0};
  if (handle == nullptr) return nullptr;
  handle->in_features = chain_in_features(handle->net);
  handle->num_classes = chain_out_features(handle->net);
  if (handle->in_features <= 0 || handle->num_classes <= 0) {
    delete handle;
    return nullptr;
  }
  // The C API exposes no training entry points, so the backward-pass caches
  // are dead weight: eval mode drops them and makes inference allocation-
  // free at steady state.
  handle->net.set_training(false);
  return handle;
}

void kml_model_destroy(kml_model* model) { delete model; }

int kml_model_infer(const kml_model* model, const double* features, int n) {
  if (model == nullptr || features == nullptr ||
      n != model->in_features) {
    return -1;
  }
  // Same latency histogram Engine::infer_class feeds: a C (kernel-module)
  // caller gets the inference-p99 health signal for free.
  KML_SPAN_NS(kml::observe::kMetricInferenceNs);
  auto* m = const_cast<kml_model*>(model);
  m->x_scratch.ensure_shape(1, n);
  for (int j = 0; j < n; ++j) m->x_scratch.at(0, j) = features[j];
  m->net.normalizer().transform_row(m->x_scratch.row(0), n);
  const kml::matrix::MatD& out = m->net.forward_scratch(m->x_scratch);
  const double* row = out.row(0);
  int best = 0;
  for (int j = 1; j < out.cols(); ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

int kml_model_num_features(const kml_model* model) {
  return model == nullptr ? -1 : model->in_features;
}

int kml_model_num_classes(const kml_model* model) {
  return model == nullptr ? -1 : model->num_classes;
}

size_t kml_model_weight_bytes(const kml_model* model) {
  return model == nullptr ? 0 : model->net.param_bytes();
}

kml_engine* kml_engine_load(const char* path) {
  if (path == nullptr) return nullptr;
  kml::nn::Network net;
  if (!kml::nn::load_model(net, path)) return nullptr;
  auto* handle = new (std::nothrow)
      kml_engine{kml::runtime::Engine(std::move(net)), 0, 0};
  if (handle == nullptr) return nullptr;
  handle->in_features = chain_in_features(handle->engine.network());
  handle->num_classes = chain_out_features(handle->engine.network());
  if (handle->in_features <= 0 || handle->num_classes <= 0) {
    delete handle;
    return nullptr;
  }
  handle->engine.warm_up(KML_ENGINE_DEFAULT_BATCH);
  return handle;
}

void kml_engine_destroy(kml_engine* engine) { delete engine; }

int kml_engine_infer(const kml_engine* engine, const double* features,
                     int n) {
  if (engine == nullptr || features == nullptr ||
      n != engine->in_features) {
    return -1;
  }
  return const_cast<kml_engine*>(engine)->engine.infer_class(features, n);
}

int kml_engine_infer_batch(const kml_engine* engine, const double* features,
                           int n, int count, int* classes_out) {
  if (engine == nullptr || features == nullptr || classes_out == nullptr ||
      n != engine->in_features || count <= 0) {
    return -1;
  }
  return const_cast<kml_engine*>(engine)->engine.infer_batch(features, n,
                                                             count,
                                                             classes_out);
}

int kml_engine_num_features(const kml_engine* engine) {
  return engine == nullptr ? -1 : engine->in_features;
}

int kml_engine_num_classes(const kml_engine* engine) {
  return engine == nullptr ? -1 : engine->num_classes;
}

kml_health* kml_health_create(void) {
  return new (std::nothrow) kml_health{};
}

void kml_health_destroy(kml_health* health) { delete health; }

int kml_health_state(const kml_health* health) {
  if (health == nullptr) return -1;
  return static_cast<int>(health->monitor.state());
}

void kml_health_observe_train_step(kml_health* health, double loss,
                                   int valid) {
  if (health == nullptr) return;
  health->monitor.observe_train_step(loss, valid != 0);
}

void kml_health_heartbeat(kml_health* health, unsigned long long now_ns) {
  if (health == nullptr) return;
  health->monitor.heartbeat(now_ns);
}

int kml_health_check_watchdog(kml_health* health, unsigned long long now_ns) {
  if (health == nullptr) return 0;
  return health->monitor.check_watchdog(now_ns) ? 1 : 0;
}

void kml_health_observe_buffer(kml_health* health,
                               unsigned long long submitted_total,
                               unsigned long long dropped_total) {
  if (health == nullptr) return;
  health->monitor.observe_buffer(submitted_total, dropped_total);
}

void kml_health_notify_rollback(kml_health* health) {
  if (health == nullptr) return;
  health->monitor.notify_rollback();
}

int kml_metrics_enabled(void) {
#if KML_OBSERVE_ENABLED
  return kml::observe::enabled() ? 1 : 0;
#else
  return 0;
#endif
}

void kml_metrics_set_enabled(int on) {
  kml::observe::set_enabled(on != 0);
}

long long kml_metrics_counter(const char* name) {
#if KML_OBSERVE_ENABLED
  if (name == nullptr) return -1;
  // The overflow counter is synthetic (exported in snapshots but never
  // occupies a registry slot); serve it here so C consumers can read the
  // same name the JSON export shows.
  if (std::strcmp(name, kml::observe::kMetricRegistryOverflow) == 0) {
    const unsigned long long v = kml::observe::registry_overflow_count();
    return v > static_cast<unsigned long long>(LLONG_MAX)
               ? LLONG_MAX
               : static_cast<long long>(v);
  }
  kml::observe::Counter* c = kml::observe::find_counter(name);
  if (c == nullptr) return -1;
  const unsigned long long v = c->value();
  return v > static_cast<unsigned long long>(LLONG_MAX) ? LLONG_MAX
                                                        : static_cast<long long>(v);
#else
  (void)name;
  return -1;
#endif
}

long long kml_metrics_gauge(const char* name) {
#if KML_OBSERVE_ENABLED
  if (name == nullptr) return -1;
  kml::observe::Gauge* g = kml::observe::find_gauge(name);
  return g == nullptr ? -1 : static_cast<long long>(g->value());
#else
  (void)name;
  return -1;
#endif
}

long long kml_metrics_hist_count(const char* name) {
#if KML_OBSERVE_ENABLED
  if (name == nullptr) return -1;
  kml::observe::Histogram* h = kml::observe::find_histogram(name);
  if (h == nullptr) return -1;
  const unsigned long long v = h->count();
  return v > static_cast<unsigned long long>(LLONG_MAX) ? LLONG_MAX
                                                        : static_cast<long long>(v);
#else
  (void)name;
  return -1;
#endif
}

long long kml_metrics_hist_percentile(const char* name, int pct) {
#if KML_OBSERVE_ENABLED
  if (name == nullptr || pct < 0 || pct > 100) return -1;
  kml::observe::Histogram* h = kml::observe::find_histogram(name);
  if (h == nullptr) return -1;
  const unsigned long long v = h->percentile(static_cast<unsigned>(pct));
  return v > static_cast<unsigned long long>(LLONG_MAX) ? LLONG_MAX
                                                        : static_cast<long long>(v);
#else
  (void)name;
  (void)pct;
  return -1;
#endif
}

size_t kml_metrics_export(char* buf, size_t cap, int json) {
  if (buf == nullptr || cap == 0) return 0;
  const kml::observe::MetricsSnapshot snap = kml::observe::snapshot();
  const std::string out = json != 0 ? kml::observe::format_json(snap)
                                    : kml::observe::format_table(snap);
  const size_t n = out.size() < cap - 1 ? out.size() : cap - 1;
  std::memcpy(buf, out.data(), n);
  buf[n] = '\0';
  return out.size();
}

void kml_metrics_reset(void) { kml::observe::reset_all(); }

size_t kml_metrics_prom(char* buf, size_t cap) {
  if (buf == nullptr || cap == 0) return 0;
  const std::string out = kml::observe::format_prometheus();
  const size_t n = out.size() < cap - 1 ? out.size() : cap - 1;
  std::memcpy(buf, out.data(), n);
  buf[n] = '\0';
  return out.size();
}

void kml_timeseries_sample(unsigned long long now_ns) {
  kml::observe::timeseries_sample(now_ns);
}

int kml_timeseries_poll(unsigned long long now_ns) {
  return kml::observe::timeseries_poll(now_ns) ? 1 : 0;
}

unsigned long long kml_timeseries_samples(void) {
  return kml::observe::timeseries_samples();
}

void kml_timeseries_reset(void) { kml::observe::timeseries_reset(); }

long long kml_fleet_tenants(void) {
  return kml_metrics_gauge(kml::observe::kMetricFleetTenants);
}

long long kml_fleet_queue_depth(void) {
  return kml_metrics_gauge(kml::observe::kMetricFleetQueueDepth);
}

long long kml_fleet_windows(void) {
  return kml_metrics_counter(kml::observe::kMetricFleetWindows);
}

long long kml_fleet_shed_total(void) {
  return kml_metrics_counter(kml::observe::kMetricFleetShedTotal);
}

long long kml_fleet_decision_p99_ns(void) {
  return kml_metrics_hist_percentile(kml::observe::kMetricFleetDecisionNs, 99);
}

namespace {

/* Shared snprintf-convention string exporter. */
size_t export_string(char* buf, size_t cap, const std::string& out) {
  if (buf == nullptr || cap == 0) return 0;
  const size_t n = out.size() < cap - 1 ? out.size() : cap - 1;
  std::memcpy(buf, out.data(), n);
  buf[n] = '\0';
  return out.size();
}

}  // namespace

int kml_trace_enabled(void) {
  return kml::observe::flight_recording() ? 1 : 0;
}

void kml_trace_set_enabled(int on) {
  kml::observe::flight_set_enabled(on != 0);
}

void kml_trace_freeze(void) { kml::observe::flight_freeze(); }

void kml_trace_thaw(void) { kml::observe::flight_thaw(); }

int kml_trace_frozen(void) { return kml::observe::flight_frozen() ? 1 : 0; }

void kml_trace_reset(void) { kml::observe::flight_reset(); }

unsigned long long kml_trace_event_count(void) {
  return kml::observe::flight_total_events();
}

size_t kml_trace_export(char* buf, size_t cap) {
  if (buf == nullptr || cap == 0) return 0;
  return export_string(
      buf, cap,
      kml::observe::format_chrome_trace(kml::observe::flight_snapshot()));
}

int kml_trace_dump(const char* prefix) {
  if (prefix == nullptr) return 0;
  return kml::observe::flight_dump_files(kml::observe::flight_snapshot(),
                                         prefix)
             ? 1
             : 0;
}

unsigned long long kml_introspect_steps(void) {
  return kml::observe::introspect_steps();
}

void kml_introspect_reset(void) { kml::observe::introspect_reset(); }

size_t kml_introspect_export(char* buf, size_t cap) {
  if (buf == nullptr || cap == 0) return 0;
  return export_string(buf, cap,
                       kml::observe::format_introspect_json(
                           kml::observe::introspect_snapshot()));
}

int kml_cache_policy_count(void) { return kml::sim::kNumEvictionPolicies; }

const char* kml_cache_policy_name(int policy) {
  if (policy < 0 || policy >= kml::sim::kNumEvictionPolicies) return nullptr;
  return kml::sim::eviction_policy_name(
      static_cast<kml::sim::EvictionPolicyType>(policy));
}

int kml_cache_policy_id(const char* name) {
  if (name == nullptr) return -1;
  for (int i = 0; i < kml::sim::kNumEvictionPolicies; ++i) {
    const char* candidate = kml_cache_policy_name(i);
    if (candidate != nullptr && std::strcmp(candidate, name) == 0) return i;
  }
  return -1;
}

kml_dtree* kml_dtree_load(const char* path) {
  if (path == nullptr) return nullptr;
  auto* handle = new (std::nothrow) kml_dtree{};
  if (handle == nullptr) return nullptr;
  if (!handle->tree.load(path)) {
    delete handle;
    return nullptr;
  }
  return handle;
}

void kml_dtree_destroy(kml_dtree* tree) { delete tree; }

int kml_dtree_infer(const kml_dtree* tree, const double* features, int n) {
  if (tree == nullptr || features == nullptr || !tree->tree.trained() ||
      n != tree->tree.num_features()) {
    return -1;
  }
  return tree->tree.predict(features, n);
}

int kml_dtree_node_count(const kml_dtree* tree) {
  return tree == nullptr ? -1 : tree->tree.node_count();
}

}  // extern "C"
