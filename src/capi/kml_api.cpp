#include "capi/kml_api.h"

#include "dtree/decision_tree.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "runtime/health.h"

#include <new>
#include <vector>

// Opaque handle definitions: thin wrappers over the C++ objects. All
// C-visible functions are noexcept by construction (no exception may cross
// the C boundary).
struct kml_model {
  kml::nn::Network net;
  int in_features;
  int num_classes;
};

struct kml_dtree {
  kml::dtree::DecisionTree tree;
};

struct kml_health {
  kml::runtime::HealthMonitor monitor;
};

namespace {

// Feature counts derived from the layer chain (first/last linear layer).
int chain_in_features(kml::nn::Network& net) {
  for (int i = 0; i < net.num_layers(); ++i) {
    const int in = net.layer(i).in_features();
    if (in > 0) return in;
  }
  return -1;
}

int chain_out_features(kml::nn::Network& net) {
  for (int i = net.num_layers() - 1; i >= 0; --i) {
    const int out = net.layer(i).out_features();
    if (out > 0) return out;
  }
  return -1;
}

}  // namespace

extern "C" {

kml_model* kml_model_load(const char* path) {
  if (path == nullptr) return nullptr;
  kml::nn::Network net;
  if (!kml::nn::load_model(net, path)) return nullptr;
  auto* handle = new (std::nothrow) kml_model{std::move(net), 0, 0};
  if (handle == nullptr) return nullptr;
  handle->in_features = chain_in_features(handle->net);
  handle->num_classes = chain_out_features(handle->net);
  if (handle->in_features <= 0 || handle->num_classes <= 0) {
    delete handle;
    return nullptr;
  }
  return handle;
}

void kml_model_destroy(kml_model* model) { delete model; }

int kml_model_infer(const kml_model* model, const double* features, int n) {
  if (model == nullptr || features == nullptr ||
      n != model->in_features) {
    return -1;
  }
  auto* mutable_model = const_cast<kml_model*>(model);
  std::vector<double> z(features, features + n);
  mutable_model->net.normalizer().transform_row(z.data(), n);
  kml::matrix::MatD x(1, n);
  for (int j = 0; j < n; ++j) x.at(0, j) = z[static_cast<std::size_t>(j)];
  return mutable_model->net.predict_classes(x).at(0, 0);
}

int kml_model_num_features(const kml_model* model) {
  return model == nullptr ? -1 : model->in_features;
}

int kml_model_num_classes(const kml_model* model) {
  return model == nullptr ? -1 : model->num_classes;
}

size_t kml_model_weight_bytes(const kml_model* model) {
  return model == nullptr ? 0 : model->net.param_bytes();
}

kml_health* kml_health_create(void) {
  return new (std::nothrow) kml_health{};
}

void kml_health_destroy(kml_health* health) { delete health; }

int kml_health_state(const kml_health* health) {
  if (health == nullptr) return -1;
  return static_cast<int>(health->monitor.state());
}

void kml_health_observe_train_step(kml_health* health, double loss,
                                   int valid) {
  if (health == nullptr) return;
  health->monitor.observe_train_step(loss, valid != 0);
}

void kml_health_heartbeat(kml_health* health, unsigned long long now_ns) {
  if (health == nullptr) return;
  health->monitor.heartbeat(now_ns);
}

int kml_health_check_watchdog(kml_health* health, unsigned long long now_ns) {
  if (health == nullptr) return 0;
  return health->monitor.check_watchdog(now_ns) ? 1 : 0;
}

void kml_health_observe_buffer(kml_health* health,
                               unsigned long long submitted_total,
                               unsigned long long dropped_total) {
  if (health == nullptr) return;
  health->monitor.observe_buffer(submitted_total, dropped_total);
}

void kml_health_notify_rollback(kml_health* health) {
  if (health == nullptr) return;
  health->monitor.notify_rollback();
}

kml_dtree* kml_dtree_load(const char* path) {
  if (path == nullptr) return nullptr;
  auto* handle = new (std::nothrow) kml_dtree{};
  if (handle == nullptr) return nullptr;
  if (!handle->tree.load(path)) {
    delete handle;
    return nullptr;
  }
  return handle;
}

void kml_dtree_destroy(kml_dtree* tree) { delete tree; }

int kml_dtree_infer(const kml_dtree* tree, const double* features, int n) {
  if (tree == nullptr || features == nullptr || !tree->tree.trained() ||
      n != tree->tree.num_features()) {
    return -1;
  }
  return tree->tree.predict(features, n);
}

int kml_dtree_node_count(const kml_dtree* tree) {
  return tree == nullptr ? -1 : tree->tree.node_count();
}

}  // extern "C"
