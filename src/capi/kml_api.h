/*
 * kml_api.h — flat C API for model deployment (Table 1).
 *
 * The paper's KML APIs "define the interfaces between KML models and
 * kernel": a kernel module written in C loads a model file produced by the
 * user-space development loop and calls into KML for inference. This header
 * is that boundary — plain C, opaque handles, no exceptions crossing it.
 * Every function is safe to call with NULL handles (returns the documented
 * error value).
 */
#ifndef KML_CAPI_KML_API_H_
#define KML_CAPI_KML_API_H_

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ---- neural-network models (KML model file format, 'KMLM') ---- */

typedef struct kml_model kml_model;

/* Load a model saved by nn::save_model(); NULL on failure. */
kml_model* kml_model_load(const char* path);

void kml_model_destroy(kml_model* model);

/* Classify a raw feature vector (the model's own normalizer is applied).
 * Returns the class index, or -1 on error / feature-count mismatch. */
int kml_model_infer(const kml_model* model, const double* features, int n);

/* Expected input width; -1 on error. */
int kml_model_num_features(const kml_model* model);

/* Output class count; -1 on error. */
int kml_model_num_classes(const kml_model* model);

/* Bytes of parameter storage (the deployment footprint). 0 on error. */
size_t kml_model_weight_bytes(const kml_model* model);

/* ---- decision trees ('KMLT') ---- */

typedef struct kml_dtree kml_dtree;

kml_dtree* kml_dtree_load(const char* path);
void kml_dtree_destroy(kml_dtree* tree);

/* NOTE: tree files carry no normalizer; callers pass features in the same
 * space the tree was trained in. Returns class index or -1 on error. */
int kml_dtree_infer(const kml_dtree* tree, const double* features, int n);

int kml_dtree_node_count(const kml_dtree* tree);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* KML_CAPI_KML_API_H_ */
