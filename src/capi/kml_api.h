/*
 * kml_api.h — flat C API for model deployment (Table 1).
 *
 * The paper's KML APIs "define the interfaces between KML models and
 * kernel": a kernel module written in C loads a model file produced by the
 * user-space development loop and calls into KML for inference. This header
 * is that boundary — plain C, opaque handles, no exceptions crossing it.
 * Every function is safe to call with NULL handles (returns the documented
 * error value).
 */
#ifndef KML_CAPI_KML_API_H_
#define KML_CAPI_KML_API_H_

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ---- threading ---- */

/* Set the KML worker-pool size used by the parallel kernels (matmul,
 * batched inference, data-parallel training). 0 = hardware concurrency,
 * 1 = fully serial (bit-identical to single-threaded builds). The
 * KML_THREADS environment variable provides the initial value. Results of
 * the compute kernels are bit-identical at any thread count; training
 * gradients are run-to-run deterministic for a fixed thread count. */
void kml_set_threads(unsigned n);

/* Current worker-pool size (including the calling thread). */
unsigned kml_get_threads(void);

/* ---- neural-network models (KML model file format, 'KMLM') ---- */

typedef struct kml_model kml_model;

/* Load a model saved by nn::save_model(); NULL on failure. */
kml_model* kml_model_load(const char* path);

void kml_model_destroy(kml_model* model);

/* Classify a raw feature vector (the model's own normalizer is applied).
 * Returns the class index, or -1 on error / feature-count mismatch. */
int kml_model_infer(const kml_model* model, const double* features, int n);

/* Expected input width; -1 on error. */
int kml_model_num_features(const kml_model* model);

/* Output class count; -1 on error. */
int kml_model_num_classes(const kml_model* model);

/* Bytes of parameter storage (the deployment footprint). 0 on error. */
size_t kml_model_weight_bytes(const kml_model* model);

/* ---- inference engine (instrumented, zero-allocation hot path) ---- */

/* A loaded model wrapped in the KML runtime engine: latency-instrumented
 * inference whose steady-state path performs no heap allocations (the
 * paper's §3.3 memory-reservation discipline), plus batched classification
 * so a caller can classify a whole window of samples in one forward pass. */
typedef struct kml_engine kml_engine;

/* Load a model file into an engine. Hot-path buffers are pre-warmed for
 * batches of up to KML_ENGINE_DEFAULT_BATCH rows, so even the first call
 * is allocation-free. NULL on failure. */
#define KML_ENGINE_DEFAULT_BATCH 64
kml_engine* kml_engine_load(const char* path);

void kml_engine_destroy(kml_engine* engine);

/* Classify one raw feature vector (normalizer applied). Returns the class
 * index, or -1 on error / feature-count mismatch. */
int kml_engine_infer(const kml_engine* engine, const double* features, int n);

/* Classify `count` feature vectors in one forward pass. `features` is
 * row-major (count x n); classes_out[i] receives row i's class. Returns the
 * number of rows classified (count), or -1 on error. */
int kml_engine_infer_batch(const kml_engine* engine, const double* features,
                           int n, int count, int* classes_out);

/* Expected input width; -1 on error. */
int kml_engine_num_features(const kml_engine* engine);

/* Output class count; -1 on error. */
int kml_engine_num_classes(const kml_engine* engine);

/* ---- health guard (graceful degradation) ---- */

typedef struct kml_health kml_health;

/* States returned by kml_health_state(). */
#define KML_HEALTH_HEALTHY 0
#define KML_HEALTH_DEGRADED 1
#define KML_HEALTH_FAILED 2

/* Create a monitor with default thresholds; NULL on allocation failure. */
kml_health* kml_health_create(void);

void kml_health_destroy(kml_health* health);

/* Current state (KML_HEALTH_*), or -1 on NULL handle. Lock-free; safe to
 * poll from latency-sensitive paths. */
int kml_health_state(const kml_health* health);

/* Feed one training step: `loss` is the step's loss, `valid` is 0 when the
 * step produced a non-finite loss or weights. */
void kml_health_observe_train_step(kml_health* health, double loss,
                                   int valid);

/* Trainer liveness. `now_ns` is any monotonic clock shared by both sides. */
void kml_health_heartbeat(kml_health* health, unsigned long long now_ns);

/* Returns 1 if the watchdog tripped on this check, 0 otherwise / on NULL. */
int kml_health_check_watchdog(kml_health* health, unsigned long long now_ns);

/* Cumulative (monotonic) submitted/dropped counters from the trace buffer. */
void kml_health_observe_buffer(kml_health* health,
                               unsigned long long submitted_total,
                               unsigned long long dropped_total);

/* Announce a rollback to last-known-good weights: FAILED -> DEGRADED. */
void kml_health_notify_rollback(kml_health* health);

/* ---- metrics & tracing (kml::observe) ---- */

/* 1 when the observe layer is compiled in (KML_OBSERVE=ON) and recording;
 * 0 when compiled out or disabled at runtime. */
int kml_metrics_enabled(void);

/* Runtime record toggle (no-op when compiled out). */
void kml_metrics_set_enabled(int on);

/* Counter/gauge value by name; -1 when the metric does not exist (or the
 * layer is compiled out). Counter values also saturate at LLONG_MAX. */
long long kml_metrics_counter(const char* name);
long long kml_metrics_gauge(const char* name);

/* Histogram reads by name; -1 when absent. `pct` is 0..100; the returned
 * percentile is the lower bound of the bucket holding that rank (ns for
 * the built-in latency histograms). */
long long kml_metrics_hist_count(const char* name);
long long kml_metrics_hist_percentile(const char* name, int pct);

/* Render a full snapshot into `buf` (NUL-terminated, truncated if needed).
 * `json` != 0 selects the JSON form, else the aligned text table. Returns
 * the untruncated length (snprintf convention), or 0 on NULL buf/cap. */
size_t kml_metrics_export(char* buf, size_t cap, int json);

/* Zero every registered metric (registrations survive). */
void kml_metrics_reset(void);

/* Render the registry in Prometheus text exposition format 0.0.4 into
 * `buf` (NUL-terminated, truncated if needed): "# TYPE" lines, stable
 * "kml_"-prefixed names, counters as *_total, histograms as cumulative
 * _bucket{le="..."}/_sum/_count series. Returns the untruncated length
 * (snprintf convention — call with cap 1 to probe the size), or 0 on NULL
 * buf/cap. Empty output when the observe layer is compiled out. */
size_t kml_metrics_prom(char* buf, size_t cap);

/* ---- time-series retention (telemetry v3) ---- */

/* Take one sample of the whole registry into the fixed-size retention ring,
 * stamped with the caller's clock. No-op when compiled out. */
void kml_timeseries_sample(unsigned long long now_ns);

/* Sample only if at least one tick period elapsed since the previous
 * sample; returns 1 when a sample was taken. */
int kml_timeseries_poll(unsigned long long now_ns);

/* Samples taken since the last reset (the ring keeps the newest 32). */
unsigned long long kml_timeseries_samples(void);

/* Drop all retained samples and restart the retention clock. */
void kml_timeseries_reset(void);

/* ---- fleet serving (tenant-sharded batched inference) ---- */

/* Registry-backed read-side of the fleet service (src/fleet). All return -1
 * when the observe layer is compiled out, the fleet has not published yet,
 * or the metric is absent — the service itself stays C++-only; C consumers
 * monitor it through these. */

/* Tenants currently admitted ("fleet.tenants" gauge). */
long long kml_fleet_tenants(void);

/* Post-drain ready-window backlog ("fleet.queue_depth" gauge). */
long long kml_fleet_queue_depth(void);

/* Windows classified so far ("fleet.windows" counter). */
long long kml_fleet_windows(void);

/* Tenants shed by overload control so far ("fleet.shed_total" counter). */
long long kml_fleet_shed_total(void);

/* p99 submit-to-decision latency in ns ("fleet.decision_ns" histogram). */
long long kml_fleet_decision_p99_ns(void);

/* ---- flight recorder (kml::observe binary trace ring) ---- */

/* 1 when the flight recorder is compiled in, enabled, and not frozen. */
int kml_trace_enabled(void);

/* Runtime record toggle (independent of the freeze latch). */
void kml_trace_set_enabled(int on);

/* Freeze/thaw the rings: frozen rings drop new events so the window around
 * an incident survives until it is exported. The health monitor freezes
 * automatically when it degrades. */
void kml_trace_freeze(void);
void kml_trace_thaw(void);
int kml_trace_frozen(void);

/* Clear every ring and the freeze latch (events recorded so far are lost). */
void kml_trace_reset(void);

/* Total events recorded since start/reset (kept events; wrapped-over events
 * still count). 0 when compiled out. */
unsigned long long kml_trace_event_count(void);

/* Render the current rings as Chrome trace-event JSON (load the file in
 * chrome://tracing or Perfetto). Snprintf convention: returns the
 * untruncated length, writes at most cap-1 bytes + NUL. 0 on NULL/0 cap. */
size_t kml_trace_export(char* buf, size_t cap);

/* Dump the rings to <prefix>.bin (raw 32-byte events) and <prefix>.txt
 * (human-readable). Returns 1 on success, 0 on failure/compiled-out. */
int kml_trace_dump(const char* prefix);

/* ---- model introspection (per-training-step ring) ---- */

/* Training steps recorded into the introspection ring since start/reset. */
unsigned long long kml_introspect_steps(void);

/* Clear the introspection ring. */
void kml_introspect_reset(void);

/* Render the introspection ring as versioned JSON ("kml.introspect.v1"):
 * per-step loss and per-layer gradient/weight-delta L2 norms, milli-scaled
 * integers. Snprintf convention, like kml_trace_export. */
size_t kml_introspect_export(char* buf, size_t cap);

/* ---- page-cache eviction policies (second case study) ---- */

/* Stable ids for the pluggable reclaim policies (sim::EvictionPolicyType):
 * the values a deployment writes to its policy knob and the classes the
 * eviction tuner's actuation table is indexed by. */
#define KML_CACHE_POLICY_LRU 0
#define KML_CACHE_POLICY_CLOCK 1
#define KML_CACHE_POLICY_GCLOCK 2

/* Number of selectable policies. */
int kml_cache_policy_count(void);

/* Stable lowercase name ("lru", "clock", "gclock"); NULL for bad ids. */
const char* kml_cache_policy_name(int policy);

/* Reverse lookup; -1 for unknown names (NULL-safe). */
int kml_cache_policy_id(const char* name);

/* ---- decision trees ('KMLT') ---- */

typedef struct kml_dtree kml_dtree;

kml_dtree* kml_dtree_load(const char* path);
void kml_dtree_destroy(kml_dtree* tree);

/* NOTE: tree files carry no normalizer; callers pass features in the same
 * space the tree was trained in. Returns class index or -1 on error. */
int kml_dtree_infer(const kml_dtree* tree, const double* features, int n);

int kml_dtree_node_count(const kml_dtree* tree);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* KML_CAPI_KML_API_H_ */
