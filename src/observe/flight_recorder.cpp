#include "observe/flight_recorder.h"

#include "observe/metrics.h"
#include "portability/file.h"
#include "portability/kml_lib.h"
#include "portability/thread.h"
#include "portability/trace_hook.h"

#include <cstdio>
#include <cstring>

namespace kml::observe {

const char* event_name(EventId id) {
  switch (id) {
    case EventId::kNone: return "none";
    case EventId::kPoolDispatch: return "pool.dispatch";
    case EventId::kEpochStall: return "epoch.stall";
    case EventId::kBufferPush: return "buffer.push";
    case EventId::kBufferDrop: return "buffer.drop";
    case EventId::kTrainBatchBegin: return "trainer.batch_begin";
    case EventId::kTrainBatchEnd: return "trainer.batch_end";
    case EventId::kEngineCheckpoint: return "engine.checkpoint";
    case EventId::kEngineRollback: return "engine.rollback";
    case EventId::kEngineInvalidStep: return "engine.invalid_step";
    case EventId::kEngineTrainStep: return "engine.train_step";
    case EventId::kTunerDecision: return "tuner.decision";
    case EventId::kFileTunerDecision: return "file_tuner.decision";
    case EventId::kRlTunerDecision: return "rl_tuner.decision";
    case EventId::kHealthTransition: return "health.transition";
    case EventId::kTrainEpochBegin: return "train.epoch_begin";
    case EventId::kTrainEpochEnd: return "train.epoch_end";
    case EventId::kDriftSample: return "drift.sample";
    case EventId::kFaultInjected: return "fault.injected";
    case EventId::kKvCheckpoint: return "kv.checkpoint";
    case EventId::kKvRecover: return "kv.recover";
    case EventId::kKvTornManifest: return "kv.torn_manifest";
    case EventId::kKvDurabilityFault: return "kv.durability_fault";
    case EventId::kCacheTunerDecision: return "cache.tuner_decision";
    case EventId::kCachePolicySwitch: return "cache.policy_switch";
    case EventId::kFleetAdmit: return "fleet.admit";
    case EventId::kFleetShed: return "fleet.shed";
    case EventId::kFleetOverload: return "fleet.overload";
    case EventId::kSloBurn: return "slo.burn";
    case EventId::kEventIdCount: break;
  }
  return "unknown";
}

#if KML_OBSERVE_ENABLED

namespace {

// Recorder state bits, packed into one word so the record-path gate is a
// single relaxed load: bit0 = runtime-enabled, bit1 = frozen.
constexpr int kStateEnabled = 1;
constexpr int kStateFrozen = 2;

std::atomic<int> g_state{kStateEnabled};

struct alignas(kCachelineBytes) Ring {
  TraceEvent events[kFlightEventsPerThread];
  // Monotonic write cursor; slot = head & (kFlightEventsPerThread - 1).
  // Written only by the owning thread (release), read by snapshotters
  // (acquire).
  std::atomic<std::uint64_t> head{0};
  std::uint32_t thread_id = 0;
};

Ring g_rings[kFlightThreads];
std::atomic<unsigned> g_ring_count{0};   // claimed ring slots
std::atomic<std::uint64_t> g_lost{0};    // events from unslotted threads

// Per-thread ring index: -1 unclaimed, -2 permanently out of slots.
thread_local int t_ring = -1;

int claim_ring() {
  const unsigned idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kFlightThreads) {
    // Leave the counter saturated (it only ever overshoots by the number of
    // excess threads, which is bounded); remember the verdict per-thread.
    t_ring = -2;
    return -2;
  }
  g_rings[idx].thread_id = static_cast<std::uint32_t>(kml_thread_self());
  t_ring = static_cast<int>(idx);
  return t_ring;
}

// Bridge from the portability trace hook (threadpool epoch dispatch) into
// the recorder. Installed once via static initialization — with
// KML_OBSERVE=OFF this translation unit is empty and no hook exists.
void portability_hook(std::uint16_t event_id, std::uint64_t a0,
                      std::uint64_t a1) {
  if (flight_recording()) {
    flight_record(static_cast<EventId>(event_id), a0, a1);
  }
  // Epoch stalls also surface as a registry counter: a stall means a reader
  // pinned an epoch long enough for reclamation to spin, which is exactly
  // the kind of creeping pathology metrics exist to catch.
  if (event_id == kTraceEvEpochStall) {
    KML_COUNTER_INC(kMetricEpochStalls);
  }
}

struct HookInstaller {
  HookInstaller() { kml_set_trace_hook(&portability_hook); }
};
HookInstaller g_hook_installer;

}  // namespace

bool flight_recording() {
  return g_state.load(std::memory_order_relaxed) == kStateEnabled &&
         enabled();
}

void flight_set_enabled(bool on) {
  if (on) {
    g_state.fetch_or(kStateEnabled, std::memory_order_relaxed);
  } else {
    g_state.fetch_and(~kStateEnabled, std::memory_order_relaxed);
  }
}

void flight_freeze() {
  g_state.fetch_or(kStateFrozen, std::memory_order_relaxed);
}

void flight_thaw() {
  g_state.fetch_and(~kStateFrozen, std::memory_order_relaxed);
}

bool flight_frozen() {
  return (g_state.load(std::memory_order_relaxed) & kStateFrozen) != 0;
}

void flight_reset() {
  const unsigned n = g_ring_count.load(std::memory_order_relaxed) <
                             kFlightThreads
                         ? g_ring_count.load(std::memory_order_relaxed)
                         : kFlightThreads;
  for (unsigned i = 0; i < n; ++i) {
    g_rings[i].head.store(0, std::memory_order_relaxed);
  }
  g_lost.store(0, std::memory_order_relaxed);
  flight_thaw();
}

void flight_record(EventId id, std::uint64_t a0, std::uint64_t a1) {
  if (!flight_recording()) return;
  int r = t_ring;
  if (r < 0) {
    if (r == -2 || (r = claim_ring()) < 0) {
      g_lost.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Ring& ring = g_rings[r];
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  TraceEvent& e = ring.events[h & (kFlightEventsPerThread - 1)];
  e.ts_ns = kml_now_ns();
  e.thread_id = ring.thread_id;
  e.event_id = static_cast<std::uint16_t>(id);
  e.reserved = 0;
  e.arg0 = a0;
  e.arg1 = a1;
  ring.head.store(h + 1, std::memory_order_release);
}

std::uint64_t flight_total_events() {
  std::uint64_t total = 0;
  const unsigned claimed = g_ring_count.load(std::memory_order_acquire);
  const unsigned n = claimed < kFlightThreads ? claimed : kFlightThreads;
  for (unsigned i = 0; i < n; ++i) {
    total += g_rings[i].head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t flight_lost_thread_events() {
  return g_lost.load(std::memory_order_relaxed);
}

FlightSnapshot flight_snapshot() {
  FlightSnapshot snap;
  snap.frozen = flight_frozen();
  snap.lost_thread_events = flight_lost_thread_events();
  const unsigned claimed = g_ring_count.load(std::memory_order_acquire);
  const unsigned n = claimed < kFlightThreads ? claimed : kFlightThreads;
  for (unsigned i = 0; i < n; ++i) {
    const Ring& ring = g_rings[i];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    snap.total_recorded += head;
    if (head == 0) continue;
    const std::uint64_t count =
        head < kFlightEventsPerThread ? head : kFlightEventsPerThread;
    FlightThreadDump dump;
    dump.thread_id = ring.thread_id;
    dump.events.reserve(count);
    for (std::uint64_t k = head - count; k < head; ++k) {
      dump.events.push_back(ring.events[k & (kFlightEventsPerThread - 1)]);
    }
    snap.threads.push_back(std::move(dump));
  }
  return snap;
}

#endif  // KML_OBSERVE_ENABLED

std::string format_flight_text(const FlightSnapshot& snap) {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "=== kml flight recorder (%s, %llu recorded, %llu lost) ===\n",
                snap.frozen ? "frozen" : "live",
                static_cast<unsigned long long>(snap.total_recorded),
                static_cast<unsigned long long>(snap.lost_thread_events));
  out += line;
  for (const FlightThreadDump& t : snap.threads) {
    std::snprintf(line, sizeof(line), "-- thread %u (%zu events) --\n",
                  t.thread_id, t.events.size());
    out += line;
    for (const TraceEvent& e : t.events) {
      std::snprintf(line, sizeof(line),
                    "%20llu  %-22s a0=%llu a1=%llu\n",
                    static_cast<unsigned long long>(e.ts_ns),
                    event_name(static_cast<EventId>(e.event_id)),
                    static_cast<unsigned long long>(e.arg0),
                    static_cast<unsigned long long>(e.arg1));
      out += line;
    }
  }
  if (snap.threads.empty()) out += "(no events)\n";
  return out;
}

bool flight_dump_files(const FlightSnapshot& snap, const char* prefix) {
  if (prefix == nullptr) return false;
  char path[512];

  std::snprintf(path, sizeof(path), "%s.bin", prefix);
  KmlFile* bin = kml_fopen(path, "w");
  if (bin == nullptr) return false;
  bool ok = true;
  for (const FlightThreadDump& t : snap.threads) {
    const std::size_t bytes = t.events.size() * sizeof(TraceEvent);
    if (bytes != 0 &&
        kml_fwrite(bin, t.events.data(), bytes) !=
            static_cast<std::int64_t>(bytes)) {
      ok = false;
      break;
    }
  }
  kml_fclose(bin);

  std::snprintf(path, sizeof(path), "%s.txt", prefix);
  KmlFile* txt = kml_fopen(path, "w");
  if (txt == nullptr) return false;
  const std::string text = format_flight_text(snap);
  if (kml_fwrite(txt, text.data(), text.size()) !=
      static_cast<std::int64_t>(text.size())) {
    ok = false;
  }
  kml_fclose(txt);
  return ok;
}

}  // namespace kml::observe
