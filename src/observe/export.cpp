#include "observe/export.h"

#include <cstdio>

namespace kml::observe {

namespace {

// Chrome trace timestamps are microseconds; render ns as micros with three
// fractional digits using integer math only.
void append_ts_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

// The begin/end pairs the exporter stitches into duration spans.
bool span_pair(EventId id, EventId& end_id, const char** span_name) {
  switch (id) {
    case EventId::kTrainBatchBegin:
      end_id = EventId::kTrainBatchEnd;
      *span_name = "trainer.batch";
      return true;
    case EventId::kTrainEpochBegin:
      end_id = EventId::kTrainEpochEnd;
      *span_name = "train.epoch";
      return true;
    default:
      return false;
  }
}

void append_instant(std::string& out, const TraceEvent& e, bool& first) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"";
  out += event_name(static_cast<EventId>(e.event_id));
  out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
  append_ts_us(out, e.ts_ns);
  out += ",\"pid\":1,\"tid\":";
  append_u64(out, e.thread_id);
  out += ",\"args\":{\"a0\":";
  append_u64(out, e.arg0);
  out += ",\"a1\":";
  append_u64(out, e.arg1);
  out += "}}";
}

void append_span(std::string& out, const char* name, const TraceEvent& begin,
                 const TraceEvent& end, bool& first) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"X\",\"ts\":";
  append_ts_us(out, begin.ts_ns);
  out += ",\"dur\":";
  append_ts_us(out, end.ts_ns >= begin.ts_ns ? end.ts_ns - begin.ts_ns : 0);
  out += ",\"pid\":1,\"tid\":";
  append_u64(out, begin.thread_id);
  out += ",\"args\":{\"a0\":";
  append_u64(out, begin.arg0);
  out += ",\"a1\":";
  append_u64(out, begin.arg1);
  out += "}}";
}

}  // namespace

std::string format_chrome_trace(const FlightSnapshot& snap) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const FlightThreadDump& t : snap.threads) {
    const std::size_t n = t.events.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = t.events[i];
      EventId end_id;
      const char* span_name = nullptr;
      if (span_pair(static_cast<EventId>(e.event_id), end_id, &span_name)) {
        // Find the matching end in this thread's (time-ordered) stream.
        // Begin/end seams are non-reentrant per thread, so the first end of
        // the right kind is the match; a wrapped-away end degrades the
        // begin to an instant.
        std::size_t j = i + 1;
        while (j < n && t.events[j].event_id !=
                            static_cast<std::uint16_t>(end_id)) {
          ++j;
        }
        if (j < n) {
          append_span(out, span_name, e, t.events[j], first);
          continue;
        }
      } else if (e.event_id ==
                     static_cast<std::uint16_t>(EventId::kTrainBatchEnd) ||
                 e.event_id ==
                     static_cast<std::uint16_t>(EventId::kTrainEpochEnd)) {
        // Ends are consumed by their begins; an orphan (begin overwritten
        // by ring wrap) still shows up as an instant.
        bool claimed = false;
        for (std::size_t k = i; k-- > 0;) {
          EventId eid;
          const char* sn = nullptr;
          if (span_pair(static_cast<EventId>(t.events[k].event_id), eid,
                        &sn) &&
              static_cast<std::uint16_t>(eid) == e.event_id) {
            claimed = true;
            break;
          }
        }
        if (claimed) continue;
      }
      append_instant(out, e, first);
    }
  }
  out += "]}";
  return out;
}

std::string format_introspect_json(const IntrospectSnapshot& snap) {
  std::string out = "{\"schema\":\"kml.introspect.v1\",\"total_recorded\":";
  append_u64(out, snap.total_recorded);
  out += ",\"steps\":[";
  bool first = true;
  for (const StepSample& s : snap.steps) {
    if (!first) out += ',';
    first = false;
    out += "{\"step\":";
    append_u64(out, s.step);
    out += ",\"ts_ns\":";
    append_u64(out, s.ts_ns);
    out += ",\"loss_milli\":";
    append_i64(out, s.loss_milli);
    out += ",\"valid\":";
    append_u64(out, s.valid);
    out += ",\"grad_norm_milli\":[";
    for (std::uint32_t i = 0; i < s.num_layers && i < kIntrospectLayers;
         ++i) {
      if (i != 0) out += ',';
      append_i64(out, s.grad_norm_milli[i]);
    }
    out += "],\"wdelta_norm_milli\":[";
    for (std::uint32_t i = 0; i < s.num_layers && i < kIntrospectLayers;
         ++i) {
      if (i != 0) out += ',';
      append_i64(out, s.wdelta_norm_milli[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace kml::observe
