// flight_recorder.h — always-on binary event tracing for post-mortems.
//
// The health guard (PR 1) can say *that* the model went bad; this recorder
// says *what happened just before*. Every instrumented seam drops a 32-byte
// binary event into a per-thread SPSC ring; when health transitions to
// DEGRADED/FAILED the rings are frozen in place, preserving the last N
// events per thread — the causal chain (fault -> invalid step -> rollback ->
// transition) — for a binary or human-readable dump.
//
// Record-path contract (same rules as the metrics registry): no locks, no
// FPU, no allocation. One relaxed state load gates the whole path; a
// recording thread then pays one clock read plus five stores into a ring
// slot it exclusively owns (rings are single-writer, readers only attach
// after a freeze). Overwrite policy: rings wrap, newest event wins — a
// flight recorder keeps the *end* of the story by construction.
//
// With KML_OBSERVE=OFF the KML_EVENT macro expands to ((void)0) and this
// header declares no storage; the read-side API keeps its signatures so
// tools compile unchanged against an empty snapshot.
#pragma once

#include <cstdint>

#ifndef KML_OBSERVE_ENABLED
#define KML_OBSERVE_ENABLED 1
#endif

#include <string>
#include <vector>

namespace kml::observe {

// One id space for the whole process. Values below 16 mirror the
// portability trace-hook ids (trace_hook.h) verbatim.
enum class EventId : std::uint16_t {
  kNone = 0,
  kPoolDispatch = 1,       // a0=epoch, a1=worker count (== kTraceEvPoolDispatch)
  kEpochStall = 2,         // a0=global epoch, a1=objects still deferred
                           // (== kTraceEvEpochStall)
  kBufferPush = 16,        // a0=records pushed since last publish, a1=occupancy
  kBufferDrop,             // a0=records dropped since last publish
  kTrainBatchBegin,        // a0=batch sequence number, a1=records in batch
  kTrainBatchEnd,          // a0=batch sequence number, a1=records in batch
  kEngineCheckpoint,       // a0=engine train iteration
  kEngineRollback,         // a0=engine rollback count (after this one)
  kEngineInvalidStep,      // a0=engine train iteration, a1=loss (milli, 2's-c)
  kEngineTrainStep,        // a0=engine train iteration, a1=loss (milli, 2's-c)
  kTunerDecision,          // a0=predicted class, a1=readahead KB actuated
  kFileTunerDecision,      // a0=predicted class, a1=readahead KB actuated
  kRlTunerDecision,        // a0=chosen action/class, a1=readahead KB actuated
  kHealthTransition,       // a0=old HealthState, a1=new HealthState
  kTrainEpochBegin,        // a0=epoch index, a1=total epochs
  kTrainEpochEnd,          // a0=epoch index, a1=epoch loss (milli, 2's-c)
  kDriftSample,            // a0=max |z| across features (milli), a1=samples
  kFaultInjected,          // a0=FaultSite, a1=injection count for the site
  kKvCheckpoint,           // a0=checkpoint id, a1=overlay run count
  kKvRecover,              // a0=WAL records replayed, a1=recovered durable seq
  kKvTornManifest,         // a0=manifest bytes on disk (rejected load)
  kKvDurabilityFault,      // a0=FaultSite that tripped, a1=last durable seq
  kCacheTunerDecision,     // a0=predicted class, a1=actuated policy id
  kCachePolicySwitch,      // a0=new EvictionPolicyType, a1=old
  kFleetAdmit,             // a0=tenant id, a1=active tenants after admit
  kFleetShed,              // a0=tenant id, a1=that tenant's window count
  kFleetOverload,          // a0=queue depth, a1=decision p99 (ns)
  kSloBurn,                // a0=SLO objective index, a1=fast burn (milli)
  kEventIdCount,
};

// Stable human-readable name (dump files, tests).
const char* event_name(EventId id);

// The wire/storage format: 32 bytes, integers only, trivially copyable.
struct TraceEvent {
  std::uint64_t ts_ns;      // kml_now_ns() at record time
  std::uint32_t thread_id;  // kml_thread_self() of the recording thread
  std::uint16_t event_id;   // EventId
  std::uint16_t reserved;   // zero; format versioning headroom
  std::uint64_t arg0;
  std::uint64_t arg1;
};
static_assert(sizeof(TraceEvent) == 32, "TraceEvent is the 32-byte format");

// Ring geometry. kFlightEventsPerThread must stay a power of two (index
// masking on the record path). 32 threads x 1024 events x 32 B = 1 MiB of
// static storage — the price of an always-on post-mortem.
inline constexpr unsigned kFlightThreads = 32;
inline constexpr unsigned kFlightEventsPerThread = 1024;

// Snapshot structs exist in both build modes (empty when compiled out).
struct FlightThreadDump {
  std::uint32_t thread_id = 0;
  std::vector<TraceEvent> events;  // oldest -> newest
};

struct FlightSnapshot {
  std::vector<FlightThreadDump> threads;
  std::uint64_t total_recorded = 0;     // events accepted since reset
  std::uint64_t lost_thread_events = 0; // events from threads past the cap
  bool frozen = false;
};

#if KML_OBSERVE_ENABLED

// True when events are being accepted: runtime-enabled (default), not
// frozen, and the registry-wide observe::enabled() switch is on. One-two
// relaxed loads; this is the macro's gate.
bool flight_recording();

// Runtime kill switch for the recorder alone (bench_overheads prices the
// record path by toggling this with the rest of observe left on).
void flight_set_enabled(bool on);

// Freeze preserves every ring in place (recording stops instantly; an event
// mid-store on another thread may land half-written in the newest slot — a
// documented, bounded imprecision). Thaw resumes recording over the
// preserved history.
void flight_freeze();
void flight_thaw();
bool flight_frozen();

// Clear all rings and counters and resume recording. Threads keep their
// ring assignments.
void flight_reset();

// Record one event. Call through KML_EVENT so the disabled path stays one
// load; calling this directly while not recording is a no-op.
void flight_record(EventId id, std::uint64_t a0 = 0, std::uint64_t a1 = 0);

// Events accepted since the last reset (sum over rings, including
// overwritten ones) / events lost because more than kFlightThreads threads
// recorded.
std::uint64_t flight_total_events();
std::uint64_t flight_lost_thread_events();

// Copy-out of every non-empty ring, oldest event first. Cold path: may
// allocate; safe while recording (each ring is sampled at one instant) but
// meant to run after flight_freeze().
FlightSnapshot flight_snapshot();

#else  // !KML_OBSERVE_ENABLED

inline bool flight_recording() { return false; }
inline void flight_set_enabled(bool) {}
inline void flight_freeze() {}
inline void flight_thaw() {}
inline bool flight_frozen() { return false; }
inline void flight_reset() {}
inline void flight_record(EventId, std::uint64_t = 0, std::uint64_t = 0) {}
inline std::uint64_t flight_total_events() { return 0; }
inline std::uint64_t flight_lost_thread_events() { return 0; }
inline FlightSnapshot flight_snapshot() { return FlightSnapshot{}; }

#endif  // KML_OBSERVE_ENABLED

// Human-readable dump (one line per event, per-thread sections). Works in
// both build modes; empty snapshots render a header only.
std::string format_flight_text(const FlightSnapshot& snap);

// Write `snap` next to a post-mortem: "<prefix>.bin" (raw TraceEvent
// stream, per-thread contiguous, oldest first) and "<prefix>.txt" (the text
// form). Returns true when both files were written. Cold path.
bool flight_dump_files(const FlightSnapshot& snap, const char* prefix);

}  // namespace kml::observe

// Record-path macro. OFF builds: ((void)0), no statics, no code.
#if KML_OBSERVE_ENABLED
#define KML_EVENT(...)                                                     \
  do {                                                                     \
    if (::kml::observe::flight_recording()) {                              \
      ::kml::observe::flight_record(__VA_ARGS__);                          \
    }                                                                      \
  } while (0)
#else
#define KML_EVENT(...) ((void)0)
#endif
