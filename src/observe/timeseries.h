// timeseries.h — fixed-size retention for the metrics registry
// (kml::observe telemetry v3).
//
// The registry (metrics.h) answers "what is the value NOW"; the flight
// recorder answers "what happened right before the crash". Neither answers
// "what changed over the last minute" — rates, recent history, windowed
// percentiles — which is what an operator needs to see a regression *build*
// instead of discovering it post-mortem. This ring is that retention:
//
//   * A sample captures the whole registry at one instant: counter DELTAS
//     since the previous sample, gauge LAST VALUES, and per-bucket
//     histogram count deltas (the log-scale layout from metrics.h,
//     preserved bucket-for-bucket so windows merge exactly).
//   * Storage is static, fixed-size, integer-only, allocation-free: a ring
//     of kTimeSeriesTicks samples over the registry's compile-time pools.
//     One sample is ~70 KB; the whole ring is ~2 MiB — the flight-recorder
//     trade (1 MiB) at time-series granularity. Overwrite policy: the ring
//     wraps, newest sample wins.
//   * Read side: windowed queries over the last W samples. Counter deltas
//     sum; histogram windows merge bucket-wise and then reuse the exact
//     integer percentile walk from Histogram — a merged window percentile
//     is bit-identical to what one histogram containing only that window's
//     records would report. The SLO layer (slo.h) is built on these.
//
// The tick is externally driven: hosts call timeseries_poll(now_ns) from
// their once-per-second maintenance path (FleetService::tick does) or
// timeseries_sample(now_ns) directly (tools, tests, benches). One clock
// domain per process — mixing the simulator's virtual clock with
// kml_now_ns() in one ring would interleave incompatible timelines, so
// only real-time hosts poll.
//
// Sampling is a cold path (a registry scan) guarded by its own spinlock;
// the record-side hot paths never see any of this. With KML_OBSERVE=OFF
// everything here compiles to inline no-op stubs — zero code, zero statics.
#pragma once

#include <cstdint>

#include "observe/metrics.h"

namespace kml::observe {

// Ring capacity in samples. At the default 1 s tick this retains ~half a
// minute of history; slower ticks retain proportionally more. Fixed at
// compile time: the storage is static (zero-alloc), and the SLO burn
// windows (fast/slow) must fit inside it.
inline constexpr unsigned kTimeSeriesTicks = 32;

// Default tick period for timeseries_poll: one second.
inline constexpr std::uint64_t kTimeSeriesDefaultTickNs = 1'000'000'000;

#if KML_OBSERVE_ENABLED

// Runtime switch for the sampler alone (the registry keeps recording; only
// retention stops). Default on.
bool timeseries_enabled();
void timeseries_set_enabled(bool on);

// Poll period used by timeseries_poll(). 0 is clamped to 1 ns.
void timeseries_set_tick_ns(std::uint64_t tick_ns);
std::uint64_t timeseries_tick_ns();

// Take one sample of the whole registry, stamped `now_ns`. Samples with a
// non-advancing clock are accepted (delta span 0); callers own monotonicity.
void timeseries_sample(std::uint64_t now_ns);

// Sample only when `now_ns` is at least one tick past the previous sample
// (or on the very first call). Returns true when a sample was taken. This
// is the cheap form hosts wire into periodic maintenance: one relaxed load
// and a compare when not due.
bool timeseries_poll(std::uint64_t now_ns);

// Samples taken since the last reset (monotonic; the ring holds the last
// min(samples, kTimeSeriesTicks) of them).
std::uint64_t timeseries_samples();

// Timestamp of the newest sample; 0 before the first.
std::uint64_t timeseries_last_sample_ns();

// Drop all retained samples and restart the clock (tests/benches).
void timeseries_reset();

// --- Windowed queries --------------------------------------------------------
//
// `window_ticks` counts newest-first samples and is clamped to
// [1, min(samples, kTimeSeriesTicks)]; queries before the first sample
// return 0. Metrics are matched by registry name; absent names return 0.

// Sum of a counter's increments across the window.
std::uint64_t timeseries_counter_delta(const char* name,
                                       unsigned window_ticks);

// Counter increments per second across the window, integer: delta * 1e9 /
// window-span-ns. 0 when the span is 0 (single sample or stalled clock).
std::uint64_t timeseries_counter_rate_per_sec(const char* name,
                                              unsigned window_ticks);

// Gauge value at the newest sample (retention of last-value semantics).
std::int64_t timeseries_gauge_last(const char* name);

// Records a histogram received during the window.
std::uint64_t timeseries_hist_window_count(const char* name,
                                           unsigned window_ticks);

// Percentile over the window's merged buckets — same integer rank walk and
// edge pinning as Histogram::percentile, applied to only the window's
// records.
std::uint64_t timeseries_hist_window_percentile(const char* name,
                                                unsigned window_ticks,
                                                unsigned pct);

// Records in the window whose bucket lies strictly above `threshold`:
// the SLO layer's bad-event count. Bucket resolution — a record in the
// bucket *containing* the threshold counts as good, so thresholds that are
// exact bucket lower bounds (e.g. powers of two) are judged exactly.
std::uint64_t timeseries_hist_window_over(const char* name,
                                          unsigned window_ticks,
                                          std::uint64_t threshold);

#else  // !KML_OBSERVE_ENABLED

inline bool timeseries_enabled() { return false; }
inline void timeseries_set_enabled(bool) {}
inline void timeseries_set_tick_ns(std::uint64_t) {}
inline std::uint64_t timeseries_tick_ns() { return kTimeSeriesDefaultTickNs; }
inline void timeseries_sample(std::uint64_t) {}
inline bool timeseries_poll(std::uint64_t) { return false; }
inline std::uint64_t timeseries_samples() { return 0; }
inline std::uint64_t timeseries_last_sample_ns() { return 0; }
inline void timeseries_reset() {}
inline std::uint64_t timeseries_counter_delta(const char*, unsigned) {
  return 0;
}
inline std::uint64_t timeseries_counter_rate_per_sec(const char*, unsigned) {
  return 0;
}
inline std::int64_t timeseries_gauge_last(const char*) { return 0; }
inline std::uint64_t timeseries_hist_window_count(const char*, unsigned) {
  return 0;
}
inline std::uint64_t timeseries_hist_window_percentile(const char*, unsigned,
                                                       unsigned) {
  return 0;
}
inline std::uint64_t timeseries_hist_window_over(const char*, unsigned,
                                                 std::uint64_t) {
  return 0;
}

#endif  // KML_OBSERVE_ENABLED

}  // namespace kml::observe
