#include "observe/metrics.h"

#include "portability/fault.h"
#include "portability/kml_lib.h"
#include "portability/log.h"

#include <cstdio>
#include <cstring>

namespace kml::observe {

#if KML_OBSERVE_ENABLED

namespace {

// Registration-side spinlock. Registration is a cold, setup-time operation
// (call sites cache the reference); the record path never takes this. A
// spinlock instead of std::mutex keeps the subsystem free of blocking
// primitives end to end, matching the kernel deployment story.
std::atomic_flag g_reg_lock = ATOMIC_FLAG_INIT;

struct RegLockGuard {
  RegLockGuard() {
    while (g_reg_lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~RegLockGuard() { g_reg_lock.clear(std::memory_order_release); }
};

// Names live in a cold side array (the value slots stay one-per-cacheline
// without dragging 48 name bytes into them). A slot is published by the
// release store of the count; readers load the count with acquire.
template <typename Slot, std::size_t N>
struct Pool {
  Slot slots[N];
  char names[N][kMaxNameLen + 1] = {};
  std::atomic<std::size_t> count{0};
  Slot overflow;  // shared spill slot when the pool is exhausted
  // Lookups that resolved to the spill slot. A flooded registry keeps
  // re-resolving the same unregistered names, so this over-counts distinct
  // names — it is a "how bad is the exhaustion" meter, not a name census.
  std::atomic<std::uint64_t> overflow_hits{0};
  bool overflow_warned = false;

  Slot* find(const char* name) {
    const std::size_t n = count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (std::strncmp(names[i], name, kMaxNameLen + 1) == 0) {
        return &slots[i];
      }
    }
    return nullptr;
  }

  Slot& find_or_create(const char* name, const char* kind) {
    if (Slot* hit = find(name)) return *hit;
    RegLockGuard guard;
    if (Slot* hit = find(name)) return *hit;  // lost the registration race
    const std::size_t n = count.load(std::memory_order_relaxed);
    if (n >= N) {
      overflow_hits.fetch_add(1, std::memory_order_relaxed);
      if (!overflow_warned) {
        overflow_warned = true;
        KML_WARN("observe: %s pool exhausted (%zu slots); '%s' and later "
                 "registrations share the overflow slot",
                 kind, N, name);
      }
      return overflow;
    }
    std::strncpy(names[n], name, kMaxNameLen);
    names[n][kMaxNameLen] = '\0';
    count.store(n + 1, std::memory_order_release);
    return slots[n];
  }
};

std::atomic<bool> g_enabled{true};

Pool<Counter, kMaxCounters>& counters() {
  static Pool<Counter, kMaxCounters> pool;
  return pool;
}
Pool<Gauge, kMaxGauges>& gauges() {
  static Pool<Gauge, kMaxGauges> pool;
  return pool;
}
Pool<Histogram, kMaxHistograms>& histograms() {
  static Pool<Histogram, kMaxHistograms> pool;
  return pool;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Counter& get_counter(const char* name) {
  return counters().find_or_create(name, "counter");
}
Gauge& get_gauge(const char* name) {
  return gauges().find_or_create(name, "gauge");
}
Histogram& get_histogram(const char* name) {
  return histograms().find_or_create(name, "histogram");
}

Counter* find_counter(const char* name) { return counters().find(name); }
Gauge* find_gauge(const char* name) { return gauges().find(name); }
Histogram* find_histogram(const char* name) { return histograms().find(name); }

std::uint64_t registry_overflow_count() {
  return counters().overflow_hits.load(std::memory_order_relaxed) +
         gauges().overflow_hits.load(std::memory_order_relaxed) +
         histograms().overflow_hits.load(std::memory_order_relaxed);
}

std::size_t counter_slots() {
  return counters().count.load(std::memory_order_acquire);
}
const char* counter_slot_name(std::size_t i) {
  if (i >= counter_slots()) return nullptr;
  return counters().names[i];
}
std::uint64_t counter_slot_value(std::size_t i) {
  if (i >= counter_slots()) return 0;
  return counters().slots[i].value();
}
std::size_t gauge_slots() {
  return gauges().count.load(std::memory_order_acquire);
}
const char* gauge_slot_name(std::size_t i) {
  if (i >= gauge_slots()) return nullptr;
  return gauges().names[i];
}
std::int64_t gauge_slot_value(std::size_t i) {
  if (i >= gauge_slots()) return 0;
  return gauges().slots[i].value();
}
std::size_t histogram_slots() {
  return histograms().count.load(std::memory_order_acquire);
}
const char* histogram_slot_name(std::size_t i) {
  if (i >= histogram_slots()) return nullptr;
  return histograms().names[i];
}
const Histogram* histogram_slot(std::size_t i) {
  if (i >= histogram_slots()) return nullptr;
  return &histograms().slots[i];
}

std::uint64_t Histogram::percentile_from_counts(
    const std::uint64_t counts[kNumBuckets], unsigned pct) {
  if (pct > 100) pct = 100;
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kNumBuckets; ++i) total += counts[i];
  if (total == 0) return 0;
  // Rank of the pct-th value, 1-based, integer ceil: rank(100) == total.
  // Clamped to >= 1 so pct=0 means "the smallest recorded value's bucket" —
  // an unclamped rank 0 would match the first (possibly empty) bucket and
  // report 0 for data that never contained it.
  std::uint64_t rank = (total * pct + 99) / 100;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return bucket_lower_bound(i);
  }
  return bucket_lower_bound(kNumBuckets - 1);
}

std::uint64_t Histogram::percentile(unsigned pct) const {
  std::uint64_t counts[kNumBuckets];
  for (unsigned i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return percentile_from_counts(counts, pct);
}

void reset_all() {
  {
    auto& pool = counters();
    const std::size_t n = pool.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) pool.slots[i].reset();
    pool.overflow.reset();
  }
  {
    auto& pool = gauges();
    const std::size_t n = pool.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) pool.slots[i].reset();
    pool.overflow.reset();
  }
  {
    auto& pool = histograms();
    const std::size_t n = pool.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) pool.slots[i].reset();
    pool.overflow.reset();
  }
}

MetricsSnapshot snapshot() {
  MetricsSnapshot snap;
  {
    auto& pool = counters();
    const std::size_t n = pool.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      snap.counters.push_back({pool.names[i], pool.slots[i].value()});
    }
  }
  {
    auto& pool = gauges();
    const std::size_t n = pool.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      snap.gauges.push_back({pool.names[i], pool.slots[i].value()});
    }
  }
  {
    auto& pool = histograms();
    const std::size_t n = pool.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Histogram& h = pool.slots[i];
      snap.histograms.push_back({pool.names[i], h.count(), h.sum(), h.max(),
                                 h.percentile(50), h.percentile(90),
                                 h.percentile(99), h.overflow_count()});
    }
  }
  // Synthetic row: pool-exhaustion meter. Always present so dashboards see
  // an explicit zero; never occupies a registry slot itself (which would be
  // one more way to overflow).
  snap.counters.push_back(
      {kMetricRegistryOverflow, registry_overflow_count()});
  // Sampled externals: the fault registry and FPU guard live below observe
  // in the layering, so their counts are pulled at snapshot time rather
  // than pushed on their hot paths.
  for (unsigned i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const std::uint64_t injected = kml_fault_injected(site);
    if (injected == 0) continue;
    char name[kMaxNameLen + 1];
    std::snprintf(name, sizeof(name), "fault.injected.%s",
                  kml_fault_site_name(site));
    snap.gauges.push_back({name, static_cast<std::int64_t>(injected)});
  }
  snap.gauges.push_back({"portability.fpu_regions",
                         static_cast<std::int64_t>(kml_fpu_region_count())});
  return snap;
}

namespace {

// Prometheus metric name: "kml_" + registry name with every character
// outside [a-zA-Z0-9_] mapped to '_'. Deterministic, so dashboards keyed on
// these names survive re-registration order changes (names, not indices,
// are the contract).
std::string prom_name(const char* name) {
  std::string out = "kml_";
  for (const char* p = name; *p != '\0'; ++p) {
    const char c = *p;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string format_prometheus() {
  std::string out;
  char line[192];
  const std::size_t nc = counter_slots();
  for (std::size_t i = 0; i <= nc; ++i) {
    // Slot nc is the synthetic pool-exhaustion meter (same row snapshot()
    // appends) so scrapes always see it, exhausted registry or not.
    const std::string name =
        (i < nc ? prom_name(counter_slot_name(i))
                : prom_name(kMetricRegistryOverflow)) +
        "_total";
    const std::uint64_t v =
        i < nc ? counter_slot_value(i) : registry_overflow_count();
    out += "# TYPE " + name + " counter\n";
    std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  const std::size_t ng = gauge_slots();
  for (std::size_t i = 0; i < ng; ++i) {
    const std::string name = prom_name(gauge_slot_name(i));
    out += "# TYPE " + name + " gauge\n";
    std::snprintf(line, sizeof(line), "%s %lld\n", name.c_str(),
                  static_cast<long long>(gauge_slot_value(i)));
    out += line;
  }
  const std::size_t nh = histogram_slots();
  for (std::size_t i = 0; i < nh; ++i) {
    const Histogram* h = histogram_slot(i);
    const std::string name = prom_name(histogram_slot_name(i));
    std::uint64_t counts[Histogram::kNumBuckets];
    std::uint64_t total = 0;
    for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
      counts[b] = h->bucket_count(b);
      total += counts[b];
    }
    out += "# TYPE " + name + " histogram\n";
    // Cumulative series. Only buckets that change the cumulative count are
    // emitted (252 mostly-zero lines per histogram would dwarf the data);
    // sparse `le` sets are valid because the series is cumulative. The
    // topmost bucket has no finite upper bound — it is covered by the
    // mandatory +Inf line.
    std::uint64_t cum = 0;
    for (unsigned b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
      if (counts[b] == 0) continue;
      cum += counts[b];
      std::snprintf(line, sizeof(line), "%s_bucket{le=\"%llu\"} %llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        Histogram::bucket_lower_bound(b + 1) - 1),
                    static_cast<unsigned long long>(cum));
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n",
                  name.c_str(), static_cast<unsigned long long>(total));
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %llu\n", name.c_str(),
                  static_cast<unsigned long long>(h->sum()));
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %llu\n", name.c_str(),
                  static_cast<unsigned long long>(total));
    out += line;
  }
  return out;
}

#else  // !KML_OBSERVE_ENABLED

MetricsSnapshot snapshot() { return MetricsSnapshot{}; }

std::string format_prometheus() { return std::string(); }

#endif  // KML_OBSERVE_ENABLED

std::string format_table(const MetricsSnapshot& snap) {
  std::string out;
  char line[256];
  out += "=== kml::observe metrics ===\n";
  if (!snap.counters.empty()) {
    out += "-- counters --\n";
    for (const CounterSnapshot& c : snap.counters) {
      std::snprintf(line, sizeof(line), "%-40s %20llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  if (!snap.gauges.empty()) {
    out += "-- gauges --\n";
    for (const GaugeSnapshot& g : snap.gauges) {
      std::snprintf(line, sizeof(line), "%-40s %20lld\n", g.name.c_str(),
                    static_cast<long long>(g.value));
      out += line;
    }
  }
  if (!snap.histograms.empty()) {
    out += "-- histograms (ns) --\n";
    std::snprintf(line, sizeof(line), "%-40s %12s %12s %12s %12s %12s %8s\n",
                  "name", "count", "p50", "p90", "p99", "max", "ovfl");
    out += line;
    for (const HistogramSnapshot& h : snap.histograms) {
      std::snprintf(line, sizeof(line),
                    "%-40s %12llu %12llu %12llu %12llu %12llu %8llu\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(h.p50),
                    static_cast<unsigned long long>(h.p90),
                    static_cast<unsigned long long>(h.p99),
                    static_cast<unsigned long long>(h.max),
                    static_cast<unsigned long long>(h.overflow));
      out += line;
    }
  }
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    out += "(no metrics registered)\n";
  }
  return out;
}

namespace {

void append_json_key(std::string& out, const std::string& name) {
  out += '"';
  for (char c : name) {
    // Metric names are dotted identifiers; escape just enough to stay valid
    // JSON if someone registers something unusual.
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string format_json(const MetricsSnapshot& snap) {
  std::string out = "{\"schema\":\"kml.metrics.v1\",\"counters\":{";
  // Widest histogram entry: 7 u64 fields at up to 20 digits plus keys.
  char buf[256];
  bool first = true;
  for (const CounterSnapshot& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_json_key(out, c.name);
    std::snprintf(buf, sizeof(buf), ":%llu",
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_json_key(out, g.name);
    std::snprintf(buf, sizeof(buf), ":%lld", static_cast<long long>(g.value));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_json_key(out, h.name);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%llu,\"sum\":%llu,\"max\":%llu,\"p50\":%llu,"
                  "\"p90\":%llu,\"p99\":%llu,\"overflow\":%llu}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.max),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p90),
                  static_cast<unsigned long long>(h.p99),
                  static_cast<unsigned long long>(h.overflow));
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace kml::observe
