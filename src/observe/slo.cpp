// slo.cpp — SLO burn-rate evaluation over the time-series ring (see slo.h).
#include "observe/slo.h"

#if KML_OBSERVE_ENABLED

#include "observe/timeseries.h"

#include <atomic>
#include <cstring>

namespace kml::observe {

namespace {

// Fixed objective table. Registration copies the histogram name so an
// objective never dangles on a caller's string lifetime. Same publication
// scheme as the registry pools: release store of the count publishes the
// slot; readers acquire-load the count.
struct SloTable {
  SloObjective slots[kMaxSloObjectives];
  char names[kMaxSloObjectives][kMaxNameLen + 1] = {};
  std::atomic<std::size_t> count{0};
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
};

SloTable& table() {
  static SloTable t;
  return t;
}

struct SloLockGuard {
  explicit SloLockGuard(SloTable& t) : t_(t) {
    while (t_.lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SloLockGuard() { t_.lock.clear(std::memory_order_release); }
  SloTable& t_;
};

// burn = bad_ratio / budget as a milli-ratio, integer: burn 1000 means the
// window's bad fraction exactly equals the error budget.
std::uint64_t burn_milli(std::uint64_t bad, std::uint64_t total,
                         std::uint32_t objective_milli) {
  if (total == 0) return 0;
  const std::uint64_t budget_milli = 1000 - objective_milli;  // >= 1
  const std::uint64_t bad_ratio_milli = bad * 1000 / total;
  return bad_ratio_milli * 1000 / budget_milli;
}

}  // namespace

int slo_register(const SloObjective& objective) {
  if (objective.hist_name == nullptr) return -1;
  if (std::strlen(objective.hist_name) > kMaxNameLen) return -1;
  SloTable& t = table();
  SloLockGuard guard(t);
  const std::size_t n = t.count.load(std::memory_order_relaxed);
  if (n >= kMaxSloObjectives) return -1;
  std::strncpy(t.names[n], objective.hist_name, kMaxNameLen);
  t.names[n][kMaxNameLen] = '\0';
  t.slots[n] = objective;
  t.slots[n].hist_name = t.names[n];
  if (t.slots[n].objective_milli > 999) t.slots[n].objective_milli = 999;
  if (t.slots[n].fast_window_ticks < 1) t.slots[n].fast_window_ticks = 1;
  if (t.slots[n].slow_window_ticks < 1) t.slots[n].slow_window_ticks = 1;
  t.count.store(n + 1, std::memory_order_release);
  return static_cast<int>(n);
}

std::size_t slo_count() {
  return table().count.load(std::memory_order_acquire);
}

const SloObjective* slo_objective(std::size_t idx) {
  if (idx >= slo_count()) return nullptr;
  return &table().slots[idx];
}

SloStatus slo_evaluate(std::size_t idx) {
  SloStatus st;
  const SloObjective* o = slo_objective(idx);
  if (o == nullptr) return st;
  st.fast_total = timeseries_hist_window_count(o->hist_name,
                                               o->fast_window_ticks);
  st.fast_bad = timeseries_hist_window_over(o->hist_name,
                                            o->fast_window_ticks,
                                            o->threshold_ns);
  st.slow_total = timeseries_hist_window_count(o->hist_name,
                                               o->slow_window_ticks);
  st.slow_bad = timeseries_hist_window_over(o->hist_name,
                                            o->slow_window_ticks,
                                            o->threshold_ns);
  st.fast_burn_milli = burn_milli(st.fast_bad, st.fast_total,
                                  o->objective_milli);
  st.slow_burn_milli = burn_milli(st.slow_bad, st.slow_total,
                                  o->objective_milli);
  st.valid = st.fast_total >= o->min_window_records &&
             st.slow_total >= o->min_window_records;
  st.burning = st.valid && st.fast_burn_milli > o->fast_burn_trip_milli &&
               st.slow_burn_milli > o->slow_burn_trip_milli;
  return st;
}

void slo_reset() {
  SloTable& t = table();
  SloLockGuard guard(t);
  for (std::size_t i = 0; i < kMaxSloObjectives; ++i) {
    t.slots[i] = SloObjective{};
    t.names[i][0] = '\0';
  }
  t.count.store(0, std::memory_order_release);
}

}  // namespace kml::observe

#endif  // KML_OBSERVE_ENABLED
