// metrics.h — kernel-constraint-respecting metrics & tracing (kml::observe).
//
// The paper's overhead story (§3.1, §4) demands that KML observe the I/O
// path without perturbing it: hooks never block, never take a lock, never
// touch the FPU. This layer makes "what is the framework doing right now,
// and what does it cost?" answerable under exactly those rules:
//
//   * Counters and gauges are single relaxed atomic RMWs/stores on
//     dedicated cache lines — one uncontended RMW per hot-path increment,
//     no false sharing with neighbouring metrics.
//   * Latency histograms are log-scale with linear sub-buckets (the
//     HdrHistogram/kernel-hist shape), integer-only end to end: bucketing
//     is a count-leading-zeros plus shift, percentile extraction walks
//     bucket counts with integer arithmetic. No doubles anywhere on the
//     record *or* read path, so a kernel backend never brackets this code
//     with kernel_fpu_begin/end.
//   * Trace spans are RAII timers over the portability clock
//     (kml_now_ns()) recording into a histogram on scope exit.
//   * Registration is find-or-create by name under a spinlock — a cold,
//     setup-time operation. Call sites cache the returned reference in a
//     function-local static, so the steady-state record path never touches
//     the registry again.
//
// Kill switches, outermost first:
//   * Compile time: -DKML_OBSERVE=OFF (CMake) defines KML_OBSERVE_ENABLED=0
//     and every KML_* macro below expands to ((void)0) — zero code, zero
//     data, zero clock reads.
//   * Run time: observe::set_enabled(false) short-circuits the macros with
//     one relaxed bool load (bench_overheads uses this to price the
//     instrumentation itself).
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef KML_OBSERVE_ENABLED
#define KML_OBSERVE_ENABLED 1
#endif

#if KML_OBSERVE_ENABLED
#include "portability/kml_lib.h"

#include <atomic>
#include <bit>
#endif

#include <string>
#include <vector>

namespace kml::observe {

// Registry capacity. Fixed at compile time: the registry is static storage,
// never allocates, and never moves a metric once registered (call sites hold
// plain references).
inline constexpr std::size_t kMaxNameLen = 47;
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxGauges = 64;
// Raised from 32 in PR 10: per-stage latency attribution registers four
// fleet stages + three tenant-class rollups + three stages each for the
// readahead and eviction tuners on top of the existing latency histograms.
inline constexpr std::size_t kMaxHistograms = 64;
inline constexpr std::size_t kCachelineBytes = 64;

// --- Well-known metric names -------------------------------------------------
//
// The instrumented seams and the consumers (runtime/health, tool_metrics_dump,
// tests) agree on these; ad-hoc names are fine for everything else.
inline constexpr char kMetricBufferPush[] = "data.buffer.push";
inline constexpr char kMetricBufferPop[] = "data.buffer.pop";
inline constexpr char kMetricBufferDrop[] = "data.buffer.drop";
inline constexpr char kMetricBufferOccupancy[] = "data.buffer.occupancy";
inline constexpr char kMetricNormalizeNs[] = "data.normalize_ns";
inline constexpr char kMetricTrainerBatches[] = "runtime.trainer.batches";
inline constexpr char kMetricTrainerRecords[] = "runtime.trainer.records";
inline constexpr char kMetricTrainBatchNs[] = "runtime.train_batch_ns";
inline constexpr char kMetricInferenceNs[] = "runtime.inference_ns";
inline constexpr char kMetricEngineCheckpoints[] = "runtime.engine.checkpoints";
inline constexpr char kMetricEngineRollbacks[] = "runtime.engine.rollbacks";
inline constexpr char kMetricEngineInvalidSteps[] =
    "runtime.engine.invalid_steps";
inline constexpr char kMetricRaWindows[] = "readahead.windows";
inline constexpr char kMetricRaDegradedWindows[] = "readahead.degraded_windows";
inline constexpr char kMetricRaSetKb[] = "readahead.ra_kb";
inline constexpr char kMetricCacheHit[] = "sim.cache.hit";
inline constexpr char kMetricCacheMiss[] = "sim.cache.miss";
// Eviction case study (PR 7): reclaim-policy actuation and its tuner loop.
// cache.policy.id carries the EvictionPolicyType enum value as a gauge.
inline constexpr char kMetricCachePolicySwitches[] = "cache.policy.switches";
inline constexpr char kMetricCachePolicyId[] = "cache.policy.id";
inline constexpr char kMetricCacheTunerWindows[] = "cache.tuner.windows";
inline constexpr char kMetricCacheTunerDegraded[] =
    "cache.tuner.degraded_windows";
// Introspection v2 signals (PR 5). Milli-suffixed metrics carry scaled
// integers (value x 1000) — the producers convert above the FPU line.
inline constexpr char kMetricTrainSteps[] = "nn.train.steps";
inline constexpr char kMetricGradNormMilli[] = "nn.train.grad_norm_milli";
inline constexpr char kMetricConfidenceMilli[] = "nn.infer.confidence_milli";
inline constexpr char kMetricDriftZMilli[] = "data.drift.max_z_milli";
inline constexpr char kMetricDriftSamples[] = "data.drift.samples";
// MiniKV crash-consistency signals (PR 6). Counters are cumulative event
// counts bumped on the cold writer-side paths (recovery, checkpoint,
// reclamation); the health guard's KV-recovery signal reads kv.recoveries.
inline constexpr char kMetricKvWalReplays[] = "kv.wal_replays";
inline constexpr char kMetricKvWalRecordsReplayed[] =
    "kv.wal_records_replayed";
inline constexpr char kMetricKvRecoveries[] = "kv.recoveries";
inline constexpr char kMetricKvTornManifests[] = "kv.torn_manifests_rejected";
inline constexpr char kMetricKvEpochDeferredFrees[] =
    "kv.epoch_deferred_frees";
inline constexpr char kMetricKvCheckpoints[] = "kv.checkpoints";
inline constexpr char kMetricKvDurabilityFaults[] = "kv.durability_faults";
inline constexpr char kMetricEpochStalls[] = "portability.epoch.stalls";
// ShardedBuffer SPSC-contract violations: pushes that arrived with an
// unfolded shard id and were folded modulo the shard count (PR 8 made the
// fold loud; see data/sharded_buffer.h).
inline constexpr char kMetricBufferFoldedPushes[] =
    "data.buffer.folded_pushes";
// Fleet serving (PR 8): the tenant-sharded batched-inference service.
// fleet.queue_depth is the post-drain backlog across shard rings;
// fleet.decision_ns is the submit→decision latency per window (the health
// guard's fleet-collapse signal reads both, gated on fleet.windows).
inline constexpr char kMetricFleetTenants[] = "fleet.tenants";
inline constexpr char kMetricFleetQueueDepth[] = "fleet.queue_depth";
inline constexpr char kMetricFleetWindows[] = "fleet.windows";
inline constexpr char kMetricFleetDecisionNs[] = "fleet.decision_ns";
inline constexpr char kMetricFleetShedTotal[] = "fleet.shed_total";
inline constexpr char kMetricFleetAdmitted[] = "fleet.admitted_total";
inline constexpr char kMetricFleetRejected[] = "fleet.rejected_total";
inline constexpr char kMetricFleetRateLimited[] = "fleet.rate_limited";
inline constexpr char kMetricFleetQueueDrops[] = "fleet.queue_drops";
// Telemetry v3 (PR 10): per-stage latency attribution. Every decision
// pipeline is split into the same taxonomy — queue-wait (submit→pop, fleet
// only), coalesce (gather/extract features), infer (model forward), decide
// (post-inference actuation) — so a latency regression names the stage that
// moved instead of a single end-to-end number. fleet.queue_age_us is the
// microsecond twin of the queue-wait stage kept for operator dashboards
// (µs reads better than ns at fleet scale). Tenant-CLASS rollups (hot/warm/
// cold by per-tenant window volume) bound cardinality where per-tenant
// histograms would not.
inline constexpr char kMetricFleetQueueAgeUs[] = "fleet.queue_age_us";
inline constexpr char kMetricFleetStageQueueWaitNs[] =
    "fleet.stage.queue_wait_ns";
inline constexpr char kMetricFleetStageCoalesceNs[] =
    "fleet.stage.coalesce_ns";
inline constexpr char kMetricFleetStageInferNs[] = "fleet.stage.infer_ns";
inline constexpr char kMetricFleetStageDecideNs[] = "fleet.stage.decide_ns";
inline constexpr char kMetricFleetStageQueueWaitHotNs[] =
    "fleet.stage.queue_wait_ns.hot";
inline constexpr char kMetricFleetStageQueueWaitWarmNs[] =
    "fleet.stage.queue_wait_ns.warm";
inline constexpr char kMetricFleetStageQueueWaitColdNs[] =
    "fleet.stage.queue_wait_ns.cold";
inline constexpr char kMetricRaStageCoalesceNs[] =
    "readahead.stage.coalesce_ns";
inline constexpr char kMetricRaStageInferNs[] = "readahead.stage.infer_ns";
inline constexpr char kMetricRaStageDecideNs[] = "readahead.stage.decide_ns";
inline constexpr char kMetricCacheStageCoalesceNs[] =
    "cache.stage.coalesce_ns";
inline constexpr char kMetricCacheStageInferNs[] = "cache.stage.infer_ns";
inline constexpr char kMetricCacheStageDecideNs[] = "cache.stage.decide_ns";
// Synthetic counter row in snapshot(): registrations that spilled into a
// pool's shared overflow slot (never occupies a registry slot itself).
inline constexpr char kMetricRegistryOverflow[] = "observe.registry.overflow";

#if KML_OBSERVE_ENABLED

// --- Metric primitives -------------------------------------------------------

// Monotonic event count. One relaxed fetch_add per increment; the alignas
// keeps each registered counter on its own cache line so two hot counters
// never ping-pong a line between CPUs.
class alignas(kCachelineBytes) Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written value (occupancy, current readahead setting, ...). Plain
// relaxed store; last writer wins.
class alignas(kCachelineBytes) Gauge {
 public:
  void set(std::int64_t value) { v_.store(value, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-point log-scale histogram for latencies (or any u64 magnitude).
//
// Bucketing: values below 2^kSubBits land in exact linear buckets; above
// that, each power-of-two octave is split into 2^kSubBits linear sub-buckets
// (resolution = 1/2^kSubBits of the value, i.e. 25% with kSubBits=2 — the
// right precision/space point for "is p99 microseconds or milliseconds").
// The index is computed from the position of the most significant bit plus
// the next kSubBits bits — integers only, one bit_width and a shift.
class alignas(kCachelineBytes) Histogram {
 public:
  static constexpr unsigned kSubBits = 2;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  // Linear region [0, kSubBuckets) + one sub-bucket group per octave for
  // msb in [kSubBits, 63].
  static constexpr unsigned kNumBuckets =
      kSubBuckets + ((64 - kSubBits - 1) << kSubBits) + kSubBuckets;

  static unsigned bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<unsigned>(v);
    const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
    const unsigned shift = msb - kSubBits;
    const unsigned sub = static_cast<unsigned>((v >> shift) & (kSubBuckets - 1));
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }

  // Smallest value mapping to bucket `idx` (exact inverse of bucket_index).
  static std::uint64_t bucket_lower_bound(unsigned idx) {
    if (idx < kSubBuckets) return idx;
    const unsigned msb = (idx >> kSubBits) + kSubBits - 1;
    const unsigned sub = idx & (kSubBuckets - 1);
    return (1ull << msb) +
           (static_cast<std::uint64_t>(sub) << (msb - kSubBits));
  }

  // Record path: two relaxed RMWs (bucket count + running sum), no FPU.
  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Racy max is acceptable: a lost update under-reports transiently and
    // the CAS loop terminates because max_ only grows.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  // Records in the topmost bucket — values at the format ceiling, where the
  // log-scale resolution has degenerated. A non-zero count means the
  // histogram is saturated and its upper percentiles are lower bounds only.
  std::uint64_t overflow_count() const {
    return buckets_[kNumBuckets - 1].load(std::memory_order_relaxed);
  }

  // Value at percentile `pct`, integer-only: returns the lower bound of the
  // bucket holding the pct-th recorded value. Edge cases are pinned: an
  // empty histogram returns 0, pct=0 returns the smallest recorded bucket
  // (rank clamps to 1, never "before the data"), and pct>100 clamps to 100.
  std::uint64_t percentile(unsigned pct) const;

  // Same integer rank walk over an external bucket-count array laid out
  // like buckets_. The time-series layer merges windowed bucket deltas and
  // calls this, so a windowed percentile is bit-identical to what a
  // histogram holding only that window's records would report.
  static std::uint64_t percentile_from_counts(
      const std::uint64_t counts[kNumBuckets], unsigned pct);

  // Raw bucket count (relaxed read). Out-of-range indices read as 0. The
  // time-series sampler and Prometheus exposition need the full shape, not
  // just the snapshot's summary percentiles.
  std::uint64_t bucket_count(unsigned idx) const {
    if (idx >= kNumBuckets) return 0;
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// --- Registry ---------------------------------------------------------------

// Runtime record toggle (default on). One relaxed load on the hot path.
bool enabled();
void set_enabled(bool on);

// Find-or-create by name. Cold path (spinlock-guarded linear scan); cache
// the reference. When the pool for a kind is exhausted the call returns a
// shared overflow slot and logs once — increments still work, attribution
// degrades, nothing crashes.
Counter& get_counter(const char* name);
Gauge& get_gauge(const char* name);
Histogram& get_histogram(const char* name);

// Lookup without creating; nullptr when absent (C API read path).
Counter* find_counter(const char* name);
Gauge* find_gauge(const char* name);
Histogram* find_histogram(const char* name);

// Zero every registered value (registrations and cached references stay
// valid). Test/bench hygiene between phases.
void reset_all();

// Registrations (across all three pools) that resolved to a shared overflow
// slot because the pool was exhausted. Monotonic; survives reset_all()
// because the exhaustion itself does. Exported by snapshot() as the
// "observe.registry.overflow" counter.
std::uint64_t registry_overflow_count();

// --- Registry iteration (cold read path) ------------------------------------
//
// Index-based walk over the registered slots, in registration order. Slots
// never move and indices never shrink (pools only append), so an index is a
// stable identity for the life of the process — the time-series ring keys
// its per-slot storage on these. counts are acquire-loads of the published
// registration count; names/values at i < count are safe to read lock-free.
std::size_t counter_slots();
const char* counter_slot_name(std::size_t i);     // nullptr out of range
std::uint64_t counter_slot_value(std::size_t i);  // 0 out of range
std::size_t gauge_slots();
const char* gauge_slot_name(std::size_t i);
std::int64_t gauge_slot_value(std::size_t i);
std::size_t histogram_slots();
const char* histogram_slot_name(std::size_t i);
const Histogram* histogram_slot(std::size_t i);  // nullptr out of range

// --- Convenience wrappers for cold call sites -------------------------------
//
// Per-call name lookup; fine for once-per-window work (tuner decisions),
// wrong for per-event work — use the KML_* macros there.
inline void counter_add(const char* name, std::uint64_t delta = 1) {
  if (enabled()) get_counter(name).add(delta);
}
inline void gauge_set(const char* name, std::int64_t value) {
  if (enabled()) get_gauge(name).set(value);
}
inline void hist_record(const char* name, std::uint64_t value) {
  if (enabled()) get_histogram(name).record(value);
}

// --- Trace spans ------------------------------------------------------------

// RAII latency span over the portability clock; records ns into the bound
// histogram at scope exit. A null histogram (observe disabled at runtime)
// skips both clock reads.
class SpanTimer {
 public:
  explicit SpanTimer(Histogram* h) : h_(h), start_(h ? kml_now_ns() : 0) {}
  ~SpanTimer() {
    if (h_ != nullptr) h_->record(kml_now_ns() - start_);
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

#else  // !KML_OBSERVE_ENABLED

// Compiled-out stubs: the read-side API keeps its signatures so consumers
// (health monitor, C API) compile unchanged and see an empty registry.
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset_all() {}
inline std::uint64_t registry_overflow_count() { return 0; }
inline void counter_add(const char*, std::uint64_t = 1) {}
inline void gauge_set(const char*, std::int64_t) {}
inline void hist_record(const char*, std::uint64_t) {}
inline std::size_t counter_slots() { return 0; }
inline const char* counter_slot_name(std::size_t) { return nullptr; }
inline std::uint64_t counter_slot_value(std::size_t) { return 0; }
inline std::size_t gauge_slots() { return 0; }
inline const char* gauge_slot_name(std::size_t) { return nullptr; }
inline std::int64_t gauge_slot_value(std::size_t) { return 0; }
inline std::size_t histogram_slots() { return 0; }
inline const char* histogram_slot_name(std::size_t) { return nullptr; }

#endif  // KML_OBSERVE_ENABLED

// --- Snapshot & export (both build modes) -----------------------------------
//
// Cold path by construction: relaxed reads of every registered atom into
// value structs, then formatting. May allocate; never called from the I/O
// path. With KML_OBSERVE=OFF the snapshot is empty and formatting still
// works (the C API stays link-compatible).

struct CounterSnapshot {
  std::string name;
  std::uint64_t value;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count;
  std::uint64_t sum;
  std::uint64_t max;
  std::uint64_t p50;
  std::uint64_t p90;
  std::uint64_t p99;
  // Records in the topmost bucket (saturation indicator; see
  // Histogram::overflow_count).
  std::uint64_t overflow;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

// Reads the registry plus sampled externals: fault-injection counts per
// armed site (gauge "fault.injected.<site>") and the FPU region count
// (gauge "portability.fpu_regions").
MetricsSnapshot snapshot();

// Aligned human-readable table.
std::string format_table(const MetricsSnapshot& snap);

// Single versioned JSON object:
// {"schema":"kml.metrics.v1","counters":{...},"gauges":{...},
//  "histograms":{...}}.
std::string format_json(const MetricsSnapshot& snap);

// Prometheus text exposition format 0.0.4, reading the live registry (the
// snapshot struct has no raw buckets; scraping needs them). Stable naming:
// "kml_" + registry name with every non-alphanumeric mapped to '_';
// counters gain the "_total" suffix. Histograms emit the cumulative
// _bucket{le="..."} series (only buckets whose cumulative count changed,
// plus the mandatory le="+Inf"), _sum, and _count; `le` thresholds are the
// inclusive upper bound of each log-scale bucket. Cold path; allocates.
// With KML_OBSERVE=OFF returns an empty string.
std::string format_prometheus();

}  // namespace kml::observe

// --- Hot-path instrumentation macros ----------------------------------------
//
// Statement macros. With KML_OBSERVE=OFF they expand to ((void)0); otherwise
// they cache the metric handle in a function-local static (registry lookup
// happens once per site) and pay one relaxed-bool branch + one relaxed RMW.

#define KML_OBS_CAT2(a, b) a##b
#define KML_OBS_CAT(a, b) KML_OBS_CAT2(a, b)

#if KML_OBSERVE_ENABLED

#define KML_COUNTER_ADD(name, delta)                                       \
  do {                                                                     \
    if (::kml::observe::enabled()) {                                       \
      static ::kml::observe::Counter& KML_OBS_CAT(kml_obs_c_, __LINE__) =  \
          ::kml::observe::get_counter(name);                               \
      KML_OBS_CAT(kml_obs_c_, __LINE__).add(delta);                        \
    }                                                                      \
  } while (0)

#define KML_GAUGE_SET(name, value)                                         \
  do {                                                                     \
    if (::kml::observe::enabled()) {                                       \
      static ::kml::observe::Gauge& KML_OBS_CAT(kml_obs_g_, __LINE__) =    \
          ::kml::observe::get_gauge(name);                                 \
      KML_OBS_CAT(kml_obs_g_, __LINE__)                                    \
          .set(static_cast<std::int64_t>(value));                          \
    }                                                                      \
  } while (0)

#define KML_HIST_RECORD(name, value)                                       \
  do {                                                                     \
    if (::kml::observe::enabled()) {                                       \
      static ::kml::observe::Histogram& KML_OBS_CAT(kml_obs_h_,            \
                                                    __LINE__) =            \
          ::kml::observe::get_histogram(name);                             \
      KML_OBS_CAT(kml_obs_h_, __LINE__)                                    \
          .record(static_cast<std::uint64_t>(value));                      \
    }                                                                      \
  } while (0)

// Times the rest of the enclosing scope into histogram `name`. Must appear
// as its own statement at block scope.
#define KML_SPAN_NS(name)                                                  \
  static ::kml::observe::Histogram* KML_OBS_CAT(kml_obs_sh_, __LINE__) =   \
      &::kml::observe::get_histogram(name);                                \
  ::kml::observe::SpanTimer KML_OBS_CAT(kml_obs_sp_, __LINE__)(            \
      ::kml::observe::enabled() ? KML_OBS_CAT(kml_obs_sh_, __LINE__)       \
                                : nullptr)

#else  // !KML_OBSERVE_ENABLED

#define KML_COUNTER_ADD(name, delta) ((void)0)
#define KML_GAUGE_SET(name, value) ((void)0)
#define KML_HIST_RECORD(name, value) ((void)0)
#define KML_SPAN_NS(name) ((void)0)

#endif  // KML_OBSERVE_ENABLED

#define KML_COUNTER_INC(name) KML_COUNTER_ADD(name, 1)
