// timeseries.cpp — fixed-size registry retention ring (see timeseries.h).
#include "observe/timeseries.h"

#if KML_OBSERVE_ENABLED

#include <atomic>
#include <cstring>

namespace kml::observe {

namespace {

// One tick of retained registry state. Counters and histogram buckets are
// stored as deltas against the previous sample (windows then sum exactly);
// gauges keep last-value semantics. Per-slot validity is the slot count at
// sample time: slots registered after a sample simply contribute nothing to
// windows that include it, which is the correct "metric did not exist yet"
// answer. Histogram bucket deltas are u32 — 4 billion records of one bucket
// inside one tick is beyond any rate this process can generate.
struct Sample {
  std::uint64_t now_ns = 0;
  std::uint32_t counters_n = 0;
  std::uint32_t gauges_n = 0;
  std::uint32_t hists_n = 0;
  std::uint64_t counter_delta[kMaxCounters];
  std::int64_t gauge_last[kMaxGauges];
  std::uint32_t hist_delta[kMaxHistograms][Histogram::kNumBuckets];
};

// All retention state. ~2.2 MiB of static storage, zero-alloc by
// construction; guarded by its own spinlock (sampling and windowed reads
// are cold paths — the record-side hot paths never touch this).
struct State {
  Sample ring[kTimeSeriesTicks];
  // Previous cumulative values, for delta computation at the next sample.
  std::uint64_t prev_counter[kMaxCounters];
  std::uint64_t prev_hist[kMaxHistograms][Histogram::kNumBuckets];
  std::uint64_t samples = 0;
  std::uint64_t last_ns = 0;
  // Lock-free mirrors for the poll fast path and cross-thread reads of
  // "how many samples exist" (the SLO progress gate in the health monitor).
  std::atomic<std::uint64_t> samples_pub{0};
  std::atomic<std::uint64_t> last_ns_pub{0};
  std::atomic<std::uint64_t> tick_ns{kTimeSeriesDefaultTickNs};
  std::atomic<bool> enabled{true};
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
};

State& state() {
  static State s;
  return s;
}

struct TsLockGuard {
  explicit TsLockGuard(State& s) : s_(s) {
    while (s_.lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~TsLockGuard() { s_.lock.clear(std::memory_order_release); }
  State& s_;
};

unsigned clamp_window(const State& s, unsigned window_ticks) {
  std::uint64_t avail = s.samples;
  if (avail > kTimeSeriesTicks) avail = kTimeSeriesTicks;
  if (window_ticks < 1) window_ticks = 1;
  if (window_ticks > avail) window_ticks = static_cast<unsigned>(avail);
  return window_ticks;
}

// Sample holding the k-th newest tick (k=0 is the newest). Caller
// guarantees k < min(samples, kTimeSeriesTicks).
const Sample& nth_newest(const State& s, unsigned k) {
  return s.ring[(s.samples - 1 - k) % kTimeSeriesTicks];
}

int find_slot(const char* name, std::size_t n,
              const char* (*slot_name)(std::size_t)) {
  for (std::size_t i = 0; i < n; ++i) {
    if (std::strcmp(slot_name(i), name) == 0) return static_cast<int>(i);
  }
  return -1;
}

// Merge a window's bucket deltas for histogram slot `idx` into `counts`.
// Returns the window's record count.
std::uint64_t merge_window(const State& s, int idx, unsigned w,
                           std::uint64_t counts[Histogram::kNumBuckets]) {
  std::memset(counts, 0, sizeof(std::uint64_t) * Histogram::kNumBuckets);
  std::uint64_t total = 0;
  for (unsigned k = 0; k < w; ++k) {
    const Sample& sm = nth_newest(s, k);
    if (static_cast<std::uint32_t>(idx) >= sm.hists_n) continue;
    for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t d = sm.hist_delta[idx][b];
      counts[b] += d;
      total += d;
    }
  }
  return total;
}

}  // namespace

bool timeseries_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void timeseries_set_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

void timeseries_set_tick_ns(std::uint64_t tick_ns) {
  if (tick_ns == 0) tick_ns = 1;
  state().tick_ns.store(tick_ns, std::memory_order_relaxed);
}

std::uint64_t timeseries_tick_ns() {
  return state().tick_ns.load(std::memory_order_relaxed);
}

void timeseries_sample(std::uint64_t now_ns) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  TsLockGuard guard(s);
  Sample& slot = s.ring[s.samples % kTimeSeriesTicks];
  slot.now_ns = now_ns;
  const std::size_t nc =
      counter_slots() < kMaxCounters ? counter_slots() : kMaxCounters;
  slot.counters_n = static_cast<std::uint32_t>(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    const std::uint64_t cur = counter_slot_value(i);
    // cur < prev means the registry was reset between samples; the
    // re-accumulated value IS the delta then (never a huge wrap).
    slot.counter_delta[i] =
        cur >= s.prev_counter[i] ? cur - s.prev_counter[i] : cur;
    s.prev_counter[i] = cur;
  }
  const std::size_t ng = gauge_slots() < kMaxGauges ? gauge_slots() : kMaxGauges;
  slot.gauges_n = static_cast<std::uint32_t>(ng);
  for (std::size_t i = 0; i < ng; ++i) {
    slot.gauge_last[i] = gauge_slot_value(i);
  }
  const std::size_t nh =
      histogram_slots() < kMaxHistograms ? histogram_slots() : kMaxHistograms;
  slot.hists_n = static_cast<std::uint32_t>(nh);
  for (std::size_t i = 0; i < nh; ++i) {
    const Histogram* h = histogram_slot(i);
    for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t cur = h->bucket_count(b);
      const std::uint64_t d =
          cur >= s.prev_hist[i][b] ? cur - s.prev_hist[i][b] : cur;
      slot.hist_delta[i][b] =
          d > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(d);
      s.prev_hist[i][b] = cur;
    }
  }
  s.samples += 1;
  s.last_ns = now_ns;
  s.last_ns_pub.store(now_ns, std::memory_order_relaxed);
  s.samples_pub.store(s.samples, std::memory_order_release);
}

bool timeseries_poll(std::uint64_t now_ns) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return false;
  // Fast path: not due. Two relaxed loads and a compare — cheap enough for
  // a per-tick maintenance loop. A race between concurrent pollers costs
  // at worst one extra sample; hosts are single-poller by design.
  if (s.samples_pub.load(std::memory_order_relaxed) > 0) {
    const std::uint64_t last = s.last_ns_pub.load(std::memory_order_relaxed);
    if (now_ns < last + s.tick_ns.load(std::memory_order_relaxed)) {
      return false;
    }
  }
  timeseries_sample(now_ns);
  return true;
}

std::uint64_t timeseries_samples() {
  return state().samples_pub.load(std::memory_order_acquire);
}

std::uint64_t timeseries_last_sample_ns() {
  return state().last_ns_pub.load(std::memory_order_relaxed);
}

void timeseries_reset() {
  State& s = state();
  TsLockGuard guard(s);
  std::memset(s.ring, 0, sizeof(s.ring));
  std::memset(s.prev_counter, 0, sizeof(s.prev_counter));
  std::memset(s.prev_hist, 0, sizeof(s.prev_hist));
  s.samples = 0;
  s.last_ns = 0;
  s.last_ns_pub.store(0, std::memory_order_relaxed);
  s.samples_pub.store(0, std::memory_order_release);
}

std::uint64_t timeseries_counter_delta(const char* name,
                                       unsigned window_ticks) {
  State& s = state();
  TsLockGuard guard(s);
  if (s.samples == 0) return 0;
  const int idx = find_slot(name, counter_slots(), counter_slot_name);
  if (idx < 0) return 0;
  const unsigned w = clamp_window(s, window_ticks);
  std::uint64_t total = 0;
  for (unsigned k = 0; k < w; ++k) {
    const Sample& sm = nth_newest(s, k);
    if (static_cast<std::uint32_t>(idx) < sm.counters_n) {
      total += sm.counter_delta[idx];
    }
  }
  return total;
}

std::uint64_t timeseries_counter_rate_per_sec(const char* name,
                                              unsigned window_ticks) {
  State& s = state();
  std::uint64_t delta = 0;
  std::uint64_t span_ns = 0;
  {
    TsLockGuard guard(s);
    if (s.samples == 0) return 0;
    const int idx = find_slot(name, counter_slots(), counter_slot_name);
    if (idx < 0) return 0;
    const unsigned w = clamp_window(s, window_ticks);
    for (unsigned k = 0; k < w; ++k) {
      const Sample& sm = nth_newest(s, k);
      if (static_cast<std::uint32_t>(idx) < sm.counters_n) {
        delta += sm.counter_delta[idx];
      }
    }
    // The window's deltas cover (t[prev], t[newest]] where t[prev] is the
    // sample just before the window — still in the ring only when the
    // window is smaller than the ring. Otherwise the oldest in-window
    // sample stands in (its own delta's span — back to process start — is
    // unknowable), slightly over-reporting the rate.
    const std::uint64_t newest = nth_newest(s, 0).now_ns;
    const std::uint64_t base =
        s.samples > w && w < kTimeSeriesTicks
            ? s.ring[(s.samples - 1 - w) % kTimeSeriesTicks].now_ns
            : nth_newest(s, w - 1).now_ns;
    span_ns = newest > base ? newest - base : 0;
  }
  if (span_ns == 0) return 0;
  // 128-bit intermediate: delta * 1e9 overflows u64 past ~18.4e9 events.
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(delta) * 1'000'000'000u;
  return static_cast<std::uint64_t>(scaled / span_ns);
}

std::int64_t timeseries_gauge_last(const char* name) {
  State& s = state();
  TsLockGuard guard(s);
  if (s.samples == 0) return 0;
  const int idx = find_slot(name, gauge_slots(), gauge_slot_name);
  if (idx < 0) return 0;
  const Sample& sm = nth_newest(s, 0);
  if (static_cast<std::uint32_t>(idx) >= sm.gauges_n) return 0;
  return sm.gauge_last[idx];
}

std::uint64_t timeseries_hist_window_count(const char* name,
                                           unsigned window_ticks) {
  State& s = state();
  TsLockGuard guard(s);
  if (s.samples == 0) return 0;
  const int idx = find_slot(name, histogram_slots(), histogram_slot_name);
  if (idx < 0) return 0;
  const unsigned w = clamp_window(s, window_ticks);
  std::uint64_t counts[Histogram::kNumBuckets];
  return merge_window(s, idx, w, counts);
}

std::uint64_t timeseries_hist_window_percentile(const char* name,
                                                unsigned window_ticks,
                                                unsigned pct) {
  State& s = state();
  TsLockGuard guard(s);
  if (s.samples == 0) return 0;
  const int idx = find_slot(name, histogram_slots(), histogram_slot_name);
  if (idx < 0) return 0;
  const unsigned w = clamp_window(s, window_ticks);
  std::uint64_t counts[Histogram::kNumBuckets];
  merge_window(s, idx, w, counts);
  return Histogram::percentile_from_counts(counts, pct);
}

std::uint64_t timeseries_hist_window_over(const char* name,
                                          unsigned window_ticks,
                                          std::uint64_t threshold) {
  State& s = state();
  TsLockGuard guard(s);
  if (s.samples == 0) return 0;
  const int idx = find_slot(name, histogram_slots(), histogram_slot_name);
  if (idx < 0) return 0;
  const unsigned w = clamp_window(s, window_ticks);
  std::uint64_t counts[Histogram::kNumBuckets];
  merge_window(s, idx, w, counts);
  std::uint64_t over = 0;
  for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
    if (counts[b] != 0 && Histogram::bucket_lower_bound(b) > threshold) {
      over += counts[b];
    }
  }
  return over;
}

}  // namespace kml::observe

#endif  // KML_OBSERVE_ENABLED
