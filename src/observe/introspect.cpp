#include "observe/introspect.h"

#if KML_OBSERVE_ENABLED

#include "observe/metrics.h"

#include <atomic>

namespace kml::observe {

namespace {

struct IntrospectRing {
  StepSample samples[kIntrospectCapacity];
  // Monotonic write cursor, release-published per record so a racing
  // snapshot never reads a slot mid-write as "committed".
  std::atomic<std::uint64_t> head{0};
};

IntrospectRing g_ring;

}  // namespace

void introspect_record(const StepSample& sample) {
  if (!enabled()) return;
  const std::uint64_t h = g_ring.head.load(std::memory_order_relaxed);
  g_ring.samples[h & (kIntrospectCapacity - 1)] = sample;
  g_ring.head.store(h + 1, std::memory_order_release);
}

std::uint64_t introspect_steps() {
  return g_ring.head.load(std::memory_order_acquire);
}

void introspect_reset() {
  g_ring.head.store(0, std::memory_order_release);
}

IntrospectSnapshot introspect_snapshot() {
  IntrospectSnapshot snap;
  const std::uint64_t head = g_ring.head.load(std::memory_order_acquire);
  snap.total_recorded = head;
  const std::uint64_t count =
      head < kIntrospectCapacity ? head : kIntrospectCapacity;
  snap.steps.reserve(count);
  for (std::uint64_t k = head - count; k < head; ++k) {
    snap.steps.push_back(g_ring.samples[k & (kIntrospectCapacity - 1)]);
  }
  return snap;
}

}  // namespace kml::observe

#endif  // KML_OBSERVE_ENABLED
