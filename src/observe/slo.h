// slo.h — per-stage latency SLOs with multiwindow burn-rate evaluation
// (kml::observe telemetry v3; see timeseries.h for the retention it reads).
//
// An objective says "at least `objective_milli`/1000 of a stage's records
// must land at or under `threshold_ns`". Burn rate is how fast the error
// budget (1000 - objective_milli) is being spent, as an integer
// milli-ratio: burn 1000 = spending exactly at budget, 14400 = the classic
// "2% of a 30-day budget in one hour" page-now rate. The evaluator uses the
// standard multiwindow AND: a short window (reacts fast, forgets fast) and
// a long window (confirms it is not a blip) must BOTH exceed their trip
// rates, and both must hold enough records to mean anything. All integer
// math — this layer sits under the same no-FPU contract as the registry.
//
// Consumers: the health guard's signal (k) polls slo_evaluate over every
// registered objective and degrades when enough burn simultaneously
// (emitting kSloBurn flight events first, preserving the causal chain);
// tools/tests read SloStatus directly. Registration is cold and bounded
// (kMaxSloObjectives, fixed storage, name copied in). With KML_OBSERVE=OFF
// everything is an inline no-op stub.
#pragma once

#include <cstdint>

#include "observe/metrics.h"

namespace kml::observe {

inline constexpr std::size_t kMaxSloObjectives = 8;

// One latency objective over a registry histogram. Defaults encode a
// p99.9-style objective with the SRE-book paging windows scaled to our
// 32-tick ring: fast = 4 ticks, slow = the whole ring.
struct SloObjective {
  // Registry histogram the objective watches (copied on registration).
  const char* hist_name = nullptr;
  // A record is "bad" when its bucket lies strictly above this (see
  // timeseries_hist_window_over for the bucket-resolution contract).
  std::uint64_t threshold_ns = 0;
  // Good-fraction target in milli (999 = 99.9%). Clamped to [0, 999] so the
  // error budget is always >= 1 milli and burn division is well-defined.
  std::uint32_t objective_milli = 999;
  // Burn windows, in time-series ticks (clamped to the ring).
  std::uint32_t fast_window_ticks = 4;
  std::uint32_t slow_window_ticks = 32;
  // Trip rates, milli: burn > trip in BOTH windows => burning. 14400 is the
  // SRE-book fast-page rate; 6000 its slow-window companion.
  std::uint64_t fast_burn_trip_milli = 14'400;
  std::uint64_t slow_burn_trip_milli = 6'000;
  // Minimum records per window before the verdict is trusted — burn math on
  // three records is noise, not signal.
  std::uint64_t min_window_records = 64;
};

// Evaluation result. `valid` means both windows met min_window_records;
// `burning` implies valid.
struct SloStatus {
  bool valid = false;
  bool burning = false;
  std::uint64_t fast_burn_milli = 0;
  std::uint64_t slow_burn_milli = 0;
  std::uint64_t fast_total = 0;
  std::uint64_t fast_bad = 0;
  std::uint64_t slow_total = 0;
  std::uint64_t slow_bad = 0;
};

#if KML_OBSERVE_ENABLED

// Register an objective; returns its index, or -1 when the table is full or
// hist_name is null/oversized. Objectives are process-lifetime (no
// unregister) — slo_reset() empties the table for tests.
int slo_register(const SloObjective& objective);

std::size_t slo_count();

// Registered objective by index (nullptr out of range). The returned
// hist_name points at the table's own copy.
const SloObjective* slo_objective(std::size_t idx);

// Evaluate objective `idx` over the time-series ring as of now. Windows
// clamp to the available samples; an empty ring or out-of-range index
// returns an all-zero (invalid) status.
SloStatus slo_evaluate(std::size_t idx);

// Empty the objective table (tests/benches).
void slo_reset();

#else  // !KML_OBSERVE_ENABLED

inline int slo_register(const SloObjective&) { return -1; }
inline std::size_t slo_count() { return 0; }
inline const SloObjective* slo_objective(std::size_t) { return nullptr; }
inline SloStatus slo_evaluate(std::size_t) { return SloStatus{}; }
inline void slo_reset() {}

#endif  // KML_OBSERVE_ENABLED

}  // namespace kml::observe
