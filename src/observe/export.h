// export.h — serialize observe state for external tooling.
//
// Two consumers, two formats:
//   * Chrome `trace_event` JSON (Perfetto / chrome://tracing): the flight
//     recorder's binary events become instant events, and begin/end pairs
//     (trainer batches, training epochs) are stitched into duration ("X")
//     spans per thread — any bench/test/sim run becomes an openable
//     timeline.
//   * Versioned JSON snapshots ("schema" discriminator, kml.*.v1) for the
//     metrics registry and the introspection ring, so downstream parsers
//     can evolve without sniffing.
//
// Formatting is integer-only (timestamps render as micros with a .3f
// fractional part via integer division — no FPU), works in both build
// modes (empty snapshots produce valid, empty documents), and is cold by
// construction: it allocates strings and must never run on the I/O path.
#pragma once

#include "observe/flight_recorder.h"
#include "observe/introspect.h"

#include <string>

namespace kml::observe {

// Chrome trace_event JSON object: {"displayTimeUnit":"ns",
// "traceEvents":[...]}. Every event carries pid 1 and the recording
// thread's id as tid; unpaired begin/end events degrade to instants.
std::string format_chrome_trace(const FlightSnapshot& snap);

// {"schema":"kml.introspect.v1","steps":[{...}]}; norms/losses stay in
// milli-units (field names carry the _milli suffix).
std::string format_introspect_json(const IntrospectSnapshot& snap);

}  // namespace kml::observe
