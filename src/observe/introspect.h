// introspect.h — per-training-step model introspection ring.
//
// "Is the model drifting because the input distribution moved?" and "which
// layer exploded?" need per-step signals, not aggregates. This ring keeps
// the last kIntrospectCapacity training steps: loss, per-layer gradient
// L2-norm and weight-delta norm, all as scaled integers (milli-units —
// value x 1000, truncated toward zero) so this layer stays FPU-free like
// the rest of kml::observe. The producers (runtime::Engine, nn::Network)
// live above the FPU line and do the double -> milli conversion from
// buffers they already materialized; nothing here allocates or locks on the
// record path.
//
// Single-writer: exactly one trainer thread records steps (the engine's
// train_batch contract); readers copy the ring out cold. With
// KML_OBSERVE=OFF everything stubs to no-ops with zero statics.
#pragma once

#include <cstdint>

#ifndef KML_OBSERVE_ENABLED
#define KML_OBSERVE_ENABLED 1
#endif

#include <vector>

namespace kml::observe {

// Ring geometry. Layers beyond kIntrospectLayers fold their norms into the
// last slot (a 3-linear-layer readahead model fits with room to spare).
inline constexpr unsigned kIntrospectCapacity = 256;  // power of two
inline constexpr unsigned kIntrospectLayers = 8;

// One training step. Norms are L2, in milli-units; loss is milli-units,
// two's complement (losses are non-negative in practice but the format
// does not assume it).
struct StepSample {
  std::uint64_t step = 0;      // engine train-iteration number (1-based)
  std::uint64_t ts_ns = 0;
  std::int64_t loss_milli = 0;
  std::uint32_t num_layers = 0;  // trainable layers reported (clamped)
  std::uint32_t valid = 0;       // 0 = invalid step (non-finite loss/weights)
  std::int64_t grad_norm_milli[kIntrospectLayers] = {};
  std::int64_t wdelta_norm_milli[kIntrospectLayers] = {};
};

struct IntrospectSnapshot {
  std::vector<StepSample> steps;  // oldest -> newest
  std::uint64_t total_recorded = 0;
};

#if KML_OBSERVE_ENABLED

// Record one step (single writer: the training thread). Copies the sample
// into the ring; no allocation, no locks, no FPU.
void introspect_record(const StepSample& sample);

// Steps recorded since the last reset (monotonic; ring holds the tail).
std::uint64_t introspect_steps();

void introspect_reset();

// Copy-out, oldest first. Cold path; may allocate.
IntrospectSnapshot introspect_snapshot();

#else  // !KML_OBSERVE_ENABLED

inline void introspect_record(const StepSample&) {}
inline std::uint64_t introspect_steps() { return 0; }
inline void introspect_reset() {}
inline IntrospectSnapshot introspect_snapshot() {
  return IntrospectSnapshot{};
}

#endif  // KML_OBSERVE_ENABLED

}  // namespace kml::observe
