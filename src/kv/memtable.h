// memtable.h — MiniKV's in-memory write buffer.
//
// Ordered map standing in for RocksDB's skiplist memtable: puts are absorbed
// in memory (after a WAL append) and flushed to a SortedRun when the buffer
// reaches its size limit.
//
// Two structures, one truth:
//  * entries_ — std::map, writer-thread only. Ordered iteration for flush
//    and merged scans (sorted_keys / lower_bound / begin / end).
//  * index_   — fixed-capacity open-addressing hash of atomic slots, the
//    lock-free read path. contains() probes it with acquire loads, so pool
//    workers running MiniKV::get_concurrent() can query a memtable that the
//    writer is still appending to. Slots hold key+1 (0 = empty) and are
//    published with release stores; a concurrent reader sees either the key
//    or empty — never a torn slot.
//
// The index never shrinks and clear() is NOT safe under concurrent readers;
// MiniKV never clears a shared memtable — flush retires the whole Memtable
// through the epoch domain and starts a fresh one.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace kml::kv {

class Memtable {
 public:
  // `capacity_hint` is the expected entry count at flush time; the atomic
  // index is sized to stay below 50% load at that point. The default suits
  // unit tests; MiniKV passes memtable_limit_bytes / entry_bytes.
  explicit Memtable(std::uint32_t entry_bytes,
                    std::uint64_t capacity_hint = 1024);

  // Insert or overwrite a key (writer thread only). Returns true if the
  // key was new. `seq` is the write's sequence number; callers that do not
  // track sequences (unit tests) may omit it and get a local counter.
  bool put(std::uint64_t key, std::uint64_t seq);
  bool put(std::uint64_t key) { return put(key, ++local_seq_); }

  // Lock-free membership probe; safe from any thread concurrently with the
  // writer's put().
  bool contains(std::uint64_t key) const;

  // True when the hash index is at its load-factor ceiling; the owner must
  // flush before the next put. (With default sizing the byte limit always
  // triggers first; this is the belt for degenerate configs.)
  bool index_full() const { return entries_.size() >= index_limit_; }

  std::uint64_t entry_count() const { return entries_.size(); }
  std::uint64_t approximate_bytes() const {
    return entries_.size() * entry_bytes_;
  }
  bool empty() const { return entries_.empty(); }

  // Highest sequence number inserted (0 if empty / untracked).
  std::uint64_t max_seq() const { return max_seq_; }

  // Sorted key list for flushing; does not clear.
  std::vector<std::uint64_t> sorted_keys() const;

  // Writer-thread only, and only while no concurrent reader can reach this
  // memtable (unit-test convenience; MiniKV retires instead of clearing).
  void clear();

  // Iterator support (merged scans; writer thread only).
  using ConstIter = std::map<std::uint64_t, std::uint64_t>::const_iterator;
  ConstIter begin() const { return entries_.begin(); }
  ConstIter end() const { return entries_.end(); }
  ConstIter lower_bound(std::uint64_t key) const {
    return entries_.lower_bound(key);
  }

 private:
  std::uint32_t entry_bytes_;
  std::map<std::uint64_t, std::uint64_t> entries_;  // key -> write seqno
  std::uint64_t local_seq_ = 0;  // for the seq-less put() overload
  std::uint64_t max_seq_ = 0;

  // Open-addressing index: slot = key + 1, 0 = empty. Power-of-two size.
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::uint64_t slot_mask_ = 0;
  std::uint64_t index_limit_ = 0;  // max entries before index_full()
};

}  // namespace kml::kv
