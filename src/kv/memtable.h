// memtable.h — MiniKV's in-memory write buffer.
//
// Ordered map standing in for RocksDB's skiplist memtable: puts are absorbed
// in memory (after a WAL append) and flushed to a SortedRun when the buffer
// reaches its size limit.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace kml::kv {

class Memtable {
 public:
  explicit Memtable(std::uint32_t entry_bytes) : entry_bytes_(entry_bytes) {}

  // Insert or overwrite a key. Returns true if the key was new.
  bool put(std::uint64_t key);

  bool contains(std::uint64_t key) const {
    return entries_.find(key) != entries_.end();
  }

  std::uint64_t entry_count() const { return entries_.size(); }
  std::uint64_t approximate_bytes() const {
    return entries_.size() * entry_bytes_;
  }
  bool empty() const { return entries_.empty(); }

  // Sorted key list for flushing; does not clear.
  std::vector<std::uint64_t> sorted_keys() const;

  void clear() { entries_.clear(); }

  // Iterator support (merged scans).
  using ConstIter = std::map<std::uint64_t, std::uint64_t>::const_iterator;
  ConstIter begin() const { return entries_.begin(); }
  ConstIter end() const { return entries_.end(); }
  ConstIter lower_bound(std::uint64_t key) const {
    return entries_.lower_bound(key);
  }

 private:
  std::uint32_t entry_bytes_;
  std::map<std::uint64_t, std::uint64_t> entries_;  // key -> write seqno
  std::uint64_t seq_ = 0;
};

}  // namespace kml::kv
