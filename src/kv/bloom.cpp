#include "kv/bloom.h"

namespace kml::kv {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(std::uint64_t expected_keys,
                         std::uint32_t bits_per_key) {
  bits_ = expected_keys * bits_per_key;
  if (bits_ < 64) bits_ = 64;
  // k = ln2 * bits/keys, clamped to [1, 30]; 0.69 approximation avoids
  // needing a float here at all.
  std::uint32_t k = static_cast<std::uint32_t>(bits_per_key * 69 / 100);
  if (k < 1) k = 1;
  if (k > 30) k = 30;
  k_ = k;
  words_.assign((bits_ + 63) / 64, 0);
}

void BloomFilter::add(std::uint64_t key) {
  const std::uint64_t h1 = mix(key);
  const std::uint64_t h2 = mix(h1 ^ 0xdeadbeefcafef00dULL) | 1;
  std::uint64_t h = h1;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t bit = h % bits_;
    words_[bit / 64] |= 1ULL << (bit % 64);
    h += h2;
  }
}

bool BloomFilter::may_contain(std::uint64_t key) const {
  const std::uint64_t h1 = mix(key);
  const std::uint64_t h2 = mix(h1 ^ 0xdeadbeefcafef00dULL) | 1;
  std::uint64_t h = h1;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t bit = h % bits_;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
    h += h2;
  }
  return true;
}

}  // namespace kml::kv
