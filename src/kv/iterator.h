// iterator.h — merged iterator over MiniKV's memtable and runs.
//
// Block-structured like a RocksDB table iterator: advancing into a new data
// block loads the *whole block* through the page cache (pages in ascending
// order), then serves entries from memory. This holds for reverse iteration
// too — blocks are visited in descending order but each block's pages are
// still read forward, which is exactly the page-access pattern the paper's
// readreverse workload presents to the kernel readahead heuristic.
#pragma once

#include "kv/minikv.h"

namespace kml::kv {

class Iterator {
 public:
  explicit Iterator(MiniKV& db);

  void seek_to_first();
  void seek_to_last();
  void seek(std::uint64_t key);  // first entry with key >= `key`

  bool valid() const { return valid_; }
  std::uint64_t key() const { return current_key_; }

  void next();
  void prev();

  // An iterator captures MiniKV::generation() at construction; any
  // mutation (put/flush/compact/checkpoint) moves it. The first operation
  // on a stale iterator trips an assert in debug builds and, in all
  // builds, parks the iterator here permanently: valid() turns false and
  // every further call is a no-op. Loud beats silently reading runs that
  // compaction may have retired.
  bool invalidated() const { return invalidated_; }

 private:
  struct Source {
    const Table* table;     // nullptr for the memtable snapshot
    std::uint64_t idx = 0;  // current entry index within the source
    bool exhausted = true;
    // Last block actually loaded for this source (dedupes block reads).
    std::uint64_t loaded_block = UINT64_MAX;
  };

  bool ensure_current();  // generation check; false = invalidated
  std::uint64_t source_count(const Source& s) const;
  std::uint64_t source_key_at(const Source& s, std::uint64_t idx) const;
  std::uint64_t source_lower_bound(const Source& s, std::uint64_t key) const;
  void load_block(Source& s);
  void seek_forward(std::uint64_t target);
  void seek_backward(std::uint64_t target);
  void settle_forward();   // pick min key across sources, dedupe
  void settle_backward();  // pick max key across sources, dedupe

  MiniKV& db_;
  std::uint64_t generation_;             // db generation at construction
  std::vector<std::uint64_t> snapshot_;  // memtable keys at construction
  // Keeps the captured runs alive even if the db compacts them away while
  // this iterator is stale — the generation check makes staleness loud,
  // the pin makes even a missed check memory-safe.
  std::vector<std::shared_ptr<Table>> pinned_runs_;
  std::vector<Source> sources_;  // [0] = memtable, then runs newest->oldest
  bool valid_ = false;
  bool forward_ = true;
  bool invalidated_ = false;
  std::uint64_t current_key_ = 0;
};

}  // namespace kml::kv
