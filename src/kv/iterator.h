// iterator.h — merged iterator over MiniKV's memtable and runs.
//
// Block-structured like a RocksDB table iterator: advancing into a new data
// block loads the *whole block* through the page cache (pages in ascending
// order), then serves entries from memory. This holds for reverse iteration
// too — blocks are visited in descending order but each block's pages are
// still read forward, which is exactly the page-access pattern the paper's
// readreverse workload presents to the kernel readahead heuristic.
#pragma once

#include "kv/minikv.h"

namespace kml::kv {

class Iterator {
 public:
  explicit Iterator(MiniKV& db);

  void seek_to_first();
  void seek_to_last();
  void seek(std::uint64_t key);  // first entry with key >= `key`

  bool valid() const { return valid_; }
  std::uint64_t key() const { return current_key_; }

  void next();
  void prev();

 private:
  struct Source {
    const Table* table;     // nullptr for the memtable snapshot
    std::uint64_t idx = 0;  // current entry index within the source
    bool exhausted = true;
    // Last block actually loaded for this source (dedupes block reads).
    std::uint64_t loaded_block = UINT64_MAX;
  };

  std::uint64_t source_count(const Source& s) const;
  std::uint64_t source_key_at(const Source& s, std::uint64_t idx) const;
  std::uint64_t source_lower_bound(const Source& s, std::uint64_t key) const;
  void load_block(Source& s);
  void seek_forward(std::uint64_t target);
  void seek_backward(std::uint64_t target);
  void settle_forward();   // pick min key across sources, dedupe
  void settle_backward();  // pick max key across sources, dedupe

  MiniKV& db_;
  std::vector<std::uint64_t> snapshot_;  // memtable keys at construction
  std::vector<Source> sources_;  // [0] = memtable, then runs newest->oldest
  bool valid_ = false;
  bool forward_ = true;
  std::uint64_t current_key_ = 0;
};

}  // namespace kml::kv
