// table.h — sorted runs: the on-"disk" tables of MiniKV.
//
// Two kinds, both backed by a simulated file read through the page cache:
//  * the dense base run — produced by the initial bulk load, covering the
//    whole key space [0, n) with arithmetic key->block mapping (no index
//    I/O needed, like a fully-cached table index in RocksDB), and
//  * overlay sorted runs — memtable flushes, with an explicit sorted key
//    list (the in-memory index) plus a Bloom filter gating block reads.
//
// Entries are fixed-size; a data block spans `block_pages` pages and a
// lookup or scan step reads its whole block through the page cache — this
// intra-block page sequentiality is what the kernel readahead heuristic
// reacts to (see DESIGN.md §2).
#pragma once

#include "kv/bloom.h"
#include "sim/stack.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace kml::kv {

struct TableGeometry {
  std::uint32_t entry_bytes = 128;
  std::uint32_t block_pages = 16;  // 64 KiB data blocks

  std::uint64_t entries_per_block() const {
    return block_pages * sim::kPageSize / entry_bytes;
  }
  std::uint64_t pages_for(std::uint64_t entries) const {
    const std::uint64_t blocks =
        (entries + entries_per_block() - 1) / entries_per_block();
    return blocks * block_pages;
  }
};

// Interface shared by base and overlay runs.
class Table {
 public:
  virtual ~Table() = default;

  // Number of entries in the run.
  virtual std::uint64_t entry_count() const = 0;

  // Entry index of `key` within the run, if present. Pure in-memory index
  // consultation; charges no I/O.
  virtual std::optional<std::uint64_t> find(std::uint64_t key) const = 0;

  // Bloom/range pre-check. May return true for absent keys (false
  // positives cost an index-block read, charged by MiniKV).
  virtual bool may_contain(std::uint64_t key) const = 0;

  // Key stored at entry index `idx` (for merging iterators).
  virtual std::uint64_t key_at(std::uint64_t idx) const = 0;

  // Smallest entry index whose key is >= `key` (entry_count() if none).
  virtual std::uint64_t lower_bound(std::uint64_t key) const = 0;

  // Read the data block containing entry `idx` through the page cache.
  void read_block_for(sim::StorageStack& stack, std::uint64_t idx) const;

  std::uint64_t inode() const { return inode_; }
  const TableGeometry& geometry() const { return geom_; }

 protected:
  Table(sim::StorageStack& stack, const TableGeometry& geom,
        std::uint64_t entries);

  TableGeometry geom_;
  std::uint64_t inode_;
};

// Dense bulk-loaded base run over keys [0, n).
class DenseRun final : public Table {
 public:
  DenseRun(sim::StorageStack& stack, const TableGeometry& geom,
           std::uint64_t num_keys);

  std::uint64_t entry_count() const override { return num_keys_; }
  std::optional<std::uint64_t> find(std::uint64_t key) const override;
  bool may_contain(std::uint64_t key) const override {
    return key < num_keys_;
  }
  std::uint64_t key_at(std::uint64_t idx) const override { return idx; }
  std::uint64_t lower_bound(std::uint64_t key) const override {
    return key < num_keys_ ? key : num_keys_;
  }

 private:
  std::uint64_t num_keys_;
};

// Overlay run flushed from the memtable: explicit sorted keys + Bloom.
class SortedRun final : public Table {
 public:
  // `keys` must be sorted ascending and unique. With `charge_flush` (the
  // default) the constructor charges the sequential device write of the run
  // (the flush) and dirties the pages through the cache so writeback
  // tracepoints fire. Recovery passes false: a run rebuilt from a durable
  // run file was already written in a previous life and costs no new
  // virtual-time I/O.
  SortedRun(sim::StorageStack& stack, const TableGeometry& geom,
            std::vector<std::uint64_t> keys, std::uint32_t bloom_bits_per_key,
            bool charge_flush = true);

  std::uint64_t entry_count() const override { return keys_.size(); }
  std::optional<std::uint64_t> find(std::uint64_t key) const override;
  bool may_contain(std::uint64_t key) const override;
  std::uint64_t key_at(std::uint64_t idx) const override {
    return keys_[idx];
  }
  std::uint64_t lower_bound(std::uint64_t key) const override;

 private:
  std::vector<std::uint64_t> keys_;
  BloomFilter bloom_;
};

}  // namespace kml::kv
