// wal.h — MiniKV's real write-ahead log (crash consistency, DESIGN.md §12).
//
// Before this layer existed the WAL was pure page-dirtying accounting: the
// simulator charged the I/O cost of a group commit but no byte ever hit
// stable storage, so there was nothing to replay after a crash. This file
// is the byte-level half: records flow through the kml_f* portability seams
// into an append-only file, group-committed in CRC-framed batches, and a
// recovery scan replays exactly the acknowledged prefix.
//
// Format (little-endian):
//   file header:  u32 magic 'KVWL'   u32 version
//   batch:        u32 batch magic 'KVWB'   u32 payload_bytes
//                 u32 crc32(payload)       payload = (u64 key, u64 seq)*
//
// Ack semantics: a batch is the group-commit unit. WalWriter::commit()
// writes the whole frame and flushes; only then are the batch's sequence
// numbers acknowledged durable. A torn commit (crash or injected
// kWalAppend fault mid-write) leaves a frame whose CRC cannot verify, so
// replay drops the *entire* batch — un-acknowledged writes can never be
// resurrected piecemeal, which is the invariant the kill-and-recover
// harness asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace kml {
struct KmlFile;  // portability/file.h
}

namespace kml::kv {

inline constexpr std::uint32_t kWalMagic = 0x4c575648;   // "HVWL" -> 'KVWL'
inline constexpr std::uint32_t kWalBatchMagic = 0x42575648;
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalRecordBytes = 16;  // u64 key + u64 seq
// Load-time cap on a single batch's payload (a corrupt length field cannot
// drive a giant allocation or a runaway scan).
inline constexpr std::uint32_t kWalMaxBatchBytes = 16u << 20;

// Append-side: buffers records in memory until commit(). The owning MiniKV
// decides the group boundary (wal_buffer_bytes) and treats a false return
// from commit() as a crash of the store.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Open (or create) the log. `truncate` starts a fresh file and writes the
  // file header; append mode continues an existing log whose header is
  // already on disk. Returns false on open failure.
  bool open(const std::string& path, bool truncate);
  bool is_open() const { return file_ != nullptr; }

  // Buffer one record for the next commit. Cheap; no I/O.
  void append(std::uint64_t key, std::uint64_t seq);

  // Group commit: frame the buffered records into one CRC'd batch, write it
  // through the kml_f* seams, and flush. Clears the buffer on success.
  // Returns false on an I/O error or an injected kWalAppend fault — in
  // both cases a torn frame may be on disk and the caller must treat the
  // store as crashed. Committing an empty buffer is a successful no-op.
  bool commit();

  // Simulate a power cut: drop buffered records and close the handle
  // without flushing anything further.
  void abandon();

  // Close without committing (callers commit first on a clean shutdown).
  void close();

  std::uint64_t buffered_records() const { return buffered_records_; }
  std::uint64_t buffered_bytes() const {
    return buffered_records_ * kWalRecordBytes;
  }

 private:
  kml::KmlFile* file_ = nullptr;
  std::vector<std::uint8_t> buf_;  // payload bytes of the pending batch
  std::uint64_t buffered_records_ = 0;
};

// Replay-side summary.
struct WalReplayResult {
  bool opened = false;      // a log file existed and had a valid header
  bool torn_tail = false;   // scan stopped at a frame that failed to verify
  std::uint64_t batches = 0;
  std::uint64_t records = 0;   // records passed to `apply` (seq >= min_seq)
  std::uint64_t last_seq = 0;  // highest sequence seen in verified batches
};

// Scan the log at `path`, verify every frame, and call `apply(key, seq)`
// for each record with seq >= min_seq, in log order. Stops cleanly at the
// first unverifiable frame (torn tail) or any non-monotonic sequence —
// everything before the stop point was acknowledged durable, everything
// after it never was.
WalReplayResult wal_replay(
    const std::string& path, std::uint64_t min_seq,
    const std::function<void(std::uint64_t key, std::uint64_t seq)>& apply);

}  // namespace kml::kv
