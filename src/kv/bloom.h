// bloom.h — Bloom filter for MiniKV sorted runs.
//
// RocksDB consults per-table Bloom filters before touching a data block;
// MiniKV does the same so that point lookups in a multi-run database charge
// I/O only for runs that (probably) contain the key. Double hashing
// (Kirsch–Mitzenmacher) over a splitmix64 base hash, k derived from
// bits-per-key as in the classic construction.
#pragma once

#include <cstdint>
#include <vector>

namespace kml::kv {

class BloomFilter {
 public:
  // Sized for `expected_keys` at `bits_per_key` (RocksDB default: 10 bits
  // -> ~1% false-positive rate).
  BloomFilter(std::uint64_t expected_keys, std::uint32_t bits_per_key);

  void add(std::uint64_t key);
  bool may_contain(std::uint64_t key) const;

  std::uint64_t bit_count() const { return bits_; }
  std::uint32_t hash_count() const { return k_; }
  std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::uint64_t bits_;
  std::uint32_t k_;
  std::vector<std::uint64_t> words_;
};

}  // namespace kml::kv
