#include "kv/memtable.h"

namespace kml::kv {
namespace {

// splitmix64 finalizer — full-avalanche mix so sequential keys (the common
// benchmark pattern) spread across the index instead of clustering.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t pow2_at_least(std::uint64_t n) {
  std::uint64_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Memtable::Memtable(std::uint32_t entry_bytes, std::uint64_t capacity_hint)
    : entry_bytes_(entry_bytes) {
  const std::uint64_t cap =
      pow2_at_least((capacity_hint < 32 ? 32 : capacity_hint) * 2);
  slots_.reset(new std::atomic<std::uint64_t>[cap]());
  slot_mask_ = cap - 1;
  index_limit_ = cap / 2;
}

bool Memtable::put(std::uint64_t key, std::uint64_t seq) {
  const auto [it, inserted] = entries_.insert_or_assign(key, seq);
  (void)it;
  if (seq > max_seq_) max_seq_ = seq;
  if (inserted) {
    // Publish into the lock-free index. Linear probe; the writer is the
    // only mutator, so an empty slot it observes stays empty until its own
    // release store below fills it.
    const std::uint64_t tagged = key + 1;
    std::uint64_t i = mix64(key) & slot_mask_;
    for (;;) {
      const std::uint64_t cur = slots_[i].load(std::memory_order_relaxed);
      if (cur == tagged) break;  // re-insert after clear() raced? writer-only
      if (cur == 0) {
        slots_[i].store(tagged, std::memory_order_release);
        break;
      }
      i = (i + 1) & slot_mask_;
    }
  }
  return inserted;
}

bool Memtable::contains(std::uint64_t key) const {
  const std::uint64_t tagged = key + 1;
  std::uint64_t i = mix64(key) & slot_mask_;
  // index_limit_ bounds occupancy at 50%, so an empty slot always stops the
  // probe; the full-table guard is pure paranoia.
  for (std::uint64_t probes = 0; probes <= slot_mask_; ++probes) {
    const std::uint64_t cur = slots_[i].load(std::memory_order_acquire);
    if (cur == tagged) return true;
    if (cur == 0) return false;
    i = (i + 1) & slot_mask_;
  }
  return false;
}

std::vector<std::uint64_t> Memtable::sorted_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, seq] : entries_) keys.push_back(key);
  return keys;  // std::map iterates in key order
}

void Memtable::clear() {
  entries_.clear();
  max_seq_ = 0;
  for (std::uint64_t i = 0; i <= slot_mask_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace kml::kv
