#include "kv/memtable.h"

namespace kml::kv {

bool Memtable::put(std::uint64_t key) {
  const auto [it, inserted] = entries_.insert_or_assign(key, seq_++);
  (void)it;
  return inserted;
}

std::vector<std::uint64_t> Memtable::sorted_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, seq] : entries_) keys.push_back(key);
  return keys;  // std::map iterates in key order
}

}  // namespace kml::kv
