#include "kv/manifest.h"

#include "portability/checksum.h"
#include "portability/fault.h"
#include "portability/file.h"
#include "portability/log.h"

#include <cstring>

namespace kml::kv {
namespace {

// Little-endian image builders (shared shape with the model serializer;
// small enough that a dependency on nn/ would cost more than it saves).
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

struct Reader {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  std::uint32_t u32() {
    if (left < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24;
    p += 4;
    left -= 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }
};

// Slurp a whole file; empty vector on failure. Size-capped: both formats
// here are small (manifest) or bounded by kMaxRunEntries (runs).
bool slurp(const std::string& path, std::vector<std::uint8_t>* out) {
  const std::int64_t size = kml_fsize(path.c_str());
  if (size < 0) return false;
  constexpr std::int64_t kCap =
      static_cast<std::int64_t>(kMaxRunEntries * 8 + 4096);
  if (size > kCap) return false;
  KmlFile* f = kml_fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  out->resize(static_cast<std::size_t>(size));
  const std::int64_t got =
      size == 0 ? 0 : kml_fread(f, out->data(), out->size());
  kml_fclose(f);
  return got == size;
}

// Write image + CRC footer to `path` in one shot. `fault` (if not
// kSiteCount) tears the write: half the bytes land, then failure.
bool write_image(const std::string& path,
                 const std::vector<std::uint8_t>& image, FaultSite fault) {
  std::vector<std::uint8_t> footed = image;
  put_u32(footed, kml_crc32(image.data(), image.size()));

  KmlFile* f = kml_fopen(path.c_str(), "w");
  if (f == nullptr) {
    KML_ERROR("kv: cannot create %s", path.c_str());
    return false;
  }
  if (fault != FaultSite::kSiteCount && kml_fault_should_fail(fault)) {
    (void)kml_fwrite(f, footed.data(), footed.size() / 2);
    (void)kml_fflush(f);
    kml_fclose(f);
    return false;
  }
  const bool ok = kml_fwrite(f, footed.data(), footed.size()) ==
                      static_cast<std::int64_t>(footed.size()) &&
                  kml_fflush(f);
  kml_fclose(f);
  if (!ok) KML_ERROR("kv: write failed for %s", path.c_str());
  return ok;
}

// Slurp + CRC-verify; on success strips the footer and leaves the payload.
bool read_image(const std::string& path, std::vector<std::uint8_t>* image) {
  if (!slurp(path, image)) return false;
  if (image->size() < 4) return false;
  const std::size_t payload = image->size() - 4;
  const std::uint32_t stored = static_cast<std::uint32_t>((*image)[payload]) |
                               static_cast<std::uint32_t>((*image)[payload + 1])
                                   << 8 |
                               static_cast<std::uint32_t>((*image)[payload + 2])
                                   << 16 |
                               static_cast<std::uint32_t>((*image)[payload + 3])
                                   << 24;
  if (kml_crc32(image->data(), payload) != stored) return false;
  image->resize(payload);
  return true;
}

}  // namespace

std::string manifest_path(const std::string& dir) { return dir + "/MANIFEST"; }

std::string run_path(const std::string& dir, std::uint64_t file_id) {
  return dir + "/run_" + std::to_string(file_id) + ".kvr";
}

std::string wal_path(const std::string& dir, std::uint64_t file_id) {
  return dir + "/wal_" + std::to_string(file_id) + ".log";
}

ManifestSave save_manifest(const std::string& dir, const ManifestData& m) {
  std::vector<std::uint8_t> image;
  put_u32(image, kManifestMagic);
  put_u32(image, kManifestVersion);
  put_u64(image, m.num_base_keys);
  put_u64(image, m.next_seq);
  put_u64(image, m.next_file_id);
  put_u64(image, m.checkpoint_id);
  put_u64(image, m.wal_file_id);
  put_u64(image, m.wal_start_seq);
  put_u64(image, m.runs.size());
  for (const RunRef& r : m.runs) {
    put_u64(image, r.file_id);
    put_u64(image, r.entry_count);
  }

  const std::string final_path = manifest_path(dir);
  const std::string tmp_path = final_path + ".tmp";
  if (!write_image(tmp_path, image, FaultSite::kCheckpointWrite)) {
    (void)kml_fremove(tmp_path.c_str());
    return ManifestSave::kWriteFailed;
  }
  if (kml_fault_should_fail(FaultSite::kManifestRename) ||
      !kml_frename(tmp_path.c_str(), final_path.c_str())) {
    // The commit step failed: the old manifest (if any) is untouched, the
    // temp file is swept so a later checkpoint starts clean.
    (void)kml_fremove(tmp_path.c_str());
    return ManifestSave::kRenameFailed;
  }
  return ManifestSave::kOk;
}

ManifestLoad load_manifest(const std::string& dir, ManifestData* out) {
  const std::string path = manifest_path(dir);
  if (kml_fsize(path.c_str()) < 0) return ManifestLoad::kMissing;

  std::vector<std::uint8_t> image;
  if (!read_image(path, &image)) return ManifestLoad::kTorn;

  Reader r{image.data(), image.size()};
  if (r.u32() != kManifestMagic || r.u32() != kManifestVersion) {
    return ManifestLoad::kTorn;
  }
  ManifestData m;
  m.num_base_keys = r.u64();
  m.next_seq = r.u64();
  m.next_file_id = r.u64();
  m.checkpoint_id = r.u64();
  m.wal_file_id = r.u64();
  m.wal_start_seq = r.u64();
  const std::uint64_t run_count = r.u64();
  if (!r.ok || run_count > kMaxManifestRuns) return ManifestLoad::kTorn;
  m.runs.reserve(run_count);
  for (std::uint64_t i = 0; i < run_count; ++i) {
    RunRef ref;
    ref.file_id = r.u64();
    ref.entry_count = r.u64();
    if (!r.ok || ref.entry_count > kMaxRunEntries) return ManifestLoad::kTorn;
    m.runs.push_back(ref);
  }
  // Trailing bytes mean this is not an image our writer produced.
  if (!r.ok || r.left != 0) return ManifestLoad::kTorn;
  *out = std::move(m);
  return ManifestLoad::kOk;
}

bool save_run_file(const std::string& dir, std::uint64_t file_id,
                   const std::vector<std::uint64_t>& keys) {
  std::vector<std::uint8_t> image;
  image.reserve(16 + keys.size() * 8 + 4);
  put_u32(image, kRunFileMagic);
  put_u32(image, kRunFileVersion);
  put_u64(image, keys.size());
  for (const std::uint64_t k : keys) put_u64(image, k);
  return write_image(run_path(dir, file_id), image, FaultSite::kRunFlush);
}

bool load_run_file(const std::string& dir, std::uint64_t file_id,
                   std::uint64_t expected_entries,
                   std::vector<std::uint64_t>* keys) {
  std::vector<std::uint8_t> image;
  if (!read_image(run_path(dir, file_id), &image)) return false;
  Reader r{image.data(), image.size()};
  if (r.u32() != kRunFileMagic || r.u32() != kRunFileVersion) return false;
  const std::uint64_t count = r.u64();
  if (!r.ok || count != expected_entries || count > kMaxRunEntries) {
    return false;
  }
  keys->clear();
  keys->reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t k = r.u64();
    if (i != 0 && k <= prev) return false;  // runs are strictly sorted
    prev = k;
    keys->push_back(k);
  }
  if (!r.ok || r.left != 0) return false;
  return true;
}

}  // namespace kml::kv
