#include "kv/wal.h"

#include "portability/checksum.h"
#include "portability/fault.h"
#include "portability/file.h"
#include "portability/log.h"

#include <cstring>

namespace kml::kv {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

constexpr std::size_t kFileHeaderBytes = 8;   // magic + version
constexpr std::size_t kBatchHeaderBytes = 12; // magic + payload_bytes + crc

}  // namespace

WalWriter::~WalWriter() { close(); }

bool WalWriter::open(const std::string& path, bool truncate) {
  close();
  buf_.clear();
  buffered_records_ = 0;
  file_ = kml_fopen(path.c_str(), truncate ? "w" : "a");
  if (file_ == nullptr) {
    KML_ERROR("wal: cannot open %s", path.c_str());
    return false;
  }
  if (truncate) {
    std::uint8_t header[kFileHeaderBytes];
    std::memcpy(header, &kWalMagic, 4);
    std::memcpy(header + 4, &kWalVersion, 4);
    if (kml_fwrite(file_, header, sizeof(header)) !=
            static_cast<std::int64_t>(sizeof(header)) ||
        !kml_fflush(file_)) {
      KML_ERROR("wal: header write failed for %s", path.c_str());
      kml_fclose(file_);
      file_ = nullptr;
      return false;
    }
  }
  return true;
}

void WalWriter::append(std::uint64_t key, std::uint64_t seq) {
  put_u64(buf_, key);
  put_u64(buf_, seq);
  ++buffered_records_;
}

bool WalWriter::commit() {
  if (buf_.empty()) return true;
  if (file_ == nullptr) return false;

  std::vector<std::uint8_t> frame;
  frame.reserve(kBatchHeaderBytes + buf_.size());
  put_u32(frame, kWalBatchMagic);
  put_u32(frame, static_cast<std::uint32_t>(buf_.size()));
  put_u32(frame, kml_crc32(buf_.data(), buf_.size()));
  frame.insert(frame.end(), buf_.begin(), buf_.end());

  if (kml_fault_should_fail(FaultSite::kWalAppend)) {
    // Model the worst realistic outcome: the group commit dies mid-write,
    // leaving a torn frame on disk. Half the frame always clips the payload
    // (header alone is 12 of >= 28 bytes), so the batch CRC cannot verify
    // and replay drops the whole group — exactly the un-acked bytes.
    const std::size_t torn = frame.size() / 2;
    (void)kml_fwrite(file_, frame.data(), torn);
    (void)kml_fflush(file_);
    return false;
  }

  if (kml_fwrite(file_, frame.data(), frame.size()) !=
          static_cast<std::int64_t>(frame.size()) ||
      !kml_fflush(file_)) {
    KML_ERROR("wal: group commit write failed");
    return false;
  }
  buf_.clear();
  buffered_records_ = 0;
  return true;
}

void WalWriter::abandon() {
  buf_.clear();
  buffered_records_ = 0;
  if (file_ != nullptr) {
    kml_fclose(file_);  // no flush beyond what commit() already pushed
    file_ = nullptr;
  }
}

void WalWriter::close() {
  if (file_ != nullptr) {
    kml_fclose(file_);
    file_ = nullptr;
  }
}

WalReplayResult wal_replay(
    const std::string& path, std::uint64_t min_seq,
    const std::function<void(std::uint64_t key, std::uint64_t seq)>& apply) {
  WalReplayResult res;

  const std::int64_t size = kml_fsize(path.c_str());
  if (size < static_cast<std::int64_t>(kFileHeaderBytes)) {
    // Missing or shorter than a header: either the log never existed or it
    // tore before the first byte of payload — both mean "nothing durable".
    res.torn_tail = size > 0;
    return res;
  }

  KmlFile* f = kml_fopen(path.c_str(), "r");
  if (f == nullptr) return res;
  std::vector<std::uint8_t> image(static_cast<std::size_t>(size));
  const std::int64_t got = kml_fread(f, image.data(), image.size());
  kml_fclose(f);
  if (got != size) return res;

  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, image.data(), 4);
  std::memcpy(&version, image.data() + 4, 4);
  if (magic != kWalMagic || version != kWalVersion) {
    KML_WARN("wal: %s has foreign header (magic=%#x version=%u)",
             path.c_str(), magic, version);
    return res;
  }
  res.opened = true;

  std::size_t off = kFileHeaderBytes;
  std::uint64_t prev_seq = 0;
  while (off < image.size()) {
    if (image.size() - off < kBatchHeaderBytes) {
      res.torn_tail = true;  // partial batch header
      break;
    }
    const std::uint32_t batch_magic = get_u32(&image[off]);
    const std::uint32_t payload_bytes = get_u32(&image[off + 4]);
    const std::uint32_t stored_crc = get_u32(&image[off + 8]);
    if (batch_magic != kWalBatchMagic || payload_bytes == 0 ||
        payload_bytes > kWalMaxBatchBytes ||
        payload_bytes % kWalRecordBytes != 0 ||
        image.size() - off - kBatchHeaderBytes < payload_bytes) {
      res.torn_tail = true;  // torn or garbage frame
      break;
    }
    const std::uint8_t* payload = &image[off + kBatchHeaderBytes];
    if (kml_crc32(payload, payload_bytes) != stored_crc) {
      res.torn_tail = true;  // the injected-fault / power-cut signature
      break;
    }
    // Verified batch: apply its records. Sequences must rise monotonically
    // across the whole log; a regression means frames from different log
    // generations got mixed, which we refuse to replay past.
    bool monotonic = true;
    for (std::uint32_t p = 0; p < payload_bytes; p += kWalRecordBytes) {
      const std::uint64_t key = get_u64(payload + p);
      const std::uint64_t seq = get_u64(payload + p + 8);
      if (seq <= prev_seq) {
        monotonic = false;
        break;
      }
      prev_seq = seq;
      if (seq >= min_seq) {
        apply(key, seq);
        ++res.records;
      }
    }
    res.last_seq = prev_seq;
    if (!monotonic) {
      res.torn_tail = true;
      break;
    }
    ++res.batches;
    off += kBatchHeaderBytes + payload_bytes;
  }
  return res;
}

}  // namespace kml::kv
