// minikv.h — MiniKV: the LSM-flavoured key-value store MiniKV benchmarks run
// against (the RocksDB substitution; DESIGN.md §2, crash consistency §12).
//
// Shape: a dense bulk-loaded base run + overlay sorted runs from memtable
// flushes + an in-memory memtable, WAL group commit, Bloom-gated point
// lookups, and compaction of overlay runs. Every data-block access goes
// through the simulated page cache, so the kernel readahead path sees the
// same access-pattern classes RocksDB generates.
//
// Two planes, deliberately separate:
//  * Virtual-time plane (unchanged): get/put/iterators charge simulated CPU
//    and device time through the storage stack. Single-threaded — the sim
//    stack is not thread-safe.
//  * Durability plane (new): when KVConfig::durable_dir is set, every put
//    is appended to a REAL write-ahead log through the kml_f* portability
//    seams, group-committed in CRC-framed batches; flushes write durable
//    run files; a CRC-footed MANIFEST (temp + atomic rename) is the commit
//    point. checkpoint() rotates the WAL; recover() reopens a store from
//    its directory, rejecting torn manifests and replaying the WAL tail.
//    A failed durable write (injected fault or real I/O error) moves the
//    store into a crashed state: durable_seq() freezes and all further
//    mutations are refused — exactly what the kill-and-recover harness
//    then recovers from.
//
// Concurrency: get_concurrent() is a lock-free point lookup usable from any
// thread (pool workers) while the owner thread keeps writing. Readers pin
// an epoch (portability/epoch) and walk an immutable LiveState snapshot —
// memtable index + run vector — that flush/compaction swap atomically and
// retire through the epoch domain. The concurrent path touches no sim
// state and charges no virtual time; it exists to measure real wall-clock
// index throughput and to prove reclamation safety (TSan-clean).
#pragma once

#include "kv/manifest.h"
#include "kv/memtable.h"
#include "kv/table.h"
#include "kv/wal.h"
#include "portability/fault.h"

#include <atomic>
#include <memory>
#include <string>

namespace kml::kv {

struct KVConfig {
  std::uint64_t num_keys = 4'000'000;
  TableGeometry geom;  // 128 B entries, 64 KiB blocks
  std::uint64_t memtable_limit_bytes = 8ull << 20;  // 8 MiB
  std::uint64_t wal_buffer_bytes = 64ull << 10;     // group commit unit
  std::uint32_t bloom_bits_per_key = 10;
  std::uint32_t max_overlay_runs = 6;  // compaction trigger
  // Application CPU cost per operation (virtual ns) — keeps cache-hit
  // workloads at a finite throughput, as real CPUs do.
  std::uint64_t cpu_get_ns = 1500;
  std::uint64_t cpu_put_ns = 1800;
  std::uint64_t cpu_next_ns = 250;
  // Durability root. Empty (default) = in-memory store, no real files, no
  // recovery — the original benchmark behaviour, bit for bit. Non-empty =
  // an existing directory MiniKV fills with MANIFEST / wal_<n>.log /
  // run_<n>.kvr files.
  std::string durable_dir;
};

struct KVStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t iter_steps = 0;
  std::uint64_t memtable_hits = 0;
  std::uint64_t bloom_false_positives = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_flushes = 0;
  // Durability plane (all zero for in-memory stores).
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;            // 1 on a store built by recover()
  std::uint64_t wal_replays = 0;           // WAL scans during recovery
  std::uint64_t wal_records_replayed = 0;  // records re-applied from the WAL
  std::uint64_t torn_manifests_rejected = 0;
  std::uint64_t epoch_deferred_frees = 0;  // LiveStates retired via epoch
};

class Iterator;

class MiniKV {
 public:
  // Bulk-loads the dense base run over keys [0, num_keys). The load itself
  // charges no device time (the paper times benchmarks on a pre-populated
  // database). With durable_dir set, also seeds the directory: an empty
  // WAL and an initial manifest (any prior contents are superseded).
  MiniKV(sim::StorageStack& stack, const KVConfig& config);

  // Reopen a durable store from config.durable_dir: load the manifest
  // (torn or missing -> nullptr, counted in kv.torn_manifests_rejected),
  // rebuild base + overlay runs from run files, replay the WAL tail into a
  // fresh memtable, then rotate onto a clean WAL + manifest. Every write
  // acknowledged durable before the crash is present afterwards; writes
  // never acknowledged are absent.
  static std::unique_ptr<MiniKV> recover(sim::StorageStack& stack,
                                         const KVConfig& config);

  ~MiniKV();

  MiniKV(const MiniKV&) = delete;
  MiniKV& operator=(const MiniKV&) = delete;

  // Point lookup; returns true if the key exists. Charges CPU + the data-
  // block read of the newest run containing the key (plus index-block reads
  // for Bloom false positives). Owner thread only.
  bool get(std::uint64_t key);

  // Lock-free point lookup from any thread, concurrent with the owner's
  // put/flush/compact. Epoch-protected; touches no sim state and charges
  // no virtual time (tallies in concurrent_gets/_hits instead of stats()).
  bool get_concurrent(std::uint64_t key);

  // Write: WAL append (group commit) + memtable insert; may trigger a
  // flush and a compaction. No-op on a crashed store.
  void put(std::uint64_t key);

  // Durable mode: group-commit the WAL tail, flush the memtable, rotate
  // onto a fresh WAL, and commit a new manifest — after this the WAL is
  // empty and recovery needs no replay. In-memory mode: flush only.
  // Returns false if a durability fault crashed the store.
  bool checkpoint();

  // Simulate a power cut: drop every buffered (un-acknowledged) WAL record
  // and freeze the store. durable_seq() keeps its pre-crash value; the
  // on-disk state is whatever the last group commit / manifest made real.
  void crash();

  // True once a durability fault or crash() froze the store. All further
  // mutations are refused; recover() on the directory is the way back.
  bool failed() const { return failed_; }

  // Sequence numbers: last_seq is the newest accepted put; durable_seq is
  // the newest put acknowledged durable (WAL group commit or flush).
  // Writes with seq > durable_seq() may vanish in a crash — that is the
  // contract the harness checks.
  std::uint64_t last_seq() const { return next_seq_ - 1; }
  std::uint64_t durable_seq() const { return durable_seq_; }

  // Bumped on every mutation (put/flush/compact/checkpoint). Iterators
  // capture it at creation and fail loudly when used after it moves.
  std::uint64_t generation() const { return generation_; }

  // Merged iterator over memtable + all runs. Invalidated by put().
  std::unique_ptr<Iterator> new_iterator();

  std::uint64_t num_keys() const { return config_.num_keys; }
  const KVConfig& config() const { return config_; }
  const KVStats& stats() const { return stats_; }
  void reset_stats() { stats_ = KVStats{}; }
  sim::StorageStack& stack() { return *stack_; }
  std::size_t run_count() const {
    return live_.load(std::memory_order_relaxed)->runs.size();
  }

  // Concurrent-path tallies (separate from stats(): written by many
  // threads, so they live in atomics).
  std::uint64_t concurrent_gets() const {
    return concurrent_gets_.load(std::memory_order_relaxed);
  }
  std::uint64_t concurrent_hits() const {
    return concurrent_hits_.load(std::memory_order_relaxed);
  }

 private:
  friend class Iterator;

  // The epoch-protected snapshot concurrent readers walk. Immutable once
  // published; flush/compaction build a successor and retire the old one.
  struct LiveState {
    std::shared_ptr<Memtable> mem;
    // runs[0] is the base; higher indices are newer overlays.
    std::vector<std::shared_ptr<Table>> runs;
  };

  // Recovery constructor (reached via recover()).
  MiniKV(sim::StorageStack& stack, const KVConfig& config,
         const ManifestData& m);

  static void delete_live_state(void* p);  // kml_epoch_retire deleter

  void init_sim_wal();
  std::shared_ptr<Memtable> make_memtable() const;
  LiveState* live() const { return live_.load(std::memory_order_relaxed); }
  void publish(LiveState* next);

  void wal_buffer_append(std::uint64_t key, std::uint64_t seq);
  bool commit_wal();  // group commit; false = durability fault (store dead)
  void maybe_flush();
  void flush_memtable();
  void compact_if_needed();
  bool write_manifest();
  bool rotate_wal();  // fresh WAL file + manifest; deletes the old log
  void durability_fault(FaultSite site);

  sim::StorageStack* stack_;
  KVConfig config_;
  KVStats stats_;
  std::atomic<LiveState*> live_{nullptr};

  std::uint64_t next_seq_ = 1;
  std::uint64_t durable_seq_ = 0;
  std::uint64_t wal_tail_seq_ = 0;  // newest seq appended (acked at commit)
  std::uint64_t generation_ = 1;
  bool failed_ = false;

  // Durability plane (inert when durable_ is false).
  bool durable_ = false;
  WalWriter wal_;
  std::uint64_t checkpoint_id_ = 0;
  std::uint64_t wal_file_id_ = 0;
  std::uint64_t wal_start_seq_ = 1;
  std::uint64_t next_file_id_ = 1;
  std::vector<RunRef> run_refs_;  // durable overlays, mirrors runs[1..]

  // Virtual-time WAL accounting (the sim plane's group commit).
  std::uint64_t wal_inode_ = 0;
  std::uint64_t wal_fill_bytes_ = 0;
  std::uint64_t wal_page_cursor_ = 0;

  std::atomic<std::uint64_t> concurrent_gets_{0};
  std::atomic<std::uint64_t> concurrent_hits_{0};
};

}  // namespace kml::kv
