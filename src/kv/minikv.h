// minikv.h — MiniKV: the LSM-flavoured key-value store MiniKV benchmarks run
// against (the RocksDB substitution; DESIGN.md §2).
//
// Shape: a dense bulk-loaded base run + overlay sorted runs from memtable
// flushes + an in-memory memtable, WAL group commit, Bloom-gated point
// lookups, and compaction of overlay runs. Every data-block access goes
// through the simulated page cache, so the kernel readahead path sees the
// same access-pattern classes RocksDB generates: forward scans, reverse
// scans (block-wise), random block reads, and mixed read/write streams.
#pragma once

#include "kv/memtable.h"
#include "kv/table.h"

#include <memory>

namespace kml::kv {

struct KVConfig {
  std::uint64_t num_keys = 4'000'000;
  TableGeometry geom;  // 128 B entries, 64 KiB blocks
  std::uint64_t memtable_limit_bytes = 8ull << 20;  // 8 MiB
  std::uint64_t wal_buffer_bytes = 64ull << 10;     // group commit unit
  std::uint32_t bloom_bits_per_key = 10;
  std::uint32_t max_overlay_runs = 6;  // compaction trigger
  // Application CPU cost per operation (virtual ns) — keeps cache-hit
  // workloads at a finite throughput, as real CPUs do.
  std::uint64_t cpu_get_ns = 1500;
  std::uint64_t cpu_put_ns = 1800;
  std::uint64_t cpu_next_ns = 250;
};

struct KVStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t iter_steps = 0;
  std::uint64_t memtable_hits = 0;
  std::uint64_t bloom_false_positives = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_flushes = 0;
};

class Iterator;

class MiniKV {
 public:
  // Bulk-loads the dense base run over keys [0, num_keys). The load itself
  // charges no device time (the paper times benchmarks on a pre-populated
  // database).
  MiniKV(sim::StorageStack& stack, const KVConfig& config);
  ~MiniKV();

  MiniKV(const MiniKV&) = delete;
  MiniKV& operator=(const MiniKV&) = delete;

  // Point lookup; returns true if the key exists. Charges CPU + the data-
  // block read of the newest run containing the key (plus index-block reads
  // for Bloom false positives).
  bool get(std::uint64_t key);

  // Write: WAL append (group commit) + memtable insert; may trigger a
  // flush and a compaction.
  void put(std::uint64_t key);

  // Merged iterator over memtable + all runs. Invalidated by put().
  std::unique_ptr<Iterator> new_iterator();

  std::uint64_t num_keys() const { return config_.num_keys; }
  const KVConfig& config() const { return config_; }
  const KVStats& stats() const { return stats_; }
  void reset_stats() { stats_ = KVStats{}; }
  sim::StorageStack& stack() { return *stack_; }
  std::size_t run_count() const { return runs_.size(); }

 private:
  friend class Iterator;

  void wal_append();
  void maybe_flush();
  void compact_if_needed();

  sim::StorageStack* stack_;
  KVConfig config_;
  KVStats stats_;
  Memtable memtable_;
  // runs_[0] is the base; higher indices are newer overlays.
  std::vector<std::unique_ptr<Table>> runs_;
  std::uint64_t wal_inode_;
  std::uint64_t wal_fill_bytes_ = 0;
  std::uint64_t wal_page_cursor_ = 0;
};

}  // namespace kml::kv
